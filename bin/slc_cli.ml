(* slc-cli: command-line driver for the statistical library
   characterization experiments.

   Each subcommand regenerates one of the paper's tables or figures
   (as plain-text series) at a configurable scale. *)

open Cmdliner
open Slc_core
module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Store = Slc_store.Store

let std = Format.std_formatter

let scale_arg =
  let doc = "Experiment scale (1.0 = defaults; also via SLC_SCALE)." in
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~doc)

let tech_arg default =
  let doc = "Technology node (n14, n20, n28, n32, n40, n45)." in
  Arg.(value & opt string default & info [ "t"; "tech" ] ~doc)

let tech_of_name name =
  match Tech.by_name name with
  | t -> t
  | exception Not_found ->
    Printf.eprintf "unknown technology %S\n" name;
    exit 2

let config_of scale = Config.with_scale scale

let store_arg =
  let doc =
    "Persistent characterization store directory (created if missing). \
     Artifacts found there are reused instead of re-simulated; new ones \
     are written back, so a second identical invocation runs zero \
     simulations."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~doc ~docv:"DIR")

let store_of = function
  | None -> None
  | Some dir -> (
    match Store.open_ dir with
    | st -> Some st
    | exception Slc_obs.Slc_error.Store_failed f ->
      Printf.eprintf "store: %s\n" (Slc_obs.Slc_error.store_fault_message f);
      exit 2)

(* Learn the historical prior — or load it from the store, where a
   previous process already paid for it. *)
let prior_for ?store tech =
  let historical = Tech.historical_for tech in
  match store with
  | Some st -> Store.get_prior st ~historical
  | None -> Prior.learn_pair ~historical ()

let with_timer f =
  let t0 = Unix.gettimeofday () in
  Harness.reset_sim_count ();
  f ();
  Format.fprintf std "[%d simulator runs, %.1f s]@."
    (Harness.sim_count ())
    (Unix.gettimeofday () -. t0);
  (* With SLC_TELEMETRY=1 every subcommand appends the pipeline
     counters and spans (retries, recoveries, cache traffic, ...). *)
  if Slc_obs.Telemetry.on () then Slc_obs.Telemetry.report std

let table1_cmd =
  let run () = with_timer (fun () ->
      Exp_model.print_table1 std (Exp_model.table1 ()))
  in
  Cmd.v (Cmd.info "table1" ~doc:"Extracted model parameters (paper Table I)")
    Term.(const run $ const ())

let fig2_cmd =
  let run tech = with_timer (fun () ->
      let series = Exp_model.fig2 ~tech:(tech_of_name tech) () in
      Exp_model.print_invariance std
        ~title:"Fig 2: T*Ieff/(Vdd+V') constancy vs Vdd" series)
  in
  Cmd.v (Cmd.info "fig2" ~doc:"Vdd-invariance of the timing model (Fig 2)")
    Term.(const run $ tech_arg "n14")

let fig3_cmd =
  let run tech = with_timer (fun () ->
      let series = Exp_model.fig3 ~tech:(tech_of_name tech) () in
      Exp_model.print_invariance std
        ~title:"Fig 3: Td/(Cload+Cpar+a*Sin) constancy vs (Cload,Sin)" series)
  in
  Cmd.v (Cmd.info "fig3" ~doc:"(Cload,Sin)-invariance of the timing model (Fig 3)")
    Term.(const run $ tech_arg "n14")

let fig5_cmd =
  let run tech =
    Exp_nominal.print_fig5 std (Exp_nominal.fig5 (tech_of_name tech))
  in
  Cmd.v (Cmd.info "fig5" ~doc:"Validation input spread (Fig 5)")
    Term.(const run $ tech_arg "n28")

let fig6_cmd =
  let run scale tech = with_timer (fun () ->
      let r =
        Exp_nominal.fig6 ~config:(config_of scale)
          ~tech:(tech_of_name tech) ()
      in
      Exp_nominal.print_fig6 std r)
  in
  Cmd.v
    (Cmd.info "fig6"
       ~doc:"Nominal error vs training samples, Bayes/LSE/LUT (Fig 6)")
    Term.(const run $ scale_arg $ tech_arg "n14")

let fig78_cmd =
  let run scale tech = with_timer (fun () ->
      let r =
        Exp_statistical.fig78 ~config:(config_of scale)
          ~tech:(tech_of_name tech) ()
      in
      Exp_statistical.print_fig78 std r)
  in
  Cmd.v
    (Cmd.info "fig78"
       ~doc:"Statistical mean/sigma errors vs training samples (Figs 7-8)")
    Term.(const run $ scale_arg $ tech_arg "n28")

let fig9_cmd =
  let run scale tech = with_timer (fun () ->
      let r =
        Exp_statistical.fig9 ~config:(config_of scale)
          ~tech:(tech_of_name tech) ()
      in
      Exp_statistical.print_fig9 std r)
  in
  Cmd.v (Cmd.info "fig9" ~doc:"Delay pdf at a low-Vdd condition (Fig 9)")
    Term.(const run $ scale_arg $ tech_arg "n28")

let ablations_cmd =
  let run scale = with_timer (fun () ->
      let config = config_of scale in
      Exp_ablation.print_rows std ~title:"Ablation: learned vs constant beta"
        (Exp_ablation.ablation_beta ~config ());
      Exp_ablation.print_rows std
        ~title:"Ablation: historical-library selection"
        (Exp_ablation.ablation_history ~config ());
      Exp_ablation.print_rows std ~title:"Ablation: pooled vs chained prior"
        (Exp_ablation.ablation_chain ~config ());
      Exp_ablation.print_rows std
        ~title:"Ablation: curated vs random fitting design"
        (Exp_ablation.ablation_design ~config ());
      Exp_ablation.print_complexity std
        (Exp_ablation.ablation_model_complexity ());
      Exp_extension.print_result std (Exp_extension.vt_transfer ~config ()))
  in
  Cmd.v (Cmd.info "ablations" ~doc:"Design-choice ablations")
    Term.(const run $ scale_arg)

let characterize_cmd =
  let cell_arg =
    Arg.(value & opt string "NAND2" & info [ "c"; "cell" ] ~doc:"Cell name.")
  in
  let pin_arg = Arg.(value & opt string "A" & info [ "p"; "pin" ] ~doc:"Input pin.") in
  let k_arg =
    Arg.(value & opt int 2 & info [ "k" ] ~doc:"Fitting simulations.")
  in
  let run tech cell pin k store_dir =
    let tech = tech_of_name tech in
    let cell =
      match Cells.by_name cell with
      | c -> c
      | exception Not_found ->
        Printf.eprintf "unknown cell %S\n" cell;
        exit 2
    in
    let arc =
      match Arc.find cell ~pin ~out_dir:Arc.Fall with
      | a -> a
      | exception Not_found ->
        Printf.eprintf "no falling arc on pin %S\n" pin;
        exit 2
    in
    with_timer (fun () ->
        let store = store_of store_dir in
        Format.fprintf std "Learning prior from %s...@."
          (String.concat ","
             (List.map (fun t -> t.Tech.name) (Tech.historical_for tech)));
        let prior = prior_for ?store tech in
        let p =
          match store with
          | None -> Char_flow.train_bayes ~prior tech arc ~k
          | Some st -> (
            let key =
              Store.predictor_key
                ~prior_fp:(Store.prior_fingerprint prior)
                ~tech ~arc ~k ~seed:None ()
            in
            match Store.find_predictor st ~key ~tech ~arc with
            | Some p -> p
            | None ->
              let p = Char_flow.train_bayes ~prior tech arc ~k in
              Store.put_predictor st ~key p;
              p)
        in
        let ds =
          Char_flow.simulate_dataset tech arc
            (Input_space.validation_set ~n:100 ~seed:1 tech)
        in
        let e = Char_flow.evaluate p ds in
        Format.fprintf std
          "%s in %s with k=%d: Td err %.2f%%, Sout err %.2f%%@."
          (Arc.name arc) tech.Tech.name k
          (100.0 *. e.Char_flow.td_err)
          (100.0 *. e.Char_flow.sout_err))
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Characterize one arc with the Bayesian flow and report error")
    Term.(const run $ tech_arg "n14" $ cell_arg $ pin_arg $ k_arg $ store_arg)

let prior_cmd =
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~doc:"Save the learned prior to FILE.")
  in
  let load_arg =
    Arg.(value & opt (some string) None & info [ "load" ] ~doc:"Load a prior from FILE instead of learning.")
  in
  let run tech save load =
    let tech = tech_of_name tech in
    with_timer (fun () ->
        let prior =
          match load with
          | Some path ->
            Format.fprintf std "loading prior from %s@." path;
            Prior_io.load path
          | None ->
            Format.fprintf std "learning prior from %s@."
              (String.concat ","
                 (List.map (fun t -> t.Tech.name) (Tech.historical_for tech)));
            Prior.learn_pair ~historical:(Tech.historical_for tech) ()
        in
        Prior.pp_summary std prior.Prior.delay;
        match save with
        | Some path ->
          Prior_io.save path prior;
          Format.fprintf std "saved prior to %s@." path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "prior"
       ~doc:"Learn (or load) the historical prior; optionally save it")
    Term.(const run $ tech_arg "n14" $ save_arg $ load_arg)

let corners_cmd =
  let cell_arg =
    Arg.(value & opt string "INV" & info [ "c"; "cell" ] ~doc:"Cell name.")
  in
  let run tech cell =
    let tech0 = tech_of_name tech in
    let cell =
      match Cells.by_name cell with
      | c -> c
      | exception Not_found ->
        Printf.eprintf "unknown cell %S\n" cell;
        exit 2
    in
    let arc = Arc.find cell ~pin:"A" ~out_dir:Arc.Fall in
    let module Process = Slc_device.Process in
    let vdd_lo, vdd_hi = tech0.Tech.vdd_range in
    let rows =
      List.map
        (fun (label, corner, celsius, vdd) ->
          let t = Tech.at_temperature tech0 ~celsius in
          let seed = Process.corner t corner in
          let m =
            Harness.simulate ~seed t arc
              { Harness.sin = 5e-12; cload = 2e-15; vdd }
          in
          [
            label;
            Printf.sprintf "%.0fC" celsius;
            Printf.sprintf "%.2fV" vdd;
            Printf.sprintf "%.2fps" (m.Harness.td *. 1e12);
            Printf.sprintf "%.2fps" (m.Harness.sout *. 1e12);
            Printf.sprintf "%.3ffJ" (m.Harness.energy *. 1e15);
          ])
        [
          ("SS (worst)", Process.Ss, 125.0, vdd_lo);
          ("TT (typ)", Process.Tt, 25.0, 0.5 *. (vdd_lo +. vdd_hi));
          ("FF (best)", Process.Ff, -40.0, vdd_hi);
          ("SF", Process.Sf, 25.0, 0.5 *. (vdd_lo +. vdd_hi));
          ("FS", Process.Fs, 25.0, 0.5 *. (vdd_lo +. vdd_hi));
        ]
    in
    Format.fprintf std "PVT corners for %s in %s:@." (Arc.name arc)
      tech0.Tech.name;
    Report.table std
      ~header:[ "corner"; "temp"; "vdd"; "delay"; "slew"; "energy" ]
      rows
  in
  Cmd.v (Cmd.info "corners" ~doc:"PVT corner table for one cell")
    Term.(const run $ tech_arg "n14" $ cell_arg)

let liberty_cmd =
  let out_arg =
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let run tech out store_dir =
    let tech = tech_of_name tech in
    with_timer (fun () ->
        let levels = [| 3; 3; 2 |] in
        let lib =
          match store_of store_dir with
          | None -> Slc_cell.Library.characterize tech ~levels
          | Some st -> (
            let key =
              Store.library_key ~seed:None ~tech
                ~cells:(List.map (fun c -> c.Cells.name) Cells.all)
                ~levels
            in
            match Store.find_library st ~key with
            | Some lib ->
              Slc_obs.Telemetry.incr Slc_obs.Telemetry.store_hits;
              Format.fprintf std "store: library served with zero simulations@.";
              lib
            | None ->
              Slc_obs.Telemetry.incr Slc_obs.Telemetry.store_misses;
              let lib = Slc_cell.Library.characterize tech ~levels in
              Store.put_library st ~key lib;
              lib)
        in
        let text =
          Slc_cell.Liberty.to_string ~vdd:tech.Tech.vdd_nom lib
        in
        if out = "-" then print_string text
        else begin
          Out_channel.with_open_text out (fun oc ->
              Out_channel.output_string oc text);
          Format.fprintf std "wrote %s (%d bytes)@." out (String.length text)
        end)
  in
  Cmd.v
    (Cmd.info "liberty" ~doc:"Characterize a full library and emit .lib text")
    Term.(const run $ tech_arg "n28" $ out_arg $ store_arg)

let sta_cmd =
  let netlist_arg =
    Arg.(required & opt (some string) None & info [ "n"; "netlist" ] ~doc:"Structural Verilog file.")
  in
  let clock_arg =
    Arg.(value & opt float 60e-12 & info [ "clock" ] ~doc:"Required time at the outputs, seconds.")
  in
  let k_arg = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Fitting sims per arc.") in
  let prior_arg =
    Arg.(value & opt (some string) None & info [ "prior" ] ~doc:"Load the prior from FILE (else learn it).")
  in
  let run tech netlist clock k prior_path store_dir =
    let tech = tech_of_name tech in
    let store = store_of store_dir in
    let src = In_channel.with_open_text netlist In_channel.input_all in
    let v =
      match Slc_ssta.Verilog.parse src with
      | v -> v
      | exception Slc_ssta.Verilog.Parse_error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 2
    in
    with_timer (fun () ->
        let dag, _, outputs =
          Slc_ssta.Verilog.to_sdag v tech ~vdd:tech.Tech.vdd_nom
        in
        let prior =
          match prior_path with
          | Some p -> Prior_io.load p
          | None -> prior_for ?store tech
        in
        let oracle = Slc_ssta.Oracle.bayes_bank ?store ~prior tech ~k in
        let input_arrivals _ =
          Slc_ssta.Sdag.input_edge ~at:0.0 ~slew:5e-12 ~rises:true
        in
        let rows =
          Slc_ssta.Sdag.slack_report dag oracle ~input_arrivals
            ~outputs:(List.map (fun (_, n) -> (n, clock)) outputs)
        in
        Format.fprintf std "%s: slack report at Tclk=%.2fps@."
          v.Slc_ssta.Verilog.module_name (clock *. 1e12);
        Report.table std
          ~header:[ "net"; "arrival(ps)"; "required(ps)"; "slack(ps)" ]
          (List.filter_map
             (fun r ->
               if r.Slc_ssta.Sdag.required_time < Float.infinity then
                 Some
                   [
                     r.Slc_ssta.Sdag.net_label;
                     Printf.sprintf "%.2f" (r.Slc_ssta.Sdag.arrival_time *. 1e12);
                     Printf.sprintf "%.2f" (r.Slc_ssta.Sdag.required_time *. 1e12);
                     Printf.sprintf "%+.2f" (r.Slc_ssta.Sdag.slack *. 1e12);
                   ]
               else None)
             rows))
  in
  Cmd.v
    (Cmd.info "sta"
       ~doc:"Slack report for a structural-Verilog netlist (Bayes-characterized library)")
    Term.(
      const run $ tech_arg "n14" $ netlist_arg $ clock_arg $ k_arg $ prior_arg
      $ store_arg)

let population_cmd =
  let cell_arg =
    Arg.(value & opt string "INV" & info [ "c"; "cell" ] ~doc:"Cell name.")
  in
  let pin_arg =
    Arg.(value & opt string "A" & info [ "p"; "pin" ] ~doc:"Input pin.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 12
      & info [ "n"; "seeds" ] ~doc:"Number of Monte-Carlo process seeds.")
  in
  let k_arg =
    Arg.(
      value & opt int 3
      & info [ "k" ] ~doc:"Per-seed training budget (simulator runs).")
  in
  let method_arg =
    Arg.(
      value & opt string "bayes"
      & info [ "m"; "method" ] ~doc:"Extraction method: bayes, lse or lut.")
  in
  let batch_arg =
    Arg.(
      value & opt int 4
      & info [ "batch" ]
          ~doc:"Seeds per checkpoint batch (only meaningful with --store).")
  in
  let rng_arg =
    Arg.(
      value & opt int 42
      & info [ "rng-seed" ] ~doc:"Seed-batch generator seed.")
  in
  let design_arg =
    Arg.(
      value & opt string "curated"
      & info [ "design" ]
          ~doc:
            "Fitting-point design: curated (deterministic grid), random \
             (per-seed random draws) or adaptive (sequential \
             information-gain selection with GPR fallback).")
  in
  let design_rng_arg =
    Arg.(
      value & opt int 78
      & info [ "design-seed" ]
          ~doc:"Generator seed for the random/adaptive designs.")
  in
  let candidates_arg =
    Arg.(
      value & opt int 24
      & info [ "candidates" ]
          ~doc:"Adaptive design: candidate pool size per seed.")
  in
  let gpr_threshold_arg =
    Arg.(
      value
      & opt float Slc_core.Char_flow.default_gpr_threshold
      & info [ "gpr-threshold" ]
          ~doc:
            "Adaptive design: mean relative-residual threshold above which \
             a seed's analytical model is replaced by a GPR fallback.")
  in
  let run tech cell pin nseeds k meth batch rng_seed design design_seed
      candidates gpr_threshold store_dir =
    let tech = tech_of_name tech in
    let cell =
      match Cells.by_name cell with
      | c -> c
      | exception Not_found ->
        Printf.eprintf "unknown cell %S\n" cell;
        exit 2
    in
    let arc =
      match Arc.find cell ~pin ~out_dir:Arc.Fall with
      | a -> a
      | exception Not_found ->
        Printf.eprintf "no falling arc on pin %S\n" pin;
        exit 2
    in
    with_timer (fun () ->
        let store = store_of store_dir in
        let seeds =
          Slc_device.Process.sample_batch (Slc_prob.Rng.create rng_seed) tech
            nseeds
        in
        let method_ =
          match meth with
          | "bayes" -> Statistical.Bayes (prior_for ?store tech)
          | "lse" -> Statistical.Lse
          | "lut" -> Statistical.Lut
          | m ->
            Printf.eprintf "unknown method %S (want bayes, lse or lut)\n" m;
            exit 2
        in
        let design =
          match design with
          | "curated" -> Statistical.Curated
          | "random" ->
            Statistical.Random_per_seed (Slc_prob.Rng.create design_seed)
          | "adaptive" ->
            Statistical.Adaptive
              {
                (Statistical.adaptive_defaults
                   (Slc_prob.Rng.create design_seed))
                with
                Statistical.a_candidates = candidates;
                a_gpr_threshold = gpr_threshold;
              }
          | d ->
            Printf.eprintf
              "unknown design %S (want curated, random or adaptive)\n" d;
            exit 2
        in
        let pop =
          match store with
          | None ->
            Statistical.extract_population_design ~design ~method_ ~tech ~arc
              ~seeds ~budget:k ()
          | Some st ->
            let pop, outcome =
              Store.extract_population ~batch_size:batch ~store:st ~method_
                ~design ~tech ~arc ~seeds ~budget:k ()
            in
            (match outcome with
            | Store.Hit ->
              Format.fprintf std
                "store: hit — population served with zero simulations@."
            | Store.Computed { resumed_seeds; computed_seeds; batches } ->
              Format.fprintf std
                "store: computed %d seed(s) in %d checkpoint batch(es), \
                 resumed %d from a checkpoint@."
                computed_seeds batches resumed_seeds);
            pop
        in
        let ok, degraded, failed =
          Array.fold_left
            (fun (ok, de, fa) -> function
              | Statistical.Seed_ok -> (ok + 1, de, fa)
              | Statistical.Seed_degraded _ -> (ok, de + 1, fa)
              | Statistical.Seed_failed _ -> (ok, de, fa + 1))
            (0, 0, 0) pop.Statistical.status
        in
        Format.fprintf std
          "%s in %s: %d seeds, method %s, train cost %d simulator runs@."
          (Arc.name arc) tech.Tech.name nseeds
          (Statistical.method_label method_)
          pop.Statistical.train_cost;
        Format.fprintf std "seed status: %d ok, %d degraded, %d failed@." ok
          degraded failed;
        let s_lo, s_hi = tech.Tech.sin_range in
        let c_lo, c_hi = tech.Tech.cload_range in
        let point =
          {
            Harness.sin = 0.5 *. (s_lo +. s_hi);
            cload = 0.5 *. (c_lo +. c_hi);
            vdd = tech.Tech.vdd_nom;
          }
        in
        let samples = Statistical.predict_samples pop point ~td:true in
        let n = float_of_int (Array.length samples) in
        if n > 0.0 then begin
          let mu = Array.fold_left ( +. ) 0.0 samples /. n in
          let var =
            Array.fold_left (fun a x -> a +. ((x -. mu) ** 2.0)) 0.0 samples
            /. n
          in
          Format.fprintf std
            "predicted Td at (Sin=%.1fps, Cload=%.1ffF, Vdd=%.2fV): mu %.2f \
             ps, sigma %.3f ps@."
            (point.Harness.sin *. 1e12)
            (point.Harness.cload *. 1e15)
            point.Harness.vdd (mu *. 1e12)
            (sqrt var *. 1e12)
        end)
  in
  Cmd.v
    (Cmd.info "population"
       ~doc:
         "Per-seed statistical parameter extraction, with checkpoint/resume \
          and zero-simulation replay when --store is given")
    Term.(
      const run $ tech_arg "n28" $ cell_arg $ pin_arg $ seeds_arg $ k_arg
      $ method_arg $ batch_arg $ rng_arg $ design_arg $ design_rng_arg
      $ candidates_arg $ gpr_threshold_arg $ store_arg)

let listen_arg =
  let doc =
    "Endpoint to listen on (or connect to): unix:PATH, tcp:HOST:PORT, a \
     bare path containing '/', or HOST:PORT.  tcp port 0 binds an \
     ephemeral port and prints the real one."
  in
  Arg.(
    value
    & opt string "unix:/tmp/slc-serve.sock"
    & info [ "l"; "listen" ] ~doc ~docv:"ENDPOINT")

let endpoint_of_string_or_exit s =
  match Slc_server.Server.endpoint_of_string s with
  | Ok ep -> ep
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

let serve_cmd =
  let run listen store_dir =
    let ep = endpoint_of_string_or_exit listen in
    let engine = Slc_server.Engine.create ?store:(store_of store_dir) () in
    let srv = Slc_server.Server.start engine ep in
    Format.fprintf std "slc serve: listening on %s@."
      (Slc_server.Server.endpoint_to_string (Slc_server.Server.endpoint srv));
    (* SIGINT/SIGTERM drain like a [shutdown] request: finish in-flight
       replies, then exit. *)
    let on_signal _ = Slc_server.Server.request_stop srv in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
     with Invalid_argument _ | Sys_error _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
     with Invalid_argument _ | Sys_error _ -> ());
    Slc_server.Server.wait srv;
    Format.fprintf std "slc serve: stopped@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived characterization server: keeps the domain pool, \
          trained banks, query caches and store resident, and answers \
          delay/slew/pdf/sta requests over a newline-delimited socket \
          protocol (see docs/server.md)")
    Term.(const run $ listen_arg $ store_arg)

let query_cmd =
  let connect_arg =
    let doc =
      "Send the requests to a running server at ENDPOINT instead of \
       answering them in-process."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~doc ~docv:"ENDPOINT")
  in
  let client ep =
    let domain, addr =
      match ep with
      | Slc_server.Server.Unix_socket path ->
        (Unix.PF_UNIX, Unix.ADDR_UNIX path)
      | Slc_server.Server.Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found ->
              Printf.eprintf "cannot resolve host %S\n" host;
              exit 2)
        in
        (Unix.PF_INET, Unix.ADDR_INET (inet, port))
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (match Unix.connect fd addr with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "connect %s: %s\n"
        (Slc_server.Server.endpoint_to_string ep)
        (Unix.error_message e);
      exit 2);
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let rec loop () =
      match In_channel.input_line stdin with
      | None -> ()
      | Some line ->
        output_string oc line;
        output_char oc '\n';
        flush oc;
        (match input_line ic with
        | exception End_of_file -> ()
        | reply ->
          print_endline reply;
          loop ())
    in
    loop ();
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let run connect store_dir =
    match connect with
    | Some ep -> client (endpoint_of_string_or_exit ep)
    | None ->
      (* One-shot local mode: the exact connection loop the daemon
         runs, over stdin/stdout — so a served response is bitwise
         identical to this output by construction. *)
      let engine = Slc_server.Engine.create ?store:(store_of store_dir) () in
      Slc_server.Server.serve_channels engine stdin stdout
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Answer server-protocol requests from stdin: in-process by \
          default, or against a running server with --connect")
    Term.(const run $ connect_arg $ store_arg)

let all_cmd =
  let run scale = with_timer (fun () ->
      let config = config_of scale in
      Exp_model.print_table1 std (Exp_model.table1 ());
      Exp_model.print_invariance std ~title:"Fig 2" (Exp_model.fig2 ());
      Exp_model.print_invariance std ~title:"Fig 3" (Exp_model.fig3 ());
      Exp_nominal.print_fig5 std (Exp_nominal.fig5 Tech.n28);
      Exp_nominal.print_fig6 std (Exp_nominal.fig6 ~config ());
      Exp_statistical.print_fig78 std (Exp_statistical.fig78 ~config ());
      Exp_statistical.print_fig9 std (Exp_statistical.fig9 ~config ()))
  in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every table and figure")
    Term.(const run $ scale_arg)

let main =
  Cmd.group
    (Cmd.info "slc-cli" ~version:"1.0.0"
       ~doc:
         "Statistical library characterization using belief propagation \
          across technology nodes (DATE 2015 reproduction)")
    [
      table1_cmd; fig2_cmd; fig3_cmd; fig5_cmd; fig6_cmd; fig78_cmd; fig9_cmd;
      ablations_cmd; characterize_cmd; corners_cmd; liberty_cmd; prior_cmd;
      population_cmd; sta_cmd; serve_cmd; query_cmd; all_cmd;
    ]

let () = exit (Cmd.eval main)
