(* slc-cli: command-line driver for the statistical library
   characterization experiments.

   Each subcommand regenerates one of the paper's tables or figures
   (as plain-text series) at a configurable scale. *)

open Cmdliner
open Slc_core
module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness

let std = Format.std_formatter

let scale_arg =
  let doc = "Experiment scale (1.0 = defaults; also via SLC_SCALE)." in
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~doc)

let tech_arg default =
  let doc = "Technology node (n14, n20, n28, n32, n40, n45)." in
  Arg.(value & opt string default & info [ "t"; "tech" ] ~doc)

let tech_of_name name =
  match Tech.by_name name with
  | t -> t
  | exception Not_found ->
    Printf.eprintf "unknown technology %S\n" name;
    exit 2

let config_of scale = Config.with_scale scale

let with_timer f =
  let t0 = Unix.gettimeofday () in
  Harness.reset_sim_count ();
  f ();
  Format.fprintf std "[%d simulator runs, %.1f s]@."
    (Harness.sim_count ())
    (Unix.gettimeofday () -. t0);
  (* With SLC_TELEMETRY=1 every subcommand appends the pipeline
     counters and spans (retries, recoveries, cache traffic, ...). *)
  if Slc_obs.Telemetry.on () then Slc_obs.Telemetry.report std

let table1_cmd =
  let run () = with_timer (fun () ->
      Exp_model.print_table1 std (Exp_model.table1 ()))
  in
  Cmd.v (Cmd.info "table1" ~doc:"Extracted model parameters (paper Table I)")
    Term.(const run $ const ())

let fig2_cmd =
  let run tech = with_timer (fun () ->
      let series = Exp_model.fig2 ~tech:(tech_of_name tech) () in
      Exp_model.print_invariance std
        ~title:"Fig 2: T*Ieff/(Vdd+V') constancy vs Vdd" series)
  in
  Cmd.v (Cmd.info "fig2" ~doc:"Vdd-invariance of the timing model (Fig 2)")
    Term.(const run $ tech_arg "n14")

let fig3_cmd =
  let run tech = with_timer (fun () ->
      let series = Exp_model.fig3 ~tech:(tech_of_name tech) () in
      Exp_model.print_invariance std
        ~title:"Fig 3: Td/(Cload+Cpar+a*Sin) constancy vs (Cload,Sin)" series)
  in
  Cmd.v (Cmd.info "fig3" ~doc:"(Cload,Sin)-invariance of the timing model (Fig 3)")
    Term.(const run $ tech_arg "n14")

let fig5_cmd =
  let run tech =
    Exp_nominal.print_fig5 std (Exp_nominal.fig5 (tech_of_name tech))
  in
  Cmd.v (Cmd.info "fig5" ~doc:"Validation input spread (Fig 5)")
    Term.(const run $ tech_arg "n28")

let fig6_cmd =
  let run scale tech = with_timer (fun () ->
      let r =
        Exp_nominal.fig6 ~config:(config_of scale)
          ~tech:(tech_of_name tech) ()
      in
      Exp_nominal.print_fig6 std r)
  in
  Cmd.v
    (Cmd.info "fig6"
       ~doc:"Nominal error vs training samples, Bayes/LSE/LUT (Fig 6)")
    Term.(const run $ scale_arg $ tech_arg "n14")

let fig78_cmd =
  let run scale tech = with_timer (fun () ->
      let r =
        Exp_statistical.fig78 ~config:(config_of scale)
          ~tech:(tech_of_name tech) ()
      in
      Exp_statistical.print_fig78 std r)
  in
  Cmd.v
    (Cmd.info "fig78"
       ~doc:"Statistical mean/sigma errors vs training samples (Figs 7-8)")
    Term.(const run $ scale_arg $ tech_arg "n28")

let fig9_cmd =
  let run scale tech = with_timer (fun () ->
      let r =
        Exp_statistical.fig9 ~config:(config_of scale)
          ~tech:(tech_of_name tech) ()
      in
      Exp_statistical.print_fig9 std r)
  in
  Cmd.v (Cmd.info "fig9" ~doc:"Delay pdf at a low-Vdd condition (Fig 9)")
    Term.(const run $ scale_arg $ tech_arg "n28")

let ablations_cmd =
  let run scale = with_timer (fun () ->
      let config = config_of scale in
      Exp_ablation.print_rows std ~title:"Ablation: learned vs constant beta"
        (Exp_ablation.ablation_beta ~config ());
      Exp_ablation.print_rows std
        ~title:"Ablation: historical-library selection"
        (Exp_ablation.ablation_history ~config ());
      Exp_ablation.print_rows std ~title:"Ablation: pooled vs chained prior"
        (Exp_ablation.ablation_chain ~config ());
      Exp_ablation.print_rows std
        ~title:"Ablation: curated vs random fitting design"
        (Exp_ablation.ablation_design ~config ());
      Exp_ablation.print_complexity std
        (Exp_ablation.ablation_model_complexity ());
      Exp_extension.print_result std (Exp_extension.vt_transfer ~config ()))
  in
  Cmd.v (Cmd.info "ablations" ~doc:"Design-choice ablations")
    Term.(const run $ scale_arg)

let characterize_cmd =
  let cell_arg =
    Arg.(value & opt string "NAND2" & info [ "c"; "cell" ] ~doc:"Cell name.")
  in
  let pin_arg = Arg.(value & opt string "A" & info [ "p"; "pin" ] ~doc:"Input pin.") in
  let k_arg =
    Arg.(value & opt int 2 & info [ "k" ] ~doc:"Fitting simulations.")
  in
  let run tech cell pin k =
    let tech = tech_of_name tech in
    let cell =
      match Cells.by_name cell with
      | c -> c
      | exception Not_found ->
        Printf.eprintf "unknown cell %S\n" cell;
        exit 2
    in
    let arc =
      match Arc.find cell ~pin ~out_dir:Arc.Fall with
      | a -> a
      | exception Not_found ->
        Printf.eprintf "no falling arc on pin %S\n" pin;
        exit 2
    in
    with_timer (fun () ->
        Format.fprintf std "Learning prior from %s...@."
          (String.concat ","
             (List.map (fun t -> t.Tech.name) (Tech.historical_for tech)));
        let prior = Prior.learn_pair ~historical:(Tech.historical_for tech) () in
        let p = Char_flow.train_bayes ~prior tech arc ~k in
        let ds =
          Char_flow.simulate_dataset tech arc
            (Input_space.validation_set ~n:100 ~seed:1 tech)
        in
        let e = Char_flow.evaluate p ds in
        Format.fprintf std
          "%s in %s with k=%d: Td err %.2f%%, Sout err %.2f%%@."
          (Arc.name arc) tech.Tech.name k
          (100.0 *. e.Char_flow.td_err)
          (100.0 *. e.Char_flow.sout_err))
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Characterize one arc with the Bayesian flow and report error")
    Term.(const run $ tech_arg "n14" $ cell_arg $ pin_arg $ k_arg)

let prior_cmd =
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~doc:"Save the learned prior to FILE.")
  in
  let load_arg =
    Arg.(value & opt (some string) None & info [ "load" ] ~doc:"Load a prior from FILE instead of learning.")
  in
  let run tech save load =
    let tech = tech_of_name tech in
    with_timer (fun () ->
        let prior =
          match load with
          | Some path ->
            Format.fprintf std "loading prior from %s@." path;
            Prior_io.load path
          | None ->
            Format.fprintf std "learning prior from %s@."
              (String.concat ","
                 (List.map (fun t -> t.Tech.name) (Tech.historical_for tech)));
            Prior.learn_pair ~historical:(Tech.historical_for tech) ()
        in
        Prior.pp_summary std prior.Prior.delay;
        match save with
        | Some path ->
          Prior_io.save path prior;
          Format.fprintf std "saved prior to %s@." path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "prior"
       ~doc:"Learn (or load) the historical prior; optionally save it")
    Term.(const run $ tech_arg "n14" $ save_arg $ load_arg)

let corners_cmd =
  let cell_arg =
    Arg.(value & opt string "INV" & info [ "c"; "cell" ] ~doc:"Cell name.")
  in
  let run tech cell =
    let tech0 = tech_of_name tech in
    let cell =
      match Cells.by_name cell with
      | c -> c
      | exception Not_found ->
        Printf.eprintf "unknown cell %S\n" cell;
        exit 2
    in
    let arc = Arc.find cell ~pin:"A" ~out_dir:Arc.Fall in
    let module Process = Slc_device.Process in
    let vdd_lo, vdd_hi = tech0.Tech.vdd_range in
    let rows =
      List.map
        (fun (label, corner, celsius, vdd) ->
          let t = Tech.at_temperature tech0 ~celsius in
          let seed = Process.corner t corner in
          let m =
            Harness.simulate ~seed t arc
              { Harness.sin = 5e-12; cload = 2e-15; vdd }
          in
          [
            label;
            Printf.sprintf "%.0fC" celsius;
            Printf.sprintf "%.2fV" vdd;
            Printf.sprintf "%.2fps" (m.Harness.td *. 1e12);
            Printf.sprintf "%.2fps" (m.Harness.sout *. 1e12);
            Printf.sprintf "%.3ffJ" (m.Harness.energy *. 1e15);
          ])
        [
          ("SS (worst)", Process.Ss, 125.0, vdd_lo);
          ("TT (typ)", Process.Tt, 25.0, 0.5 *. (vdd_lo +. vdd_hi));
          ("FF (best)", Process.Ff, -40.0, vdd_hi);
          ("SF", Process.Sf, 25.0, 0.5 *. (vdd_lo +. vdd_hi));
          ("FS", Process.Fs, 25.0, 0.5 *. (vdd_lo +. vdd_hi));
        ]
    in
    Format.fprintf std "PVT corners for %s in %s:@." (Arc.name arc)
      tech0.Tech.name;
    Report.table std
      ~header:[ "corner"; "temp"; "vdd"; "delay"; "slew"; "energy" ]
      rows
  in
  Cmd.v (Cmd.info "corners" ~doc:"PVT corner table for one cell")
    Term.(const run $ tech_arg "n14" $ cell_arg)

let liberty_cmd =
  let out_arg =
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let run tech out =
    let tech = tech_of_name tech in
    with_timer (fun () ->
        let lib = Slc_cell.Library.characterize tech ~levels:[| 3; 3; 2 |] in
        let text =
          Slc_cell.Liberty.to_string ~vdd:tech.Tech.vdd_nom lib
        in
        if out = "-" then print_string text
        else begin
          Out_channel.with_open_text out (fun oc ->
              Out_channel.output_string oc text);
          Format.fprintf std "wrote %s (%d bytes)@." out (String.length text)
        end)
  in
  Cmd.v
    (Cmd.info "liberty" ~doc:"Characterize a full library and emit .lib text")
    Term.(const run $ tech_arg "n28" $ out_arg)

let sta_cmd =
  let netlist_arg =
    Arg.(required & opt (some string) None & info [ "n"; "netlist" ] ~doc:"Structural Verilog file.")
  in
  let clock_arg =
    Arg.(value & opt float 60e-12 & info [ "clock" ] ~doc:"Required time at the outputs, seconds.")
  in
  let k_arg = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Fitting sims per arc.") in
  let prior_arg =
    Arg.(value & opt (some string) None & info [ "prior" ] ~doc:"Load the prior from FILE (else learn it).")
  in
  let run tech netlist clock k prior_path =
    let tech = tech_of_name tech in
    let src = In_channel.with_open_text netlist In_channel.input_all in
    let v =
      match Slc_ssta.Verilog.parse src with
      | v -> v
      | exception Slc_ssta.Verilog.Parse_error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 2
    in
    with_timer (fun () ->
        let dag, _, outputs =
          Slc_ssta.Verilog.to_sdag v tech ~vdd:tech.Tech.vdd_nom
        in
        let prior =
          match prior_path with
          | Some p -> Prior_io.load p
          | None -> Prior.learn_pair ~historical:(Tech.historical_for tech) ()
        in
        let oracle = Slc_ssta.Oracle.bayes_bank ~prior tech ~k in
        let input_arrivals _ =
          Slc_ssta.Sdag.input_edge ~at:0.0 ~slew:5e-12 ~rises:true
        in
        let rows =
          Slc_ssta.Sdag.slack_report dag oracle ~input_arrivals
            ~outputs:(List.map (fun (_, n) -> (n, clock)) outputs)
        in
        Format.fprintf std "%s: slack report at Tclk=%.2fps@."
          v.Slc_ssta.Verilog.module_name (clock *. 1e12);
        Report.table std
          ~header:[ "net"; "arrival(ps)"; "required(ps)"; "slack(ps)" ]
          (List.filter_map
             (fun r ->
               if r.Slc_ssta.Sdag.required_time < Float.infinity then
                 Some
                   [
                     r.Slc_ssta.Sdag.net_label;
                     Printf.sprintf "%.2f" (r.Slc_ssta.Sdag.arrival_time *. 1e12);
                     Printf.sprintf "%.2f" (r.Slc_ssta.Sdag.required_time *. 1e12);
                     Printf.sprintf "%+.2f" (r.Slc_ssta.Sdag.slack *. 1e12);
                   ]
               else None)
             rows))
  in
  Cmd.v
    (Cmd.info "sta"
       ~doc:"Slack report for a structural-Verilog netlist (Bayes-characterized library)")
    Term.(const run $ tech_arg "n14" $ netlist_arg $ clock_arg $ k_arg $ prior_arg)

let all_cmd =
  let run scale = with_timer (fun () ->
      let config = config_of scale in
      Exp_model.print_table1 std (Exp_model.table1 ());
      Exp_model.print_invariance std ~title:"Fig 2" (Exp_model.fig2 ());
      Exp_model.print_invariance std ~title:"Fig 3" (Exp_model.fig3 ());
      Exp_nominal.print_fig5 std (Exp_nominal.fig5 Tech.n28);
      Exp_nominal.print_fig6 std (Exp_nominal.fig6 ~config ());
      Exp_statistical.print_fig78 std (Exp_statistical.fig78 ~config ());
      Exp_statistical.print_fig9 std (Exp_statistical.fig9 ~config ()))
  in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every table and figure")
    Term.(const run $ scale_arg)

let main =
  Cmd.group
    (Cmd.info "slc-cli" ~version:"1.0.0"
       ~doc:
         "Statistical library characterization using belief propagation \
          across technology nodes (DATE 2015 reproduction)")
    [
      table1_cmd; fig2_cmd; fig3_cmd; fig5_cmd; fig6_cmd; fig78_cmd; fig9_cmd;
      ablations_cmd; characterize_cmd; corners_cmd; liberty_cmd; prior_cmd;
      sta_cmd; all_cmd;
    ]

let () = exit (Cmd.eval main)
