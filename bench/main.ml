(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per paper
   table/figure, timing the computational kernel that experiment
   stresses (transient simulation, LSE/MAP extraction, LUT build and
   lookup, per-seed extraction, KDE), plus ablation kernels.

   Part 2 — regeneration: re-runs every table and figure of the paper
   at the configured scale (SLC_SCALE, default 1.0) and prints the
   same rows/series the paper reports, including the iso-accuracy
   speedup factors. *)

open Bechamel
open Slc_core
module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Equivalent = Slc_cell.Equivalent
module Process = Slc_device.Process

let std = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Shared fixtures, prepared once so the benchmark loops measure the
   kernels and not the setup. *)

let tech14 = Tech.n14

let tech28 = Tech.n28

let nor2_fall = Arc.find Cells.nor2 ~pin:"A" ~out_dir:Arc.Fall

let inv_fall = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall

let mid_point = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 }

let tiny_prior =
  lazy
    (Prior.learn_pair ~cells:[ Cells.inv ] ~grid_levels:[| 2; 2; 2 |]
       ~historical:[ Tech.n20; Tech.n45 ] ())

let dense_obs =
  lazy
    (let points = Input_space.fitting_points tech14 ~k:48 in
     let eq = Equivalent.of_arc tech14 nor2_fall in
     Array.map
       (fun (p : Harness.point) ->
         let m = Harness.simulate tech14 nor2_fall p in
         {
           Extract_lse.point = p;
           ieff = Equivalent.ieff eq ~vdd:p.Harness.vdd;
           value = m.Harness.td;
         })
       points)

let small_obs = lazy (Array.sub (Lazy.force dense_obs) 0 2)

let lut_table = lazy (Slc_cell.Nldm.build tech14 nor2_fall ~levels:[| 3; 3; 2 |])

let kde_fixture =
  lazy
    (let rng = Slc_prob.Rng.create 5 in
     let xs =
       Array.init 200 (fun _ ->
           Slc_prob.Dist.gaussian rng ~mu:2e-11 ~sigma:2e-12)
     in
     Slc_prob.Kde.fit xs)

let seed_fixture =
  lazy
    (let rng = Slc_prob.Rng.create 11 in
     Process.sample rng tech28 0)

(* Persistent-store fixtures: a tiny LSE population (2 seeds x 2 points)
   against a throwaway store.  The cold kernel deletes the final
   artifact each run, so every iteration pays simulate + fit +
   serialize + atomic write; the warm kernel measures the pure hit
   path (read + parse + predictor rebuild, zero simulations). *)
module Store = Slc_store.Store

let store_seeds =
  lazy (Process.sample_batch (Slc_prob.Rng.create 17) tech14 2)

let store_fixture =
  lazy
    (let dir =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "slc-bench-store-%d" (Unix.getpid ()))
     in
     let st = Store.open_ dir in
     let seeds = Lazy.force store_seeds in
     let key =
       Store.population_key ~method_:Statistical.Lse
         ~design:Statistical.Curated ~tech:tech14 ~arc:inv_fall ~seeds
         ~budget:2 ~min_points:2
     in
     (* Prime the final artifact so the warm kernel always hits. *)
     ignore
       (Store.extract_population ~store:st ~method_:Statistical.Lse
          ~design:Statistical.Curated ~tech:tech14 ~arc:inv_fall ~seeds
          ~budget:2 ());
     (st, seeds, Store.artifact_path st `Population key))

let store_extract st seeds =
  Store.extract_population ~store:st ~method_:Statistical.Lse
    ~design:Statistical.Curated ~tech:tech14 ~arc:inv_fall ~seeds ~budget:2 ()

let bench_store_cold =
  Test.make ~name:"store/population-cold"
    (Staged.stage (fun () ->
         let st, seeds, final = Lazy.force store_fixture in
         (try Sys.remove final with Sys_error _ -> ());
         store_extract st seeds))

let bench_store_warm =
  Test.make ~name:"store/population-warm"
    (Staged.stage (fun () ->
         let st, seeds, _ = Lazy.force store_fixture in
         store_extract st seeds))

(* ------------------------------------------------------------------ *)
(* Characterization-server kernel: one request through the whole serve
   answer path — wire parse, dispatch on the resident engine (memo
   lookups included), response format — against an injected
   constant-time bank.  What this measures is the per-query overhead a
   warm daemon adds on top of the oracle itself; the real
   characterization cost is covered by the fig/table kernels above. *)

let serve_bank _tech ~k =
  {
    Slc_ssta.Oracle.label = "bench-serve";
    query =
      (fun arc (pt : Harness.point) ->
        let base = float_of_int (String.length (Arc.name arc) + k) in
        ( (base *. 1e-12) +. (0.5 *. pt.Harness.sin)
          +. (pt.Harness.cload /. 1e-3),
          (base *. 2e-12) +. (0.25 *. pt.Harness.sin) ));
  }

let serve_request_line = "delay n14 INV A fall 3 5e-12 2e-15 0.8"

let serve_fixture =
  lazy
    (let engine = Slc_server.Engine.create ~bank:serve_bank () in
     (* Warm the per-(tech, k) bank memo so the kernel times the
        steady-state path, not the first-miss build. *)
     (match Slc_server.Protocol.parse_request serve_request_line with
     | Ok req -> ignore (Slc_server.Engine.exec engine req)
     | Error e ->
       Printf.eprintf "bench: serve fixture request rejected: %s\n" e;
       exit 2);
     engine)

let bench_serve =
  Test.make ~name:"serve/queries-per-sec"
    (Staged.stage (fun () ->
         let engine = Lazy.force serve_fixture in
         match Slc_server.Protocol.parse_request serve_request_line with
         | Ok req ->
           Slc_server.Protocol.format_response (Slc_server.Engine.exec engine req)
         | Error e -> e))

(* --serve-saturation: an end-to-end socket throughput check — an
   in-process daemon on a Unix socket, N client threads each streaming
   M requests and verifying every reply.  Exits non-zero if any reply
   is wrong, so CI can use --quick as a smoke gate. *)
let serve_saturation ~quick () =
  let engine = Slc_server.Engine.create ~bank:serve_bank () in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "slc-bench-serve-%d.sock" (Unix.getpid ()))
  in
  let srv = Slc_server.Server.start engine (Slc_server.Server.Unix_socket path) in
  let clients = if quick then 4 else 8 in
  let requests = if quick then 50 else 2000 in
  let errors = Atomic.make 0 in
  let client () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try
       for _ = 1 to requests do
         output_string oc (serve_request_line ^ "\n");
         flush oc;
         let reply = input_line ic in
         if
           String.length reply < 9
           || not (String.equal (String.sub reply 0 9) "ok delay ")
         then Atomic.incr errors
       done
     with End_of_file | Sys_error _ -> Atomic.incr errors);
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun _ -> Thread.create client ()) in
  List.iter Thread.join threads;
  let secs = Unix.gettimeofday () -. t0 in
  Slc_server.Server.stop srv;
  let total = clients * requests in
  Printf.printf
    "serve saturation: %d clients x %d requests = %d queries in %.3f s \
     (%.0f queries/s), %d bad replies\n"
    clients requests total secs
    (float_of_int total /. secs)
    (Atomic.get errors);
  exit (if Atomic.get errors > 0 then 1 else 0)

(* ------------------------------------------------------------------ *)
(* One benchmark per table/figure. *)

let bench_table1 =
  (* Table I kernel: dense LSE extraction of the 4 parameters. *)
  Test.make ~name:"table1/lse-extraction-48pts"
    (Staged.stage (fun () -> Extract_lse.fit (Lazy.force dense_obs)))

let bench_fig2 =
  (* Fig 2 kernel: one full transient simulation of the NOR2 arc. *)
  Test.make ~name:"fig2/transient-simulation"
    (Staged.stage (fun () -> Harness.simulate tech14 nor2_fall mid_point))

let bench_fig3 =
  (* Fig 3 kernel: Ieff evaluation of the equivalent inverter. *)
  Test.make ~name:"fig3/equivalent-ieff"
    (Staged.stage (fun () ->
         let eq = Equivalent.of_arc tech14 nor2_fall in
         Equivalent.ieff eq ~vdd:0.8))

let bench_fig5 =
  Test.make ~name:"fig5/validation-set-1000"
    (Staged.stage (fun () -> Input_space.validation_set ~n:1000 ~seed:1 tech14))

let bench_fig6_map =
  (* Fig 6 kernel: MAP extraction from k = 2 observations. *)
  Test.make ~name:"fig6/map-fit-k2"
    (Staged.stage (fun () ->
         Map_fit.fit_params
           ~prior:(Lazy.force tiny_prior).Prior.delay
           ~tech:tech14 (Lazy.force small_obs)))

let bench_fig6_lut =
  Test.make ~name:"fig6/lut-lookup"
    (Staged.stage (fun () ->
         Slc_cell.Nldm.lookup_td (Lazy.force lut_table) mid_point))

let bench_fig78 =
  (* Fig 7/8 kernel: per-seed simulate-and-extract at k = 2. *)
  Test.make ~name:"fig78/per-seed-extraction"
    (Staged.stage (fun () ->
         Char_flow.train_bayes
           ~seed:(Lazy.force seed_fixture)
           ~prior:(Lazy.force tiny_prior) tech28 inv_fall ~k:2))

let batch_lanes_fixture =
  (* 16 lockstep lanes of the NOR2 arc: same topology, per-lane load
     spread, as Statistical's (seed x point) batches present it. *)
  lazy
    (Array.init 16 (fun i ->
         ( Process.nominal,
           {
             mid_point with
             Harness.cload = 2e-15 *. (1.0 +. (0.02 *. float_of_int i));
           } )))

let bench_fig2_batch =
  (* Fig 2 batch kernel: 16 transient simulations advanced in lockstep
     by the structure-of-arrays engine.  Per-simulation cost is this
     time / 16, to be held against fig2/transient-simulation. *)
  Test.make ~name:"fig2/transient-batch"
    (Staged.stage (fun () ->
         Harness.simulate_batch tech14 nor2_fall (Lazy.force batch_lanes_fixture)))

let batch_seeds_fixture =
  lazy (Process.sample_batch (Slc_prob.Rng.create 11) tech28 4)

let bench_fig78_batch =
  (* Fig 7/8 batched variant: a 4-seed population extraction whose
     (seed x point) simulation grid rides the batch engine end to end. *)
  Test.make ~name:"fig78/per-seed-extraction-batch"
    (Staged.stage (fun () ->
         Statistical.extract_population ~method_:Statistical.Lse ~tech:tech28
           ~arc:inv_fall
           ~seeds:(Lazy.force batch_seeds_fixture)
           ~budget:2 ()))

let bench_fig78_adaptive =
  (* Adaptive-design variant: information-gain point selection drives
     the same 4-seed population through round-based lockstep batches.
     Overhead vs fig78/per-seed-extraction-batch is the acquisition
     cost (refits + candidate scoring) on top of the simulations. *)
  Test.make ~name:"fig78/adaptive-budget"
    (Staged.stage (fun () ->
         Statistical.extract_population_design
           ~design:
             (Statistical.Adaptive
                (Statistical.adaptive_defaults (Slc_prob.Rng.create 7)))
           ~method_:(Statistical.Bayes (Lazy.force tiny_prior))
           ~tech:tech28 ~arc:inv_fall
           ~seeds:(Lazy.force batch_seeds_fixture)
           ~budget:2 ()))

let bench_fig9 =
  Test.make ~name:"fig9/kde-evaluate-80"
    (Staged.stage (fun () ->
         let k = Lazy.force kde_fixture in
         Slc_prob.Kde.evaluate k (Slc_prob.Kde.grid k 80)))

let bench_ablation_beta =
  Test.make ~name:"ablation/beta-lookup"
    (Staged.stage (fun () ->
         Prior.beta_at (Lazy.force tiny_prior).Prior.delay tech14 mid_point))

let ssta_chain =
  lazy
    (Slc_cell.Chain.make tech14
       [
         Slc_cell.Chain.stage Cells.inv "A";
         Slc_cell.Chain.stage Cells.nand2 "A";
         Slc_cell.Chain.stage Cells.nor2 "B";
       ])

let bench_ssta =
  (* SSTA kernel: propagate a 3-stage path through the compact models. *)
  Test.make ~name:"ssta/path-propagation"
    (Staged.stage (fun () ->
         let oracle =
           Slc_ssta.Oracle.bayes_bank ~prior:(Lazy.force tiny_prior) tech14
             ~k:2
         in
         Slc_ssta.Path.propagate oracle (Lazy.force ssta_chain) ~sin:5e-12
           ~vdd:0.8 ~in_rises:true))

let bench_ablation_chain =
  Test.make ~name:"ablation/belief-chain"
    (Staged.stage (fun () ->
         Belief.chain_prior (Lazy.force tiny_prior).Prior.delay
           ~ordered:[ "n45"; "n20" ]))

(* ------------------------------------------------------------------ *)
(* Large-design SSTA: deterministic generated netlists over the paper's
   INV/NAND2/NOR2 set, timed against an NLDM library oracle so queries
   cost an interpolation, not a simulation — the regime where the
   compiled graph engine itself is what's being measured. *)

let ssta_library_oracle =
  lazy
    (Slc_ssta.Oracle.of_library
       (Slc_cell.Library.characterize
          ~cells:[ Cells.inv; Cells.nand2; Cells.nor2 ]
          tech14 ~levels:[| 2; 2; 2 |]))

let design_10k =
  lazy (Slc_ssta.Generate.design tech14 ~vdd:0.8 ~seed:7 ~gates:10_000)

let design_100k =
  lazy (Slc_ssta.Generate.design tech14 ~vdd:0.8 ~seed:7 ~gates:100_000)

let design_inputs _ = Slc_ssta.Generate.both_edges ~at:0.0 ~slew:5e-12

let slack_pass ?cache ?domains d =
  let open Slc_ssta in
  Sdag.slack_report_compiled ?cache ?domains d.Generate.compiled
    (Lazy.force ssta_library_oracle) ~input_arrivals:design_inputs
    ~outputs:(Generate.required d 1e-9)

(* Warm persistent caches, primed by one full pass each. *)
let warm_cache_10k =
  lazy
    (let c = Slc_ssta.Oracle.make_cache () in
     ignore (slack_pass ~cache:c (Lazy.force design_10k));
     c)

let warm_cache_100k =
  lazy
    (let c = Slc_ssta.Oracle.make_cache () in
     ignore (slack_pass ~cache:c (Lazy.force design_100k));
     c)

let bench_ssta_10k =
  (* Levelized forward + backward + report, warm oracle cache, domain
     pool at its default width (SLC_DOMAINS governs). *)
  Test.make ~name:"ssta/large-design-10k"
    (Staged.stage (fun () ->
         slack_pass ~cache:(Lazy.force warm_cache_10k) (Lazy.force design_10k)))

let bench_ssta_10k_seq =
  (* The sequential reference for the same pass: the parallel speedup
     is 10k / 10k-seq on a multi-core host (bitwise-identical rows). *)
  Test.make ~name:"ssta/large-design-10k-seq"
    (Staged.stage (fun () ->
         Slc_num.Parallel.sequential (fun () ->
             slack_pass
               ~cache:(Lazy.force warm_cache_10k)
               (Lazy.force design_10k))))

let bench_ssta_10k_cold =
  (* Cold oracle: a fresh exact cache per pass, so every distinct
     (arc, slew, load) pays one NLDM interpolation. *)
  Test.make ~name:"ssta/large-design-10k-cold"
    (Staged.stage (fun () ->
         slack_pass
           ~cache:(Slc_ssta.Oracle.make_cache ())
           (Lazy.force design_10k)))

let bench_ssta_100k =
  Test.make ~name:"ssta/large-design-100k"
    (Staged.stage (fun () ->
         slack_pass
           ~cache:(Lazy.force warm_cache_100k)
           (Lazy.force design_100k)))

let belief_graph_fixture =
  (* A diamond over synthetic per-node populations: the smallest shape
     where residual scheduling and multi-parent combination both run. *)
  lazy
    (let rows shift n =
       Array.init n (fun i ->
           Timing_model.to_vec
             {
               Timing_model.kd = 0.3 +. shift +. (0.002 *. float_of_int i);
               cpar = 1.0 +. (0.01 *. float_of_int i);
               v_off = -0.2 +. (0.5 *. shift);
               alpha = 0.1;
             })
     in
     Belief.graph_make
       ~nodes:
         [
           ("root", rows 0.00 6); ("left", rows 0.02 5);
           ("right", rows 0.04 5); ("sink", rows 0.03 6);
         ]
       ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
       ())

let bench_belief_graph =
  Test.make ~name:"core/belief-graph"
    (Staged.stage (fun () ->
         Belief.propagate (Lazy.force belief_graph_fixture)))

let light_benches =
  Test.make_grouped ~name:"slc"
    [
      bench_table1; bench_fig2; bench_fig2_batch; bench_fig3; bench_fig5;
      bench_fig6_map; bench_fig6_lut; bench_fig78; bench_fig78_batch;
      bench_fig78_adaptive; bench_fig9; bench_ablation_beta;
      bench_ablation_chain; bench_belief_graph; bench_ssta;
      bench_store_cold; bench_store_warm; bench_serve;
    ]

(* Measured in a second batch, AFTER every light kernel: their fixtures
   (10k/100k-gate designs plus warm oracle caches holding one entry per
   distinct load) keep tens of MB live for the rest of the process, and
   a big live major heap taxes every allocating kernel measured while
   it exists — the GC's steady-state slice work scales with heap size,
   which was observed to inflate sub-ms kernels by orders of magnitude
   when the fixtures were primed up front. *)
let large_benches =
  Test.make_grouped ~name:"slc"
    [ bench_ssta_10k; bench_ssta_10k_seq; bench_ssta_10k_cold;
      bench_ssta_100k ]

(* The large-design fixtures are expensive to force (library
   characterization, 10k/100k-gate generation, cache priming); doing it
   lazily inside a measured closure would charge the whole setup to the
   first iteration and wreck short-quota estimates, so force them
   between the two batches. *)
let prime_ssta_fixtures () =
  ignore (Lazy.force ssta_library_oracle);
  ignore (Lazy.force warm_cache_10k);
  ignore (Lazy.force warm_cache_100k)

let run_benchmarks ~quick () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    (* --quick is a CI smoke setting: just enough iterations to prove
       every kernel runs and produce a JSON artifact, not a stable
       measurement. *)
    if quick then
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.02) ~stabilize:false ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let measure tests =
    let raw = Benchmark.all cfg instances tests in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let light = measure light_benches in
  prime_ssta_fixtures ();
  let large = measure large_benches in
  Format.fprintf std "== Micro-benchmarks (one per table/figure) ==@.";
  Format.fprintf std "%-34s %14s@." "kernel" "time per run";
  let rows = ref [] in
  Hashtbl.iter (fun name v -> rows := (name, v) :: !rows) light;
  Hashtbl.iter (fun name v -> rows := (name, v) :: !rows) large;
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) !rows in
  let estimates =
    List.map
      (fun (name, v) ->
        match Analyze.OLS.estimates v with
        | Some [ ns ] -> (name, Some ns)
        | _ -> (name, None))
      rows
  in
  List.iter
    (fun (name, est) ->
      match est with
      | Some ns ->
        let pretty =
          if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
          else Printf.sprintf "%8.0f ns" ns
        in
        Format.fprintf std "%-34s %14s@." name pretty
      | None -> Format.fprintf std "%-34s %14s@." name "n/a")
    estimates;
  Format.fprintf std "@.";
  estimates

(* ------------------------------------------------------------------ *)
(* Figure/table regeneration. *)

let section title =
  Format.fprintf std "@.%s@.%s@." title (String.make (String.length title) '=')

(* Per-section regeneration stats, collected for the machine-readable
   trajectory (--json). *)
let regen_stats : (string * int * float) list ref = ref []

let regenerate () =
  let config = Config.default () in
  Format.fprintf std
    "Regenerating all paper tables/figures at scale %.2f (SLC_SCALE to change)@."
    config.Config.scale;
  let timed name f =
    let t0 = Unix.gettimeofday () in
    Harness.reset_sim_count ();
    f ();
    let sims = Harness.sim_count () in
    let secs = Unix.gettimeofday () -. t0 in
    regen_stats := (name, sims, secs) :: !regen_stats;
    Format.fprintf std "[%s: %d simulator runs, %.1f s]@." name sims secs
  in
  section "Table I";
  timed "table1" (fun () -> Exp_model.print_table1 std (Exp_model.table1 ()));
  section "Fig 2";
  timed "fig2" (fun () ->
      Exp_model.print_invariance std
        ~title:"T*Ieff/(Vdd+V') vs Vdd (NOR2, n14)" (Exp_model.fig2 ()));
  section "Fig 3";
  timed "fig3" (fun () ->
      Exp_model.print_invariance std
        ~title:"Td/(Cload+Cpar+a*Sin) vs (Cload,Sin) (NOR2, n14)"
        (Exp_model.fig3 ()));
  section "Fig 5";
  Exp_nominal.print_fig5 std (Exp_nominal.fig5 Tech.n28);
  section "Fig 6";
  timed "fig6" (fun () ->
      Exp_nominal.print_fig6 std (Exp_nominal.fig6 ~config ()));
  section "Figs 7/8";
  timed "fig78" (fun () ->
      Exp_statistical.print_fig78 std (Exp_statistical.fig78 ~config ()));
  section "Fig 9";
  timed "fig9" (fun () ->
      Exp_statistical.print_fig9 std (Exp_statistical.fig9 ~config ()));
  section "Extension: adaptive simulation budgets";
  timed "adaptive-budget" (fun () ->
      (* Force the telemetry [simulations] counter on for this section:
         the headline claim is a simulator-run count, and printing it
         from the counter keeps the accounting shared with [slc stats]
         rather than a bench-private tally. *)
      let was_on = Slc_obs.Telemetry.on () in
      Slc_obs.Telemetry.enable ();
      let sims0 = Slc_obs.Telemetry.read Slc_obs.Telemetry.simulations in
      let r = Exp_statistical.adaptive_budget ~config () in
      Exp_statistical.print_adaptive_budget std r;
      Format.fprintf std "[telemetry simulations counter: %d]@."
        (Slc_obs.Telemetry.read Slc_obs.Telemetry.simulations - sims0);
      if not was_on then Slc_obs.Telemetry.disable ());
  section "Ablations";
  timed "ablations" (fun () ->
      Exp_ablation.print_rows std ~title:"learned vs constant beta(xi)"
        (Exp_ablation.ablation_beta ~config ());
      Exp_ablation.print_rows std ~title:"historical-library selection"
        (Exp_ablation.ablation_history ~config ());
      Exp_ablation.print_rows std ~title:"pooled vs belief-chain prior"
        (Exp_ablation.ablation_chain ~config ());
      Exp_ablation.print_rows std ~title:"curated vs random fitting design"
        (Exp_ablation.ablation_design ~config ());
      Exp_ablation.print_complexity std
        (Exp_ablation.ablation_model_complexity ());
      Exp_ablation.print_sampling std (Exp_ablation.ablation_sampling ()));
  section "Extension: multi-Vt transfer";
  timed "vt-transfer" (fun () ->
      Exp_extension.print_result std (Exp_extension.vt_transfer ~config ()));
  section "Extension: sequential (DFF) setup characterization";
  timed "dff-setup" (fun () ->
      let module Seq = Slc_cell.Seq in
      List.iter
        (fun vdd ->
          let rise = Seq.setup_time ~resolution:2e-13 tech14 ~vdd ~data_rises:true in
          let fall = Seq.setup_time ~resolution:2e-13 tech14 ~vdd ~data_rises:false in
          let hold = Seq.hold_time ~resolution:2e-13 tech14 ~vdd ~data_rises:true in
          Format.fprintf std
            "vdd=%.2fV: setup(rise)=%.2fps  setup(fall)=%.2fps  hold(rise)=%.2fps@."
            vdd (rise *. 1e12) (fall *. 1e12) (hold *. 1e12))
        [ 0.8; 0.7 ]);
  section "Extension: ring-oscillator cross-check";
  timed "ring" (fun () ->
      let module Ring = Slc_cell.Ring in
      List.iter
        (fun vdd ->
          let r = Ring.simulate ~stages:5 tech14 ~vdd in
          Format.fprintf std
            "vdd=%.2fV: f=%.2f GHz, stage delay %.2f ps (%d cycles)@." vdd
            (r.Ring.frequency /. 1e9)
            (r.Ring.stage_delay *. 1e12)
            r.Ring.cycles_measured)
        [ 0.8; 0.7 ]);
  section "Extension: SSTA consumer validation";
  timed "ssta" (fun () ->
      let chain =
        Slc_cell.Chain.make tech14
          [
            Slc_cell.Chain.stage Cells.inv "A";
            Slc_cell.Chain.stage ~wire_cap:1e-15 Cells.nand2 "A";
            Slc_cell.Chain.stage Cells.nor2 "B";
            Slc_cell.Chain.stage Cells.inv "A";
            Slc_cell.Chain.stage Cells.aoi21 "A";
          ]
      in
      let truth =
        Slc_cell.Chain.simulate chain ~sin:5e-12 ~vdd:0.8 ~in_rises:true
      in
      let prior = Prior.learn_pair ~historical:(Tech.historical_for tech14) () in
      let oracle = Slc_ssta.Oracle.bayes_bank ~prior tech14 ~k:3 in
      let t =
        Slc_ssta.Path.propagate oracle chain ~sin:5e-12 ~vdd:0.8 ~in_rises:true
      in
      Format.fprintf std
        "5-stage path: transistor-level %.2f ps, model-based %.2f ps (%+.1f%%)@."
        (truth.Slc_cell.Chain.total_delay *. 1e12)
        (t.Slc_ssta.Path.total_delay *. 1e12)
        (100.0
        *. (t.Slc_ssta.Path.total_delay -. truth.Slc_cell.Chain.total_delay)
        /. truth.Slc_cell.Chain.total_delay))

(* ------------------------------------------------------------------ *)
(* Machine-readable bench trajectory: --json <path> dumps the per-kernel
   ns/run estimates and the regeneration simulator-run counts, so
   successive PRs have comparable perf records (BENCH_PR<n>.json). *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path ~kernels ~regen =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"unix_time\": %.0f,\n" (Unix.time ()));
  Buffer.add_string b "  \"kernels\": {\n";
  let n_k = List.length kernels in
  List.iteri
    (fun i (name, est) ->
      let value =
        match est with
        | Some ns -> Printf.sprintf "%.6g" ns
        | None -> "null"
      in
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": { \"ns_per_run\": %s }%s\n"
           (json_escape name) value
           (if i = n_k - 1 then "" else ",")))
    kernels;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"regen\": {\n";
  let n_r = List.length regen in
  List.iteri
    (fun i (name, sims, secs) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": { \"sims\": %d, \"seconds\": %.3f }%s\n"
           (json_escape name) sims secs
           (if i = n_r - 1 then "" else ",")))
    regen;
  Buffer.add_string b "  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.fprintf std "Wrote bench trajectory to %s@." path

(* ------------------------------------------------------------------ *)
(* --compare A.json B.json: per-kernel speedup of B relative to A.

   The parser reads only the format [write_json] emits — one
   ["name": { "ns_per_run": N }] line per kernel inside the FIRST
   top-level "kernels" object (embedded baseline sections further down
   the file are ignored).  Exits non-zero if any kernel regressed by
   more than 10%, or if a baseline kernel disappeared and --allow-gone
   was not passed (a silently vanishing kernel usually means a rename
   broke the trajectory, not a deliberate removal). *)

let parse_section path ~header parse_line =
  let ic =
    try open_in path
    with Sys_error msg ->
      prerr_endline ("bench: --compare: " ^ msg);
      exit 2
  in
  let rows = ref [] in
  let in_sec = ref false in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if !in_sec then
         if line = "}" || line = "}," then raise Exit
         else
           match parse_line line with
           | Some row -> rows := row :: !rows
           | None -> ()
       else if line = header then in_sec := true
     done
   with Exit | End_of_file -> ());
  close_in ic;
  (!in_sec, List.rev !rows)

(* [(name, Some ns)] per measured kernel; [None] for a kernel whose
   estimate was recorded as [null] (e.g. a --quick run that failed to
   produce an OLS fit). *)
let parse_kernels path =
  let parse_line line =
    try
      Scanf.sscanf line " %S : { %S : %f" (fun name field v ->
          if field = "ns_per_run" then Some (name, Some v) else None)
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> (
      try
        Scanf.sscanf line " %S : { %S : null" (fun name field ->
            if field = "ns_per_run" then Some (name, None) else None)
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
  in
  let found, rows = parse_section path ~header:"\"kernels\": {" parse_line in
  if not found then begin
    Printf.eprintf "bench: --compare: no \"kernels\" section in %s\n" path;
    exit 2
  end;
  rows

(* [(section, sims)] per regeneration section; files written before the
   regen block existed just yield [] (no gate). *)
let parse_regen path =
  let parse_line line =
    try
      Scanf.sscanf line " %S : { %S : %d" (fun name field v ->
          if field = "sims" then Some (name, v) else None)
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
  in
  snd (parse_section path ~header:"\"regen\": {" parse_line)

let usable = function Some ns -> Float.is_finite ns && ns > 0.0 | None -> false

let compare_trajectories ~allow_gone base_path new_path =
  let base = parse_kernels base_path in
  let fresh = parse_kernels new_path in
  let regressions = ref [] in
  let gone = ref [] in
  Printf.printf "== Kernel comparison: %s -> %s ==\n" base_path new_path;
  Printf.printf "%-36s %12s %12s %9s\n" "kernel" "base ns" "new ns" "speedup";
  let pretty = function
    | Some ns when Float.is_finite ns -> Printf.sprintf "%12.4g" ns
    | Some _ | None -> Printf.sprintf "%12s" "n/a"
  in
  List.iter
    (fun (name, b_est) ->
      match List.assoc_opt name fresh with
      | None ->
        (* Kernel removed (or renamed): gate unless --allow-gone. *)
        gone := name :: !gone;
        Printf.printf "%-36s %s %12s %9s\n" name (pretty b_est) "-" "gone"
      | Some n_est ->
        if usable b_est && usable n_est then begin
          let b_ns = Option.get b_est and n_ns = Option.get n_est in
          let speedup = b_ns /. n_ns in
          let flag =
            if n_ns > b_ns *. 1.10 then begin
              regressions := name :: !regressions;
              "  REGRESSION"
            end
            else ""
          in
          Printf.printf "%-36s %12.4g %12.4g %8.2fx%s\n" name b_ns n_ns
            speedup flag
        end
        else
          (* A zero, non-finite or missing estimate on either side makes
             the ratio meaningless: show n/a and skip the gate. *)
          Printf.printf "%-36s %s %s %9s\n" name (pretty b_est)
            (pretty n_est) "n/a")
    base;
  List.iter
    (fun (name, n_est) ->
      if not (List.mem_assoc name base) then
        Printf.printf "%-36s %12s %s %9s\n" name "-" (pretty n_est) "new")
    fresh;
  (* Simulation counts are deterministic per section, so ANY increase is
     a real cost regression (more simulator runs for the same tables),
     not noise — gate on it loudly. *)
  let base_r = parse_regen base_path in
  let new_r = parse_regen new_path in
  let sim_regressions = ref [] in
  if base_r <> [] && new_r <> [] then begin
    Printf.printf "\n== Simulation-count comparison ==\n";
    Printf.printf "%-36s %10s %10s\n" "section" "base sims" "new sims";
    List.iter
      (fun (name, b_sims) ->
        match List.assoc_opt name new_r with
        | None ->
          gone := (name ^ " (regen)") :: !gone;
          Printf.printf "%-36s %10d %10s\n" name b_sims "gone"
        | Some n_sims ->
          let flag =
            if n_sims > b_sims then begin
              sim_regressions := name :: !sim_regressions;
              "  REGRESSION"
            end
            else ""
          in
          Printf.printf "%-36s %10d %10d%s\n" name b_sims n_sims flag)
      base_r;
    List.iter
      (fun (name, n_sims) ->
        if not (List.mem_assoc name base_r) then
          Printf.printf "%-36s %10s %10d\n" name "-" n_sims)
      new_r
  end;
  let failed = ref false in
  (match !regressions with
  | [] -> print_endline "No kernel regressed by more than 10%."
  | rs ->
    failed := true;
    Printf.printf "%d kernel(s) regressed by more than 10%%: %s\n"
      (List.length rs)
      (String.concat ", " (List.rev rs)));
  (match !sim_regressions with
  | [] -> ()
  | rs ->
    failed := true;
    Printf.printf
      "SIMULATION-COUNT REGRESSION: %d section(s) now run more simulations: %s\n"
      (List.length rs)
      (String.concat ", " (List.rev rs)));
  (match List.rev !gone with
  | [] -> ()
  | gs when allow_gone ->
    Printf.printf "%d baseline entr%s gone (allowed by --allow-gone): %s\n"
      (List.length gs)
      (if List.length gs = 1 then "y" else "ies")
      (String.concat ", " gs)
  | gs ->
    failed := true;
    Printf.printf
      "GONE: %d baseline entr%s missing from the new trajectory: %s\n\
       (pass --allow-gone if the removal is deliberate)\n"
      (List.length gs)
      (if List.length gs = 1 then "y" else "ies")
      (String.concat ", " gs));
  exit (if !failed then 1 else 0)

let () =
  (match Array.to_list Sys.argv with
  | _ :: rest ->
    let rec find = function
      | "--compare" :: a :: b :: _ ->
        let allow_gone = Array.exists (fun x -> x = "--allow-gone") Sys.argv in
        compare_trajectories ~allow_gone a b
      | [ "--compare" ] | [ "--compare"; _ ] ->
        prerr_endline "bench: --compare requires two JSON paths";
        exit 2
      | _ :: tl -> find tl
      | [] -> ()
    in
    find rest
  | [] -> ());
  let skip_bench = Array.exists (fun a -> a = "--no-bench") Sys.argv in
  let skip_figs = Array.exists (fun a -> a = "--no-figs") Sys.argv in
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  if Array.exists (fun a -> a = "--serve-saturation") Sys.argv then
    serve_saturation ~quick ();
  let path_flag flag =
    let p = ref None in
    Array.iteri
      (fun i a ->
        if a = flag then
          if i + 1 < Array.length Sys.argv then p := Some Sys.argv.(i + 1)
          else begin
            Printf.eprintf "bench: %s requires a path argument\n" flag;
            exit 2
          end)
      Sys.argv;
    !p
  in
  let json_path = path_flag "--json" in
  let telemetry_path = path_flag "--telemetry" in
  if telemetry_path <> None then Slc_obs.Telemetry.enable ();
  let kernels = if not skip_bench then run_benchmarks ~quick () else [] in
  if not skip_figs then regenerate ();
  (match json_path with
  | Some path -> write_json path ~kernels ~regen:(List.rev !regen_stats)
  | None -> ());
  match telemetry_path with
  | Some path ->
    let oc = open_out path in
    output_string oc (Slc_obs.Telemetry.dump_json ());
    close_out oc;
    Format.fprintf std "Wrote telemetry to %s@." path
  | None -> ()
