(* Tests for the probability / statistics library. *)

open Slc_prob
module Vec = Slc_num.Vec
module Mat = Slc_num.Mat

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.uint64 a) (Rng.uint64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different" true (Rng.uint64 a <> Rng.uint64 b)

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_uniform_moments () =
  let rng = Rng.create 6 in
  let xs = Array.init 40_000 (fun _ -> Rng.uniform rng ~lo:2.0 ~hi:4.0) in
  check_close ~tol:0.02 "mean" 3.0 (Describe.mean xs);
  check_close ~tol:0.02 "std" (2.0 /. sqrt 12.0) (Describe.std xs)

let test_rng_int () =
  let rng = Rng.create 7 in
  let counts = Array.make 5 0 in
  for _ = 1 to 25_000 do
    let i = Rng.int rng 5 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d balanced" i)
        true
        (c > 4_500 && c < 5_500))
    counts

let test_rng_split_independence () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  Alcotest.(check bool) "streams differ" true (Rng.uint64 a <> Rng.uint64 b)

let test_shuffle_permutes () =
  let rng = Rng.create 10 in
  let a = Array.init 20 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  Array.sort compare b;
  Alcotest.(check (array int)) "same multiset" a b

(* ------------------------------------------------------------------ *)
(* Dist *)

let test_gaussian_moments () =
  let rng = Rng.create 21 in
  let xs = Array.init 50_000 (fun _ -> Dist.gaussian rng ~mu:5.0 ~sigma:2.0) in
  check_close ~tol:0.05 "mean" 5.0 (Describe.mean xs);
  check_close ~tol:0.05 "std" 2.0 (Describe.std xs);
  check_close ~tol:0.08 "skew" 0.0 (Describe.skewness xs)

let test_gaussian_ks () =
  let rng = Rng.create 22 in
  let xs = Array.init 5_000 (fun _ -> Dist.standard_gaussian rng) in
  let d = Stattest.ks_against_cdf xs (Dist.gaussian_cdf ~mu:0.0 ~sigma:1.0) in
  Alcotest.(check bool) "KS small" true (d < 0.03)

let test_truncated_gaussian_bounds () =
  let rng = Rng.create 23 in
  for _ = 1 to 2_000 do
    let x = Dist.truncated_gaussian rng ~mu:0.0 ~sigma:1.0 ~lo:(-0.5) ~hi:0.7 in
    Alcotest.(check bool) "inside" true (x >= -0.5 && x <= 0.7)
  done

let test_lognormal_positive () =
  let rng = Rng.create 24 in
  for _ = 1 to 1_000 do
    Alcotest.(check bool)
      "positive" true
      (Dist.lognormal rng ~mu:0.0 ~sigma:0.5 > 0.0)
  done

let test_exponential_mean () =
  let rng = Rng.create 25 in
  let xs = Array.init 30_000 (fun _ -> Dist.exponential rng ~rate:2.0) in
  check_close ~tol:0.02 "mean 1/rate" 0.5 (Describe.mean xs)

(* ------------------------------------------------------------------ *)
(* Describe *)

let test_describe_basic () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_close "mean" 5.0 (Describe.mean xs);
  check_close ~tol:1e-9 "variance" (32.0 /. 7.0) (Describe.variance xs);
  check_close "median" 4.5 (Describe.median xs);
  check_close "q0" 2.0 (Describe.quantile xs 0.0);
  check_close "q1" 9.0 (Describe.quantile xs 1.0);
  let lo, hi = Describe.min_max xs in
  check_close "min" 2.0 lo;
  check_close "max" 9.0 hi

let test_describe_quantile_interp () =
  let xs = [| 0.0; 10.0 |] in
  check_close "q25" 2.5 (Describe.quantile xs 0.25)

let test_covariance_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 2.0; 4.0; 6.0; 8.0 |] in
  check_close ~tol:1e-12 "corr perfect" 1.0 (Describe.correlation xs ys);
  let zs = [| 8.0; 6.0; 4.0; 2.0 |] in
  check_close ~tol:1e-12 "corr anti" (-1.0) (Describe.correlation xs zs)

let test_covariance_matrix () =
  let rows = [| [| 1.0; 0.0 |]; [| 2.0; 1.0 |]; [| 3.0; 2.0 |] |] in
  let c = Describe.covariance_matrix rows in
  check_close ~tol:1e-12 "var x" 1.0 (Mat.get c 0 0);
  check_close ~tol:1e-12 "cov xy" 1.0 (Mat.get c 0 1);
  let mu = Describe.mean_vector rows in
  Alcotest.(check bool) "mean" true (Vec.approx_equal mu [| 2.0; 1.0 |])

let test_skewness_sign () =
  let right = [| 1.0; 1.0; 1.0; 2.0; 2.0; 10.0 |] in
  Alcotest.(check bool) "right skew positive" true (Describe.skewness right > 0.5)

(* ------------------------------------------------------------------ *)
(* Mvn *)

let test_mvn_sampling_recovers () =
  let rng = Rng.create 31 in
  let cov = Mat.of_rows [| [| 2.0; 0.8 |]; [| 0.8; 1.0 |] |] in
  let m = Mvn.make ~mu:[| 1.0; -1.0 |] ~cov in
  let samples = Mvn.sample_n m rng 20_000 in
  let fitted = Mvn.of_samples samples in
  Alcotest.(check bool)
    "mean recovered" true
    (Vec.approx_equal ~tol:0.05 (fitted : Mvn.t).Mvn.mu [| 1.0; -1.0 |]);
  Alcotest.(check bool)
    "cov recovered" true
    (Mat.approx_equal ~tol:0.1 fitted.Mvn.cov cov)

let test_mvn_logpdf () =
  (* Against the closed form of a standard bivariate normal. *)
  let m = Mvn.make ~mu:[| 0.0; 0.0 |] ~cov:(Mat.identity 2) in
  check_close ~tol:1e-9 "at origin"
    (-.log (2.0 *. Float.pi))
    (Mvn.logpdf m [| 0.0; 0.0 |]);
  check_close ~tol:1e-9 "at (1,1)"
    (-.log (2.0 *. Float.pi) -. 1.0)
    (Mvn.logpdf m [| 1.0; 1.0 |])

let test_mvn_mahalanobis () =
  let cov = Mat.of_rows [| [| 4.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let m = Mvn.make ~mu:[| 0.0; 0.0 |] ~cov in
  check_close ~tol:1e-9 "scaled" 1.0 (Mvn.mahalanobis2 m [| 2.0; 0.0 |])

let test_mvn_marginal () =
  let cov = Mat.of_rows [| [| 2.0; 0.5 |]; [| 0.5; 3.0 |] |] in
  let m = Mvn.make ~mu:[| 1.0; 2.0 |] ~cov in
  let mg = Mvn.marginal m [| 1 |] in
  check_close "marginal mean" 2.0 (mg : Mvn.t).Mvn.mu.(0);
  check_close "marginal var" 3.0 (Mat.get mg.Mvn.cov 0 0)

let test_mvn_repairs_borderline () =
  (* A sample covariance from nearly collinear rows still yields a
     usable distribution thanks to the automatic ridge. *)
  let rows =
    Array.init 6 (fun i ->
        let t = float_of_int i in
        [| t; 2.0 *. t +. 1e-9 |])
  in
  let m = Mvn.of_samples rows in
  Alcotest.(check bool) "dim" true (Mvn.dim m = 2)

(* ------------------------------------------------------------------ *)
(* Sampling *)

let box2 : Sampling.box = [| (0.0, 1.0); (10.0, 20.0) |]

let inside box p =
  Array.for_all2 (fun (lo, hi) x -> x >= lo && x <= hi) box p

let test_random_box () =
  let rng = Rng.create 41 in
  let pts = Sampling.random_box rng box2 200 in
  Alcotest.(check int) "count" 200 (Array.length pts);
  Array.iter (fun p -> Alcotest.(check bool) "inside" true (inside box2 p)) pts

let test_latin_hypercube_stratification () =
  let rng = Rng.create 42 in
  let n = 16 in
  let pts = Sampling.latin_hypercube rng box2 n in
  (* Each dimension: exactly one point per stratum. *)
  Array.iteri
    (fun d (lo, hi) ->
      let counts = Array.make n 0 in
      Array.iter
        (fun p ->
          let u = (p.(d) -. lo) /. (hi -. lo) in
          let s = min (n - 1) (int_of_float (u *. float_of_int n)) in
          counts.(s) <- counts.(s) + 1)
        pts;
      Array.iter (fun c -> Alcotest.(check int) "one per stratum" 1 c) counts)
    box2

let test_halton_deterministic_and_spread () =
  let a = Sampling.halton box2 64 and b = Sampling.halton box2 64 in
  Alcotest.(check bool) "deterministic" true (a = b);
  Array.iter (fun p -> Alcotest.(check bool) "inside" true (inside box2 p)) a;
  (* First Halton point in base 2 is 1/2. *)
  Alcotest.(check (float 1e-12)) "first coord" 0.5 a.(0).(0)

let test_full_factorial () =
  let pts = Sampling.full_factorial box2 ~levels:[| 3; 2 |] in
  Alcotest.(check int) "count" 6 (Array.length pts);
  Alcotest.(check (float 1e-12)) "first" 0.0 pts.(0).(0);
  Alcotest.(check (float 1e-12)) "last x" 1.0 pts.(5).(0);
  Alcotest.(check (float 1e-12)) "last y" 20.0 pts.(5).(1);
  (* Singleton level sits at the center. *)
  let c = Sampling.full_factorial box2 ~levels:[| 1; 1 |] in
  Alcotest.(check (float 1e-12)) "center" 0.5 c.(0).(0)

let test_center_and_corners () =
  let pts = Sampling.center_and_corners box2 in
  Alcotest.(check int) "count 1+2^2" 5 (Array.length pts);
  Alcotest.(check (float 1e-12)) "center x" 0.5 pts.(0).(0);
  Alcotest.(check (float 1e-12)) "center y" 15.0 pts.(0).(1)

let test_unit_mapping_roundtrip () =
  let p = [| 0.25; 17.5 |] in
  let u = Sampling.to_unit box2 p in
  let q = Sampling.scale_unit box2 u in
  Alcotest.(check bool) "roundtrip" true (Vec.approx_equal ~tol:1e-12 p q)

(* ------------------------------------------------------------------ *)
(* Histogram / Kde / Stattest *)

let test_histogram_counts () =
  let xs = [| 0.1; 0.2; 0.6; 0.9; 1.0 |] in
  let h = Histogram.build_range ~bins:2 ~lo:0.0 ~hi:1.0 xs in
  Alcotest.(check int) "low bin" 2 h.Histogram.counts.(0);
  Alcotest.(check int) "high bin" 3 h.Histogram.counts.(1);
  let d = Histogram.density h in
  check_close ~tol:1e-12 "density integrates to 1"
    1.0
    ((d.(0) +. d.(1)) *. Histogram.bin_width h)

let test_kde_gaussian_recovery () =
  let rng = Rng.create 51 in
  let xs = Array.init 4_000 (fun _ -> Dist.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let k = Kde.fit xs in
  let peak = Kde.pdf k 0.0 in
  check_close ~tol:0.03 "peak near 1/sqrt(2pi)" 0.3989 peak;
  check_close ~tol:0.02 "cdf at 0" 0.5 (Kde.cdf k 0.0)

let test_kde_integrates_to_one () =
  let rng = Rng.create 52 in
  let xs = Array.init 500 (fun _ -> Dist.gaussian rng ~mu:3.0 ~sigma:0.5) in
  let k = Kde.fit xs in
  let grid = Kde.grid k ~pad:6.0 400 in
  let ys = Kde.evaluate k grid in
  check_close ~tol:1e-3 "mass" 1.0 (Slc_num.Quadrature.trapezoid_samples ~xs:grid ~ys)

let test_ks_two_sample () =
  let rng = Rng.create 53 in
  let xs = Array.init 2_000 (fun _ -> Dist.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let ys = Array.init 2_000 (fun _ -> Dist.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let zs = Array.init 2_000 (fun _ -> Dist.gaussian rng ~mu:1.0 ~sigma:1.0) in
  Alcotest.(check bool) "same dist small" true (Stattest.ks_two_sample xs ys < 0.06);
  Alcotest.(check bool) "shifted dist large" true (Stattest.ks_two_sample xs zs > 0.3)

let test_total_variation () =
  let rng = Rng.create 54 in
  let xs = Array.init 3_000 (fun _ -> Dist.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let ys = Array.init 3_000 (fun _ -> Dist.gaussian rng ~mu:4.0 ~sigma:1.0) in
  Alcotest.(check bool)
    "disjoint ~1" true
    (Stattest.total_variation_binned ~bins:40 xs ys > 0.9)

let test_gaussian_quantile_roundtrip () =
  List.iter
    (fun p ->
      let x = Dist.gaussian_quantile ~mu:2.0 ~sigma:3.0 p in
      check_close ~tol:1e-6 "roundtrip" p (Dist.gaussian_cdf ~mu:2.0 ~sigma:3.0 x))
    [ 0.05; 0.5; 0.95 ]

let test_kde_bandwidth_accessor () =
  let k = Kde.fit ~bandwidth:0.25 [| 1.0; 2.0; 3.0 |] in
  check_close ~tol:1e-12 "explicit bandwidth" 0.25 (Kde.bandwidth k);
  Alcotest.check_raises "bad bandwidth"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Kde.fit" "bandwidth must be > 0")) (fun () ->
      ignore (Kde.fit ~bandwidth:0.0 [| 1.0; 2.0 |]))

(* With all mass at one location and an explicit bandwidth, the KDE is
   a single Gaussian kernel with a closed form:
     pdf(x) = phi((x - x0)/h) / h     cdf(x) = Phi((x - x0)/h). *)
let test_kde_closed_form_single_kernel () =
  let x0 = 2e-11 and h = 3e-12 in
  let k = Kde.fit ~bandwidth:h [| x0; x0 |] in
  let check_rel msg expected actual =
    Alcotest.(check bool) msg true
      (Float.abs (actual -. expected) <= 1e-12 *. Float.abs expected)
  in
  List.iter
    (fun dz ->
      let x = x0 +. (dz *. h) in
      check_rel "pdf" (Slc_num.Special.normal_pdf dz /. h) (Kde.pdf k x);
      check_rel "cdf" (Slc_num.Special.normal_cdf dz) (Kde.cdf k x))
    [ -3.0; -1.0; 0.0; 0.5; 2.0; 4.0 ]

(* The windowed pdf/cdf must stay within 1e-12 RELATIVE error of the
   brute-force all-samples sums on a fig9-style grid, and [evaluate]
   must agree bitwise with per-point [pdf]. *)
let test_kde_cutoff_accuracy () =
  let rng = Rng.create 5 in
  let xs = Array.init 200 (fun _ -> Dist.gaussian rng ~mu:2e-11 ~sigma:2e-12) in
  let k = Kde.fit xs in
  let h = Kde.bandwidth k in
  let n = float_of_int (Array.length xs) in
  let brute_pdf x =
    Array.fold_left
      (fun acc s ->
        let z = (x -. s) /. h in
        acc +. exp (-0.5 *. z *. z))
      0.0 xs
    /. (n *. h *. sqrt (2.0 *. Float.pi))
  in
  let brute_cdf x =
    Array.fold_left
      (fun acc s -> acc +. Slc_num.Special.normal_cdf ((x -. s) /. h))
      0.0 xs
    /. n
  in
  let grid = Kde.grid k 80 in
  Array.iter
    (fun x ->
      let bp = brute_pdf x and bc = brute_cdf x in
      Alcotest.(check bool) "pdf within 1e-12 relative" true
        (Float.abs (Kde.pdf k x -. bp) <= 1e-12 *. bp);
      Alcotest.(check bool) "cdf within 1e-12 relative" true
        (Float.abs (Kde.cdf k x -. bc) <= 1e-12 *. bc))
    grid;
  let fast = Kde.evaluate k grid in
  Array.iteri
    (fun i x ->
      Alcotest.(check bool) "evaluate bitwise equals pdf" true
        (Int64.bits_of_float fast.(i) = Int64.bits_of_float (Kde.pdf k x)))
    grid;
  (* Non-ascending grids fall back to the per-point path. *)
  let shuffled = Array.copy grid in
  let r = Rng.create 7 in
  Rng.shuffle r shuffled;
  let slow = Kde.evaluate k shuffled in
  Array.iteri
    (fun i x ->
      Alcotest.(check bool) "shuffled grid matches pdf" true
        (Int64.bits_of_float slow.(i) = Int64.bits_of_float (Kde.pdf k x)))
    shuffled

let test_rng_split_ix () =
  let parent = Rng.create 42 in
  let before = (Rng.uint64 (Rng.split_ix parent 0), Rng.uint64 (Rng.split_ix parent 1)) in
  (* Pure: deriving children does not advance the parent, and the same
     index always yields the same stream. *)
  let again = (Rng.uint64 (Rng.split_ix parent 0), Rng.uint64 (Rng.split_ix parent 1)) in
  Alcotest.(check bool) "deterministic per index" true (before = again);
  Alcotest.(check bool) "indices give distinct streams" true
    (fst before <> snd before);
  (* Children for nearby indices are pairwise distinct over a range. *)
  let seen = Hashtbl.create 64 in
  for ix = 0 to 63 do
    let v = Rng.uint64 (Rng.split_ix parent ix) in
    Alcotest.(check bool) "no collision" false (Hashtbl.mem seen v);
    Hashtbl.replace seen v ()
  done;
  (* And the parent stream itself is unperturbed. *)
  let fresh = Rng.create 42 in
  Alcotest.(check bool) "parent unperturbed" true
    (Rng.uint64 parent = Rng.uint64 fresh)

let test_mvn_sample_n () =
  let rng = Rng.create 77 in
  let m = Mvn.make ~mu:[| 1.0 |] ~cov:(Mat.identity 1) in
  let xs = Mvn.sample_n m rng 500 in
  Alcotest.(check int) "count" 500 (Array.length xs);
  let flat = Array.map (fun v -> v.(0)) xs in
  check_close ~tol:0.2 "mean" 1.0 (Describe.mean flat)

let test_histogram_build_auto_range () =
  let h = Histogram.build ~bins:4 [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "total" 5 h.Histogram.total;
  Alcotest.(check int) "all included" 5
    (Array.fold_left ( + ) 0 h.Histogram.counts);
  Alcotest.(check int) "count_in" 1 (Histogram.count_in h 0.1);
  Alcotest.(check int) "outside" 0 (Histogram.count_in h 9.0)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in p" ~count:100
    QCheck.(pair (float_bound_exclusive 1.0) (float_bound_exclusive 1.0))
    (fun (p1, p2) ->
      let rng = Rng.create 61 in
      let xs = Array.init 200 (fun _ -> Rng.float rng) in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Describe.quantile xs lo <= Describe.quantile xs hi +. 1e-12)

let prop_lhs_inside_box =
  QCheck.Test.make ~name:"latin hypercube stays in box" ~count:50
    QCheck.(int_range 1 40)
    (fun n ->
      let rng = Rng.create (n + 100) in
      let pts = Sampling.latin_hypercube rng box2 n in
      Array.for_all (inside box2) pts)

let prop_mvn_samples_finite =
  QCheck.Test.make ~name:"mvn samples are finite" ~count:50
    QCheck.(int_range 1 5)
    (fun d ->
      let rng = Rng.create (d * 7) in
      let cov = Mat.add_ridge (Mat.identity d) 0.5 in
      let m = Mvn.make ~mu:(Vec.create d) ~cov in
      let s = Mvn.sample m rng in
      Array.for_all Float.is_finite s)

let () =
  Alcotest.run "slc_prob"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniform moments" `Quick test_rng_uniform_moments;
          Alcotest.test_case "int buckets" `Quick test_rng_int;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independence;
          Alcotest.test_case "indexed split" `Quick test_rng_split_ix;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
        ] );
      ( "dist",
        [
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "gaussian KS" `Quick test_gaussian_ks;
          Alcotest.test_case "truncated bounds" `Quick
            test_truncated_gaussian_bounds;
          Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "quantile roundtrip" `Quick
            test_gaussian_quantile_roundtrip;
        ] );
      ( "describe",
        [
          Alcotest.test_case "basic stats" `Quick test_describe_basic;
          Alcotest.test_case "quantile interpolation" `Quick
            test_describe_quantile_interp;
          Alcotest.test_case "covariance/correlation" `Quick
            test_covariance_correlation;
          Alcotest.test_case "covariance matrix" `Quick test_covariance_matrix;
          Alcotest.test_case "skewness sign" `Quick test_skewness_sign;
          QCheck_alcotest.to_alcotest prop_quantile_monotone;
        ] );
      ( "mvn",
        [
          Alcotest.test_case "sampling recovers parameters" `Quick
            test_mvn_sampling_recovers;
          Alcotest.test_case "logpdf closed form" `Quick test_mvn_logpdf;
          Alcotest.test_case "mahalanobis" `Quick test_mvn_mahalanobis;
          Alcotest.test_case "marginal" `Quick test_mvn_marginal;
          Alcotest.test_case "borderline covariance repaired" `Quick
            test_mvn_repairs_borderline;
          QCheck_alcotest.to_alcotest prop_mvn_samples_finite;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "random box" `Quick test_random_box;
          Alcotest.test_case "LHS stratification" `Quick
            test_latin_hypercube_stratification;
          Alcotest.test_case "halton" `Quick test_halton_deterministic_and_spread;
          Alcotest.test_case "full factorial" `Quick test_full_factorial;
          Alcotest.test_case "center and corners" `Quick test_center_and_corners;
          Alcotest.test_case "unit mapping roundtrip" `Quick
            test_unit_mapping_roundtrip;
          QCheck_alcotest.to_alcotest prop_lhs_inside_box;
        ] );
      ( "density",
        [
          Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
          Alcotest.test_case "kde recovers gaussian" `Quick
            test_kde_gaussian_recovery;
          Alcotest.test_case "kde integrates to one" `Quick
            test_kde_integrates_to_one;
          Alcotest.test_case "kde bandwidth accessor" `Quick
            test_kde_bandwidth_accessor;
          Alcotest.test_case "kde closed-form single kernel" `Quick
            test_kde_closed_form_single_kernel;
          Alcotest.test_case "kde cutoff accuracy" `Quick
            test_kde_cutoff_accuracy;
          Alcotest.test_case "mvn sample_n" `Quick test_mvn_sample_n;
          Alcotest.test_case "histogram auto range" `Quick
            test_histogram_build_auto_range;
          Alcotest.test_case "ks two-sample" `Quick test_ks_two_sample;
          Alcotest.test_case "total variation" `Quick test_total_variation;
        ] );
    ]
