(* Tests for the SSTA consumer layer: chains (transistor-level ground
   truth), oracles, path propagation and the timing DAG. *)

module Tech = Slc_device.Tech
module Process = Slc_device.Process
open Slc_cell
open Slc_core
open Slc_ssta

let tech = Tech.n14

let vdd = 0.8

let sin = 5e-12

let small_chain () =
  Chain.make tech [ Chain.stage Cells.inv "A"; Chain.stage Cells.nand2 "A" ]

let five_chain () =
  Chain.make tech
    [
      Chain.stage Cells.inv "A";
      Chain.stage ~wire_cap:1e-15 Cells.nand2 "A";
      Chain.stage Cells.nor2 "B";
      Chain.stage Cells.inv "A";
      Chain.stage Cells.aoi21 "A";
    ]

let tiny_prior =
  lazy
    (Prior.learn_pair ~cells:[ Cells.inv ] ~grid_levels:[| 2; 2; 2 |]
       ~historical:[ Tech.n20; Tech.n28 ] ())

(* ------------------------------------------------------------------ *)
(* Chain *)

let test_chain_validation () =
  Alcotest.check_raises "empty" (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Chain.make" "empty chain"))
    (fun () -> ignore (Chain.make tech []));
  Alcotest.check_raises "bad pin"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Chain.make" "cell INV has no pin Z")) (fun () ->
      ignore (Chain.make tech [ Chain.stage Cells.inv "Z" ]))

let test_chain_arcs_alternate () =
  let ch = five_chain () in
  let dirs =
    List.map (fun (a : Arc.t) -> a.Arc.out_dir) (Chain.arcs_of ch ~in_rises:true)
  in
  Alcotest.(check bool) "alternating" true
    (dirs = [ Arc.Fall; Arc.Rise; Arc.Fall; Arc.Rise; Arc.Fall ]);
  let dirs2 =
    List.map (fun (a : Arc.t) -> a.Arc.out_dir) (Chain.arcs_of ch ~in_rises:false)
  in
  Alcotest.(check bool) "opposite start" true
    (List.hd dirs2 = Arc.Rise)

let test_chain_simulation_telescopes () =
  let ch = five_chain () in
  let r = Chain.simulate ch ~sin ~vdd ~in_rises:true in
  let sum = Array.fold_left ( +. ) 0.0 r.Chain.stage_delays in
  Alcotest.(check (float 1e-15)) "stage delays telescope" r.Chain.total_delay
    sum;
  Alcotest.(check bool) "positive total" true (r.Chain.total_delay > 0.0);
  Alcotest.(check int) "five stages" 5 (Array.length r.Chain.stage_delays)

let test_chain_longer_is_slower () =
  let d2 =
    (Chain.simulate (small_chain ()) ~sin ~vdd ~in_rises:true).Chain.total_delay
  in
  let d5 =
    (Chain.simulate (five_chain ()) ~sin ~vdd ~in_rises:true).Chain.total_delay
  in
  Alcotest.(check bool) "5 stages slower than 2" true (d5 > d2)

let test_chain_seed_sensitivity () =
  let ch = small_chain () in
  let rng = Slc_prob.Rng.create 4 in
  let seed = Process.sample rng tech 0 in
  let a = (Chain.simulate ch ~sin ~vdd ~in_rises:true).Chain.total_delay in
  let b = (Chain.simulate ~seed ch ~sin ~vdd ~in_rises:true).Chain.total_delay in
  Alcotest.(check bool) "seed moves delay" true (Float.abs (a -. b) > 1e-16)

(* ------------------------------------------------------------------ *)
(* Oracle *)

let test_oracle_simulator_matches_harness () =
  let oracle = Oracle.of_simulator tech in
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let p = { Harness.sin; cload = 2e-15; vdd } in
  let d, s = oracle.Oracle.query arc p in
  let m = Harness.simulate tech arc p in
  Alcotest.(check (float 1e-16)) "delay" m.Harness.td d;
  Alcotest.(check (float 1e-16)) "slew" m.Harness.sout s

let test_oracle_library () =
  let lib = Library.characterize ~cells:[ Cells.inv ] tech ~levels:[| 2; 2; 2 |] in
  let oracle = Oracle.of_library lib in
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Rise in
  let d, s = oracle.Oracle.query arc { Harness.sin; cload = 2e-15; vdd } in
  Alcotest.(check bool) "positive" true (d > 0.0 && s > 0.0);
  let missing = Arc.find Cells.nor2 ~pin:"A" ~out_dir:Arc.Rise in
  Alcotest.check_raises "missing arc" Not_found (fun () ->
      ignore (oracle.Oracle.query missing { Harness.sin; cload = 2e-15; vdd }))

let test_oracle_memoizes () =
  let prior = Lazy.force tiny_prior in
  Harness.reset_sim_count ();
  let oracle = Oracle.bayes_bank ~prior tech ~k:2 in
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let p = { Harness.sin; cload = 2e-15; vdd } in
  ignore (oracle.Oracle.query arc p);
  let after_first = Harness.sim_count () in
  ignore (oracle.Oracle.query arc { p with Harness.cload = 4e-15 });
  Alcotest.(check int) "no extra sims on reuse" after_first (Harness.sim_count ());
  (* k = 2 fitting simulations, plus possibly a window-retry re-run. *)
  Alcotest.(check bool) "about k sims for first use" true
    (after_first >= 2 && after_first <= 8)

(* Trained predictors are cached process-wide: a REBUILT bank over the
   same prior object answers the same arc with zero new simulations.
   (Must run after [test_oracle_memoizes], which pays for the training.) *)
let test_oracle_bank_cross_instance_cache () =
  let prior = Lazy.force tiny_prior in
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let p = { Harness.sin; cload = 2e-15; vdd } in
  let first = Oracle.bayes_bank ~prior tech ~k:2 in
  let d0, s0 = first.Oracle.query arc p in
  Harness.reset_sim_count ();
  let rebuilt = Oracle.bayes_bank ~prior tech ~k:2 in
  let d1, s1 = rebuilt.Oracle.query arc p in
  Alcotest.(check int) "rebuilt bank trains nothing" 0 (Harness.sim_count ());
  Alcotest.(check (float 0.0)) "same delay" d0 d1;
  Alcotest.(check (float 0.0)) "same slew" s0 s1

let counting_oracle () =
  let count = ref 0 in
  let base = Oracle.of_simulator tech in
  ( {
      base with
      Oracle.query =
        (fun arc p ->
          incr count;
          base.Oracle.query arc p);
    },
    count )

let test_oracle_query_cache () =
  let oracle, count = counting_oracle () in
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let p = { Harness.sin; cload = 2e-15; vdd } in
  let c = Oracle.make_cache () in
  let wrapped = Oracle.cached c oracle in
  let d0, s0 = wrapped.Oracle.query arc p in
  let d1, s1 = wrapped.Oracle.query arc p in
  Alcotest.(check int) "one underlying query" 1 !count;
  Alcotest.(check int) "one entry" 1 (Oracle.cache_size c);
  Alcotest.(check (float 0.0)) "exact hit delay" d0 d1;
  Alcotest.(check (float 0.0)) "exact hit slew" s0 s1;
  (* Exact cache: the answer is bitwise the uncached oracle's. *)
  let du, su = Oracle.of_simulator tech |> fun o -> o.Oracle.query arc p in
  Alcotest.(check bool) "bitwise vs uncached" true
    (Int64.bits_of_float d0 = Int64.bits_of_float du
    && Int64.bits_of_float s0 = Int64.bits_of_float su);
  (* A bucketed cache merges nearby slews into one underlying query. *)
  let oracle2, count2 = counting_oracle () in
  let cb = Oracle.make_cache ~slew_bucket:1e-12 () in
  let wb = Oracle.cached cb oracle2 in
  ignore (wb.Oracle.query arc { p with Harness.sin = 5.0e-12 });
  ignore (wb.Oracle.query arc { p with Harness.sin = 5.2e-12 });
  Alcotest.(check int) "bucketed slews share a query" 1 !count2;
  Alcotest.check_raises "bad bucket"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Oracle.make_cache" "bucket <= 0")) (fun () ->
      ignore (Oracle.make_cache ~slew_bucket:0.0 ()))

(* Regression for the [memo_by_arc] data race: every predictor-backed
   oracle memoizes per arc in one table, and a levelized parallel
   forward pass queries it from every pool domain at once on shard-cache
   misses (as does the characterization server from its connection
   threads).  The unguarded Hashtbl this memo used to be is a racing
   write TSan flags; hammer a cold memo from a deliberately
   oversubscribed parallel map and check the published answers are the
   deterministic build values, that at least one build ran per arc, and
   that the memo really memoizes once warm (concurrent-miss losers are
   allowed — first publication wins — but a warm table must not build
   again). *)
let test_oracle_memo_concurrent_miss () =
  let builds = Atomic.make 0 in
  let oracle =
    Oracle.of_predictors ~label:"const" (fun arc ->
        Atomic.incr builds;
        (* Widen the miss window so concurrent first queries overlap
           inside the build, not just around it. *)
        let spin = ref 0 in
        for _ = 1 to 50_000 do
          incr spin
        done;
        ignore (Sys.opaque_identity !spin);
        let base = float_of_int (String.length (Arc.name arc)) in
        {
          Char_flow.label = "const";
          train_cost = 0;
          model = Char_flow.Opaque;
          predict_td = (fun p -> base +. p.Harness.sin);
          predict_sout = (fun p -> base +. p.Harness.cload);
        })
  in
  let arcs =
    [|
      Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall;
      Arc.find Cells.nand2 ~pin:"A" ~out_dir:Arc.Fall;
      Arc.find Cells.nor2 ~pin:"B" ~out_dir:Arc.Fall;
      Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Rise;
    |]
  in
  let p = { Harness.sin; cload = 2e-15; vdd } in
  let queries = Array.init 64 (fun i -> arcs.(i mod Array.length arcs)) in
  let got =
    Slc_num.Parallel.map ~domains:4 ~chunk:1
      (fun a -> oracle.Oracle.query a p)
      queries
  in
  Array.iteri
    (fun i a ->
      let td, so = got.(i) in
      let base = float_of_int (String.length (Arc.name a)) in
      Alcotest.(check (float 0.0)) "td is the built value" (base +. sin) td;
      Alcotest.(check (float 0.0)) "sout is the built value" (base +. 2e-15) so)
    queries;
  let raced = Atomic.get builds in
  Alcotest.(check bool)
    (Printf.sprintf "each arc built at least once (%d builds)" raced)
    true
    (raced >= Array.length arcs);
  (* Warm memo: re-querying every arc must not build again. *)
  Array.iter (fun a -> ignore (oracle.Oracle.query a p)) arcs;
  Alcotest.(check int) "warm memo builds nothing" raced (Atomic.get builds)

(* ------------------------------------------------------------------ *)
(* Path *)

let test_path_matches_chain_with_simulator_oracle () =
  let ch = five_chain () in
  let truth = Chain.simulate ch ~sin ~vdd ~in_rises:true in
  let t = Path.propagate (Oracle.of_simulator tech) ch ~sin ~vdd ~in_rises:true in
  let rel =
    Float.abs (t.Path.total_delay -. truth.Chain.total_delay)
    /. truth.Chain.total_delay
  in
  Alcotest.(check bool)
    (Printf.sprintf "path vs chain within 8%% (got %.1f%%)" (100.0 *. rel))
    true (rel < 0.08)

let test_path_stage_structure () =
  let ch = five_chain () in
  let t = Path.propagate (Oracle.of_simulator tech) ch ~sin ~vdd ~in_rises:true in
  Alcotest.(check int) "five stages" 5 (List.length t.Path.stages);
  (* Slew propagates: stage i+1's input is stage i's output slew, which
     is visible through loads: final stage load = final_load. *)
  let last = List.nth t.Path.stages 4 in
  Alcotest.(check (float 1e-18)) "final load" 2e-15 last.Path.load;
  Alcotest.(check (float 1e-18)) "timing out_slew = last stage slew"
    last.Path.out_slew t.Path.out_slew

let test_path_statistical_shapes () =
  let ch = small_chain () in
  let rng = Slc_prob.Rng.create 21 in
  let seeds = Process.sample_batch rng tech 5 in
  let population arc =
    Statistical.extract_population
      ~method_:(Statistical.Bayes (Lazy.force tiny_prior))
      ~tech ~arc ~seeds ~budget:2 ()
  in
  let samples = Path.statistical ~population ~seeds ch ~sin ~vdd ~in_rises:true in
  Alcotest.(check int) "one sample per seed" 5 (Array.length samples);
  Array.iter
    (fun s -> Alcotest.(check bool) "positive" true (s > 0.0))
    samples;
  (* Not all identical: process variation must show. *)
  let distinct = Array.exists (fun s -> s <> samples.(0)) samples in
  Alcotest.(check bool) "seeds differ" true distinct

let test_yield_of_dag () =
  let rng = Slc_prob.Rng.create 41 in
  let seeds = Process.sample_batch rng tech 6 in
  let population arc =
    Statistical.extract_population
      ~method_:(Statistical.Bayes (Lazy.force tiny_prior))
      ~tech ~arc ~seeds ~budget:2 ()
  in
  let dag = Sdag.create tech ~vdd in
  let x = Sdag.input dag "x" in
  let n1 = Sdag.gate dag Cells.inv ~pins:[ ("A", x) ] "n1" in
  let out = Sdag.gate dag Cells.nand2 ~pins:[ ("A", n1); ("B", x) ] "out" in
  Sdag.set_load dag out 2e-15;
  let input_arrivals _ = Sdag.input_edge ~at:0.0 ~slew:sin ~rises:true in
  let r =
    Yield.of_dag ~population ~seeds ~clock_period:1e-9 dag ~input_arrivals
      ~outputs:[ out ]
  in
  Alcotest.(check int) "per-seed delays" 6 (Array.length r.Yield.delays);
  Alcotest.(check (float 1e-9)) "loose clock passes" 1.0 r.Yield.yield;
  Array.iter
    (fun d -> Alcotest.(check bool) "positive" true (d > 0.0))
    r.Yield.delays

(* ------------------------------------------------------------------ *)
(* Sdag *)

let simple_dag () =
  let dag = Sdag.create tech ~vdd in
  let a = Sdag.input dag "a" in
  let b = Sdag.input dag "b" in
  let n1 = Sdag.gate dag Cells.nand2 ~pins:[ ("A", a); ("B", b) ] "n1" in
  let n2 = Sdag.gate dag Cells.inv ~pins:[ ("A", a) ] "n2" in
  let out = Sdag.gate dag Cells.nor2 ~pins:[ ("A", n1); ("B", n2) ] "out" in
  Sdag.set_load dag out 2e-15;
  (dag, a, b, out)

let test_dag_pin_checking () =
  let dag = Sdag.create tech ~vdd in
  let a = Sdag.input dag "a" in
  Alcotest.check_raises "missing pin"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Sdag.gate" "NAND2 needs pins {A,B}, got {A}")) (fun () ->
      ignore (Sdag.gate dag Cells.nand2 ~pins:[ ("A", a) ] "bad"))

let test_dag_single_edge_propagation () =
  let dag, _, _, out = simple_dag () in
  let oracle = Oracle.of_simulator tech in
  (* Only input a rises at t=0; b stays put (no arrival). *)
  let input_arrivals name =
    if String.equal name "a" then Sdag.input_edge ~at:0.0 ~slew:sin ~rises:true
    else { Sdag.rise = None; fall = None }
  in
  let arr = Sdag.analyze dag oracle ~input_arrivals out in
  (* a rises -> n1 falls and n2 falls -> out rises.  No out fall. *)
  Alcotest.(check bool) "rise arrival exists" true (Sdag.at_edge arr ~rises:true <> None);
  Alcotest.(check bool) "no fall arrival" true (Sdag.at_edge arr ~rises:false = None);
  match Sdag.at_edge arr ~rises:true with
  | Some e ->
    Alcotest.(check bool) "positive time" true (e.Sdag.at > 0.0);
    Alcotest.(check bool) "positive slew" true (e.Sdag.slew > 0.0)
  | None -> Alcotest.fail "expected arrival"

let test_dag_max_semantics () =
  (* Delaying input b must not make the output earlier, and a large
     enough b delay must dominate the arrival. *)
  let oracle = Oracle.of_simulator tech in
  let arrival_with b_at =
    let dag, _, _, out = simple_dag () in
    let input_arrivals name =
      if String.equal name "a" then Sdag.input_edge ~at:0.0 ~slew:sin ~rises:true
      else Sdag.input_edge ~at:b_at ~slew:sin ~rises:true
    in
    match Sdag.at_edge (Sdag.analyze dag oracle ~input_arrivals out) ~rises:true with
    | Some e -> e.Sdag.at
    | None -> Alcotest.fail "no arrival"
  in
  let t0 = arrival_with 0.0 in
  let t_late = arrival_with 50e-12 in
  Alcotest.(check bool) "monotone in input arrival" true (t_late >= t0);
  Alcotest.(check bool) "late input dominates" true (t_late >= 50e-12)

let test_dag_chain_equals_path () =
  (* A DAG that is just a 2-stage chain must agree with Path.propagate
     using the same oracle. *)
  let oracle = Oracle.of_simulator tech in
  let dag = Sdag.create tech ~vdd in
  let a = Sdag.input dag "a" in
  let n1 = Sdag.gate dag Cells.inv ~pins:[ ("A", a) ] "n1" in
  let out = Sdag.gate dag Cells.nand2 ~pins:[ ("A", n1); ("B", a) ] "out" in
  ignore out;
  (* Simpler: INV -> INV chain. *)
  let dag2 = Sdag.create tech ~vdd in
  let x = Sdag.input dag2 "x" in
  let m1 = Sdag.gate dag2 Cells.inv ~pins:[ ("A", x) ] "m1" in
  let m2 = Sdag.gate dag2 Cells.inv ~pins:[ ("A", m1) ] "m2" in
  Sdag.set_load dag2 m2 2e-15;
  let input_arrivals _ = Sdag.input_edge ~at:0.0 ~slew:sin ~rises:true in
  let arr = Sdag.analyze dag2 oracle ~input_arrivals m2 in
  let chain = Chain.make tech [ Chain.stage Cells.inv "A"; Chain.stage Cells.inv "A" ] in
  let path = Path.propagate oracle chain ~sin ~vdd ~in_rises:true in
  match Sdag.at_edge arr ~rises:true with
  | Some e ->
    Alcotest.(check (float 1e-14)) "dag = path" path.Path.total_delay e.Sdag.at
  | None -> Alcotest.fail "no arrival"

let test_dag_slack_report () =
  let oracle = Oracle.of_simulator tech in
  let dag = Sdag.create tech ~vdd in
  let x = Sdag.input dag "x" in
  let m1 = Sdag.gate dag Cells.inv ~pins:[ ("A", x) ] "m1" in
  let m2 = Sdag.gate dag Cells.inv ~pins:[ ("A", m1) ] "m2" in
  Sdag.set_load dag m2 2e-15;
  let input_arrivals _ = Sdag.input_edge ~at:0.0 ~slew:sin ~rises:true in
  let arr =
    match Sdag.at_edge (Sdag.analyze dag oracle ~input_arrivals m2) ~rises:true with
    | Some e -> e.Sdag.at
    | None -> Alcotest.fail "no arrival"
  in
  let required = arr +. 5e-12 in
  let rows =
    Sdag.slack_report dag oracle ~input_arrivals ~outputs:[ (m2, required) ]
  in
  Alcotest.(check int) "three nets with arrivals" 3 (List.length rows);
  (* Output slack is exactly the margin we left. *)
  let out_row = List.find (fun r -> r.Sdag.net_label = "m2") rows in
  Alcotest.(check (float 1e-15)) "output slack" 5e-12 out_row.Sdag.slack;
  (* On a single path every net shares the same slack. *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Sdag.net_label ^ " slack matches")
        true
        (Float.abs (r.Sdag.slack -. 5e-12) < 1e-15))
    rows;
  (* Tight requirement: negative slack, most critical first. *)
  let rows2 =
    Sdag.slack_report dag oracle ~input_arrivals ~outputs:[ (m2, arr -. 1e-12) ]
  in
  (match rows2 with
  | first :: _ ->
    Alcotest.(check bool) "violation detected" true (first.Sdag.slack < 0.0)
  | [] -> Alcotest.fail "empty report");
  Alcotest.(check bool) "sorted by slack" true
    (let slacks = List.map (fun r -> r.Sdag.slack) rows2 in
     List.sort compare slacks = slacks)

let test_dag_net_names () =
  let dag, a, _, out = simple_dag () in
  Alcotest.(check string) "input name" "a" (Sdag.net_name dag a);
  Alcotest.(check string) "gate name" "out" (Sdag.net_name dag out)

let test_path_falling_input () =
  (* The other input polarity also matches chain truth. *)
  let ch = small_chain () in
  let truth = Chain.simulate ch ~sin ~vdd ~in_rises:false in
  let t =
    Path.propagate (Oracle.of_simulator tech) ch ~sin ~vdd ~in_rises:false
  in
  let rel =
    Float.abs (t.Path.total_delay -. truth.Chain.total_delay)
    /. truth.Chain.total_delay
  in
  Alcotest.(check bool)
    (Printf.sprintf "falling-input path within 10%% (got %.1f%%)"
       (100.0 *. rel))
    true (rel < 0.10)

let test_bayes_library_oracle_on_path () =
  (* A whole-library Bayesian characterization plugs into path timing. *)
  let prior = Lazy.force tiny_prior in
  let lib =
    Bayes_library.characterize ~cells:[ Cells.inv; Cells.nand2 ] ~prior tech
      ~k:3
  in
  let oracle =
    { Oracle.label = "bayes-library"; query = Bayes_library.oracle_query lib }
  in
  let ch = small_chain () in
  let truth = Chain.simulate ch ~sin ~vdd ~in_rises:true in
  let t = Path.propagate oracle ch ~sin ~vdd ~in_rises:true in
  let rel =
    Float.abs (t.Path.total_delay -. truth.Chain.total_delay)
    /. truth.Chain.total_delay
  in
  Alcotest.(check bool)
    (Printf.sprintf "library-backed path within 12%% (got %.1f%%)"
       (100.0 *. rel))
    true (rel < 0.12)

let test_dag_fanout_adds_load () =
  (* Adding a fanout gate to a net must delay arrivals through it. *)
  let oracle = Oracle.of_simulator tech in
  let arrival_with_fanout extra =
    let dag = Sdag.create tech ~vdd in
    let x = Sdag.input dag "x" in
    let n1 = Sdag.gate dag Cells.inv ~pins:[ ("A", x) ] "n1" in
    let out = Sdag.gate dag Cells.inv ~pins:[ ("A", n1) ] "out" in
    if extra then
      ignore (Sdag.gate dag Cells.nand4 ~pins:[ ("A", n1); ("B", n1); ("C", n1); ("D", n1) ] "sink");
    Sdag.set_load dag out 1e-15;
    let input_arrivals _ = Sdag.input_edge ~at:0.0 ~slew:sin ~rises:true in
    match Sdag.at_edge (Sdag.analyze dag oracle ~input_arrivals out) ~rises:true with
    | Some e -> e.Sdag.at
    | None -> Alcotest.fail "no arrival"
  in
  let bare = arrival_with_fanout false in
  let loaded = arrival_with_fanout true in
  Alcotest.(check bool)
    (Printf.sprintf "fanout slows the net (%.2f -> %.2f ps)" (bare *. 1e12)
       (loaded *. 1e12))
    true
    (loaded > bare +. 1e-13)

let test_dag_persistent_cache () =
  (* A caller-owned exact cache changes no results and makes a repeated
     analysis free of oracle queries. *)
  let oracle, count = counting_oracle () in
  let dag, _, _, out = simple_dag () in
  let input_arrivals _ = Sdag.input_edge ~at:0.0 ~slew:sin ~rises:true in
  let plain = Sdag.analyze dag oracle ~input_arrivals out in
  let after_plain = !count in
  let c = Oracle.make_cache () in
  let cached1 = Sdag.analyze ~cache:c dag oracle ~input_arrivals out in
  let after_first_cached = !count - after_plain in
  let cached2 = Sdag.analyze ~cache:c dag oracle ~input_arrivals out in
  Alcotest.(check int) "second cached pass queries nothing" after_plain
    (!count - after_first_cached);
  Alcotest.(check bool) "cache populated" true (Oracle.cache_size c > 0);
  let edge a =
    match Sdag.at_edge a ~rises:true with
    | Some e -> (e.Sdag.at, e.Sdag.slew)
    | None -> Alcotest.fail "no arrival"
  in
  let pt, ps = edge plain in
  let t1, s1 = edge cached1 in
  let t2, s2 = edge cached2 in
  Alcotest.(check bool) "cached bitwise equals uncached" true
    (Int64.bits_of_float pt = Int64.bits_of_float t1
    && Int64.bits_of_float ps = Int64.bits_of_float s1);
  Alcotest.(check bool) "repeat pass identical" true (t1 = t2 && s1 = s2);
  (* Same cache drives slack_report to identical rows. *)
  let rows_plain =
    Sdag.slack_report dag oracle ~input_arrivals ~outputs:[ (out, 1e-10) ]
  in
  let rows_cached =
    Sdag.slack_report ~cache:c dag oracle ~input_arrivals
      ~outputs:[ (out, 1e-10) ]
  in
  Alcotest.(check bool) "slack rows identical" true (rows_plain = rows_cached)

(* ------------------------------------------------------------------ *)
(* Yield *)

let test_yield_of_delays () =
  let delays = [| 1e-11; 2e-11; 3e-11; 4e-11 |] in
  let r = Yield.of_delays ~clock_period:2.5e-11 delays in
  Alcotest.(check int) "passes" 2 r.Yield.n_pass;
  Alcotest.(check (float 1e-9)) "yield" 0.5 r.Yield.yield;
  Alcotest.(check (float 1e-22)) "worst" 4e-11 r.Yield.worst_delay;
  (* Period for 100% yield = worst delay. *)
  Alcotest.(check (float 1e-22)) "required period" 4e-11
    (Yield.required_period r ~target_yield:1.0);
  Alcotest.(check bool) "pp renders" true
    (String.length (Format.asprintf "%a" Yield.pp r) > 20);
  Alcotest.check_raises "bad period"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Yield.of_delays" "bad period")) (fun () ->
      ignore (Yield.of_delays ~clock_period:0.0 delays))

let test_yield_of_path () =
  let ch = small_chain () in
  let rng = Slc_prob.Rng.create 31 in
  let seeds = Process.sample_batch rng tech 8 in
  let population arc =
    Statistical.extract_population
      ~method_:(Statistical.Bayes (Lazy.force tiny_prior))
      ~tech ~arc ~seeds ~budget:2 ()
  in
  (* A generous clock passes everything; a tiny one fails everything. *)
  let loose =
    Yield.of_path ~population ~seeds ~clock_period:1e-9 ch ~sin ~vdd
      ~in_rises:true
  in
  Alcotest.(check (float 1e-9)) "all pass" 1.0 loose.Yield.yield;
  let tight =
    Yield.of_delays ~clock_period:1e-13 loose.Yield.delays
  in
  Alcotest.(check (float 1e-9)) "none pass" 0.0 tight.Yield.yield;
  (* Yield is monotone in the clock period. *)
  let mid =
    Yield.of_delays ~clock_period:loose.Yield.mean_delay loose.Yield.delays
  in
  Alcotest.(check bool) "mid yield in (0,1]" true
    (mid.Yield.yield > 0.0 && mid.Yield.yield <= 1.0)

(* ------------------------------------------------------------------ *)
(* Generated designs and the compiled parallel forward pass.

   These use a pure closed-form oracle, not the simulator: the subject
   under test is graph compilation, levelized scheduling and
   determinism, and a cheap oracle keeps the parity sweeps quick enough
   for the TSan job. *)

let synthetic_oracle =
  {
    Oracle.label = "synthetic";
    query =
      (fun arc (p : Harness.point) ->
        let h = float_of_int (Hashtbl.hash (Arc.name arc) land 0xff) in
        ( 1.0e-12 +. (1.0e-14 *. h) +. (0.4 *. p.Harness.sin)
          +. (900.0 *. p.Harness.cload),
          2.0e-12 +. (0.3 *. p.Harness.sin) +. (400.0 *. p.Harness.cload) ));
  }

let design_inputs _ = Generate.both_edges ~at:0.0 ~slew:sin

let row_bits rows =
  List.map
    (fun (r : Sdag.slack_row) ->
      ( r.Sdag.net_label,
        Int64.bits_of_float r.Sdag.arrival_time,
        Int64.bits_of_float r.Sdag.required_time,
        Int64.bits_of_float r.Sdag.slack ))
    rows

let test_generate_deterministic () =
  let d1 = Generate.design tech ~vdd ~seed:11 ~gates:400 in
  let d2 = Generate.design tech ~vdd ~seed:11 ~gates:400 in
  Alcotest.(check int) "same gate count"
    (Sdag.compiled_gates d1.Generate.compiled)
    (Sdag.compiled_gates d2.Generate.compiled);
  Alcotest.(check int) "same net count"
    (Sdag.compiled_nets d1.Generate.compiled)
    (Sdag.compiled_nets d2.Generate.compiled);
  Alcotest.(check bool) "same level profile" true
    (Sdag.level_widths d1.Generate.compiled
    = Sdag.level_widths d2.Generate.compiled);
  Alcotest.(check int) "same output count"
    (Array.length d1.Generate.outputs)
    (Array.length d2.Generate.outputs);
  let report d =
    Sdag.slack_report_compiled d.Generate.compiled synthetic_oracle
      ~input_arrivals:design_inputs ~outputs:(Generate.required d 1e-9)
  in
  Alcotest.(check bool) "same seed, bitwise-identical timing" true
    (row_bits (report d1) = row_bits (report d2));
  let d3 = Generate.design tech ~vdd ~seed:12 ~gates:400 in
  Alcotest.(check bool) "different seed, different timing" true
    (row_bits (report d1) <> row_bits (report d3));
  Alcotest.check_raises "bad size"
    (Slc_obs.Slc_error.Invalid_input
       (Slc_obs.Slc_error.invalid ~site:"Generate.design" "gates must be > 0"))
    (fun () -> ignore (Generate.design tech ~vdd ~seed:1 ~gates:0))

(* Every wire-cap draw must be finite for any generator state: the
   uniform draw behind it is clamped into (0, 1], so even a (future)
   generator returning its upper endpoint cannot produce [log 0.0].
   Sweep many seeds and many draws per seed, and pin the clamp bound
   itself (the largest possible cap is [-mean * log min_float], which
   is finite). *)
let test_wire_cap_draw_finite () =
  let mean = 0.5e-15 in
  for seed = 0 to 99 do
    let r = Slc_prob.Rng.create seed in
    for _ = 1 to 1000 do
      let c = Generate.wire_cap_draw r ~mean in
      if not (Float.is_finite c && c >= 0.0) then
        Alcotest.failf "seed %d drew a non-finite/negative cap %h" seed c
    done
  done;
  Alcotest.(check bool) "clamp bound is finite" true
    (Float.is_finite (-.mean *. log Float.min_float))

let test_compiled_structure () =
  let dag = Sdag.create tech ~vdd in
  let x = Sdag.input dag "x" in
  let m1 = Sdag.gate dag Cells.inv ~pins:[ ("A", x) ] "m1" in
  let m2 = Sdag.gate dag Cells.inv ~pins:[ ("A", m1) ] "m2" in
  let out = Sdag.gate dag Cells.nand2 ~pins:[ ("A", x); ("B", m2) ] "out" in
  Sdag.set_load dag out 2e-15;
  let k = Sdag.compile dag in
  Alcotest.(check int) "nets" 4 (Sdag.compiled_nets k);
  Alcotest.(check int) "gates" 3 (Sdag.compiled_gates k);
  (* m1 at level 1, m2 at 2, out at 3 (its B pin depends on m2). *)
  Alcotest.(check bool) "asap levels" true
    (Sdag.level_widths k = [| 1; 1; 1 |]);
  (* Incrementally accumulated net capacitance matches a direct
     per-pin summation, bitwise. *)
  let expect =
    Equivalent.input_cap tech Cells.inv ~pin:"A"
    +. Equivalent.input_cap tech Cells.nand2 ~pin:"A"
  in
  Alcotest.(check bool) "net cap bitwise" true
    (Int64.bits_of_float (Sdag.net_cap dag x) = Int64.bits_of_float expect);
  Alcotest.(check bool) "explicit load included" true
    (Sdag.net_cap dag out = 2e-15)

let test_compiled_parallel_parity () =
  let d = Generate.design tech ~vdd ~seed:5 ~gates:600 in
  let outputs = Generate.required d 1e-9 in
  let report ?cache ?domains () =
    Sdag.slack_report_compiled ?cache ?domains d.Generate.compiled
      synthetic_oracle ~input_arrivals:design_inputs ~outputs
  in
  (* Reference: the pool disabled outright, not just one domain. *)
  let reference =
    Slc_num.Parallel.sequential (fun () -> row_bits (report ()))
  in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "%d domains bitwise equals sequential" domains)
        true
        (row_bits (report ~domains ()) = reference))
    [ 1; 2; 4; 8 ];
  (* The builder-level entry point compiles internally and agrees. *)
  let legacy =
    Sdag.slack_report ~domains:2 d.Generate.dag synthetic_oracle
      ~input_arrivals:design_inputs ~outputs
  in
  Alcotest.(check bool) "builder path agrees" true
    (row_bits legacy = reference);
  (* A shared persistent cache changes nothing across repeated passes. *)
  let c = Oracle.make_cache () in
  let warm1 = row_bits (report ~cache:c ~domains:4 ()) in
  let warm2 = row_bits (report ~cache:c ~domains:4 ()) in
  Alcotest.(check bool) "cached passes bitwise stable" true
    (warm1 = reference && warm2 = reference)

let test_large_design_completes () =
  (* 100k gates: forward + backward + report end to end.  Exercises the
     levelized traversal at scale; the closed-form oracle keeps it at
     graph-engine cost only. *)
  let d = Generate.design tech ~vdd ~seed:3 ~gates:100_000 in
  let k = d.Generate.compiled in
  Alcotest.(check int) "all gates placed" 100_000 (Sdag.compiled_gates k);
  let widths = Sdag.level_widths k in
  Alcotest.(check bool) "log-depth levelization" true
    (Array.length widths < 100);
  Alcotest.(check int) "levels partition the gates" 100_000
    (Array.fold_left ( + ) 0 widths);
  let rows =
    Sdag.slack_report_compiled ~domains:4 k synthetic_oracle
      ~input_arrivals:design_inputs ~outputs:(Generate.required d 1e-9)
  in
  Alcotest.(check int) "one row per net" (Sdag.compiled_nets k)
    (List.length rows);
  List.iter
    (fun (r : Sdag.slack_row) ->
      if not (Float.is_finite r.Sdag.arrival_time) then
        Alcotest.fail "non-finite arrival")
    rows

let test_oracle_cache_shards () =
  let calls = ref 0 in
  let counted =
    {
      synthetic_oracle with
      Oracle.query =
        (fun arc p ->
          incr calls;
          synthetic_oracle.Oracle.query arc p);
    }
  in
  let c = Oracle.make_cache ~shards:4 () in
  let w = Oracle.cached c counted in
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let p = { Harness.sin; cload = 2e-15; vdd } in
  let d0, s0 = w.Oracle.query arc p in
  let d1, s1 = w.Oracle.query arc p in
  Alcotest.(check int) "one underlying query" 1 !calls;
  Alcotest.(check int) "one entry across shards" 1 (Oracle.cache_size c);
  Alcotest.(check bool) "hit is bitwise" true
    (Int64.bits_of_float d0 = Int64.bits_of_float d1
    && Int64.bits_of_float s0 = Int64.bits_of_float s1);
  (* Distinct points land in (possibly) different shards; the size sums. *)
  for i = 1 to 20 do
    ignore
      (w.Oracle.query arc { p with Harness.cload = float_of_int i *. 1.3e-15 })
  done;
  Alcotest.(check int) "sizes sum across shards" 21 (Oracle.cache_size c);
  Alcotest.check_raises "bad shards"
    (Slc_obs.Slc_error.Invalid_input
       (Slc_obs.Slc_error.invalid ~site:"Oracle.make_cache" "shards <= 0"))
    (fun () -> ignore (Oracle.make_cache ~shards:0 ()))

let () =
  Alcotest.run "slc_ssta"
    [
      ( "chain",
        [
          Alcotest.test_case "validation" `Quick test_chain_validation;
          Alcotest.test_case "arc directions alternate" `Quick
            test_chain_arcs_alternate;
          Alcotest.test_case "stage delays telescope" `Quick
            test_chain_simulation_telescopes;
          Alcotest.test_case "longer chain slower" `Quick
            test_chain_longer_is_slower;
          Alcotest.test_case "seed sensitivity" `Quick test_chain_seed_sensitivity;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "simulator oracle" `Quick
            test_oracle_simulator_matches_harness;
          Alcotest.test_case "library oracle" `Quick test_oracle_library;
          Alcotest.test_case "memoization" `Slow test_oracle_memoizes;
          Alcotest.test_case "concurrent memo misses" `Quick
            test_oracle_memo_concurrent_miss;
          Alcotest.test_case "cross-instance trained cache" `Slow
            test_oracle_bank_cross_instance_cache;
          Alcotest.test_case "query cache" `Slow test_oracle_query_cache;
        ] );
      ( "path",
        [
          Alcotest.test_case "matches chain (simulator oracle)" `Slow
            test_path_matches_chain_with_simulator_oracle;
          Alcotest.test_case "stage structure" `Slow test_path_stage_structure;
          Alcotest.test_case "statistical shapes" `Slow
            test_path_statistical_shapes;
          Alcotest.test_case "falling input polarity" `Slow
            test_path_falling_input;
          Alcotest.test_case "bayes library oracle" `Slow
            test_bayes_library_oracle_on_path;
        ] );
      ( "yield",
        [
          Alcotest.test_case "of_delays" `Quick test_yield_of_delays;
          Alcotest.test_case "of_path" `Slow test_yield_of_path;
          Alcotest.test_case "of_dag" `Slow test_yield_of_dag;
        ] );
      ( "sdag",
        [
          Alcotest.test_case "pin checking" `Quick test_dag_pin_checking;
          Alcotest.test_case "single-edge propagation" `Quick
            test_dag_single_edge_propagation;
          Alcotest.test_case "max semantics" `Slow test_dag_max_semantics;
          Alcotest.test_case "dag equals path on a chain" `Slow
            test_dag_chain_equals_path;
          Alcotest.test_case "net names" `Quick test_dag_net_names;
          Alcotest.test_case "slack report" `Slow test_dag_slack_report;
          Alcotest.test_case "fanout adds load" `Slow test_dag_fanout_adds_load;
          Alcotest.test_case "persistent query cache" `Slow
            test_dag_persistent_cache;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "structure" `Quick test_compiled_structure;
          Alcotest.test_case "parallel parity (bitwise)" `Quick
            test_compiled_parallel_parity;
          Alcotest.test_case "sharded oracle cache" `Quick
            test_oracle_cache_shards;
          Alcotest.test_case "100k-gate design completes" `Slow
            test_large_design_completes;
        ] );
      ( "generate",
        [
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "wire caps finite" `Quick
            test_wire_cap_draw_finite;
        ] );
    ]
