(* End-to-end integration tests: miniature versions of the paper's
   experiments, checking the qualitative conclusions (who wins, what
   shape) rather than exact numbers. *)

open Slc_core
module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness

(* One shared small prior for all integration tests: 2 historical
   nodes, INV + NOR2, 3x3x2 grid. *)
let prior =
  lazy
    (Prior.learn_pair
       ~cells:[ Cells.inv; Cells.nor2 ]
       ~grid_levels:[| 3; 3; 2 |]
       ~historical:[ Tech.n20; Tech.n28 ] ())

let test_table1_shape () =
  let rows = Exp_model.table1 ~techs:[ Tech.n14; Tech.n45 ] ~cells:[ Cells.inv ] () in
  Alcotest.(check int) "2 rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "fit error < 4%" true (r.Exp_model.fit_error < 0.04);
      let p = r.Exp_model.params in
      Alcotest.(check bool) "kd plausible" true
        (p.Timing_model.kd > 0.15 && p.Timing_model.kd < 0.7);
      Alcotest.(check bool) "v_off negative" true (p.Timing_model.v_off < 0.0);
      Alcotest.(check bool) "alpha positive" true (p.Timing_model.alpha > 0.0))
    rows;
  (* Cross-node similarity: kd within 30% between the two nodes. *)
  match rows with
  | [ a; b ] ->
    let ka = a.Exp_model.params.Timing_model.kd in
    let kb = b.Exp_model.params.Timing_model.kd in
    Alcotest.(check bool) "kd similar across nodes" true
      (Float.abs (ka -. kb) /. ka < 0.3)
  | _ -> Alcotest.fail "expected two rows"

let test_fig2_invariance () =
  let series = Exp_model.fig2 ~n_vdd:4 () in
  Alcotest.(check bool) "several series" true (List.length series >= 8);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Exp_model.label ^ " nearly constant")
        true
        (s.Exp_model.deviation < 0.10))
    series

let test_fig3_invariance () =
  let series = Exp_model.fig3 () in
  Alcotest.(check bool) "six series" true (List.length series = 6);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Exp_model.label ^ " nearly constant")
        true
        (s.Exp_model.deviation < 0.12))
    series

let test_fig5_spread () =
  let s = Exp_nominal.fig5 ~n:200 ~seed:3 Tech.n28 in
  let slo, shi = Tech.n28.Tech.sin_range in
  Alcotest.(check bool) "sin covers range" true
    (s.Exp_nominal.sin_min < slo +. (0.1 *. (shi -. slo))
    && s.Exp_nominal.sin_max > shi -. (0.1 *. (shi -. slo)))

let test_fig6_mini_conclusions () =
  let config =
    {
      Config.tiny with
      Config.n_validation = 40;
      ks = [ 2; 10 ];
      lut_budgets = [ 4; 12; 48 ];
    }
  in
  let r =
    Exp_nominal.fig6 ~config ~cells:[ Cells.inv; Cells.nor2 ]
      ~prior:(Lazy.force prior) ()
  in
  let bayes_k2 = r.Exp_nominal.bayes_td.Exp_nominal.mean_err.(0) in
  let lut_4 = r.Exp_nominal.lut_td.Exp_nominal.mean_err.(0) in
  let lut_12 = r.Exp_nominal.lut_td.Exp_nominal.mean_err.(1) in
  (* The paper's core claim, miniaturized: 2 Bayes samples beat small
     LUTs by a wide margin. *)
  Alcotest.(check bool)
    (Printf.sprintf "bayes@2 (%.3f) beats lut@4 (%.3f)" bayes_k2 lut_4)
    true (bayes_k2 < lut_4);
  Alcotest.(check bool)
    (Printf.sprintf "bayes@2 (%.3f) beats lut@12 (%.3f)" bayes_k2 lut_12)
    true (bayes_k2 < lut_12);
  Alcotest.(check bool) "bayes@2 under 8%" true (bayes_k2 < 0.08);
  (* Speedup factor is materially > 1. *)
  (match r.Exp_nominal.speedup_vs_lut with
  | Char_flow.Reached s | Char_flow.At_least s ->
    Alcotest.(check bool) (Printf.sprintf "speedup %.1f > 3" s) true (s > 3.0));
  (* Cost accounting is consistent. *)
  Alcotest.(check bool) "baseline cost = arcs x n" true
    (r.Exp_nominal.baseline_cost = 6 * 40)

let test_fig78_mini_conclusions () =
  let config =
    {
      Config.tiny with
      Config.n_validation_stat = 4;
      n_seeds = 8;
      ks_stat = [ 2 ];
      lut_budgets_stat = [ 4 ];
    }
  in
  let arcs = [ Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall ] in
  let r = Exp_statistical.fig78 ~config ~arcs ~prior:(Lazy.force prior) () in
  let b = r.Exp_statistical.bayes in
  let l = r.Exp_statistical.lut in
  Alcotest.(check bool)
    (Printf.sprintf "bayes mu (%.3f) beats lut@4 mu (%.3f)"
       b.Exp_statistical.e_mu_td.(0) l.Exp_statistical.e_mu_td.(0))
    true
    (b.Exp_statistical.e_mu_td.(0) < l.Exp_statistical.e_mu_td.(0));
  Alcotest.(check bool) "bayes mu error small" true
    (b.Exp_statistical.e_mu_td.(0) < 0.10)

let test_fig9_mini () =
  let config = { Config.tiny with Config.n_seeds_fig9 = 24 } in
  let r = Exp_statistical.fig9 ~config ~prior:(Lazy.force prior) () in
  Alcotest.(check int) "grid points" 80 (Array.length r.Exp_statistical.grid);
  (* The proposed method should track the baseline at least as well as
     the LUT interpolation at this low-Vdd corner point. *)
  Alcotest.(check bool)
    (Printf.sprintf "KS bayes (%.3f) <= KS lut (%.3f) + slack"
       r.Exp_statistical.ks_bayes r.Exp_statistical.ks_lut)
    true
    (r.Exp_statistical.ks_bayes <= r.Exp_statistical.ks_lut +. 0.15);
  (* Densities are proper (positive mass). *)
  let mass ys =
    Slc_num.Quadrature.trapezoid_samples ~xs:r.Exp_statistical.grid ~ys
  in
  Alcotest.(check bool) "baseline mass ~1" true
    (Float.abs (mass r.Exp_statistical.pdf_baseline -. 1.0) < 0.1);
  Alcotest.(check bool) "bayes cheaper than lut" true
    (r.Exp_statistical.cost_bayes < r.Exp_statistical.cost_lut)

let test_ablation_beta_runs () =
  let config = Config.tiny in
  let rows = Exp_ablation.ablation_beta ~config ~prior:(Lazy.force prior) () in
  Alcotest.(check bool) "rows for both variants" true (List.length rows >= 2);
  List.iter
    (fun r ->
      Alcotest.(check bool) "error sane" true
        (r.Exp_ablation.td_err >= 0.0 && r.Exp_ablation.td_err < 1.0))
    rows

let test_ablation_chain_runs () =
  let config = Config.tiny in
  let rows = Exp_ablation.ablation_chain ~config ~prior:(Lazy.force prior) () in
  Alcotest.(check bool) "has pooled and chained" true (List.length rows >= 2)

let test_experiment_printers () =
  (* All printers render without exceptions on miniature results. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let rows = Exp_model.table1 ~techs:[ Tech.n14 ] ~cells:[ Cells.inv ] () in
  Exp_model.print_table1 ppf rows;
  Exp_nominal.print_fig5 ppf (Exp_nominal.fig5 ~n:10 ~seed:1 Tech.n14);
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "printed something" true (Buffer.length buf > 100)

let test_vt_transfer_extension () =
  let config = { Config.tiny with Config.n_validation = 60 } in
  let r = Exp_extension.vt_transfer ~config ~k:2 ~lut_budget:12 () in
  Alcotest.(check string) "target renamed" "n14-lvt" r.Exp_extension.target_name;
  (* All three errors are sane percentages. *)
  List.iter
    (fun e -> Alcotest.(check bool) "sane" true (e > 0.0 && e < 0.5))
    [
      r.Exp_extension.err_rvt_prior; r.Exp_extension.err_matched_prior;
      r.Exp_extension.err_lut;
    ];
  (* The flavor-matched prior is at least as good as the mismatched
     one (allowing a little estimation noise). *)
  Alcotest.(check bool)
    (Printf.sprintf "matched (%.3f) <= mismatched (%.3f) + slack"
       r.Exp_extension.err_matched_prior r.Exp_extension.err_rvt_prior)
    true
    (r.Exp_extension.err_matched_prior
     <= r.Exp_extension.err_rvt_prior +. 0.01)

let test_sampling_ablation_runs () =
  let rows = Exp_ablation.ablation_sampling ~n_seeds:12 ~n_reps:2 () in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "ratio near 1" true
        (r.Exp_ablation.mean_ratio > 0.5 && r.Exp_ablation.mean_ratio < 1.5);
      Alcotest.(check bool) "sd sane" true
        (r.Exp_ablation.rep_sd >= 0.0 && r.Exp_ablation.rep_sd < 1.0))
    rows

let test_golden_parameter_ranges () =
  (* Physics-drift guard: the canonical n14 INV/A/fall extraction must
     stay inside these loose golden ranges (they bracket the values in
     EXPERIMENTS.md with margin; a change that escapes them indicates a
     substrate regression, not noise). *)
  let rows = Exp_model.table1 ~techs:[ Tech.n14 ] ~cells:[ Cells.inv ] () in
  match rows with
  | [ r ] ->
    let p = r.Exp_model.params in
    let check name lo hi v =
      Alcotest.(check bool)
        (Printf.sprintf "%s in [%g, %g] (got %g)" name lo hi v)
        true (v >= lo && v <= hi)
    in
    check "kd" 0.25 0.40 p.Timing_model.kd;
    check "cpar" 0.35 0.80 p.Timing_model.cpar;
    check "v_off" (-0.30) (-0.08) p.Timing_model.v_off;
    check "alpha" 0.01 0.10 p.Timing_model.alpha;
    check "fit error" 0.0 0.03 r.Exp_model.fit_error
  | _ -> Alcotest.fail "expected one row"

let test_full_flow_cost_model () =
  (* O(k * Nsample) vs O(N_LUT * Nsample): verify the cost accounting
     matches the complexity claim on a small instance. *)
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let rng = Slc_prob.Rng.create 17 in
  let seeds = Slc_device.Process.sample_batch rng Tech.n28 5 in
  let k = 3 and n_lut = 12 in
  let bayes_pop =
    Statistical.extract_population
      ~method_:(Statistical.Bayes (Lazy.force prior))
      ~tech:Tech.n28 ~arc ~seeds ~budget:k ()
  in
  let lut_pop =
    Statistical.extract_population ~method_:Statistical.Lut ~tech:Tech.n28
      ~arc ~seeds ~budget:n_lut ()
  in
  Alcotest.(check int) "bayes cost k*N" (k * 5) bayes_pop.Statistical.train_cost;
  Alcotest.(check bool) "lut cost ~ N_LUT*N" true
    (lut_pop.Statistical.train_cost >= 8 * 5
    && lut_pop.Statistical.train_cost <= n_lut * 5)

let () =
  Alcotest.run "integration"
    [
      ( "model experiments",
        [
          Alcotest.test_case "table1 shape" `Slow test_table1_shape;
          Alcotest.test_case "fig2 invariance" `Slow test_fig2_invariance;
          Alcotest.test_case "fig3 invariance" `Slow test_fig3_invariance;
          Alcotest.test_case "fig5 spread" `Quick test_fig5_spread;
        ] );
      ( "characterization",
        [
          Alcotest.test_case "fig6 mini conclusions" `Slow
            test_fig6_mini_conclusions;
          Alcotest.test_case "fig78 mini conclusions" `Slow
            test_fig78_mini_conclusions;
          Alcotest.test_case "fig9 mini" `Slow test_fig9_mini;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "beta ablation runs" `Slow test_ablation_beta_runs;
          Alcotest.test_case "chain ablation runs" `Slow test_ablation_chain_runs;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "printers" `Slow test_experiment_printers;
          Alcotest.test_case "cost model" `Slow test_full_flow_cost_model;
          Alcotest.test_case "golden parameter ranges" `Slow
            test_golden_parameter_ranges;
          Alcotest.test_case "vt transfer extension" `Slow
            test_vt_transfer_extension;
          Alcotest.test_case "sampling ablation" `Slow
            test_sampling_ablation_runs;
        ] );
    ]
