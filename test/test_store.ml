(* Tests for the persistent characterization store: exact float codecs,
   artifact round-trips, checkpoint/resume, crash safety and the
   zero-simulation replay contract.

   The store's headline guarantee is BITWISE identity: everything that
   comes back from disk must equal the in-process result bit for bit.
   Floats are therefore compared through [Int64.bits_of_float], never
   with a tolerance. *)

open Slc_core
module Tech = Slc_device.Tech
module Process = Slc_device.Process
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Nldm = Slc_cell.Nldm
module Library = Slc_cell.Library
module Store = Slc_store.Store
module Hexfloat = Slc_num.Hexfloat
module Rng = Slc_prob.Rng
module Err = Slc_obs.Slc_error
module Tel = Slc_obs.Telemetry

let tech = Tech.n14
let inv_fall = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall

let check_bits msg expected actual =
  Alcotest.(check int64)
    msg
    (Int64.bits_of_float expected)
    (Int64.bits_of_float actual)

(* A unique empty directory per call: reserve a unique temp-file name,
   then turn it into a directory. *)
let fresh_dir () =
  let f = Filename.temp_file "slc-test-store" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let seeds4 = Process.sample_batch (Rng.create 13) tech 4

let points3 =
  [|
    { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 };
    { Harness.sin = 17e-12; cload = 6e-15; vdd = 0.72 };
    { Harness.sin = 9e-12; cload = 1.3e-15; vdd = 0.66 };
  |]

(* ------------------------------------------------------------------ *)
(* Hexfloat: the exact codec everything else leans on *)

let test_hexfloat_exact_corners () =
  List.iter
    (fun x ->
      check_bits (Printf.sprintf "roundtrip %h" x) x
        (Hexfloat.of_string (Hexfloat.to_string x)))
    [
      0.0; -0.0; 1.0; -1.0; Float.pi; infinity; neg_infinity; min_float;
      max_float; 4.9e-324 (* smallest subnormal *); -2.2250738585072011e-308;
      1.0000000000000002 (* 1 + ulp *); 3.141592653589793e-200;
    ]

let test_hexfloat_nan () =
  (* NaN payloads collapse to the canonical nan — documented, and no
     stored artifact contains NaN. *)
  Alcotest.(check bool)
    "nan stays nan" true
    (Float.is_nan (Hexfloat.of_string (Hexfloat.to_string Float.nan)))

let prop_hexfloat_roundtrip =
  QCheck.Test.make ~name:"hexfloat roundtrips any finite float bitwise"
    ~count:500
    QCheck.(float)
    (fun x ->
      QCheck.assume (not (Float.is_nan x));
      Int64.bits_of_float (Hexfloat.of_string (Hexfloat.to_string x))
      = Int64.bits_of_float x)

let test_rng_save_restore () =
  let r = Rng.create 99 in
  for _ = 1 to 10 do
    ignore (Rng.float r)
  done;
  let saved = Rng.save r in
  let r' = Rng.restore saved in
  for i = 1 to 20 do
    check_bits (Printf.sprintf "stream value %d" i) (Rng.float r)
      (Rng.float r')
  done;
  match Rng.restore "zz" with
  | _ -> Alcotest.fail "malformed state accepted"
  | exception Slc_obs.Slc_error.Invalid_input _ -> ()

(* ------------------------------------------------------------------ *)
(* Store open / versioning *)

let test_open_fresh_and_reopen () =
  let dir = fresh_dir () in
  let st = Store.open_ dir in
  Alcotest.(check string) "root" dir (Store.root st);
  (* reopen over the marker *)
  ignore (Store.open_ dir);
  (* a nested path is created from scratch *)
  ignore (Store.open_ (Filename.concat dir "does-not-exist-yet"))

let test_open_version_mismatch () =
  let dir = fresh_dir () in
  ignore (Store.open_ dir);
  Out_channel.with_open_text (Filename.concat dir "VERSION") (fun oc ->
      Out_channel.output_string oc "slc-store 999\n");
  match Store.open_ dir with
  | _ -> Alcotest.fail "expected Store_failed"
  | exception Err.Store_failed f ->
    Alcotest.(check bool)
      "version mismatch" true
      (f.Err.st_kind = Err.Store_version_mismatch)

let test_open_non_store_dir () =
  let dir = fresh_dir () in
  Out_channel.with_open_text (Filename.concat dir "random.txt") (fun oc ->
      Out_channel.output_string oc "hello");
  match Store.open_ dir with
  | _ -> Alcotest.fail "expected Store_failed"
  | exception Err.Store_failed f ->
    Alcotest.(check bool)
      "refused" true
      (f.Err.st_kind = Err.Store_version_mismatch)

(* ------------------------------------------------------------------ *)
(* NLDM table round-trip (property: random tables, bitwise floats) *)

let random_table rng =
  let axis n lo hi =
    Array.init n (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (max 1 (n - 1))))
  in
  let n_s = 1 + Rng.int rng 3
  and n_c = 1 + Rng.int rng 3
  and n_v = 1 + Rng.int rng 2 in
  let grid () =
    Array.init n_s (fun _ ->
        Array.init n_c (fun _ ->
            Array.init n_v (fun _ -> Rng.uniform rng ~lo:(-1e-9) ~hi:1e-9)))
  in
  {
    Nldm.arc_name = "INV/A/fall";
    sin_axis = axis n_s 1e-12 2e-11;
    cload_axis = axis n_c 5e-16 8e-15;
    vdd_axis = axis n_v 0.6 1.0;
    td = grid ();
    sout = grid ();
    energy = grid ();
  }

let prop_nldm_roundtrip =
  QCheck.Test.make ~name:"NLDM to_string/of_string is bitwise lossless"
    ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let t = random_table (Rng.create seed) in
      let t' = Nldm.of_string (Nldm.to_string t) in
      let eq3 a b =
        Array.for_all2
          (fun p q ->
            Array.for_all2
              (fun r s ->
                Array.for_all2
                  (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
                  r s)
              p q)
          a b
      in
      t'.Nldm.arc_name = t.Nldm.arc_name
      && t'.Nldm.sin_axis = t.Nldm.sin_axis
      && t'.Nldm.cload_axis = t.Nldm.cload_axis
      && t'.Nldm.vdd_axis = t.Nldm.vdd_axis
      && eq3 t'.Nldm.td t.Nldm.td
      && eq3 t'.Nldm.sout t.Nldm.sout
      && eq3 t'.Nldm.energy t.Nldm.energy)

let test_nldm_rejects_garbage () =
  match Nldm.of_string "slc-nldm 999\nend" with
  | _ -> Alcotest.fail "future-format table accepted"
  | exception Nldm.Format_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Prior round-trip *)

let tiny_prior =
  lazy
    (Prior.learn_pair ~cells:[ Cells.inv ] ~grid_levels:[| 2; 2; 2 |]
       ~historical:[ Tech.n20; Tech.n45 ] ())

let test_prior_roundtrip_bitwise () =
  let st = Store.open_ (fresh_dir ()) in
  let prior = Lazy.force tiny_prior in
  let key = Store.prior_key ~historical:[ Tech.n20; Tech.n45 ] in
  Store.put_prior st ~key prior;
  match Store.find_prior st ~key with
  | None -> Alcotest.fail "prior not found after put"
  | Some p ->
    Alcotest.(check string)
      "prior content identical"
      (Store.prior_fingerprint prior)
      (Store.prior_fingerprint p);
    let mu = prior.Prior.delay.Prior.mvn.Slc_prob.Mvn.mu in
    let mu' = p.Prior.delay.Prior.mvn.Slc_prob.Mvn.mu in
    Array.iteri (fun i x -> check_bits "mu component" x mu'.(i)) mu;
    Alcotest.(check int)
      "learn_cost" prior.Prior.delay.Prior.learn_cost
      p.Prior.delay.Prior.learn_cost

(* ------------------------------------------------------------------ *)
(* Predictor round-trip *)

let test_predictor_roundtrip_bitwise () =
  let st = Store.open_ (fresh_dir ()) in
  let p = Char_flow.train_lse tech inv_fall ~k:2 in
  let key =
    Store.predictor_key ~prior_fp:"lse" ~tech ~arc:inv_fall ~k:2 ~seed:None ()
  in
  Store.put_predictor st ~key p;
  match Store.find_predictor st ~key ~tech ~arc:inv_fall with
  | None -> Alcotest.fail "predictor not found after put"
  | Some p' ->
    Alcotest.(check string) "label" p.Char_flow.label p'.Char_flow.label;
    Alcotest.(check int)
      "train_cost" p.Char_flow.train_cost p'.Char_flow.train_cost;
    Array.iter
      (fun pt ->
        check_bits "td prediction"
          (p.Char_flow.predict_td pt)
          (p'.Char_flow.predict_td pt);
        check_bits "sout prediction"
          (p.Char_flow.predict_sout pt)
          (p'.Char_flow.predict_sout pt))
      points3

let test_predictor_opaque_rejected () =
  let st = Store.open_ (fresh_dir ()) in
  let p = Char_flow.train_rsm tech inv_fall ~k:4 in
  Alcotest.(check bool)
    "rsm model is opaque" true
    (p.Char_flow.model = Char_flow.Opaque);
  match Store.put_predictor st ~key:"deadbeef" p with
  | () -> Alcotest.fail "expected Invalid_input"
  | exception Slc_obs.Slc_error.Invalid_input _ -> ()

(* ------------------------------------------------------------------ *)
(* Library round-trip *)

let test_library_roundtrip_bitwise () =
  let st = Store.open_ (fresh_dir ()) in
  let levels = [| 2; 2; 1 |] in
  let lib = Library.characterize ~cells:[ Cells.inv ] tech ~levels in
  let key = Store.library_key ~seed:None ~tech ~cells:[ "INV" ] ~levels in
  Store.put_library st ~key lib;
  match Store.find_library st ~key with
  | None -> Alcotest.fail "library not found after put"
  | Some lib' ->
    Alcotest.(check int)
      "sim_runs" lib.Library.sim_runs lib'.Library.sim_runs;
    Array.iter
      (fun pt ->
        check_bits "library delay" (Library.delay lib inv_fall pt)
          (Library.delay lib' inv_fall pt);
        check_bits "library slew" (Library.slew lib inv_fall pt)
          (Library.slew lib' inv_fall pt))
      points3

(* ------------------------------------------------------------------ *)
(* Populations: store-served and resumed results are bitwise equal to
   a fresh single-process extraction *)

let check_pop_bitwise_equal (a : Statistical.population)
    (b : Statistical.population) =
  Alcotest.(check int) "train_cost" a.Statistical.train_cost
    b.Statistical.train_cost;
  Alcotest.(check int)
    "seed count"
    (Array.length a.Statistical.seeds)
    (Array.length b.Statistical.seeds);
  Array.iteri
    (fun i seed ->
      (match (a.Statistical.status.(i), b.Statistical.status.(i)) with
      | Statistical.Seed_ok, Statistical.Seed_ok -> ()
      | Statistical.Seed_degraded x, Statistical.Seed_degraded y ->
        Alcotest.(check int) "degraded count" x y
      | Statistical.Seed_failed _, Statistical.Seed_failed _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "status mismatch at seed %d" i));
      match a.Statistical.status.(i) with
      | Statistical.Seed_failed _ -> ()
      | _ ->
        Array.iter
          (fun pt ->
            check_bits "td sample"
              (a.Statistical.predict_td seed pt)
              (b.Statistical.predict_td seed pt);
            check_bits "sout sample"
              (a.Statistical.predict_sout seed pt)
              (b.Statistical.predict_sout seed pt))
          points3)
    a.Statistical.seeds

let extract_fresh () =
  Statistical.extract_population_design ~design:Statistical.Curated
    ~method_:Statistical.Lse ~tech ~arc:inv_fall ~seeds:seeds4 ~budget:2 ()

let store_extract ?after_batch st =
  Store.extract_population ?after_batch ~batch_size:2 ~store:st
    ~method_:Statistical.Lse ~design:Statistical.Curated ~tech ~arc:inv_fall
    ~seeds:seeds4 ~budget:2 ()

let test_population_store_equals_fresh () =
  let fresh = extract_fresh () in
  let st = Store.open_ (fresh_dir ()) in
  let cold, outcome = store_extract st in
  (match outcome with
  | Store.Computed { resumed_seeds = 0; computed_seeds = 4; batches = 2 } -> ()
  | Store.Computed { resumed_seeds; computed_seeds; batches } ->
    Alcotest.fail
      (Printf.sprintf "unexpected outcome: resumed %d computed %d batches %d"
         resumed_seeds computed_seeds batches)
  | Store.Hit -> Alcotest.fail "cold store cannot hit");
  check_pop_bitwise_equal fresh cold;
  (* second call: served from the artifact, zero simulations *)
  let before = Harness.sim_count () in
  let warm, outcome = store_extract st in
  Alcotest.(check int) "hit runs zero simulations" before (Harness.sim_count ());
  Alcotest.(check bool) "hit" true (outcome = Store.Hit);
  check_pop_bitwise_equal fresh warm;
  (* peek also sees it *)
  match
    Store.find_population ~store:st ~method_:Statistical.Lse
      ~design:Statistical.Curated ~tech ~arc:inv_fall ~seeds:seeds4 ~budget:2
      ~min_points:2
  with
  | Some peek -> check_pop_bitwise_equal fresh peek
  | None -> Alcotest.fail "find_population missed a finished artifact"

exception Injected_crash

let test_population_resume_after_crash () =
  let fresh = extract_fresh () in
  let st = Store.open_ (fresh_dir ()) in
  let sims0 = Harness.sim_count () in
  (* Crash at the first checkpoint boundary: batch 1 (2 of 4 seeds) is
     durably checkpointed, batch 2 never runs. *)
  (match
     store_extract st ~after_batch:(fun n -> if n = 1 then raise Injected_crash)
   with
  | _ -> Alcotest.fail "crash did not propagate"
  | exception Injected_crash -> ());
  let crash_sims = Harness.sim_count () - sims0 in
  (* Resume: only the missing batch is simulated... *)
  let sims1 = Harness.sim_count () in
  let resumed, outcome = store_extract st in
  let resume_sims = Harness.sim_count () - sims1 in
  (match outcome with
  | Store.Computed { resumed_seeds = 2; computed_seeds = 2; batches = 1 } -> ()
  | Store.Computed { resumed_seeds; computed_seeds; batches } ->
    Alcotest.fail
      (Printf.sprintf "unexpected resume: resumed %d computed %d batches %d"
         resumed_seeds computed_seeds batches)
  | Store.Hit -> Alcotest.fail "checkpoint must not look like a final artifact");
  (* ...and the interrupted + resumed total equals one uninterrupted
     run, in both simulator runs and accounted train_cost. *)
  Alcotest.(check int)
    "crash + resume sims = fresh cost" fresh.Statistical.train_cost
    (crash_sims + resume_sims);
  check_pop_bitwise_equal fresh resumed

let test_corrupt_checkpoint_discarded () =
  let fresh = extract_fresh () in
  let st = Store.open_ (fresh_dir ()) in
  let key =
    Store.population_key ~method_:Statistical.Lse ~design:Statistical.Curated
      ~tech ~arc:inv_fall ~seeds:seeds4 ~budget:2 ~min_points:2
  in
  let ckpt = Store.artifact_path st `Population key ^ ".ckpt" in
  Out_channel.with_open_text ckpt (fun oc ->
      Out_channel.output_string oc "slc-pop-ckpt 1\nkey ");
  let pop, outcome = store_extract st in
  (match outcome with
  | Store.Computed { resumed_seeds = 0; computed_seeds = 4; _ } -> ()
  | _ -> Alcotest.fail "corrupt checkpoint should be discarded silently");
  check_pop_bitwise_equal fresh pop

(* Regression: checkpoint entries are serialized in seed-index order,
   not Hashtbl iteration order, so the on-disk bytes of an interrupted
   run are reproducible.  (The loader rejects out-of-order entries, so
   a fold-ordered writer would also break resume outright whenever the
   table's internal order diverged from the index order.) *)
let test_checkpoint_bytes_deterministic () =
  let crashed_ckpt () =
    let st = Store.open_ (fresh_dir ()) in
    (match
       store_extract st
         ~after_batch:(fun n -> if n = 1 then raise Injected_crash)
     with
    | _ -> Alcotest.fail "crash did not propagate"
    | exception Injected_crash -> ());
    let key =
      Store.population_key ~method_:Statistical.Lse
        ~design:Statistical.Curated ~tech ~arc:inv_fall ~seeds:seeds4
        ~budget:2 ~min_points:2
    in
    In_channel.with_open_text
      (Store.artifact_path st `Population key ^ ".ckpt")
      In_channel.input_all
  in
  let a = crashed_ckpt () in
  let b = crashed_ckpt () in
  Alcotest.(check string) "two interrupted runs checkpoint identically" a b;
  let entry_indices =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "entry"; i ] -> Some (int_of_string i)
        | _ -> None)
      (String.split_on_char '\n' a)
  in
  Alcotest.(check bool) "checkpoint holds at least one entry" true
    (entry_indices <> []);
  Alcotest.(check (list int))
    "entries appear in ascending seed order"
    (List.sort compare entry_indices)
    entry_indices

let test_corrupt_final_artifact_raises () =
  let st = Store.open_ (fresh_dir ()) in
  ignore (store_extract st);
  let key =
    Store.population_key ~method_:Statistical.Lse ~design:Statistical.Curated
      ~tech ~arc:inv_fall ~seeds:seeds4 ~budget:2 ~min_points:2
  in
  let path = Store.artifact_path st `Population key in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "slc-pop 1\nkey truncated-mid-write");
  match store_extract st with
  | _ -> Alcotest.fail "expected Store_failed on a corrupt final artifact"
  | exception Err.Store_failed f ->
    Alcotest.(check bool)
      "corrupt or key mismatch" true
      (f.Err.st_kind = Err.Store_corrupt || f.Err.st_kind = Err.Store_key_mismatch)

let test_version_mismatch_artifact_raises () =
  let st = Store.open_ (fresh_dir ()) in
  ignore (store_extract st);
  let key =
    Store.population_key ~method_:Statistical.Lse ~design:Statistical.Curated
      ~tech ~arc:inv_fall ~seeds:seeds4 ~budget:2 ~min_points:2
  in
  let path = Store.artifact_path st `Population key in
  let content = In_channel.with_open_text path In_channel.input_all in
  let rewritten =
    "slc-pop 999\n"
    ^ String.concat "\n" (List.tl (String.split_on_char '\n' content))
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc rewritten);
  match store_extract st with
  | _ -> Alcotest.fail "expected Store_failed on a future-format artifact"
  | exception Err.Store_failed f ->
    Alcotest.(check bool)
      "version mismatch" true
      (f.Err.st_kind = Err.Store_version_mismatch)

(* ------------------------------------------------------------------ *)
(* Telemetry reconciliation: a hit is observable as zero simulations *)

let test_store_hit_telemetry () =
  let st = Store.open_ (fresh_dir ()) in
  ignore (store_extract st);
  let was_on = Tel.on () in
  Tel.enable ();
  Tel.reset ();
  ignore (store_extract st);
  Alcotest.(check int) "zero simulations" 0 (Tel.read Tel.simulations);
  Alcotest.(check int) "one store hit" 1 (Tel.read Tel.store_hits);
  Alcotest.(check int) "no store miss" 0 (Tel.read Tel.store_misses);
  Tel.reset ();
  if not was_on then Tel.disable ()

(* ------------------------------------------------------------------ *)
(* Bayes method keys off prior content *)

let test_population_bayes_key_tracks_prior () =
  let prior = Lazy.force tiny_prior in
  let key_of ~budget =
    Store.population_key
      ~method_:(Statistical.Bayes prior)
      ~design:Statistical.Curated ~tech ~arc:inv_fall ~seeds:seeds4 ~budget
      ~min_points:2
  in
  Alcotest.(check bool)
    "same inputs, same key" true
    (key_of ~budget:2 = key_of ~budget:2);
  Alcotest.(check bool)
    "budget changes the key" false
    (key_of ~budget:2 = key_of ~budget:3);
  let rng = Rng.create 3 in
  let k_curated = key_of ~budget:2 in
  let k_random =
    Store.population_key
      ~method_:(Statistical.Bayes prior)
      ~design:(Statistical.Random_per_seed rng) ~tech ~arc:inv_fall
      ~seeds:seeds4 ~budget:2 ~min_points:2
  in
  Alcotest.(check bool) "design changes the key" false (k_curated = k_random)

(* ------------------------------------------------------------------ *)
(* Adaptive design: checkpoint/resume bitwise identity and key
   sensitivity to the acquisition hyper-parameters *)

let adaptive_design () =
  Statistical.Adaptive (Statistical.adaptive_defaults (Rng.create 21))

let extract_fresh_adaptive () =
  Statistical.extract_population_design ~design:(adaptive_design ())
    ~method_:Statistical.Lse ~tech ~arc:inv_fall ~seeds:seeds4 ~budget:2 ()

let store_extract_adaptive ?after_batch st =
  Store.extract_population ?after_batch ~batch_size:2 ~store:st
    ~method_:Statistical.Lse ~design:(adaptive_design ()) ~tech ~arc:inv_fall
    ~seeds:seeds4 ~budget:2 ()

let test_adaptive_population_resume_equals_fresh () =
  let fresh = extract_fresh_adaptive () in
  let st = Store.open_ (fresh_dir ()) in
  (* Crash at the first checkpoint boundary, then resume: the adaptive
     per-seed designs key off Process.index, so the resumed half must
     re-derive identical candidate pools and acquisition paths. *)
  (match
     store_extract_adaptive st ~after_batch:(fun n ->
         if n = 1 then raise Injected_crash)
   with
  | _ -> Alcotest.fail "crash did not propagate"
  | exception Injected_crash -> ());
  let resumed, outcome = store_extract_adaptive st in
  (match outcome with
  | Store.Computed { resumed_seeds = 2; computed_seeds = 2; batches = 1 } -> ()
  | Store.Computed { resumed_seeds; computed_seeds; batches } ->
    Alcotest.fail
      (Printf.sprintf "unexpected resume: resumed %d computed %d batches %d"
         resumed_seeds computed_seeds batches)
  | Store.Hit -> Alcotest.fail "checkpoint must not look like a final artifact");
  check_pop_bitwise_equal fresh resumed;
  (* Replay: the finished artifact serves with zero simulations. *)
  let before = Harness.sim_count () in
  let warm, outcome = store_extract_adaptive st in
  Alcotest.(check int) "replay runs zero simulations" before
    (Harness.sim_count ());
  Alcotest.(check bool) "hit" true (outcome = Store.Hit);
  check_pop_bitwise_equal fresh warm

let test_adaptive_key_sensitivity () =
  let key_of ad =
    Store.population_key ~method_:Statistical.Lse
      ~design:(Statistical.Adaptive ad) ~tech ~arc:inv_fall ~seeds:seeds4
      ~budget:2 ~min_points:2
  in
  let base () = Statistical.adaptive_defaults (Rng.create 9) in
  Alcotest.(check bool)
    "same acquisition params, same key" true
    (key_of (base ()) = key_of (base ()));
  Alcotest.(check bool)
    "candidate pool size changes the key" false
    (key_of (base ()) = key_of { (base ()) with Statistical.a_candidates = 32 });
  Alcotest.(check bool)
    "gpr threshold changes the key" false
    (key_of (base ())
    = key_of { (base ()) with Statistical.a_gpr_threshold = 0.1 });
  Alcotest.(check bool)
    "design generator state changes the key" false
    (key_of (base ())
    = key_of (Statistical.adaptive_defaults (Rng.create 10)))

(* A predictor whose model is the nonparametric GPR pair (forced by a
   vanishing fallback threshold) must survive the store bitwise — the
   training sets round-trip via Hexfloat and Gpr.refit rebuilds the
   same posterior. *)
let test_gpr_predictor_roundtrip_bitwise () =
  let st = Store.open_ (fresh_dir ()) in
  let prior = Lazy.force tiny_prior in
  let ds =
    Char_flow.simulate_dataset tech inv_fall
      (Input_space.fitting_points tech ~k:4)
  in
  let p0 = Char_flow.train_bayes_on ~prior tech ds in
  let p = Char_flow.with_gpr_fallback ~threshold:1e-12 tech ds p0 in
  Alcotest.(check string) "fallback engaged" "model+gpr" p.Char_flow.label;
  let prior_fp = Store.prior_fingerprint prior in
  let key =
    Store.predictor_key ~gpr:1e-12 ~prior_fp ~tech ~arc:inv_fall ~k:4
      ~seed:None ()
  in
  Alcotest.(check bool)
    "gpr threshold participates in the predictor key" false
    (key = Store.predictor_key ~prior_fp ~tech ~arc:inv_fall ~k:4 ~seed:None ());
  Store.put_predictor st ~key p;
  match Store.find_predictor st ~key ~tech ~arc:inv_fall with
  | None -> Alcotest.fail "gpr predictor not found after put"
  | Some p' ->
    Alcotest.(check string) "label" p.Char_flow.label p'.Char_flow.label;
    Array.iter
      (fun pt ->
        check_bits "td prediction"
          (p.Char_flow.predict_td pt)
          (p'.Char_flow.predict_td pt);
        check_bits "sout prediction"
          (p.Char_flow.predict_sout pt)
          (p'.Char_flow.predict_sout pt))
      points3

let () =
  Alcotest.run "slc_store"
    [
      ( "codec",
        [
          Alcotest.test_case "hexfloat corners" `Quick
            test_hexfloat_exact_corners;
          Alcotest.test_case "hexfloat nan" `Quick test_hexfloat_nan;
          QCheck_alcotest.to_alcotest prop_hexfloat_roundtrip;
          Alcotest.test_case "rng save/restore" `Quick test_rng_save_restore;
        ] );
      ( "open",
        [
          Alcotest.test_case "fresh and reopen" `Quick
            test_open_fresh_and_reopen;
          Alcotest.test_case "version mismatch" `Quick
            test_open_version_mismatch;
          Alcotest.test_case "non-store dir refused" `Quick
            test_open_non_store_dir;
        ] );
      ( "artifacts",
        [
          QCheck_alcotest.to_alcotest prop_nldm_roundtrip;
          Alcotest.test_case "nldm rejects garbage" `Quick
            test_nldm_rejects_garbage;
          Alcotest.test_case "prior roundtrip" `Slow
            test_prior_roundtrip_bitwise;
          Alcotest.test_case "predictor roundtrip" `Quick
            test_predictor_roundtrip_bitwise;
          Alcotest.test_case "opaque predictor rejected" `Quick
            test_predictor_opaque_rejected;
          Alcotest.test_case "library roundtrip" `Quick
            test_library_roundtrip_bitwise;
        ] );
      ( "population",
        [
          Alcotest.test_case "store equals fresh (bitwise)" `Slow
            test_population_store_equals_fresh;
          Alcotest.test_case "resume after crash equals fresh" `Slow
            test_population_resume_after_crash;
          Alcotest.test_case "corrupt checkpoint discarded" `Slow
            test_corrupt_checkpoint_discarded;
          Alcotest.test_case "checkpoint bytes deterministic" `Slow
            test_checkpoint_bytes_deterministic;
          Alcotest.test_case "corrupt final artifact raises" `Slow
            test_corrupt_final_artifact_raises;
          Alcotest.test_case "future-format artifact raises" `Slow
            test_version_mismatch_artifact_raises;
          Alcotest.test_case "hit is zero simulations (telemetry)" `Slow
            test_store_hit_telemetry;
          Alcotest.test_case "bayes key tracks prior content" `Slow
            test_population_bayes_key_tracks_prior;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "resume equals fresh (bitwise)" `Slow
            test_adaptive_population_resume_equals_fresh;
          Alcotest.test_case "key tracks acquisition params" `Quick
            test_adaptive_key_sensitivity;
          Alcotest.test_case "gpr predictor roundtrip" `Slow
            test_gpr_predictor_roundtrip_bitwise;
        ] );
    ]
