(* Tests for the transient circuit simulator: stimuli, netlists,
   waveform measurement, and the solver validated against analytic RC
   responses and inverter behaviour. *)

open Slc_spice
module Mosfet = Slc_device.Mosfet
module Tech = Slc_device.Tech

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Stimulus *)

let test_ramp () =
  let r = Stimulus.ramp ~t0:1.0 ~duration:2.0 ~v_from:0.0 ~v_to:1.0 in
  check_close "before" 0.0 (r 0.5);
  check_close "start" 0.0 (r 1.0);
  check_close "mid" 0.5 (r 2.0);
  check_close "end" 1.0 (r 3.0);
  check_close "after" 1.0 (r 10.0);
  Alcotest.check_raises "bad duration"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Stimulus.ramp" "duration must be > 0")) (fun () ->
      ignore (Stimulus.ramp ~t0:0.0 ~duration:0.0 ~v_from:0.0 ~v_to:1.0 : Stimulus.t))

let test_pwl () =
  let w = Stimulus.pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 0.0) ] in
  check_close "interp 1" 1.0 (w 0.5);
  check_close "interp 2" 1.0 (w 2.0);
  check_close "clamp left" 0.0 (w (-1.0));
  check_close "clamp right" 0.0 (w 9.0);
  Alcotest.check_raises "non-increasing"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Stimulus.pwl" "times must increase")) (fun () ->
      ignore (Stimulus.pwl [ (0.0, 0.0); (0.0, 1.0) ] : Stimulus.t))

(* ------------------------------------------------------------------ *)
(* Netlist *)

let test_netlist_building () =
  let net = Netlist.create () in
  let a = Netlist.fresh_node net "a" in
  let b = Netlist.fresh_node net "b" in
  Alcotest.(check string) "name" "a" (Netlist.node_name net a);
  Alcotest.(check string) "gnd" "gnd" (Netlist.node_name net Netlist.ground);
  Netlist.add_resistor net 1e3 ~a ~b;
  Netlist.add_capacitor net 1e-15 ~a:b ~b:Netlist.ground;
  Netlist.add_vsource net (Stimulus.dc 1.0) a;
  Alcotest.(check int) "nodes" 3 (Netlist.node_count net);
  Alcotest.(check bool) "pinned" true (Netlist.pinned net a);
  Alcotest.(check bool) "free" false (Netlist.pinned net b);
  Netlist.validate net

let test_netlist_rejects () =
  let net = Netlist.create () in
  let a = Netlist.fresh_node net "a" in
  Alcotest.check_raises "zero R"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Netlist.add_resistor" "resistance must be > 0"))
    (fun () -> Netlist.add_resistor net 0.0 ~a ~b:Netlist.ground);
  Alcotest.check_raises "negative C"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Netlist.add_capacitor" "negative capacitance"))
    (fun () -> Netlist.add_capacitor net (-1.0) ~a ~b:Netlist.ground);
  Alcotest.check_raises "drive ground"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Netlist.add_vsource" "cannot drive ground")) (fun () ->
      Netlist.add_vsource net (Stimulus.dc 1.0) Netlist.ground);
  Netlist.add_vsource net (Stimulus.dc 1.0) a;
  Alcotest.check_raises "double pin"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Netlist.add_vsource" "node already pinned")) (fun () ->
      Netlist.add_vsource net (Stimulus.dc 2.0) a)

(* ------------------------------------------------------------------ *)
(* Waveform *)

let ramp_waveform () =
  let times = Slc_num.Vec.linspace 0.0 10.0 101 in
  let values = Array.map (fun t -> Float.min 1.0 (t /. 5.0)) times in
  Waveform.make ~times ~values

let test_waveform_crossings () =
  let w = ramp_waveform () in
  (match Waveform.cross_time w Waveform.Rising 0.5 with
  | Some t -> check_close ~tol:1e-9 "50% crossing" 2.5 t
  | None -> Alcotest.fail "expected crossing");
  Alcotest.(check bool) "no falling crossing" true
    (Waveform.cross_time w Waveform.Falling 0.5 = None)

let test_waveform_slew_of_linear_ramp () =
  (* By convention the 20-80 slew of a full-swing linear ramp equals
     the total ramp time. *)
  let w = ramp_waveform () in
  match Waveform.measure_slew w ~vdd:1.0 Waveform.Rising with
  | Some s -> check_close ~tol:1e-6 "slew = ramp duration" 5.0 s
  | None -> Alcotest.fail "expected slew"

let test_waveform_delay () =
  let times = Slc_num.Vec.linspace 0.0 10.0 201 in
  let input = Array.map (fun t -> Float.min 1.0 (Float.max 0.0 (t -. 1.0))) times in
  let output =
    Array.map (fun t -> 1.0 -. Float.min 1.0 (Float.max 0.0 ((t -. 3.0) /. 2.0))) times
  in
  let win = Waveform.make ~times ~values:input in
  let wout = Waveform.make ~times ~values:output in
  match Waveform.measure_delay ~input:win ~output:wout ~vdd:1.0 ~out_dir:Waveform.Falling with
  | Some d -> check_close ~tol:1e-9 "50-50 delay" 2.5 d
  | None -> Alcotest.fail "expected delay"

let test_waveform_value_at () =
  let w = ramp_waveform () in
  check_close ~tol:1e-9 "interior" 0.2 (Waveform.value_at w 1.0);
  check_close ~tol:1e-9 "clamped left" 0.0 (Waveform.value_at w (-5.0));
  check_close ~tol:1e-9 "clamped right" 1.0 (Waveform.value_at w 50.0)

let test_waveform_csv () =
  let w = ramp_waveform () in
  let s = Format.asprintf "%a" (fun ppf () -> Waveform.to_csv ppf [ ("v", w) ]) () in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "header + samples" (1 + Waveform.length w)
    (List.length lines);
  Alcotest.(check string) "header" "time,v" (List.hd lines);
  Alcotest.check_raises "empty" (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Waveform.to_csv" "no waveforms"))
    (fun () -> Waveform.to_csv Format.str_formatter [])

let test_cross_time_after_skips () =
  (* A wave crossing the level twice: ~after selects the second. *)
  let times = Slc_num.Vec.linspace 0.0 10.0 101 in
  let values =
    Array.map
      (fun t -> if t < 3.0 then t /. 3.0 else if t < 6.0 then (6.0 -. t) /. 3.0
                else (t -. 6.0) /. 4.0)
      times
  in
  let w = Waveform.make ~times ~values in
  (match Waveform.cross_time w Waveform.Rising 0.5 with
  | Some t -> Alcotest.(check (float 0.2)) "first rise" 1.5 t
  | None -> Alcotest.fail "expected first crossing");
  match Waveform.cross_time w ~after:4.0 Waveform.Rising 0.5 with
  | Some t -> Alcotest.(check (float 0.2)) "second rise" 8.0 t
  | None -> Alcotest.fail "expected second crossing"

let test_waveform_validation () =
  Alcotest.check_raises "length mismatch"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Waveform.make" "length mismatch")) (fun () ->
      ignore (Waveform.make ~times:[| 0.0; 1.0 |] ~values:[| 0.0 |]));
  Alcotest.check_raises "non-increasing"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Waveform.make" "times must be strictly increasing"))
    (fun () ->
      ignore (Waveform.make ~times:[| 0.0; 0.0 |] ~values:[| 0.0; 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Transient solver vs analytic RC *)

let rc_netlist ~r ~c ~stim =
  let net = Netlist.create () in
  let nin = Netlist.fresh_node net "in" in
  let nout = Netlist.fresh_node net "out" in
  Netlist.add_vsource net stim nin;
  Netlist.add_resistor net r ~a:nin ~b:nout;
  Netlist.add_capacitor net c ~a:nout ~b:Netlist.ground;
  (net, nout)

let test_rc_step_response () =
  (* v(t) = 1 - exp(-t/RC) after a (fast-ramp) step. *)
  let r = 1e3 and c = 1e-15 in
  let tau = r *. c in
  let stim = Stimulus.ramp ~t0:(tau /. 100.0) ~duration:(tau /. 100.0) ~v_from:0.0 ~v_to:1.0 in
  let net, nout = rc_netlist ~r ~c ~stim in
  let opts =
    { (Transient.default_options ~tstop:(6.0 *. tau)) with
      dt_max = tau /. 50.0; dt_init = tau /. 200.0 }
  in
  let res = Transient.run opts net in
  let w = Transient.waveform res nout in
  List.iter
    (fun mult ->
      let t = mult *. tau in
      let expected = 1.0 -. exp (-.(t -. 0.02 *. tau) /. tau) in
      let actual = Waveform.value_at w t in
      Alcotest.(check bool)
        (Printf.sprintf "v(%.1f tau)" mult)
        true
        (Float.abs (actual -. expected) < 0.02))
    [ 1.0; 2.0; 3.0; 5.0 ]

let test_rc_divider_dc () =
  (* Two resistors divide the source voltage at DC. *)
  let net = Netlist.create () in
  let nin = Netlist.fresh_node net "in" in
  let mid = Netlist.fresh_node net "mid" in
  Netlist.add_vsource net (Stimulus.dc 2.0) nin;
  Netlist.add_resistor net 1e3 ~a:nin ~b:mid;
  Netlist.add_resistor net 3e3 ~a:mid ~b:Netlist.ground;
  let v = Transient.dc_operating_point net ~at:0.0 in
  check_close ~tol:1e-6 "divider" 1.5 v.(mid)

let inverter_netlist tech vdd =
  let net = Netlist.create () in
  let nvdd = Netlist.fresh_node net "vdd" in
  let nin = Netlist.fresh_node net "in" in
  let nout = Netlist.fresh_node net "out" in
  Netlist.add_vsource net (Stimulus.dc vdd) nvdd;
  Netlist.add_mosfet net tech.Tech.nmos ~g:nin ~d:nout ~s:Netlist.ground;
  Netlist.add_mosfet net
    (Mosfet.scale_width tech.Tech.pmos 2.0)
    ~g:nin ~d:nout ~s:nvdd;
  Netlist.add_capacitor net 2e-15 ~a:nout ~b:Netlist.ground;
  (net, nin, nout)

let test_inverter_dc_rails () =
  let tech = Tech.n14 in
  let vdd = 0.8 in
  let net, nin, nout = inverter_netlist tech vdd in
  Netlist.add_vsource net (Stimulus.dc 0.0) nin;
  let v = Transient.dc_operating_point net ~at:0.0 in
  Alcotest.(check bool) "input low -> out high" true (v.(nout) > 0.98 *. vdd);
  let net2, nin2, nout2 = inverter_netlist tech vdd in
  Netlist.add_vsource net2 (Stimulus.dc vdd) nin2;
  let v2 = Transient.dc_operating_point net2 ~at:0.0 in
  Alcotest.(check bool) "input high -> out low" true (v2.(nout2) < 0.02 *. vdd)

let test_inverter_transition () =
  let tech = Tech.n14 in
  let vdd = 0.8 in
  let net, nin, nout = inverter_netlist tech vdd in
  Netlist.add_vsource net
    (Stimulus.ramp ~t0:2e-12 ~duration:5e-12 ~v_from:0.0 ~v_to:vdd)
    nin;
  let opts =
    { (Transient.default_options ~tstop:60e-12) with
      breakpoints = Stimulus.breakpoints ~t0:2e-12 ~duration:5e-12 }
  in
  let res = Transient.run opts net in
  let wout = Transient.waveform res nout in
  Alcotest.(check bool) "starts high" true
    (wout.Waveform.values.(0) > 0.95 *. vdd);
  Alcotest.(check bool) "ends low" true
    (Waveform.final_value wout < 0.05 *. vdd);
  Alcotest.(check bool) "some steps" true (Transient.steps_taken res > 20)

let test_charge_conservation_rc () =
  (* With no source transition the circuit stays at its DC point. *)
  let net, nout = rc_netlist ~r:1e3 ~c:1e-15 ~stim:(Stimulus.dc 1.0) in
  let opts = Transient.default_options ~tstop:1e-11 in
  let res = Transient.run opts net in
  let w = Transient.waveform res nout in
  Array.iter
    (fun v -> Alcotest.(check bool) "stays at 1V" true (Float.abs (v -. 1.0) < 1e-6))
    w.Waveform.values

let test_breakpoints_hit () =
  let stim = Stimulus.ramp ~t0:1e-12 ~duration:2e-12 ~v_from:0.0 ~v_to:1.0 in
  let net, _ = rc_netlist ~r:1e3 ~c:1e-15 ~stim in
  let opts =
    { (Transient.default_options ~tstop:1e-11) with
      breakpoints = Stimulus.breakpoints ~t0:1e-12 ~duration:2e-12 }
  in
  let res = Transient.run opts net in
  let times = Transient.times res in
  let has t0 =
    Array.exists (fun t -> Float.abs (t -. t0) < 1e-18) times
  in
  Alcotest.(check bool) "ramp start on grid" true (has 1e-12);
  Alcotest.(check bool) "ramp end on grid" true (has 3e-12)

let test_invalid_options () =
  let net, _ = rc_netlist ~r:1e3 ~c:1e-15 ~stim:(Stimulus.dc 1.0) in
  Alcotest.check_raises "tstop <= 0"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Transient.default_options" "tstop <= 0")) (fun () ->
      ignore (Transient.run (Transient.default_options ~tstop:0.0) net))

let test_trapezoidal_more_accurate () =
  (* Same coarse step: trapezoidal should not be worse than backward
     Euler on the smooth part of an RC response. *)
  let r = 1e3 and c = 1e-15 in
  let tau = r *. c in
  let stim =
    Stimulus.ramp ~t0:(tau /. 100.0) ~duration:(tau /. 100.0) ~v_from:0.0
      ~v_to:1.0
  in
  let err integrator =
    let net, nout = rc_netlist ~r ~c ~stim in
    let opts =
      {
        (Transient.default_options ~tstop:(5.0 *. tau)) with
        Transient.integrator;
        dt_max = tau /. 10.0;
        dt_init = tau /. 10.0;
      }
    in
    let w = Transient.waveform (Transient.run opts net) nout in
    List.fold_left
      (fun acc m ->
        let t = m *. tau in
        let exact = 1.0 -. exp (-.(t -. 0.02 *. tau) /. tau) in
        Float.max acc (Float.abs (Waveform.value_at w t -. exact)))
      0.0
      [ 1.0; 2.0; 3.0 ]
  in
  let e_be = err Transient.Backward_euler in
  let e_tr = err Transient.Trapezoidal in
  Alcotest.(check bool)
    (Printf.sprintf "TR (%.4f) <= BE (%.4f)" e_tr e_be)
    true (e_tr <= e_be +. 1e-6)

let test_dc_sweep_inverter_vtc () =
  let tech = Tech.n14 in
  let vdd = 0.8 in
  let net, nin, nout = inverter_netlist tech vdd in
  Netlist.add_vsource net (Stimulus.dc 0.0) nin;
  let vins = Slc_num.Vec.linspace 0.0 vdd 17 in
  let sols = Transient.dc_sweep net ~node:nin ~values:vins in
  Alcotest.(check int) "one solution per point" 17 (Array.length sols);
  (* Rails at the ends... *)
  Alcotest.(check bool) "out high at vin=0" true (sols.(0).(nout) > 0.98 *. vdd);
  Alcotest.(check bool) "out low at vin=vdd" true
    (sols.(16).(nout) < 0.02 *. vdd);
  (* ...and monotone non-increasing in between. *)
  for i = 0 to 15 do
    Alcotest.(check bool) "monotone" true
      (sols.(i + 1).(nout) <= sols.(i).(nout) +. 1e-6)
  done;
  (* The switching threshold sits mid-rail-ish. *)
  let vm =
    let rec find i =
      if i >= 17 then vdd
      else if sols.(i).(nout) < 0.5 *. vdd then vins.(i)
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "threshold near mid rail" true
    (vm > 0.25 *. vdd && vm < 0.75 *. vdd)

let test_dc_sweep_requires_pinned_node () =
  let net, nout = rc_netlist ~r:1e3 ~c:1e-15 ~stim:(Stimulus.dc 1.0) in
  Alcotest.check_raises "free node rejected"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Transient.dc_sweep" "node must be driven by a source"))
    (fun () -> ignore (Transient.dc_sweep net ~node:nout ~values:[| 0.0 |]))

let test_rc_ladder_matches_expm () =
  (* A 4-node RC ladder driven by a fast step, checked against the
     exact linear response computed with the matrix exponential:
     C dv/dt = -G v + G e1 Vin, v(t) = v_inf + expm(-C^-1 G t)(v0-v_inf). *)
  let module MatM = Slc_num.Mat in
  let rng = Slc_prob.Rng.create 91 in
  for trial = 0 to 2 do
    ignore trial;
    let n = 4 in
    let rs = Array.init n (fun _ -> Slc_prob.Rng.uniform rng ~lo:500.0 ~hi:2000.0) in
    let cs = Array.init n (fun _ -> Slc_prob.Rng.uniform rng ~lo:0.5e-15 ~hi:2e-15) in
    let vin = 1.0 in
    (* Build the netlist: in - R0 - n1 - R1 - n2 - ... each ni has Ci
       to ground. *)
    let net = Netlist.create () in
    let nin = Netlist.fresh_node net "in" in
    let nodes = Array.init n (fun i -> Netlist.fresh_node net (Printf.sprintf "n%d" i)) in
    let tau0 = rs.(0) *. cs.(0) in
    let t_step = tau0 /. 200.0 in
    Netlist.add_vsource net
      (Stimulus.ramp ~t0:t_step ~duration:t_step ~v_from:0.0 ~v_to:vin) nin;
    for i = 0 to n - 1 do
      let prev = if i = 0 then nin else nodes.(i - 1) in
      Netlist.add_resistor net rs.(i) ~a:prev ~b:nodes.(i);
      Netlist.add_capacitor net cs.(i) ~a:nodes.(i) ~b:Netlist.ground
    done;
    (* Conductance matrix over the free nodes. *)
    let g = MatM.create n n in
    for i = 0 to n - 1 do
      let gi = 1.0 /. rs.(i) in
      MatM.set g i i (MatM.get g i i +. gi);
      if i > 0 then begin
        MatM.set g (i - 1) (i - 1) (MatM.get g (i - 1) (i - 1) +. gi);
        MatM.set g i (i - 1) (-.gi);
        MatM.set g (i - 1) i (-.gi)
      end
    done;
    let a = MatM.init n n (fun i j -> -.(MatM.get g i j) /. cs.(i)) in
    (* Steady state: all nodes at vin. *)
    let total_tau =
      Array.fold_left ( +. ) 0.0 (Array.mapi (fun i c -> rs.(i) *. c) cs)
    in
    let tstop = 10.0 *. total_tau in
    let opts =
      { (Transient.default_options ~tstop) with
        dt_max = total_tau /. 50.0 }
    in
    let res = Transient.run opts net in
    List.iter
      (fun frac ->
        let t = frac *. total_tau in
        (* Exact solution with the ramp midpoint as time origin. *)
        let e = Slc_num.Linalg.expm (MatM.scale (t -. (1.5 *. t_step)) a) in
        for i = 0 to n - 1 do
          let exact =
            vin
            +. Array.fold_left ( +. ) 0.0
                 (Array.init n (fun j -> MatM.get e i j *. (0.0 -. vin)))
          in
          let w = Transient.waveform res nodes.(i) in
          let sim = Waveform.value_at w t in
          Alcotest.(check bool)
            (Printf.sprintf "node %d at %.1f tau (exact %.4f, sim %.4f)" i
               frac exact sim)
            true
            (Float.abs (sim -. exact) < 0.02)
        done)
      [ 0.5; 1.0; 2.0; 4.0 ]
  done

(* ------------------------------------------------------------------ *)
(* Fault handling: typed failures and the recovery escalation ladder. *)

let test_recovery_ladder () =
  (* Tolerances no Newton solve can meet: the plain run must raise the
     typed convergence failure, and the escalation ladder must rescue
     the run at its relaxed-tolerance rung with the degraded flag. *)
  let tech = Tech.n14 in
  let vdd = 0.8 in
  let net, nin, nout = inverter_netlist tech vdd in
  Netlist.add_vsource net
    (Stimulus.ramp ~t0:2e-12 ~duration:5e-12 ~v_from:0.0 ~v_to:vdd)
    nin;
  let opts =
    {
      (Transient.default_options ~tstop:60e-12) with
      abstol = 1e-30;
      dxtol = 1e-30;
      breakpoints = Stimulus.breakpoints ~t0:2e-12 ~duration:5e-12;
    }
  in
  let c = Transient.compile net in
  (match Transient.run_compiled opts c with
  | _ -> Alcotest.fail "expected No_convergence at abstol = 1e-30"
  | exception Slc_obs.Slc_error.No_convergence d ->
    Alcotest.(check bool)
      "diagnostic has finite residual" true
      (Float.is_finite d.Slc_obs.Slc_error.residual);
    Alcotest.(check bool)
      "diagnostic counted Newton iterations" true
      (d.Slc_obs.Slc_error.newton_iters > 0));
  let res = Transient.run_recovered opts c in
  Alcotest.(check bool) "rescued run is degraded" true
    (Transient.degraded res);
  Alcotest.(check bool) "relaxed-tol rung reached" true
    (List.mem "relaxed-tol" (Transient.recovery_log res));
  let wout = Transient.waveform res nout in
  Alcotest.(check bool) "rescued waveform still falls" true
    (Waveform.final_value wout < 0.05 *. vdd)

let test_recovery_exhaustion_reports_rungs () =
  (* No rung changes the Newton iteration budget, so a zero budget
     fails at every rung: the ladder must give up and re-raise the
     ORIGINAL failure annotated with every rung it tried. *)
  let tech = Tech.n14 in
  let vdd = 0.8 in
  let net, nin, _ = inverter_netlist tech vdd in
  Netlist.add_vsource net
    (Stimulus.ramp ~t0:2e-12 ~duration:5e-12 ~v_from:0.0 ~v_to:vdd)
    nin;
  let opts =
    { (Transient.default_options ~tstop:60e-12) with max_newton = 0 }
  in
  let c = Transient.compile net in
  match Transient.run_recovered opts c with
  | _ -> Alcotest.fail "expected exhaustion"
  | exception Slc_obs.Slc_error.No_convergence d ->
    List.iter
      (fun rung ->
        Alcotest.(check bool)
          (Printf.sprintf "rung %s recorded" rung)
          true
          (List.mem rung d.Slc_obs.Slc_error.recovery))
      [ "tight-step"; "gmin-boost"; "relaxed-tol" ]

(* ------------------------------------------------------------------ *)
(* Lockstep batch engine: bitwise parity with the scalar path. *)

(* An inverter testbench compiled once, plus [n] respecialized lanes
   with per-lane device widths, load capacitance and supply — the shape
   Harness feeds the batch engine per (tech, arc). *)
let batch_fixture n =
  let tech = Tech.n14 in
  let vdd = 0.8 in
  let net, nin, nout = inverter_netlist tech vdd in
  Netlist.add_vsource net
    (Stimulus.ramp ~t0:2e-12 ~duration:5e-12 ~v_from:0.0 ~v_to:vdd)
    nin;
  let opts =
    {
      (Transient.default_options ~tstop:60e-12) with
      breakpoints = Stimulus.breakpoints ~t0:2e-12 ~duration:5e-12;
    }
  in
  let c = Transient.compile net in
  let lanes =
    Array.init n (fun i ->
        let f = 1.0 +. (0.07 *. float_of_int i) in
        let mosfets =
          [|
            Mosfet.scale_width tech.Tech.nmos f;
            Mosfet.scale_width (Mosfet.scale_width tech.Tech.pmos 2.0) f;
          |]
        in
        let caps = [| 2e-15 *. (1.0 +. (0.15 *. float_of_int i)) |] in
        let sources =
          [|
            Stimulus.dc vdd;
            Stimulus.ramp ~t0:2e-12 ~duration:5e-12 ~v_from:0.0 ~v_to:vdd;
          |]
        in
        (opts, Transient.respecialize c ~mosfets ~caps ~sources))
  in
  (c, lanes, nout)

let check_bitwise_result l (scalar : Transient.result) = function
  | Error e ->
    Alcotest.failf "lane %d failed: %s" l (Printexc.to_string e)
  | Ok batch ->
    Alcotest.(check bool)
      (Printf.sprintf "lane %d times bitwise" l)
      true
      (Transient.times scalar = Transient.times batch);
    Alcotest.(check int)
      (Printf.sprintf "lane %d newton iterations" l)
      (Transient.newton_iterations_total scalar)
      (Transient.newton_iterations_total batch);
    Alcotest.(check int)
      (Printf.sprintf "lane %d steps" l)
      (Transient.steps_taken scalar)
      (Transient.steps_taken batch);
    Alcotest.(check bool)
      (Printf.sprintf "lane %d degraded flag" l)
      (Transient.degraded scalar) (Transient.degraded batch);
    Alcotest.(check (list string))
      (Printf.sprintf "lane %d recovery log" l)
      (Transient.recovery_log scalar)
      (Transient.recovery_log batch);
    for node = 0 to 3 do
      let ws = Transient.waveform scalar node in
      let wb = Transient.waveform batch node in
      Alcotest.(check bool)
        (Printf.sprintf "lane %d node %d waveform bitwise" l node)
        true
        (ws.Waveform.values = wb.Waveform.values)
    done

let test_batch_of_one_bitwise () =
  (* A batch of one lane must reproduce the scalar run exactly: same
     Newton iteration sequence, so bitwise-identical everything. *)
  let _, lanes, _ = batch_fixture 3 in
  let opts, c1 = lanes.(1) in
  let scalar = Transient.run_compiled opts c1 in
  let batch = Transient.run_batch [| lanes.(1) |] in
  check_bitwise_result 0 scalar batch.(0)

let test_batch_lanes_match_scalar () =
  (* N lanes in lockstep = N scalar runs, bitwise, with identical
     per-lane Newton/step accounting. *)
  let _, lanes, _ = batch_fixture 6 in
  let scalar =
    Array.map (fun (o, cl) -> Transient.run_recovered o cl) lanes
  in
  let batch = Transient.run_batch lanes in
  Array.iteri (fun l r -> check_bitwise_result l scalar.(l) r) batch

let test_batch_workspace_reused () =
  (* A cached workspace must not change results, batch after batch,
     including when the lane count shrinks between calls. *)
  let c, lanes, _ = batch_fixture 5 in
  let bws = Transient.make_batch_workspace c ~lanes:2 in
  let sws = Transient.make_workspace c in
  let fresh = Transient.run_batch lanes in
  let warm1 =
    Transient.run_batch ~workspace:bws ~scalar_workspace:sws lanes
  in
  let warm2 =
    Transient.run_batch ~workspace:bws ~scalar_workspace:sws
      (Array.sub lanes 0 3)
  in
  let times_of = function
    | Ok r -> Transient.times r
    | Error e -> Alcotest.failf "lane failed: %s" (Printexc.to_string e)
  in
  Array.iteri
    (fun l r ->
      Alcotest.(check bool)
        (Printf.sprintf "warm lane %d bitwise" l)
        true
        (times_of r = times_of fresh.(l)))
    warm1;
  Array.iteri
    (fun l r ->
      Alcotest.(check bool)
        (Printf.sprintf "shrunk lane %d bitwise" l)
        true
        (times_of r = times_of fresh.(l)))
    warm2

let test_batch_peels_straggler () =
  (* One lane with impossible tolerances fails its plain attempt and is
     peeled to the scalar recovery ladder; it must come back exactly as
     scalar run_recovered produces it (rescued, degraded) while the
     healthy lanes complete undegraded and bitwise-unchanged. *)
  let _, lanes, _ = batch_fixture 4 in
  let opts1, c1 = lanes.(1) in
  let bad_opts = { opts1 with abstol = 1e-30; dxtol = 1e-30 } in
  let mixed = Array.copy lanes in
  mixed.(1) <- (bad_opts, c1);
  let scalar =
    Array.map (fun (o, cl) -> Transient.run_recovered o cl) mixed
  in
  Alcotest.(check bool) "fixture: straggler is degraded" true
    (Transient.degraded scalar.(1));
  let batch = Transient.run_batch mixed in
  Array.iteri (fun l r -> check_bitwise_result l scalar.(l) r) batch

let test_batch_reports_unrecoverable_lane () =
  (* max_newton = 0 fails at every rung: the lane must come back as
     [Error No_convergence] carrying the rungs tried, with the rest of
     the batch unaffected. *)
  let _, lanes, _ = batch_fixture 3 in
  let opts2, c2 = lanes.(2) in
  let mixed = Array.copy lanes in
  mixed.(2) <- ({ opts2 with max_newton = 0 }, c2);
  let scalar01 =
    Array.map (fun (o, cl) -> Transient.run_recovered o cl) (Array.sub mixed 0 2)
  in
  let batch = Transient.run_batch mixed in
  check_bitwise_result 0 scalar01.(0) batch.(0);
  check_bitwise_result 1 scalar01.(1) batch.(1);
  match batch.(2) with
  | Ok _ -> Alcotest.fail "expected the max_newton = 0 lane to fail"
  | Error (Slc_obs.Slc_error.No_convergence d) ->
    List.iter
      (fun rung ->
        Alcotest.(check bool)
          (Printf.sprintf "rung %s recorded" rung)
          true
          (List.mem rung d.Slc_obs.Slc_error.recovery))
      [ "tight-step"; "gmin-boost"; "relaxed-tol" ]
  | Error e -> Alcotest.failf "unexpected failure: %s" (Printexc.to_string e)

let test_dc_sweep_restores_state () =
  (* Regression: the sweep used to leave the compiled circuit's swept
     stimulus at the last sweep value (and the fallback solved at the
     WRONG voltage), corrupting cached templates.  After a sweep the
     same compiled object must still simulate with its original
     stimulus. *)
  let tech = Tech.n14 in
  let vdd = 0.8 in
  let net, nin, nout = inverter_netlist tech vdd in
  Netlist.add_vsource net (Stimulus.dc 0.0) nin;
  let c = Transient.compile net in
  let vins = Slc_num.Vec.linspace 0.0 vdd 9 in
  let sols = Transient.dc_sweep_compiled c ~node:nin ~values:vins in
  Alcotest.(check bool) "sweep reaches low rail" true
    (sols.(8).(nout) < 0.02 *. vdd);
  (* vin must be back at DC 0: output high, both at DC and transient. *)
  let v = ref [||] in
  v := Transient.dc_sweep_compiled c ~node:nin ~values:[| 0.0 |];
  Alcotest.(check bool) "second sweep still works" true
    ((!v).(0).(nout) > 0.98 *. vdd);
  let res = Transient.run_compiled (Transient.default_options ~tstop:1e-11) c in
  let w = Transient.waveform res nout in
  Alcotest.(check bool) "original stimulus restored after sweep" true
    (Waveform.final_value w > 0.95 *. vdd)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_rc_monotone_rise =
  QCheck.Test.make ~name:"RC step response rises monotonically" ~count:20
    QCheck.(float_range 0.5 5.0)
    (fun rk ->
      let r = rk *. 1e3 and c = 1e-15 in
      let tau = r *. c in
      let stim =
        Stimulus.ramp ~t0:(tau /. 50.0) ~duration:(tau /. 50.0) ~v_from:0.0
          ~v_to:1.0
      in
      let net, nout = rc_netlist ~r ~c ~stim in
      let res = Transient.run (Transient.default_options ~tstop:(5.0 *. tau)) net in
      let w = Transient.waveform res nout in
      let ok = ref true in
      for i = 0 to Array.length w.Waveform.values - 2 do
        if w.Waveform.values.(i + 1) < w.Waveform.values.(i) -. 1e-9 then
          ok := false
      done;
      !ok)

let () =
  Alcotest.run "slc_spice"
    [
      ( "stimulus",
        [
          Alcotest.test_case "ramp" `Quick test_ramp;
          Alcotest.test_case "pwl" `Quick test_pwl;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "building" `Quick test_netlist_building;
          Alcotest.test_case "rejects invalid elements" `Quick
            test_netlist_rejects;
        ] );
      ( "waveform",
        [
          Alcotest.test_case "crossings" `Quick test_waveform_crossings;
          Alcotest.test_case "slew of linear ramp" `Quick
            test_waveform_slew_of_linear_ramp;
          Alcotest.test_case "delay measurement" `Quick test_waveform_delay;
          Alcotest.test_case "value_at" `Quick test_waveform_value_at;
          Alcotest.test_case "validation" `Quick test_waveform_validation;
          Alcotest.test_case "csv export" `Quick test_waveform_csv;
          Alcotest.test_case "after-crossing skip" `Quick
            test_cross_time_after_skips;
        ] );
      ( "transient",
        [
          Alcotest.test_case "RC step matches analytic" `Quick
            test_rc_step_response;
          Alcotest.test_case "resistive divider DC" `Quick test_rc_divider_dc;
          Alcotest.test_case "inverter DC rails" `Quick test_inverter_dc_rails;
          Alcotest.test_case "inverter transition" `Quick
            test_inverter_transition;
          Alcotest.test_case "quiescent circuit stays put" `Quick
            test_charge_conservation_rc;
          Alcotest.test_case "breakpoints on grid" `Quick test_breakpoints_hit;
          Alcotest.test_case "invalid options" `Quick test_invalid_options;
          Alcotest.test_case "trapezoidal accuracy" `Quick
            test_trapezoidal_more_accurate;
          Alcotest.test_case "dc sweep VTC" `Quick test_dc_sweep_inverter_vtc;
          Alcotest.test_case "dc sweep validation" `Quick
            test_dc_sweep_requires_pinned_node;
          Alcotest.test_case "RC ladder matches matrix exponential" `Quick
            test_rc_ladder_matches_expm;
          QCheck_alcotest.to_alcotest prop_rc_monotone_rise;
        ] );
      ( "fault handling",
        [
          Alcotest.test_case "recovery ladder rescues" `Quick
            test_recovery_ladder;
          Alcotest.test_case "recovery exhaustion reports rungs" `Quick
            test_recovery_exhaustion_reports_rungs;
          Alcotest.test_case "dc sweep restores state" `Quick
            test_dc_sweep_restores_state;
        ] );
      ( "batch engine",
        [
          Alcotest.test_case "batch of one is bitwise scalar" `Quick
            test_batch_of_one_bitwise;
          Alcotest.test_case "N lanes = N scalar runs (bitwise)" `Quick
            test_batch_lanes_match_scalar;
          Alcotest.test_case "workspace reuse and shrink" `Quick
            test_batch_workspace_reused;
          Alcotest.test_case "straggler peeled to scalar ladder" `Quick
            test_batch_peels_straggler;
          Alcotest.test_case "unrecoverable lane reported" `Quick
            test_batch_reports_unrecoverable_lane;
        ] );
    ]
