(* Unit and property tests for the numerical foundation library. *)

open Slc_num

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basic () =
  let v = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  check_float "sum" 6.0 (Vec.sum v);
  check_float "mean" 2.0 (Vec.mean v);
  check_float "norm_inf" 3.0 (Vec.norm_inf v);
  check_float "dot" 14.0 (Vec.dot v v);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 v);
  check_float "min" 1.0 (Vec.min_elt v);
  check_float "max" 3.0 (Vec.max_elt v)

let test_vec_ops () =
  let a = Vec.of_list [ 1.0; 2.0 ] and b = Vec.of_list [ 3.0; 5.0 ] in
  Alcotest.(check bool)
    "add" true
    (Vec.approx_equal (Vec.add a b) (Vec.of_list [ 4.0; 7.0 ]));
  Alcotest.(check bool)
    "sub" true
    (Vec.approx_equal (Vec.sub b a) (Vec.of_list [ 2.0; 3.0 ]));
  Alcotest.(check bool)
    "scale" true
    (Vec.approx_equal (Vec.scale 2.0 a) (Vec.of_list [ 2.0; 4.0 ]));
  Alcotest.(check bool)
    "mul_elt" true
    (Vec.approx_equal (Vec.mul_elt a b) (Vec.of_list [ 3.0; 10.0 ]));
  let y = Vec.copy b in
  Vec.axpy 2.0 a y;
  Alcotest.(check bool)
    "axpy" true
    (Vec.approx_equal y (Vec.of_list [ 5.0; 9.0 ]))

let test_vec_mismatch () =
  let a = Vec.create 2 and b = Vec.create 3 in
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add a b))

let test_linspace () =
  let v = Vec.linspace 0.0 1.0 5 in
  Alcotest.(check int) "length" 5 (Vec.dim v);
  check_float "first" 0.0 v.(0);
  check_float "last" 1.0 v.(4);
  check_float "step" 0.25 v.(1);
  let lg = Vec.logspace 1.0 100.0 3 in
  check_close ~tol:1e-9 "log mid" 10.0 lg.(1)

(* ------------------------------------------------------------------ *)
(* Mat *)

let test_mat_mul () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  check_float "c00" 19.0 (Mat.get c 0 0);
  check_float "c01" 22.0 (Mat.get c 0 1);
  check_float "c10" 43.0 (Mat.get c 1 0);
  check_float "c11" 50.0 (Mat.get c 1 1)

let test_mat_vec () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let v = [| 1.0; 1.0 |] in
  Alcotest.(check bool)
    "mul_vec" true
    (Vec.approx_equal (Mat.mul_vec a v) [| 3.0; 7.0 |]);
  Alcotest.(check bool)
    "tmul_vec" true
    (Vec.approx_equal (Mat.tmul_vec a v) [| 4.0; 6.0 |])

let test_mat_transpose_identity () =
  let a = Mat.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Mat.rows t);
  check_float "t21" 6.0 (Mat.get t 2 1);
  let i3 = Mat.identity 3 in
  Alcotest.(check bool) "A*I = A" true (Mat.approx_equal (Mat.mul a i3) a)

let test_mat_helpers () =
  let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric a);
  check_float "trace" 5.0 (Mat.trace a);
  let r = Mat.add_ridge a 0.5 in
  check_float "ridge" 2.5 (Mat.get r 0 0);
  check_float "ridge off-diag" 1.0 (Mat.get r 0 1);
  let o = Mat.outer [| 1.0; 2.0 |] [| 3.0; 4.0 |] in
  check_float "outer" 8.0 (Mat.get o 1 1)

(* ------------------------------------------------------------------ *)
(* Linalg *)

let random_spd rng n =
  let m =
    Mat.init n n (fun _ _ -> Slc_prob.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
  in
  Mat.add_ridge (Mat.mul (Mat.transpose m) m) (0.1 *. float_of_int n)

let test_cholesky_reconstruct () =
  let rng = Slc_prob.Rng.create 11 in
  for n = 1 to 6 do
    let a = random_spd rng n in
    let l = Linalg.cholesky a in
    let llt = Mat.mul l (Mat.transpose l) in
    Alcotest.(check bool)
      (Printf.sprintf "L L^T = A (n=%d)" n)
      true
      (Mat.approx_equal ~tol:1e-8 llt a)
  done

let test_cholesky_rejects () =
  let not_pd = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "not PD"
    (Linalg.Singular "cholesky: not positive definite") (fun () ->
      ignore (Linalg.cholesky not_pd));
  let asym = Mat.of_rows [| [| 1.0; 2.0 |]; [| 0.0; 1.0 |] |] in
  Alcotest.check_raises "not symmetric"
    (Linalg.Singular "cholesky: matrix not symmetric") (fun () ->
      ignore (Linalg.cholesky asym))

let test_solve_spd () =
  let rng = Slc_prob.Rng.create 12 in
  for n = 1 to 6 do
    let a = random_spd rng n in
    let x_true = Vec.init n (fun i -> float_of_int (i + 1)) in
    let b = Mat.mul_vec a x_true in
    let x = Linalg.solve_spd a b in
    Alcotest.(check bool)
      (Printf.sprintf "solve_spd n=%d" n)
      true
      (Vec.approx_equal ~tol:1e-7 x x_true)
  done

let test_lu_solve_and_det () =
  let a = Mat.of_rows [| [| 0.0; 2.0 |]; [| 3.0; 1.0 |] |] in
  (* Pivoting required: a(0,0) = 0. *)
  let x = Linalg.solve a [| 4.0; 5.0 |] in
  Alcotest.(check bool) "solve with pivot" true
    (Vec.approx_equal ~tol:1e-10 x [| 1.0; 2.0 |]);
  check_close ~tol:1e-10 "det" (-6.0) (Linalg.det a)

let test_inverse () =
  let rng = Slc_prob.Rng.create 13 in
  let a = random_spd rng 4 in
  let ai = Linalg.inverse a in
  Alcotest.(check bool)
    "A * A^-1 = I" true
    (Mat.approx_equal ~tol:1e-8 (Mat.mul a ai) (Mat.identity 4));
  let si = Linalg.spd_inverse a in
  Alcotest.(check bool)
    "spd_inverse agrees" true
    (Mat.approx_equal ~tol:1e-7 ai si)

let test_spd_log_det () =
  let a = Mat.of_rows [| [| 4.0; 0.0 |]; [| 0.0; 9.0 |] |] in
  check_close ~tol:1e-10 "log det" (log 36.0) (Linalg.spd_log_det a)

let test_triangular_solves () =
  let l = Mat.of_rows [| [| 2.0; 0.0 |]; [| 1.0; 3.0 |] |] in
  let x = Linalg.lower_solve l [| 4.0; 11.0 |] in
  Alcotest.(check bool) "lower" true (Vec.approx_equal x [| 2.0; 3.0 |]);
  let u = Mat.transpose l in
  let y = Linalg.upper_solve u [| 7.0; 6.0 |] in
  Alcotest.(check bool) "upper" true (Vec.approx_equal y [| 2.5; 2.0 |])

let test_least_squares () =
  (* Overdetermined consistent system: exact recovery. *)
  let a =
    Mat.of_rows [| [| 1.0; 1.0 |]; [| 1.0; 2.0 |]; [| 1.0; 3.0 |] |]
  in
  let x_true = [| 0.5; 2.0 |] in
  let b = Mat.mul_vec a x_true in
  let x = Linalg.solve_least_squares a b in
  Alcotest.(check bool) "exact" true (Vec.approx_equal ~tol:1e-6 x x_true)

let test_expm_diagonal () =
  let a = Mat.diag [| 1.0; -2.0; 0.0 |] in
  let e = Linalg.expm a in
  check_close ~tol:1e-12 "e^1" (exp 1.0) (Mat.get e 0 0);
  check_close ~tol:1e-12 "e^-2" (exp (-2.0)) (Mat.get e 1 1);
  check_close ~tol:1e-12 "e^0" 1.0 (Mat.get e 2 2);
  check_close ~tol:1e-14 "off-diagonal" 0.0 (Mat.get e 0 1)

let test_expm_nilpotent () =
  (* exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly. *)
  let a = Mat.of_rows [| [| 0.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  let e = Linalg.expm a in
  check_close ~tol:1e-13 "11" 1.0 (Mat.get e 0 0);
  check_close ~tol:1e-13 "12" 1.0 (Mat.get e 0 1);
  check_close ~tol:1e-13 "21" 0.0 (Mat.get e 1 0)

let test_expm_inverse_property () =
  (* exp(A) exp(-A) = I. *)
  let rng = Slc_prob.Rng.create 17 in
  let a = Mat.init 4 4 (fun _ _ -> Slc_prob.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let e = Linalg.expm a in
  let em = Linalg.expm (Mat.scale (-1.0) a) in
  Alcotest.(check bool) "exp(A)exp(-A)=I" true
    (Mat.approx_equal ~tol:1e-9 (Mat.mul e em) (Mat.identity 4))

let test_expm_rotation () =
  (* exp of a rotation generator gives cos/sin. *)
  let th = 0.7 in
  let a = Mat.of_rows [| [| 0.0; -.th |]; [| th; 0.0 |] |] in
  let e = Linalg.expm a in
  check_close ~tol:1e-12 "cos" (cos th) (Mat.get e 0 0);
  check_close ~tol:1e-12 "sin" (sin th) (Mat.get e 1 0)

let test_singular_raises () =
  let s = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular LU"
    (Linalg.Singular "lu_decompose: singular matrix") (fun () ->
      ignore (Linalg.solve s [| 1.0; 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Interp *)

let test_linear1d () =
  let xs = Vec.of_list [ 0.0; 1.0; 3.0 ] in
  let ys = Vec.of_list [ 0.0; 2.0; 4.0 ] in
  check_float "at node" 2.0 (Interp.linear1d xs ys 1.0);
  check_float "mid" 1.0 (Interp.linear1d xs ys 0.5);
  check_float "second cell" 3.0 (Interp.linear1d xs ys 2.0);
  (* Linear extrapolation beyond both ends. *)
  check_float "left extrap" (-2.0) (Interp.linear1d xs ys (-1.0));
  check_float "right extrap" 5.0 (Interp.linear1d xs ys 4.0)

let test_bilinear_exact_plane () =
  (* Bilinear interpolation is exact for affine functions. *)
  let f x y = 2.0 +. (3.0 *. x) -. (1.5 *. y) in
  let g =
    Interp.make_grid2 ~xs:(Vec.linspace 0.0 1.0 4) ~ys:(Vec.linspace 0.0 2.0 3)
      ~f
  in
  check_close ~tol:1e-12 "interior" (f 0.37 1.21) (Interp.bilinear g 0.37 1.21);
  check_close ~tol:1e-12 "outside" (f 1.5 2.5) (Interp.bilinear g 1.5 2.5)

let test_trilinear_exact_affine () =
  let f x y z = 1.0 +. x -. (2.0 *. y) +. (0.5 *. z) in
  let g =
    Interp.make_grid3 ~xs:(Vec.linspace 0.0 1.0 3) ~ys:(Vec.linspace 0.0 1.0 3)
      ~zs:(Vec.linspace 0.0 1.0 3) ~f
  in
  check_close ~tol:1e-12 "interior" (f 0.3 0.7 0.9)
    (Interp.trilinear g 0.3 0.7 0.9)

let test_locate () =
  let axis = Vec.of_list [ 0.0; 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "below" 0 (Interp.locate axis (-5.0));
  Alcotest.(check int) "above" 2 (Interp.locate axis 10.0);
  Alcotest.(check int) "inside" 1 (Interp.locate axis 1.5);
  Alcotest.(check int) "at node" 1 (Interp.locate axis 1.0);
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Interp.locate: axis not strictly increasing")
    (fun () -> ignore (Interp.locate (Vec.of_list [ 1.0; 1.0 ]) 0.5))

(* ------------------------------------------------------------------ *)
(* Optimize *)

let test_lm_rosenbrock_residuals () =
  (* Rosenbrock as a least-squares problem: r = (1-x, 10(y-x^2)). *)
  let residuals v = [| 1.0 -. v.(0); 10.0 *. (v.(1) -. (v.(0) *. v.(0))) |] in
  let r =
    Slc_num.Optimize.levenberg_marquardt ~residuals ~x0:[| -1.2; 1.0 |] ()
  in
  check_close ~tol:1e-5 "x" 1.0 r.Slc_num.Optimize.x.(0);
  check_close ~tol:1e-5 "y" 1.0 r.Slc_num.Optimize.x.(1)

let test_lm_linear_fit () =
  (* Fit y = a + b t through noiseless data: exact recovery. *)
  let ts = Vec.linspace 0.0 1.0 10 in
  let data = Array.map (fun t -> 2.0 +. (3.0 *. t)) ts in
  let residuals v =
    Array.mapi (fun i t -> v.(0) +. (v.(1) *. t) -. data.(i)) ts
  in
  let r = Slc_num.Optimize.levenberg_marquardt ~residuals ~x0:[| 0.0; 0.0 |] () in
  check_close ~tol:1e-6 "a" 2.0 r.Slc_num.Optimize.x.(0);
  check_close ~tol:1e-6 "b" 3.0 r.Slc_num.Optimize.x.(1);
  Alcotest.(check bool) "converged" true r.Slc_num.Optimize.converged

let test_lm_nan_cost_rejected () =
  (* Residuals are NaN everywhere but the starting point: every trial
     step must be rejected immediately as non-finite (no NaN may leak
     into the accepted state), the solver must terminate, and the
     rejections must be surfaced in the diagnostics. *)
  let residuals x =
    if Float.abs (x.(0) -. 1.0) < 1e-15 then [| 0.5 |] else [| Float.nan |]
  in
  let r =
    Slc_num.Optimize.levenberg_marquardt ~max_iter:5 ~residuals ~x0:[| 1.0 |] ()
  in
  check_close ~tol:1e-12 "stays at start point" 1.0 r.Slc_num.Optimize.x.(0);
  Alcotest.(check bool) "cost stays finite" true
    (Float.is_finite r.Slc_num.Optimize.cost);
  check_close ~tol:1e-12 "cost is the start cost" 0.125
    r.Slc_num.Optimize.cost;
  Alcotest.(check bool) "non-finite rejections surfaced" true
    (r.Slc_num.Optimize.non_finite_steps > 0)

let test_lm_nan_region_recovers () =
  (* A model with a NaN region next to the optimum: the fit must still
     converge from a start point whose early steps overshoot into it. *)
  let residuals x =
    [| (if x.(0) > 4.0 then Float.nan else x.(0) -. 3.0) |]
  in
  let r =
    Slc_num.Optimize.levenberg_marquardt ~residuals ~x0:[| 0.0 |] ()
  in
  Alcotest.(check bool) "converged" true r.Slc_num.Optimize.converged;
  check_close ~tol:1e-6 "optimum" 3.0 r.Slc_num.Optimize.x.(0)

let test_numeric_jacobian () =
  let f v = [| v.(0) *. v.(0); v.(0) *. v.(1) |] in
  let j = Slc_num.Optimize.numeric_jacobian f [| 2.0; 3.0 |] in
  check_close ~tol:1e-4 "d(x^2)/dx" 4.0 (Mat.get j 0 0);
  check_close ~tol:1e-4 "d(xy)/dy" 2.0 (Mat.get j 1 1);
  check_close ~tol:1e-4 "d(xy)/dx" 3.0 (Mat.get j 1 0)

let test_nelder_mead () =
  let f v = ((v.(0) -. 1.5) ** 2.0) +. ((v.(1) +. 0.5) ** 2.0) +. 7.0 in
  let r = Slc_num.Optimize.nelder_mead ~f ~x0:[| 0.0; 0.0 |] () in
  check_close ~tol:1e-4 "x" 1.5 r.Slc_num.Optimize.nm_x.(0);
  check_close ~tol:1e-4 "y" (-0.5) r.Slc_num.Optimize.nm_x.(1);
  check_close ~tol:1e-6 "f" 7.0 r.Slc_num.Optimize.nm_f

let test_golden_section () =
  let m =
    Slc_num.Optimize.golden_section ~f:(fun x -> (x -. 0.3) ** 2.0) ~lo:(-1.0)
      ~hi:2.0 ()
  in
  check_close ~tol:1e-6 "minimum" 0.3 m

let test_bisect () =
  let r = Slc_num.Optimize.bisect ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 () in
  check_close ~tol:1e-9 "sqrt2" (sqrt 2.0) r;
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Optimize.bisect: interval does not bracket a root")
    (fun () ->
      ignore (Slc_num.Optimize.bisect ~f:(fun _ -> 1.0) ~lo:0.0 ~hi:1.0 ()))

(* ------------------------------------------------------------------ *)
(* Special *)

let test_erf_values () =
  check_close ~tol:2e-7 "erf 0" 0.0 (Special.erf 0.0);
  check_close ~tol:2e-7 "erf 1" 0.8427007929 (Special.erf 1.0);
  check_close ~tol:2e-7 "erf -1" (-0.8427007929) (Special.erf (-1.0));
  check_close ~tol:2e-7 "erfc 2" 0.0046777349 (Special.erfc 2.0)

let test_normal_cdf_quantile_roundtrip () =
  List.iter
    (fun p ->
      let x = Special.normal_quantile p in
      check_close ~tol:1e-7
        (Printf.sprintf "cdf(quantile %g)" p)
        p (Special.normal_cdf x))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let test_normal_pdf () =
  check_close ~tol:1e-9 "pdf 0" (1.0 /. sqrt (2.0 *. Float.pi))
    (Special.normal_pdf 0.0);
  check_close ~tol:1e-9 "pdf scaled" (Special.normal_pdf 0.0 /. 2.0)
    (Special.normal_pdf ~sigma:2.0 0.0)

let test_log_gamma () =
  check_close ~tol:1e-9 "gamma 1" 0.0 (Special.log_gamma 1.0);
  check_close ~tol:1e-9 "gamma 5" (log 24.0) (Special.log_gamma 5.0);
  check_close ~tol:1e-8 "gamma 0.5" (0.5 *. log Float.pi)
    (Special.log_gamma 0.5)

(* ------------------------------------------------------------------ *)
(* Quadrature *)

let test_quadrature () =
  let f x = x *. x in
  check_close ~tol:1e-3 "trapezoid x^2" (1.0 /. 3.0)
    (Quadrature.trapezoid f ~lo:0.0 ~hi:1.0 ~n:100);
  check_close ~tol:1e-9 "simpson x^2" (1.0 /. 3.0)
    (Quadrature.simpson f ~lo:0.0 ~hi:1.0 ~n:10);
  check_close ~tol:1e-8 "adaptive sin"
    2.0
    (Quadrature.adaptive_simpson sin ~lo:0.0 ~hi:Float.pi ());
  let xs = Vec.linspace 0.0 1.0 101 in
  let ys = Array.map f xs in
  check_close ~tol:1e-3 "samples" (1.0 /. 3.0)
    (Quadrature.trapezoid_samples ~xs ~ys)

(* In-place LU: must agree with the allocating Linalg.solve on random
   well-conditioned systems, and reject singular input. *)
let test_lu_in_place_matches_solve () =
  (* Small deterministic LCG so the test needs no RNG dependency. *)
  let state = ref 123456789 in
  let rand () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (float_of_int !state /. float_of_int 0x3FFFFFFF) -. 0.5
  in
  List.iter
    (fun n ->
      for _trial = 1 to 10 do
        (* Diagonally dominant => well-conditioned and non-singular. *)
        let a =
          Mat.init n n (fun i j ->
              if i = j then 4.0 +. float_of_int n +. rand () else rand ())
        in
        let b = Array.init n (fun _ -> rand ()) in
        let expected = Linalg.solve a b in
        let fact = Mat.copy a in
        let perm = Array.make n 0 in
        let sign = Linalg.lu_factor_in_place fact perm in
        Alcotest.(check bool) "sign is +/-1" true (Float.abs sign = 1.0);
        let x = Array.make n 0.0 in
        Linalg.lu_solve_in_place fact perm ~b ~x;
        Array.iteri
          (fun i xi -> check_close ~tol:0.0 "in-place = solve" expected.(i) xi)
          x;
        (* Residual sanity: a x ~ b. *)
        let r = Mat.mul_vec a x in
        Array.iteri (fun i ri -> check_close ~tol:1e-9 "residual" b.(i) ri) r
      done)
    [ 1; 2; 3; 5; 8 ]

let test_lu_in_place_singular () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  let perm = Array.make 2 0 in
  Alcotest.check_raises "singular raises"
    (Linalg.Singular "lu_factor_in_place: singular matrix") (fun () ->
      ignore (Linalg.lu_factor_in_place a perm))

(* ------------------------------------------------------------------ *)
(* Parallel *)

let test_parallel_matches_sequential () =
  let xs = Array.init 103 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "forced 4 domains" (Array.map f xs)
    (Parallel.map ~domains:4 f xs);
  Alcotest.(check (array int)) "single domain" (Array.map f xs)
    (Parallel.map ~domains:1 f xs);
  Alcotest.(check (list int)) "list version" [ 2; 5; 10 ]
    (Parallel.map_list ~domains:3 f [ 1; 2; 3 ]);
  Alcotest.(check (array int)) "empty" [||] (Parallel.map ~domains:4 f [||])

let test_parallel_propagates_exceptions () =
  let f x = if x = 37 then failwith "boom" else x in
  Alcotest.check_raises "task failure surfaces" (Failure "boom") (fun () ->
      ignore (Parallel.map ~domains:4 f (Array.init 64 (fun i -> i))))

let test_parallel_domain_count_env () =
  Alcotest.(check bool) "at least one" true (Parallel.domain_count () >= 1)

(* The dynamic scheduler must preserve result order even when task
   costs are wildly uneven (late indices cheap, early ones expensive),
   and must not lose elements when tasks outnumber domains. *)
let test_parallel_uneven_order_preserved () =
  let n = 257 in
  let xs = Array.init n (fun i -> i) in
  let f i =
    (* Early indices spin much longer than late ones. *)
    let spins = if i < 8 then 200_000 else 10 in
    let acc = ref 0 in
    for k = 1 to spins do
      acc := (!acc + (k * i)) land 0xFFFF
    done;
    (i * 2) + (!acc * 0)
  in
  Alcotest.(check (array int)) "order preserved under imbalance"
    (Array.map f xs)
    (Parallel.map ~domains:4 f xs)

let test_parallel_exception_in_spawned_domain () =
  (* Fail on the last index so a spawned (non-main) worker is likely to
     hit it under dynamic scheduling; the error must still surface. *)
  let f x = if x = 63 then failwith "late boom" else x in
  Alcotest.check_raises "late task failure surfaces" (Failure "late boom")
    (fun () -> ignore (Parallel.map ~domains:4 f (Array.init 64 (fun i -> i))))

(* The pool must produce results identical to a plain sequential
   Array.map regardless of how many domains participate. *)
let test_pool_identity_across_domain_counts () =
  let xs = Array.init 311 (fun i -> i) in
  let f x = (x * 31) land 0xFFF in
  let expected = Array.map f xs in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" d)
        expected
        (Parallel.map ~domains:d f xs))
    [ 1; 2; 8 ];
  Alcotest.(check (array int)) "sequential helper" expected
    (Parallel.sequential (fun () -> Parallel.map ~domains:8 f xs))

let test_pool_multiple_failures_aggregated () =
  (* Several items fail inside one claimed chunk (chunk = batch size,
     so a single participant runs them all): the primary exception is
     the smallest failing index, the rest ride along in index order. *)
  let f x = if x mod 16 = 5 then failwith (string_of_int x) else x in
  match Parallel.map ~domains:4 ~chunk:64 f (Array.init 64 (fun i -> i)) with
  | _ -> Alcotest.fail "expected Failures"
  | exception Parallel.Failures (Failure primary, rest) ->
    Alcotest.(check string) "primary is smallest index" "5" primary;
    Alcotest.(check (list string))
      "secondary failures in index order" [ "21"; "37"; "53" ]
      (List.map (function Failure m -> m | _ -> "?") rest)
  | exception e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e)

let test_pool_reuse_across_maps () =
  (* Two successive maps reuse the same long-lived pool; a failing
     batch in between must not poison it. *)
  let xs = Array.init 97 (fun i -> i) in
  let first = Parallel.map ~domains:8 (fun x -> x + 1) xs in
  (try ignore (Parallel.map ~domains:8 (fun _ -> failwith "mid") xs)
   with _ -> ());
  let second = Parallel.map ~domains:8 (fun x -> x * 2) xs in
  Alcotest.(check (array int)) "first batch" (Array.map (fun x -> x + 1) xs) first;
  Alcotest.(check (array int)) "second batch after failure"
    (Array.map (fun x -> x * 2) xs)
    second

let test_pool_nested_map_runs_inline () =
  (* A task that itself calls Parallel.map must not deadlock waiting on
     pool workers that are all busy running the outer batch. *)
  let xs = Array.init 24 (fun i -> i) in
  let f x =
    Array.fold_left ( + ) 0
      (Parallel.map ~domains:8 (fun y -> x + y) (Array.init 5 Fun.id))
  in
  Alcotest.(check (array int)) "nested maps" (Array.map f xs)
    (Parallel.map ~domains:8 f xs)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_mat_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (r, c) ->
      let rng = Slc_prob.Rng.create ((r * 31) + c) in
      let m = Mat.init r c (fun _ _ -> Slc_prob.Rng.uniform rng ~lo:(-5.0) ~hi:5.0) in
      Mat.approx_equal (Mat.transpose (Mat.transpose m)) m)

let prop_det_of_product =
  QCheck.Test.make ~name:"det(AB) = det(A) det(B)" ~count:40
    QCheck.(int_range 1 5)
    (fun n ->
      let rng = Slc_prob.Rng.create (n * 131) in
      let mk () =
        Mat.add_ridge
          (Mat.init n n (fun _ _ -> Slc_prob.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
          1.5
      in
      let a = mk () and b = mk () in
      let lhs = Linalg.det (Mat.mul a b) in
      let rhs = Linalg.det a *. Linalg.det b in
      Float.abs (lhs -. rhs) < 1e-6 *. (1.0 +. Float.abs rhs))

let prop_cholesky_solve =
  QCheck.Test.make ~name:"spd solve residual is tiny" ~count:50
    QCheck.(int_range 1 7)
    (fun n ->
      let rng = Slc_prob.Rng.create (n * 977) in
      let a = random_spd rng n in
      let b = Vec.init n (fun i -> Slc_prob.Rng.uniform rng ~lo:(-2.0) ~hi:2.0 +. float_of_int i) in
      let x = Linalg.solve_spd a b in
      let r = Vec.sub (Mat.mul_vec a x) b in
      Vec.norm_inf r < 1e-7 *. (1.0 +. Vec.norm_inf b))

let prop_interp_between_nodes =
  QCheck.Test.make ~name:"linear1d inside hull of neighbours" ~count:100
    QCheck.(pair (float_bound_exclusive 1.0) (float_bound_exclusive 1.0))
    (fun (a, b) ->
      let xs = Vec.linspace 0.0 1.0 5 in
      let ys = Array.map (fun x -> sin (6.0 *. (x +. a))) xs in
      let x = Float.max 0.0 (Float.min 1.0 b) in
      let v = Interp.linear1d xs ys x in
      let lo = Vec.min_elt ys and hi = Vec.max_elt ys in
      v >= lo -. 1e-12 && v <= hi +. 1e-12)

let prop_lm_quadratic_exact =
  QCheck.Test.make ~name:"LM solves linear least squares exactly" ~count:30
    QCheck.(pair (float_range (-3.0) 3.0) (float_range (-3.0) 3.0))
    (fun (a, b) ->
      let ts = Vec.linspace (-1.0) 1.0 8 in
      let data = Array.map (fun t -> a +. (b *. t)) ts in
      let residuals v =
        Array.mapi (fun i t -> v.(0) +. (v.(1) *. t) -. data.(i)) ts
      in
      let r = Slc_num.Optimize.levenberg_marquardt ~residuals ~x0:[| 0.0; 0.0 |] () in
      Float.abs (r.Slc_num.Optimize.x.(0) -. a) < 1e-5
      && Float.abs (r.Slc_num.Optimize.x.(1) -. b) < 1e-5)

let () =
  Alcotest.run "slc_num"
    [
      ( "vec",
        [
          Alcotest.test_case "basic reductions" `Quick test_vec_basic;
          Alcotest.test_case "arithmetic" `Quick test_vec_ops;
          Alcotest.test_case "dimension mismatch" `Quick test_vec_mismatch;
          Alcotest.test_case "linspace/logspace" `Quick test_linspace;
        ] );
      ( "mat",
        [
          Alcotest.test_case "multiplication" `Quick test_mat_mul;
          Alcotest.test_case "matrix-vector" `Quick test_mat_vec;
          Alcotest.test_case "transpose/identity" `Quick
            test_mat_transpose_identity;
          Alcotest.test_case "helpers" `Quick test_mat_helpers;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "cholesky reconstructs" `Quick
            test_cholesky_reconstruct;
          Alcotest.test_case "cholesky rejects bad input" `Quick
            test_cholesky_rejects;
          Alcotest.test_case "SPD solve" `Quick test_solve_spd;
          Alcotest.test_case "LU solve with pivoting + det" `Quick
            test_lu_solve_and_det;
          Alcotest.test_case "in-place LU matches solve" `Quick
            test_lu_in_place_matches_solve;
          Alcotest.test_case "in-place LU rejects singular" `Quick
            test_lu_in_place_singular;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "log det" `Quick test_spd_log_det;
          Alcotest.test_case "triangular solves" `Quick test_triangular_solves;
          Alcotest.test_case "least squares" `Quick test_least_squares;
          Alcotest.test_case "singular raises" `Quick test_singular_raises;
          Alcotest.test_case "expm diagonal" `Quick test_expm_diagonal;
          Alcotest.test_case "expm nilpotent" `Quick test_expm_nilpotent;
          Alcotest.test_case "expm inverse property" `Quick
            test_expm_inverse_property;
          Alcotest.test_case "expm rotation" `Quick test_expm_rotation;
          QCheck_alcotest.to_alcotest prop_cholesky_solve;
          QCheck_alcotest.to_alcotest prop_mat_transpose_involution;
          QCheck_alcotest.to_alcotest prop_det_of_product;
        ] );
      ( "interp",
        [
          Alcotest.test_case "linear 1d" `Quick test_linear1d;
          Alcotest.test_case "bilinear exact on plane" `Quick
            test_bilinear_exact_plane;
          Alcotest.test_case "trilinear exact on affine" `Quick
            test_trilinear_exact_affine;
          Alcotest.test_case "locate" `Quick test_locate;
          QCheck_alcotest.to_alcotest prop_interp_between_nodes;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "LM rosenbrock" `Quick test_lm_rosenbrock_residuals;
          Alcotest.test_case "LM linear fit" `Quick test_lm_linear_fit;
          Alcotest.test_case "LM NaN cost rejected" `Quick
            test_lm_nan_cost_rejected;
          Alcotest.test_case "LM NaN region recovers" `Quick
            test_lm_nan_region_recovers;
          Alcotest.test_case "numeric jacobian" `Quick test_numeric_jacobian;
          Alcotest.test_case "nelder-mead" `Quick test_nelder_mead;
          Alcotest.test_case "golden section" `Quick test_golden_section;
          Alcotest.test_case "bisect" `Quick test_bisect;
          QCheck_alcotest.to_alcotest prop_lm_quadratic_exact;
        ] );
      ( "special",
        [
          Alcotest.test_case "erf values" `Quick test_erf_values;
          Alcotest.test_case "cdf/quantile roundtrip" `Quick
            test_normal_cdf_quantile_roundtrip;
          Alcotest.test_case "pdf" `Quick test_normal_pdf;
          Alcotest.test_case "log gamma" `Quick test_log_gamma;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "exception propagation" `Quick
            test_parallel_propagates_exceptions;
          Alcotest.test_case "uneven tasks keep order" `Quick
            test_parallel_uneven_order_preserved;
          Alcotest.test_case "exception from spawned domain" `Quick
            test_parallel_exception_in_spawned_domain;
          Alcotest.test_case "domain count" `Quick
            test_parallel_domain_count_env;
          Alcotest.test_case "identical across domain counts" `Quick
            test_pool_identity_across_domain_counts;
          Alcotest.test_case "multiple failures aggregated" `Quick
            test_pool_multiple_failures_aggregated;
          Alcotest.test_case "pool reused across maps" `Quick
            test_pool_reuse_across_maps;
          Alcotest.test_case "nested map runs inline" `Quick
            test_pool_nested_map_runs_inline;
        ] );
      ( "quadrature",
        [ Alcotest.test_case "rules agree with analytic" `Quick test_quadrature ] );
    ]
