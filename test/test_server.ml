(* Characterization-server tests: protocol round-trips, local-vs-socket
   bitwise parity, concurrent clients, malformed-request handling,
   draining shutdown, and the Telemetry snapshot/diff API the server's
   per-connection stats are built on.

   Engines are built with injected synthetic banks (pure, deterministic,
   zero simulator runs) so the suite exercises the server machinery, not
   the characterization flow; the CI serve-smoke job covers the real
   warm/cold = zero-simulation contract end to end. *)

module Protocol = Slc_server.Protocol
module Engine = Slc_server.Engine
module Server = Slc_server.Server
module Oracle = Slc_ssta.Oracle
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Telemetry = Slc_obs.Telemetry

(* ----------------------------------------------------------------- *)
(* Helpers *)

(* A pure, deterministic stand-in bank: answers depend on the arc name,
   [k] and the query point, so distinct requests get distinct replies
   and repeats are bit-identical.  [queries] counts oracle entries —
   the cache-hit analog of "simulator runs" for these tests. *)
let fake_bank ?(delay_s = 0.0) ~builds ~queries () tech ~k =
  ignore tech;
  Atomic.incr builds;
  {
    Oracle.label = "fake";
    query =
      (fun arc pt ->
        Atomic.incr queries;
        if delay_s > 0.0 then Thread.delay delay_s;
        let base = float_of_int (String.length (Arc.name arc) + k) in
        ( (base *. 1e-12) +. (0.5 *. pt.Harness.sin)
          +. (pt.Harness.cload /. 1e-3),
          (base *. 2e-12) +. (0.25 *. pt.Harness.sin) ));
  }

let fresh_engine ?delay_s () =
  let builds = Atomic.make 0 in
  let queries = Atomic.make 0 in
  let engine =
    Engine.create ~bank:(fake_bank ?delay_s ~builds ~queries ()) ()
  in
  (engine, builds, queries)

(* Run request lines through the CLI's local mode (serve_channels over
   temp files) and return the response lines. *)
let run_local engine lines =
  let req_path = Filename.temp_file "slc_server_req" ".txt" in
  let resp_path = Filename.temp_file "slc_server_resp" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove req_path with Sys_error _ -> ());
      try Sys.remove resp_path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text req_path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines);
      In_channel.with_open_text req_path (fun ic ->
          Out_channel.with_open_text resp_path (fun oc ->
              Server.serve_channels engine ic oc));
      In_channel.with_open_text resp_path In_channel.input_lines)

let temp_sock_path () =
  let path = Filename.temp_file "slc_srv" ".sock" in
  Sys.remove path;
  path

let with_server engine f =
  let path = temp_sock_path () in
  let srv = Server.start engine (Server.Unix_socket path) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f path)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One request/response exchange on an open connection. *)
let exchange ic oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

(* Open a connection, send every line, collect replies until the server
   closes or the lines run out. *)
let run_socket path lines =
  let fd, ic, oc = connect path in
  Fun.protect
    ~finally:(fun () -> close_quiet fd)
    (fun () ->
      List.filter_map
        (fun line ->
          match exchange ic oc line with
          | reply -> Some reply
          | exception (End_of_file | Sys_error _) -> None)
        lines)

(* A request battery touching every verb and both error kinds.  sta
   runs over a temp netlist through the fake bank. *)
let battery netlist =
  [
    "ping";
    "delay n14 INV A fall 3 5e-12 2e-15 0.8";
    "slew n14 NAND2 B rise 2 4e-12 1e-15 0.9";
    "delay n14 INV A fall 3 5e-12 2e-15 0.8";
    "sta n28 2 6e-11 " ^ netlist;
    "delay nope INV A fall 3 5e-12 2e-15 0.8";
    "delay n14 INV A fall 3 junk 2e-15 0.8";
    "frobnicate all the things";
    "quit";
  ]

let with_netlist f =
  let path = Filename.temp_file "slc_server_net" ".v" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        "module chain (a, b, out);\n\
        \  input a, b;\n\
        \  output out;\n\
        \  wire n1, n2;\n\
        \  NAND2 u1 (.A(a), .B(b), .Y(n1));\n\
        \  INV   u2 (.A(n1), .Y(n2));\n\
        \  INV   u3 (.A(n2), .Y(out));\n\
         endmodule\n");
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let lines = Alcotest.(list string)

(* ----------------------------------------------------------------- *)
(* Protocol round-trips *)

let sample_requests =
  [
    Protocol.Ping;
    Protocol.Quit;
    Protocol.Shutdown;
    Protocol.Stats;
    Protocol.Delay
      {
        q_tech = "n14";
        q_cell = "INV";
        q_pin = "A";
        q_dir = Arc.Fall;
        q_k = 3;
        q_point = { Harness.sin = 5.3e-12; cload = 2.7e-15; vdd = 0.8125 };
      };
    Protocol.Slew
      {
        q_tech = "n28";
        q_cell = "NAND2";
        q_pin = "B";
        q_dir = Arc.Rise;
        q_k = 7;
        q_point = { Harness.sin = 1.0 /. 3.0; cload = 0.1; vdd = 1.0 };
      };
    Protocol.Pdf
      {
        p_tech = "n28";
        p_cell = "INV";
        p_pin = "A";
        p_dir = Arc.Fall;
        p_method = "bayes";
        p_k = 3;
        p_seeds = 12;
        p_rng = 42;
        p_grid = 33;
        p_point = { Harness.sin = 6e-12; cload = 3e-15; vdd = 0.75 };
      };
    Protocol.Sta
      { s_tech = "n14"; s_k = 2; s_clock = 6.1e-11; s_netlist = "/tmp/x.v" };
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let line = Protocol.format_request req in
      match Protocol.parse_request line with
      | Ok req' ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip %s" line)
          true (req = req')
      | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" line m))
    sample_requests

let sample_responses =
  [
    Protocol.Ok_pong;
    Protocol.Ok_bye;
    Protocol.Ok_delay (1.0 /. 3.0 *. 1e-12, Float.min_float);
    Protocol.Ok_slew 4.25e-12;
    Protocol.Ok_pdf [| (1e-12, 0.5); (2e-12, 1.5); (3e-12, 0.25) |];
    Protocol.Ok_sta
      [ ("out", 6e-11, 6.1e-11, 1e-12); ("n1", 3e-11, Float.infinity, 1.0) ];
    Protocol.Ok_stats [ ("requests", "4"); ("p50_us", "12.5") ];
    Protocol.Err (Protocol.Parse, "unknown request \"bogus\"");
    Protocol.Err (Protocol.Domain, "unknown technology \"nope\"");
    Protocol.Err (Protocol.Internal, "multi\nline\rmessage");
  ]

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let line = Protocol.format_response resp in
      Alcotest.(check bool)
        (Printf.sprintf "single line: %s" line)
        false
        (String.contains line '\n');
      match Protocol.parse_response line with
      | Ok resp' ->
        (* The one lossy case by design: newlines in error text are
           flattened to keep the framing. *)
        let expect =
          match resp with
          | Protocol.Err (k, m) ->
            Protocol.Err
              (k, String.map (function '\n' | '\r' -> ' ' | c -> c) m)
          | r -> r
        in
        Alcotest.(check bool)
          (Printf.sprintf "round-trip %s" line)
          true (expect = resp')
      | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" line m))
    sample_responses

let test_parse_rejects () =
  List.iter
    (fun line ->
      match Protocol.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" line))
    [
      "";
      "   ";
      "frobnicate";
      "delay n14 INV A fall";
      "delay n14 INV A sideways 3 1e-12 1e-15 0.8";
      "delay n14 INV A fall 3 junk 1e-15 0.8";
      "delay n14 INV A fall 3.5 1e-12 1e-15 0.8";
      "pdf n28 INV A fall bayes 3 12 42 1e-12 1e-15 0.8";
      "ping extra";
      "stats now";
    ]

(* ----------------------------------------------------------------- *)
(* Engine dispatch *)

let test_engine_dispatch () =
  let engine, builds, queries = fresh_engine () in
  let delay_req =
    Protocol.Delay
      {
        q_tech = "n14";
        q_cell = "INV";
        q_pin = "A";
        q_dir = Arc.Fall;
        q_k = 3;
        q_point = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 };
      }
  in
  (match Engine.exec engine delay_req with
  | Protocol.Ok_delay (td, sout) ->
    Alcotest.(check bool) "finite" true (Float.is_finite td && Float.is_finite sout)
  | r -> Alcotest.fail (Protocol.format_response r));
  let first = Engine.exec engine delay_req in
  let q_after_first = Atomic.get queries in
  (* Warm repeat: the (tech, k) bank is reused and the exact query
     cache answers without re-entering the oracle — the test-scale
     version of "a second identical request costs zero simulations". *)
  let second = Engine.exec engine delay_req in
  Alcotest.(check bool) "bitwise equal warm answer" true (first = second);
  Alcotest.(check int) "one bank build" 1 (Atomic.get builds);
  Alcotest.(check int) "no new oracle entry" q_after_first (Atomic.get queries);
  (* Errors come back typed, never raised. *)
  (match
     Engine.exec engine
       (Protocol.Sta
          { s_tech = "n14"; s_k = 2; s_clock = 1e-10; s_netlist = "/nope.v" })
   with
  | Protocol.Err (Protocol.Domain, _) -> ()
  | r -> Alcotest.fail ("want err domain, got " ^ Protocol.format_response r));
  match
    Engine.exec engine
      (Protocol.Delay
         {
           q_tech = "n14";
           q_cell = "INV";
           q_pin = "Z";
           q_dir = Arc.Fall;
           q_k = 3;
           q_point = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 };
         })
  with
  | Protocol.Err (Protocol.Domain, _) -> ()
  | r -> Alcotest.fail ("want err domain, got " ^ Protocol.format_response r)

(* ----------------------------------------------------------------- *)
(* Socket server *)

let test_socket_matches_local () =
  with_netlist (fun netlist ->
      let local_engine, _, _ = fresh_engine () in
      let local = run_local local_engine (battery netlist) in
      let served_engine, _, _ = fresh_engine () in
      let served =
        with_server served_engine (fun path -> run_socket path (battery netlist))
      in
      Alcotest.check lines
        "served responses bitwise equal local one-shot responses" local served;
      (* Sanity on shape: every reply is ok or err, errors are typed. *)
      List.iter
        (fun l ->
          Alcotest.(check bool)
            (Printf.sprintf "framed reply: %s" l)
            true
            (String.length l > 3
            && (String.sub l 0 3 = "ok " || String.sub l 0 4 = "err ")))
        served)

let test_concurrent_clients () =
  with_netlist (fun netlist ->
      let reqs = battery netlist in
      let engine, _, _ = fresh_engine ~delay_s:0.002 () in
      with_server engine (fun path ->
          (* Sequential pass first: warms the engine memo and fixes the
             reference answers.  The concurrent clients must then each
             see exactly this transcript, bit for bit. *)
          let reference = run_socket path reqs in
          let n = 6 in
          let results = Array.make n [] in
          let threads =
            List.init n (fun i ->
                Thread.create
                  (fun () -> results.(i) <- run_socket path reqs)
                  ())
          in
          List.iter Thread.join threads;
          Array.iteri
            (fun i r ->
              Alcotest.check lines
                (Printf.sprintf "client %d sees the sequential answers" i)
                reference r)
            results))

let test_malformed_then_usable () =
  let engine, _, _ = fresh_engine () in
  with_server engine (fun path ->
      let fd, ic, oc = connect path in
      Fun.protect
        ~finally:(fun () -> close_quiet fd)
        (fun () ->
          let r1 = exchange ic oc "utter nonsense" in
          Alcotest.(check bool)
            "typed parse error" true
            (String.length r1 >= 9 && String.sub r1 0 9 = "err parse");
          let r2 = exchange ic oc "delay n14 INV A fall 3 junk 2e-15 0.8" in
          Alcotest.(check bool)
            "typed parse error with detail" true
            (String.length r2 >= 9 && String.sub r2 0 9 = "err parse");
          let r3 = exchange ic oc "delay nope INV A fall 3 5e-12 2e-15 0.8" in
          Alcotest.(check bool)
            "typed domain error" true
            (String.length r3 >= 10 && String.sub r3 0 10 = "err domain");
          (* The connection survived all three. *)
          Alcotest.(check string) "still usable" "ok pong" (exchange ic oc "ping")))

let test_per_connection_stats () =
  let engine, _, _ = fresh_engine () in
  with_server engine (fun path ->
      let stats_field reply name =
        match Protocol.parse_response reply with
        | Ok (Protocol.Ok_stats kvs) -> List.assoc_opt name kvs
        | _ -> Alcotest.fail ("not a stats reply: " ^ reply)
      in
      let fd1, ic1, oc1 = connect path in
      let fd2, ic2, oc2 = connect path in
      Fun.protect
        ~finally:(fun () ->
          close_quiet fd1;
          close_quiet fd2)
        (fun () ->
          ignore (exchange ic1 oc1 "ping");
          ignore (exchange ic1 oc1 "ping");
          ignore (exchange ic1 oc1 "bogus");
          let s1 = exchange ic1 oc1 "stats" in
          (* Counted before the stats request itself lands. *)
          Alcotest.(check (option string))
            "conn1 requests" (Some "3") (stats_field s1 "requests");
          Alcotest.(check (option string))
            "conn1 errors" (Some "1") (stats_field s1 "errors");
          let s2 = exchange ic2 oc2 "stats" in
          Alcotest.(check (option string))
            "conn2 starts fresh" (Some "0") (stats_field s2 "requests");
          Alcotest.(check bool)
            "latency percentiles present" true
            (stats_field s1 "p50_us" <> None && stats_field s1 "p99_us" <> None);
          Alcotest.(check (option string))
            "no sims through the fake bank" (Some "0")
            (stats_field s1 "conn_sims")))

let test_stop_drains_in_flight () =
  let engine, _, _ = fresh_engine ~delay_s:0.3 () in
  let path = temp_sock_path () in
  let srv = Server.start engine (Server.Unix_socket path) in
  let fd, ic, oc = connect path in
  Fun.protect
    ~finally:(fun () -> close_quiet fd)
    (fun () ->
      output_string oc "delay n14 INV A fall 3 5e-12 2e-15 0.8\n";
      flush oc;
      (* Let the handler get into the slow oracle call, then stop. *)
      Thread.delay 0.1;
      let t0 = Unix.gettimeofday () in
      Server.stop srv;
      let stop_took = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        "stop blocked for the in-flight request" true (stop_took > 0.05);
      (* The response was written whole before the connection closed. *)
      (match input_line ic with
      | reply ->
        Alcotest.(check bool)
          "drained reply is complete" true
          (String.length reply > 9 && String.sub reply 0 9 = "ok delay ")
      | exception End_of_file -> Alcotest.fail "reply lost in shutdown");
      match input_line ic with
      | _ -> Alcotest.fail "connection should be closed after drain"
      | exception End_of_file -> ())

let test_shutdown_request_stops_server () =
  let engine, _, _ = fresh_engine () in
  let path = temp_sock_path () in
  let srv = Server.start engine (Server.Unix_socket path) in
  let fd, ic, oc = connect path in
  let reply = exchange ic oc "shutdown" in
  Alcotest.(check string) "acknowledged" "ok bye" reply;
  close_quiet fd;
  (* wait returns because the shutdown request stopped the server. *)
  Server.wait srv;
  match connect path with
  | fd, _, _ ->
    close_quiet fd;
    Alcotest.fail "server still accepting after shutdown"
  | exception Unix.Unix_error _ -> ()

(* ----------------------------------------------------------------- *)
(* Telemetry snapshots (the per-connection stats substrate) *)

let test_telemetry_snapshot_diff () =
  let was_on = Telemetry.on () in
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_on then Telemetry.disable ())
    (fun () ->
      let before = Telemetry.snapshot () in
      Telemetry.incr Telemetry.oracle_hits;
      Telemetry.incr Telemetry.oracle_hits;
      Telemetry.incr Telemetry.server_requests;
      let after = Telemetry.snapshot () in
      let d = Telemetry.diff ~before ~after in
      Alcotest.(check int) "oracle_hits delta" 2
        (Telemetry.snapshot_value d "oracle_hits");
      Alcotest.(check int) "server_requests delta" 1
        (Telemetry.snapshot_value d "server_requests");
      Alcotest.(check int) "untouched counter" 0
        (Telemetry.snapshot_value d "store_hits");
      Alcotest.(check int) "unknown name reads 0" 0
        (Telemetry.snapshot_value d "no_such_counter");
      (* A counter missing from [before] (older snapshot) diffs vs 0. *)
      let d0 = Telemetry.diff ~before:[] ~after in
      Alcotest.(check int) "missing-from-before falls back to absolute"
        (Telemetry.snapshot_value after "oracle_hits")
        (Telemetry.snapshot_value d0 "oracle_hits"))

let test_telemetry_dump_json () =
  let json = Telemetry.dump_json () in
  let has needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counters section" true (has "\"counters\"");
  Alcotest.(check bool) "new server counters present" true
    (has "\"server_requests\"" && has "\"server_connections\"");
  Alcotest.(check bool) "spans section" true (has "\"spans\"");
  Alcotest.(check bool) "object closed" true
    (String.length json > 3 && String.sub json (String.length json - 2) 2 = "}\n")

let () =
  Alcotest.run "slc_server"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_parse_rejects;
        ] );
      ( "engine",
        [ Alcotest.test_case "dispatch and memo" `Quick test_engine_dispatch ] );
      ( "server",
        [
          Alcotest.test_case "socket = local, bitwise" `Quick
            test_socket_matches_local;
          Alcotest.test_case "concurrent clients agree" `Quick
            test_concurrent_clients;
          Alcotest.test_case "malformed then usable" `Quick
            test_malformed_then_usable;
          Alcotest.test_case "per-connection stats" `Quick
            test_per_connection_stats;
          Alcotest.test_case "stop drains in-flight" `Quick
            test_stop_drains_in_flight;
          Alcotest.test_case "shutdown request" `Quick
            test_shutdown_request_stops_server;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "snapshot/diff" `Quick test_telemetry_snapshot_diff;
          Alcotest.test_case "dump_json" `Quick test_telemetry_dump_json;
        ] );
    ]
