(* Tests for the core characterization library: the compact timing
   model, LSE extraction, prior learning, MAP estimation, belief
   propagation and the flow plumbing. *)

open Slc_core
module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Equivalent = Slc_cell.Equivalent
module Vec = Slc_num.Vec
module Mat = Slc_num.Mat
module Mvn = Slc_prob.Mvn

let tech = Tech.n14

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let inv_fall = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall

let ieff_at (p : Harness.point) =
  Equivalent.ieff (Equivalent.of_arc tech inv_fall) ~vdd:p.Harness.vdd

(* Synthetic observations drawn exactly from the model: extraction
   must recover the generating parameters. *)
let synthetic_obs params k =
  let points = Input_space.fitting_points tech ~k in
  Array.map
    (fun pt ->
      let ieff = ieff_at pt in
      {
        Extract_lse.point = pt;
        ieff;
        value = Timing_model.eval params ~ieff pt;
      })
    points

let p_true =
  { Timing_model.kd = 0.35; cpar = 1.2; v_off = -0.22; alpha = 0.08 }

(* ------------------------------------------------------------------ *)
(* Timing_model *)

let test_eval_formula () =
  let p = { Timing_model.kd = 0.4; cpar = 1.0; v_off = -0.2; alpha = 0.1 } in
  let pt = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 } in
  (* cap term: (2 + 1 + 0.1*5) fF = 3.5 fF; charge = 0.6 V * 3.5 fF. *)
  let expected = 0.4 *. 0.6 *. 3.5e-15 /. 40e-6 in
  check_close ~tol:1e-18 "closed form" expected
    (Timing_model.eval p ~ieff:40e-6 pt);
  check_close ~tol:1e-28 "charge (Eq 5)" (0.6 *. 3.5e-15)
    (Timing_model.charge p pt)

let test_vec_roundtrip () =
  let v = Timing_model.to_vec p_true in
  Alcotest.(check int) "4 params" 4 (Array.length v);
  Alcotest.(check bool) "roundtrip" true (Timing_model.of_vec v = p_true)

let test_grad_matches_numeric () =
  let pt = { Harness.sin = 8e-12; cload = 3e-15; vdd = 0.75 } in
  let ieff = 35e-6 in
  let g = Timing_model.grad p_true ~ieff pt in
  let v0 = Timing_model.to_vec p_true in
  Array.iteri
    (fun j gj ->
      let h = 1e-6 *. Float.max 1.0 (Float.abs v0.(j)) in
      let vp = Vec.copy v0 and vm = Vec.copy v0 in
      vp.(j) <- vp.(j) +. h;
      vm.(j) <- vm.(j) -. h;
      let fp = Timing_model.eval (Timing_model.of_vec vp) ~ieff pt in
      let fm = Timing_model.eval (Timing_model.of_vec vm) ~ieff pt in
      let num = (fp -. fm) /. (2.0 *. h) in
      Alcotest.(check bool)
        (Printf.sprintf "grad[%d]" j)
        true
        (Float.abs (gj -. num) < 1e-6 *. Float.max (Float.abs num) 1e-15))
    g

let test_rel_residual () =
  let pt = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 } in
  let f = Timing_model.eval p_true ~ieff:40e-6 pt in
  check_close ~tol:1e-12 "zero at truth" 0.0
    (Timing_model.rel_residual p_true ~ieff:40e-6 pt ~observed:f);
  check_close ~tol:1e-12 "relative scale" (-0.5)
    (Timing_model.rel_residual p_true ~ieff:40e-6 pt ~observed:(2.0 *. f))

let test_eval_rejects_bad_ieff () =
  let pt = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 } in
  Alcotest.check_raises "ieff <= 0"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Timing_model.eval" "ieff must be > 0")) (fun () ->
      ignore (Timing_model.eval p_true ~ieff:0.0 pt))

(* ------------------------------------------------------------------ *)
(* Input_space *)

let test_normalize_roundtrip () =
  let pt = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 } in
  let u = Input_space.normalize tech pt in
  Array.iter
    (fun x -> Alcotest.(check bool) "in unit cube" true (x >= 0.0 && x <= 1.0))
    u;
  let q = Input_space.denormalize tech u in
  check_close ~tol:1e-20 "sin" pt.Harness.sin q.Harness.sin;
  check_close ~tol:1e-22 "cload" pt.Harness.cload q.Harness.cload;
  check_close ~tol:1e-12 "vdd" pt.Harness.vdd q.Harness.vdd

let test_validation_set_deterministic () =
  let a = Input_space.validation_set ~n:50 ~seed:1 tech in
  let b = Input_space.validation_set ~n:50 ~seed:1 tech in
  Alcotest.(check bool) "same" true (a = b);
  let c = Input_space.validation_set ~n:50 ~seed:2 tech in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_fitting_points_properties () =
  let box = Input_space.box tech in
  let inside (p : Harness.point) =
    let v = Harness.vec_of_point p in
    Array.for_all2 (fun (lo, hi) x -> x >= lo && x <= hi) box v
  in
  let pts = Input_space.fitting_points tech ~k:12 in
  Alcotest.(check int) "count" 12 (Array.length pts);
  Array.iter (fun p -> Alcotest.(check bool) "inside box" true (inside p)) pts;
  (* Prefix property: the k-point design is a prefix of the k+1 one. *)
  let p5 = Input_space.fitting_points tech ~k:5 in
  let p8 = Input_space.fitting_points tech ~k:8 in
  for i = 0 to 4 do
    Alcotest.(check bool) "prefix" true (p5.(i) = p8.(i))
  done

let test_unit_grid_shape () =
  let g = Input_space.unit_grid ~levels:[| 2; 3; 2 |] in
  Alcotest.(check int) "count" 12 (Array.length g);
  Array.iter
    (fun u ->
      Array.iter
        (fun x ->
          Alcotest.(check bool) "margin bounds" true (x >= 0.05 && x <= 0.95))
        u)
    g

(* ------------------------------------------------------------------ *)
(* Extract_lse *)

let test_lse_recovers_synthetic () =
  let obs = synthetic_obs p_true 12 in
  let p = Extract_lse.fit obs in
  check_close ~tol:1e-4 "kd" p_true.Timing_model.kd p.Timing_model.kd;
  check_close ~tol:1e-3 "cpar" p_true.Timing_model.cpar p.Timing_model.cpar;
  check_close ~tol:1e-3 "v_off" p_true.Timing_model.v_off p.Timing_model.v_off;
  check_close ~tol:1e-3 "alpha" p_true.Timing_model.alpha p.Timing_model.alpha;
  Alcotest.(check bool) "zero residual" true
    (Extract_lse.avg_abs_rel_error p obs < 1e-8)

let test_lse_weighted () =
  (* Corrupt one observation; a zero weight on it restores recovery. *)
  let obs = synthetic_obs p_true 10 in
  obs.(3) <- { obs.(3) with Extract_lse.value = obs.(3).Extract_lse.value *. 2.0 };
  let weights = Array.make 10 1.0 in
  weights.(3) <- 0.0;
  let p = Extract_lse.fit ~weights obs in
  check_close ~tol:1e-3 "kd recovered despite outlier" p_true.Timing_model.kd
    p.Timing_model.kd

let test_lse_rejects_empty_and_bad () =
  Alcotest.check_raises "empty"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Extract_lse.fit" "no observations")) (fun () ->
      ignore (Extract_lse.fit [||]));
  let obs = synthetic_obs p_true 3 in
  obs.(0) <- { obs.(0) with Extract_lse.value = -1.0 };
  Alcotest.check_raises "negative observation"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Extract_lse.fit" "non-positive observation")) (fun () ->
      ignore (Extract_lse.fit obs))

let test_max_abs_rel_error () =
  let obs = synthetic_obs p_true 5 in
  Alcotest.(check bool) "max >= avg" true
    (Extract_lse.max_abs_rel_error p_true obs
     >= Extract_lse.avg_abs_rel_error p_true obs)

(* ------------------------------------------------------------------ *)
(* Prior (tiny learning run) *)

let tiny_prior_pair =
  lazy
    (Prior.learn_pair ~cells:[ Cells.inv ] ~grid_levels:[| 2; 2; 2 |]
       ~historical:[ Tech.n20; Tech.n28 ] ())

let test_prior_structure () =
  let pair = Lazy.force tiny_prior_pair in
  let p = pair.Prior.delay in
  Alcotest.(check int) "4-dim prior" 4 (Mvn.dim p.Prior.mvn);
  (* 2 techs x 2 INV arcs. *)
  Alcotest.(check int) "provenance" 4 (List.length p.Prior.provenance);
  Alcotest.(check bool) "cost counted" true (p.Prior.learn_cost > 0);
  List.iter
    (fun (f : Prior.fitted_arc) ->
      Alcotest.(check bool)
        (f.Prior.tech_name ^ "/" ^ f.Prior.arc_name ^ " fit good")
        true
        (f.Prior.fit_error < 0.06))
    p.Prior.provenance

let test_prior_mean_plausible () =
  let pair = Lazy.force tiny_prior_pair in
  let mu = Timing_model.of_vec (pair.Prior.delay.Prior.mvn : Mvn.t).Mvn.mu in
  Alcotest.(check bool) "kd in range" true
    (mu.Timing_model.kd > 0.1 && mu.Timing_model.kd < 0.8);
  Alcotest.(check bool) "cpar positive" true (mu.Timing_model.cpar > 0.0);
  Alcotest.(check bool) "v_off negative" true (mu.Timing_model.v_off < 0.0)

let test_beta_positive_everywhere () =
  let pair = Lazy.force tiny_prior_pair in
  let pts = Input_space.validation_set ~n:40 ~seed:3 tech in
  Array.iter
    (fun pt ->
      let b = Prior.beta_at pair.Prior.delay tech pt in
      Alcotest.(check bool) "beta positive finite" true
        (b > 0.0 && Float.is_finite b))
    pts

let test_beta_floor_caps_precision () =
  let pair = Lazy.force tiny_prior_pair in
  let pts = Input_space.validation_set ~n:40 ~seed:4 tech in
  Array.iter
    (fun pt ->
      let b = Prior.beta_at pair.Prior.delay tech pt in
      (* floor 0.01 relative sigma -> beta <= 1e4 *)
      Alcotest.(check bool) "beta bounded by floor" true (b <= 1e4 +. 1e-6))
    pts

let test_constant_beta_flattens () =
  let pair = Lazy.force tiny_prior_pair in
  let flat = Prior.constant_beta pair.Prior.delay in
  let p1 = { Harness.sin = 2e-12; cload = 1e-15; vdd = 0.7 } in
  let p2 = { Harness.sin = 14e-12; cload = 5e-15; vdd = 0.95 } in
  check_close ~tol:1e-9 "same beta everywhere"
    (Prior.beta_at flat tech p1) (Prior.beta_at flat tech p2)

let test_prior_requires_history () =
  Alcotest.check_raises "no nodes"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Prior.learn" "no historical nodes")) (fun () ->
      ignore (Prior.learn ~historical:[] Prior.Delay))

(* ------------------------------------------------------------------ *)
(* Map_fit *)

let test_map_no_observations_returns_prior_mean () =
  let pair = Lazy.force tiny_prior_pair in
  let prior = pair.Prior.delay in
  let r = Map_fit.fit ~prior ~tech [||] in
  let mu = (prior.Prior.mvn : Mvn.t).Mvn.mu in
  Alcotest.(check bool) "params = prior mean" true
    (Vec.approx_equal ~tol:1e-6 (Timing_model.to_vec r.Map_fit.params) mu);
  check_close ~tol:1e-9 "no data cost" 0.0 r.Map_fit.data_cost

let test_map_converges_to_truth_with_data () =
  let pair = Lazy.force tiny_prior_pair in
  let prior = pair.Prior.delay in
  let obs = synthetic_obs p_true 30 in
  let r = Map_fit.fit ~prior ~tech obs in
  (* With plenty of noiseless data, MAP should sit near the truth even
     if the prior mean is elsewhere. *)
  check_close ~tol:0.02 "kd" p_true.Timing_model.kd r.Map_fit.params.Timing_model.kd;
  check_close ~tol:0.15 "cpar" p_true.Timing_model.cpar
    r.Map_fit.params.Timing_model.cpar

let test_map_beats_lse_at_small_k () =
  (* Real simulated data, k = 2: MAP should predict held-out delays
     better than LSE thanks to the prior. *)
  let pair = Lazy.force tiny_prior_pair in
  let ds =
    Char_flow.simulate_dataset tech inv_fall
      (Input_space.validation_set ~n:25 ~seed:5 tech)
  in
  let bayes = Char_flow.train_bayes ~prior:pair tech inv_fall ~k:2 in
  let lse = Char_flow.train_lse tech inv_fall ~k:2 in
  let e_bayes = (Char_flow.evaluate bayes ds).Char_flow.td_err in
  let e_lse = (Char_flow.evaluate lse ds).Char_flow.td_err in
  Alcotest.(check bool)
    (Printf.sprintf "bayes (%.3f) <= lse (%.3f)" e_bayes e_lse)
    true (e_bayes <= e_lse +. 1e-6)

let test_map_posterior_decomposition () =
  let pair = Lazy.force tiny_prior_pair in
  let obs = synthetic_obs p_true 5 in
  let r = Map_fit.fit ~prior:pair.Prior.delay ~tech obs in
  check_close ~tol:1e-6 "cost = (prior + data)/2" r.Map_fit.posterior_cost
    (0.5 *. (r.Map_fit.prior_mahalanobis +. r.Map_fit.data_cost))

(* ------------------------------------------------------------------ *)
(* Belief *)

let test_belief_observe_shrinks_cov () =
  let msg = Belief.diffuse 4 in
  let rows = Array.init 10 (fun i -> Timing_model.to_vec
    { Timing_model.kd = 0.3 +. (0.001 *. float_of_int i); cpar = 1.0;
      v_off = -0.2; alpha = 0.1 }) in
  let post = Belief.observe msg rows in
  Alcotest.(check bool) "variance shrinks" true
    (Mat.get post.Belief.cov 0 0 < Mat.get msg.Belief.cov 0 0);
  (* Mean moves towards the data. *)
  Alcotest.(check bool) "mean near data" true
    (Float.abs (post.Belief.mu.(0) -. 0.3045) < 0.05)

let test_belief_drift_grows_cov () =
  let msg = Belief.diffuse ~scale:1.0 4 in
  let q = Belief.default_drift 4 in
  let after = Belief.drift msg q in
  Alcotest.(check bool) "cov grows" true
    (Mat.get after.Belief.cov 0 0 > Mat.get msg.Belief.cov 0 0)

let test_belief_chain_and_prior () =
  let pair = Lazy.force tiny_prior_pair in
  let ordered = [ "n28"; "n20" ] in
  let chained = Belief.chain_prior pair.Prior.delay ~ordered in
  Alcotest.(check int) "still 4-dim" 4 (Mvn.dim chained.Prior.mvn);
  let mu = (chained.Prior.mvn : Mvn.t).Mvn.mu in
  Alcotest.(check bool) "kd plausible" true (mu.(0) > 0.1 && mu.(0) < 0.8)

let test_belief_empty_chain_rejected () =
  Alcotest.check_raises "empty"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Belief.chain" "empty chain")) (fun () ->
      ignore (Belief.chain []))

(* Deterministic synthetic node populations for graph tests. *)
let belief_rows ~shift n =
  Array.init n (fun i ->
      Timing_model.to_vec
        {
          Timing_model.kd = 0.3 +. shift +. (0.002 *. float_of_int i);
          cpar = 1.0 +. (0.01 *. float_of_int i);
          v_off = -0.2 +. (0.5 *. shift);
          alpha = 0.1;
        })

let same_message msg a b =
  let bits = Int64.bits_of_float in
  let dim = Vec.dim a.Belief.mu in
  Alcotest.(check int) (msg ^ ": dim") dim (Vec.dim b.Belief.mu);
  for i = 0 to dim - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "%s: mu.(%d) bitwise" msg i)
      true
      (bits a.Belief.mu.(i) = bits b.Belief.mu.(i))
  done;
  for i = 0 to dim - 1 do
    for j = 0 to dim - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "%s: cov.(%d,%d) bitwise" msg i j)
        true
        (bits (Mat.get a.Belief.cov i j) = bits (Mat.get b.Belief.cov i j))
    done
  done

let test_belief_observe_workspace_parity () =
  let rows = belief_rows ~shift:0.0 8 in
  let msg = Belief.drift (Belief.diffuse 4) (Belief.default_drift 4) in
  let plain = Belief.observe msg rows in
  let ws = Belief.make_workspace 4 in
  (* Reuse one workspace twice: stale scratch must not leak. *)
  let with_ws1 = Belief.observe ~ws msg rows in
  let with_ws2 = Belief.observe ~ws msg rows in
  same_message "fresh vs workspace" plain with_ws1;
  same_message "workspace reuse" plain with_ws2;
  Alcotest.check_raises "dimension mismatch"
    (Slc_obs.Slc_error.Invalid_input
       (Slc_obs.Slc_error.invalid ~site:"Belief.observe"
          "workspace dimension mismatch")) (fun () ->
      ignore (Belief.observe ~ws:(Belief.make_workspace 3) msg rows))

let test_belief_graph_matches_chain () =
  let nodes =
    [
      ("n28", belief_rows ~shift:0.00 6);
      ("n20", belief_rows ~shift:0.03 5);
      ("n14", belief_rows ~shift:0.05 7);
    ]
  in
  let g = Belief.graph_of_chain nodes in
  let r = Belief.propagate g in
  Alcotest.(check bool) "converged" true r.Belief.converged;
  Alcotest.(check int) "one update per edge" (List.length nodes)
    r.Belief.updates;
  (* Every per-node belief along the graph reproduces the corresponding
     prefix of the chain fold, bit for bit. *)
  List.iteri
    (fun i (name, _) ->
      let prefix = List.filteri (fun j _ -> j <= i) nodes in
      let expect = Belief.chain prefix in
      let got = List.assoc name r.Belief.beliefs in
      same_message name expect got)
    nodes

let test_belief_graph_diamond () =
  let nodes =
    [
      ("root", belief_rows ~shift:0.00 6);
      ("left", belief_rows ~shift:0.02 5);
      ("right", belief_rows ~shift:0.04 5);
      ("sink", belief_rows ~shift:0.03 6);
    ]
  in
  let g =
    Belief.graph_make ~nodes ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ] ()
  in
  let r = Belief.propagate g in
  Alcotest.(check bool) "converged" true r.Belief.converged;
  Alcotest.(check int) "one update per edge" 4 r.Belief.updates;
  let sink = List.assoc "sink" r.Belief.beliefs in
  Alcotest.(check bool) "finite sink mean" true
    (Array.for_all Float.is_finite sink.Belief.mu);
  (* Two informative parents: the sink belief is at least as tight as
     what either single parent would give through a plain chain. *)
  let single = Belief.chain [ List.nth nodes 0; List.nth nodes 1; List.nth nodes 3 ] in
  Alcotest.(check bool) "two parents tighten the sink" true
    (Mat.get sink.Belief.cov 0 0 <= Mat.get single.Belief.cov 0 0 +. 1e-12)

let test_belief_graph_cycle_terminates () =
  let nodes =
    [ ("a", belief_rows ~shift:0.00 6); ("b", belief_rows ~shift:0.05 6) ]
  in
  let g = Belief.graph_make ~nodes ~edges:[ (0, 1); (1, 0) ] () in
  let r = Belief.propagate ~tol:1e-12 ~max_updates:200 g in
  Alcotest.(check bool) "bounded" true (r.Belief.updates <= 200);
  Alcotest.(check bool) "cap reached iff not converged" true
    (r.Belief.converged || r.Belief.updates = 200);
  List.iter
    (fun (_, b) ->
      Alcotest.(check bool) "finite" true
        (Array.for_all Float.is_finite b.Belief.mu))
    r.Belief.beliefs

let test_belief_graph_validation () =
  let rows = belief_rows ~shift:0.0 4 in
  let raises msg err f =
    Alcotest.check_raises msg
      (Slc_obs.Slc_error.Invalid_input
         (Slc_obs.Slc_error.invalid ~site:"Belief.graph_make" err))
      (fun () -> ignore (f ()))
  in
  raises "empty" "empty graph" (fun () ->
      Belief.graph_make ~nodes:[] ~edges:[] ());
  raises "range" "edge endpoint out of range" (fun () ->
      Belief.graph_make ~nodes:[ ("a", rows) ] ~edges:[ (0, 1) ] ());
  raises "self" "self edge" (fun () ->
      Belief.graph_make ~nodes:[ ("a", rows) ] ~edges:[ (0, 0) ] ())

(* ------------------------------------------------------------------ *)
(* Char_flow helpers *)

let test_budget_to_reach () =
  let curve = [ (1, 0.5); (10, 0.05); (100, 0.01) ] in
  (match Char_flow.budget_to_reach ~curve ~target:0.05 with
  | Some b -> check_close ~tol:1e-9 "exact point" 10.0 b
  | None -> Alcotest.fail "expected reach");
  (match Char_flow.budget_to_reach ~curve ~target:0.3 with
  | Some b -> Alcotest.(check bool) "interpolated" true (b > 1.0 && b < 10.0)
  | None -> Alcotest.fail "expected reach");
  Alcotest.(check bool) "unreachable" true
    (Char_flow.budget_to_reach ~curve ~target:0.001 = None)

let test_speedup_vs () =
  let curve = [ (1, 0.5); (10, 0.05) ] in
  (match Char_flow.speedup_vs ~budget:2.0 ~curve ~target:0.05 with
  | Char_flow.Reached s -> check_close ~tol:1e-9 "5x" 5.0 s
  | Char_flow.At_least _ -> Alcotest.fail "should reach");
  match Char_flow.speedup_vs ~budget:2.0 ~curve ~target:0.001 with
  | Char_flow.At_least s -> check_close ~tol:1e-9 "lower bound" 5.0 s
  | Char_flow.Reached _ -> Alcotest.fail "should not reach"

let test_train_lut_cost_within_budget () =
  let p = Char_flow.train_lut tech inv_fall ~budget:10 in
  Alcotest.(check bool) "cost <= 10" true (p.Char_flow.train_cost <= 10);
  Alcotest.(check bool) "cost > 4" true (p.Char_flow.train_cost > 4)

let test_predictor_positive () =
  let pair = Lazy.force tiny_prior_pair in
  let p = Char_flow.train_bayes ~prior:pair tech inv_fall ~k:3 in
  let pt = { Harness.sin = 6e-12; cload = 3e-15; vdd = 0.9 } in
  Alcotest.(check bool) "td positive" true (p.Char_flow.predict_td pt > 0.0);
  Alcotest.(check bool) "sout positive" true (p.Char_flow.predict_sout pt > 0.0)

(* ------------------------------------------------------------------ *)
(* Model_ext *)

let test_model_ext_reduces_to_base () =
  let p5 = Model_ext.of_base p_true in
  let pt = { Harness.sin = 6e-12; cload = 3e-15; vdd = 0.8 } in
  check_close ~tol:1e-20 "gamma=0 equals base"
    (Timing_model.eval p_true ~ieff:40e-6 pt)
    (Model_ext.eval p5 ~ieff:40e-6 pt)

let test_model_ext_grad_matches_numeric () =
  let p5 = { Model_ext.base = p_true; gamma = 0.05 } in
  let pt = { Harness.sin = 8e-12; cload = 3e-15; vdd = 0.75 } in
  let ieff = 35e-6 in
  let g = Model_ext.grad p5 ~ieff pt in
  let v0 = Model_ext.to_vec p5 in
  Array.iteri
    (fun j gj ->
      let h = 1e-6 *. Float.max 1.0 (Float.abs v0.(j)) in
      let vp = Vec.copy v0 and vm = Vec.copy v0 in
      vp.(j) <- vp.(j) +. h;
      vm.(j) <- vm.(j) -. h;
      let fp = Model_ext.eval (Model_ext.of_vec vp) ~ieff pt in
      let fm = Model_ext.eval (Model_ext.of_vec vm) ~ieff pt in
      let num = (fp -. fm) /. (2.0 *. h) in
      Alcotest.(check bool)
        (Printf.sprintf "ext grad[%d]" j)
        true
        (Float.abs (gj -. num) < 1e-6 *. Float.max (Float.abs num) 1e-15))
    g

let test_model_ext_fit_recovers_gamma () =
  let truth = { Model_ext.base = p_true; gamma = 0.04 } in
  let points = Input_space.fitting_points tech ~k:20 in
  let obs =
    Array.map
      (fun pt ->
        let ieff = ieff_at pt in
        {
          Extract_lse.point = pt;
          ieff;
          value = Model_ext.eval truth ~ieff pt;
        })
      points
  in
  let fitted = Model_ext.fit obs in
  check_close ~tol:5e-3 "gamma recovered" 0.04 fitted.Model_ext.gamma;
  Alcotest.(check bool) "tiny residual" true
    (Model_ext.avg_abs_rel_error fitted obs < 1e-6)

(* ------------------------------------------------------------------ *)
(* Random fitting designs / point overrides *)

let test_random_fitting_points () =
  let box = Input_space.box tech in
  let a = Input_space.random_fitting_points tech ~k:10 ~seed:3 in
  let b = Input_space.random_fitting_points tech ~k:10 ~seed:3 in
  Alcotest.(check bool) "deterministic" true (a = b);
  let c = Input_space.random_fitting_points tech ~k:10 ~seed:4 in
  Alcotest.(check bool) "seed-dependent" true (a <> c);
  Array.iter
    (fun p ->
      let v = Harness.vec_of_point p in
      Array.iteri
        (fun d x ->
          let lo, hi = box.(d) in
          Alcotest.(check bool) "inside box" true (x >= lo && x <= hi))
        v)
    a

let test_points_override_length_checked () =
  let pts = Input_space.fitting_points tech ~k:3 in
  Alcotest.check_raises "length mismatch"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Char_flow" "points override must have length k"))
    (fun () -> ignore (Char_flow.train_lse ~points:pts tech inv_fall ~k:2))

(* ------------------------------------------------------------------ *)
(* Statistical (tiny run) *)

let test_statistical_tiny () =
  let pair = Lazy.force tiny_prior_pair in
  let rng = Slc_prob.Rng.create 99 in
  let seeds = Slc_device.Process.sample_batch rng tech 4 in
  let points = Input_space.validation_set ~n:3 ~seed:6 tech in
  let base =
    Statistical.monte_carlo_baseline ~tech ~arc:inv_fall ~seeds ~points
  in
  Alcotest.(check int) "baseline cost" 12 base.Statistical.cost;
  let pop =
    Statistical.extract_population ~method_:(Statistical.Bayes pair) ~tech
      ~arc:inv_fall ~seeds ~budget:2 ()
  in
  Alcotest.(check int) "train cost = seeds*k" 8 pop.Statistical.train_cost;
  let e = Statistical.evaluate pop base in
  Alcotest.(check bool) "mu error sane" true
    (e.Statistical.e_mu_td >= 0.0 && e.Statistical.e_mu_td < 0.5);
  let samples = Statistical.predict_samples pop points.(0) ~td:true in
  Alcotest.(check int) "per-seed predictions" 4 (Array.length samples);
  Array.iter
    (fun s -> Alcotest.(check bool) "positive" true (s > 0.0))
    samples

(* Pooled and sequential statistical flows must agree BITWISE: the
   per-seed parameters, predictions, train cost, and the Monte-Carlo
   moments may not depend on how the (seed x point) batch was
   scheduled. *)
let test_statistical_pool_bitwise_sequential () =
  let pair = Lazy.force tiny_prior_pair in
  let rng = Slc_prob.Rng.create 123 in
  let seeds = Slc_device.Process.sample_batch rng tech 4 in
  let points = Input_space.validation_set ~n:3 ~seed:8 tech in
  let run () =
    let pop =
      Statistical.extract_population ~method_:(Statistical.Bayes pair) ~tech
        ~arc:inv_fall ~seeds ~budget:2 ()
    in
    let base =
      Statistical.monte_carlo_baseline ~tech ~arc:inv_fall ~seeds ~points
    in
    (pop, base)
  in
  let pop_p, base_p = run () in
  let pop_s, base_s = Slc_num.Parallel.sequential run in
  Alcotest.(check int) "train cost" pop_s.Statistical.train_cost
    pop_p.Statistical.train_cost;
  Array.iter
    (fun pt ->
      Array.iteri
        (fun i v ->
          let v' = (Statistical.predict_samples pop_s pt ~td:true).(i) in
          Alcotest.(check bool) "per-seed prediction bitwise" true
            (Int64.bits_of_float v = Int64.bits_of_float v'))
        (Statistical.predict_samples pop_p pt ~td:true))
    points;
  let bitwise_arr name a b =
    Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
    Array.iteri
      (fun i v ->
        Alcotest.(check bool) (name ^ " bitwise") true
          (Int64.bits_of_float v = Int64.bits_of_float b.(i)))
      a
  in
  bitwise_arr "mu_td" base_s.Statistical.mu_td base_p.Statistical.mu_td;
  bitwise_arr "sigma_td" base_s.Statistical.sigma_td base_p.Statistical.sigma_td;
  bitwise_arr "mu_sout" base_s.Statistical.mu_sout base_p.Statistical.mu_sout;
  bitwise_arr "sigma_sout" base_s.Statistical.sigma_sout
    base_p.Statistical.sigma_sout

(* Random_per_seed designs derive each seed's fitting points from
   Rng.split_ix at the seed's index: results are reproducible from an
   equal generator, and the caller's generator is never advanced. *)
let test_statistical_random_design_deterministic () =
  let pair = Lazy.force tiny_prior_pair in
  let rng = Slc_prob.Rng.create 7 in
  let seeds = Slc_device.Process.sample_batch rng tech 3 in
  let design_rng = Slc_prob.Rng.create 55 in
  let run () =
    Statistical.extract_population_design
      ~design:(Statistical.Random_per_seed design_rng)
      ~method_:(Statistical.Bayes pair) ~tech ~arc:inv_fall ~seeds ~budget:2 ()
  in
  let pop1 = run () in
  let pop2 = run () in
  let pop_seq = Slc_num.Parallel.sequential run in
  let pt = { Harness.sin = 6e-12; cload = 3e-15; vdd = 0.85 } in
  let pred (pop : Statistical.population) =
    Array.map (fun s -> pop.Statistical.predict_td s pt) seeds
  in
  let p1 = pred pop1 and p2 = pred pop2 and ps = pred pop_seq in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "reproducible" true
        (Int64.bits_of_float v = Int64.bits_of_float p2.(i));
      Alcotest.(check bool) "pool matches sequential" true
        (Int64.bits_of_float v = Int64.bits_of_float ps.(i)))
    p1;
  (* The supplied generator was only ever split, never advanced. *)
  let fresh = Slc_prob.Rng.create 55 in
  Alcotest.(check bool) "design rng unperturbed" true
    (Slc_prob.Rng.uint64 design_rng = Slc_prob.Rng.uint64 fresh);
  (* A different design generator yields different fits. *)
  let other =
    Statistical.extract_population_design
      ~design:(Statistical.Random_per_seed (Slc_prob.Rng.create 56))
      ~method_:(Statistical.Bayes pair) ~tech ~arc:inv_fall ~seeds ~budget:2 ()
  in
  Alcotest.(check bool) "different design differs" true
    (pred other <> p1)

(* Exact GP inference checked against the closed form.  With one
   training point the posterior at the query q is
     mean = m + k(q,x) (y - m) / (k(x,x) + noise2)
     var  = k(q,q) - k(q,x)^2 / (k(x,x) + noise2)
   and with two points the 2x2 system solves by hand. *)
let test_gpr_closed_form () =
  let h = { Gpr.signal2 = 2.0; noise2 = 0.1; lengths = [| 0.4; 0.5; 0.6 |] } in
  let kern a b =
    let za = Input_space.normalize tech a and zb = Input_space.normalize tech b in
    let s = ref 0.0 in
    for d = 0 to 2 do
      let u = (za.(d) -. zb.(d)) /. h.Gpr.lengths.(d) in
      s := !s +. (u *. u)
    done;
    h.Gpr.signal2 *. exp (-0.5 *. !s)
  in
  let pts = Input_space.fitting_points tech ~k:3 in
  let x0 = pts.(0) and x1 = pts.(1) and xq = pts.(2) in
  (* One point. *)
  let y0 = 3.0 in
  let t1 = Gpr.fit ~hyper:h tech [| x0 |] [| y0 |] in
  let m = y0 in
  let denom = kern x0 x0 +. h.Gpr.noise2 in
  check_close ~tol:1e-12 "1-pt mean"
    (m +. (kern xq x0 *. (y0 -. m) /. denom))
    (Gpr.predict t1 xq);
  check_close ~tol:1e-12 "1-pt var"
    (kern xq xq -. (kern xq x0 *. kern xq x0 /. denom))
    (Gpr.predict_var t1 xq);
  (* Two points: solve (K + noise2 I) alpha = y - m by hand. *)
  let y = [| 3.0; 5.0 |] in
  let t2 = Gpr.fit ~hyper:h tech [| x0; x1 |] y in
  let m = 0.5 *. (y.(0) +. y.(1)) in
  let a = kern x0 x0 +. h.Gpr.noise2
  and b = kern x0 x1
  and d = kern x1 x1 +. h.Gpr.noise2 in
  let det = (a *. d) -. (b *. b) in
  let r0 = y.(0) -. m and r1 = y.(1) -. m in
  let al0 = ((d *. r0) -. (b *. r1)) /. det in
  let al1 = ((a *. r1) -. (b *. r0)) /. det in
  let k0 = kern xq x0 and k1 = kern xq x1 in
  check_close ~tol:1e-12 "2-pt mean"
    (m +. (k0 *. al0) +. (k1 *. al1))
    (Gpr.predict t2 xq);
  let kinv_k0 = ((d *. k0) -. (b *. k1)) /. det in
  let kinv_k1 = ((a *. k1) -. (b *. k0)) /. det in
  check_close ~tol:1e-12 "2-pt var"
    (kern xq xq -. ((k0 *. kinv_k0) +. (k1 *. kinv_k1)))
    (Gpr.predict_var t2 xq);
  (* refit rebuilds the posterior bitwise from the serializable model. *)
  let t2' = Gpr.refit tech (Gpr.model t2) in
  Alcotest.(check bool) "refit bitwise" true
    (Int64.bits_of_float (Gpr.predict t2 xq)
    = Int64.bits_of_float (Gpr.predict t2' xq));
  Alcotest.(check bool) "variance non-negative" true
    (Gpr.predict_var t2 x0 >= 0.0)

(* GPR fallback gate: a dataset whose response the 4-parameter form
   cannot represent must trip the fallback under a tight threshold (the
   predictor becomes "model+gpr" and reproduces its training targets far
   better), and must NOT trip it under a loose threshold. *)
let test_gpr_fallback_threshold () =
  let pair = Lazy.force tiny_prior_pair in
  let points = Input_space.fitting_points tech ~k:7 in
  (* Oscillatory multiplicative wobble on a plausible delay scale: no
     (kd, cpar, v_off, alpha) reproduces it. *)
  let synth i (p : Harness.point) =
    20e-12
    *. (1.0 +. (0.5 *. sin (7.0 *. float_of_int i)))
    *. (1.0 +. (p.Harness.cload /. 10e-15))
  in
  let ds =
    {
      Char_flow.arc = inv_fall;
      points;
      td = Array.mapi synth points;
      sout = Array.mapi (fun i p -> 1.4 *. synth i p) points;
      cost = Array.length points;
    }
  in
  let p = Char_flow.train_bayes_on ~prior:pair tech ds in
  let analytical_err =
    let e = Char_flow.evaluate p ds in
    Float.max e.Char_flow.td_err e.Char_flow.sout_err
  in
  Alcotest.(check bool) "synthetic data defeats the analytical form" true
    (analytical_err > 0.05);
  let loose = Char_flow.with_gpr_fallback ~threshold:(2.0 *. analytical_err) tech ds p in
  Alcotest.(check string) "loose threshold keeps analytical model"
    p.Char_flow.label loose.Char_flow.label;
  let tight = Char_flow.with_gpr_fallback ~threshold:0.01 tech ds p in
  Alcotest.(check string) "tight threshold swaps in GPR" "model+gpr"
    tight.Char_flow.label;
  let gpr_err =
    let e = Char_flow.evaluate tight ds in
    Float.max e.Char_flow.td_err e.Char_flow.sout_err
  in
  Alcotest.(check bool) "GPR reproduces its training set better" true
    (gpr_err < 0.1 *. analytical_err)

(* The adaptive design is a pure function of (seeds, a_rng, arc): two
   runs agree bitwise, the worker pool cannot perturb it, and the
   caller's generator is only split, never advanced. *)
let test_statistical_adaptive_design_deterministic () =
  let pair = Lazy.force tiny_prior_pair in
  let rng = Slc_prob.Rng.create 7 in
  let seeds = Slc_device.Process.sample_batch rng tech 3 in
  let design () =
    Statistical.Adaptive
      (Statistical.adaptive_defaults (Slc_prob.Rng.create 55))
  in
  let run () =
    Statistical.extract_population_design ~design:(design ())
      ~method_:(Statistical.Bayes pair) ~tech ~arc:inv_fall ~seeds ~budget:3 ()
  in
  let pop1 = run () in
  let pop2 = run () in
  let pop_seq = Slc_num.Parallel.sequential run in
  Alcotest.(check int) "train cost = seeds*budget" 9
    pop1.Statistical.train_cost;
  let pt = { Harness.sin = 6e-12; cload = 3e-15; vdd = 0.85 } in
  let pred (pop : Statistical.population) =
    Array.map (fun s -> pop.Statistical.predict_td s pt) seeds
  in
  let p1 = pred pop1 and p2 = pred pop2 and ps = pred pop_seq in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "reproducible" true
        (Int64.bits_of_float v = Int64.bits_of_float p2.(i));
      Alcotest.(check bool) "pool matches sequential" true
        (Int64.bits_of_float v = Int64.bits_of_float ps.(i)))
    p1;
  (* The supplied generator was only ever split, never advanced. *)
  let probe = Slc_prob.Rng.create 55 in
  let design_rng = Slc_prob.Rng.create 55 in
  ignore
    (Statistical.extract_population_design
       ~design:(Statistical.Adaptive (Statistical.adaptive_defaults design_rng))
       ~method_:(Statistical.Bayes pair) ~tech ~arc:inv_fall ~seeds ~budget:2 ());
  Alcotest.(check bool) "design rng unperturbed" true
    (Slc_prob.Rng.uint64 design_rng = Slc_prob.Rng.uint64 probe);
  (* A different candidate-pool generator yields different fits. *)
  let other =
    Statistical.extract_population_design
      ~design:
        (Statistical.Adaptive
           (Statistical.adaptive_defaults (Slc_prob.Rng.create 56)))
      ~method_:(Statistical.Bayes pair) ~tech ~arc:inv_fall ~seeds ~budget:3 ()
  in
  Alcotest.(check bool) "different design differs" true (pred other <> p1);
  (* Budget above the candidate pool is rejected up front (the raise
     carries run context, so match on site/detail rather than the
     exact value). *)
  (match
     Statistical.extract_population_design
       ~design:
         (Statistical.Adaptive
            {
              (Statistical.adaptive_defaults (Slc_prob.Rng.create 1)) with
              Statistical.a_candidates = 8;
            })
       ~method_:(Statistical.Bayes pair) ~tech ~arc:inv_fall ~seeds ~budget:9
       ()
   with
  | _ -> Alcotest.fail "budget > candidates was accepted"
  | exception Slc_obs.Slc_error.Invalid_input iv ->
    Alcotest.(check string) "rejection site"
      "Statistical.extract_population" iv.Slc_obs.Slc_error.iv_site;
    Alcotest.(check string) "rejection detail"
      "adaptive candidate pool smaller than the budget"
      iv.Slc_obs.Slc_error.iv_detail)

(* Graceful degradation: injected simulation faults must cost only the
   affected (seed, point) pairs.  Unaffected seeds take the identical
   code path, so their fits are BITWISE equal to a failure-free run;
   a seed losing a minority of points degrades; a seed losing too many
   fails and is skipped by predict_samples. *)
let test_statistical_degradation () =
  let module Telemetry = Slc_obs.Telemetry in
  let pair = Lazy.force tiny_prior_pair in
  let rng = Slc_prob.Rng.create 99 in
  let seeds = Slc_device.Process.sample_batch rng tech 4 in
  let budget = 3 in
  let clean =
    Statistical.extract_population ~method_:(Statistical.Bayes pair) ~tech
      ~arc:inv_fall ~seeds ~budget ()
  in
  Array.iter
    (fun st ->
      Alcotest.(check bool) "clean run: all seeds ok" true
        (st = Statistical.Seed_ok))
    clean.Statistical.status;
  (* Fault plan: seed 1 loses its first design point (degraded), seed 2
     loses everything (failed). *)
  let pts = Input_space.fitting_points tech ~k:budget in
  Harness.set_fault_injector
    (Some
       (fun s (p : Harness.point) ->
         (s.Slc_device.Process.index = 1 && p = pts.(0))
         || s.Slc_device.Process.index = 2));
  let was_on = Telemetry.on () in
  Telemetry.enable ();
  Telemetry.reset ();
  let before = Harness.sim_count () in
  let pop =
    Fun.protect
      ~finally:(fun () -> Harness.set_fault_injector None)
      (fun () ->
        Statistical.extract_population ~method_:(Statistical.Bayes pair) ~tech
          ~arc:inv_fall ~seeds ~budget ())
  in
  let sims_run = Harness.sim_count () - before in
  (* The telemetry counter and the global cost metric must reconcile:
     injected faults fire before either is bumped. *)
  Alcotest.(check int) "telemetry reconciles with sim_count" sims_run
    (Telemetry.read Telemetry.simulations);
  Alcotest.(check int) "one degraded seed counted" 1
    (Telemetry.read Telemetry.degraded_seeds);
  Alcotest.(check int) "one failed seed counted" 1
    (Telemetry.read Telemetry.failed_seeds);
  if not was_on then Telemetry.disable ();
  (* Per-seed statuses. *)
  Alcotest.(check bool) "seed 0 ok" true
    (pop.Statistical.status.(0) = Statistical.Seed_ok);
  Alcotest.(check bool) "seed 1 degraded by one point" true
    (pop.Statistical.status.(1) = Statistical.Seed_degraded 1);
  (match pop.Statistical.status.(2) with
  | Statistical.Seed_failed (Slc_obs.Slc_error.No_convergence _) -> ()
  | _ -> Alcotest.fail "seed 2 should be Seed_failed with the typed cause");
  Alcotest.(check bool) "seed 3 ok" true
    (pop.Statistical.status.(3) = Statistical.Seed_ok);
  (* Unaffected seeds: bitwise-identical predictions. *)
  let pt = { Harness.sin = 6e-12; cload = 3e-15; vdd = 0.85 } in
  List.iter
    (fun i ->
      let v = pop.Statistical.predict_td seeds.(i) pt in
      let v' = clean.Statistical.predict_td seeds.(i) pt in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d prediction bitwise identical" i)
        true
        (Int64.bits_of_float v = Int64.bits_of_float v'))
    [ 0; 3 ];
  (* The degraded seed still predicts (from its surviving points). *)
  Alcotest.(check bool) "degraded seed predicts" true
    (pop.Statistical.predict_td seeds.(1) pt > 0.0);
  (* The failed seed re-raises its cause on prediction... *)
  (match pop.Statistical.predict_td seeds.(2) pt with
  | _ -> Alcotest.fail "failed seed should raise"
  | exception Slc_obs.Slc_error.No_convergence _ -> ());
  (* ...and is skipped by predict_samples. *)
  Alcotest.(check int) "samples over surviving seeds" 3
    (Array.length (Statistical.predict_samples pop pt ~td:true))

(* The Monte-Carlo baseline under a fully-failing seed: the failed
   pairs are recorded, and the surviving moments are bitwise what a
   baseline over only the surviving seeds computes. *)
let test_baseline_degradation () =
  let rng = Slc_prob.Rng.create 99 in
  let seeds = Slc_device.Process.sample_batch rng tech 4 in
  let points = Input_space.validation_set ~n:2 ~seed:6 tech in
  Harness.set_fault_injector
    (Some (fun s _ -> s.Slc_device.Process.index = 2));
  let base =
    Fun.protect
      ~finally:(fun () -> Harness.set_fault_injector None)
      (fun () ->
        Statistical.monte_carlo_baseline ~tech ~arc:inv_fall ~seeds ~points)
  in
  Alcotest.(check int) "one failed pair per point" 2
    (List.length base.Statistical.failed);
  List.iter
    (fun (_, si) -> Alcotest.(check int) "failed seed index" 2 si)
    base.Statistical.failed;
  Array.iteri
    (fun i row ->
      Alcotest.(check bool) "failed slot is NaN" true
        (Float.is_nan row.(2));
      Alcotest.(check bool)
        (Printf.sprintf "point %d other slots finite" i)
        true
        (Float.is_finite row.(0) && Float.is_finite row.(1)
       && Float.is_finite row.(3)))
    base.Statistical.samples_td;
  (* Survivor moments match a clean baseline over the surviving seeds. *)
  let survivors = [| seeds.(0); seeds.(1); seeds.(3) |] in
  let base' =
    Statistical.monte_carlo_baseline ~tech ~arc:inv_fall ~seeds:survivors
      ~points
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "survivor mu bitwise" true
        (Int64.bits_of_float v
        = Int64.bits_of_float base'.Statistical.mu_td.(i));
      Alcotest.(check bool) "survivor sigma bitwise" true
        (Int64.bits_of_float base.Statistical.sigma_td.(i)
        = Int64.bits_of_float base'.Statistical.sigma_td.(i)))
    base.Statistical.mu_td

(* ------------------------------------------------------------------ *)
(* Bayes_library *)

let test_bayes_library () =
  let prior = Lazy.force tiny_prior_pair in
  Harness.reset_sim_count ();
  let lib =
    Bayes_library.characterize ~cells:[ Cells.inv; Cells.nor2 ] ~prior tech
      ~k:2
  in
  (* 6 arcs x 2 sims (window retries would add more). *)
  Alcotest.(check int) "entries" 6 (List.length lib.Bayes_library.entries);
  Alcotest.(check bool) "cost about k per arc" true
    (lib.Bayes_library.sim_runs >= 12 && lib.Bayes_library.sim_runs <= 24);
  let pt = { Harness.sin = 6e-12; cload = 3e-15; vdd = 0.85 } in
  let d = Bayes_library.delay lib inv_fall pt in
  let s_ = Bayes_library.slew lib inv_fall pt in
  Alcotest.(check bool) "delay positive" true (d > 0.0);
  Alcotest.(check bool) "slew positive" true (s_ > 0.0);
  let d2, s2 = Bayes_library.oracle_query lib inv_fall pt in
  Alcotest.(check (float 1e-18)) "oracle delay" d d2;
  Alcotest.(check (float 1e-18)) "oracle slew" s_ s2;
  (* Unknown arc. *)
  let foreign = Arc.find Cells.nand3 ~pin:"B" ~out_dir:Arc.Rise in
  Alcotest.(check bool) "missing arc" true
    (Bayes_library.find lib foreign = None);
  Alcotest.check_raises "missing delay raises" Not_found (fun () ->
      ignore (Bayes_library.delay lib foreign pt));
  (* Validation report has a row per arc with sane errors. *)
  let report = Bayes_library.validate ~n:10 lib in
  Alcotest.(check int) "report rows" 6 (List.length report);
  List.iter
    (fun (name, e) ->
      Alcotest.(check bool)
        (name ^ " error sane")
        true
        (e.Char_flow.td_err >= 0.0 && e.Char_flow.td_err < 0.3))
    report;
  Alcotest.(check bool) "summary renders" true
    (String.length (Format.asprintf "%a" Bayes_library.summary lib) > 100)

(* ------------------------------------------------------------------ *)
(* Config / Report *)

let test_config_scaling () =
  let c1 = Config.with_scale 1.0 and c2 = Config.with_scale 2.0 in
  Alcotest.(check int) "validation doubles" (2 * c1.Config.n_validation)
    c2.Config.n_validation;
  Alcotest.check_raises "bad scale"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Config.with_scale" "scale must be > 0")) (fun () ->
      ignore (Config.with_scale 0.0))

let test_report_series_and_formats () =
  let s =
    Format.asprintf "%a"
      (fun ppf () ->
        Report.series ppf ~title:"demo" ~x_label:"k" ~xs:[| 1.0; 2.0 |]
          [ ("a", [| 0.1; 0.2 |]); ("b", [| 0.3 |]) ])
      ()
  in
  Alcotest.(check bool) "renders title" true (String.length s > 20);
  (* Short series pads with a dash. *)
  Alcotest.(check bool) "dash for missing" true
    (String.contains s '-');
  Alcotest.(check string) "ps format" "12.00ps" (Report.ps 12e-12)

let test_prior_summary_renders () =
  let pair = Lazy.force tiny_prior_pair in
  let s = Format.asprintf "%a" Prior.pp_summary pair.Prior.delay in
  Alcotest.(check bool) "mentions provenance" true (String.length s > 200)

let test_belief_to_mvn () =
  let msg = Belief.diffuse ~scale:2.0 4 in
  let m = Belief.to_mvn msg in
  Alcotest.(check int) "dim" 4 (Slc_prob.Mvn.dim m)

let test_of_vec_wrong_length () =
  Alcotest.check_raises "3 coords"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Timing_model.of_vec" "need 4 coords")) (fun () ->
      ignore (Timing_model.of_vec [| 1.0; 2.0; 3.0 |]));
  Alcotest.check_raises "6 coords"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Model_ext.of_vec" "need 5 coords")) (fun () ->
      ignore (Model_ext.of_vec (Array.make 6 0.0)))

let test_prior_io_rejects_future_version () =
  let pair = Lazy.force tiny_prior_pair in
  let text = Prior_io.to_string pair in
  let v2 = "slc-prior 2" ^ String.sub text 11 (String.length text - 11) in
  match Prior_io.parse v2 with
  | exception Prior_io.Format_error _ -> ()
  | _ -> Alcotest.fail "version 2 should be rejected"

let test_report_table_and_bar () =
  let s =
    Format.asprintf "%a"
      (fun ppf () ->
        Report.table ppf ~header:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333"; "4" ] ])
      ()
  in
  Alcotest.(check bool) "renders rows" true (String.length s > 10);
  Alcotest.(check string) "full bar" "####" (Report.bar ~width:4 1.0 1.0);
  Alcotest.(check string) "empty bar" "    " (Report.bar ~width:4 0.0 1.0);
  Alcotest.(check string) "pct" "12.34%" (Report.pct 0.1234)

(* ------------------------------------------------------------------ *)
(* Rsm *)

let test_rsm_degree_adapts () =
  let mk n =
    let pts = Input_space.fitting_points tech ~k:n in
    Array.map (fun p -> (p, 1e-11 +. (1e-12 *. p.Harness.vdd))) pts
  in
  Alcotest.(check int) "constant" 0 (Rsm.degree (Rsm.fit tech (mk 2)));
  Alcotest.(check int) "linear" 1 (Rsm.degree (Rsm.fit tech (mk 5)));
  Alcotest.(check int) "quadratic" 2 (Rsm.degree (Rsm.fit tech (mk 12)));
  Alcotest.(check int) "coeff counts" 10 (Rsm.n_coeffs ~degree:2)

let test_rsm_exact_on_polynomial_data () =
  (* Quadratic RSM recovers data generated by a quadratic in the
     normalized coordinates. *)
  let f u = 1e-11 *. (1.0 +. (0.5 *. u.(0)) +. (0.3 *. u.(1) *. u.(1)) -. (0.2 *. u.(0) *. u.(2))) in
  let pts = Input_space.fitting_points tech ~k:20 in
  let samples =
    Array.map (fun p -> (p, f (Input_space.normalize tech p))) pts
  in
  let r = Rsm.fit tech samples in
  Alcotest.(check bool) "exact fit" true (Rsm.avg_abs_rel_error r samples < 1e-8)

let test_rsm_predictor_runs () =
  let p = Char_flow.train_rsm tech inv_fall ~k:10 in
  let pt = { Harness.sin = 6e-12; cload = 3e-15; vdd = 0.85 } in
  Alcotest.(check bool) "positive delay" true (p.Char_flow.predict_td pt > 0.0);
  Alcotest.(check int) "cost" 10 p.Char_flow.train_cost

let test_rsm_rejects_bad_input () =
  Alcotest.check_raises "empty" (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Rsm.fit" "no samples"))
    (fun () -> ignore (Rsm.fit tech [||]));
  let pts = Input_space.fitting_points tech ~k:2 in
  Alcotest.check_raises "negative"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Rsm.fit" "non-positive value")) (fun () ->
      ignore (Rsm.fit tech (Array.map (fun p -> (p, -1.0)) pts)))

(* ------------------------------------------------------------------ *)
(* Prior_io *)

let test_prior_roundtrip () =
  let pair = Lazy.force tiny_prior_pair in
  let text = Prior_io.to_string pair in
  let back = Prior_io.parse text in
  (* Mean and covariance survive bit-exactly (printed with %.17g). *)
  Alcotest.(check bool) "mu" true
    (Vec.approx_equal ~tol:0.0
       (pair.Prior.delay.Prior.mvn : Mvn.t).Mvn.mu
       (back.Prior.delay.Prior.mvn : Mvn.t).Mvn.mu);
  Alcotest.(check bool) "cov" true
    (Mat.approx_equal ~tol:1e-18 pair.Prior.delay.Prior.mvn.Mvn.cov
       back.Prior.delay.Prior.mvn.Mvn.cov);
  Alcotest.(check int) "provenance count"
    (List.length pair.Prior.delay.Prior.provenance)
    (List.length back.Prior.delay.Prior.provenance);
  Alcotest.(check int) "cost" pair.Prior.delay.Prior.learn_cost
    back.Prior.delay.Prior.learn_cost;
  (* beta lookups agree at arbitrary points. *)
  let pt = { Harness.sin = 6e-12; cload = 3e-15; vdd = 0.85 } in
  Alcotest.(check (float 1e-9)) "beta"
    (Prior.beta_at pair.Prior.delay tech pt)
    (Prior.beta_at back.Prior.delay tech pt);
  (* A MAP fit from the reloaded prior matches the original. *)
  let obs = synthetic_obs p_true 3 in
  let a = Map_fit.fit_params ~prior:pair.Prior.delay ~tech obs in
  let b = Map_fit.fit_params ~prior:back.Prior.delay ~tech obs in
  Alcotest.(check bool) "same MAP result" true
    (Vec.approx_equal ~tol:1e-9 (Timing_model.to_vec a) (Timing_model.to_vec b))

let test_prior_io_errors () =
  let bad s =
    match Prior_io.parse s with
    | exception Prior_io.Format_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad header" true (bad "nope");
  Alcotest.(check bool) "truncated" true (bad "slc-prior 1\nmetric delay\n");
  let pair = Lazy.force tiny_prior_pair in
  let text = Prior_io.to_string pair in
  (* Corrupt the first mu value. *)
  let idx =
    let rec find i =
      if String.sub text i 3 = "mu " then i else find (i + 1)
    in
    find 0
  in
  let corrupted =
    String.sub text 0 (idx + 3) ^ "zz "
    ^ String.sub text (idx + 3) (String.length text - idx - 3)
  in
  Alcotest.(check bool) "corrupted float" true (bad corrupted)

let test_prior_io_file () =
  let pair = Lazy.force tiny_prior_pair in
  let path = Filename.temp_file "slc_prior" ".txt" in
  Prior_io.save path pair;
  let back = Prior_io.load path in
  Sys.remove path;
  Alcotest.(check int) "provenance"
    (List.length pair.Prior.slew.Prior.provenance)
    (List.length back.Prior.slew.Prior.provenance)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_model_monotone_in_cload =
  QCheck.Test.make ~name:"model delay monotone in cload" ~count:100
    QCheck.(pair (float_range 0.5 6.0) (float_range 0.7 1.0))
    (fun (cl_fF, vdd) ->
      let p1 = { Harness.sin = 5e-12; cload = cl_fF *. 1e-15; vdd } in
      let p2 = { p1 with Harness.cload = (cl_fF +. 1.0) *. 1e-15 } in
      Timing_model.eval p_true ~ieff:40e-6 p2
      > Timing_model.eval p_true ~ieff:40e-6 p1)

let prop_model_scales_inversely_with_ieff =
  QCheck.Test.make ~name:"model delay inversely proportional to ieff"
    ~count:100
    QCheck.(float_range 1.0 100.0)
    (fun scale ->
      let pt = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 } in
      let base = Timing_model.eval p_true ~ieff:1e-5 pt in
      let scaled = Timing_model.eval p_true ~ieff:(1e-5 *. scale) pt in
      Float.abs ((scaled *. scale) -. base) < 1e-12 *. base +. 1e-22)

let prop_lse_exact_on_model_data =
  QCheck.Test.make ~name:"LSE recovers random generating parameters"
    ~count:20
    QCheck.(quad (float_range 0.2 0.6) (float_range 0.3 2.0)
              (float_range (-0.3) (-0.05)) (float_range 0.01 0.2))
    (fun (kd, cpar, v_off, alpha) ->
      let truth = { Timing_model.kd; cpar; v_off; alpha } in
      let obs = synthetic_obs truth 12 in
      let fit = Extract_lse.fit obs in
      Extract_lse.avg_abs_rel_error fit obs < 1e-5)

let () =
  Alcotest.run "slc_core"
    [
      ( "timing_model",
        [
          Alcotest.test_case "closed form" `Quick test_eval_formula;
          Alcotest.test_case "vec roundtrip" `Quick test_vec_roundtrip;
          Alcotest.test_case "gradient matches numeric" `Quick
            test_grad_matches_numeric;
          Alcotest.test_case "relative residual" `Quick test_rel_residual;
          Alcotest.test_case "rejects bad ieff" `Quick test_eval_rejects_bad_ieff;
        ] );
      ( "input_space",
        [
          Alcotest.test_case "normalize roundtrip" `Quick test_normalize_roundtrip;
          Alcotest.test_case "validation determinism" `Quick
            test_validation_set_deterministic;
          Alcotest.test_case "fitting points" `Quick test_fitting_points_properties;
          Alcotest.test_case "unit grid" `Quick test_unit_grid_shape;
        ] );
      ( "extract_lse",
        [
          Alcotest.test_case "recovers synthetic parameters" `Quick
            test_lse_recovers_synthetic;
          Alcotest.test_case "weights" `Quick test_lse_weighted;
          Alcotest.test_case "input validation" `Quick
            test_lse_rejects_empty_and_bad;
          Alcotest.test_case "max error" `Quick test_max_abs_rel_error;
        ] );
      ( "prior",
        [
          Alcotest.test_case "structure" `Slow test_prior_structure;
          Alcotest.test_case "mean plausible" `Slow test_prior_mean_plausible;
          Alcotest.test_case "beta positive" `Slow test_beta_positive_everywhere;
          Alcotest.test_case "beta floored" `Slow test_beta_floor_caps_precision;
          Alcotest.test_case "constant beta ablation" `Slow
            test_constant_beta_flattens;
          Alcotest.test_case "requires history" `Quick test_prior_requires_history;
        ] );
      ( "map_fit",
        [
          Alcotest.test_case "no data = prior mean" `Slow
            test_map_no_observations_returns_prior_mean;
          Alcotest.test_case "lots of data = truth" `Slow
            test_map_converges_to_truth_with_data;
          Alcotest.test_case "beats LSE at k=2" `Slow test_map_beats_lse_at_small_k;
          Alcotest.test_case "posterior decomposition" `Slow
            test_map_posterior_decomposition;
        ] );
      ( "belief",
        [
          Alcotest.test_case "observe shrinks covariance" `Quick
            test_belief_observe_shrinks_cov;
          Alcotest.test_case "drift grows covariance" `Quick
            test_belief_drift_grows_cov;
          Alcotest.test_case "chain prior" `Slow test_belief_chain_and_prior;
          Alcotest.test_case "empty chain" `Quick test_belief_empty_chain_rejected;
          Alcotest.test_case "observe workspace parity" `Quick
            test_belief_observe_workspace_parity;
          Alcotest.test_case "graph matches chain (bitwise)" `Quick
            test_belief_graph_matches_chain;
          Alcotest.test_case "graph diamond" `Quick test_belief_graph_diamond;
          Alcotest.test_case "graph cycle terminates" `Quick
            test_belief_graph_cycle_terminates;
          Alcotest.test_case "graph validation" `Quick
            test_belief_graph_validation;
        ] );
      ( "gpr",
        [
          Alcotest.test_case "closed-form posterior" `Quick test_gpr_closed_form;
          Alcotest.test_case "fallback threshold" `Slow
            test_gpr_fallback_threshold;
        ] );
      ( "char_flow",
        [
          Alcotest.test_case "budget_to_reach" `Quick test_budget_to_reach;
          Alcotest.test_case "speedup_vs" `Quick test_speedup_vs;
          Alcotest.test_case "lut cost within budget" `Quick
            test_train_lut_cost_within_budget;
          Alcotest.test_case "predictor positive" `Slow test_predictor_positive;
        ] );
      ( "model_ext",
        [
          Alcotest.test_case "reduces to base model" `Quick
            test_model_ext_reduces_to_base;
          Alcotest.test_case "gradient matches numeric" `Quick
            test_model_ext_grad_matches_numeric;
          Alcotest.test_case "fit recovers cross term" `Quick
            test_model_ext_fit_recovers_gamma;
        ] );
      ( "designs",
        [
          Alcotest.test_case "random fitting points" `Quick
            test_random_fitting_points;
          Alcotest.test_case "points override checked" `Slow
            test_points_override_length_checked;
        ] );
      ( "statistical",
        [
          Alcotest.test_case "tiny statistical flow" `Slow test_statistical_tiny;
          Alcotest.test_case "pooled bitwise equals sequential" `Slow
            test_statistical_pool_bitwise_sequential;
          Alcotest.test_case "random design deterministic" `Slow
            test_statistical_random_design_deterministic;
          Alcotest.test_case "adaptive design deterministic" `Slow
            test_statistical_adaptive_design_deterministic;
          Alcotest.test_case "graceful degradation" `Slow
            test_statistical_degradation;
          Alcotest.test_case "baseline degradation" `Slow
            test_baseline_degradation;
        ] );
      ( "rsm",
        [
          Alcotest.test_case "degree adapts to budget" `Quick
            test_rsm_degree_adapts;
          Alcotest.test_case "exact on polynomial data" `Quick
            test_rsm_exact_on_polynomial_data;
          Alcotest.test_case "predictor runs" `Slow test_rsm_predictor_runs;
          Alcotest.test_case "input validation" `Quick
            test_rsm_rejects_bad_input;
        ] );
      ( "prior_io",
        [
          Alcotest.test_case "roundtrip" `Slow test_prior_roundtrip;
          Alcotest.test_case "errors" `Slow test_prior_io_errors;
          Alcotest.test_case "file save/load" `Slow test_prior_io_file;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_model_monotone_in_cload;
          QCheck_alcotest.to_alcotest prop_model_scales_inversely_with_ieff;
          QCheck_alcotest.to_alcotest prop_lse_exact_on_model_data;
        ] );
      ( "bayes_library",
        [ Alcotest.test_case "whole-library flow" `Slow test_bayes_library ] );
      ( "config_report",
        [
          Alcotest.test_case "config scaling" `Quick test_config_scaling;
          Alcotest.test_case "report rendering" `Quick test_report_table_and_bar;
          Alcotest.test_case "series rendering" `Quick
            test_report_series_and_formats;
          Alcotest.test_case "prior summary" `Slow test_prior_summary_renders;
          Alcotest.test_case "belief to_mvn" `Quick test_belief_to_mvn;
          Alcotest.test_case "of_vec length checks" `Quick
            test_of_vec_wrong_length;
          Alcotest.test_case "prior_io version check" `Slow
            test_prior_io_rejects_future_version;
        ] );
    ]
