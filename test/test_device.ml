(* Tests for the compact MOSFET model, technology cards and process
   variation. *)

open Slc_device
module Rng = Slc_prob.Rng

let nmos = Tech.n14.Tech.nmos

let pmos = Tech.n14.Tech.pmos

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Mosfet *)

let test_current_off_state () =
  (* Gate well below threshold: current is orders below on-current. *)
  let off = Mosfet.channel_current nmos ~vgs:0.0 ~vds:0.8 in
  let on = Mosfet.channel_current nmos ~vgs:0.8 ~vds:0.8 in
  Alcotest.(check bool) "off current tiny" true (off < 1e-4 *. on);
  Alcotest.(check bool) "off current positive" true (off > 0.0)

let test_current_monotone_vgs () =
  let prev = ref (-1.0) in
  for i = 0 to 40 do
    let vgs = 0.02 *. float_of_int i in
    let id = Mosfet.channel_current nmos ~vgs ~vds:0.8 in
    Alcotest.(check bool) "increasing in vgs" true (id > !prev);
    prev := id
  done

let test_current_monotone_vds () =
  let prev = ref (-1.0) in
  for i = 0 to 40 do
    let vds = 0.02 *. float_of_int i in
    let id = Mosfet.channel_current nmos ~vgs:0.8 ~vds in
    Alcotest.(check bool) "increasing in vds" true (id > !prev);
    prev := id
  done

let test_zero_vds_zero_current () =
  check_close ~tol:1e-18 "Id(vds=0) = 0"
    0.0
    (Mosfet.channel_current nmos ~vgs:0.8 ~vds:0.0)

let test_eval_derivatives_match_fd () =
  (* Analytic partials vs central differences at several biases,
     including a swapped (vd < vs) case. *)
  let h = 1e-6 in
  let biases =
    [ (0.8, 0.4, 0.0); (0.4, 0.8, 0.0); (0.6, 0.1, 0.3); (0.7, 0.2, 0.5) ]
  in
  List.iter
    (fun (vg, vd, vs) ->
      let e = Mosfet.eval nmos ~vg ~vd ~vs in
      let fd f =
        let p = f h and m = f (-.h) in
        (p -. m) /. (2.0 *. h)
      in
      let dg = fd (fun d -> (Mosfet.eval nmos ~vg:(vg +. d) ~vd ~vs).Mosfet.id) in
      let dd = fd (fun d -> (Mosfet.eval nmos ~vg ~vd:(vd +. d) ~vs).Mosfet.id) in
      let ds = fd (fun d -> (Mosfet.eval nmos ~vg ~vd ~vs:(vs +. d)).Mosfet.id) in
      let scale = Float.max 1e-9 (Float.abs e.Mosfet.id) in
      let ok a b = Float.abs (a -. b) < 1e-3 *. Float.max scale (Float.abs b) in
      Alcotest.(check bool) "d_vg" true (ok e.Mosfet.d_vg dg);
      Alcotest.(check bool) "d_vd" true (ok e.Mosfet.d_vd dd);
      Alcotest.(check bool) "d_vs" true (ok e.Mosfet.d_vs ds))
    biases

let test_source_drain_symmetry () =
  (* Swapping drain and source negates the terminal current. *)
  let e1 = Mosfet.eval nmos ~vg:0.6 ~vd:0.5 ~vs:0.1 in
  let e2 = Mosfet.eval nmos ~vg:0.6 ~vd:0.1 ~vs:0.5 in
  check_close ~tol:1e-12 "antisymmetric" (-.e1.Mosfet.id) e2.Mosfet.id

let test_continuity_across_vds_zero () =
  let before = (Mosfet.eval nmos ~vg:0.6 ~vd:(-1e-9) ~vs:0.0).Mosfet.id in
  let after = (Mosfet.eval nmos ~vg:0.6 ~vd:1e-9 ~vs:0.0).Mosfet.id in
  Alcotest.(check bool) "continuous at vds=0" true
    (Float.abs (before -. after) < 1e-12)

let test_pmos_mirror () =
  (* A PMOS with source at vdd and gate low conducts "upward": current
     into the drain is negative (flows out of the drain node into the
     device towards the load means charging => current enters the
     drain from the device). *)
  let vdd = 0.8 in
  let e = Mosfet.eval pmos ~vg:0.0 ~vd:0.0 ~vs:vdd in
  Alcotest.(check bool) "pmos pulls up" true (e.Mosfet.id < 0.0);
  let off = Mosfet.eval pmos ~vg:vdd ~vd:0.0 ~vs:vdd in
  Alcotest.(check bool) "pmos off" true
    (Float.abs off.Mosfet.id < 1e-3 *. Float.abs e.Mosfet.id)

let test_ieff_definition () =
  let vdd = 0.8 in
  let ih = Mosfet.channel_current nmos ~vgs:vdd ~vds:(vdd /. 2.0) in
  let il = Mosfet.channel_current nmos ~vgs:(vdd /. 2.0) ~vds:vdd in
  check_close ~tol:1e-15 "Eq. 4" (0.5 *. (ih +. il)) (Mosfet.ieff nmos ~vdd)

let test_ieff_below_idsat () =
  Alcotest.(check bool) "ieff < idsat" true
    (Mosfet.ieff nmos ~vdd:0.8 < Mosfet.idsat nmos ~vdd:0.8)

let test_scale_width () =
  let w2 = Mosfet.scale_width nmos 2.0 in
  let i1 = Mosfet.channel_current nmos ~vgs:0.8 ~vds:0.8 in
  let i2 = Mosfet.channel_current w2 ~vgs:0.8 ~vds:0.8 in
  check_close ~tol:1e-12 "current scales with width" (2.0 *. i1) i2;
  check_close ~tol:1e-25 "gate cap scales" (2.0 *. Mosfet.cgate nmos)
    (Mosfet.cgate w2);
  Alcotest.check_raises "bad factor"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Mosfet.scale_width" "factor must be > 0")) (fun () ->
      ignore (Mosfet.scale_width nmos 0.0))

(* ------------------------------------------------------------------ *)
(* Tech *)

let test_six_nodes () =
  Alcotest.(check int) "six nodes" 6 (List.length Tech.all);
  let names = List.map (fun t -> t.Tech.name) Tech.all in
  Alcotest.(check (list string)) "names"
    [ "n14"; "n20"; "n28"; "n32"; "n40"; "n45" ]
    names

let test_by_name () =
  Alcotest.(check string) "lookup" "n28" (Tech.by_name "n28").Tech.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Tech.by_name "n3"))

let test_historical_excludes_target () =
  let h = Tech.historical_for Tech.n14 in
  Alcotest.(check int) "five others" 5 (List.length h);
  Alcotest.(check bool) "excluded" true
    (not (List.exists (fun t -> t.Tech.name = "n14") h))

let test_nodes_scale_sensibly () =
  (* Newer nodes: lower supply, faster devices per width. *)
  Alcotest.(check bool) "vdd scales down" true
    (Tech.n14.Tech.vdd_nom < Tech.n45.Tech.vdd_nom);
  let drive t =
    Mosfet.idsat t.Tech.nmos ~vdd:t.Tech.vdd_nom /. t.Tech.nmos.Mosfet.w
  in
  Alcotest.(check bool) "drive per width improves" true
    (drive Tech.n14 > drive Tech.n45)

let test_vt_variant () =
  let lvt = Tech.vt_variant Tech.n14 ~shift:(-0.06) ~suffix:"-lvt" in
  Alcotest.(check string) "renamed" "n14-lvt" lvt.Tech.name;
  Alcotest.(check (float 1e-12)) "nmos vt shifted"
    (Tech.n14.Tech.nmos.Mosfet.vt -. 0.06)
    lvt.Tech.nmos.Mosfet.vt;
  (* LVT is faster. *)
  Alcotest.(check bool) "more drive" true
    (Mosfet.ieff lvt.Tech.nmos ~vdd:0.8 > Mosfet.ieff Tech.n14.Tech.nmos ~vdd:0.8)

let test_input_box () =
  let box = Tech.input_box Tech.n28 in
  Alcotest.(check int) "3 dims" 3 (Array.length box);
  Array.iter
    (fun (lo, hi) -> Alcotest.(check bool) "valid" true (lo < hi))
    box

let test_temperature_scaling () =
  let hot = Mosfet.at_temperature nmos ~celsius:125.0 in
  let cold = Mosfet.at_temperature nmos ~celsius:(-40.0) in
  (* Mobility falls and Vt drops with temperature. *)
  Alcotest.(check bool) "hot kp lower" true (hot.Mosfet.kp < nmos.Mosfet.kp);
  Alcotest.(check bool) "hot vt lower" true (hot.Mosfet.vt < nmos.Mosfet.vt);
  Alcotest.(check bool) "cold kp higher" true (cold.Mosfet.kp > nmos.Mosfet.kp);
  (* At nominal supply mobility dominates: hot device is weaker. *)
  Alcotest.(check bool) "hot drives less at nominal vdd" true
    (Mosfet.ieff hot ~vdd:0.8 < Mosfet.ieff nmos ~vdd:0.8);
  (* 25 C is the identity. *)
  let same = Mosfet.at_temperature nmos ~celsius:25.0 in
  check_close ~tol:1e-12 "identity vt" nmos.Mosfet.vt same.Mosfet.vt;
  Alcotest.check_raises "absolute zero"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Mosfet.at_temperature" "below absolute zero")) (fun () ->
      ignore (Mosfet.at_temperature nmos ~celsius:(-300.0)))

let test_tech_at_temperature () =
  let hot = Tech.at_temperature Tech.n14 ~celsius:125.0 in
  Alcotest.(check string) "renamed" "n14@125C" hot.Tech.name;
  Alcotest.(check bool) "devices rescaled" true
    (hot.Tech.nmos.Mosfet.kp < Tech.n14.Tech.nmos.Mosfet.kp)

let test_corners () =
  let ss = Process.corner Tech.n14 Process.Ss in
  let ff = Process.corner Tech.n14 Process.Ff in
  let tt = Process.corner Tech.n14 Process.Tt in
  let sf = Process.corner Tech.n14 Process.Sf in
  Alcotest.(check bool) "ss raises vt" true (ss.Process.dvt_n > 0.0);
  Alcotest.(check bool) "ff lowers vt" true (ff.Process.dvt_n < 0.0);
  Alcotest.(check bool) "tt neutral" true
    (tt.Process.dvt_n = 0.0 && tt.Process.dkp_rel = 0.0);
  Alcotest.(check bool) "sf splits polarity" true
    (sf.Process.dvt_n > 0.0 && sf.Process.dvt_p < 0.0);
  Alcotest.(check bool) "mixed corner mobility neutral" true
    (Float.abs sf.Process.dkp_rel < 1e-12);
  (* Corner seeds carry no local mismatch. *)
  check_close ~tol:0.0 "no local" 0.0
    (Process.local_dvt ss Tech.n14 ~device_index:3 nmos)

(* ------------------------------------------------------------------ *)
(* Process *)

let test_nominal_seed_is_identity () =
  let p = Process.apply Process.nominal Tech.n14 ~device_index:3 nmos in
  check_close ~tol:1e-15 "vt unchanged" nmos.Mosfet.vt p.Mosfet.vt;
  check_close ~tol:1e-20 "kp unchanged" nmos.Mosfet.kp p.Mosfet.kp;
  check_close ~tol:1e-12 "cpar scale 1" 1.0 (Process.cpar_scale Process.nominal)

let test_seed_determinism () =
  let rng1 = Rng.create 77 and rng2 = Rng.create 77 in
  let s1 = Process.sample rng1 Tech.n14 0 and s2 = Process.sample rng2 Tech.n14 0 in
  Alcotest.(check bool) "same seed same draws" true (s1 = s2);
  (* Applying the same seed twice to the same device index gives the
     same parameters (the statistical flow depends on this). *)
  let a = Process.apply s1 Tech.n14 ~device_index:5 nmos in
  let b = Process.apply s1 Tech.n14 ~device_index:5 nmos in
  Alcotest.(check bool) "deterministic apply" true (a = b)

let test_local_mismatch_varies_by_device () =
  let rng = Rng.create 78 in
  let s = Process.sample rng Tech.n14 0 in
  let d0 = Process.local_dvt s Tech.n14 ~device_index:0 nmos in
  let d1 = Process.local_dvt s Tech.n14 ~device_index:1 nmos in
  Alcotest.(check bool) "differs across devices" true (d0 <> d1)

let test_pelgrom_scaling () =
  (* Wider devices have smaller local sigma: check empirically. *)
  let rng = Rng.create 79 in
  let wide = Mosfet.scale_width nmos 16.0 in
  let sample_sigma dev =
    let xs =
      Array.init 3_000 (fun i ->
          let s = Process.sample (Rng.create (i + 1)) Tech.n14 i in
          ignore rng;
          Process.local_dvt s Tech.n14 ~device_index:0 dev)
    in
    Slc_prob.Describe.std xs
  in
  let s_min = sample_sigma nmos and s_wide = sample_sigma wide in
  Alcotest.(check bool) "sigma shrinks ~4x for 16x width" true
    (s_wide < 0.35 *. s_min && s_wide > 0.15 *. s_min)

let test_global_shift_statistics () =
  let rng = Rng.create 80 in
  let seeds = Process.sample_batch rng Tech.n28 4_000 in
  let dvts = Array.map (fun s -> s.Process.dvt_n) seeds in
  let sigma = Slc_prob.Describe.std dvts in
  check_close ~tol:0.002 "matches card sigma" Tech.n28.Tech.sigma_vt_global sigma

let test_lhs_batch () =
  let rng = Rng.create 83 in
  let n = 64 in
  let seeds = Process.sample_batch_lhs rng Tech.n28 n in
  Alcotest.(check int) "count" n (Array.length seeds);
  Array.iteri (fun i s -> Alcotest.(check int) "index" i s.Process.index) seeds;
  (* Stratification: the Gaussian CDF of dvt_n hits every n-quantile
     slice exactly once. *)
  let hits = Array.make n 0 in
  Array.iter
    (fun s ->
      let u =
        Slc_prob.Dist.gaussian_cdf ~mu:0.0 ~sigma:Tech.n28.Tech.sigma_vt_global
          s.Process.dvt_n
      in
      let b = min (n - 1) (int_of_float (u *. float_of_int n)) in
      hits.(b) <- hits.(b) + 1)
    seeds;
  Array.iter (fun c -> Alcotest.(check int) "one per stratum" 1 c) hits;
  (* Sample std close to the card sigma (LHS is unbiased). *)
  let std = Slc_prob.Describe.std (Array.map (fun s -> s.Process.dvt_n) seeds) in
  Alcotest.(check bool) "std near sigma" true
    (Float.abs (std -. Tech.n28.Tech.sigma_vt_global)
     < 0.25 *. Tech.n28.Tech.sigma_vt_global)

let test_batch_indexing () =
  let rng = Rng.create 81 in
  let seeds = Process.sample_batch rng Tech.n14 10 in
  Array.iteri
    (fun i s -> Alcotest.(check int) "index" i s.Process.index)
    seeds

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_current_finite_positive =
  QCheck.Test.make ~name:"channel current finite and >= 0" ~count:200
    QCheck.(pair (float_range 0.0 1.2) (float_range 0.0 1.2))
    (fun (vgs, vds) ->
      let id = Mosfet.channel_current nmos ~vgs ~vds in
      Float.is_finite id && id >= 0.0)

let prop_gm_nonnegative =
  QCheck.Test.make ~name:"gm >= 0 in normal operation" ~count:200
    QCheck.(pair (float_range 0.0 1.0) (float_range 0.001 1.0))
    (fun (vg, vd) ->
      let e = Mosfet.eval nmos ~vg ~vd ~vs:0.0 in
      e.Mosfet.d_vg >= -1e-15)

let prop_hotter_is_weaker =
  QCheck.Test.make ~name:"drive decreases monotonically with temperature"
    ~count:50
    QCheck.(pair (float_range (-40.0) 100.0) (float_range 5.0 25.0))
    (fun (celsius, step) ->
      let cold = Mosfet.at_temperature nmos ~celsius in
      let hot = Mosfet.at_temperature nmos ~celsius:(celsius +. step) in
      Mosfet.ieff hot ~vdd:0.8 < Mosfet.ieff cold ~vdd:0.8)

let prop_seed_variations_bounded =
  QCheck.Test.make ~name:"relative shifts stay in truncation bounds"
    ~count:200 QCheck.small_int (fun n ->
      let rng = Rng.create (n + 7) in
      let s = Process.sample rng Tech.n40 n in
      Float.abs s.Process.dkp_rel <= 0.4
      && Float.abs s.Process.dl_rel <= 0.3
      && Float.abs s.Process.dcpar_rel <= 0.4)

let () =
  Alcotest.run "slc_device"
    [
      ( "mosfet",
        [
          Alcotest.test_case "off state" `Quick test_current_off_state;
          Alcotest.test_case "monotone in vgs" `Quick test_current_monotone_vgs;
          Alcotest.test_case "monotone in vds" `Quick test_current_monotone_vds;
          Alcotest.test_case "zero vds" `Quick test_zero_vds_zero_current;
          Alcotest.test_case "analytic derivatives" `Quick
            test_eval_derivatives_match_fd;
          Alcotest.test_case "source/drain symmetry" `Quick
            test_source_drain_symmetry;
          Alcotest.test_case "continuity at vds=0" `Quick
            test_continuity_across_vds_zero;
          Alcotest.test_case "pmos mirror" `Quick test_pmos_mirror;
          Alcotest.test_case "ieff definition (Eq 4)" `Quick test_ieff_definition;
          Alcotest.test_case "ieff < idsat" `Quick test_ieff_below_idsat;
          Alcotest.test_case "width scaling" `Quick test_scale_width;
          QCheck_alcotest.to_alcotest prop_current_finite_positive;
          QCheck_alcotest.to_alcotest prop_gm_nonnegative;
        ] );
      ( "tech",
        [
          Alcotest.test_case "six nodes" `Quick test_six_nodes;
          Alcotest.test_case "lookup by name" `Quick test_by_name;
          Alcotest.test_case "historical excludes target" `Quick
            test_historical_excludes_target;
          Alcotest.test_case "roadmap scaling" `Quick test_nodes_scale_sensibly;
          Alcotest.test_case "vt variant" `Quick test_vt_variant;
          Alcotest.test_case "temperature scaling" `Quick
            test_temperature_scaling;
          Alcotest.test_case "tech at temperature" `Quick
            test_tech_at_temperature;
          Alcotest.test_case "process corners" `Quick test_corners;
          Alcotest.test_case "input box" `Quick test_input_box;
        ] );
      ( "process",
        [
          Alcotest.test_case "nominal is identity" `Quick
            test_nominal_seed_is_identity;
          Alcotest.test_case "seed determinism" `Quick test_seed_determinism;
          Alcotest.test_case "local mismatch per device" `Quick
            test_local_mismatch_varies_by_device;
          Alcotest.test_case "pelgrom width scaling" `Quick test_pelgrom_scaling;
          Alcotest.test_case "global sigma matches card" `Quick
            test_global_shift_statistics;
          Alcotest.test_case "batch indexing" `Quick test_batch_indexing;
          Alcotest.test_case "latin hypercube batch" `Quick test_lhs_batch;
          QCheck_alcotest.to_alcotest prop_seed_variations_bounded;
          QCheck_alcotest.to_alcotest prop_hotter_is_weaker;
        ] );
    ]
