(* Tests for SPICE-deck parsing, number notation and deck-to-netlist
   simulation. *)

open Slc_spice
module Tech = Slc_device.Tech

let check_close ?(tol = 1e-12) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let inverter_deck =
  "* inverter testbench\n\
   vdd vdd 0 0.8\n\
   vin in 0 PWL(0 0 1p 0 6p 0.8)\n\
   mn1 out in 0 nmos w=100n l=20n\n\
   mp1 out in vdd pmos w=200n l=20n\n\
   cl out 0 2f\n\
   .tran 0.1p 60p\n\
   .end\n"

let models name =
  match String.lowercase_ascii name with
  | "nmos" -> Tech.n14.Tech.nmos
  | "pmos" -> Tech.n14.Tech.pmos
  | other -> invalid_arg ("unknown model " ^ other)

(* ------------------------------------------------------------------ *)

let test_parse_number () =
  check_close "femto" 2.5e-15 (Deck.parse_number "2.5f");
  check_close "pico" 1e-12 (Deck.parse_number "1p");
  check_close "nano" 1.5e-9 (Deck.parse_number "1.5n");
  check_close "micro" 3e-6 (Deck.parse_number "3u");
  check_close "milli" 2e-3 (Deck.parse_number "2m");
  check_close ~tol:1e-6 "kilo" 4e3 (Deck.parse_number "4k");
  check_close ~tol:1.0 "meg" 2e6 (Deck.parse_number "2meg");
  check_close "plain" 0.8 (Deck.parse_number "0.8");
  check_close "scientific" 5e-12 (Deck.parse_number "5e-12");
  Alcotest.check_raises "garbage" (Deck.Parse_error "bad number \"xyz\"")
    (fun () -> ignore (Deck.parse_number "xyz"))

let test_parse_structure () =
  let d = Deck.parse inverter_deck in
  Alcotest.(check string) "title" "* inverter testbench" d.Deck.title;
  Alcotest.(check int) "cards" 5 (List.length d.Deck.cards);
  (match d.Deck.tran with
  | Some (dt, tstop) ->
    check_close "dt" 1e-13 dt;
    check_close "tstop" 6e-11 tstop
  | None -> Alcotest.fail "missing .tran");
  (* The MOSFET card carries its size. *)
  let m =
    List.find_map
      (function
        | Deck.Mosfet_card { name = "mp1"; w; model; _ } -> Some (w, model)
        | _ -> None)
      d.Deck.cards
  in
  match m with
  | Some (w, model) ->
    check_close ~tol:1e-12 "w" 200e-9 w;
    Alcotest.(check string) "model" "pmos" model
  | None -> Alcotest.fail "mp1 missing"

let test_parse_errors () =
  let bad s =
    match Deck.parse s with
    | exception Deck.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad card" true (bad "t\nq x y z\n");
  Alcotest.(check bool) "malformed M" true (bad "t\nm1 a b\n");
  Alcotest.(check bool) "non-grounded V" true (bad "t\nv1 a b 1.0\n");
  Alcotest.(check bool) "odd PWL" true (bad "t\nv1 a 0 PWL(0 1 2)\n");
  Alcotest.(check bool) "bad directive" true (bad "t\n.options foo\n")

let test_cards_after_end_ignored () =
  let d = Deck.parse "t\nr1 a 0 1k\n.end\nr2 b 0 1k\n" in
  Alcotest.(check int) "only one card" 1 (List.length d.Deck.cards)

let test_deck_simulates_like_builder () =
  (* The parsed inverter deck must reproduce the hand-built testbench. *)
  let d = Deck.parse inverter_deck in
  let net, resolve = Deck.to_netlist d ~models in
  let nout = resolve "out" and nin = resolve "in" in
  let opts =
    {
      (Transient.default_options ~tstop:6e-11) with
      breakpoints = [ 1e-12; 6e-12 ];
    }
  in
  let res = Transient.run opts net in
  let wout = Transient.waveform res nout in
  let win = Transient.waveform res nin in
  Alcotest.(check bool) "output falls" true
    (Waveform.final_value wout < 0.05 *. 0.8);
  match
    Waveform.measure_delay ~input:win ~output:wout ~vdd:0.8
      ~out_dir:Waveform.Falling
  with
  | Some d ->
    (* Same circuit as the smoke inverter: delay in the ~5-20 ps range. *)
    Alcotest.(check bool) "plausible delay" true (d > 2e-12 && d < 3e-11)
  | None -> Alcotest.fail "no delay measured"

let test_roundtrip () =
  let d = Deck.parse inverter_deck in
  let text = Deck.to_string d in
  let d2 = Deck.parse text in
  Alcotest.(check int) "same cards" (List.length d.Deck.cards)
    (List.length d2.Deck.cards);
  Alcotest.(check bool) "same tran" true (d.Deck.tran = d2.Deck.tran);
  (* Values survive to within float-printing precision (suffix parsing
     multiplies, so bit-exact equality is not guaranteed). *)
  List.iter2
    (fun a b ->
      match (a, b) with
      | Deck.Mosfet_card { w = wa; _ }, Deck.Mosfet_card { w = wb; _ } ->
        Alcotest.(check bool) "widths close" true (Float.abs (wa -. wb) < 1e-15)
      | Deck.Cap_card { value = va; _ }, Deck.Cap_card { value = vb; _ } ->
        Alcotest.(check bool) "caps close" true (Float.abs (va -. vb) < 1e-20)
      | x, y -> Alcotest.(check bool) "same shape" true (x = y))
    d.Deck.cards d2.Deck.cards

let test_ground_aliases () =
  let d = Deck.parse "t\nr1 a b 1k\nr2 b gnd 1k\nr3 b 0 1k\nv1 a 0 1.0\n.end\n" in
  let net, resolve = Deck.to_netlist d ~models in
  Netlist.validate net;
  Alcotest.(check int) "gnd is node 0" Netlist.ground (resolve "gnd");
  Alcotest.(check int) "0 is node 0" Netlist.ground (resolve "0")

let test_unknown_node_rejected () =
  let d = Deck.parse inverter_deck in
  let _, resolve = Deck.to_netlist d ~models in
  Alcotest.check_raises "unknown node"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Deck.to_netlist" "unknown node nowhere")) (fun () ->
      ignore (resolve "nowhere"))

let () =
  Alcotest.run "deck"
    [
      ( "numbers",
        [ Alcotest.test_case "engineering notation" `Quick test_parse_number ] );
      ( "parser",
        [
          Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "cards after .end" `Quick
            test_cards_after_end_ignored;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "simulates" `Quick test_deck_simulates_like_builder;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "unknown node" `Quick test_unknown_node_rejected;
          Alcotest.test_case "ground aliases" `Quick test_ground_aliases;
        ] );
    ]
