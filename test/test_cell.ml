(* Tests for the standard-cell layer: topologies, cells, arcs,
   equivalent-inverter reduction, the characterization harness and NLDM
   tables. *)

open Slc_cell
module Tech = Slc_device.Tech
module Process = Slc_device.Process
module Rng = Slc_prob.Rng

let tech = Tech.n14

let mid_point = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 }

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Topology *)

let dev ?(w = 1.0) pin = Topology.Dev { pin; width_mult = w }

let test_pins_order () =
  let net = Topology.Series [ dev "B"; Topology.Parallel [ dev "A"; dev "B" ] ] in
  Alcotest.(check (list string)) "first appearance" [ "B"; "A" ]
    (Topology.pins net)

let test_conducts () =
  let series = Topology.Series [ dev "A"; dev "B" ] in
  let par = Topology.Parallel [ dev "A"; dev "B" ] in
  let on_a p = String.equal p "A" in
  Alcotest.(check bool) "series needs both" false (Topology.conducts series ~on:on_a);
  Alcotest.(check bool) "parallel needs one" true (Topology.conducts par ~on:on_a);
  Alcotest.(check bool) "series both on" true
    (Topology.conducts series ~on:(fun _ -> true))

let test_equivalent_width () =
  let series = Topology.Series [ dev ~w:2.0 "A"; dev ~w:2.0 "B" ] in
  check_close ~tol:1e-12 "two 2x in series = 1x" 1.0
    (Topology.equivalent_width_mult series ~on:(fun _ -> true));
  let par = Topology.Parallel [ dev "A"; dev "B" ] in
  check_close ~tol:1e-12 "parallel adds (both on)" 2.0
    (Topology.equivalent_width_mult par ~on:(fun _ -> true));
  check_close ~tol:1e-12 "parallel one on" 1.0
    (Topology.equivalent_width_mult par ~on:(String.equal "A"));
  check_close ~tol:1e-12 "off network" 0.0
    (Topology.equivalent_width_mult series ~on:(String.equal "A"))

let test_validate () =
  Alcotest.check_raises "empty group"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Topology.validate" "empty series/parallel group"))
    (fun () -> Topology.validate (Topology.Series []));
  Alcotest.check_raises "bad width"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Topology.validate" "width multiplier must be > 0"))
    (fun () -> Topology.validate (dev ~w:0.0 "A"))

(* ------------------------------------------------------------------ *)
(* Cells *)

let test_all_cells_complementary () =
  List.iter
    (fun cell ->
      Alcotest.(check bool)
        (cell.Cells.name ^ " complementary")
        true
        (Cells.is_complementary cell))
    Cells.all

let test_logic_values () =
  (* NAND2 truth table. *)
  let out a b =
    Cells.logic_value Cells.nand2 ~on:(fun p ->
        if String.equal p "A" then a else b)
  in
  Alcotest.(check (option bool)) "00" (Some true) (out false false);
  Alcotest.(check (option bool)) "01" (Some true) (out false true);
  Alcotest.(check (option bool)) "10" (Some true) (out true false);
  Alcotest.(check (option bool)) "11" (Some false) (out true true);
  (* AOI21: out = !(A.B + C) *)
  let aoi a b c =
    Cells.logic_value Cells.aoi21 ~on:(fun p ->
        match p with
        | "A" -> a
        | "B" -> b
        | _ -> c)
  in
  Alcotest.(check (option bool)) "A.B" (Some false) (aoi true true false);
  Alcotest.(check (option bool)) "C" (Some false) (aoi false false true);
  Alcotest.(check (option bool)) "none" (Some true) (aoi false true false)

let test_by_name () =
  Alcotest.(check string) "lookup" "NOR3" (Cells.by_name "NOR3").Cells.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Cells.by_name "XOR9"))

let test_four_input_cells () =
  Alcotest.(check int) "eleven cells" 11 (List.length Cells.all);
  (* NAND4 truth table boundary rows. *)
  let nand4 v = Cells.logic_value Cells.nand4 ~on:(fun _ -> v) in
  Alcotest.(check (option bool)) "all low" (Some true) (nand4 false);
  Alcotest.(check (option bool)) "all high" (Some false) (nand4 true);
  (* AOI22: out = !(A.B + C.D). *)
  let aoi22 a b c d =
    Cells.logic_value Cells.aoi22 ~on:(fun p ->
        match p with "A" -> a | "B" -> b | "C" -> c | _ -> d)
  in
  Alcotest.(check (option bool)) "A.B pulls low" (Some false)
    (aoi22 true true false false);
  Alcotest.(check (option bool)) "C.D pulls low" (Some false)
    (aoi22 false false true true);
  Alcotest.(check (option bool)) "one of each high" (Some true)
    (aoi22 true false true false);
  (* OAI22: out = !((A+B).(C+D)). *)
  let oai22 a b c d =
    Cells.logic_value Cells.oai22 ~on:(fun p ->
        match p with "A" -> a | "B" -> b | "C" -> c | _ -> d)
  in
  Alcotest.(check (option bool)) "both sides on" (Some false)
    (oai22 true false false true);
  Alcotest.(check (option bool)) "one side off" (Some true)
    (oai22 true true false false);
  (* Every 4-input cell has 8 arcs. *)
  List.iter
    (fun c ->
      Alcotest.(check int)
        (c.Cells.name ^ " arcs")
        8
        (List.length (Arc.all_of_cell c)))
    [ Cells.nand4; Cells.nor4; Cells.aoi22; Cells.oai22 ]

(* ------------------------------------------------------------------ *)
(* Arc *)

let test_arc_counts () =
  let count cell = List.length (Arc.all_of_cell cell) in
  Alcotest.(check int) "INV arcs" 2 (count Cells.inv);
  Alcotest.(check int) "NAND2 arcs" 4 (count Cells.nand2);
  Alcotest.(check int) "NAND3 arcs" 6 (count Cells.nand3);
  Alcotest.(check int) "AOI21 arcs" 6 (count Cells.aoi21)

let test_arc_side_values () =
  (* NAND2 arc on A: B must be high (non-controlling for NAND). *)
  let arc = Arc.find Cells.nand2 ~pin:"A" ~out_dir:Arc.Fall in
  Alcotest.(check (option bool)) "B high" (Some true)
    (List.assoc_opt "B" arc.Arc.side_values);
  (* NOR2 arc on A: B must be low. *)
  let arc2 = Arc.find Cells.nor2 ~pin:"A" ~out_dir:Arc.Rise in
  Alcotest.(check (option bool)) "B low" (Some false)
    (List.assoc_opt "B" arc2.Arc.side_values)

let test_arc_direction_semantics () =
  let fall = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  Alcotest.(check bool) "input rises for falling output" true
    (Arc.input_rises fall);
  let rise = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Rise in
  Alcotest.(check bool) "input falls for rising output" false
    (Arc.input_rises rise)

let test_arc_unknown_pin () =
  Alcotest.check_raises "unknown pin" Not_found (fun () ->
      ignore (Arc.find Cells.inv ~pin:"Z" ~out_dir:Arc.Fall))

let test_arc_name () =
  let arc = Arc.find Cells.nand2 ~pin:"B" ~out_dir:Arc.Rise in
  Alcotest.(check string) "name" "NAND2/B/rise" (Arc.name arc)

(* ------------------------------------------------------------------ *)
(* Equivalent *)

let test_equivalent_inverter_widths () =
  (* INV fall: single NMOS at wn_mult. *)
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let eq = Equivalent.of_arc ~stack_factor:1.0 tech arc in
  check_close ~tol:1e-12 "inv fall width" 1.0 eq.Equivalent.width_mult;
  (* NAND2 fall: two unit devices in series under a 2x cell sizing ->
     the stack matches the reference inverter drive (1x). *)
  let arc2 = Arc.find Cells.nand2 ~pin:"A" ~out_dir:Arc.Fall in
  let eq2 = Equivalent.of_arc ~stack_factor:1.0 tech arc2 in
  check_close ~tol:1e-12 "nand2 fall width" 1.0 eq2.Equivalent.width_mult;
  (* NOR2 rise: two 4x PMOS in series -> 2x equivalent. *)
  let arc3 = Arc.find Cells.nor2 ~pin:"A" ~out_dir:Arc.Rise in
  let eq3 = Equivalent.of_arc ~stack_factor:1.0 tech arc3 in
  check_close ~tol:1e-12 "nor2 rise width" 2.0 eq3.Equivalent.width_mult

let test_input_cap_closed_form () =
  (* INV pin A: wn_mult*cg_n*w + wp_mult*cg_p*w. *)
  let module M = Slc_device.Mosfet in
  let expected =
    (1.0 *. M.cgate tech.Tech.nmos) +. (2.0 *. M.cgate tech.Tech.pmos)
  in
  check_close ~tol:1e-20 "INV input cap" expected
    (Equivalent.input_cap tech Cells.inv ~pin:"A");
  (* NAND2 pin B equals pin A by symmetry. *)
  check_close ~tol:1e-20 "NAND2 pin symmetry"
    (Equivalent.input_cap tech Cells.nand2 ~pin:"A")
    (Equivalent.input_cap tech Cells.nand2 ~pin:"B")

let test_library_missing_arc_raises () =
  let lib = Library.characterize ~cells:[ Cells.inv ] tech ~levels:[| 2; 2; 1 |] in
  let foreign = Arc.find Cells.nor2 ~pin:"A" ~out_dir:Arc.Fall in
  Alcotest.check_raises "missing arc" Not_found (fun () ->
      ignore (Library.delay lib foreign mid_point))

let test_stack_factor_derates () =
  let arc = Arc.find Cells.nand2 ~pin:"A" ~out_dir:Arc.Fall in
  let eq_derated = Equivalent.of_arc ~stack_factor:0.9 tech arc in
  let eq_ideal = Equivalent.of_arc ~stack_factor:1.0 tech arc in
  Alcotest.(check bool) "derated smaller" true
    (eq_derated.Equivalent.width_mult < eq_ideal.Equivalent.width_mult)

let test_ieff_with_seed_shifts () =
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let nominal = Equivalent.ieff_with_seed tech Process.nominal arc ~vdd:0.8 in
  let slow =
    { Process.nominal with Process.dvt_n = 0.05; dkp_rel = -0.1 }
  in
  let shifted = Equivalent.ieff_with_seed tech slow arc ~vdd:0.8 in
  Alcotest.(check bool) "slow seed lowers ieff" true (shifted < nominal)

(* ------------------------------------------------------------------ *)
(* Harness *)

let test_simulate_all_cells_mid_point () =
  List.iter
    (fun cell ->
      List.iter
        (fun arc ->
          let m = Harness.simulate tech arc mid_point in
          Alcotest.(check bool)
            (Arc.name arc ^ " delay in range")
            true
            (m.Harness.td > 1e-12 && m.Harness.td < 2e-10);
          Alcotest.(check bool)
            (Arc.name arc ^ " slew in range")
            true
            (m.Harness.sout > 1e-12 && m.Harness.sout < 5e-10))
        (Arc.all_of_cell cell))
    [ Cells.inv; Cells.nor3; Cells.oai21 ]

let test_delay_monotone_in_cload () =
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let delays =
    List.map
      (fun cl -> (Harness.simulate tech arc { mid_point with Harness.cload = cl }).Harness.td)
      [ 0.5e-15; 2e-15; 4e-15; 6e-15 ]
  in
  let rec mono = function
    | a :: b :: tl -> a < b && mono (b :: tl)
    | _ -> true
  in
  Alcotest.(check bool) "delay increases with load" true (mono delays)

let test_delay_decreases_with_vdd () =
  let arc = Arc.find Cells.nand2 ~pin:"A" ~out_dir:Arc.Fall in
  let d_at vdd = (Harness.simulate tech arc { mid_point with Harness.vdd = vdd }).Harness.td in
  Alcotest.(check bool) "higher vdd faster" true (d_at 1.0 < d_at 0.7)

let test_delay_increases_with_sin () =
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let d_at sin = (Harness.simulate tech arc { mid_point with Harness.sin = sin }).Harness.td in
  Alcotest.(check bool) "slower input slower gate" true (d_at 14e-12 > d_at 2e-12)

let test_seed_changes_delay () =
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let rng = Rng.create 3 in
  let seed = Process.sample rng tech 0 in
  let nominal = (Harness.simulate tech arc mid_point).Harness.td in
  let varied = (Harness.simulate ~seed tech arc mid_point).Harness.td in
  Alcotest.(check bool) "seed shifts delay" true
    (Float.abs (varied -. nominal) > 1e-16)

let test_simulation_deterministic () =
  let arc = Arc.find Cells.nor2 ~pin:"B" ~out_dir:Arc.Fall in
  let m1 = Harness.simulate tech arc mid_point in
  let m2 = Harness.simulate tech arc mid_point in
  check_close ~tol:0.0 "same delay" m1.Harness.td m2.Harness.td

let test_sim_counter () =
  Harness.reset_sim_count ();
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  ignore (Harness.simulate tech arc mid_point);
  ignore (Harness.simulate tech arc mid_point);
  Alcotest.(check int) "two sims" 2 (Harness.sim_count ())

(* The compiled-template cache in Harness must be purely a structural
   optimization: measurements have to be exactly those of building and
   simulating the netlist from scratch, for every seed and point.  This
   reference path rebuilds the netlist per call (no template reuse) and
   replicates simulate's first-attempt window and measurements. *)
let reference_simulate ?seed t arc (point : Harness.point) =
  let module Tr = Slc_spice.Transient in
  let module Wf = Slc_spice.Waveform in
  let net, nin, nout = Harness.build_netlist ?seed t arc point in
  let eq = Equivalent.of_arc t arc in
  let tau =
    (point.Harness.cload +. Equivalent.parasitic_cap t arc)
    *. point.Harness.vdd
    /. Float.max 1e-12 (Equivalent.ieff eq ~vdd:point.Harness.vdd)
  in
  let window =
    Float.max (8.0 *. tau) (Float.max (3.0 *. point.Harness.sin) 2.0e-11)
  in
  let ramp_start = 1e-12 in
  let tstop = ramp_start +. point.Harness.sin +. window in
  let opts =
    {
      (Tr.default_options ~tstop) with
      Tr.dt_max = tstop /. 300.0;
      breakpoints =
        Slc_spice.Stimulus.breakpoints ~t0:ramp_start
          ~duration:point.Harness.sin;
    }
  in
  let res = Tr.run opts net in
  let win = Tr.waveform res nin in
  let wout = Tr.waveform res nout in
  let out_dir =
    match arc.Arc.out_dir with Arc.Fall -> Wf.Falling | Arc.Rise -> Wf.Rising
  in
  let td =
    Wf.measure_delay ~input:win ~output:wout ~vdd:point.Harness.vdd ~out_dir
  in
  let sout = Wf.measure_slew wout ~vdd:point.Harness.vdd out_dir in
  (* Supply energy from the sense resistor (r_sense = 1 ohm) between
     the source node (1) and the rail node (2). *)
  let w_src = Tr.waveform res 1 and w_rail = Tr.waveform res 2 in
  let current i = (w_src.Wf.values.(i) -. w_rail.Wf.values.(i)) /. 1.0 in
  let i_leak = current 0 in
  let q = ref 0.0 in
  let times = w_src.Wf.times in
  for i = 0 to Array.length times - 2 do
    let dt = times.(i + 1) -. times.(i) in
    q :=
      !q
      +. (0.5 *. ((current i -. i_leak) +. (current (i + 1) -. i_leak)) *. dt)
  done;
  (td, sout, point.Harness.vdd *. !q)

let test_simulate_matches_uncached_reference () =
  let rng = Rng.create 7 in
  let seeds = Array.to_list (Process.sample_batch rng tech 2) in
  let seeds = Process.nominal :: seeds in
  let arcs =
    [
      Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall;
      Arc.find Cells.nor2 ~pin:"A" ~out_dir:Arc.Rise;
    ]
  in
  let points =
    [
      { Harness.sin = 3e-12; cload = 1e-15; vdd = 0.8 };
      { Harness.sin = 8e-12; cload = 4e-15; vdd = 0.7 };
      { Harness.sin = 5e-12; cload = 0.0; vdd = 0.9 };
    ]
  in
  List.iter
    (fun arc ->
      List.iter
        (fun seed ->
          List.iter
            (fun point ->
              let m = Harness.simulate ~seed tech arc point in
              Alcotest.(check int) "no retries on this grid" 0 m.Harness.retries;
              match reference_simulate ~seed tech arc point with
              | Some td, Some sout, energy ->
                check_close ~tol:0.0 "td identical" td m.Harness.td;
                check_close ~tol:0.0 "sout identical" sout m.Harness.sout;
                check_close ~tol:0.0 "energy identical" energy m.Harness.energy
              | _ -> Alcotest.fail "reference measurement failed")
            points)
        seeds)
    arcs

let test_invalid_point_rejected () =
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  Alcotest.check_raises "bad sin"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Harness.build_netlist" "invalid input condition"))
    (fun () ->
      ignore
        (Harness.build_netlist tech arc { mid_point with Harness.sin = 0.0 }))

let test_energy_physics () =
  (* Rising-output energy: slope vs Cload must equal Vdd^2, and the
     falling transition draws only crowbar charge. *)
  let rise = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Rise in
  let fall = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let vdd = 0.8 in
  let e arc cl =
    (Harness.simulate tech arc { Harness.sin = 5e-12; cload = cl; vdd }).Harness.energy
  in
  let e1 = e rise 1e-15 and e4 = e rise 4e-15 in
  let slope = (e4 -. e1) /. 3e-15 in
  Alcotest.(check bool)
    (Printf.sprintf "dE/dC = Vdd^2 (got %.3f vs %.3f)" slope (vdd *. vdd))
    true
    (Float.abs (slope -. (vdd *. vdd)) < 0.1 *. vdd *. vdd);
  Alcotest.(check bool) "rise energy above CV^2" true (e1 > 1e-15 *. vdd *. vdd);
  Alcotest.(check bool) "fall crowbar only" true (e fall 2e-15 < 0.2 *. e rise 2e-15);
  Alcotest.(check bool) "fall positive" true (e fall 2e-15 > 0.0)

let test_energy_grows_with_vdd () =
  let rise = Arc.find Cells.nand2 ~pin:"A" ~out_dir:Arc.Rise in
  let e vdd =
    (Harness.simulate tech rise { Harness.sin = 5e-12; cload = 2e-15; vdd }).Harness.energy
  in
  Alcotest.(check bool) "higher vdd more energy" true (e 1.0 > e 0.7)

let test_pvt_ordering () =
  (* Classic signoff ordering: SS/hot/low-V slowest, FF/cold/high-V
     fastest, TT in between. *)
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let d ?seed t vdd =
    (Harness.simulate ?seed t arc { mid_point with Harness.vdd }).Harness.td
  in
  let tt = d tech 0.8 in
  let hot = Tech.at_temperature tech ~celsius:125.0 in
  let cold = Tech.at_temperature tech ~celsius:(-40.0) in
  let worst = d ~seed:(Process.corner hot Process.Ss) hot 0.72 in
  let best = d ~seed:(Process.corner cold Process.Ff) cold 0.88 in
  Alcotest.(check bool) "worst > typ" true (worst > tt);
  Alcotest.(check bool) "best < typ" true (best < tt);
  Alcotest.(check bool) "meaningful spread" true (worst > 1.5 *. best)

let test_point_vec_roundtrip () =
  let v = Harness.vec_of_point mid_point in
  let p = Harness.point_of_vec v in
  Alcotest.(check bool) "roundtrip" true (p = mid_point)

(* ------------------------------------------------------------------ *)
(* Nldm *)

let test_design_levels () =
  let box = Tech.input_box tech in
  let l = Nldm.design_levels ~budget:60 ~box in
  let product = l.(0) * l.(1) * l.(2) in
  Alcotest.(check bool) "within budget" true (product <= 60);
  Alcotest.(check bool) "uses most of it" true (product >= 48);
  let one = Nldm.design_levels ~budget:1 ~box in
  Alcotest.(check (array int)) "budget 1" [| 1; 1; 1 |] one

let test_lut_exact_at_grid_points () =
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let t = Nldm.build tech arc ~levels:[| 2; 2; 2 |] in
  (* At a grid corner the interpolation must reproduce the simulation. *)
  let p =
    {
      Harness.sin = t.Nldm.sin_axis.(0);
      cload = t.Nldm.cload_axis.(1);
      vdd = t.Nldm.vdd_axis.(0);
    }
  in
  check_close ~tol:1e-18 "exact at node" t.Nldm.td.(0).(1).(0)
    (Nldm.lookup_td t p);
  check_close ~tol:1e-18 "slew exact at node" t.Nldm.sout.(0).(1).(0)
    (Nldm.lookup_sout t p)

let test_lut_interpolates_between () =
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let t = Nldm.build tech arc ~levels:[| 2; 2; 2 |] in
  let p =
    {
      Harness.sin = 0.5 *. (t.Nldm.sin_axis.(0) +. t.Nldm.sin_axis.(1));
      cload = t.Nldm.cload_axis.(0);
      vdd = t.Nldm.vdd_axis.(0);
    }
  in
  let v = Nldm.lookup_td t p in
  let lo = Float.min t.Nldm.td.(0).(0).(0) t.Nldm.td.(1).(0).(0) in
  let hi = Float.max t.Nldm.td.(0).(0).(0) t.Nldm.td.(1).(0).(0) in
  Alcotest.(check bool) "between corners" true (v >= lo && v <= hi)

let test_lut_energy_lookup () =
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Rise in
  let t = Nldm.build tech arc ~levels:[| 2; 2; 2 |] in
  let p =
    {
      Harness.sin = t.Nldm.sin_axis.(1);
      cload = t.Nldm.cload_axis.(0);
      vdd = t.Nldm.vdd_axis.(1);
    }
  in
  check_close ~tol:1e-22 "energy exact at node" t.Nldm.energy.(1).(0).(1)
    (Nldm.lookup_energy t p);
  Alcotest.(check bool) "positive" true (Nldm.lookup_energy t p > 0.0)

let prop_design_levels_budget =
  QCheck.Test.make ~name:"design_levels respects and uses the budget"
    ~count:60
    QCheck.(int_range 1 150)
    (fun budget ->
      let box = Tech.input_box tech in
      let l = Nldm.design_levels ~budget ~box in
      let product = l.(0) * l.(1) * l.(2) in
      product <= budget
      && product >= max 1 (budget / 2)
      && Array.for_all (fun x -> x >= 1) l)

let test_lut_singleton_axis () =
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let t = Nldm.build tech arc ~levels:[| 2; 2; 1 |] in
  Alcotest.(check int) "size" 4 (Nldm.size t);
  (* Constant along the singleton vdd axis. *)
  let p1 = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.7 } in
  let p2 = { p1 with Harness.vdd = 1.0 } in
  check_close ~tol:1e-18 "constant along vdd" (Nldm.lookup_td t p1)
    (Nldm.lookup_td t p2)

let test_library_characterize () =
  Harness.reset_sim_count ();
  let lib =
    Library.characterize ~cells:[ Cells.inv ] tech ~levels:[| 2; 2; 1 |]
  in
  Alcotest.(check int) "2 arcs" 2 (List.length lib.Library.entries);
  Alcotest.(check int) "cost = 2 arcs x 4 points" 8 lib.Library.sim_runs;
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let d = Library.delay lib arc mid_point in
  Alcotest.(check bool) "delay positive" true (d > 0.0);
  (match Library.find lib ~cell:"INV" ~pin:"A" ~out_dir:Arc.Rise with
  | Some _ -> ()
  | None -> Alcotest.fail "arc missing");
  Alcotest.(check bool) "summary renders" true
    (String.length (Format.asprintf "%a" Library.summary lib) > 0)

(* ------------------------------------------------------------------ *)
(* Ring oscillator *)

let test_ring_oscillates () =
  let r = Ring.simulate tech ~vdd:0.8 in
  Alcotest.(check bool) "frequency in range" true
    (r.Ring.frequency > 1e9 && r.Ring.frequency < 1e11);
  Alcotest.(check bool) "several cycles" true (r.Ring.cycles_measured >= 3)

let test_ring_stage_delay_consistent () =
  (* Stage delay is a ring-length invariant. *)
  let r5 = Ring.simulate ~stages:5 tech ~vdd:0.8 in
  let r9 = Ring.simulate ~stages:9 tech ~vdd:0.8 in
  let rel =
    Float.abs (r5.Ring.stage_delay -. r9.Ring.stage_delay)
    /. r5.Ring.stage_delay
  in
  Alcotest.(check bool)
    (Printf.sprintf "5 vs 9 stages within 10%% (got %.1f%%)" (100.0 *. rel))
    true (rel < 0.10);
  (* And matches the characterized INV delay at ring-like conditions to
     within the slew/load approximation. *)
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let load =
    Equivalent.input_cap tech Cells.inv ~pin:"A"
  in
  let m =
    Harness.simulate tech arc
      { Harness.sin = 2.0 *. r5.Ring.stage_delay; cload = load; vdd = 0.8 }
  in
  let rel2 =
    Float.abs (r5.Ring.stage_delay -. m.Harness.td) /. m.Harness.td
  in
  Alcotest.(check bool)
    (Printf.sprintf "ring vs characterized INV within 50%% (got %.0f%%)"
       (100.0 *. rel2))
    true (rel2 < 0.5)

let test_ring_slows_down () =
  let nominal = Ring.simulate tech ~vdd:0.8 in
  let low_v = Ring.simulate tech ~vdd:0.7 in
  let loaded = Ring.simulate ~extra_load:1e-15 tech ~vdd:0.8 in
  Alcotest.(check bool) "low vdd slower" true
    (low_v.Ring.period > nominal.Ring.period);
  Alcotest.(check bool) "extra load slower" true
    (loaded.Ring.period > nominal.Ring.period)

let test_ring_validation () =
  Alcotest.check_raises "even ring"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Ring.simulate" "stages must be odd and >= 3")) (fun () ->
      ignore (Ring.simulate ~stages:4 tech ~vdd:0.8));
  Alcotest.check_raises "bad vdd"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Ring.simulate" "vdd must be > 0")) (fun () ->
      ignore (Ring.simulate tech ~vdd:0.0))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_equivalent_width_positive_when_conducting =
  QCheck.Test.make ~name:"conducting network has positive width" ~count:100
    QCheck.(int_bound 7)
    (fun mask ->
      let on pin =
        match pin with
        | "A" -> mask land 1 <> 0
        | "B" -> mask land 2 <> 0
        | _ -> mask land 4 <> 0
      in
      List.for_all
        (fun cell ->
          let net = cell.Cells.pull_down in
          let w = Topology.equivalent_width_mult net ~on in
          if Topology.conducts net ~on then w > 0.0 else w = 0.0)
        Cells.all)

(* ------------------------------------------------------------------ *)
(* Batched harness: simulate_batch must be observationally identical to
   one scalar [simulate] per lane. *)

let batch_arc () = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall

let batch_lanes () =
  let rng = Rng.create 11 in
  let seeds = Process.sample_batch rng tech 2 in
  let seeds = Array.append [| Process.nominal |] seeds in
  let points =
    [|
      { Harness.sin = 3e-12; cload = 1e-15; vdd = 0.8 };
      { Harness.sin = 8e-12; cload = 4e-15; vdd = 0.7 };
    |]
  in
  Array.init
    (Array.length seeds * Array.length points)
    (fun i -> (seeds.(i / 2), points.(i mod 2)))

let check_measurement_equal l (s : Harness.measurement) = function
  | Error e ->
    Alcotest.failf "lane %d failed: %s" l (Printexc.to_string e)
  | Ok (b : Harness.measurement) ->
    check_close ~tol:0.0 (Printf.sprintf "lane %d td" l) s.Harness.td
      b.Harness.td;
    check_close ~tol:0.0 (Printf.sprintf "lane %d sout" l) s.Harness.sout
      b.Harness.sout;
    check_close ~tol:0.0 (Printf.sprintf "lane %d energy" l) s.Harness.energy
      b.Harness.energy;
    Alcotest.(check int)
      (Printf.sprintf "lane %d newton iters" l)
      s.Harness.newton_iters b.Harness.newton_iters;
    Alcotest.(check int)
      (Printf.sprintf "lane %d time steps" l)
      s.Harness.time_steps b.Harness.time_steps;
    Alcotest.(check int)
      (Printf.sprintf "lane %d retries" l)
      s.Harness.retries b.Harness.retries;
    Alcotest.(check bool)
      (Printf.sprintf "lane %d degraded" l)
      s.Harness.degraded b.Harness.degraded;
    Alcotest.(check (list string))
      (Printf.sprintf "lane %d recovery" l)
      s.Harness.recovery b.Harness.recovery

let test_simulate_batch_matches_scalar () =
  let arc = batch_arc () in
  let lanes = batch_lanes () in
  let scalar =
    Array.map (fun (seed, pt) -> Harness.simulate ~seed tech arc pt) lanes
  in
  let batch = Harness.simulate_batch tech arc lanes in
  Array.iteri (fun l r -> check_measurement_equal l scalar.(l) r) batch;
  (* Forcing tiny chunks exercises the chunk-split + domain-pool path
     and must not change anything either. *)
  let chunked = Harness.simulate_batch ~chunk:2 tech arc lanes in
  Array.iteri (fun l r -> check_measurement_equal l scalar.(l) r) chunked

let test_simulate_batch_counts () =
  (* One counted simulation per lane per attempt, in both the global
     sim counter and the telemetry stream — batching must not merge
     per-seed accounting into per-batch accounting. *)
  let arc = batch_arc () in
  let lanes = batch_lanes () in
  Harness.reset_sim_count ();
  Array.iter
    (fun (seed, pt) -> ignore (Harness.simulate ~seed tech arc pt))
    lanes;
  let scalar_sims = Harness.sim_count () in
  Harness.reset_sim_count ();
  let module T = Slc_obs.Telemetry in
  let tel_before = if T.on () then T.read T.simulations else 0 in
  ignore (Harness.simulate_batch tech arc lanes);
  Alcotest.(check int) "sim_count: one per lane" scalar_sims
    (Harness.sim_count ());
  if T.on () then
    Alcotest.(check int) "telemetry simulations: one per lane" scalar_sims
      (T.read T.simulations - tel_before)

let test_simulate_batch_fault_peel () =
  (* A fault injected into one lane must fail only that lane, with the
     scalar path's exact payload, while the other lanes complete
     undegraded and bitwise-equal to their scalar runs. *)
  let arc = batch_arc () in
  let lanes = batch_lanes () in
  let _, bad_point = lanes.(2) in
  let bad_seed, _ = lanes.(2) in
  Fun.protect
    ~finally:(fun () -> Harness.set_fault_injector None)
    (fun () ->
      let scalar =
        Array.map
          (fun (seed, pt) -> Harness.simulate ~seed tech arc pt)
          lanes
      in
      Harness.set_fault_injector
        (Some (fun seed pt -> seed == bad_seed && pt = bad_point));
      let batch = Harness.simulate_batch tech arc lanes in
      Array.iteri
        (fun l r ->
          if l = 2 then
            match r with
            | Ok _ -> Alcotest.fail "faulted lane should not succeed"
            | Error (Slc_obs.Slc_error.No_convergence d) ->
              Alcotest.(check (list string))
                "injected-fault recovery tag" [ "injected-fault" ]
                d.Slc_obs.Slc_error.recovery
            | Error e ->
              Alcotest.failf "unexpected failure: %s" (Printexc.to_string e)
          else check_measurement_equal l scalar.(l) r)
        batch)

let test_simulate_batch_invalid_lane () =
  let arc = batch_arc () in
  let lanes = batch_lanes () in
  let mixed = Array.copy lanes in
  mixed.(1) <- (Process.nominal, { mid_point with Harness.sin = 0.0 });
  let batch = Harness.simulate_batch tech arc mixed in
  (match batch.(1) with
  | Error (Slc_obs.Slc_error.Invalid_input _) -> ()
  | Error e -> Alcotest.failf "unexpected failure: %s" (Printexc.to_string e)
  | Ok _ -> Alcotest.fail "invalid lane should not succeed");
  Array.iteri
    (fun l r ->
      if l <> 1 then
        let seed, pt = mixed.(l) in
        check_measurement_equal l (Harness.simulate ~seed tech arc pt) r)
    batch

let () =
  Alcotest.run "slc_cell"
    [
      ( "topology",
        [
          Alcotest.test_case "pins order" `Quick test_pins_order;
          Alcotest.test_case "conduction" `Quick test_conducts;
          Alcotest.test_case "equivalent widths" `Quick test_equivalent_width;
          Alcotest.test_case "validation" `Quick test_validate;
          QCheck_alcotest.to_alcotest
            prop_equivalent_width_positive_when_conducting;
        ] );
      ( "cells",
        [
          Alcotest.test_case "complementary networks" `Quick
            test_all_cells_complementary;
          Alcotest.test_case "logic truth tables" `Quick test_logic_values;
          Alcotest.test_case "lookup by name" `Quick test_by_name;
          Alcotest.test_case "4-input cells" `Quick test_four_input_cells;
        ] );
      ( "arc",
        [
          Alcotest.test_case "arc counts" `Quick test_arc_counts;
          Alcotest.test_case "non-controlling side values" `Quick
            test_arc_side_values;
          Alcotest.test_case "direction semantics" `Quick
            test_arc_direction_semantics;
          Alcotest.test_case "unknown pin" `Quick test_arc_unknown_pin;
          Alcotest.test_case "naming" `Quick test_arc_name;
        ] );
      ( "equivalent",
        [
          Alcotest.test_case "inverter widths" `Quick
            test_equivalent_inverter_widths;
          Alcotest.test_case "stack factor derates" `Quick
            test_stack_factor_derates;
          Alcotest.test_case "seed shifts ieff" `Quick test_ieff_with_seed_shifts;
          Alcotest.test_case "input cap closed form" `Quick
            test_input_cap_closed_form;
          Alcotest.test_case "library missing arc" `Quick
            test_library_missing_arc_raises;
        ] );
      ( "harness",
        [
          Alcotest.test_case "all sampled cells simulate" `Slow
            test_simulate_all_cells_mid_point;
          Alcotest.test_case "delay monotone in cload" `Quick
            test_delay_monotone_in_cload;
          Alcotest.test_case "delay decreases with vdd" `Quick
            test_delay_decreases_with_vdd;
          Alcotest.test_case "delay increases with sin" `Quick
            test_delay_increases_with_sin;
          Alcotest.test_case "cached simulate = uncached reference" `Slow
            test_simulate_matches_uncached_reference;
          Alcotest.test_case "seed changes delay" `Quick test_seed_changes_delay;
          Alcotest.test_case "deterministic" `Quick test_simulation_deterministic;
          Alcotest.test_case "sim counter" `Quick test_sim_counter;
          Alcotest.test_case "invalid point" `Quick test_invalid_point_rejected;
          Alcotest.test_case "point/vec roundtrip" `Quick
            test_point_vec_roundtrip;
          Alcotest.test_case "switching energy physics" `Quick
            test_energy_physics;
          Alcotest.test_case "energy grows with vdd" `Quick
            test_energy_grows_with_vdd;
          Alcotest.test_case "PVT corner ordering" `Quick test_pvt_ordering;
        ] );
      ( "batch harness",
        [
          Alcotest.test_case "simulate_batch = scalar simulate" `Quick
            test_simulate_batch_matches_scalar;
          Alcotest.test_case "one counted sim per lane" `Quick
            test_simulate_batch_counts;
          Alcotest.test_case "injected fault peels one lane" `Quick
            test_simulate_batch_fault_peel;
          Alcotest.test_case "invalid lane among valid" `Quick
            test_simulate_batch_invalid_lane;
        ] );
      ( "ring",
        [
          Alcotest.test_case "oscillates" `Quick test_ring_oscillates;
          Alcotest.test_case "stage delay consistent" `Slow
            test_ring_stage_delay_consistent;
          Alcotest.test_case "slows with vdd and load" `Slow
            test_ring_slows_down;
          Alcotest.test_case "validation" `Quick test_ring_validation;
        ] );
      ( "nldm",
        [
          Alcotest.test_case "design levels" `Quick test_design_levels;
          Alcotest.test_case "exact at grid nodes" `Quick
            test_lut_exact_at_grid_points;
          Alcotest.test_case "interpolates between" `Quick
            test_lut_interpolates_between;
          Alcotest.test_case "singleton axis" `Quick test_lut_singleton_axis;
          Alcotest.test_case "energy table" `Quick test_lut_energy_lookup;
          QCheck_alcotest.to_alcotest prop_design_levels_budget;
          Alcotest.test_case "library characterization" `Quick
            test_library_characterize;
        ] );
    ]
