(* Tests for sequential-cell (DFF) characterization. *)

module Tech = Slc_device.Tech
open Slc_cell

let tech = Tech.n14

let vdd = 0.8

let test_capture_with_early_data () =
  let r = Seq.simulate_capture tech ~vdd ~data_rises:true ~d_to_clk:40e-12 in
  Alcotest.(check bool) "captured" true r.Seq.captured;
  Alcotest.(check bool) "q at rail" true (r.Seq.q_final > 0.95 *. vdd);
  match r.Seq.clk_to_q with
  | Some d ->
    Alcotest.(check bool)
      (Printf.sprintf "clk-to-q plausible (%.1f ps)" (d *. 1e12))
      true
      (d > 5e-12 && d < 8e-11)
  | None -> Alcotest.fail "expected a clk-to-q delay"

let test_capture_fails_with_late_data () =
  let r = Seq.simulate_capture tech ~vdd ~data_rises:true ~d_to_clk:(-10e-12) in
  Alcotest.(check bool) "not captured" false r.Seq.captured;
  Alcotest.(check bool) "q stays low" true (r.Seq.q_final < 0.05 *. vdd)

let test_capture_falling_data () =
  let r = Seq.simulate_capture tech ~vdd ~data_rises:false ~d_to_clk:40e-12 in
  Alcotest.(check bool) "captured zero" true r.Seq.captured;
  Alcotest.(check bool) "q low" true (r.Seq.q_final < 0.15 *. vdd)

let test_setup_time_properties () =
  let ts = Seq.setup_time ~resolution:2e-13 tech ~vdd ~data_rises:true in
  Alcotest.(check bool)
    (Printf.sprintf "setup positive and small (%.2f ps)" (ts *. 1e12))
    true
    (ts > 0.0 && ts < 2e-11);
  (* Verification at the boundary: a bit more margin captures, a bit
     less fails. *)
  Alcotest.(check bool) "captures just above" true
    (Seq.simulate_capture tech ~vdd ~data_rises:true ~d_to_clk:(ts +. 1e-12)).Seq.captured;
  Alcotest.(check bool) "fails just below" false
    (Seq.simulate_capture tech ~vdd ~data_rises:true ~d_to_clk:(ts -. 1e-12)).Seq.captured

let test_setup_grows_at_low_vdd () =
  let nominal = Seq.setup_time ~resolution:2e-13 tech ~vdd ~data_rises:true in
  let low = Seq.setup_time ~resolution:2e-13 tech ~vdd:0.68 ~data_rises:true in
  Alcotest.(check bool)
    (Printf.sprintf "low vdd slower (%.2f vs %.2f ps)" (low *. 1e12)
       (nominal *. 1e12))
    true (low > nominal)

let test_hold_time () =
  let h = Seq.hold_time ~resolution:2e-13 tech ~vdd ~data_rises:true in
  Alcotest.(check bool)
    (Printf.sprintf "hold in a sane window (%.2f ps)" (h *. 1e12))
    true
    (h > -1.5e-11 && h < 2e-11);
  (* Setup and hold are measured under different arrival conditions
     (hold uses a very early data arrival), so the sum is not
     constrained; but the hold boundary must be real: holding a little
     longer captures, releasing a little earlier fails. *)
  Alcotest.(check bool) "captures just above" true
    (Seq.simulate_capture_gen ~d_revert:(h +. 1e-12) tech ~vdd
       ~data_rises:true ~d_to_clk:30e-12)
      .Seq.captured;
  Alcotest.(check bool) "fails just below" false
    (Seq.simulate_capture_gen ~d_revert:(h -. 1e-12) tech ~vdd
       ~data_rises:true ~d_to_clk:30e-12)
      .Seq.captured

let test_input_validation () =
  Alcotest.check_raises "bad vdd"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Seq.simulate_capture" "vdd must be > 0")) (fun () ->
      ignore (Seq.simulate_capture tech ~vdd:0.0 ~data_rises:true ~d_to_clk:0.0));
  Alcotest.check_raises "data before priming pulse"
    (Slc_obs.Slc_error.Invalid_input (Slc_obs.Slc_error.invalid ~site:"Seq.simulate_capture" "data edge would precede the priming pulse"))
    (fun () ->
      ignore
        (Seq.simulate_capture tech ~vdd ~data_rises:true ~d_to_clk:60e-12))

let () =
  Alcotest.run "seq"
    [
      ( "dff",
        [
          Alcotest.test_case "captures early data" `Quick
            test_capture_with_early_data;
          Alcotest.test_case "misses late data" `Quick
            test_capture_fails_with_late_data;
          Alcotest.test_case "captures falling data" `Quick
            test_capture_falling_data;
          Alcotest.test_case "setup time boundary" `Slow
            test_setup_time_properties;
          Alcotest.test_case "setup grows at low vdd" `Slow
            test_setup_grows_at_low_vdd;
          Alcotest.test_case "hold time" `Slow test_hold_time;
          Alcotest.test_case "input validation" `Quick test_input_validation;
        ] );
    ]
