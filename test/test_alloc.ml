(* Allocation regression gate for the transient hot path.

   A warmed [Harness.simulate] (template compiled, workspaces cached)
   allocates ~32.6k minor words per call, essentially all of it in the
   waveform recording and measurement layers — the Newton/stamp/LU core
   is allocation-free (see [@slc.hot] and lint rule R3).  The budget
   below is that measurement plus 10% headroom: a regression that puts
   boxing back into the solver loop costs hundreds of kwords per call
   and trips this immediately, while legitimate small changes to the
   measurement layer fit inside the slack. *)

module Tech = Slc_device.Tech
module Harness = Slc_cell.Harness
module Arc = Slc_cell.Arc
module Cells = Slc_cell.Cells

let budget_words = 36_300.0

let test_warm_simulate_allocation () =
  let tech = Tech.n14 in
  let arc = List.hd (Arc.all_of_cell Cells.inv) in
  let point = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 } in
  (* Two warm-up calls: the first builds and caches the compiled
     template, the second settles any lazy one-time state. *)
  ignore (Harness.simulate tech arc point);
  ignore (Harness.simulate tech arc point);
  let before = Gc.minor_words () in
  ignore (Harness.simulate tech arc point);
  let delta = Gc.minor_words () -. before in
  if delta > budget_words then
    Alcotest.failf
      "warmed Harness.simulate allocated %.0f minor words (budget %.0f): \
       boxing crept back into the transient hot path"
      delta budget_words

let test_warm_simulate_is_cached () =
  let tech = Tech.n14 in
  let arc = List.hd (Arc.all_of_cell Cells.nand2) in
  let point = { Harness.sin = 5e-12; cload = 2e-15; vdd = 0.8 } in
  ignore (Harness.simulate tech arc point);
  let hits0 = Slc_obs.Telemetry.read Slc_obs.Telemetry.template_hits in
  ignore (Harness.simulate tech arc point);
  let hits1 = Slc_obs.Telemetry.read Slc_obs.Telemetry.template_hits in
  (* Telemetry may be disabled in this environment; only assert when the
     counters are live, otherwise the allocation gate above still holds. *)
  if Slc_obs.Telemetry.on () then
    Alcotest.(check bool)
      "second simulate reuses the compiled template" true (hits1 > hits0)

(* A warmed 16-lane [Harness.simulate_batch] measures ~7.9k minor words
   per lane — under a quarter of the scalar figure, since waveform rows
   are buffered in flat float slabs and the per-call option/netlist
   plumbing is paid once per batch.  Gate at measurement + ~15%. *)
let batch_budget_words = 9_200.0

let test_warm_batch_allocation () =
  (* Per-lane allocation of a warmed [simulate_batch]: the SoA batch
     engine amortizes workspace and template setup across the batch, so
     each lane must land well below the scalar per-call budget. *)
  let tech = Tech.n14 in
  let arc = List.hd (Arc.all_of_cell Cells.inv) in
  let lanes =
    Array.init 16 (fun i ->
        ( Slc_device.Process.nominal,
          {
            Harness.sin = 5e-12;
            cload = 2e-15 *. (1.0 +. (0.02 *. float_of_int i));
            vdd = 0.8;
          } ))
  in
  ignore (Harness.simulate_batch tech arc lanes);
  ignore (Harness.simulate_batch tech arc lanes);
  let before = Gc.minor_words () in
  ignore (Harness.simulate_batch tech arc lanes);
  let per_lane =
    (Gc.minor_words () -. before) /. float_of_int (Array.length lanes)
  in
  if per_lane > batch_budget_words then
    Alcotest.failf
      "warmed Harness.simulate_batch allocated %.0f minor words per lane \
       (budget %.0f): boxing crept back into the batch hot path"
      per_lane batch_budget_words

let () =
  Alcotest.run "alloc"
    [
      ( "transient",
        [
          Alcotest.test_case "warmed simulate fits budget" `Quick
            test_warm_simulate_allocation;
          Alcotest.test_case "template cache hit" `Quick
            test_warm_simulate_is_cached;
          Alcotest.test_case "warmed batch fits per-lane budget" `Quick
            test_warm_batch_allocation;
        ] );
    ]
