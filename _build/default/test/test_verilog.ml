(* Tests for the structural-Verilog subset reader. *)

module Tech = Slc_device.Tech
open Slc_cell
open Slc_ssta

let tech = Tech.n14

let vdd = 0.8

let src =
  {|
// a small cone of logic
module top (a, b, out);
  input a, b;
  output out;
  wire n1, n2;
  NAND2 u1 (.A(a), .B(b), .Y(n1));
  INV   u2 (.A(a), .Y(n2));
  NOR2  u3 (.A(n1), .B(n2), .Y(out));
endmodule
|}

let test_parse_structure () =
  let v = Verilog.parse src in
  Alcotest.(check string) "module name" "top" v.Verilog.module_name;
  Alcotest.(check (list string)) "inputs" [ "a"; "b" ] v.Verilog.inputs;
  Alcotest.(check (list string)) "outputs" [ "out" ] v.Verilog.outputs;
  Alcotest.(check (list string)) "wires" [ "n1"; "n2" ] v.Verilog.wires;
  Alcotest.(check int) "instances" 3 (List.length v.Verilog.instances);
  let u3 =
    List.find (fun i -> i.Verilog.instance_name = "u3") v.Verilog.instances
  in
  Alcotest.(check string) "cell" "NOR2" u3.Verilog.cell_name;
  Alcotest.(check (option string)) "pin A" (Some "n1")
    (List.assoc_opt "A" u3.Verilog.connections)

let test_parse_errors () =
  let bad s =
    match Verilog.parse s with
    | exception Verilog.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "garbage" true (bad "hello world");
  Alcotest.(check bool) "missing endmodule" true
    (bad "module m (a); input a;");
  Alcotest.(check bool) "undeclared net" true
    (bad "module m (a); input a; INV u (.A(a), .Y(zz)); endmodule");
  Alcotest.(check bool) "double declaration" true
    (bad "module m (a); input a; wire a; endmodule");
  Alcotest.(check bool) "undeclared port" true
    (bad "module m (a, q); input a; endmodule")

let test_out_of_order_instances () =
  (* u2 consumes u1's output but is written first. *)
  let v =
    Verilog.parse
      {|module m (a, out);
         input a; output out; wire n1;
         INV u2 (.A(n1), .Y(out));
         INV u1 (.A(a), .Y(n1));
       endmodule|}
  in
  let dag, _, outs = Verilog.to_sdag v tech ~vdd in
  let oracle = Oracle.of_simulator tech in
  let input_arrivals _ = Sdag.input_edge ~at:0.0 ~slew:5e-12 ~rises:true in
  let out = List.assoc "out" outs in
  let arr = Sdag.analyze dag oracle ~input_arrivals out in
  Alcotest.(check bool) "two inverters restore the edge" true
    (Sdag.at_edge arr ~rises:true <> None)

let test_to_sdag_matches_manual () =
  let v = Verilog.parse src in
  let dag, _, outs = Verilog.to_sdag v tech ~vdd in
  let out = List.assoc "out" outs in
  (* Hand-built equivalent. *)
  let dag2 = Sdag.create tech ~vdd in
  let a = Sdag.input dag2 "a" in
  let b = Sdag.input dag2 "b" in
  let n1 = Sdag.gate dag2 Cells.nand2 ~pins:[ ("A", a); ("B", b) ] "n1" in
  let n2 = Sdag.gate dag2 Cells.inv ~pins:[ ("A", a) ] "n2" in
  let out2 = Sdag.gate dag2 Cells.nor2 ~pins:[ ("A", n1); ("B", n2) ] "out" in
  let oracle = Oracle.of_simulator tech in
  let input_arrivals _ = Sdag.input_edge ~at:0.0 ~slew:5e-12 ~rises:true in
  let e1 = Sdag.at_edge (Sdag.analyze dag oracle ~input_arrivals out) ~rises:true in
  let e2 =
    Sdag.at_edge (Sdag.analyze dag2 oracle ~input_arrivals out2) ~rises:true
  in
  match (e1, e2) with
  | Some x, Some y ->
    Alcotest.(check (float 1e-15)) "same arrival" y.Sdag.at x.Sdag.at
  | _ -> Alcotest.fail "expected arrivals on both"

let test_semantic_errors () =
  let bad s =
    match Verilog.to_sdag (Verilog.parse s) tech ~vdd with
    | exception Verilog.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown cell" true
    (bad "module m (a, q); input a; output q; XOR7 u (.A(a), .Y(q)); endmodule");
  Alcotest.(check bool) "no Y pin" true
    (bad "module m (a, q); input a; output q; INV u (.A(a)); endmodule");
  Alcotest.(check bool) "missing pin" true
    (bad
       "module m (a, q); input a; output q; NAND2 u (.A(a), .Y(q)); endmodule");
  Alcotest.(check bool) "multiply driven" true
    (bad
       "module m (a, q); input a; output q; INV u1 (.A(a), .Y(q)); INV u2 \
        (.A(a), .Y(q)); endmodule");
  Alcotest.(check bool) "drives an input" true
    (bad "module m (a, q); input a; output q; INV u (.A(q), .Y(a)); endmodule");
  Alcotest.(check bool) "combinational loop" true
    (bad
       "module m (a, q); input a; output q; wire n1; INV u1 (.A(n1), .Y(q)); \
        INV u2 (.A(q), .Y(n1)); endmodule");
  Alcotest.(check bool) "undriven output" true
    (bad "module m (a, q); input a; output q; endmodule")

let test_slack_through_netlist () =
  let v = Verilog.parse src in
  let dag, _, outs = Verilog.to_sdag v tech ~vdd in
  let out = List.assoc "out" outs in
  let oracle = Oracle.of_simulator tech in
  let input_arrivals _ = Sdag.input_edge ~at:0.0 ~slew:5e-12 ~rises:true in
  let rows =
    Sdag.slack_report dag oracle ~input_arrivals ~outputs:[ (out, 50e-12) ]
  in
  Alcotest.(check bool) "rows exist" true (List.length rows >= 3);
  (* Sorted most-critical first. *)
  let slacks = List.map (fun r -> r.Sdag.slack) rows in
  Alcotest.(check bool) "sorted" true (List.sort compare slacks = slacks)

let () =
  Alcotest.run "verilog"
    [
      ( "parser",
        [
          Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "sdag",
        [
          Alcotest.test_case "out-of-order instances" `Quick
            test_out_of_order_instances;
          Alcotest.test_case "matches manual DAG" `Quick
            test_to_sdag_matches_manual;
          Alcotest.test_case "semantic errors" `Quick test_semantic_errors;
          Alcotest.test_case "slack report" `Quick test_slack_through_netlist;
        ] );
    ]
