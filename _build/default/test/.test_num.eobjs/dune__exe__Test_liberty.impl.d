test/test_liberty.ml: Alcotest Arc Array Cells Float Lazy Liberty Library List Nldm Option Printf Slc_cell Slc_device String
