test/test_prob.ml: Alcotest Array Describe Dist Float Histogram Kde List Mvn Printf QCheck QCheck_alcotest Rng Sampling Slc_num Slc_prob Stattest
