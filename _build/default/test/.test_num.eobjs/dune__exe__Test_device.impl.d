test/test_device.ml: Alcotest Array Float List Mosfet Process QCheck QCheck_alcotest Slc_device Slc_prob Tech
