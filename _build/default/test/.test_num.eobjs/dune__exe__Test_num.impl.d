test/test_num.ml: Alcotest Array Float Interp Linalg List Mat Parallel Printf QCheck QCheck_alcotest Quadrature Slc_num Slc_prob Special Vec
