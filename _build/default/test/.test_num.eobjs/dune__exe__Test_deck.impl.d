test/test_deck.ml: Alcotest Deck Float List Netlist Slc_device Slc_spice String Transient Waveform
