test/test_ssta.mli:
