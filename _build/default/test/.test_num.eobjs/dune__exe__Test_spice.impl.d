test/test_spice.ml: Alcotest Array Float Format List Netlist Printf QCheck QCheck_alcotest Slc_device Slc_num Slc_prob Slc_spice Stimulus String Transient Waveform
