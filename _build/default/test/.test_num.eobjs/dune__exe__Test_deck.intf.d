test/test_deck.mli:
