test/test_cell.ml: Alcotest Arc Array Cells Equivalent Float Format Harness Library List Nldm Printf QCheck QCheck_alcotest Ring Slc_cell Slc_device Slc_prob String Topology
