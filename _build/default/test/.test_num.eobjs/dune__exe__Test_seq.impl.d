test/test_seq.ml: Alcotest Printf Seq Slc_cell Slc_device
