test/test_verilog.ml: Alcotest Cells List Oracle Sdag Slc_cell Slc_device Slc_ssta Verilog
