(* Tests for Liberty (.lib) export and import. *)

module Tech = Slc_device.Tech
open Slc_cell

let tech = Tech.n14

let small_lib =
  lazy (Library.characterize ~cells:[ Cells.inv; Cells.nand2 ] tech ~levels:[| 3; 3; 2 |])

let liberty_text = lazy (Liberty.to_string ~vdd:0.8 (Lazy.force small_lib))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let test_writer_emits_structure () =
  let s = Lazy.force liberty_text in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true
        (contains s fragment))
    [
      "library (n14)"; "cell (INV)"; "cell (NAND2)"; "pin (A)"; "pin (Y)";
      "related_pin"; "cell_rise"; "cell_fall"; "rise_transition";
      "fall_transition"; "index_1"; "index_2"; "values"; "capacitance";
    ]

let test_parse_roundtrip_structure () =
  let parsed = Liberty.parse (Lazy.force liberty_text) in
  Alcotest.(check string) "library name" "n14" parsed.Liberty.library_name;
  Alcotest.(check (float 1e-6)) "nom voltage" 0.8 parsed.Liberty.nom_voltage;
  Alcotest.(check int) "two cells" 2 (List.length parsed.Liberty.cells);
  let nand2 =
    List.find (fun c -> c.Liberty.cell_name = "NAND2") parsed.Liberty.cells
  in
  Alcotest.(check int) "two input pins with caps" 2
    (List.length nand2.Liberty.pin_caps);
  Alcotest.(check int) "two timing groups" 2
    (List.length nand2.Liberty.timings)

let test_roundtrip_values_exact () =
  let lib = Lazy.force small_lib in
  let parsed = Liberty.parse (Lazy.force liberty_text) in
  let e =
    Option.get (Library.find lib ~cell:"NAND2" ~pin:"A" ~out_dir:Arc.Fall)
  in
  (* Query at a grid node so both sides are interpolation-free; the
     nearest-vdd slice for vdd=0.8 is whatever index the writer chose,
     so compare on the sliced data by querying the Liberty side and the
     table side at the same slice. *)
  let vdd_axis = e.Library.table.Nldm.vdd_axis in
  let vi = if Array.length vdd_axis = 1 then 0 else if Float.abs (vdd_axis.(0) -. 0.8) <= Float.abs (vdd_axis.(1) -. 0.8) then 0 else 1 in
  let sin = e.Library.table.Nldm.sin_axis.(1) in
  let cload = e.Library.table.Nldm.cload_axis.(2) in
  let expected = e.Library.table.Nldm.td.(1).(2).(vi) in
  match
    Liberty.lookup parsed ~cell:"NAND2" ~related_pin:"A" ~rising:false ~sin
      ~cload
  with
  | Some (d, _) ->
    (* 4 decimal digits of ps in the text format. *)
    Alcotest.(check (float 1e-15)) "value roundtrip" expected d
  | None -> Alcotest.fail "arc missing after roundtrip"

let test_lookup_interpolates () =
  let parsed = Liberty.parse (Lazy.force liberty_text) in
  match
    Liberty.lookup parsed ~cell:"INV" ~related_pin:"A" ~rising:true
      ~sin:4.2e-12 ~cload:2.3e-15
  with
  | Some (d, tr) ->
    Alcotest.(check bool) "positive" true (d > 0.0 && tr > 0.0);
    Alcotest.(check bool) "plausible range" true (d > 1e-13 && d < 1e-9)
  | None -> Alcotest.fail "lookup failed"

let test_energy_roundtrip () =
  let lib = Lazy.force small_lib in
  let parsed = Liberty.parse (Lazy.force liberty_text) in
  let e =
    Option.get (Library.find lib ~cell:"INV" ~pin:"A" ~out_dir:Arc.Rise)
  in
  let vdd_axis = e.Library.table.Nldm.vdd_axis in
  let vi =
    if Array.length vdd_axis = 1 then 0
    else if Float.abs (vdd_axis.(0) -. 0.8) <= Float.abs (vdd_axis.(1) -. 0.8)
    then 0
    else 1
  in
  let sin = e.Library.table.Nldm.sin_axis.(0) in
  let cload = e.Library.table.Nldm.cload_axis.(1) in
  let expected = e.Library.table.Nldm.energy.(0).(1).(vi) in
  match
    Liberty.lookup_energy parsed ~cell:"INV" ~related_pin:"A" ~rising:true
      ~sin ~cload
  with
  | Some en ->
    Alcotest.(check bool)
      (Printf.sprintf "energy roundtrip (%.4g vs %.4g)" expected en)
      true
      (Float.abs (en -. expected) < 1e-19 +. (1e-4 *. Float.abs expected))
  | None -> Alcotest.fail "energy table missing"

let test_lookup_missing () =
  let parsed = Liberty.parse (Lazy.force liberty_text) in
  Alcotest.(check bool) "unknown cell" true
    (Liberty.lookup parsed ~cell:"NOR9" ~related_pin:"A" ~rising:true
       ~sin:5e-12 ~cload:2e-15
    = None);
  Alcotest.(check bool) "unknown pin" true
    (Liberty.lookup parsed ~cell:"INV" ~related_pin:"Q" ~rising:true
       ~sin:5e-12 ~cload:2e-15
    = None)

let test_parser_errors () =
  let bad s =
    match Liberty.parse s with
    | exception Liberty.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "garbage" true (bad "not a library");
  Alcotest.(check bool) "unterminated" true (bad "library (x) { cell (A) {");
  Alcotest.(check bool) "bad string" true (bad "library (x) { a : \"unterminated; }")

let test_parser_accepts_comments_and_whitespace () =
  let src =
    "library (demo) {\n/* a comment */  nom_voltage : 1.0;\n\n  cell (INV) \
     {\n    pin (A) { direction : input; capacitance : 0.5; }\n  }\n}"
  in
  let parsed = Liberty.parse src in
  Alcotest.(check string) "name" "demo" parsed.Liberty.library_name;
  Alcotest.(check int) "one cell" 1 (List.length parsed.Liberty.cells)

let () =
  Alcotest.run "liberty"
    [
      ( "writer",
        [ Alcotest.test_case "emits structure" `Slow test_writer_emits_structure ] );
      ( "roundtrip",
        [
          Alcotest.test_case "structure" `Slow test_parse_roundtrip_structure;
          Alcotest.test_case "values exact" `Slow test_roundtrip_values_exact;
          Alcotest.test_case "interpolated lookup" `Slow test_lookup_interpolates;
          Alcotest.test_case "missing arcs" `Slow test_lookup_missing;
          Alcotest.test_case "energy roundtrip" `Slow test_energy_roundtrip;
        ] );
      ( "parser",
        [
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "comments and whitespace" `Quick
            test_parser_accepts_comments_and_whitespace;
        ] );
    ]
