examples/cross_node_transfer.mli:
