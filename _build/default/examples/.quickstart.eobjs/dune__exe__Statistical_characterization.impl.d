examples/statistical_characterization.ml: Array Format Printf Prior Slc_cell Slc_core Slc_device Slc_prob Statistical
