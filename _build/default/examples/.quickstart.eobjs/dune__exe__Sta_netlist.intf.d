examples/sta_netlist.mli:
