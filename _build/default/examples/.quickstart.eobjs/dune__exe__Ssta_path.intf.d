examples/ssta_path.mli:
