examples/pvt_corners.mli:
