examples/pvt_corners.ml: Arc Cells Char_flow Harness Input_space List Printf Prior Slc_cell Slc_core Slc_device
