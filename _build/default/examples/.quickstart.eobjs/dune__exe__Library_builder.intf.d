examples/library_builder.mli:
