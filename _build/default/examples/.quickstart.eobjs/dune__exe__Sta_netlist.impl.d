examples/sta_netlist.ml: Cells Float Harness List Oracle Printf Prior Sdag Slc_cell Slc_core Slc_device Slc_ssta Verilog
