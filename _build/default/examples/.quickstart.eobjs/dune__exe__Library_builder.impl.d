examples/library_builder.ml: Filename Format In_channel List Printf Slc_cell Slc_device Sys Unix
