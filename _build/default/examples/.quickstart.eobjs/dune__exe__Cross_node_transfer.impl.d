examples/cross_node_transfer.ml: Array Char_flow Format Input_space List Printf Prior Slc_cell Slc_core Slc_device Slc_prob String Timing_model
