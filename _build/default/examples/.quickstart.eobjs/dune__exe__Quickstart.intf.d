examples/quickstart.mli:
