examples/quickstart.ml: Array Extract_lse Float Format Input_space Printf Slc_cell Slc_core Slc_device Timing_model
