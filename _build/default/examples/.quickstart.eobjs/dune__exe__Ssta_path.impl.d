examples/ssta_path.ml: Arc Array Cells Chain Format Harness List Oracle Path Printf Prior Slc_cell Slc_core Slc_device Slc_prob Slc_ssta Statistical String Yield
