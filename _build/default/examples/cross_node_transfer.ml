(* Cross-node transfer: the paper's flagship flow.

   Priors for the compact timing model are learned from five older
   technology nodes; a new 14-nm cell is then characterized from just
   TWO additional simulations via MAP estimation, and compared against
   a conventional look-up table given many times that budget.

   Run with: dune exec examples/cross_node_transfer.exe *)

open Slc_core
module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness

let () =
  let target = Tech.n14 in
  let historical = Tech.historical_for target in
  Printf.printf "Target node: %s; historical nodes: %s\n" target.Tech.name
    (String.concat ", " (List.map (fun t -> t.Tech.name) historical));

  (* 1. Learn the prior (in production this is amortized: the old
     libraries were characterized long ago). *)
  Printf.printf "\nLearning priors from historical libraries...\n%!";
  let prior = Prior.learn_pair ~historical () in
  let mu =
    Timing_model.of_vec (prior.Prior.delay.Prior.mvn : Slc_prob.Mvn.t).Slc_prob.Mvn.mu
  in
  Printf.printf "  prior mean (delay): %s\n"
    (Format.asprintf "%a" Timing_model.pp mu);
  Printf.printf "  learned from %d historical arcs, %d simulations\n"
    (List.length prior.Prior.delay.Prior.provenance)
    prior.Prior.delay.Prior.learn_cost;

  (* 2. Characterize a NOR2 arc in the new node with only 2 sims. *)
  let arc = Arc.find Cells.nor2 ~pin:"A" ~out_dir:Arc.Fall in
  Harness.reset_sim_count ();
  let bayes = Char_flow.train_bayes ~prior target arc ~k:2 in
  Printf.printf "\nBayes/MAP characterization of %s: %d simulator runs\n"
    (Arc.name arc) bayes.Char_flow.train_cost;

  (* 3. Conventional LUT with 12x the budget. *)
  let lut = Char_flow.train_lut target arc ~budget:24 in
  Printf.printf "Lookup-table characterization: %d simulator runs\n"
    lut.Char_flow.train_cost;

  (* 4. Score both on a common simulated baseline. *)
  let validation = Input_space.validation_set ~n:150 ~seed:2024 target in
  let ds = Char_flow.simulate_dataset target arc validation in
  let e_bayes = Char_flow.evaluate bayes ds in
  let e_lut = Char_flow.evaluate lut ds in
  Printf.printf "\nValidation on %d random conditions:\n"
    (Array.length validation);
  Printf.printf "  %-22s Td err %6.2f%%   Sout err %6.2f%%  (cost %d)\n"
    "model+bayes (k=2)"
    (100.0 *. e_bayes.Char_flow.td_err)
    (100.0 *. e_bayes.Char_flow.sout_err)
    bayes.Char_flow.train_cost;
  Printf.printf "  %-22s Td err %6.2f%%   Sout err %6.2f%%  (cost %d)\n"
    "lookup table"
    (100.0 *. e_lut.Char_flow.td_err)
    (100.0 *. e_lut.Char_flow.sout_err)
    lut.Char_flow.train_cost;
  if e_bayes.Char_flow.td_err <= e_lut.Char_flow.td_err then
    Printf.printf
      "\n=> 2 Bayesian samples match or beat a %d-point table: >= %.0fx fewer runs.\n"
      lut.Char_flow.train_cost
      (float_of_int lut.Char_flow.train_cost /. 2.0)
  else
    Printf.printf "\n=> LUT wins at this budget; raise k to close the gap.\n"
