(* Static timing analysis of a gate-level netlist.

   Reads a structural-Verilog module, builds the timing DAG, and runs
   arrival/slack analysis with a Bayesian-characterized library (k = 3
   simulations per arc) — the complete "library team to timing signoff"
   pipeline on one page.

   Run with: dune exec examples/sta_netlist.exe *)

module Tech = Slc_device.Tech
open Slc_cell
open Slc_core
open Slc_ssta

let netlist =
  {|
// 4-bit-ish carry chain fragment
module carry_slice (a0, b0, a1, b1, cin, cout);
  input a0, b0, a1, b1, cin;
  output cout;
  wire g0, p0, g1, p1, n0, n1, n2;
  NAND2 u1 (.A(a0), .B(b0), .Y(g0));
  NOR2  u2 (.A(a0), .B(b0), .Y(p0));
  NAND2 u3 (.A(a1), .B(b1), .Y(g1));
  NOR2  u4 (.A(a1), .B(b1), .Y(p1));
  NAND2 u5 (.A(cin), .B(g0), .Y(n0));
  NOR2  u6 (.A(n0), .B(p0), .Y(n1));
  NAND2 u7 (.A(n1), .B(g1), .Y(n2));
  NOR2  u8 (.A(n2), .B(p1), .Y(cout));
endmodule
|}

let () =
  let tech = Tech.n14 in
  let vdd = 0.8 in
  let v = Verilog.parse netlist in
  Printf.printf "Parsed module %s: %d inputs, %d gates\n"
    v.Verilog.module_name
    (List.length v.Verilog.inputs)
    (List.length v.Verilog.instances);
  let dag, _inputs, outputs = Verilog.to_sdag v tech ~vdd in

  (* Characterize the library with the Bayesian flow. *)
  Printf.printf "Characterizing INV/NAND2/NOR2 arcs with k = 3...\n%!";
  let prior =
    Prior.learn_pair
      ~cells:[ Cells.inv; Cells.nand2; Cells.nor2 ]
      ~grid_levels:[| 3; 3; 2 |]
      ~historical:[ Tech.n20; Tech.n28 ] ()
  in
  Harness.reset_sim_count ();
  let oracle = Oracle.bayes_bank ~prior tech ~k:3 in

  (* All inputs switch (rising) at t = 0 with a 5 ps slew. *)
  let input_arrivals _ = Sdag.input_edge ~at:0.0 ~slew:5e-12 ~rises:true in
  let cout = List.assoc "cout" outputs in
  let arr = Sdag.analyze dag oracle ~input_arrivals cout in
  (match (Sdag.at_edge arr ~rises:true, Sdag.at_edge arr ~rises:false) with
  | Some r, Some f ->
    let w = if r.Sdag.at >= f.Sdag.at then r else f in
    Printf.printf "\ncout worst arrival: %.2f ps (slew %.2f ps)\n"
      (w.Sdag.at *. 1e12) (w.Sdag.slew *. 1e12)
  | Some e, None | None, Some e ->
    Printf.printf "\ncout worst arrival: %.2f ps (slew %.2f ps)\n"
      (e.Sdag.at *. 1e12) (e.Sdag.slew *. 1e12)
  | None, None -> print_endline "no arrival at cout");
  Printf.printf "library characterization cost so far: %d simulations\n"
    (Harness.sim_count ());

  (* Slack report against a 60 ps requirement. *)
  let rows =
    Sdag.slack_report dag oracle ~input_arrivals ~outputs:[ (cout, 60e-12) ]
  in
  Printf.printf "\nSlack report (Tclk = 60 ps), most critical first:\n";
  Printf.printf "  %-8s %10s %10s %10s\n" "net" "arrival" "required" "slack";
  List.iter
    (fun r ->
      if r.Sdag.required_time < Float.infinity then
        Printf.printf "  %-8s %8.2fps %8.2fps %+8.2fps\n" r.Sdag.net_label
          (r.Sdag.arrival_time *. 1e12)
          (r.Sdag.required_time *. 1e12)
          (r.Sdag.slack *. 1e12))
    rows
