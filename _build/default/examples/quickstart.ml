(* Quickstart: characterize one timing arc of a NAND2 gate in the
   14-nm node with the compact timing model.

   Run with: dune exec examples/quickstart.exe *)

open Slc_core
module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Equivalent = Slc_cell.Equivalent

let () =
  let tech = Tech.n14 in
  let cell = Cells.nand2 in
  let arc = Arc.find cell ~pin:"A" ~out_dir:Arc.Fall in
  Printf.printf "Characterizing %s in %s (%d-nm)\n" (Arc.name arc)
    tech.Tech.name tech.Tech.node_nm;

  (* 1. Simulate the gate at a handful of input conditions.  Each call
     builds a transistor netlist and runs a full transient analysis. *)
  let points = Input_space.fitting_points tech ~k:8 in
  let eq = Equivalent.of_arc tech arc in
  let observations =
    Array.map
      (fun (p : Harness.point) ->
        let m = Harness.simulate tech arc p in
        Printf.printf "  %s -> Td = %5.2f ps, Sout = %5.2f ps\n"
          (Format.asprintf "%a" Harness.pp_point p)
          (m.Harness.td *. 1e12) (m.Harness.sout *. 1e12);
        {
          Extract_lse.point = p;
          ieff = Equivalent.ieff eq ~vdd:p.Harness.vdd;
          value = m.Harness.td;
        })
      points
  in

  (* 2. Extract the four model parameters {kd, Cpar, V', alpha}. *)
  let params = Extract_lse.fit observations in
  Printf.printf "\nExtracted delay model: %s\n"
    (Format.asprintf "%a" Timing_model.pp params);
  Printf.printf "Fitting error: %.2f%%\n"
    (100.0 *. Extract_lse.avg_abs_rel_error params observations);

  (* 3. Predict delay at a fresh condition and compare against a real
     simulation. *)
  let test_point = { Harness.sin = 7.5e-12; cload = 4.2e-15; vdd = 0.78 } in
  let predicted =
    Timing_model.eval params
      ~ieff:(Equivalent.ieff eq ~vdd:test_point.Harness.vdd)
      test_point
  in
  let simulated = (Harness.simulate tech arc test_point).Harness.td in
  Printf.printf "\nHeld-out prediction at %s\n"
    (Format.asprintf "%a" Harness.pp_point test_point);
  Printf.printf "  model:     %.2f ps\n" (predicted *. 1e12);
  Printf.printf "  simulator: %.2f ps\n" (simulated *. 1e12);
  Printf.printf "  error:     %.2f%%\n"
    (100.0 *. Float.abs ((predicted -. simulated) /. simulated));
  Printf.printf "\nTotal simulator runs: %d\n" (Harness.sim_count ())
