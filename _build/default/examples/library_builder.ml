(* Library builder: the conventional flow on our substrate.

   Characterizes every timing arc of every standard cell in a node
   into NLDM-style look-up tables and prints a Liberty-flavoured
   summary — the baseline object the paper's method accelerates.

   Run with: dune exec examples/library_builder.exe *)

module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Library = Slc_cell.Library
module Harness = Slc_cell.Harness
module Arc = Slc_cell.Arc
module Liberty = Slc_cell.Liberty

let () =
  let tech = Tech.n28 in
  Printf.printf "Building a full NLDM library for %s (%d cells)...\n%!"
    tech.Tech.name
    (List.length Cells.all);
  Harness.reset_sim_count ();
  let t0 = Sys.time () in
  let lib = Library.characterize tech ~levels:[| 3; 3; 2 |] in
  let elapsed = Sys.time () -. t0 in
  Library.summary Format.std_formatter lib;
  Printf.printf "%d simulator runs in %.1f s (%.1f ms per run)\n"
    lib.Library.sim_runs elapsed
    (1000.0 *. elapsed /. float_of_int (max 1 lib.Library.sim_runs));

  (* Export to Liberty format — the industry exchange format. *)
  let lib_path = Filename.temp_file "slc_" ".lib" in
  let oc = open_out lib_path in
  let ppf = Format.formatter_of_out_channel oc in
  Liberty.write ppf ~vdd:tech.Tech.vdd_nom lib;
  Format.pp_print_flush ppf ();
  close_out oc;
  Printf.printf "\nLiberty export: %s (%d bytes)\n" lib_path
    (Unix.stat lib_path).Unix.st_size;
  (* Read it back and cross-check one value. *)
  let parsed = Liberty.parse (In_channel.with_open_text lib_path In_channel.input_all) in
  Printf.printf "Parsed back: %d cells from library %s\n"
    (List.length parsed.Liberty.cells)
    parsed.Liberty.library_name;

  (* Interpolate a few off-grid queries. *)
  let queries =
    [
      ("INV", "A", Arc.Fall, { Harness.sin = 4e-12; cload = 2e-15; vdd = 0.9 });
      ("NAND3", "B", Arc.Rise, { Harness.sin = 9e-12; cload = 5e-15; vdd = 0.8 });
      ("AOI21", "C", Arc.Fall, { Harness.sin = 12e-12; cload = 3e-15; vdd = 1.0 });
    ]
  in
  Printf.printf "\nInterpolated queries:\n";
  List.iter
    (fun (cell, pin, out_dir, point) ->
      match Library.find lib ~cell ~pin ~out_dir with
      | None -> Printf.printf "  %s/%s: arc not found\n" cell pin
      | Some e ->
        let td = Slc_cell.Nldm.lookup_td e.Library.table point in
        let sout = Slc_cell.Nldm.lookup_sout e.Library.table point in
        Printf.printf "  %-16s %s -> Td %5.2f ps, Sout %5.2f ps\n"
          (Arc.name e.Library.arc)
          (Format.asprintf "%a" Harness.pp_point point)
          (td *. 1e12) (sout *. 1e12))
    queries
