(* PVT corners: multi-corner characterization with one prior.

   Signoff needs libraries at many process/voltage/temperature corners
   — exactly the cost explosion the paper's intro motivates.  This
   example checks that a single prior learned from historical nodes at
   25 C still carries a hot-corner characterization of the target node
   from 2 simulations per arc, and prints the classic corner table.

   Run with: dune exec examples/pvt_corners.exe *)

module Tech = Slc_device.Tech
module Process = Slc_device.Process
open Slc_cell
open Slc_core

let () =
  let tech = Tech.n14 in
  let hot = Tech.at_temperature tech ~celsius:125.0 in
  let arc = Arc.find Cells.nand2 ~pin:"A" ~out_dir:Arc.Fall in

  (* One prior, learned at the reference temperature. *)
  Printf.printf "Learning 25C prior from historical nodes...\n%!";
  let prior =
    Prior.learn_pair
      ~cells:[ Cells.inv; Cells.nand2 ]
      ~grid_levels:[| 3; 3; 2 |]
      ~historical:[ Tech.n20; Tech.n28; Tech.n45 ]
      ()
  in

  (* Characterize the HOT corner of the target node with k = 2. *)
  let validation = Input_space.validation_set ~n:120 ~seed:5 hot in
  let ds = Char_flow.simulate_dataset hot arc validation in
  Harness.reset_sim_count ();
  let bayes = Char_flow.train_bayes ~prior hot arc ~k:2 in
  let bayes_cost = Harness.sim_count () in
  let lut = Char_flow.train_lut hot arc ~budget:18 in
  let e_bayes = Char_flow.evaluate bayes ds in
  let e_lut = Char_flow.evaluate lut ds in
  Printf.printf
    "\nHot-corner (%s) characterization of %s:\n" hot.Tech.name (Arc.name arc);
  Printf.printf "  %-24s Td err %5.2f%%  (%d sims)\n" "bayes, 25C prior, k=2"
    (100.0 *. e_bayes.Char_flow.td_err)
    bayes_cost;
  Printf.printf "  %-24s Td err %5.2f%%  (%d sims)\n" "lookup table"
    (100.0 *. e_lut.Char_flow.td_err)
    lut.Char_flow.train_cost;

  (* The corner table every datasheet carries. *)
  let vdd_lo, vdd_hi = tech.Tech.vdd_range in
  Printf.printf "\nPVT corner table (NAND2/A/fall, Sin=5ps, Cload=2fF):\n";
  Printf.printf "  %-12s %6s %6s %9s %9s %9s\n" "corner" "temp" "vdd" "delay"
    "slew" "energy";
  List.iter
    (fun (label, corner, celsius, vdd) ->
      let t = Tech.at_temperature tech ~celsius in
      let seed = Process.corner t corner in
      let m =
        Harness.simulate ~seed t arc { Harness.sin = 5e-12; cload = 2e-15; vdd }
      in
      Printf.printf "  %-12s %5.0fC %5.2fV %7.2fps %7.2fps %8.3ffJ\n" label
        celsius vdd (m.Harness.td *. 1e12) (m.Harness.sout *. 1e12)
        (m.Harness.energy *. 1e15))
    [
      ("SS/hot/low", Process.Ss, 125.0, vdd_lo);
      ("TT/typ", Process.Tt, 25.0, 0.5 *. (vdd_lo +. vdd_hi));
      ("FF/cold/hi", Process.Ff, -40.0, vdd_hi);
    ]
