module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Describe = Slc_prob.Describe

type fig5_summary = {
  n : int;
  sin_min : float;
  sin_max : float;
  cload_min : float;
  cload_max : float;
  vdd_min : float;
  vdd_max : float;
  points : Input_space.point array;
}

let fig5 ?(n = 1000) ?(seed = 42) tech =
  let points = Input_space.validation_set ~n ~seed tech in
  let proj f = Array.map f points in
  let sins = proj (fun p -> p.Harness.sin) in
  let cls = proj (fun p -> p.Harness.cload) in
  let vdds = proj (fun p -> p.Harness.vdd) in
  let mn a = Array.fold_left Float.min a.(0) a in
  let mx a = Array.fold_left Float.max a.(0) a in
  {
    n;
    sin_min = mn sins;
    sin_max = mx sins;
    cload_min = mn cls;
    cload_max = mx cls;
    vdd_min = mn vdds;
    vdd_max = mx vdds;
    points;
  }

let print_fig5 ppf s =
  Format.fprintf ppf
    "Fig 5: %d validation points spread over the input space@." s.n;
  Report.table ppf
    ~header:[ "axis"; "min"; "max" ]
    [
      [ "Sin"; Report.ps s.sin_min; Report.ps s.sin_max ];
      [
        "Cload";
        Printf.sprintf "%.2ffF" (s.cload_min *. 1e15);
        Printf.sprintf "%.2ffF" (s.cload_max *. 1e15);
      ];
      [
        "Vdd";
        Printf.sprintf "%.3fV" s.vdd_min;
        Printf.sprintf "%.3fV" s.vdd_max;
      ];
    ]

type curve = {
  budgets : int array;
  mean_err : float array;
  std_err : float array;
}

type fig6_result = {
  tech_name : string;
  arcs : string list;
  n_validation : int;
  bayes_td : curve;
  lse_td : curve;
  rsm_td : curve;
  lut_td : curve;
  bayes_sout : curve;
  lse_sout : curve;
  rsm_sout : curve;
  lut_sout : curve;
  prior_cost : int;
  baseline_cost : int;
  target_err : float;
  bayes_budget : float;
  lse_budget : float option;
  lut_budget : float option;
  speedup_vs_lut : Char_flow.reach;
  speedup_model_only : float option;
}

(* Aggregate per-arc errors into a (mean, std) curve. *)
let curve_of budgets per_arc_errors =
  let n_b = Array.length budgets in
  let mean_err = Array.make n_b 0.0 and std_err = Array.make n_b 0.0 in
  for b = 0 to n_b - 1 do
    let errs = Array.map (fun arc_errs -> arc_errs.(b)) per_arc_errors in
    mean_err.(b) <- Describe.mean errs;
    std_err.(b) <- (if Array.length errs >= 2 then Describe.std errs else 0.0)
  done;
  { budgets; mean_err; std_err }

let fig6 ?(config = Config.default ()) ?(tech = Tech.n14)
    ?(cells = Cells.paper_set) ?prior () =
  let prior =
    match prior with
    | Some p -> p
    | None -> Prior.learn_pair ~historical:(Tech.historical_for tech) ()
  in
  let prior_cost = prior.Prior.delay.Prior.learn_cost in
  let arcs = List.concat_map Arc.all_of_cell cells in
  let points =
    Input_space.validation_set ~n:config.Config.n_validation
      ~seed:config.Config.rng_seed tech
  in
  let before_baseline = Harness.sim_count () in
  let baselines =
    List.map (fun arc -> Char_flow.simulate_dataset tech arc points) arcs
  in
  let baseline_cost = Harness.sim_count () - before_baseline in
  let ks = Array.of_list config.Config.ks in
  let lut_budgets = Array.of_list config.Config.lut_budgets in
  let run_method budgets train =
    (* per arc: array over budgets of (td_err, sout_err) *)
    let per_arc =
      List.map
        (fun ds ->
          Array.map
            (fun b ->
              let p = train ds.Char_flow.arc b in
              Char_flow.evaluate p ds)
            budgets)
        baselines
    in
    let td =
      Array.of_list
        (List.map (Array.map (fun e -> e.Char_flow.td_err)) per_arc)
    in
    let sout =
      Array.of_list
        (List.map (Array.map (fun e -> e.Char_flow.sout_err)) per_arc)
    in
    (curve_of budgets td, curve_of budgets sout)
  in
  let bayes_td, bayes_sout =
    run_method ks (fun arc k -> Char_flow.train_bayes ~prior tech arc ~k)
  in
  let lse_td, lse_sout =
    run_method ks (fun arc k -> Char_flow.train_lse tech arc ~k)
  in
  let rsm_td, rsm_sout =
    run_method ks (fun arc k -> Char_flow.train_rsm tech arc ~k)
  in
  let lut_td, lut_sout =
    run_method lut_budgets (fun arc budget ->
        Char_flow.train_lut tech arc ~budget)
  in
  (* Iso-accuracy speedup at the Bayes elbow (k = 2 if present). *)
  let elbow_idx =
    match Array.to_list ks |> List.mapi (fun i k -> (i, k)) with
    | l -> (
      match List.find_opt (fun (_, k) -> k = 2) l with
      | Some (i, _) -> i
      | None -> 0)
  in
  let target_err = bayes_td.mean_err.(elbow_idx) in
  let curve_list c =
    Array.to_list (Array.mapi (fun i b -> (b, c.mean_err.(i))) c.budgets)
  in
  let bayes_budget = float_of_int ks.(elbow_idx) in
  let lse_budget =
    Char_flow.budget_to_reach ~curve:(curve_list lse_td) ~target:target_err
  in
  let lut_budget =
    Char_flow.budget_to_reach ~curve:(curve_list lut_td) ~target:target_err
  in
  let speedup_vs_lut =
    Char_flow.speedup_vs ~budget:bayes_budget ~curve:(curve_list lut_td)
      ~target:target_err
  in
  let speedup_model_only =
    match (lse_budget, lut_budget) with
    | Some l, Some t -> Some (t /. l)
    | _ -> None
  in
  {
    tech_name = tech.Tech.name;
    arcs = List.map Arc.name arcs;
    n_validation = config.Config.n_validation;
    bayes_td;
    lse_td;
    rsm_td;
    lut_td;
    bayes_sout;
    lse_sout;
    rsm_sout;
    lut_sout;
    prior_cost;
    baseline_cost;
    target_err;
    bayes_budget;
    lse_budget;
    lut_budget;
    speedup_vs_lut;
    speedup_model_only;
  }

let print_curve ppf name c =
  Report.table ppf
    ~header:[ "samples"; name ^ " mean err"; "std (error bars)" ]
    (Array.to_list
       (Array.mapi
          (fun i b ->
            [
              string_of_int b;
              Report.pct c.mean_err.(i);
              Report.pct c.std_err.(i);
            ])
          c.budgets))

let print_fig6 ppf r =
  Format.fprintf ppf
    "Fig 6: nominal delay characterization error, %s (%d arcs, %d validation points)@."
    r.tech_name (List.length r.arcs) r.n_validation;
  Format.fprintf ppf "-- proposed model + Bayesian inference (Td):@.";
  print_curve ppf "bayes" r.bayes_td;
  Format.fprintf ppf "-- proposed model + LSE (Td):@.";
  print_curve ppf "lse" r.lse_td;
  Format.fprintf ppf "-- response surface / polynomial regression (Td):@.";
  print_curve ppf "rsm" r.rsm_td;
  Format.fprintf ppf "-- lookup table (Td):@.";
  print_curve ppf "lut" r.lut_td;
  Format.fprintf ppf "prior learning cost: %d sims (amortized over the node)@."
    r.prior_cost;
  Format.fprintf ppf "baseline cost: %d sims@." r.baseline_cost;
  Format.fprintf ppf
    "iso-accuracy at %s: bayes needs %.0f runs; lse %s; lut %s@."
    (Report.pct r.target_err) r.bayes_budget
    (match r.lse_budget with
    | Some b -> Printf.sprintf "%.1f" b
    | None -> "n/a")
    (match r.lut_budget with
    | Some b -> Printf.sprintf "%.1f" b
    | None -> "n/a");
  Format.fprintf ppf "=> speedup vs lookup table: %a (paper: ~15x)@."
    Char_flow.pp_reach r.speedup_vs_lut;
  match r.speedup_model_only with
  | Some s ->
    Format.fprintf ppf "   contribution of the compact model alone: %.1fx@." s
  | None -> ()
