(** Response-surface baseline (the related-work competitor class:
    polynomial regression over the input space, as in Brusamarello et
    al. and the LAR/RSM approaches the paper cites).

    Fits delay or slew as a polynomial in the {e normalized} input
    coordinates by relative-error least squares.  The polynomial degree
    adapts to the sample budget: constant below 4 samples, linear (4
    coefficients) below 10, full quadratic (10 coefficients) from 10
    samples up.  No physics, no prior — pure regression, which is
    exactly why it needs more samples than the compact model. *)

type t

val n_coeffs : degree:int -> int
(** 1, 4 or 10 for degrees 0, 1, 2 (3 input dimensions). *)

val fit :
  Slc_device.Tech.t ->
  (Input_space.point * float) array ->
  t
(** Raises [Invalid_argument] on an empty sample or non-positive
    observations. *)

val degree : t -> int

val eval : t -> Input_space.point -> float

val avg_abs_rel_error : t -> (Input_space.point * float) array -> float
