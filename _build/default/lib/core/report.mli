(** Plain-text rendering of experiment results: aligned tables and
    ASCII series — the harness's stand-in for the paper's figures. *)

val table :
  Format.formatter -> header:string list -> string list list -> unit
(** Renders rows under a header with auto-sized columns. *)

val series :
  Format.formatter ->
  title:string ->
  x_label:string ->
  xs:float array ->
  (string * float array) list ->
  unit
(** Renders several named y-series against a common x axis, one row per
    x value. *)

val bar : width:int -> float -> float -> string
(** [bar ~width value max] renders a proportional ASCII bar. *)

val pct : float -> string
(** Formats a fraction as a percentage with 2 decimals. *)

val ps : float -> string
(** Formats seconds as picoseconds. *)
