module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Describe = Slc_prob.Describe

type result = {
  target_name : string;
  vt_shift : float;
  k : int;
  err_rvt_prior : float;
  err_matched_prior : float;
  err_lut : float;
  lut_budget : int;
}

let mean_td_err ~config ~tech ~train =
  let arcs = List.concat_map Arc.all_of_cell Cells.paper_set in
  let points =
    Input_space.validation_set
      ~n:(max 30 (config.Config.n_validation / 3))
      ~seed:config.Config.rng_seed tech
  in
  let errs =
    List.map
      (fun arc ->
        let ds = Char_flow.simulate_dataset tech arc points in
        let p = train arc in
        (Char_flow.evaluate p ds).Char_flow.td_err)
      arcs
  in
  Describe.mean (Array.of_list errs)

let vt_transfer ?(config = Config.default ()) ?(tech = Tech.n14)
    ?(vt_shift = -0.06) ?(k = 2) ?(lut_budget = 18) () =
  let target = Tech.vt_variant tech ~shift:vt_shift ~suffix:"-lvt" in
  let historical = Tech.historical_for tech in
  (* Smaller learning grids keep the experiment proportionate: two
     priors must be learned. *)
  let grid_levels = [| 3; 3; 2 |] in
  let rvt_prior = Prior.learn_pair ~grid_levels ~historical () in
  let matched_prior =
    Prior.learn_pair ~grid_levels
      ~historical:
        (List.map (fun t -> Tech.vt_variant t ~shift:vt_shift ~suffix:"-lvt")
           historical)
      ()
  in
  let err_rvt_prior =
    mean_td_err ~config ~tech:target ~train:(fun arc ->
        Char_flow.train_bayes ~prior:rvt_prior target arc ~k)
  in
  let err_matched_prior =
    mean_td_err ~config ~tech:target ~train:(fun arc ->
        Char_flow.train_bayes ~prior:matched_prior target arc ~k)
  in
  let err_lut =
    mean_td_err ~config ~tech:target ~train:(fun arc ->
        Char_flow.train_lut target arc ~budget:lut_budget)
  in
  {
    target_name = target.Tech.name;
    vt_shift;
    k;
    err_rvt_prior;
    err_matched_prior;
    err_lut;
    lut_budget;
  }

let print_result ppf r =
  Format.fprintf ppf
    "Extension: multi-Vt transfer to %s (Vt shift %+.0f mV), k = %d@."
    r.target_name (1000.0 *. r.vt_shift) r.k;
  Report.table ppf
    ~header:[ "method"; "Td error"; "train sims/arc" ]
    [
      [ "bayes, RVT-learned prior"; Report.pct r.err_rvt_prior;
        string_of_int r.k ];
      [ "bayes, flavor-matched prior"; Report.pct r.err_matched_prior;
        string_of_int r.k ];
      [ "lookup table"; Report.pct r.err_lut; string_of_int r.lut_budget ];
    ]
