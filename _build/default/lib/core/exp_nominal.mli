(** Nominal-characterization experiments: the paper's Fig. 5 validation
    spread and Fig. 6 (14-nm error-vs-training-samples comparison with
    the iso-accuracy speedup claim). *)

type fig5_summary = {
  n : int;
  sin_min : float;
  sin_max : float;
  cload_min : float;
  cload_max : float;
  vdd_min : float;
  vdd_max : float;
  points : Input_space.point array;
}

val fig5 : ?n:int -> ?seed:int -> Slc_device.Tech.t -> fig5_summary

val print_fig5 : Format.formatter -> fig5_summary -> unit

type curve = {
  budgets : int array;          (** training simulator runs per arc *)
  mean_err : float array;       (** mean over arcs of the error *)
  std_err : float array;        (** std over arcs (the paper's error bars) *)
}

type fig6_result = {
  tech_name : string;
  arcs : string list;
  n_validation : int;
  bayes_td : curve;
  lse_td : curve;
  rsm_td : curve;
  lut_td : curve;
  bayes_sout : curve;
  lse_sout : curve;
  rsm_sout : curve;
  lut_sout : curve;
  prior_cost : int;             (** historical-learning simulator runs *)
  baseline_cost : int;
  (* Iso-accuracy speedups for delay, relative to the Bayes method at
     its elbow (k = 2): *)
  target_err : float;
  bayes_budget : float;
  lse_budget : float option;
  lut_budget : float option;
  speedup_vs_lut : Char_flow.reach;    (** the paper's headline ~15x *)
  speedup_model_only : float option;   (** LUT vs LSE: contribution of the
                                           compact model alone (~6x) *)
}

val fig6 :
  ?config:Config.t ->
  ?tech:Slc_device.Tech.t ->
  ?cells:Slc_cell.Cells.t list ->
  ?prior:Prior.pair ->
  unit ->
  fig6_result
(** Learns the prior from the other five nodes (unless one is supplied),
    simulates a shared validation baseline per arc, then sweeps the
    training budget for all three methods. *)

val print_fig6 : Format.formatter -> fig6_result -> unit
