module Mvn = Slc_prob.Mvn
module Mat = Slc_num.Mat
module Interp = Slc_num.Interp

exception Format_error of string

let fail msg = raise (Format_error msg)

let fl x = Printf.sprintf "%.17g" x

let write_one ppf (p : Prior.t) =
  Format.fprintf ppf "metric %s@." (Prior.metric_to_string p.Prior.metric);
  let mvn = p.Prior.mvn in
  Format.fprintf ppf "mu %s@."
    (String.concat " " (Array.to_list (Array.map fl (mvn : Mvn.t).Mvn.mu)));
  let cov = mvn.Mvn.cov in
  let flat = ref [] in
  for i = 3 downto 0 do
    for j = 3 downto 0 do
      flat := fl (Mat.get cov i j) :: !flat
    done
  done;
  Format.fprintf ppf "cov %s@." (String.concat " " !flat);
  let xs, ys, zs = p.Prior.beta.Interp.axes in
  let axis a =
    Printf.sprintf "%d %s" (Array.length a)
      (String.concat " " (Array.to_list (Array.map fl a)))
  in
  Format.fprintf ppf "axis %s@." (axis xs);
  Format.fprintf ppf "axis %s@." (axis ys);
  Format.fprintf ppf "axis %s@." (axis zs);
  let betas = ref [] in
  Array.iter
    (fun plane ->
      Array.iter (fun row -> Array.iter (fun v -> betas := fl v :: !betas) row)
      plane)
    p.Prior.beta.Interp.values3;
  Format.fprintf ppf "beta %s@." (String.concat " " (List.rev !betas));
  Format.fprintf ppf "provenance %d@." (List.length p.Prior.provenance);
  List.iter
    (fun (f : Prior.fitted_arc) ->
      let q = f.Prior.params in
      Format.fprintf ppf "prov %s %s %s %s %s %s %s@." f.Prior.tech_name
        f.Prior.arc_name
        (fl q.Timing_model.kd)
        (fl q.Timing_model.cpar)
        (fl q.Timing_model.v_off)
        (fl q.Timing_model.alpha)
        (fl f.Prior.fit_error))
    p.Prior.provenance;
  Format.fprintf ppf "cost %d@." p.Prior.learn_cost

let write ppf (pair : Prior.pair) =
  Format.fprintf ppf "slc-prior 1@.";
  write_one ppf pair.Prior.delay;
  write_one ppf pair.Prior.slew;
  Format.fprintf ppf "end@."

let to_string pair = Format.asprintf "%a" write pair

(* ------------------------------------------------------------------ *)

type cursor = { mutable lines : string list }

let next_line c =
  match c.lines with
  | [] -> fail "unexpected end of file"
  | l :: rest ->
    c.lines <- rest;
    l

let fields l =
  String.split_on_char ' ' l |> List.filter (fun s -> s <> "")

let expect_key key l =
  match fields l with
  | k :: rest when String.equal k key -> rest
  | _ -> fail (Printf.sprintf "expected %S, got %S" key l)

let float_of s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail ("bad float " ^ s)

let int_of s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail ("bad int " ^ s)

let parse_one c =
  let metric =
    match expect_key "metric" (next_line c) with
    | [ "delay" ] -> Prior.Delay
    | [ "slew" ] -> Prior.Slew
    | _ -> fail "bad metric"
  in
  let mu =
    match expect_key "mu" (next_line c) with
    | [ a; b; d; e ] -> [| float_of a; float_of b; float_of d; float_of e |]
    | _ -> fail "mu needs 4 values"
  in
  let cov_vals = List.map float_of (expect_key "cov" (next_line c)) in
  if List.length cov_vals <> 16 then fail "cov needs 16 values";
  let cov_arr = Array.of_list cov_vals in
  let cov = Mat.init 4 4 (fun i j -> cov_arr.((i * 4) + j)) in
  let axis () =
    match expect_key "axis" (next_line c) with
    | n :: rest ->
      let n = int_of n in
      let vals = Array.of_list (List.map float_of rest) in
      if Array.length vals <> n then fail "axis length mismatch";
      vals
    | [] -> fail "empty axis"
  in
  let xs = axis () in
  let ys = axis () in
  let zs = axis () in
  let betas = Array.of_list (List.map float_of (expect_key "beta" (next_line c))) in
  let n_s = Array.length xs and n_c = Array.length ys and n_v = Array.length zs in
  if Array.length betas <> n_s * n_c * n_v then fail "beta size mismatch";
  let values3 =
    Array.init n_s (fun i ->
        Array.init n_c (fun j ->
            Array.init n_v (fun k -> betas.((((i * n_c) + j) * n_v) + k))))
  in
  let n_prov =
    match expect_key "provenance" (next_line c) with
    | [ n ] -> int_of n
    | _ -> fail "bad provenance count"
  in
  let provenance =
    List.init n_prov (fun _ ->
        match expect_key "prov" (next_line c) with
        | [ tech_name; arc_name; kd; cpar; v_off; alpha; err ] ->
          {
            Prior.tech_name;
            arc_name;
            params =
              {
                Timing_model.kd = float_of kd;
                cpar = float_of cpar;
                v_off = float_of v_off;
                alpha = float_of alpha;
              };
            fit_error = float_of err;
          }
        | _ -> fail "bad prov line")
  in
  let learn_cost =
    match expect_key "cost" (next_line c) with
    | [ n ] -> int_of n
    | _ -> fail "bad cost"
  in
  {
    Prior.metric;
    mvn = Mvn.make ~mu ~cov;
    beta = { Interp.axes = (xs, ys, zs); values3 };
    provenance;
    learn_cost;
  }

let parse src =
  let lines =
    String.split_on_char '\n' src
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let c = { lines } in
  (match fields (next_line c) with
  | [ "slc-prior"; "1" ] -> ()
  | _ -> fail "bad header (want: slc-prior 1)");
  let delay = parse_one c in
  let slew = parse_one c in
  (match fields (next_line c) with
  | [ "end" ] -> ()
  | _ -> fail "missing end marker");
  if delay.Prior.metric <> Prior.Delay then fail "first block must be delay";
  if slew.Prior.metric <> Prior.Slew then fail "second block must be slew";
  { Prior.delay; slew }

let save path pair =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string pair))

let load path = parse (In_channel.with_open_text path In_channel.input_all)
