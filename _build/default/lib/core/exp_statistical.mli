(** Statistical-characterization experiments: paper Figs. 7, 8 and 9
    (28-nm statistical example). *)

type stat_curve = {
  budgets : int array;
  e_mu_td : float array;
  e_sigma_td : float array;
  e_mu_sout : float array;
  e_sigma_sout : float array;
}

type fig78_result = {
  tech_name : string;
  arc_names : string list;
  n_points : int;
  n_seeds : int;
  baseline_cost : int;
  bayes : stat_curve;
  lse : stat_curve;
  lut : stat_curve;
  (* Iso-accuracy speedups vs the Bayes elbow (the paper quotes 17x for
     µ(Td), 20x for σ(Td), 18x/19x for Sout): *)
  speedup_mu_td : Char_flow.reach;
  speedup_sigma_td : Char_flow.reach;
  speedup_mu_sout : Char_flow.reach;
  speedup_sigma_sout : Char_flow.reach;
}

val fig78 :
  ?config:Config.t ->
  ?tech:Slc_device.Tech.t ->
  ?arcs:Slc_cell.Arc.t list ->
  ?prior:Prior.pair ->
  unit ->
  fig78_result
(** Statistical errors (Eqs. 16–19, relative) versus per-seed training
    budget for the three methods, averaged over the given arcs (default:
    one representative arc each of INV, NAND2, NOR2). *)

val print_fig78 : Format.formatter -> fig78_result -> unit

type fig9_result = {
  point : Input_space.point;
  arc_name : string;
  n_seeds : int;
  k_bayes : int;
  lut_points : int;
  grid : float array;          (** delay axis for the densities, s *)
  pdf_baseline : float array;
  pdf_bayes : float array;
  pdf_lut : float array;
  baseline_skewness : float;
  bayes_skewness : float;
  lut_skewness : float;
  ks_bayes : float;            (** KS distance to the MC baseline *)
  ks_lut : float;
  cost_baseline : int;
  cost_bayes : int;
  cost_lut : int;
}

val fig9 :
  ?config:Config.t ->
  ?tech:Slc_device.Tech.t ->
  ?arc:Slc_cell.Arc.t ->
  ?point:Input_space.point ->
  ?prior:Prior.pair ->
  unit ->
  fig9_result
(** Delay probability density at one low-Vdd condition (default: the
    paper's Vdd=0.734 V, Sin=5.09 ps, Cload=1.67 fF) for the MC
    baseline, the proposed method with 7 fitting conditions, and a
    60-point LUT. *)

val print_fig9 : Format.formatter -> fig9_result -> unit
