(** Extension experiment beyond the paper's evaluation: multi-Vt
    library options.

    The paper's introduction motivates the cost problem with the
    growing number of design options (multi-Vt, multi-Vdd) and its
    Section IV notes that the best historical libraries are those with
    the same process choices as the target.  This experiment builds an
    LVT (low-threshold) flavor of the 14-nm node and characterizes it
    with priors learned from (a) the regular-Vt historical nodes and
    (b) LVT flavors of the same nodes — measuring the bias cost of a
    mismatched prior and comparing both against the LUT baseline. *)

type result = {
  target_name : string;
  vt_shift : float;
  k : int;
  err_rvt_prior : float;     (** Td error with the mismatched prior *)
  err_matched_prior : float; (** Td error with the flavor-matched prior *)
  err_lut : float;           (** LUT at [lut_budget] *)
  lut_budget : int;
}

val vt_transfer :
  ?config:Config.t ->
  ?tech:Slc_device.Tech.t ->
  ?vt_shift:float ->
  ?k:int ->
  ?lut_budget:int ->
  unit ->
  result
(** Defaults: n14, [vt_shift = -0.06] V (LVT), [k = 2],
    [lut_budget = 18]. *)

val print_result : Format.formatter -> result -> unit
