lib/core/input_space.ml: Array Slc_cell Slc_device Slc_prob
