lib/core/exp_ablation.mli: Config Format Prior Slc_device
