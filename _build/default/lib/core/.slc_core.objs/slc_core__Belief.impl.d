lib/core/belief.ml: Array List Prior Slc_num Slc_prob String Timing_model
