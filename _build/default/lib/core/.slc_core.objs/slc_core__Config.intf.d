lib/core/config.mli:
