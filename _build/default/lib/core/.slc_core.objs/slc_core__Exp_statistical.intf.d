lib/core/exp_statistical.mli: Char_flow Config Format Input_space Prior Slc_cell Slc_device
