lib/core/config.ml: Sys
