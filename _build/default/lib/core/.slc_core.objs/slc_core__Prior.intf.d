lib/core/prior.mli: Format Slc_cell Slc_device Slc_num Slc_prob Timing_model
