lib/core/rsm.mli: Input_space Slc_device
