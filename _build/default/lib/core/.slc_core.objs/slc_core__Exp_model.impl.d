lib/core/exp_model.ml: Array Extract_lse Float Format Input_space List Printf Report Slc_cell Slc_device Slc_num String Timing_model
