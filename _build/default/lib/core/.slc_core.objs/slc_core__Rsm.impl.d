lib/core/rsm.ml: Array Float Input_space Slc_device Slc_num
