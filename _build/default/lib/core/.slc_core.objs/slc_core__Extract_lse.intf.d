lib/core/extract_lse.mli: Slc_cell Timing_model
