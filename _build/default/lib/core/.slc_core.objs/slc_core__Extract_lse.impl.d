lib/core/extract_lse.ml: Array Float Slc_cell Slc_num Timing_model
