lib/core/timing_model.mli: Format Slc_cell Slc_num
