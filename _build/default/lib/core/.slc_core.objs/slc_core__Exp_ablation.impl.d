lib/core/exp_ablation.ml: Array Belief Char_flow Config Extract_lse Format Hashtbl Input_space List Model_ext Printf Prior Report Slc_cell Slc_device Slc_prob String
