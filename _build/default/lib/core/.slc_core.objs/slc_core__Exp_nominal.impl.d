lib/core/exp_nominal.ml: Array Char_flow Config Float Format Input_space List Printf Prior Report Slc_cell Slc_device Slc_prob
