lib/core/belief.mli: Prior Slc_num Slc_prob
