lib/core/exp_extension.mli: Config Format Slc_device
