lib/core/statistical.mli: Input_space Prior Slc_cell Slc_device
