lib/core/exp_extension.ml: Array Char_flow Config Format Input_space List Prior Report Slc_cell Slc_device Slc_prob
