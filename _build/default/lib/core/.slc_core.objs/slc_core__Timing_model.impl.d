lib/core/timing_model.ml: Array Format Slc_cell
