lib/core/exp_statistical.ml: Array Char_flow Config Float Format Input_space List Prior Report Slc_cell Slc_device Slc_prob Statistical
