lib/core/statistical.ml: Array Char_flow Float Input_space Prior Slc_cell Slc_device Slc_num Slc_prob
