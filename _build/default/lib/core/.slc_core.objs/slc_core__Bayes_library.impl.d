lib/core/bayes_library.ml: Char_flow Format Input_space List Map_fit Prior Slc_cell Slc_device String Timing_model
