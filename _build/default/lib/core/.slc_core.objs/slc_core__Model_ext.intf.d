lib/core/model_ext.mli: Extract_lse Slc_cell Slc_num Timing_model
