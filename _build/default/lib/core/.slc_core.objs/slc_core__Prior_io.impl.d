lib/core/prior_io.ml: Array Format In_channel List Out_channel Printf Prior Slc_num Slc_prob String Timing_model
