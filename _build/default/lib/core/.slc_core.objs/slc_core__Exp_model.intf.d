lib/core/exp_model.mli: Format Slc_cell Slc_device Timing_model
