lib/core/map_fit.ml: Array Extract_lse Prior Slc_num Slc_prob Timing_model
