lib/core/char_flow.mli: Extract_lse Format Input_space Prior Slc_cell Slc_device
