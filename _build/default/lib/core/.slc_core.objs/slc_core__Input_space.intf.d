lib/core/input_space.mli: Slc_cell Slc_device Slc_num Slc_prob
