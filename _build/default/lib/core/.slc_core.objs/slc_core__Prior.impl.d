lib/core/prior.ml: Array Extract_lse Float Format Input_space List Slc_cell Slc_device Slc_num Slc_prob Timing_model
