lib/core/prior_io.mli: Format Prior
