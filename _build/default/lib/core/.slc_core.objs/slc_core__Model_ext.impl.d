lib/core/model_ext.ml: Array Extract_lse Float Slc_cell Slc_num Timing_model
