lib/core/char_flow.ml: Array Extract_lse Float Format Input_space List Map_fit Prior Rsm Slc_cell Slc_device Slc_num Timing_model
