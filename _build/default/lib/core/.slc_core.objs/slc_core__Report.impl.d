lib/core/report.ml: Array Float Format List Printf String
