lib/core/bayes_library.mli: Char_flow Format Input_space Prior Slc_cell Slc_device Timing_model
