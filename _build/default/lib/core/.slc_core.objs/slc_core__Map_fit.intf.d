lib/core/map_fit.mli: Extract_lse Prior Slc_device Timing_model
