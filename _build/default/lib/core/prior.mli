(** Historical learning (paper Section IV): the prior distribution of
    the timing-model parameters and the input-condition-dependent model
    precision β(ξ), both learned from characterizations of cell
    libraries in {e other} technology nodes.

    For each historical node and each timing arc, the compact model is
    fitted on a normalized grid of input conditions.  The population of
    extracted parameter vectors gives the Gaussian prior
    [µ_P ~ N(µ0, Σ0)] (Eq. 7); the spread of relative model residuals
    across nodes at each normalized condition gives β(ξ) (Eq. 9),
    interpolated trilinearly in normalized coordinates. *)

type metric = Delay | Slew

val metric_to_string : metric -> string

type fitted_arc = {
  tech_name : string;
  arc_name : string;
  params : Timing_model.params;
  fit_error : float;  (** mean |relative| fitting error *)
}

type t = {
  metric : metric;
  mvn : Slc_prob.Mvn.t;          (** prior over the 4 parameters *)
  beta : Slc_num.Interp.grid3;   (** precision over the unit cube *)
  provenance : fitted_arc list;  (** every historical fit that fed the prior *)
  learn_cost : int;              (** simulator runs consumed *)
}

val grid_levels_default : int array
(** [|4; 4; 3|] — 48 normalized conditions per historical arc. *)

val learn :
  ?cells:Slc_cell.Cells.t list ->
  ?grid_levels:int array ->
  ?beta_rel_floor:float ->
  historical:Slc_device.Tech.t list ->
  metric ->
  t
(** Fits every arc of [cells] (default {!Slc_cell.Cells.paper_set}) in
    every historical node and assembles the prior.  [beta_rel_floor]
    (default 0.01) floors the per-condition relative model sigma so a
    lucky agreement between old nodes cannot produce an unbounded
    precision. *)

type pair = { delay : t; slew : t }

val learn_pair :
  ?cells:Slc_cell.Cells.t list ->
  ?grid_levels:int array ->
  historical:Slc_device.Tech.t list ->
  unit ->
  pair
(** Learns delay and slew priors from the same historical simulations
    (each condition is simulated once and both metrics are read). *)

val beta_at : t -> Slc_device.Tech.t -> Slc_cell.Harness.point -> float
(** β(ξ) for a target-technology condition, via normalized
    coordinates. *)

val constant_beta : t -> t
(** Ablation helper: replaces β(ξ) with its grid average (input-
    independent precision). *)

val pp_summary : Format.formatter -> t -> unit
