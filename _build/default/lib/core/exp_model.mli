(** Model-validation experiments: paper Table I and Figs. 2–3. *)

(** {1 Table I: extracted parameters across technologies} *)

type table1_row = {
  tech_label : string;   (** "A"/"B"/"C" as in the paper *)
  tech_name : string;
  cell_name : string;
  params : Timing_model.params;
  fit_error : float;     (** mean |relative| error of the fit *)
  sims : int;
}

val table1 :
  ?techs:Slc_device.Tech.t list ->
  ?cells:Slc_cell.Cells.t list ->
  unit ->
  table1_row list
(** Fits the delay model per (technology, cell), pooling all arcs of
    the cell on a dense grid.  Defaults: technologies A/B/C =
    n14/n28/n45, cells = INV/NAND2/NOR2. *)

val print_table1 : Format.formatter -> table1_row list -> unit

(** {1 Fig. 2: invariance of Td·Ieff/(Vdd+V') versus Vdd} *)

type invariance_series = {
  label : string;
  xs : float array;       (** swept variable *)
  ratios : float array;   (** the quantity that should be constant *)
  deviation : float;      (** max |ratio - mean| / mean *)
}

val fig2 :
  ?tech:Slc_device.Tech.t ->
  ?cell:Slc_cell.Cells.t ->
  ?n_vdd:int ->
  unit ->
  invariance_series list
(** For delay and slew, rise and fall, at three (Cload, Sin) groups:
    sweeps Vdd and reports [T·Ieff/(Vdd+V')] with V' fitted per metric.
    Default NOR2 in n14 as in the paper. *)

(** {1 Fig. 3: invariance of Td/(Cload+Cpar+α·Sin) across (Cload, Sin)} *)

val fig3 :
  ?tech:Slc_device.Tech.t ->
  ?cell:Slc_cell.Cells.t ->
  unit ->
  invariance_series list
(** Sweeps 14 (Cload, Sin) combinations at three Vdd values and reports
    [Td/(Cload+Cpar+α·Sin)] per Vdd/direction series. *)

val print_invariance : Format.formatter -> title:string -> invariance_series list -> unit
