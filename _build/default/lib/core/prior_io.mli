(** Persistence for learned priors.

    Prior learning costs thousands of simulator runs over the
    historical nodes; a production flow learns once per node family
    and reuses the result.  The format is a versioned, line-oriented
    text file (stable across platforms, diff-friendly). *)

exception Format_error of string

val write : Format.formatter -> Prior.pair -> unit

val to_string : Prior.pair -> string

val parse : string -> Prior.pair
(** Raises {!Format_error} on malformed input.  Round-trips everything
    the MAP flow needs: prior mean/covariance, the β(ξ) grid, the
    provenance list and the learning cost. *)

val save : string -> Prior.pair -> unit
(** Write to a file path. *)

val load : string -> Prior.pair
(** Read from a file path; raises [Sys_error] or {!Format_error}. *)
