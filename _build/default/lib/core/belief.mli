(** Gaussian belief propagation along the technology-node chain.

    The paper's prior pools all historical nodes at once.  This module
    implements the sequential alternative the title alludes to: a
    Gaussian belief over the model-parameter mean is passed from the
    oldest node to the newest, updated at each node with that node's
    extracted parameter population, and inflated by a drift term
    between nodes (technology evolution).  The resulting message at the
    end of the chain can replace the pooled prior — see the
    [ablation_chain] bench. *)

type message = {
  mu : Slc_num.Vec.t;
  cov : Slc_num.Mat.t;
}

val diffuse : ?scale:float -> int -> message
(** Near-uninformative starting belief of the given dimension (diagonal
    covariance [scale], default 10.0 — very wide in the model's
    natural parameter units). *)

val observe : message -> Slc_num.Vec.t array -> message
(** Conjugate update of the mean-belief with a node's population of
    extracted parameter vectors: the population mean is treated as an
    observation of the underlying mean with covariance [S/n] (sample
    covariance over population size). *)

val drift : message -> Slc_num.Mat.t -> message
(** Adds process-evolution covariance between adjacent nodes
    (Kalman-style prediction step). *)

val default_drift : int -> Slc_num.Mat.t
(** Diagonal drift sized to typical node-to-node parameter movement. *)

val chain :
  ?drift_cov:Slc_num.Mat.t ->
  (string * Slc_num.Vec.t array) list ->
  message
(** Folds {!observe} and {!drift} over nodes ordered oldest first; each
    element is (node name, extracted parameter vectors). *)

val chain_prior : Prior.t -> ordered:string list -> Prior.t
(** Rebuilds a {!Prior.t} whose Gaussian component comes from chain
    propagation over the prior's own provenance (grouped by technology,
    ordered as given — unknown names are skipped, nodes without data are
    skipped); β(ξ) is kept.  Costs no additional simulations. *)

val to_mvn : message -> Slc_prob.Mvn.t
