(** Experiment sizing.

    The paper uses 1000 validation points and 1000 Monte-Carlo seeds on
    a compute farm; the defaults here are scaled so the full harness
    finishes in minutes on one core, and every count can be grown with
    the [SLC_SCALE] environment variable (1.0 = defaults, 2.0 = twice
    the points/seeds...).  Shapes, crossovers and speedup factors are
    stable under scaling; absolute error values move slightly with the
    Monte-Carlo noise floor. *)

type t = {
  scale : float;
  n_validation : int;     (** nominal-experiment validation points *)
  n_validation_stat : int;(** statistical-experiment validation points *)
  n_seeds : int;          (** Monte-Carlo seeds for Fig 7/8 *)
  n_seeds_fig9 : int;
  ks : int list;          (** training-sample sweep for model methods *)
  lut_budgets : int list; (** budget sweep for the LUT method *)
  ks_stat : int list;     (** per-seed training sweep, statistical flow *)
  lut_budgets_stat : int list;
  rng_seed : int;
}

val default : unit -> t
(** Reads [SLC_SCALE] (default 1.0). *)

val with_scale : float -> t

val tiny : t
(** Minimal configuration for unit tests. *)
