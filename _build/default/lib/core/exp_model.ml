module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Equivalent = Slc_cell.Equivalent
module Vec = Slc_num.Vec

type table1_row = {
  tech_label : string;
  tech_name : string;
  cell_name : string;
  params : Timing_model.params;
  fit_error : float;
  sims : int;
}

(* Delay observations for the cell's representative arc (pin A, falling
   output) over a dense normalized grid.  The paper models one timing
   arc at a time (Section II), and Table I reports one parameter set per
   cell. *)
let cell_observations tech cell =
  let arc = Arc.find cell ~pin:"A" ~out_dir:Arc.Fall in
  let unit_points = Input_space.unit_grid ~levels:[| 4; 4; 3 |] in
  let points = Array.map (Input_space.denormalize tech) unit_points in
  let eq = Equivalent.of_arc tech arc in
  Array.to_list
    (Array.map
       (fun (p : Harness.point) ->
         let m = Harness.simulate tech arc p in
         {
           Extract_lse.point = p;
           ieff = Equivalent.ieff eq ~vdd:p.Harness.vdd;
           value = m.Harness.td;
         })
       points)

let table1 ?(techs = [ Tech.n14; Tech.n28; Tech.n45 ])
    ?(cells = Cells.paper_set) () =
  let labels = [| "A"; "B"; "C"; "D"; "E"; "F" |] in
  List.concat
    (List.mapi
       (fun i tech ->
         List.map
           (fun cell ->
             let before = Harness.sim_count () in
             let obs = Array.of_list (cell_observations tech cell) in
             let params = Extract_lse.fit obs in
             {
               tech_label = labels.(min i (Array.length labels - 1));
               tech_name = tech.Tech.name;
               cell_name = cell.Cells.name;
               params;
               fit_error = Extract_lse.avg_abs_rel_error params obs;
               sims = Harness.sim_count () - before;
             })
           cells)
       techs)

let print_table1 ppf rows =
  Format.fprintf ppf "Table I: extracted delay-model parameters@.";
  Report.table ppf
    ~header:[ "Tech"; "Cell"; "kd"; "Cpar(fF)"; "V'(V)"; "alpha"; "% error" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%s(%s)" r.tech_label r.tech_name;
           r.cell_name;
           Printf.sprintf "%.3f" r.params.Timing_model.kd;
           Printf.sprintf "%.3f" r.params.Timing_model.cpar;
           Printf.sprintf "%.3f" r.params.Timing_model.v_off;
           Printf.sprintf "%.3f" r.params.Timing_model.alpha;
           Printf.sprintf "%.2f%%" (100.0 *. r.fit_error);
         ])
       rows)

type invariance_series = {
  label : string;
  xs : float array;
  ratios : float array;
  deviation : float;
}

let deviation_of ratios =
  let m = Vec.mean ratios in
  Array.fold_left
    (fun acc r -> Float.max acc (Float.abs (r -. m) /. Float.abs m))
    0.0 ratios

(* Fit the model for one arc and metric over a dense grid, to obtain
   the V'/Cpar/alpha used by the invariance plots. *)
let fit_arc tech arc ~slew =
  let unit_points = Input_space.unit_grid ~levels:[| 3; 3; 3 |] in
  let points = Array.map (Input_space.denormalize tech) unit_points in
  let eq = Equivalent.of_arc tech arc in
  let obs =
    Array.map
      (fun (p : Harness.point) ->
        let m = Harness.simulate tech arc p in
        {
          Extract_lse.point = p;
          ieff = Equivalent.ieff eq ~vdd:p.Harness.vdd;
          value = (if slew then m.Harness.sout else m.Harness.td);
        })
      points
  in
  Extract_lse.fit obs

let fig2 ?(tech = Tech.n14) ?(cell = Cells.nor2) ?(n_vdd = 8) () =
  let vdd_lo, vdd_hi = tech.Tech.vdd_range in
  let vdds = Vec.linspace vdd_lo vdd_hi n_vdd in
  let sin_lo, sin_hi = tech.Tech.sin_range in
  let cl_lo, cl_hi = tech.Tech.cload_range in
  let groups =
    [
      (0.3 *. (sin_lo +. sin_hi), 0.3 *. (cl_lo +. cl_hi));
      (0.5 *. (sin_lo +. sin_hi), 0.5 *. (cl_lo +. cl_hi));
      (0.7 *. (sin_lo +. sin_hi), 0.7 *. (cl_lo +. cl_hi));
    ]
  in
  let arcs =
    List.filter
      (fun a -> String.equal a.Arc.pin "A")
      (Arc.all_of_cell cell)
  in
  List.concat_map
    (fun arc ->
      let eq = Equivalent.of_arc tech arc in
      List.concat_map
        (fun slew ->
          let params = fit_arc tech arc ~slew in
          List.mapi
            (fun gi (sin, cload) ->
              let ratios =
                Array.map
                  (fun vdd ->
                    let p = { Harness.sin; cload; vdd } in
                    let m = Harness.simulate tech arc p in
                    let y = if slew then m.Harness.sout else m.Harness.td in
                    let ieff = Equivalent.ieff eq ~vdd in
                    y *. ieff /. (vdd +. params.Timing_model.v_off))
                  vdds
              in
              {
                label =
                  Printf.sprintf "%s %s grp%d"
                    (if slew then "Sout" else "Td")
                    (Arc.direction_to_string arc.Arc.out_dir)
                    (gi + 1);
                xs = vdds;
                ratios;
                deviation = deviation_of ratios;
              })
            groups)
        [ false; true ])
    arcs

let fig3 ?(tech = Tech.n14) ?(cell = Cells.nor2) () =
  let sin_lo, sin_hi = tech.Tech.sin_range in
  let cl_lo, cl_hi = tech.Tech.cload_range in
  (* 14 (Cload, Sin) combinations as in the paper's x axis. *)
  let combos =
    Array.init 14 (fun i ->
        let t = float_of_int i /. 13.0 in
        let sin = sin_lo +. ((sin_hi -. sin_lo) *. Float.rem (t *. 3.7) 1.0) in
        let cload = cl_lo +. ((cl_hi -. cl_lo) *. t) in
        (sin, cload))
  in
  let vdd_lo, vdd_hi = tech.Tech.vdd_range in
  let vdds = [ vdd_lo; 0.5 *. (vdd_lo +. vdd_hi); vdd_hi ] in
  let arcs =
    List.filter (fun a -> String.equal a.Arc.pin "A") (Arc.all_of_cell cell)
  in
  List.concat_map
    (fun arc ->
      let params = fit_arc tech arc ~slew:false in
      List.map
        (fun vdd ->
          let ratios =
            Array.map
              (fun (sin, cload) ->
                let p = { Harness.sin; cload; vdd } in
                let m = Harness.simulate tech arc p in
                let cap =
                  cload
                  +. ((params.Timing_model.cpar
                      +. (params.Timing_model.alpha *. (sin /. 1e-12)))
                     *. 1e-15)
                in
                m.Harness.td /. cap)
              combos
          in
          {
            label =
              Printf.sprintf "Td %s Vdd=%.2f"
                (Arc.direction_to_string arc.Arc.out_dir)
                vdd;
            xs = Array.init 14 (fun i -> float_of_int (i + 1));
            ratios;
            deviation = deviation_of ratios;
          })
        vdds)
    arcs

let print_invariance ppf ~title series =
  Format.fprintf ppf "%s@." title;
  Report.table ppf
    ~header:[ "series"; "n"; "mean ratio"; "max deviation" ]
    (List.map
       (fun s ->
         [
           s.label;
           string_of_int (Array.length s.ratios);
           Printf.sprintf "%.4g" (Vec.mean s.ratios);
           Printf.sprintf "%.2f%%" (100.0 *. s.deviation);
         ])
       series)
