(** Extended timing model with the paper's suggested cross term
    (Section III: "for some technologies ... extra fitting terms
    (e.g., Sin·Cload) might be needed").

    [Td = kd·(Vdd+V')·(Cload + Cpar + α·Sin + γ·Sin·Cload) / Ieff]

    Five parameters instead of four — the model-complexity ablation
    quantifies the accuracy-vs-compression tradeoff the paper
    mentions. *)

type params = {
  base : Timing_model.params;
  gamma : float;  (** cross-term coefficient, 1/ps (the term
                      γ·Sin[ps]·Cload[fF] is in fF) *)
}

val of_base : Timing_model.params -> params
(** Embeds the 4-parameter model ([gamma = 0]). *)

val n_params : int
(** 5. *)

val to_vec : params -> Slc_num.Vec.t

val of_vec : Slc_num.Vec.t -> params

val eval : params -> ieff:float -> Slc_cell.Harness.point -> float

val grad : params -> ieff:float -> Slc_cell.Harness.point -> Slc_num.Vec.t

val fit : ?init:params -> Extract_lse.observation array -> params
(** Least-squares extraction of all five parameters. *)

val avg_abs_rel_error : params -> Extract_lse.observation array -> float
