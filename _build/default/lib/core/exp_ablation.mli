(** Ablations of the design choices DESIGN.md calls out:

    - input-dependent precision β(ξ) vs a constant precision;
    - choice of historical nodes feeding the prior (bias–variance
      tradeoff discussed in Section IV of the paper);
    - pooled prior vs sequential belief-chain propagation across
      nodes. *)

type row = {
  variant : string;
  k : int;
  td_err : float;  (** mean delay error over arcs *)
}

val ablation_beta :
  ?config:Config.t ->
  ?tech:Slc_device.Tech.t ->
  ?prior:Prior.pair ->
  unit ->
  row list
(** MAP error at small k with the learned β(ξ) versus its
    input-averaged constant. *)

val ablation_history :
  ?config:Config.t -> ?tech:Slc_device.Tech.t -> unit -> row list
(** Prior learned from similar nodes (adjacent geometry), all five
    nodes, and dissimilar (oldest) nodes only. *)

val ablation_design :
  ?config:Config.t ->
  ?tech:Slc_device.Tech.t ->
  ?prior:Prior.pair ->
  ?n_draws:int ->
  unit ->
  row list
(** Curated (identifiability-oriented) versus random fitting
    conditions, for both the Bayes and LSE extractions.  Random rows
    average over [n_draws] (default 5) independent draws.  This
    quantifies how much of the LSE baseline's small-k failure in the
    paper stems from random point placement. *)

type complexity_row = {
  cell : string;
  err4 : float;   (** dense-grid fit error of the 4-parameter model *)
  err5 : float;   (** same with the Sin*Cload cross term added *)
}

val ablation_model_complexity :
  ?tech:Slc_device.Tech.t -> unit -> complexity_row list
(** The paper's Section-III tradeoff: model accuracy versus degree of
    data compression, 4 vs 5 parameters. *)

val print_complexity : Format.formatter -> complexity_row list -> unit

type sampling_row = {
  estimator : string;
  mean_ratio : float;  (** mean σ̂ / reference σ (bias indicator) *)
  rep_sd : float;      (** rep-to-rep relative spread of σ̂ (precision) *)
}

val ablation_sampling :
  ?tech:Slc_device.Tech.t ->
  ?n_seeds:int ->
  ?n_reps:int ->
  unit ->
  sampling_row list
(** Monte-Carlo versus Latin-hypercube process sampling: both estimate
    µ(Td) and σ(Td) at a few conditions with [n_seeds] seeds, repeated
    [n_reps] times; a large MC batch provides the bias reference.
    Empirically LHS tightens the mean estimate (stratified marginals)
    but not the sigma estimate — variance is not a mean of an additive
    function, so stratification offers no guarantee there. *)

val print_sampling : Format.formatter -> sampling_row list -> unit

val ablation_chain :
  ?config:Config.t ->
  ?tech:Slc_device.Tech.t ->
  ?prior:Prior.pair ->
  unit ->
  row list
(** Pooled Gaussian prior versus {!Belief.chain_prior} over nodes
    ordered oldest-to-newest. *)

val print_rows : Format.formatter -> title:string -> row list -> unit
