(** The paper's ultra-compact analytical timing model (Section III):

    [Td = kd * (Vdd + V') * (Cload + Cpar + alpha * Sin) / Ieff]

    with exactly four parameters [{kd, Cpar, V', alpha}].  The same form
    models output slew with its own parameter values.

    Parameters are kept in display units matching the paper's Table I —
    [Cpar] in fF, [alpha] in fF/ps, [V'] in V, [kd] dimensionless — so
    that parameter vectors are well-scaled (all O(0.01..10)) for the
    optimizers; inputs and outputs stay in SI. *)

type params = {
  kd : float;
  cpar : float;   (** fF *)
  v_off : float;  (** V' in volts, typically negative *)
  alpha : float;  (** fF/ps *)
}

val to_vec : params -> Slc_num.Vec.t
(** [[| kd; cpar; v_off; alpha |]]. *)

val of_vec : Slc_num.Vec.t -> params

val n_params : int
(** 4. *)

val default_init : params
(** Neutral starting point for fits: [kd=0.4, cpar=1.0, v_off=-0.25,
    alpha=0.1]. *)

val eval : params -> ieff:float -> Slc_cell.Harness.point -> float
(** Model value in seconds.  [ieff] in amperes. *)

val charge : params -> Slc_cell.Harness.point -> float
(** The effective switched charge [ΔQ = (Vdd+V')(Cload+Cpar+α·Sin)] in
    coulombs (paper Eq. 5) — [eval] is [kd * charge / ieff]. *)

val grad : params -> ieff:float -> Slc_cell.Harness.point -> Slc_num.Vec.t
(** Gradient of [eval] w.r.t. the parameter vector (seconds per
    unit-parameter). *)

val rel_residual :
  params -> ieff:float -> Slc_cell.Harness.point -> observed:float -> float
(** [(eval - observed) / observed]; the paper states errors and model
    precisions in relative terms. *)

val pp : Format.formatter -> params -> unit
