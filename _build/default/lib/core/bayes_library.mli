(** Whole-library characterization with the proposed flow — the
    deliverable a library team would actually produce.

    Every timing arc of every cell is characterized by MAP extraction
    from [k] simulations under the historical prior; the result answers
    delay/slew at any input condition, reports its total simulator
    cost, and can be compared against (or exported like) a conventional
    NLDM library. *)

type entry = {
  arc : Slc_cell.Arc.t;
  delay_params : Timing_model.params;
  slew_params : Timing_model.params;
}

type t = {
  tech : Slc_device.Tech.t;
  prior : Prior.pair;
  k : int;
  entries : entry list;
  sim_runs : int;  (** total target-node simulations *)
}

val characterize :
  ?cells:Slc_cell.Cells.t list ->
  ?seed:Slc_device.Process.seed ->
  prior:Prior.pair ->
  Slc_device.Tech.t ->
  k:int ->
  t
(** Defaults to every built-in cell.  Cost is exactly
    [k x number of arcs] (plus window retries). *)

val find : t -> Slc_cell.Arc.t -> entry option

val delay : t -> Slc_cell.Arc.t -> Input_space.point -> float
(** Raises [Not_found] for arcs outside the library. *)

val slew : t -> Slc_cell.Arc.t -> Input_space.point -> float

val oracle_query :
  t -> Slc_cell.Arc.t -> Input_space.point -> float * float
(** [(delay, slew)] — plugs directly into [Slc_ssta.Oracle]. *)

val validate :
  ?n:int ->
  ?rng_seed:int ->
  t ->
  (string * Char_flow.errors) list
(** Simulated validation per arc ([n] random conditions each, default
    40): the honest accuracy report to ship with the library. *)

val summary : Format.formatter -> t -> unit
