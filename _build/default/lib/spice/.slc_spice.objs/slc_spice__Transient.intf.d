lib/spice/transient.mli: Netlist Waveform
