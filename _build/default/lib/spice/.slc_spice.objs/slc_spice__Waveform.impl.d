lib/spice/waveform.ml: Array Float Format List Slc_num String
