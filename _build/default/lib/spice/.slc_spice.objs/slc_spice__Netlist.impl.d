lib/spice/netlist.ml: List Slc_device Stimulus
