lib/spice/netlist.mli: Slc_device Stimulus
