lib/spice/transient.ml: Array Float List Netlist Slc_device Slc_num Stimulus Waveform
