lib/spice/stimulus.mli:
