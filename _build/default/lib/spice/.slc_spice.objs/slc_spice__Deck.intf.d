lib/spice/deck.mli: Format Netlist Slc_device
