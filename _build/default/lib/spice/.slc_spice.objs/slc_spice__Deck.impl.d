lib/spice/deck.ml: Char Format Hashtbl List Netlist Option Printf Slc_device Stimulus String
