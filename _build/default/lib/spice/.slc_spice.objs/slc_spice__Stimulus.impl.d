lib/spice/stimulus.ml: Array
