lib/spice/waveform.mli: Format Slc_num
