(** Simulated waveforms and timing measurements. *)

type t = { times : Slc_num.Vec.t; values : Slc_num.Vec.t }
(** Sampled voltage-vs-time trace; [times] strictly increasing, equal
    lengths. *)

val make : times:Slc_num.Vec.t -> values:Slc_num.Vec.t -> t

val length : t -> int

val value_at : t -> float -> float
(** Linear interpolation; clamps outside the simulated interval. *)

val final_value : t -> float

type direction = Rising | Falling

val cross_time : t -> ?after:float -> direction -> float -> float option
(** [cross_time w dir level] is the first time (after [after], default
    the trace start) at which the waveform crosses [level] in the given
    direction, linearly interpolated. *)

val measure_delay :
  input:t -> output:t -> vdd:float -> out_dir:direction -> float option
(** 50%-to-50% propagation delay: output 50% crossing minus input 50%
    crossing (input direction is the opposite of [out_dir] for an
    inverting stage; the input crossing is searched in both
    directions). *)

val measure_slew : t -> vdd:float -> direction -> float option
(** Output transition time: 20%–80% crossing interval divided by 0.6
    (extrapolated full-swing).  With this convention a pure linear ramp
    of duration [T] has slew exactly [T]. *)

val settled : t -> vdd:float -> target:float -> tol_frac:float -> bool
(** Whether the final value is within [tol_frac * vdd] of [target]. *)

val to_csv : Format.formatter -> (string * t) list -> unit
(** Dumps named waveforms as CSV (time plus one column per waveform,
    resampled onto the first waveform's time grid) for external
    plotting.  Raises [Invalid_argument] on an empty list. *)
