(** Circuit netlists.

    Nodes are integer handles; node 0 is ground.  Voltage sources pin
    a node directly to a stimulus (every source in this project is
    ground-referenced, which lets the solver eliminate source branches
    instead of carrying MNA branch currents). *)

type node = int

val ground : node

type element =
  | Mosfet of { params : Slc_device.Mosfet.params; g : node; d : node; s : node }
  | Capacitor of { c : float; a : node; b : node }
  | Resistor of { r : float; a : node; b : node }

type t

val create : unit -> t

val fresh_node : t -> string -> node
(** Allocates a new named node. *)

val node_name : t -> node -> string

val node_count : t -> int
(** Total number of nodes including ground. *)

val add_mosfet :
  t -> Slc_device.Mosfet.params -> g:node -> d:node -> s:node -> unit

val add_capacitor : t -> float -> a:node -> b:node -> unit
(** [c] must be >= 0; zero-valued capacitors are dropped. *)

val add_resistor : t -> float -> a:node -> b:node -> unit
(** [r] must be > 0. *)

val add_vsource : t -> Stimulus.t -> node -> unit
(** Pin a node to a stimulus.  A node can be pinned at most once. *)

val elements : t -> element list
(** In insertion order. *)

val sources : t -> (node * Stimulus.t) list

val pinned : t -> node -> bool

val device_count : t -> int
(** Number of MOSFETs added so far (used as the device instance index
    for local-mismatch streams). *)

val validate : t -> unit
(** Checks that every element references allocated nodes and that the
    circuit has at least one free node; raises [Invalid_argument]
    otherwise. *)
