module Mosfet = Slc_device.Mosfet
module Mat = Slc_num.Mat
module Linalg = Slc_num.Linalg

type integrator = Backward_euler | Trapezoidal

type options = {
  integrator : integrator;
  tstop : float;
  dt_init : float;
  dt_min : float;
  dt_max : float;
  abstol : float;
  dxtol : float;
  max_newton : int;
  gmin : float;
  breakpoints : float list;
}

let default_options ~tstop =
  if tstop <= 0.0 then invalid_arg "Transient.default_options: tstop <= 0";
  {
    integrator = Trapezoidal;
    tstop;
    dt_init = tstop /. 400.0;
    dt_min = tstop *. 1e-7;
    dt_max = tstop /. 100.0;
    abstol = 1e-12;
    dxtol = 1e-7;
    max_newton = 40;
    gmin = 1e-12;
    breakpoints = [];
  }

exception No_convergence of string

(* Compiled view of the netlist for fast stamping. *)
type compiled = {
  n_nodes : int;
  free_index : int array; (* node id -> solver index, or -1 if pinned *)
  free_nodes : int array; (* solver index -> node id *)
  mosfets : (Mosfet.params * int * int * int) array;
  caps : (float * int * int) array;
  resistors : (float * int * int) array;
  srcs : (int * Stimulus.t) array;
}

let compile net =
  Netlist.validate net;
  let n_nodes = Netlist.node_count net in
  let free_index = Array.make n_nodes (-1) in
  let free = ref [] in
  for n = n_nodes - 1 downto 1 do
    if not (Netlist.pinned net n) then free := n :: !free
  done;
  let free_nodes = Array.of_list !free in
  Array.iteri (fun i n -> free_index.(n) <- i) free_nodes;
  let mosfets = ref [] and caps = ref [] and resistors = ref [] in
  List.iter
    (fun e ->
      match e with
      | Netlist.Mosfet { params; g; d; s } ->
        mosfets := (params, g, d, s) :: !mosfets
      | Netlist.Capacitor { c; a; b } -> caps := (c, a, b) :: !caps
      | Netlist.Resistor { r; a; b } -> resistors := (r, a, b) :: !resistors)
    (Netlist.elements net);
  {
    n_nodes;
    free_index;
    free_nodes;
    mosfets = Array.of_list (List.rev !mosfets);
    caps = Array.of_list (List.rev !caps);
    resistors = Array.of_list (List.rev !resistors);
    srcs = Array.of_list (Netlist.sources net);
  }

let apply_sources c v t =
  Array.iter (fun (n, stim) -> v.(n) <- stim t) c.srcs

(* Stamp static (resistive + device + gmin) contributions into residual f
   and Jacobian jac.  v is the full node-voltage array. *)
let stamp_static c ~gmin v f jac =
  let fi = c.free_index in
  let add_f n x = if fi.(n) >= 0 then f.(fi.(n)) <- f.(fi.(n)) +. x in
  let add_j n m x =
    if fi.(n) >= 0 && fi.(m) >= 0 then
      Mat.set jac fi.(n) fi.(m) (Mat.get jac fi.(n) fi.(m) +. x)
  in
  Array.iter
    (fun (r, a, b) ->
      let g = 1.0 /. r in
      let i = g *. (v.(a) -. v.(b)) in
      add_f a i;
      add_f b (-.i);
      add_j a a g;
      add_j a b (-.g);
      add_j b b g;
      add_j b a (-.g))
    c.resistors;
  Array.iter
    (fun (p, g, d, s) ->
      let e = Mosfet.eval p ~vg:v.(g) ~vd:v.(d) ~vs:v.(s) in
      (* e.id enters the drain terminal: it leaves node d and enters
         node s. *)
      add_f d e.id;
      add_f s (-.e.id);
      add_j d g e.d_vg;
      add_j d d e.d_vd;
      add_j d s e.d_vs;
      add_j s g (-.e.d_vg);
      add_j s d (-.e.d_vd);
      add_j s s (-.e.d_vs))
    c.mosfets;
  (* gmin keeps isolated or floating nodes well-conditioned. *)
  Array.iteri
    (fun i n ->
      f.(i) <- f.(i) +. (gmin *. v.(n));
      Mat.set jac i i (Mat.get jac i i +. gmin))
    c.free_nodes

(* Capacitor current for the chosen integration method.  For
   trapezoidal integration the companion model needs the capacitor
   current at the previous accepted step (icap_prev). *)
let cap_current ~method_ ~dt cap dv dv_prev i_prev =
  match method_ with
  | Backward_euler -> cap /. dt *. (dv -. dv_prev)
  | Trapezoidal -> (2.0 *. cap /. dt *. (dv -. dv_prev)) -. i_prev

let cap_conductance ~method_ ~dt cap =
  match method_ with
  | Backward_euler -> cap /. dt
  | Trapezoidal -> 2.0 *. cap /. dt

let stamp_caps c ~method_ ~dt ~icap_prev v v_prev f jac =
  let fi = c.free_index in
  let add_f n x = if fi.(n) >= 0 then f.(fi.(n)) <- f.(fi.(n)) +. x in
  let add_j n m x =
    if fi.(n) >= 0 && fi.(m) >= 0 then
      Mat.set jac fi.(n) fi.(m) (Mat.get jac fi.(n) fi.(m) +. x)
  in
  Array.iteri
    (fun idx (cap, a, b) ->
      let geq = cap_conductance ~method_ ~dt cap in
      let i =
        cap_current ~method_ ~dt cap
          (v.(a) -. v.(b))
          (v_prev.(a) -. v_prev.(b))
          icap_prev.(idx)
      in
      add_f a i;
      add_f b (-.i);
      add_j a a geq;
      add_j a b (-.geq);
      add_j b b geq;
      add_j b a (-.geq))
    c.caps

(* Damped Newton on the free nodes.  [with_caps] selects transient vs DC
   residuals.  Returns the number of iterations or None on failure;
   v is updated in place on success (and left modified on failure). *)
let newton c opts ~gmin ~caps ~v_prev v =
  let n = Array.length c.free_nodes in
  let f = Array.make n 0.0 in
  let rec iterate k =
    if k > opts.max_newton then None
    else begin
      Array.fill f 0 n 0.0;
      let jac = Mat.create n n in
      stamp_static c ~gmin v f jac;
      (match caps with
      | Some (method_, dt, icap_prev) ->
        stamp_caps c ~method_ ~dt ~icap_prev v v_prev f jac
      | None -> ());
      let fnorm = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 f in
      let dx =
        try Some (Linalg.solve jac (Array.map (fun x -> -.x) f))
        with Linalg.Singular _ -> None
      in
      match dx with
      | None -> None
      | Some dx ->
        (* Voltage-step damping: cap updates at 0.3 V per iteration. *)
        let dmax =
          Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 dx
        in
        let scale = if dmax > 0.3 then 0.3 /. dmax else 1.0 in
        Array.iteri
          (fun i node -> v.(node) <- v.(node) +. (scale *. dx.(i)))
          c.free_nodes;
        if fnorm < opts.abstol && dmax *. scale < opts.dxtol then Some k
        else iterate (k + 1)
    end
  in
  iterate 1

let dc_solve c opts ~at v =
  apply_sources c v at;
  let v_prev = Array.copy v in
  (* Direct attempt, then gmin stepping from strongly damped to the
     target gmin. *)
  match newton c opts ~gmin:opts.gmin ~caps:None ~v_prev v with
  | Some _ -> ()
  | None ->
    let ok = ref false in
    let attempt gmin_start =
      if not !ok then begin
        (* Reset the guess to mid-rail before each continuation run. *)
        let vmax =
          Array.fold_left (fun m (_, stim) -> Float.max m (stim at)) 0.0 c.srcs
        in
        Array.iter (fun nfree -> v.(nfree) <- 0.5 *. vmax) c.free_nodes;
        apply_sources c v at;
        let g = ref gmin_start in
        let all_ok = ref true in
        while !all_ok && !g >= opts.gmin do
          (match newton c opts ~gmin:!g ~caps:None ~v_prev v with
          | Some _ -> ()
          | None -> all_ok := false);
          g := !g /. 100.0
        done;
        if !all_ok then ok := true
      end
    in
    attempt 1e-3;
    attempt 1e-1;
    if not !ok then raise (No_convergence "dc_solve: gmin stepping failed")

let dc_operating_point net ~at =
  let c = compile net in
  let v = Array.make c.n_nodes 0.0 in
  let opts = default_options ~tstop:1.0 in
  let vmax = Array.fold_left (fun m (_, stim) -> Float.max m (stim at)) 0.0 c.srcs in
  Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
  dc_solve c opts ~at v;
  v

let dc_sweep net ~node ~values =
  let c = compile net in
  if c.free_index.(node) >= 0 || node = 0 then
    invalid_arg "Transient.dc_sweep: node must be driven by a source";
  let opts = default_options ~tstop:1.0 in
  let v = Array.make c.n_nodes 0.0 in
  let vmax =
    Array.fold_left (fun m (_, stim) -> Float.max m (stim 0.0)) 0.0 c.srcs
  in
  Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
  apply_sources c v 0.0;
  Array.map
    (fun value ->
      v.(node) <- value;
      let v_prev = Array.copy v in
      (match newton c opts ~gmin:opts.gmin ~caps:None ~v_prev v with
      | Some _ -> ()
      | None ->
        (* Fall back to a full solve from scratch for this point. *)
        Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
        apply_sources c v 0.0;
        v.(node) <- value;
        dc_solve c opts ~at:0.0 v;
        v.(node) <- value;
        (match newton c opts ~gmin:opts.gmin ~caps:None ~v_prev:(Array.copy v) v with
        | Some _ -> ()
        | None -> raise (No_convergence "dc_sweep")));
      Array.copy v)
    values

type result = {
  r_times : float array;
  r_volts : float array array; (* per step, full node vector *)
  r_newton : int;
  r_steps : int;
}

let run opts net =
  if opts.tstop <= 0.0 then invalid_arg "Transient.run: tstop <= 0";
  let c = compile net in
  let v = Array.make c.n_nodes 0.0 in
  let vmax = Array.fold_left (fun m (_, stim) -> Float.max m (stim 0.0)) 0.0 c.srcs in
  Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
  dc_solve c opts ~at:0.0 v;
  let break_times =
    List.sort_uniq compare
      (List.filter (fun t -> t > 0.0 && t < opts.tstop) opts.breakpoints)
  in
  let times = ref [ 0.0 ] in
  let volts = ref [ Array.copy v ] in
  let newton_total = ref 0 in
  let steps = ref 0 in
  (* Per-capacitor branch current at the last accepted time point
     (zero at the DC operating point). *)
  let icap = ref (Array.map (fun _ -> 0.0) c.caps) in
  let t = ref 0.0 in
  let dt = ref opts.dt_init in
  let pending_breaks = ref break_times in
  while !t < opts.tstop -. (1e-9 *. opts.tstop) do
    (* Clip the step to the next breakpoint or tstop. *)
    let next_limit =
      match !pending_breaks with
      | b :: _ when b > !t +. (1e-12 *. opts.tstop) -> Float.min b opts.tstop
      | _ -> opts.tstop
    in
    let dt_eff = Float.min !dt (next_limit -. !t) in
    let t_new = !t +. dt_eff in
    let v_prev = Array.copy v in
    apply_sources c v t_new;
    (* Trapezoidal needs a valid previous cap current; take the very
       first step with backward Euler. *)
    let method_ =
      match opts.integrator with
      | Backward_euler -> Backward_euler
      | Trapezoidal -> if !steps = 0 then Backward_euler else Trapezoidal
    in
    (match
       newton c opts ~gmin:opts.gmin
         ~caps:(Some (method_, dt_eff, !icap))
         ~v_prev v
     with
    | Some iters ->
      (* Commit the capacitor-current state for the accepted step. *)
      let icap_new =
        Array.mapi
          (fun idx (cap, a, b) ->
            cap_current ~method_ ~dt:dt_eff cap
              (v.(a) -. v.(b))
              (v_prev.(a) -. v_prev.(b))
              !icap.(idx))
          c.caps
      in
      icap := icap_new;
      newton_total := !newton_total + iters;
      incr steps;
      t := t_new;
      times := t_new :: !times;
      volts := Array.copy v :: !volts;
      (match !pending_breaks with
      | b :: rest when t_new >= b -. (1e-12 *. opts.tstop) ->
        pending_breaks := rest
      | _ -> ());
      (* Grow the step after quick convergence. *)
      if iters <= 5 then dt := Float.min opts.dt_max (!dt *. 1.4)
      else if iters > 15 then dt := Float.max opts.dt_min (!dt *. 0.7)
    | None ->
      (* Reject: restore state and halve the step. *)
      Array.blit v_prev 0 v 0 c.n_nodes;
      dt := dt_eff /. 2.0;
      if !dt < opts.dt_min then
        raise (No_convergence "run: step size underflow"))
  done;
  {
    r_times = Array.of_list (List.rev !times);
    r_volts = Array.of_list (List.rev !volts);
    r_newton = !newton_total;
    r_steps = !steps;
  }

let times r = r.r_times

let waveform r node =
  if Array.length r.r_volts = 0 then invalid_arg "Transient.waveform: empty";
  if node < 0 || node >= Array.length r.r_volts.(0) then
    invalid_arg "Transient.waveform: unknown node";
  let values = Array.map (fun v -> v.(node)) r.r_volts in
  Waveform.make ~times:r.r_times ~values

let newton_iterations_total r = r.r_newton

let steps_taken r = r.r_steps
