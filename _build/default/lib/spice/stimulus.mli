(** Time-domain voltage stimuli for independent sources. *)

type t = float -> float
(** A stimulus is simply voltage as a function of time. *)

val dc : float -> t

val ramp : t0:float -> duration:float -> v_from:float -> v_to:float -> t
(** Linear transition from [v_from] to [v_to] starting at [t0]; constant
    before and after.  [duration] must be > 0. *)

val pwl : (float * float) list -> t
(** Piecewise-linear waveform through the given (time, value) points
    (times strictly increasing, at least one point); constant
    extrapolation outside. *)

val breakpoints : t0:float -> duration:float -> float list
(** Suggested solver breakpoints (corner times) of a ramp. *)
