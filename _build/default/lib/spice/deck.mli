(** SPICE-deck interchange: write a netlist as a classic .sp deck and
    parse the subset this project emits.

    Supported cards: [M] (MOSFET with a model name bound through a
    model table), [C], [R], [V] (DC or PWL), [.tran], [.end], [*]
    comments, and engineering suffixes (f, p, n, u, m, k, meg, g) on
    numbers.  Node 0 is ground; other nodes are named and allocated in
    first-appearance order. *)

type source = Dc of float | Pwl of (float * float) list

type card =
  | Mosfet_card of {
      name : string;
      d : string;
      g : string;
      s : string;
      model : string;
      w : float;
      l : float;
    }
  | Cap_card of { name : string; a : string; b : string; value : float }
  | Res_card of { name : string; a : string; b : string; value : float }
  | Vsource_card of { name : string; plus : string; source : source }

type t = {
  title : string;
  cards : card list;
  tran : (float * float) option;  (** (dt suggestion, tstop) *)
}

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} with a line number on malformed input. *)

val parse_number : string -> float
(** Engineering notation: ["2.5p"] = 2.5e-12, ["1meg"] = 1e6, ... *)

val to_netlist :
  t -> models:(string -> Slc_device.Mosfet.params) -> Netlist.t * (string -> Netlist.node)
(** Builds a solvable netlist; [models] resolves a model name to device
    parameters (width/length from the card override the template).
    Returns the netlist and a name→node resolver.
    Raises [Invalid_argument] on unknown nodes only at query time. *)

val write : Format.formatter -> t -> unit

val to_string : t -> string
