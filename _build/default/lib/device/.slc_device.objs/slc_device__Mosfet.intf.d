lib/device/mosfet.mli:
