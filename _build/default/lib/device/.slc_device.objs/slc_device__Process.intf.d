lib/device/process.mli: Mosfet Slc_prob Tech
