lib/device/tech.ml: List Mosfet Printf String
