lib/device/process.ml: Array Float Int64 Mosfet Slc_prob Tech
