lib/device/tech.mli: Mosfet Slc_prob
