lib/device/mosfet.ml:
