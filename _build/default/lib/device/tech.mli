(** Technology cards: six synthetic nodes standing in for the paper's
    production design kits (14 nm FinFET … 45 nm, bulk and SOI).  Each
    card fixes the device templates, nominal supply, variability
    coefficients and the library input-space box over which cells are
    characterized. *)

type flavor = Bulk | Soi | Finfet

type t = {
  name : string;
  node_nm : int;
  flavor : flavor;
  vdd_nom : float;  (** nominal supply, V *)
  nmos : Mosfet.params;  (** minimum-width NMOS template *)
  pmos : Mosfet.params;  (** minimum-width PMOS template *)
  (* Variability --------------------------------------------------- *)
  avt : float;  (** Pelgrom mismatch coefficient, V*m: sigma_vt_local =
                    avt / sqrt (W * L) *)
  sigma_vt_global : float;  (** inter-die threshold shift sigma, V *)
  sigma_kp_rel : float;     (** relative drive-factor sigma *)
  sigma_l_rel : float;      (** relative channel-length sigma *)
  sigma_cpar_rel : float;   (** relative parasitic-capacitance sigma *)
  (* Library input space ------------------------------------------- *)
  sin_range : float * float;    (** input slew range, s *)
  cload_range : float * float;  (** load capacitance range, F *)
  vdd_range : float * float;    (** supply range, V *)
}

val n14 : t
(** FinFET-like 14 nm node — the target of the paper's first example. *)

val n20 : t

val n28 : t
(** Bulk 28 nm node — the target of the paper's statistical example. *)

val n32 : t
(** SOI-flavored node. *)

val n40 : t

val n45 : t

val all : t list
(** All six nodes, newest first. *)

val by_name : string -> t
(** Looks a node up by [name]; raises [Not_found]. *)

val at_temperature : t -> celsius:float -> t
(** The node's devices re-evaluated at a junction temperature (the
    cards are defined at 25 C).  Characterizing [at_temperature t 125.0]
    gives the hot corner of the same node. *)

val vt_variant : t -> shift:float -> suffix:string -> t
(** A threshold-voltage flavor of a node (multi-Vt library option):
    shifts both device thresholds by [shift] volts (negative = LVT,
    faster and leakier) and renames the card with [suffix].  Used by
    the cross-flavor transfer extension. *)

val historical_for : t -> t list
(** All nodes except the given target — the default "past
    characterizations" set used to learn priors. *)

val input_box : t -> Slc_prob.Sampling.box
(** The 3-D box [(sin, cload, vdd)] of the node's library input space. *)
