(** Process-variation model.

    A {e seed} is one sampled process condition: global (inter-die)
    shifts shared by every device, plus a sub-seed from which local
    (Pelgrom) mismatch is drawn deterministically per device instance.
    Running the same seed twice therefore yields the same netlist — the
    property the statistical flow relies on when the same seed is
    simulated at several input conditions. *)

type seed = {
  index : int;           (** seed number within its Monte-Carlo batch *)
  dvt_n : float;         (** global NMOS threshold shift, V *)
  dvt_p : float;         (** global PMOS threshold shift, V *)
  dkp_rel : float;       (** global relative drive-factor shift *)
  dl_rel : float;        (** global relative channel-length shift *)
  dcpar_rel : float;     (** global relative parasitic-cap shift *)
  local_seed : int;      (** base for per-device local mismatch *)
}

val nominal : seed
(** The all-zero seed (no variation); [index = -1]. *)

type corner = Ss | Tt | Ff | Sf | Fs
(** Named global process corners: slow/typical/fast NMOS x PMOS, at
    the conventional 3-sigma global shifts. *)

val corner : Tech.t -> corner -> seed
(** Deterministic corner seed (no local mismatch): threshold shifted by
    +/- 3 sigma_vt_global and drive by -/+ 2 sigma_kp_rel per device
    polarity. *)

val sample : Slc_prob.Rng.t -> Tech.t -> int -> seed
(** [sample rng tech index] draws one seed using the node's variability
    coefficients. *)

val sample_batch : Slc_prob.Rng.t -> Tech.t -> int -> seed array
(** [sample_batch rng tech n] draws [n] seeds indexed [0 .. n-1]. *)

val sample_batch_lhs : Slc_prob.Rng.t -> Tech.t -> int -> seed array
(** Latin-hypercube batch over the five global-variation dimensions:
    each dimension's Gaussian is stratified into [n] equal-probability
    slices, one seed per slice — same marginals as {!sample_batch},
    lower Monte-Carlo variance for population statistics. *)

val local_dvt : seed -> Tech.t -> device_index:int -> Mosfet.params -> float
(** Deterministic local threshold shift of the device with the given
    instance index: N(0, (avt / sqrt (W L))^2) drawn from a stream keyed
    by [(local_seed, device_index)]. *)

val apply : seed -> Tech.t -> device_index:int -> Mosfet.params -> Mosfet.params
(** Applies global and local variations to a device template. *)

val cpar_scale : seed -> float
(** Multiplier for parasitic capacitances under this seed. *)
