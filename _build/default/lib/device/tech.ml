type flavor = Bulk | Soi | Finfet

type t = {
  name : string;
  node_nm : int;
  flavor : flavor;
  vdd_nom : float;
  nmos : Mosfet.params;
  pmos : Mosfet.params;
  avt : float;
  sigma_vt_global : float;
  sigma_kp_rel : float;
  sigma_l_rel : float;
  sigma_cpar_rel : float;
  sin_range : float * float;
  cload_range : float * float;
  vdd_range : float * float;
}

let fF_per_um = 1e-9 (* 1 fF/um expressed in F/m *)

let ps = 1e-12

let fF = 1e-15

let make_node ~name ~node_nm ~flavor ~vdd_nom ~l ~w_min ~vt_n ~vt_p ~kp_n
    ~kp_p ~alpha ~lambda ~cg ~cj ~avt ~sigma_vt_global ~sin_range ~cload_range
    ~vdd_range =
  let base polarity vt kp : Mosfet.params =
    {
      polarity;
      w = w_min;
      l;
      vt;
      kp;
      alpha;
      theta = 0.035;
      vsat_frac = 0.55;
      lambda;
      cg;
      cj;
    }
  in
  {
    name;
    node_nm;
    flavor;
    vdd_nom;
    nmos = base Mosfet.Nmos vt_n kp_n;
    pmos = base Mosfet.Pmos vt_p kp_p;
    avt;
    sigma_vt_global;
    sigma_kp_rel = 0.05;
    sigma_l_rel = 0.025;
    sigma_cpar_rel = 0.05;
    sin_range;
    cload_range;
    vdd_range;
  }

let n14 =
  make_node ~name:"n14" ~node_nm:14 ~flavor:Finfet ~vdd_nom:0.80 ~l:20e-9
    ~w_min:100e-9 ~vt_n:0.32 ~vt_p:0.34 ~kp_n:4.0e-5 ~kp_p:3.0e-5 ~alpha:1.25
    ~lambda:0.06
    ~cg:(1.25 *. fF_per_um)
    ~cj:(0.85 *. fF_per_um)
    ~avt:1.4e-9 ~sigma_vt_global:0.018
    ~sin_range:(1.0 *. ps, 15.0 *. ps)
    ~cload_range:(0.5 *. fF, 6.0 *. fF)
    ~vdd_range:(0.65, 1.0)

let n20 =
  make_node ~name:"n20" ~node_nm:20 ~flavor:Bulk ~vdd_nom:0.90 ~l:24e-9
    ~w_min:120e-9 ~vt_n:0.34 ~vt_p:0.36 ~kp_n:3.2e-5 ~kp_p:2.4e-5 ~alpha:1.30
    ~lambda:0.07
    ~cg:(1.15 *. fF_per_um)
    ~cj:(0.80 *. fF_per_um)
    ~avt:1.6e-9 ~sigma_vt_global:0.020
    ~sin_range:(1.5 *. ps, 18.0 *. ps)
    ~cload_range:(0.6 *. fF, 7.0 *. fF)
    ~vdd_range:(0.72, 1.08)

let n28 =
  make_node ~name:"n28" ~node_nm:28 ~flavor:Bulk ~vdd_nom:1.00 ~l:30e-9
    ~w_min:150e-9 ~vt_n:0.38 ~vt_p:0.40 ~kp_n:2.6e-5 ~kp_p:1.9e-5 ~alpha:1.35
    ~lambda:0.08
    ~cg:(1.05 *. fF_per_um)
    ~cj:(0.75 *. fF_per_um)
    ~avt:1.9e-9 ~sigma_vt_global:0.022
    ~sin_range:(2.0 *. ps, 20.0 *. ps)
    ~cload_range:(0.8 *. fF, 8.0 *. fF)
    ~vdd_range:(0.70, 1.05)

let n32 =
  make_node ~name:"n32" ~node_nm:32 ~flavor:Soi ~vdd_nom:1.00 ~l:34e-9
    ~w_min:170e-9 ~vt_n:0.36 ~vt_p:0.39 ~kp_n:2.4e-5 ~kp_p:1.8e-5 ~alpha:1.40
    ~lambda:0.05 (* SOI: better output resistance, lower junction cap *)
    ~cg:(1.00 *. fF_per_um)
    ~cj:(0.45 *. fF_per_um)
    ~avt:2.0e-9 ~sigma_vt_global:0.021
    ~sin_range:(2.0 *. ps, 22.0 *. ps)
    ~cload_range:(0.8 *. fF, 9.0 *. fF)
    ~vdd_range:(0.72, 1.10)

let n40 =
  make_node ~name:"n40" ~node_nm:40 ~flavor:Bulk ~vdd_nom:1.10 ~l:45e-9
    ~w_min:200e-9 ~vt_n:0.42 ~vt_p:0.44 ~kp_n:2.0e-5 ~kp_p:1.5e-5 ~alpha:1.45
    ~lambda:0.09
    ~cg:(0.95 *. fF_per_um)
    ~cj:(0.70 *. fF_per_um)
    ~avt:2.4e-9 ~sigma_vt_global:0.024
    ~sin_range:(2.5 *. ps, 25.0 *. ps)
    ~cload_range:(1.0 *. fF, 10.0 *. fF)
    ~vdd_range:(0.80, 1.20)

let n45 =
  make_node ~name:"n45" ~node_nm:45 ~flavor:Bulk ~vdd_nom:1.10 ~l:50e-9
    ~w_min:220e-9 ~vt_n:0.45 ~vt_p:0.47 ~kp_n:1.8e-5 ~kp_p:1.35e-5 ~alpha:1.50
    ~lambda:0.10
    ~cg:(0.90 *. fF_per_um)
    ~cj:(0.68 *. fF_per_um)
    ~avt:2.6e-9 ~sigma_vt_global:0.025
    ~sin_range:(2.5 *. ps, 28.0 *. ps)
    ~cload_range:(1.0 *. fF, 11.0 *. fF)
    ~vdd_range:(0.80, 1.21)

let all = [ n14; n20; n28; n32; n40; n45 ]

let by_name name =
  match List.find_opt (fun t -> String.equal t.name name) all with
  | Some t -> t
  | None -> raise Not_found

let at_temperature t ~celsius =
  {
    t with
    name = Printf.sprintf "%s@%gC" t.name celsius;
    nmos = Mosfet.at_temperature t.nmos ~celsius;
    pmos = Mosfet.at_temperature t.pmos ~celsius;
  }

let vt_variant t ~shift ~suffix =
  {
    t with
    name = t.name ^ suffix;
    nmos = { t.nmos with Mosfet.vt = t.nmos.Mosfet.vt +. shift };
    pmos = { t.pmos with Mosfet.vt = t.pmos.Mosfet.vt +. shift };
  }

let historical_for target =
  List.filter (fun t -> not (String.equal t.name target.name)) all

let input_box t = [| t.sin_range; t.cload_range; t.vdd_range |]
