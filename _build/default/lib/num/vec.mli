(** Dense vectors of floats.

    A vector is a plain [float array]; this module provides the arithmetic
    and reductions used throughout the library.  All binary operations
    require equal lengths and raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> t
(** [create n] is a zero vector of length [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val of_list : float list -> t

val to_list : t -> float list

val copy : t -> t

val dim : t -> int

val fill : t -> float -> unit
(** [fill v x] sets every component of [v] to [x]. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val neg : t -> t

val mul_elt : t -> t -> t
(** Component-wise (Hadamard) product. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val dist2 : t -> t -> float
(** Euclidean distance between two vectors. *)

val sum : t -> float

val mean : t -> float
(** Raises [Invalid_argument] on the empty vector. *)

val min_elt : t -> float

val max_elt : t -> float

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val iteri : (int -> float -> unit) -> t -> unit

val fold_left : ('a -> float -> 'a) -> 'a -> t -> 'a

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive. *)

val logspace : float -> float -> int -> t
(** [logspace a b n] is [n] points spaced evenly on a log scale between
    [a > 0] and [b > 0] inclusive. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance [tol] (default
    [1e-9]). *)

val pp : Format.formatter -> t -> unit
