(** Scalar numerical integration. *)

val trapezoid : (float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite trapezoid rule with [n >= 1] panels. *)

val simpson : (float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite Simpson rule; [n] is rounded up to the next even panel
    count. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> (float -> float) -> lo:float -> hi:float ->
  unit -> float

val trapezoid_samples : xs:Vec.t -> ys:Vec.t -> float
(** Trapezoid rule over tabulated samples (axis must be increasing). *)
