let trapezoid f ~lo ~hi ~n =
  if n < 1 then invalid_arg "Quadrature.trapezoid: n must be >= 1";
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref (0.5 *. (f lo +. f hi)) in
  for i = 1 to n - 1 do
    acc := !acc +. f (lo +. (float_of_int i *. h))
  done;
  !acc *. h

let simpson f ~lo ~hi ~n =
  let n = if n mod 2 = 0 then n else n + 1 in
  let n = max n 2 in
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref (f lo +. f hi) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4.0 else 2.0 in
    acc := !acc +. (w *. f (lo +. (float_of_int i *. h)))
  done;
  !acc *. h /. 3.0

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 30) f ~lo ~hi () =
  let simpson3 a b fa fm fb = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
  let rec go a b fa fm fb whole tol depth =
    let m = 0.5 *. (a +. b) in
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson3 a m fa flm fm in
    let right = simpson3 m b fm frm fb in
    let delta = left +. right -. whole in
    if depth >= max_depth || Float.abs delta <= 15.0 *. tol then
      left +. right +. (delta /. 15.0)
    else
      go a m fa flm fm left (tol /. 2.0) (depth + 1)
      +. go m b fm frm fb right (tol /. 2.0) (depth + 1)
  in
  let fa = f lo and fb = f hi and fm = f (0.5 *. (lo +. hi)) in
  go lo hi fa fm fb (simpson3 lo hi fa fm fb) tol 0

let trapezoid_samples ~xs ~ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Quadrature.trapezoid_samples: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length xs - 2 do
    acc := !acc +. (0.5 *. (ys.(i) +. ys.(i + 1)) *. (xs.(i + 1) -. xs.(i)))
  done;
  !acc
