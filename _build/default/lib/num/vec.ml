type t = float array

let create n = Array.make n 0.0

let init = Array.init

let of_list = Array.of_list

let to_list = Array.to_list

let copy = Array.copy

let dim = Array.length

let fill v x = Array.fill v 0 (Array.length v) x

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_dims "sub" a b;
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale s a = Array.map (fun x -> s *. x) a

let neg a = Array.map (fun x -> -.x) a

let mul_elt a b =
  check_dims "mul_elt" a b;
  Array.init (Array.length a) (fun i -> a.(i) *. b.(i))

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 a

let dist2 a b = norm2 (sub a b)

let sum = Array.fold_left ( +. ) 0.0

let mean a =
  if Array.length a = 0 then invalid_arg "Vec.mean: empty vector";
  sum a /. float_of_int (Array.length a)

let min_elt a =
  if Array.length a = 0 then invalid_arg "Vec.min_elt: empty vector";
  Array.fold_left Float.min a.(0) a

let max_elt a =
  if Array.length a = 0 then invalid_arg "Vec.max_elt: empty vector";
  Array.fold_left Float.max a.(0) a

let map = Array.map

let map2 f a b =
  check_dims "map2" a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let iteri = Array.iteri

let fold_left = Array.fold_left

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: need at least 2 points";
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. h))

let logspace a b n =
  if a <= 0.0 || b <= 0.0 then invalid_arg "Vec.logspace: bounds must be > 0";
  Array.map exp (linspace (log a) (log b) n)

let approx_equal ?(tol = 1e-9) a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if Float.abs (a.(i) -. b.(i)) > tol then ok := false
  done;
  !ok

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    v
