lib/num/linalg.mli: Mat Vec
