lib/num/special.mli:
