lib/num/parallel.ml: Array Domain Sys
