lib/num/optimize.mli: Mat Vec
