lib/num/special.ml: Array Float
