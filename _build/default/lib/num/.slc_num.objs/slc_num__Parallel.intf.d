lib/num/parallel.mli:
