lib/num/optimize.ml: Array Float Linalg Mat Vec
