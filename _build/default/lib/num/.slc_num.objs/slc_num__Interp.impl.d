lib/num/interp.ml: Array Mat Printf Vec
