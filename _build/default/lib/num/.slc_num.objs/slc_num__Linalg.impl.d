lib/num/linalg.ml: Array Float Mat
