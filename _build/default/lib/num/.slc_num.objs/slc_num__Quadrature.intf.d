lib/num/quadrature.mli: Vec
