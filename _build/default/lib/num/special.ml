(* erf via the Numerical-Recipes rational Chebyshev fit of erfc (fractional
   error < 1.2e-7 everywhere). *)
let erfc x =
  let z = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. (t
       *. (1.00002368
          +. (t
             *. (0.37409196
                +. (t
                   *. (0.09678418
                      +. (t
                         *. (-0.18628806
                            +. (t
                               *. (0.27886807
                                  +. (t
                                     *. (-1.13520398
                                        +. (t
                                           *. (1.48851587
                                              +. (t
                                                 *. (-0.82215223
                                                    +. (t *. 0.17087277)))))))))))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0.0 then ans else 2.0 -. ans

let erf x = 1.0 -. erfc x

let sqrt2 = sqrt 2.0

let two_pi = 8.0 *. atan 1.0

let normal_cdf ?(mu = 0.0) ?(sigma = 1.0) x =
  0.5 *. erfc (-.(x -. mu) /. (sigma *. sqrt2))

let normal_pdf ?(mu = 0.0) ?(sigma = 1.0) x =
  let z = (x -. mu) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt two_pi)

(* Acklam's inverse normal CDF approximation followed by one Halley
   refinement step against the accurate erfc-based CDF. *)
let normal_quantile ?(mu = 0.0) ?(sigma = 1.0) p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Special.normal_quantile: p must be in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let central q =
    let r = q *. q in
    q
    *. ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
          *. r
       +. a.(5))
    /. ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
          *. r
       +. 1.0)
  in
  let tail q =
    ((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
       *. q
    +. c.(5))
    /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  in
  let x0 =
    if p < p_low then tail (sqrt (-2.0 *. log p))
    else if p <= 1.0 -. p_low then central (p -. 0.5)
    else -.tail (sqrt (-2.0 *. log (1.0 -. p)))
  in
  let e = normal_cdf x0 -. p in
  let u = e *. sqrt two_pi *. exp (x0 *. x0 /. 2.0) in
  let x1 = x0 -. (u /. (1.0 +. (x0 *. u /. 2.0))) in
  mu +. (sigma *. x1)

(* Lanczos approximation (g = 7, 9 coefficients). *)
let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: requires x > 0";
  if x < 0.5 then
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let coef =
      [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
         771.32342877765313; -176.61502916214059; 12.507343278686905;
         -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]
    in
    let x = x -. 1.0 in
    let acc = ref coef.(0) in
    for i = 1 to 8 do
      acc := !acc +. (coef.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t
    +. log !acc
  end
