let is_strictly_increasing axis =
  let n = Array.length axis in
  let ok = ref (n >= 1) in
  for i = 0 to n - 2 do
    if axis.(i) >= axis.(i + 1) then ok := false
  done;
  !ok

let check_axis name axis =
  if Array.length axis < 2 then
    invalid_arg (Printf.sprintf "Interp.%s: axis needs >= 2 points" name);
  if not (is_strictly_increasing axis) then
    invalid_arg (Printf.sprintf "Interp.%s: axis not strictly increasing" name)

let locate axis x =
  check_axis "locate" axis;
  let n = Array.length axis in
  if x <= axis.(0) then 0
  else if x >= axis.(n - 1) then n - 2
  else begin
    (* Binary search for the cell containing x. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if axis.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let weight axis i x =
  (* Barycentric coordinate of x in cell i; unclamped so that values
     outside the grid extrapolate linearly. *)
  (x -. axis.(i)) /. (axis.(i + 1) -. axis.(i))

let linear1d xs ys x =
  if Array.length xs <> Array.length ys then
    invalid_arg "Interp.linear1d: xs/ys length mismatch";
  let i = locate xs x in
  let t = weight xs i x in
  ((1.0 -. t) *. ys.(i)) +. (t *. ys.(i + 1))

type grid2 = { xs : Vec.t; ys : Vec.t; values : Mat.t }

let make_grid2 ~xs ~ys ~f =
  check_axis "make_grid2" xs;
  check_axis "make_grid2" ys;
  { xs; ys; values = Mat.init (Array.length xs) (Array.length ys) (fun i j -> f xs.(i) ys.(j)) }

let bilinear g x y =
  if
    Mat.rows g.values <> Array.length g.xs
    || Mat.cols g.values <> Array.length g.ys
  then invalid_arg "Interp.bilinear: values shape mismatch";
  let i = locate g.xs x and j = locate g.ys y in
  let tx = weight g.xs i x and ty = weight g.ys j y in
  let v00 = Mat.get g.values i j
  and v10 = Mat.get g.values (i + 1) j
  and v01 = Mat.get g.values i (j + 1)
  and v11 = Mat.get g.values (i + 1) (j + 1) in
  ((1.0 -. tx) *. (1.0 -. ty) *. v00)
  +. (tx *. (1.0 -. ty) *. v10)
  +. ((1.0 -. tx) *. ty *. v01)
  +. (tx *. ty *. v11)

type grid3 = { axes : Vec.t * Vec.t * Vec.t; values3 : float array array array }

let make_grid3 ~xs ~ys ~zs ~f =
  check_axis "make_grid3" xs;
  check_axis "make_grid3" ys;
  check_axis "make_grid3" zs;
  let values3 =
    Array.init (Array.length xs) (fun i ->
        Array.init (Array.length ys) (fun j ->
            Array.init (Array.length zs) (fun k -> f xs.(i) ys.(j) zs.(k))))
  in
  { axes = (xs, ys, zs); values3 }

let trilinear g x y z =
  let xs, ys, zs = g.axes in
  let i = locate xs x and j = locate ys y and k = locate zs z in
  let tx = weight xs i x and ty = weight ys j y and tz = weight zs k z in
  let v = g.values3 in
  let lerp t a b = ((1.0 -. t) *. a) +. (t *. b) in
  let c00 = lerp tx v.(i).(j).(k) v.(i + 1).(j).(k)
  and c10 = lerp tx v.(i).(j + 1).(k) v.(i + 1).(j + 1).(k)
  and c01 = lerp tx v.(i).(j).(k + 1) v.(i + 1).(j).(k + 1)
  and c11 = lerp tx v.(i).(j + 1).(k + 1) v.(i + 1).(j + 1).(k + 1) in
  let c0 = lerp ty c00 c10 and c1 = lerp ty c01 c11 in
  lerp tz c0 c1
