(** Special functions for probability computations. *)

val erf : float -> float
(** Error function, accurate to about 1.2e-7 (Abramowitz–Stegun 7.1.26
    refined by a rational approximation). *)

val erfc : float -> float

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float
(** Standard parameters default to [mu = 0], [sigma = 1]. *)

val normal_pdf : ?mu:float -> ?sigma:float -> float -> float

val normal_quantile : ?mu:float -> ?sigma:float -> float -> float
(** Inverse normal CDF (Acklam's algorithm, |rel err| < 1.2e-9).  The
    probability argument must lie strictly inside (0, 1). *)

val log_gamma : float -> float
(** Lanczos approximation, valid for positive arguments. *)
