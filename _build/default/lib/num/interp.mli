(** Interpolation on rectilinear grids: 1-D linear, 2-D bilinear and 3-D
    trilinear, with linear extrapolation outside the grid.  These are the
    interpolation schemes used by NLDM-style timing look-up tables. *)

val locate : Vec.t -> float -> int
(** [locate axis x] returns the index [i] of the cell such that
    [axis.(i) <= x <= axis.(i+1)], clamped to [0 .. dim axis - 2] (this
    clamping yields linear extrapolation at the ends).  The axis must be
    strictly increasing with at least two points. *)

val is_strictly_increasing : Vec.t -> bool

val linear1d : Vec.t -> Vec.t -> float -> float
(** [linear1d xs ys x]: piecewise-linear interpolation of the samples
    [(xs, ys)] at [x], linearly extrapolating outside [xs]. *)

type grid2 = { xs : Vec.t; ys : Vec.t; values : Mat.t }
(** [values] has [dim xs] rows and [dim ys] columns. *)

val make_grid2 : xs:Vec.t -> ys:Vec.t -> f:(float -> float -> float) -> grid2

val bilinear : grid2 -> float -> float -> float

type grid3 = { axes : Vec.t * Vec.t * Vec.t; values3 : float array array array }
(** [values3.(i).(j).(k)] corresponds to [(xs.(i), ys.(j), zs.(k))]. *)

val make_grid3 :
  xs:Vec.t -> ys:Vec.t -> zs:Vec.t -> f:(float -> float -> float -> float) ->
  grid3

val trilinear : grid3 -> float -> float -> float -> float
