(** Sequential-cell characterization: a positive-edge-triggered D
    flip-flop (the classic 6-NAND structure, built from this library's
    NAND2/NAND3 cells at transistor level) and setup-time extraction by
    bisection over the data-to-clock offset.

    Combinational arcs are the paper's subject; real libraries also
    carry setup/hold tables, and this module shows the same simulation
    substrate characterizing them.  The flip-flop netlist has feedback
    (two cross-coupled NAND latches), which also exercises the solver
    beyond DAGs. *)

type capture_result = {
  captured : bool;   (** Q equals the new data value after the edge *)
  q_final : float;   (** Q voltage at the end of the window, V *)
  clk_to_q : float option;
      (** 50%-50% clock-edge-to-Q delay when a Q transition happened *)
}

val simulate_capture :
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  vdd:float ->
  data_rises:bool ->
  d_to_clk:float ->
  capture_result
(** One clocked capture attempt: D transitions to its new value
    [d_to_clk] seconds before the active clock edge (negative = data
    changes after the edge), with 5 ps edges on both signals.  The
    output latch is seeded to the {e old} data value, so a successful
    capture flips Q. *)

val simulate_capture_gen :
  ?seed:Slc_device.Process.seed ->
  ?d_revert:float ->
  Slc_device.Tech.t ->
  vdd:float ->
  data_rises:bool ->
  d_to_clk:float ->
  capture_result
(** Like {!simulate_capture} with an optional data revert: when
    [d_revert] is given, D returns to its old value that many seconds
    after the clock edge (negative = before the edge). *)

val hold_time :
  ?seed:Slc_device.Process.seed ->
  ?resolution:float ->
  Slc_device.Tech.t ->
  vdd:float ->
  data_rises:bool ->
  float
(** Minimum time the data must remain stable {e after} the clock edge:
    D is presented early (safe setup), then reverts to its old value
    [t] seconds after the edge; the hold time is the smallest [t] for
    which the new value is still captured, found by bisection (often
    negative for edge-triggered structures: the data may be released
    slightly before the edge).  Raises [Failure] when the bracket is
    not monotone. *)

val setup_time :
  ?seed:Slc_device.Process.seed ->
  ?resolution:float ->
  Slc_device.Tech.t ->
  vdd:float ->
  data_rises:bool ->
  float
(** Minimum data-to-clock offset that still captures, found by
    bisection to [resolution] (default 0.05 ps) between a
    comfortably-early and a comfortably-late data edge.  Raises
    [Failure] if the bracket does not behave monotonically (capture
    must succeed early and fail late). *)
