(** NLDM-style look-up tables — the conventional characterization the
    paper benchmarks against.

    A table stores delay and output slew on a rectilinear
    [Sin x Cload x Vdd] grid and answers arbitrary points by trilinear
    interpolation (constant along axes that have a single level).  The
    cost of building a table is exactly its number of grid points, in
    simulator runs — the paper's [N_LUT]. *)

type t = {
  arc_name : string;
  sin_axis : float array;
  cload_axis : float array;
  vdd_axis : float array;
  td : float array array array;    (** indexed [sin][cload][vdd] *)
  sout : float array array array;
  energy : float array array array;  (** switching energy, J *)
}

val size : t -> int
(** Number of grid points = simulator runs used to build the table. *)

val design_levels : budget:int -> box:Slc_prob.Sampling.box -> int array
(** Axis level counts [| n_sin; n_cload; n_vdd |] whose product is as
    close to [budget] as possible without exceeding it, preferring
    balanced [Sin]/[Cload] resolution over [Vdd] (the conventional NLDM
    shape).  Every count is at least 1. *)

val axes_of_levels : box:Slc_prob.Sampling.box -> int array -> float array array
(** Evenly spaced levels per axis (a singleton level sits at the box
    center). *)

val build :
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  Arc.t ->
  levels:int array ->
  t
(** Simulates every grid point. *)

val build_on_axes :
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  Arc.t ->
  axes:float array array ->
  t

val lookup_td : t -> Harness.point -> float

val lookup_sout : t -> Harness.point -> float

val lookup_energy : t -> Harness.point -> float
