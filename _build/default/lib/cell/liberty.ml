module Tech = Slc_device.Tech

let ps = 1e-12

let fF = 1e-15

(* ------------------------------------------------------------------ *)
(* Writer *)

let nearest_index axis x =
  let best = ref 0 in
  Array.iteri
    (fun i v -> if Float.abs (v -. x) < Float.abs (axis.(!best) -. x) then best := i)
    axis;
  !best

let write_axis ppf name values scale =
  Format.fprintf ppf "@[<h>%s (\"%s\");@]@," name
    (String.concat ", "
       (Array.to_list (Array.map (fun v -> Printf.sprintf "%.4f" (v /. scale)) values)))

let fJ = 1e-15

let write_table ?(scale = ps) ppf kind (t : Nldm.t) values vdd_idx =
  Format.fprintf ppf "@[<v 2>%s (tmpl_%dx%d) {@," kind
    (Array.length t.Nldm.sin_axis)
    (Array.length t.Nldm.cload_axis);
  write_axis ppf "index_1" t.Nldm.sin_axis ps;
  write_axis ppf "index_2" t.Nldm.cload_axis fF;
  Format.fprintf ppf "@[<v 2>values (@,";
  Array.iteri
    (fun i _ ->
      let row =
        String.concat ", "
          (Array.to_list
             (Array.mapi
                (fun j _ ->
                  Printf.sprintf "%.4f" (values.(i).(j).(vdd_idx) /. scale))
                t.Nldm.cload_axis))
      in
      Format.fprintf ppf "\"%s\"%s@," row
        (if i < Array.length t.Nldm.sin_axis - 1 then "," else ""))
    t.Nldm.sin_axis;
  Format.fprintf ppf "@]);@]@,}@,"

let write ppf ~vdd (lib : Library.t) =
  let tech = lib.Library.tech in
  Format.fprintf ppf "@[<v 2>library (%s) {@," tech.Tech.name;
  Format.fprintf ppf "time_unit : \"1ps\";@,";
  Format.fprintf ppf "capacitive_load_unit (1, ff);@,";
  Format.fprintf ppf "nom_voltage : %.3f;@," vdd;
  (* Group entries by cell, keeping the cell record from the entries
     themselves so non-built-in cells export correctly. *)
  let cells =
    List.sort_uniq
      (fun (a : Cells.t) b -> compare a.Cells.name b.Cells.name)
      (List.map (fun e -> e.Library.arc.Arc.cell) lib.Library.entries)
  in
  List.iter
    (fun (cell : Cells.t) ->
      let cell_name = cell.Cells.name in
      Format.fprintf ppf "@[<v 2>cell (%s) {@," cell_name;
      List.iter
        (fun pin ->
          Format.fprintf ppf
            "@[<v 2>pin (%s) {@,direction : input;@,capacitance : %.4f;@]@,}@,"
            pin
            (Equivalent.input_cap tech cell ~pin /. fF))
        cell.Cells.inputs;
      Format.fprintf ppf "@[<v 2>pin (Y) {@,direction : output;@,";
      List.iter
        (fun pin ->
          let entry dir =
            Library.find lib ~cell:cell_name ~pin ~out_dir:dir
          in
          match (entry Arc.Rise, entry Arc.Fall) with
          | None, None -> ()
          | rise, fall ->
            Format.fprintf ppf "@[<v 2>timing () {@,";
            Format.fprintf ppf "related_pin : \"%s\";@," pin;
            Format.fprintf ppf "timing_sense : negative_unate;@,";
            Option.iter
              (fun (e : Library.entry) ->
                let vi = nearest_index e.Library.table.Nldm.vdd_axis vdd in
                write_table ppf "cell_rise" e.Library.table
                  e.Library.table.Nldm.td vi;
                write_table ppf "rise_transition" e.Library.table
                  e.Library.table.Nldm.sout vi)
              rise;
            Option.iter
              (fun (e : Library.entry) ->
                let vi = nearest_index e.Library.table.Nldm.vdd_axis vdd in
                write_table ppf "cell_fall" e.Library.table
                  e.Library.table.Nldm.td vi;
                write_table ppf "fall_transition" e.Library.table
                  e.Library.table.Nldm.sout vi)
              fall;
            Format.fprintf ppf "@]}@,";
            (* Switching energy in fJ (internal_power group). *)
            Format.fprintf ppf "@[<v 2>internal_power () {@,";
            Format.fprintf ppf "related_pin : \"%s\";@," pin;
            Option.iter
              (fun (e : Library.entry) ->
                let vi = nearest_index e.Library.table.Nldm.vdd_axis vdd in
                write_table ~scale:fJ ppf "rise_power" e.Library.table
                  e.Library.table.Nldm.energy vi)
              rise;
            Option.iter
              (fun (e : Library.entry) ->
                let vi = nearest_index e.Library.table.Nldm.vdd_axis vdd in
                write_table ~scale:fJ ppf "fall_power" e.Library.table
                  e.Library.table.Nldm.energy vi)
              fall;
            Format.fprintf ppf "@]}@,")
        cell.Cells.inputs;
      Format.fprintf ppf "@]}@,";
      Format.fprintf ppf "@]}@,")
    cells;
  Format.fprintf ppf "@]}@."

let to_string ~vdd lib = Format.asprintf "%a" (fun ppf () -> write ppf ~vdd lib) ()

(* ------------------------------------------------------------------ *)
(* Reader: tokenizer + recursive-descent over the generic Liberty
   group/attribute grammar, then extraction of the subset we emit. *)

exception Parse_error of string

type token =
  | Ident of string
  | Str of string
  | Num of float
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Colon
  | Semi
  | Comma

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment *)
      let j = ref (!i + 2) in
      while !j + 1 < n && not (src.[!j] = '*' && src.[!j + 1] = '/') do
        incr j
      done;
      i := !j + 2
    end
    else if c = '(' then (push Lparen; incr i)
    else if c = ')' then (push Rparen; incr i)
    else if c = '{' then (push Lbrace; incr i)
    else if c = '}' then (push Rbrace; incr i)
    else if c = ':' then (push Colon; incr i)
    else if c = ';' then (push Semi; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '"' do
        incr j
      done;
      if !j >= n then raise (Parse_error "unterminated string");
      push (Str (String.sub src (!i + 1) (!j - !i - 1)));
      i := !j + 1
    end
    else if
      (c >= '0' && c <= '9') || c = '-' || c = '.' || c = '+'
    then begin
      let j = ref !i in
      while
        !j < n
        &&
        let d = src.[!j] in
        (d >= '0' && d <= '9')
        || d = '-' || d = '+' || d = '.' || d = 'e' || d = 'E'
      do
        incr j
      done;
      let text = String.sub src !i (!j - !i) in
      (match float_of_string_opt text with
      | Some f -> push (Num f)
      | None -> raise (Parse_error ("bad number: " ^ text)));
      i := !j
    end
    else if
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
    then begin
      let j = ref !i in
      while
        !j < n
        &&
        let d = src.[!j] in
        (d >= 'a' && d <= 'z')
        || (d >= 'A' && d <= 'Z')
        || (d >= '0' && d <= '9')
        || d = '_'
      do
        incr j
      done;
      push (Ident (String.sub src !i (!j - !i)));
      i := !j
    end
    else raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev !tokens

(* Generic Liberty AST. *)
type value = Vstr of string | Vnum of float | Vident of string

type item =
  | Attribute of string * value
  | Complex of string * value list  (* name (v, v, ...); *)
  | Group of group

and group = { g_name : string; g_args : value list; items : item list }

let parse_value = function
  | Str s -> Vstr s
  | Num f -> Vnum f
  | Ident s -> Vident s
  | _ -> raise (Parse_error "expected a value")

let rec parse_items tokens acc =
  match tokens with
  | Rbrace :: rest -> (List.rev acc, rest)
  | Ident name :: Colon :: v :: Semi :: rest ->
    parse_items rest (Attribute (name, parse_value v) :: acc)
  | Ident name :: Lparen :: rest -> begin
    (* complex attribute or group *)
    let rec collect args = function
      | Rparen :: tl -> (List.rev args, tl)
      | Comma :: tl -> collect args tl
      | v :: tl -> collect (parse_value v :: args) tl
      | [] -> raise (Parse_error "unterminated argument list")
    in
    let args, rest = collect [] rest in
    match rest with
    | Lbrace :: rest ->
      let items, rest = parse_items rest [] in
      parse_items rest (Group { g_name = name; g_args = args; items } :: acc)
    | Semi :: rest -> parse_items rest (Complex (name, args) :: acc)
    | _ -> raise (Parse_error ("expected { or ; after " ^ name))
  end
  | [] -> raise (Parse_error "unexpected end of input")
  | _ -> raise (Parse_error "unexpected token")

let parse_top src =
  match tokenize src with
  | Ident "library" :: Lparen :: name :: Rparen :: Lbrace :: rest ->
    let items, rest = parse_items rest [] in
    if rest <> [] then raise (Parse_error "trailing tokens after library");
    { g_name = "library"; g_args = [ parse_value name ]; items }
  | _ -> raise (Parse_error "expected library ( name ) {")

(* Extraction of the emitted subset. *)

type table = {
  index_1 : float array;
  index_2 : float array;
  values : float array array;
}

type timing_group = {
  related_pin : string;
  cell_rise : table option;
  cell_fall : table option;
  rise_transition : table option;
  fall_transition : table option;
}

type power_group = {
  power_related_pin : string;
  rise_power : table option;
  fall_power : table option;
}

type cell = {
  cell_name : string;
  pin_caps : (string * float) list;
  timings : timing_group list;
  powers : power_group list;
}

type t = { library_name : string; nom_voltage : float; cells : cell list }

let value_name = function
  | Vident s | Vstr s -> s
  | Vnum f -> string_of_float f

let floats_of_string s =
  Array.of_list
    (List.filter_map
       (fun part ->
         let part = String.trim part in
         if part = "" then None
         else
           match float_of_string_opt part with
           | Some f -> Some f
           | None -> raise (Parse_error ("bad float list: " ^ s)))
       (String.split_on_char ',' s))

let extract_table g =
  let idx name =
    List.find_map
      (function
        | Complex (n, [ Vstr s ]) when n = name -> Some (floats_of_string s)
        | _ -> None)
      g.items
  in
  let values =
    List.find_map
      (function
        | Complex ("values", rows) ->
          Some
            (Array.of_list
               (List.map
                  (function
                    | Vstr s -> floats_of_string s
                    | _ -> raise (Parse_error "values rows must be strings"))
                  rows))
        | _ -> None)
      g.items
  in
  match (idx "index_1", idx "index_2", values) with
  | Some index_1, Some index_2, Some values -> { index_1; index_2; values }
  | _ -> raise (Parse_error ("incomplete table group " ^ g.g_name))

let extract_timing g =
  let related_pin =
    match
      List.find_map
        (function
          | Attribute ("related_pin", v) -> Some (value_name v)
          | _ -> None)
        g.items
    with
    | Some p -> p
    | None -> raise (Parse_error "timing() without related_pin")
  in
  let table name =
    List.find_map
      (function
        | Group tg when tg.g_name = name -> Some (extract_table tg)
        | _ -> None)
      g.items
  in
  {
    related_pin;
    cell_rise = table "cell_rise";
    cell_fall = table "cell_fall";
    rise_transition = table "rise_transition";
    fall_transition = table "fall_transition";
  }

let extract_power g =
  let power_related_pin =
    match
      List.find_map
        (function
          | Attribute ("related_pin", v) -> Some (value_name v)
          | _ -> None)
        g.items
    with
    | Some p -> p
    | None -> raise (Parse_error "internal_power() without related_pin")
  in
  let table name =
    List.find_map
      (function
        | Group tg when tg.g_name = name -> Some (extract_table tg)
        | _ -> None)
      g.items
  in
  {
    power_related_pin;
    rise_power = table "rise_power";
    fall_power = table "fall_power";
  }

let extract_cell g =
  let cell_name =
    match g.g_args with
    | [ v ] -> value_name v
    | _ -> raise (Parse_error "cell() needs one name")
  in
  let pin_caps = ref [] in
  let timings = ref [] in
  let powers = ref [] in
  List.iter
    (function
      | Group pg when pg.g_name = "pin" -> begin
        let pin_name =
          match pg.g_args with
          | [ v ] -> value_name v
          | _ -> raise (Parse_error "pin() needs one name")
        in
        let cap =
          List.find_map
            (function
              | Attribute ("capacitance", Vnum f) -> Some f
              | _ -> None)
            pg.items
        in
        (match cap with
        | Some c -> pin_caps := (pin_name, c) :: !pin_caps
        | None -> ());
        List.iter
          (function
            | Group tg when tg.g_name = "timing" ->
              timings := extract_timing tg :: !timings
            | Group tg when tg.g_name = "internal_power" ->
              powers := extract_power tg :: !powers
            | _ -> ())
          pg.items
      end
      | _ -> ())
    g.items;
  {
    cell_name;
    pin_caps = List.rev !pin_caps;
    timings = List.rev !timings;
    powers = List.rev !powers;
  }

let parse src =
  let top = parse_top src in
  let library_name =
    match top.g_args with [ v ] -> value_name v | _ -> "unknown"
  in
  let nom_voltage =
    Option.value ~default:0.0
      (List.find_map
         (function
           | Attribute ("nom_voltage", Vnum f) -> Some f
           | _ -> None)
         top.items)
  in
  let cells =
    List.filter_map
      (function
        | Group g when g.g_name = "cell" -> Some (extract_cell g)
        | _ -> None)
      top.items
  in
  { library_name; nom_voltage; cells }

let bilinear (tbl : table) x1 x2 =
  (* x1 on index_1 (slew, ps), x2 on index_2 (load, fF). *)
  let cell axis x =
    let n = Array.length axis in
    if n = 1 then (0, 0.0)
    else begin
      let i = Slc_num.Interp.locate axis x in
      (i, (x -. axis.(i)) /. (axis.(i + 1) -. axis.(i)))
    end
  in
  let i, tx = cell tbl.index_1 x1 in
  let j, ty = cell tbl.index_2 x2 in
  let at a b =
    tbl.values.(min a (Array.length tbl.index_1 - 1)).(min b
                                                         (Array.length
                                                            tbl.index_2
                                                          - 1))
  in
  let lerp t a b = ((1.0 -. t) *. a) +. (t *. b) in
  lerp ty
    (lerp tx (at i j) (at (i + 1) j))
    (lerp tx (at i (j + 1)) (at (i + 1) (j + 1)))

let lookup_energy t ~cell ~related_pin ~rising ~sin ~cload =
  match List.find_opt (fun c -> String.equal c.cell_name cell) t.cells with
  | None -> None
  | Some c -> (
    match
      List.find_opt
        (fun pg -> String.equal pg.power_related_pin related_pin)
        c.powers
    with
    | None -> None
    | Some pg -> (
      match (if rising then pg.rise_power else pg.fall_power) with
      | Some tbl ->
        Some (bilinear tbl (sin /. ps) (cload /. fF) *. fJ)
      | None -> None))

let lookup t ~cell ~related_pin ~rising ~sin ~cload =
  match List.find_opt (fun c -> String.equal c.cell_name cell) t.cells with
  | None -> None
  | Some c -> (
    match
      List.find_opt
        (fun tg -> String.equal tg.related_pin related_pin)
        c.timings
    with
    | None -> None
    | Some tg -> (
      let delay_tbl = if rising then tg.cell_rise else tg.cell_fall in
      let trans_tbl =
        if rising then tg.rise_transition else tg.fall_transition
      in
      match (delay_tbl, trans_tbl) with
      | Some d, Some tr ->
        let sin_ps = sin /. ps and cl_ff = cload /. fF in
        Some
          ( bilinear d sin_ps cl_ff *. ps,
            bilinear tr sin_ps cl_ff *. ps )
      | _ -> None))
