(** A characterized standard-cell library: NLDM tables for every arc of
    every cell of a technology. *)

type entry = { arc : Arc.t; table : Nldm.t }

type t = {
  tech : Slc_device.Tech.t;
  entries : entry list;
  sim_runs : int;  (** total simulator runs spent building the library *)
}

val characterize :
  ?seed:Slc_device.Process.seed ->
  ?cells:Cells.t list ->
  Slc_device.Tech.t ->
  levels:int array ->
  t
(** Builds tables for every arc of the given cells (default
    {!Cells.all}). *)

val find : t -> cell:string -> pin:string -> out_dir:Arc.direction -> entry option

val arcs : t -> Arc.t list

val delay : t -> Arc.t -> Harness.point -> float
(** Interpolated delay; raises [Not_found] for an arc that is not in the
    library. *)

val slew : t -> Arc.t -> Harness.point -> float

val summary : Format.formatter -> t -> unit
(** Liberty-flavored human-readable dump (cells, arcs, table sizes and
    corner values). *)
