type entry = { arc : Arc.t; table : Nldm.t }

type t = { tech : Slc_device.Tech.t; entries : entry list; sim_runs : int }

let characterize ?seed ?(cells = Cells.all) tech ~levels =
  let before = Harness.sim_count () in
  let entries =
    List.concat_map
      (fun cell ->
        List.map
          (fun arc -> { arc; table = Nldm.build ?seed tech arc ~levels })
          (Arc.all_of_cell cell))
      cells
  in
  { tech; entries; sim_runs = Harness.sim_count () - before }

let find t ~cell ~pin ~out_dir =
  List.find_opt
    (fun e ->
      String.equal e.arc.Arc.cell.Cells.name cell
      && String.equal e.arc.Arc.pin pin
      && e.arc.Arc.out_dir = out_dir)
    t.entries

let arcs t = List.map (fun e -> e.arc) t.entries

let entry_for t arc =
  match
    find t ~cell:arc.Arc.cell.Cells.name ~pin:arc.Arc.pin
      ~out_dir:arc.Arc.out_dir
  with
  | Some e -> e
  | None -> raise Not_found

let delay t arc point = Nldm.lookup_td (entry_for t arc).table point

let slew t arc point = Nldm.lookup_sout (entry_for t arc).table point

let summary ppf t =
  Format.fprintf ppf "library(%s) { /* %d arcs, %d simulator runs */@."
    t.tech.Slc_device.Tech.name (List.length t.entries) t.sim_runs;
  List.iter
    (fun e ->
      let tb = e.table in
      let n_s = Array.length tb.Nldm.sin_axis
      and n_c = Array.length tb.Nldm.cload_axis
      and n_v = Array.length tb.Nldm.vdd_axis in
      let td_min = tb.Nldm.td.(0).(0).(n_v - 1) in
      let td_max = tb.Nldm.td.(n_s - 1).(n_c - 1).(0) in
      Format.fprintf ppf "  arc %-16s table %dx%dx%d  td [%6.2f .. %6.2f] ps@."
        (Arc.name e.arc) n_s n_c n_v (td_min *. 1e12) (td_max *. 1e12))
    t.entries;
  Format.fprintf ppf "}@."
