lib/cell/library.ml: Arc Array Cells Format Harness List Nldm Slc_device String
