lib/cell/ring.mli: Slc_device
