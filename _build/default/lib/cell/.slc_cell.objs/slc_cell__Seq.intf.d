lib/cell/seq.mli: Slc_device
