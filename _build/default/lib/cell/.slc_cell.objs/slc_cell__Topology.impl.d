lib/cell/topology.ml: Hashtbl List
