lib/cell/liberty.ml: Arc Array Cells Equivalent Float Format Library List Nldm Option Printf Slc_device Slc_num String
