lib/cell/ring.ml: Arc Array Cells Equivalent Float Harness List Netlist Printf Slc_device Slc_spice Stimulus Transient Waveform
