lib/cell/chain.ml: Arc Array Cells Equivalent Float Harness List Netlist Option Printf Slc_device Slc_spice Stimulus String Transient Waveform
