lib/cell/seq.ml: Cells Harness List Netlist Slc_device Slc_spice Stimulus String Transient Waveform
