lib/cell/nldm.mli: Arc Harness Slc_device Slc_prob
