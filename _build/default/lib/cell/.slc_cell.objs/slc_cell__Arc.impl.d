lib/cell/arc.ml: Cells List Printf String
