lib/cell/arc.mli: Cells
