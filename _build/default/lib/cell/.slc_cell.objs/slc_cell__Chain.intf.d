lib/cell/chain.mli: Arc Cells Slc_device
