lib/cell/nldm.ml: Arc Array Harness Slc_device Slc_num
