lib/cell/equivalent.ml: Arc Cells List Slc_device String Topology
