lib/cell/cells.mli: Topology
