lib/cell/equivalent.mli: Arc Cells Slc_device
