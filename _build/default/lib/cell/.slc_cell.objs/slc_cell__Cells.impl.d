lib/cell/cells.ml: List String Topology
