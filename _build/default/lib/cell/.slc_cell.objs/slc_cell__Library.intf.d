lib/cell/library.mli: Arc Cells Format Harness Nldm Slc_device
