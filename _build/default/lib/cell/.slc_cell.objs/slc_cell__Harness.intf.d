lib/cell/harness.mli: Arc Cells Format Slc_device Slc_num Slc_spice
