lib/cell/topology.mli:
