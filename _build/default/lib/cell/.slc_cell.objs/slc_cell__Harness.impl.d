lib/cell/harness.ml: Arc Array Atomic Cells Equivalent Float Format List Netlist Printf Slc_device Slc_spice Stimulus String Topology Transient Waveform
