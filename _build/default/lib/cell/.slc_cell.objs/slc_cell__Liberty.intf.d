lib/cell/liberty.mli: Format Library
