(** Ring oscillators — the classic silicon speed monitor, and a strong
    end-to-end check of the transient engine: an autonomous circuit
    with no driving input whose oscillation frequency must agree with
    the per-stage delays the characterization flow predicts.

    The ring sits at its (metastable) DC point until a small charge
    kick on one node starts the oscillation. *)

type result = {
  period : float;        (** steady-state oscillation period, s *)
  frequency : float;     (** 1 / period *)
  stage_delay : float;   (** period / (2 * stages) *)
  cycles_measured : int;
}

exception No_oscillation

val simulate :
  ?seed:Slc_device.Process.seed ->
  ?stages:int ->
  ?extra_load:float ->
  Slc_device.Tech.t ->
  vdd:float ->
  result
(** Builds a ring of [stages] (odd, default 5) inverters with
    [extra_load] femto-scale capacitance per node (default 0), kicks
    it, waits out the startup transient and measures the period from
    the last few full cycles.  Raises {!No_oscillation} if no stable
    oscillation is observed and [Invalid_argument] for an even or
    too-short ring. *)
