module Arc = Slc_cell.Arc
module Chain = Slc_cell.Chain
module Cells = Slc_cell.Cells
module Equivalent = Slc_cell.Equivalent
module Harness = Slc_cell.Harness

type stage_timing = {
  arc_name : string;
  delay : float;
  out_slew : float;
  load : float;
}

type timing = {
  total_delay : float;
  out_slew : float;
  stages : stage_timing list;
}

(* Load seen by stage i: its wire cap, plus the next stage's switching-
   pin gate cap, or the chain's final load for the last stage. *)
let stage_loads (chain : Chain.t) =
  let rec go = function
    | [] -> []
    | [ (last : Chain.stage) ] -> [ last.Chain.wire_cap +. chain.Chain.final_load ]
    | (s : Chain.stage) :: (next :: _ as rest) ->
      (s.Chain.wire_cap
      +. Equivalent.input_cap chain.Chain.tech next.Chain.cell
           ~pin:next.Chain.pin)
      :: go rest
  in
  go chain.Chain.stages

let propagate_with query (chain : Chain.t) ~sin ~vdd ~in_rises =
  let arcs = Chain.arcs_of chain ~in_rises in
  let loads = stage_loads chain in
  let rec go slew acc = function
    | [] -> List.rev acc
    | ((arc : Arc.t), load) :: rest ->
      let point = { Harness.sin = slew; cload = load; vdd } in
      let delay, out_slew = query arc point in
      let st = { arc_name = Arc.name arc; delay; out_slew; load } in
      go out_slew (st :: acc) rest
  in
  let stages = go sin [] (List.combine arcs loads) in
  let total_delay = List.fold_left (fun acc s -> acc +. s.delay) 0.0 stages in
  let out_slew =
    match List.rev stages with s :: _ -> s.out_slew | [] -> sin
  in
  { total_delay; out_slew; stages }

let propagate (oracle : Oracle.t) chain ~sin ~vdd ~in_rises =
  propagate_with oracle.Oracle.query chain ~sin ~vdd ~in_rises

let statistical ~population ~seeds chain ~sin ~vdd ~in_rises =
  let module Statistical = Slc_core.Statistical in
  (* One population per distinct arc, built lazily. *)
  let table : (string, Statistical.population) Hashtbl.t = Hashtbl.create 8 in
  let pop_of arc =
    let key = Arc.name arc in
    match Hashtbl.find_opt table key with
    | Some p -> p
    | None ->
      let p = population arc in
      Hashtbl.add table key p;
      p
  in
  Array.map
    (fun seed ->
      let query arc point =
        let pop = pop_of arc in
        ( pop.Statistical.predict_td seed point,
          pop.Statistical.predict_sout seed point )
      in
      (propagate_with query chain ~sin ~vdd ~in_rises).total_delay)
    seeds
