lib/ssta/oracle.ml: Hashtbl Printf Slc_cell Slc_core
