lib/ssta/verilog.ml: Hashtbl List Printf Sdag Slc_cell String
