lib/ssta/sdag.ml: Array Float Hashtbl List Option Oracle Printf Slc_cell Slc_device String
