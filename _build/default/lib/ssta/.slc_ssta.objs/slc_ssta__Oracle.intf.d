lib/ssta/oracle.mli: Slc_cell Slc_core Slc_device
