lib/ssta/path.mli: Oracle Slc_cell Slc_core Slc_device
