lib/ssta/yield.mli: Format Sdag Slc_cell Slc_core Slc_device
