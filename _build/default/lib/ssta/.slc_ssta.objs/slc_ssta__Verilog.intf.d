lib/ssta/verilog.mli: Sdag Slc_device
