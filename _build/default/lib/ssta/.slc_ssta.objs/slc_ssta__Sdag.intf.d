lib/ssta/sdag.mli: Oracle Slc_cell Slc_device
