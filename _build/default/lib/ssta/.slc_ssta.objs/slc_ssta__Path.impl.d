lib/ssta/path.ml: Array Hashtbl List Oracle Slc_cell Slc_core
