lib/ssta/yield.ml: Array Float Format Hashtbl List Oracle Path Sdag Slc_cell Slc_core Slc_prob
