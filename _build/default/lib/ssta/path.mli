(** Model-based path timing: propagate delay and slew through a chain
    of cells using a characterized oracle instead of simulating the
    chain — the standard way a library is consumed by a timing
    engine.  Validated against {!Slc_cell.Chain} transistor-level
    simulation. *)

type stage_timing = {
  arc_name : string;
  delay : float;
  out_slew : float;
  load : float;  (** capacitive load seen by this stage, F *)
}

type timing = {
  total_delay : float;
  out_slew : float;
  stages : stage_timing list;
}

val propagate :
  Oracle.t ->
  Slc_cell.Chain.t ->
  sin:float ->
  vdd:float ->
  in_rises:bool ->
  timing
(** Walks the chain front to back: stage [i]'s load is the gate
    capacitance of stage [i+1]'s switching pin plus its wire cap (the
    final stage drives the chain's [final_load]); stage [i]'s output
    slew becomes stage [i+1]'s input slew. *)

val statistical :
  population:(Slc_cell.Arc.t -> Slc_core.Statistical.population) ->
  seeds:Slc_device.Process.seed array ->
  Slc_cell.Chain.t ->
  sin:float ->
  vdd:float ->
  in_rises:bool ->
  float array
(** Per-seed total path delays: for each Monte-Carlo seed, the path is
    propagated with that seed's extracted per-arc models (Monte-Carlo
    SSTA on the compact models — zero additional simulations). *)
