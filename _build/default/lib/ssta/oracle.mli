(** Delay/slew oracles: the interface between timing analysis and a
    characterized library.  An oracle answers "delay and output slew of
    this arc at this input condition" — from the compact Bayesian
    model, from an NLDM table, or straight from the simulator (for
    validation). *)

type t = {
  query : Slc_cell.Arc.t -> Slc_cell.Harness.point -> float * float;
      (** [(delay, output slew)] *)
  label : string;
}

val of_predictors :
  label:string ->
  (Slc_cell.Arc.t -> Slc_core.Char_flow.predictor) ->
  t
(** Backed by per-arc predictors (e.g. {!Slc_core.Char_flow.train_bayes});
    the function is called once per distinct arc and memoized. *)

val of_library : Slc_cell.Library.t -> t
(** Backed by interpolated NLDM tables; raises [Not_found] when queried
    for an arc the library does not contain. *)

val of_simulator :
  ?seed:Slc_device.Process.seed -> Slc_device.Tech.t -> t
(** Ground truth: every query is one transient simulation. *)

val bayes_bank :
  ?seed:Slc_device.Process.seed ->
  prior:Slc_core.Prior.pair ->
  Slc_device.Tech.t ->
  k:int ->
  t
(** Convenience: an oracle that trains a Bayesian/MAP predictor with
    [k] simulations for each arc on first use. *)
