(** Timing yield: the fraction of process seeds whose worst path meets
    a clock constraint — the quantity SSTA exists to compute, evaluated
    here by pushing per-seed compact models through a path or DAG. *)

type result = {
  clock_period : float;
  n_seeds : int;
  n_pass : int;
  yield : float;             (** n_pass / n_seeds *)
  delays : float array;      (** per-seed worst arrival, s *)
  mean_delay : float;
  sigma_delay : float;
  worst_delay : float;
}

val of_delays : clock_period:float -> float array -> result
(** Classify pre-computed per-seed delays against a clock period. *)

val of_path :
  population:(Slc_cell.Arc.t -> Slc_core.Statistical.population) ->
  seeds:Slc_device.Process.seed array ->
  clock_period:float ->
  Slc_cell.Chain.t ->
  sin:float ->
  vdd:float ->
  in_rises:bool ->
  result
(** Monte-Carlo SSTA over a path using per-seed extracted models (no
    additional simulation per seed). *)

val of_dag :
  population:(Slc_cell.Arc.t -> Slc_core.Statistical.population) ->
  seeds:Slc_device.Process.seed array ->
  clock_period:float ->
  Sdag.t ->
  input_arrivals:(string -> Sdag.arrival) ->
  outputs:Sdag.net list ->
  result
(** Monte-Carlo SSTA over a DAG: per seed, the worst arrival over all
    listed outputs and both edges is classified against the clock.
    Raises [Invalid_argument] when some seed produces no arrival at any
    output. *)

val required_period : result -> target_yield:float -> float
(** The clock period that would achieve [target_yield] (empirical
    quantile of the per-seed delays). *)

val pp : Format.formatter -> result -> unit
