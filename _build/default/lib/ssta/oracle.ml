module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Library = Slc_cell.Library
module Nldm = Slc_cell.Nldm
module Char_flow = Slc_core.Char_flow

type t = {
  query : Arc.t -> Harness.point -> float * float;
  label : string;
}

let memo_by_arc build =
  let table : (string, 'a) Hashtbl.t = Hashtbl.create 16 in
  fun arc ->
    let key = Arc.name arc in
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None ->
      let v = build arc in
      Hashtbl.add table key v;
      v

let of_predictors ~label build =
  let get = memo_by_arc build in
  {
    label;
    query =
      (fun arc point ->
        let p = get arc in
        (p.Char_flow.predict_td point, p.Char_flow.predict_sout point));
  }

let of_library lib =
  {
    label = "nldm-library";
    query =
      (fun arc point ->
        match
          Library.find lib ~cell:arc.Arc.cell.Slc_cell.Cells.name
            ~pin:arc.Arc.pin ~out_dir:arc.Arc.out_dir
        with
        | Some e ->
          (Nldm.lookup_td e.Library.table point,
           Nldm.lookup_sout e.Library.table point)
        | None -> raise Not_found);
  }

let of_simulator ?seed tech =
  {
    label = "simulator";
    query =
      (fun arc point ->
        let m = Harness.simulate ?seed tech arc point in
        (m.Harness.td, m.Harness.sout));
  }

let bayes_bank ?seed ~prior tech ~k =
  of_predictors ~label:(Printf.sprintf "bayes-k%d" k) (fun arc ->
      Char_flow.train_bayes ?seed ~prior tech arc ~k)
