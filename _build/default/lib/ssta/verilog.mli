(** Structural-Verilog (subset) reader for the timing DAG.

    Supported: one module with scalar ports, [input]/[output]/[wire]
    declarations, and named-port instantiations of the built-in cells
    whose output pin is [Y]:

    {v
    module top (a, b, out);
      input a, b;
      output out;
      wire n1;
      NAND2 u1 (.A(a), .B(b), .Y(n1));
      INV   u2 (.A(n1), .Y(out));
    endmodule
    v}

    Instances may appear in any order; they are sorted topologically
    when the DAG is built.  [//] line comments and arbitrary whitespace
    are accepted. *)

type instance = {
  cell_name : string;
  instance_name : string;
  connections : (string * string) list;  (** pin -> net name, incl. Y *)
}

type t = {
  module_name : string;
  inputs : string list;
  outputs : string list;
  wires : string list;
  instances : instance list;
}

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} on syntax errors, undeclared nets, or ports
    declared more than once. *)

val to_sdag :
  t ->
  Slc_device.Tech.t ->
  vdd:float ->
  Sdag.t * (string * Sdag.net) list * (string * Sdag.net) list
(** Builds the timing DAG; returns it with the (name, net) pairs of the
    primary inputs and outputs.  Raises {!Parse_error} on unknown cell
    types, missing pins, multiply-driven nets, undriven internal nets,
    or combinational loops. *)
