(** Simple nonparametric distribution-distance statistics. *)

val ks_two_sample : float array -> float array -> float
(** Two-sample Kolmogorov–Smirnov statistic (sup distance between
    empirical CDFs). *)

val ks_against_cdf : float array -> (float -> float) -> float
(** One-sample KS statistic of a sample against a reference CDF. *)

val total_variation_binned :
  bins:int -> float array -> float array -> float
(** Total-variation distance between two samples after binning both on
    their common range; in [0, 1]. *)
