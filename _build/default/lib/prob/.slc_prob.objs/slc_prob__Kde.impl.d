lib/prob/kde.ml: Array Describe Float Slc_num
