lib/prob/mvn.mli: Rng Slc_num
