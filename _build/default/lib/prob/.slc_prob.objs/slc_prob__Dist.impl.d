lib/prob/dist.ml: Float Rng Slc_num
