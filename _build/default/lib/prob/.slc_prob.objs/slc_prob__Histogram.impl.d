lib/prob/histogram.ml: Array Describe
