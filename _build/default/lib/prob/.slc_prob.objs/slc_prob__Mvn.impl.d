lib/prob/mvn.ml: Array Describe Dist Float Slc_num
