lib/prob/sampling.ml: Array Rng Slc_num
