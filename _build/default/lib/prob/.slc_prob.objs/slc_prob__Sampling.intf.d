lib/prob/sampling.mli: Rng Slc_num
