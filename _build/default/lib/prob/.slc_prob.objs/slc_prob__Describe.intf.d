lib/prob/describe.mli: Slc_num
