lib/prob/histogram.mli:
