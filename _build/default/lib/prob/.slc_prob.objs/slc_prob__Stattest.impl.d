lib/prob/stattest.ml: Array Describe Float Histogram
