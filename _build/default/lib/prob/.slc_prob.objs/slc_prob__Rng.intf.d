lib/prob/rng.mli:
