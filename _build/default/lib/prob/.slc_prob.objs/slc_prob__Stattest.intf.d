lib/prob/stattest.mli:
