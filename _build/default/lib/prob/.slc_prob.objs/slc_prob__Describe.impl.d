lib/prob/describe.ml: Array Float Slc_num
