lib/prob/kde.mli: Slc_num
