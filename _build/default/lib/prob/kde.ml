type t = { samples : float array; h : float }

let silverman_bandwidth xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Kde.silverman_bandwidth: need >= 2 samples";
  let s = Describe.std xs in
  let iqr = Describe.quantile xs 0.75 -. Describe.quantile xs 0.25 in
  let spread =
    if iqr > 0.0 then Float.min s (iqr /. 1.34)
    else if s > 0.0 then s
    else 1e-12
  in
  0.9 *. spread *. (float_of_int n ** (-0.2))

let fit ?bandwidth xs =
  if Array.length xs < 2 then invalid_arg "Kde.fit: need >= 2 samples";
  let h =
    match bandwidth with
    | Some h when h > 0.0 -> h
    | Some _ -> invalid_arg "Kde.fit: bandwidth must be > 0"
    | None -> silverman_bandwidth xs
  in
  { samples = Array.copy xs; h }

let bandwidth t = t.h

let pdf t x =
  let n = float_of_int (Array.length t.samples) in
  let acc = ref 0.0 in
  Array.iter
    (fun xi ->
      let z = (x -. xi) /. t.h in
      acc := !acc +. exp (-0.5 *. z *. z))
    t.samples;
  !acc /. (n *. t.h *. sqrt (2.0 *. Float.pi))

let cdf t x =
  let n = float_of_int (Array.length t.samples) in
  let acc = ref 0.0 in
  Array.iter
    (fun xi -> acc := !acc +. Slc_num.Special.normal_cdf ((x -. xi) /. t.h))
    t.samples;
  !acc /. n

let evaluate t xs = Array.map (pdf t) xs

let grid t ?(pad = 3.0) n =
  let lo, hi = Describe.min_max t.samples in
  Slc_num.Vec.linspace (lo -. (pad *. t.h)) (hi +. (pad *. t.h)) n
