(** Fixed-bin histograms, normalizable to probability densities. *)

type t = {
  lo : float;
  hi : float;
  counts : int array;
  total : int;
}

val build : ?bins:int -> float array -> t
(** Histogram over [min, max] of the sample with [bins] (default 30)
    equal-width bins; the top edge is inclusive. *)

val build_range : bins:int -> lo:float -> hi:float -> float array -> t
(** Histogram over an explicit range; samples outside are dropped (but
    still counted in [total]). *)

val bin_width : t -> float

val centers : t -> float array

val density : t -> float array
(** Per-bin density so that [sum density * width ≈ included fraction]. *)

val count_in : t -> float -> int
(** Count of the bin containing the value, 0 outside the range. *)
