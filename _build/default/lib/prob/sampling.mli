(** Space-filling experimental designs over rectangular boxes.  Points are
    returned as arrays of coordinate vectors. *)

type box = (float * float) array
(** Per-dimension (lo, hi) bounds. *)

val random_box : Rng.t -> box -> int -> Slc_num.Vec.t array
(** Independent uniform samples in the box. *)

val latin_hypercube : Rng.t -> box -> int -> Slc_num.Vec.t array
(** Latin hypercube design: each of the [n] points occupies a distinct
    stratum in every dimension. *)

val halton : box -> int -> Slc_num.Vec.t array
(** Deterministic Halton low-discrepancy sequence (bases 2, 3, 5, 7, ...)
    scaled into the box; supports up to 8 dimensions. *)

val full_factorial : box -> levels:int array -> Slc_num.Vec.t array
(** Grid design with [levels.(d)] evenly spaced levels per dimension
    (inclusive of the bounds). *)

val center_and_corners : box -> Slc_num.Vec.t array
(** The box center followed by all [2^d] corners — a cheap, well-spread
    design for very small sample budgets. *)

val scale_unit : box -> Slc_num.Vec.t -> Slc_num.Vec.t
(** Map a unit-cube point into the box. *)

val to_unit : box -> Slc_num.Vec.t -> Slc_num.Vec.t
(** Map a box point into the unit cube. *)
