(** Gaussian kernel density estimation — used to compare predicted and
    Monte-Carlo delay distributions (paper Fig. 9). *)

type t

val silverman_bandwidth : float array -> float
(** Silverman's rule of thumb [0.9 * min(std, iqr/1.34) * n^(-1/5)]. *)

val fit : ?bandwidth:float -> float array -> t
(** Builds a KDE over the sample; [bandwidth] defaults to Silverman. *)

val bandwidth : t -> float

val pdf : t -> float -> float

val cdf : t -> float -> float

val evaluate : t -> Slc_num.Vec.t -> Slc_num.Vec.t
(** Density at each grid point. *)

val grid : t -> ?pad:float -> int -> Slc_num.Vec.t
(** Evaluation grid spanning the sample range padded by [pad] bandwidths
    (default 3). *)
