(** Scalar probability distributions: sampling, densities, CDFs. *)

val gaussian : Rng.t -> mu:float -> sigma:float -> float
(** Sample from N(mu, sigma^2) by the Marsaglia polar method. *)

val standard_gaussian : Rng.t -> float

val gaussian_pdf : mu:float -> sigma:float -> float -> float

val gaussian_cdf : mu:float -> sigma:float -> float -> float

val gaussian_quantile : mu:float -> sigma:float -> float -> float

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** [exp] of a N(mu, sigma^2) draw. *)

val truncated_gaussian :
  Rng.t -> mu:float -> sigma:float -> lo:float -> hi:float -> float
(** Rejection sampling; requires a non-empty interval that carries
    non-negligible mass. *)

val uniform : Rng.t -> lo:float -> hi:float -> float

val exponential : Rng.t -> rate:float -> float
