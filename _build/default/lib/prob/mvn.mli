(** Multivariate normal distributions over small parameter spaces. *)

type t = private {
  mu : Slc_num.Vec.t;
  cov : Slc_num.Mat.t;
  chol : Slc_num.Mat.t;  (** lower Cholesky factor of [cov] *)
}

val make : mu:Slc_num.Vec.t -> cov:Slc_num.Mat.t -> t
(** Raises [Invalid_argument] if [cov] is not symmetric positive-definite
    (after an automatic tiny-ridge repair attempt) or dimensions
    mismatch. *)

val dim : t -> int

val sample : t -> Rng.t -> Slc_num.Vec.t

val sample_n : t -> Rng.t -> int -> Slc_num.Vec.t array

val logpdf : t -> Slc_num.Vec.t -> float

val mahalanobis2 : t -> Slc_num.Vec.t -> float
(** Squared Mahalanobis distance of a point from the mean. *)

val of_samples : ?ridge_rel:float -> Slc_num.Vec.t array -> t
(** Fit mean and covariance from observation rows; [ridge_rel] (default
    [1e-6]) scales a diagonal ridge relative to the mean diagonal
    variance, keeping near-degenerate sample covariances usable. *)

val marginal : t -> int array -> t
(** Marginal over the listed coordinate indices. *)
