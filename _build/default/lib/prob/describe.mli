(** Descriptive statistics over float-array samples. *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased (n-1) sample variance; requires at least two samples. *)

val std : float array -> float

val skewness : float array -> float
(** Bias-corrected sample skewness; requires at least three samples. *)

val kurtosis_excess : float array -> float
(** Excess kurtosis (0 for a Gaussian); requires at least four samples. *)

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [0,1], linear interpolation between order
    statistics (type-7).  Does not modify the input. *)

val median : float array -> float

val min_max : float array -> float * float

val covariance : float array -> float array -> float
(** Unbiased sample covariance of two equal-length samples. *)

val correlation : float array -> float array -> float

val covariance_matrix : Slc_num.Vec.t array -> Slc_num.Mat.t
(** Sample covariance matrix of a set of observation vectors (rows). *)

val mean_vector : Slc_num.Vec.t array -> Slc_num.Vec.t
