(* Markdown intra-repo link checker.

   Usage: linkcheck <file.md | dir>...

   Scans every named markdown file (directories are walked recursively
   for *.md) for inline links — the [text](target) form — and verifies
   that each repo-relative target exists on disk, resolved against the
   linking file's directory.  External targets (http://, https://,
   mailto:) and pure in-page anchors (#...) are skipped; a trailing
   #anchor on a file target is stripped before the existence check
   (anchor names are not validated).  Reference-style definitions
   ([id]: target) are checked the same way.

   Prints one "file:line: dead link -> target" per failure and exits
   non-zero if any link is dead, so CI can gate on documentation rot.
   No findings, no output. *)

let[@slc.domain_safe
     "linkcheck is a single-domain CLI tool; the counter is only ever \
      touched from the main thread"] failures =
  ref 0

let is_external target =
  let pre p =
    String.length target >= String.length p
    && String.sub target 0 (String.length p) = p
  in
  pre "http://" || pre "https://" || pre "mailto:"

let check_target ~file ~line target =
  let target = String.trim target in
  (* "path#anchor" -> "path"; a bare "#anchor" is an in-page link. *)
  let path =
    match String.index_opt target '#' with
    | Some 0 -> ""
    | Some i -> String.sub target 0 i
    | None -> target
  in
  if path <> "" && not (is_external path) then begin
    let resolved =
      if Filename.is_relative path then
        Filename.concat (Filename.dirname file) path
      else path
    in
    if not (Sys.file_exists resolved) then begin
      Printf.printf "%s:%d: dead link -> %s\n" file line target;
      incr failures
    end
  end

(* Inline links on one line: find "](", take everything up to the
   matching ')'.  Markdown allows a ' "title"' suffix inside the
   parentheses — strip it. *)
let scan_line ~file ~line s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n - 1 do
    if s.[!i] = ']' && s.[!i + 1] = '(' then begin
      match String.index_from_opt s (!i + 2) ')' with
      | Some close ->
        let target = String.sub s (!i + 2) (close - !i - 2) in
        let target =
          match String.index_opt target ' ' with
          | Some sp -> String.sub target 0 sp
          | None -> target
        in
        check_target ~file ~line target;
        i := close
      | None -> incr i
    end
    else incr i
  done;
  (* Reference-style definition: "[id]: target" at line start. *)
  let t = String.trim s in
  if String.length t > 1 && t.[0] = '[' then
    match String.index_opt t ']' with
    | Some close
      when close + 1 < String.length t
           && t.[close + 1] = ':'
           && (* not an inline link continuing with '(' *)
           (close + 2 >= String.length t || t.[close + 2] = ' ') ->
      let target = String.trim (String.sub t (close + 2) (String.length t - close - 2)) in
      if target <> "" then check_target ~file ~line target
    | _ -> ()

let check_file file =
  let ic = open_in file in
  let line = ref 0 in
  (try
     while true do
       incr line;
       scan_line ~file ~line:!line (input_line ic)
     done
   with End_of_file -> ());
  close_in ic

let rec walk path =
  if Sys.is_directory path then
    Array.iter
      (fun entry -> walk (Filename.concat path entry))
      (Sys.readdir path)
  else if Filename.check_suffix path ".md" then check_file path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: linkcheck <file.md | dir>...";
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.printf "%s: no such file or directory\n" p;
        incr failures
      end
      else walk p)
    args;
  exit (if !failures > 0 then 1 else 0)
