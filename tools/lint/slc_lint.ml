(* slc_lint: enforce the repo invariants documented in docs/lint.md
   over the cmt files produced by `dune build @check`.

   Usage:
     slc_lint [--build-root DIR] [--baseline FILE] [--update-baseline]
              [--forbid-stale] [--treat-as-lib] [--rules R1,R5,...]
              [--json FILE] [--dump-callgraph] PATH...

   PATHs are build-root-relative source prefixes (e.g. `lib`); any PATH
   ending in `.cmt` is linted directly instead (fixture/debug use).

   Stale baseline entries (keys that no longer fire) are always
   reported; --forbid-stale additionally makes them fail the run, so a
   committed baseline can never rot.

   Exit codes: 0 clean (or fully baselined), 1 findings (or stale
   baseline entries under --forbid-stale), 2 usage/IO. *)

module Engine = Slc_lint_engine.Engine

let usage () =
  prerr_endline
    "usage: slc_lint [--build-root DIR] [--baseline FILE] \
     [--update-baseline] [--forbid-stale] [--treat-as-lib] \
     [--rules R1,R5,...] [--json FILE] [--dump-callgraph] PATH...";
  exit 2

let parse_rules s =
  let ids = String.split_on_char ',' s in
  List.map
    (fun id ->
      match Engine.rule_of_id (String.trim id) with
      | Some r -> r
      | None ->
        Printf.eprintf "slc_lint: unknown rule %S (known: R1..R7)\n" id;
        exit 2)
    (List.filter (fun id -> String.trim id <> "") ids)

let () =
  let build_root = ref "." in
  let baseline = ref None in
  let update_baseline = ref false in
  let forbid_stale = ref false in
  let treat_as_lib = ref false in
  let rules = ref Engine.all_rules in
  let json = ref None in
  let dump_callgraph = ref false in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--build-root" :: d :: rest ->
      build_root := d;
      parse rest
    | "--baseline" :: f :: rest ->
      baseline := Some f;
      parse rest
    | "--update-baseline" :: rest ->
      update_baseline := true;
      parse rest
    | "--forbid-stale" :: rest ->
      forbid_stale := true;
      parse rest
    | "--treat-as-lib" :: rest ->
      treat_as_lib := true;
      parse rest
    | "--rules" :: r :: rest ->
      rules := parse_rules r;
      parse rest
    | "--json" :: f :: rest ->
      json := Some f;
      parse rest
    | "--dump-callgraph" :: rest ->
      dump_callgraph := true;
      parse rest
    | ("--build-root" | "--baseline" | "--rules" | "--json") :: [] -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      usage ()
    | p :: rest ->
      paths := p :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = List.rev !paths in
  if paths = [] then usage ();
  let cmt_args, prefix_args =
    List.partition (fun p -> Filename.check_suffix p ".cmt") paths
  in
  if !dump_callgraph then begin
    (* Debugging aid: print the resolved def/use graph and stop. *)
    List.iter
      (fun p ->
        match Engine.callgraph_cmt p with
        | lines -> List.iter print_endline lines
        | exception e ->
          Printf.eprintf "slc_lint: cannot read %s: %s\n" p
            (Printexc.to_string e);
          exit 2)
      cmt_args;
    if prefix_args <> [] then begin
      match Engine.callgraph_tree ~build_root:!build_root prefix_args with
      | Ok lines -> List.iter print_endline lines
      | Error msg ->
        Printf.eprintf "slc_lint: %s\n" msg;
        exit 2
    end;
    exit 0
  end;
  let direct =
    List.concat_map
      (fun p ->
        match Engine.lint_cmt ~treat_as_lib:!treat_as_lib ~rules:!rules p with
        | fs -> fs
        | exception e ->
          Printf.eprintf "slc_lint: cannot read %s: %s\n" p
            (Printexc.to_string e);
          exit 2)
      cmt_args
  in
  let tree_findings, scanned =
    if prefix_args = [] then ([], 0)
    else begin
      match
        Engine.lint_tree ~build_root:!build_root ~treat_as_lib:!treat_as_lib
          ~rules:!rules prefix_args
      with
      | Ok (fs, n) -> (fs, n)
      | Error msg ->
        Printf.eprintf "slc_lint: %s\n" msg;
        exit 2
    end
  in
  let findings =
    List.sort Engine.compare_finding (List.rev_append direct tree_findings)
  in
  if !update_baseline then begin
    match !baseline with
    | None ->
      prerr_endline "slc_lint: --update-baseline requires --baseline FILE";
      exit 2
    | Some path ->
      Engine.save_baseline path findings;
      Printf.printf "slc_lint: wrote %d finding(s) to %s\n"
        (List.length findings) path;
      exit 0
  end;
  let known =
    match !baseline with
    | None -> []
    | Some path -> (
      match Engine.load_baseline path with
      | Ok keys -> keys
      | Error msg ->
        Printf.eprintf "slc_lint: cannot read baseline: %s\n" msg;
        exit 2)
  in
  let fresh, baselined =
    List.partition
      (fun f -> not (List.mem (Engine.finding_key f) known))
      findings
  in
  let stale = Engine.stale_keys ~known findings in
  (match !json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Engine.write_json
      ~files_scanned:(scanned + List.length cmt_args)
      ~fresh ~baselined ~stale oc;
    close_out oc);
  List.iter (Engine.pp_finding stdout) fresh;
  List.iter
    (fun k -> Printf.printf "stale baseline entry (no longer fires): %s\n" k)
    stale;
  Printf.printf "slc_lint: %d finding(s) (%d baselined, %d stale) in %d file(s)\n"
    (List.length fresh) (List.length baselined) (List.length stale)
    (scanned + List.length cmt_args);
  if fresh <> [] || (!forbid_stale && stale <> []) then exit 1
