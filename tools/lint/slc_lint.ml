(* slc_lint: enforce the repo invariants documented in docs/lint.md
   over the cmt files produced by `dune build @check`.

   Usage:
     slc_lint [--build-root DIR] [--baseline FILE] [--update-baseline]
              [--treat-as-lib] PATH...

   PATHs are build-root-relative source prefixes (e.g. `lib`); any PATH
   ending in `.cmt` is linted directly instead (fixture/debug use).

   Exit codes: 0 clean (or fully baselined), 1 findings, 2 usage/IO. *)

module Engine = Slc_lint_engine.Engine

let usage () =
  prerr_endline
    "usage: slc_lint [--build-root DIR] [--baseline FILE] \
     [--update-baseline] [--treat-as-lib] PATH...";
  exit 2

let () =
  let build_root = ref "." in
  let baseline = ref None in
  let update_baseline = ref false in
  let treat_as_lib = ref false in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--build-root" :: d :: rest ->
      build_root := d;
      parse rest
    | "--baseline" :: f :: rest ->
      baseline := Some f;
      parse rest
    | "--update-baseline" :: rest ->
      update_baseline := true;
      parse rest
    | "--treat-as-lib" :: rest ->
      treat_as_lib := true;
      parse rest
    | ("--build-root" | "--baseline") :: [] -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      usage ()
    | p :: rest ->
      paths := p :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = List.rev !paths in
  if paths = [] then usage ();
  let cmt_args, prefix_args =
    List.partition (fun p -> Filename.check_suffix p ".cmt") paths
  in
  let direct =
    List.concat_map
      (fun p ->
        match Engine.lint_cmt ~treat_as_lib:!treat_as_lib p with
        | fs -> fs
        | exception e ->
          Printf.eprintf "slc_lint: cannot read %s: %s\n" p
            (Printexc.to_string e);
          exit 2)
      cmt_args
  in
  let tree_findings, scanned =
    if prefix_args = [] then ([], 0)
    else begin
      match
        Engine.lint_tree ~build_root:!build_root ~treat_as_lib:!treat_as_lib
          prefix_args
      with
      | Ok (fs, n) -> (fs, n)
      | Error msg ->
        Printf.eprintf "slc_lint: %s\n" msg;
        exit 2
    end
  in
  let findings =
    List.sort Engine.compare_finding (List.rev_append direct tree_findings)
  in
  if !update_baseline then begin
    match !baseline with
    | None ->
      prerr_endline "slc_lint: --update-baseline requires --baseline FILE";
      exit 2
    | Some path ->
      Engine.save_baseline path findings;
      Printf.printf "slc_lint: wrote %d finding(s) to %s\n"
        (List.length findings) path;
      exit 0
  end;
  let known =
    match !baseline with
    | None -> []
    | Some path -> (
      match Engine.load_baseline path with
      | Ok keys -> keys
      | Error msg ->
        Printf.eprintf "slc_lint: cannot read baseline: %s\n" msg;
        exit 2)
  in
  let fresh =
    List.filter (fun f -> not (List.mem (Engine.finding_key f) known)) findings
  in
  List.iter (Engine.pp_finding stdout) fresh;
  let suppressed = List.length findings - List.length fresh in
  Printf.printf "slc_lint: %d finding(s) (%d baselined) in %d file(s)\n"
    (List.length fresh) suppressed
    (scanned + List.length cmt_args);
  if fresh <> [] then exit 1
