(* slc_lint analysis engine.

   Reads the typed trees dune leaves behind in [.cmt] files (built by
   the [@check] alias) and enforces the four repo invariants documented
   in docs/lint.md:

     R1  error-taxonomy     no raw [failwith] / [invalid_arg] /
                            [raise (Failure _)] in lib/ outside lib/num
     R2  domain-safety      toplevel mutable state must be Atomic,
                            lock-guarded (annotated), or DLS
     R3  hot-path-alloc     [@slc.hot] functions contain no boxing
                            constructs
     R4  exception-safety   mutate-then-restore must go through
                            [Fun.protect]

   The analyses are deliberately syntactic approximations over the
   typedtree — see docs/lint.md for the precise semantics and the
   documented blind spots of each rule.  Every rule can be silenced at
   a use site with a reasoned annotation:

     [@slc.raw_exn "reason"]      silences R1
     [@slc.domain_safe "reason"]  silences R2
     [@slc.hot]                   marks a function for R3 checking
     [@slc.exn_safe "reason"]     silences R4

   This module only unmarshals cmt files and walks saved trees; it
   never queries the type environment, so it needs no load path. *)

type rule = R1 | R2 | R3 | R4

let rule_id = function R1 -> "R1" | R2 -> "R2" | R3 -> "R3" | R4 -> "R4"

let rule_name = function
  | R1 -> "error-taxonomy"
  | R2 -> "domain-safety"
  | R3 -> "hot-path-alloc"
  | R4 -> "exception-safety"

type finding = {
  rule : rule;
  file : string;  (* build-root-relative source path from the cmt *)
  line : int;
  col : int;
  message : string;
}

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
    match compare a.line b.line with
    | 0 -> (
      match compare a.col b.col with
      | 0 -> String.compare a.message b.message
      | c -> c)
    | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Attribute helpers *)

let attr_payload_string (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

type annot = No_annot | Reasoned | Unreasoned

let find_annot name (attrs : Parsetree.attributes) =
  match
    List.find_opt (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs
  with
  | None -> No_annot
  | Some a -> (
    match attr_payload_string a with
    | Some s when String.trim s <> "" -> Reasoned
    | Some _ | None -> Unreasoned)

let has_attr name (attrs : Parsetree.attributes) =
  find_annot name attrs <> No_annot

(* ------------------------------------------------------------------ *)
(* Path classification.  Saved paths print as e.g. "Stdlib.failwith",
   "Stdlib!.failwith" or "Stdlib__Hashtbl.create" depending on how the
   source referred to them, so matching normalizes the stdlib prefixes
   away and then compares the remaining dotted name. *)

let strip_prefix pre s =
  if String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre
  then String.sub s (String.length pre) (String.length s - String.length pre)
  else s

let normalize_path_name name =
  name |> strip_prefix "Stdlib!." |> strip_prefix "Stdlib." |> strip_prefix "Stdlib__"

let expr_head_name (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) -> Some (normalize_path_name (Path.name path))
  | _ -> None

let name_is candidates name = List.mem name candidates

(* Heads whose arguments are only ever evaluated on the failure path:
   allocation below them never runs in a converged hot loop, and raw
   raises below them are themselves R1's business, not R3's. *)
let raise_like name =
  name_is [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ] name
  || (String.length name >= 6 && String.sub name 0 6 = "raise_")
  ||
  (* Typed raise helpers live in Slc_error (referenced as
     Slc_error.…, Slc_obs.Slc_error.…, or Slc_obs__Slc_error.…). *)
  let rec has_component s =
    match String.index_opt s '.' with
    | None -> s = "Slc_error"
    | Some i ->
      String.sub s 0 i = "Slc_error"
      || has_component (String.sub s (i + 1) (String.length s - i - 1))
  in
  has_component name

(* ------------------------------------------------------------------ *)
(* Per-file lint state *)

type ctx = {
  src : string;  (* reported file path *)
  lib_scope : bool;  (* R1 applies (under lib/, outside lib/num) *)
  mutable findings : finding list;
}

let report ctx rule (loc : Location.t) message =
  ctx.findings <-
    {
      rule;
      file = ctx.src;
      line = loc.loc_start.pos_lnum;
      col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
      message;
    }
    :: ctx.findings

(* ================================================================== *)
(* R1: error taxonomy *)

let r1_banned_head name =
  name_is [ "failwith"; "invalid_arg" ] name

let r1_banned_exn cstr_name =
  cstr_name = "Failure" || cstr_name = "Invalid_argument"

(* Walk every expression; a [@slc.raw_exn "…"] annotation on an
   enclosing value binding or on the expression itself suppresses. *)
let check_r1 ctx (str : Typedtree.structure) =
  if ctx.lib_scope then begin
    let depth = ref 0 in
    let enter attrs = if has_attr "slc.raw_exn" attrs then incr depth in
    let leave attrs = if has_attr "slc.raw_exn" attrs then decr depth in
    let suppressed () = !depth > 0 in
    let warn_unreasoned attrs loc =
      if find_annot "slc.raw_exn" attrs = Unreasoned then
        report ctx R1 loc "[@slc.raw_exn] annotation needs a reason string"
    in
    let default = Tast_iterator.default_iterator in
    let expr sub (e : Typedtree.expression) =
      enter e.exp_attributes;
      warn_unreasoned e.exp_attributes e.exp_loc;
      (if not (suppressed ()) then
         match e.exp_desc with
         | Texp_apply (head, (_, Some arg) :: _) -> (
           match expr_head_name head with
           | Some name when r1_banned_head name ->
             report ctx R1 e.exp_loc
               (Printf.sprintf
                  "raw [%s] — raise a typed Slc_error (e.g. \
                   Slc_error.invalid_input) or annotate [@slc.raw_exn \
                   \"reason\"]"
                  name)
           | Some name when name_is [ "raise"; "raise_notrace" ] name -> (
             match arg.exp_desc with
             | Texp_construct (_, cstr, _) when r1_banned_exn cstr.cstr_name ->
               report ctx R1 e.exp_loc
                 (Printf.sprintf
                    "raw [raise (%s _)] — raise a typed Slc_error or \
                     annotate [@slc.raw_exn \"reason\"]"
                    cstr.cstr_name)
             | _ -> ())
           | _ -> ())
         | _ -> ());
      default.expr sub e;
      leave e.exp_attributes
    in
    let value_binding sub (vb : Typedtree.value_binding) =
      enter vb.vb_attributes;
      warn_unreasoned vb.vb_attributes vb.vb_loc;
      default.value_binding sub vb;
      leave vb.vb_attributes
    in
    let it = { default with expr; value_binding } in
    it.structure it str
  end

(* ================================================================== *)
(* R2: domain safety of toplevel mutable state *)

(* Creation heads that are already safe to share across domains. *)
let r2_safe_head name =
  name_is
    [
      "Atomic.make";
      "Mutex.create";
      "Condition.create";
      "Semaphore.Counting.make";
      "Semaphore.Binary.make";
      "Domain.DLS.new_key";
    ]
    name

(* Creation heads that build unsynchronized mutable state. *)
let r2_mutable_head name =
  name_is
    [
      "ref";
      "Hashtbl.create";
      "Queue.create";
      "Stack.create";
      "Buffer.create";
      "Bytes.create";
      "Bytes.make";
    ]
    name

let record_has_mutable_label (fields : (Types.label_description * _) array) =
  Array.exists (fun ((lbl : Types.label_description), _) -> lbl.lbl_mut = Mutable) fields

(* Scan the right-hand side of a structure-level binding for mutable
   state that will be shared by every domain.  Function bodies are NOT
   entered: state created per call (or stashed in DLS) is per-domain by
   construction.  Arrays are also skipped — the codebase's toplevel
   arrays are lookup tables written once at init (a documented blind
   spot). *)
let rec r2_scan ctx (e : Typedtree.expression) =
  if has_attr "slc.domain_safe" e.exp_attributes then ()
  else
    match e.exp_desc with
    | Texp_function _ -> ()
    | Texp_apply (head, args) -> (
      match expr_head_name head with
      | Some name when r2_safe_head name -> ()
      | Some name when r2_mutable_head name ->
        report ctx R2 e.exp_loc
          (Printf.sprintf
             "toplevel mutable state via [%s] — use Atomic, a \
              mutex-guarded structure annotated [@slc.domain_safe \
              \"reason\"], or Domain.DLS"
             name)
      | _ ->
        List.iter (fun (_, a) -> Option.iter (r2_scan ctx) a) args)
    | Texp_record { fields; extended_expression; _ } ->
      if record_has_mutable_label fields then
        report ctx R2 e.exp_loc
          "toplevel record with mutable fields — guard it and annotate \
           [@slc.domain_safe \"reason\"] or make the fields Atomic"
      else begin
        Array.iter
          (fun (_, def) ->
            match def with
            | Typedtree.Overridden (_, e) -> r2_scan ctx e
            | Typedtree.Kept _ -> ())
          fields;
        Option.iter (r2_scan ctx) extended_expression
      end
    | Texp_let (_, vbs, body) ->
      List.iter (fun (vb : Typedtree.value_binding) -> r2_scan ctx vb.vb_expr) vbs;
      r2_scan ctx body
    | Texp_tuple es -> List.iter (r2_scan ctx) es
    | Texp_construct (_, _, es) -> List.iter (r2_scan ctx) es
    | Texp_sequence (a, b) ->
      r2_scan ctx a;
      r2_scan ctx b
    | Texp_open (_, body) -> r2_scan ctx body
    | _ -> ()

(* R2, escaping-closure extension.  [r2_scan] deliberately skips
   function bodies: state created per call dies with the call.  That
   leaves one way per-call state becomes shared state — a factory whose
   body creates a mutable structure and returns a closure capturing it:

     let memo build =
       let table = Hashtbl.create 16 in
       fun x -> … table …

   Every caller of the returned closure then shares [table], across
   domains, exactly like a toplevel table.  This pass walks {e inside}
   functions and flags let-chains that create unsynchronized mutable
   state and end in a [fun].

   Tolerated, by the guarded-memo convention (e.g. [Oracle.memo_by_arc]):
   a binding anywhere in the same chain — or in an enclosing chain of
   the same function — whose head is a safe creation ([Mutex.create],
   [Atomic.make], …), plus the usual [@slc.domain_safe "reason"]
   annotation.  Chains whose tail returns closures indirectly (a record
   of closures, a partial application) are a documented blind spot. *)

let creation_head (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (head, _) -> expr_head_name head
  | _ -> None

let binds_safe_creation (vbs : Typedtree.value_binding list) =
  List.exists
    (fun (vb : Typedtree.value_binding) ->
      match creation_head vb.vb_expr with
      | Some name -> r2_safe_head name
      | None -> false)
    vbs

let rec r2_chain_final (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_let (_, _, body) | Texp_open (_, body) | Texp_sequence (_, body) ->
    r2_chain_final body
  | _ -> e

let rec r2_chain_has_safe (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_let (_, vbs, body) -> binds_safe_creation vbs || r2_chain_has_safe body
  | Texp_open (_, body) | Texp_sequence (_, body) -> r2_chain_has_safe body
  | _ -> false

let check_r2_escapes ctx (str : Typedtree.structure) =
  let fun_depth = ref 0 in
  let safe_scope = ref 0 in
  let annot_depth = ref 0 in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    let annotated = has_attr "slc.domain_safe" e.exp_attributes in
    if annotated then incr annot_depth;
    (match e.exp_desc with
    | Texp_let (_, vbs, body)
      when !fun_depth > 0 && !annot_depth = 0 && !safe_scope = 0
           && not (r2_chain_has_safe e) -> (
      match (r2_chain_final body).exp_desc with
      | Texp_function _ ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            if find_annot "slc.domain_safe" vb.vb_attributes = No_annot then
              match creation_head vb.vb_expr with
              | Some name when r2_mutable_head name ->
                report ctx R2 vb.vb_loc
                  (Printf.sprintf
                     "mutable state via [%s] is captured by a returned \
                      closure — it outlives the call and is shared by every \
                      caller across domains; guard it with a sibling \
                      Mutex/Atomic in the same chain or annotate \
                      [@slc.domain_safe \"reason\"]"
                     name)
              | _ -> ())
          vbs
      | _ -> ())
    | _ -> ());
    let enters_fun =
      match e.exp_desc with Texp_function _ -> true | _ -> false
    in
    let adds_safe =
      match e.exp_desc with
      | Texp_let (_, vbs, _) -> binds_safe_creation vbs
      | _ -> false
    in
    if enters_fun then incr fun_depth;
    if adds_safe then incr safe_scope;
    default.expr sub e;
    if adds_safe then decr safe_scope;
    if enters_fun then decr fun_depth;
    if annotated then decr annot_depth
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let annotated = find_annot "slc.domain_safe" vb.vb_attributes <> No_annot in
    if annotated then incr annot_depth;
    default.value_binding sub vb;
    if annotated then decr annot_depth
  in
  let it = { default with expr; value_binding } in
  it.structure it str

let rec check_r2_structure ctx (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match find_annot "slc.domain_safe" vb.vb_attributes with
            | Reasoned -> ()
            | Unreasoned ->
              report ctx R2 vb.vb_loc
                "[@slc.domain_safe] annotation needs a reason string"
            | No_annot -> r2_scan ctx vb.vb_expr)
          vbs
      | Tstr_module mb -> check_r2_module ctx mb.mb_expr
      | Tstr_recmodule mbs ->
        List.iter (fun (mb : Typedtree.module_binding) -> check_r2_module ctx mb.mb_expr) mbs
      | Tstr_include incl -> check_r2_module ctx incl.incl_mod
      | _ -> ())
    str.str_items

and check_r2_module ctx (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> check_r2_structure ctx str
  | Tmod_constraint (me, _, _, _) -> check_r2_module ctx me
  | _ -> ()

(* ================================================================== *)
(* R3: no boxing in [@slc.hot] functions *)

(* Scan a hot function body.  Findings name the construct; subtrees
   under raise-like heads are failure-path-only and skipped.  Local
   [ref]s are tolerated: the compiler turns non-escaping refs into
   mutable stack variables, and the transient bench pins the actual
   allocation count. *)
let rec r3_scan ctx ~fname (e : Typedtree.expression) =
  let flag what =
    report ctx R3 e.exp_loc
      (Printf.sprintf "[@slc.hot] %s: %s allocates on the hot path" fname what)
  in
  let deeper = r3_scan ctx ~fname in
  match e.exp_desc with
  | Texp_function { cases; _ } ->
    flag "closure (local function or fun literal)";
    List.iter (fun (c : _ Typedtree.case) -> deeper c.c_rhs) cases
  | Texp_tuple es ->
    flag "tuple literal";
    List.iter deeper es
  | Texp_record { fields; extended_expression; _ } ->
    flag "record literal";
    Array.iter
      (fun (_, def) ->
        match def with
        | Typedtree.Overridden (_, e) -> deeper e
        | Typedtree.Kept _ -> ())
      fields;
    Option.iter deeper extended_expression
  | Texp_array es ->
    if es <> [] then flag "array literal";
    List.iter deeper es
  | Texp_lazy _ -> flag "lazy block"
  | Texp_apply (head, args) -> (
    match expr_head_name head with
    | Some name when raise_like name ->
      (* Failure path: everything below only allocates when raising. *)
      ()
    | Some name
      when name_is [ "Printf.sprintf"; "Printf.printf"; "Printf.eprintf" ] name
           || strip_prefix "Printf." name <> name
           || strip_prefix "Format." name <> name ->
      flag (Printf.sprintf "call to [%s]" name)
    | _ ->
      if List.exists (fun (_, a) -> a = None) args then
        flag "partial application (closure)";
      deeper head;
      List.iter (fun (_, a) -> Option.iter deeper a) args)
  | Texp_let (_, vbs, body) ->
    List.iter (fun (vb : Typedtree.value_binding) -> deeper vb.vb_expr) vbs;
    deeper body
  | Texp_sequence (a, b) ->
    deeper a;
    deeper b
  | Texp_ifthenelse (c, t, e_) ->
    deeper c;
    deeper t;
    Option.iter deeper e_
  | Texp_match (scrut, cases, _) ->
    deeper scrut;
    List.iter (fun (c : _ Typedtree.case) -> deeper c.c_rhs) cases
  | Texp_try (body, cases) ->
    deeper body;
    List.iter (fun (c : _ Typedtree.case) -> deeper c.c_rhs) cases
  | Texp_while (c, body) ->
    deeper c;
    deeper body
  | Texp_for (_, _, lo, hi, _, body) ->
    deeper lo;
    deeper hi;
    deeper body
  | Texp_setfield (a, _, _, b) ->
    deeper a;
    deeper b
  | Texp_field (a, _, _) -> deeper a
  | Texp_construct (_, _, es) ->
    (* [Some k] at a return site is tolerated: it allocates once per
       call, not per iteration, and option results are the module
       convention.  Arguments are still scanned. *)
    List.iter deeper es
  | Texp_open (_, body) -> deeper body
  | _ -> ()

(* The annotated binding's outer [fun] parameters are the function's
   own arguments, not allocations — unwrap them before scanning. *)
let rec r3_unwrap_params (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> r3_unwrap_params c.c_rhs
  | _ -> e

let check_r3 ctx (str : Typedtree.structure) =
  let default = Tast_iterator.default_iterator in
  let value_binding sub (vb : Typedtree.value_binding) =
    if has_attr "slc.hot" vb.vb_attributes then begin
      let fname =
        match vb.vb_pat.pat_desc with
        | Tpat_var (id, _) -> Ident.name id
        | _ -> "<pattern>"
      in
      r3_scan ctx ~fname (r3_unwrap_params vb.vb_expr)
    end;
    default.value_binding sub vb
  in
  let it = { default with value_binding } in
  it.structure it str

(* ================================================================== *)
(* R4: mutate-then-restore must use Fun.protect *)

(* Pattern matched:

     let saved = x.f          (or  let saved = !r)
     …
     x.f <- saved             (or  r := saved)

   where the restore write is NOT syntactically inside an argument of a
   [Fun.protect] application.  The restore-by-name link makes this
   precise enough to run repo-wide: saves that are never written back
   (plain reads) and restores already routed through Fun.protect do not
   fire. *)

(* What location the save read from: a mutable record field (matched by
   label name on restore) or a ref cell (matched by the ref's own ident
   when it is a plain variable).  Linking the restore back to the same
   location is what keeps "read a mutable field, later store that value
   somewhere else" from firing. *)
type r4_source = Src_field of string | Src_ref of Ident.t | Src_ref_opaque

let r4_source_of (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_field (_, _, lbl) when lbl.lbl_mut = Mutable -> Some (Src_field lbl.lbl_name)
  | Texp_apply (head, [ (_, Some cell) ]) -> (
    match expr_head_name head with
    | Some "!" -> (
      match cell.exp_desc with
      | Texp_ident (Path.Pident rid, _, _) -> Some (Src_ref rid)
      | _ -> Some Src_ref_opaque)
    | _ -> None)
  | _ -> None

let is_ident id (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident rid, _, _) -> Ident.same rid id
  | _ -> false

let restore_of_ident ~src id (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_setfield (_, _, lbl, rhs) -> (
    match src with
    | Src_field name -> lbl.lbl_name = name && is_ident id rhs
    | Src_ref _ | Src_ref_opaque -> false)
  | Texp_apply (head, [ (_, Some cell); (_, Some rhs) ]) -> (
    match (expr_head_name head, src) with
    | Some ":=", Src_ref rid -> is_ident rid cell && is_ident id rhs
    | Some ":=", Src_ref_opaque -> is_ident id rhs
    | _ -> false)
  | _ -> false

(* Does [e] contain a restore of [id] outside any Fun.protect call? *)
let unprotected_restore ~src id (e : Typedtree.expression) =
  let found = ref false in
  let protect_depth = ref 0 in
  let default = Tast_iterator.default_iterator in
  let expr sub (x : Typedtree.expression) =
    let entering_protect =
      match x.exp_desc with
      | Texp_apply (head, _) -> (
        match expr_head_name head with
        | Some name -> name_is [ "Fun.protect"; "protect" ] name
        | None -> false)
      | _ -> false
    in
    if entering_protect then incr protect_depth;
    if !protect_depth = 0 && restore_of_ident ~src id x then found := true;
    default.expr sub x;
    if entering_protect then decr protect_depth
  in
  let it = { default with expr } in
  it.expr it e;
  !found

let check_r4 ctx (str : Typedtree.structure) =
  let annot_depth = ref 0 in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_let (_, [ vb ], body) when !annot_depth = 0 -> (
      match (vb.vb_pat.pat_desc, r4_source_of vb.vb_expr) with
      | Tpat_var (id, _), Some src ->
        if unprotected_restore ~src id body then
          report ctx R4 vb.vb_loc
            (Printf.sprintf
               "save/restore of mutable state through [%s] without \
                Fun.protect — an exception between save and restore \
                leaks the mutation (annotate [@slc.exn_safe \"reason\"] \
                if that is intended)"
               (Ident.name id))
      | _ -> ())
    | _ -> ());
    let annotated = has_attr "slc.exn_safe" e.exp_attributes in
    if annotated then incr annot_depth;
    default.expr sub e;
    if annotated then decr annot_depth
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let annotated = has_attr "slc.exn_safe" vb.vb_attributes in
    if annotated then incr annot_depth;
    default.value_binding sub vb;
    if annotated then decr annot_depth
  in
  let it = { default with expr; value_binding } in
  it.structure it str

(* ================================================================== *)
(* Driver *)

let in_lib_scope src =
  let has_prefix p = String.length src >= String.length p && String.sub src 0 (String.length p) = p in
  has_prefix "lib/" && not (has_prefix "lib/num/")

let lint_structure ~src ~lib_scope (str : Typedtree.structure) =
  let ctx = { src; lib_scope; findings = [] } in
  check_r1 ctx str;
  check_r2_structure ctx str;
  check_r2_escapes ctx str;
  check_r3 ctx str;
  check_r4 ctx str;
  List.sort compare_finding ctx.findings

(* Lint one cmt file.  Returns [] for interfaces and partial
   implementations.  [treat_as_lib] forces R1 scope regardless of the
   recorded source path (used by the fixture tests, whose sources do
   not live under lib/). *)
let lint_cmt ?(treat_as_lib = false) path =
  let cmt = Cmt_format.read_cmt path in
  let src =
    match cmt.cmt_sourcefile with Some s -> s | None -> Filename.basename path
  in
  match cmt.cmt_annots with
  | Cmt_format.Implementation str ->
    let lib_scope = treat_as_lib || in_lib_scope src in
    lint_structure ~src ~lib_scope str
  | _ -> []

(* ------------------------------------------------------------------ *)
(* cmt discovery: walk _build/default for *.cmt whose recorded source
   file falls under one of the requested prefixes. *)

let rec walk dir acc =
  match Sys.readdir dir with
  | entries ->
    Array.fold_left
      (fun acc name ->
        let p = Filename.concat dir name in
        if Sys.is_directory p then walk p acc
        else if Filename.check_suffix name ".cmt" then p :: acc
        else acc)
      acc entries
  | exception Sys_error _ -> acc

let source_matches prefixes src =
  List.exists
    (fun p ->
      let p = if Filename.check_suffix p "/" then p else p ^ "/" in
      src = String.sub p 0 (String.length p - 1)
      || (String.length src >= String.length p && String.sub src 0 (String.length p) = p))
    prefixes

let lint_tree ~build_root ~treat_as_lib prefixes =
  (* Accept either a source checkout (scan its _build/default) or a
     position already inside the compiled tree (dune actions run in
     _build/default). *)
  let candidate = Filename.concat build_root (Filename.concat "_build" "default") in
  let root =
    if Sys.file_exists candidate && Sys.is_directory candidate then candidate
    else build_root
  in
  if not (Sys.file_exists root && Sys.is_directory root) then
    Error (Printf.sprintf "no build tree at %s (run `dune build @check` first)" root)
  else begin
    let cmts = walk root [] in
    let seen_src = Hashtbl.create 64 in
    let findings =
      List.fold_left
        (fun acc cmt_path ->
          match Cmt_format.read_cmt cmt_path with
          | exception _ -> acc (* stale or foreign cmt: not ours to judge *)
          | cmt -> (
            match (cmt.cmt_annots, cmt.cmt_sourcefile) with
            | Cmt_format.Implementation str, Some src
              when source_matches prefixes src
                   && not (Hashtbl.mem seen_src src) ->
              Hashtbl.add seen_src src ();
              let lib_scope = treat_as_lib || in_lib_scope src in
              List.rev_append (lint_structure ~src ~lib_scope str) acc
            | _ -> acc))
        [] cmts
    in
    Ok (List.sort compare_finding findings, Hashtbl.length seen_src)
  end

(* ------------------------------------------------------------------ *)
(* Baseline: one finding per line, [rule|file|line|message].  Line
   numbers are part of the key on purpose — a baseline is a temporary
   debt ledger, and code motion around a suppressed finding should
   resurface it for a fresh look. *)

let finding_key f =
  Printf.sprintf "%s|%s|%d|%s" (rule_id f.rule) f.file f.line f.message

let load_baseline path =
  if not (Sys.file_exists path) then Ok []
  else begin
    match open_in path with
    | exception Sys_error e -> Error e
    | ic ->
      let keys = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then keys := line :: !keys
         done
       with End_of_file -> ());
      close_in ic;
      Ok (List.rev !keys)
  end

let save_baseline path findings =
  let oc = open_out path in
  output_string oc
    "# slc_lint baseline: known findings suppressed from CI.\n\
     # Regenerate with: slc_lint --update-baseline …  (keep this empty)\n";
  List.iter (fun f -> output_string oc (finding_key f ^ "\n")) findings;
  close_out oc

let pp_finding oc f =
  Printf.fprintf oc "%s:%d:%d: [%s %s] %s\n" f.file f.line f.col (rule_id f.rule)
    (rule_name f.rule) f.message
