(* slc_lint analysis engine.

   Reads the typed trees dune leaves behind in [.cmt] files (built by
   the [@check] alias) and enforces the repo invariants documented in
   docs/lint.md:

     R1  error-taxonomy       no raw [failwith] / [invalid_arg] /
                              [raise (Failure _)] in lib/ outside lib/num
     R2  domain-safety        toplevel mutable state must be Atomic,
                              lock-guarded (annotated), or DLS
     R3  hot-path-alloc       [@slc.hot] functions contain no boxing
                              constructs
     R4  exception-safety     mutate-then-restore must go through
                              [Fun.protect]
     R5  transitive-hot-alloc R3 propagated through the call graph:
                              everything reachable from an [@slc.hot]
                              body must be allocation-free, itself
                              [@slc.hot], or escaped
     R6  lock-order           held-while-acquiring cycles and locks
                              held across pool submission / simulation
     R7  determinism          Hashtbl iteration order, wall clocks and
                              float physical equality in functions
                              reachable from the bitwise-contract
                              entry points

   R1–R4 are per-function; R5–R7 run over a module-qualified def/use
   call graph resolved across every scanned compilation unit (see
   "Call graph" below for the documented conservative treatment of
   higher-order and functor-opaque calls).  Every rule can be silenced
   at a use site with a reasoned annotation:

     [@slc.raw_exn "reason"]      silences R1
     [@slc.domain_safe "reason"]  silences R2
     [@slc.hot]                   marks a function for R3/R5 checking
     [@slc.exn_safe "reason"]     silences R4
     [@slc.alloc_ok "reason"]     R5: callee may allocate (cuts the walk)
     [@slc.lock_ok "reason"]      R6: this function's lock usage is
                                  intentional (cuts its findings)
     [@slc.det_ok "reason"]       R7: value cannot affect results
                                  (definition- or expression-level)
     [@slc.det_root]              R7: extra determinism root (marker,
                                  no reason required)

   This module only unmarshals cmt files and walks saved trees; it
   never queries the type environment, so it needs no load path. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7

let all_rules = [ R1; R2; R3; R4; R5; R6; R7 ]

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"

let rule_name = function
  | R1 -> "error-taxonomy"
  | R2 -> "domain-safety"
  | R3 -> "hot-path-alloc"
  | R4 -> "exception-safety"
  | R5 -> "transitive-hot-alloc"
  | R6 -> "lock-order"
  | R7 -> "determinism"

let rule_of_id = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | _ -> None

type finding = {
  rule : rule;
  file : string;  (* build-root-relative source path from the cmt *)
  line : int;
  col : int;
  message : string;
}

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
    match compare a.line b.line with
    | 0 -> (
      match compare a.col b.col with
      | 0 -> String.compare a.message b.message
      | c -> c)
    | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Attribute helpers *)

let attr_payload_string (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

type annot = No_annot | Reasoned | Unreasoned

let find_annot name (attrs : Parsetree.attributes) =
  match
    List.find_opt (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs
  with
  | None -> No_annot
  | Some a -> (
    match attr_payload_string a with
    | Some s when String.trim s <> "" -> Reasoned
    | Some _ | None -> Unreasoned)

let has_attr name (attrs : Parsetree.attributes) =
  find_annot name attrs <> No_annot

(* ------------------------------------------------------------------ *)
(* Path classification.  Saved paths print as e.g. "Stdlib.failwith",
   "Stdlib!.failwith" or "Stdlib__Hashtbl.create" depending on how the
   source referred to them, so matching normalizes the stdlib prefixes
   away and then compares the remaining dotted name. *)

let strip_prefix pre s =
  if String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre
  then String.sub s (String.length pre) (String.length s - String.length pre)
  else s

let has_prefix pre s =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

let normalize_path_name name =
  name |> strip_prefix "Stdlib!." |> strip_prefix "Stdlib." |> strip_prefix "Stdlib__"

let expr_head_name (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) -> Some (normalize_path_name (Path.name path))
  | _ -> None

let name_is candidates name = List.mem name candidates

(* Heads whose arguments are only ever evaluated on the failure path:
   allocation below them never runs in a converged hot loop, and raw
   raises below them are themselves R1's business, not R3's. *)
let raise_like name =
  name_is [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ] name
  || (String.length name >= 6 && String.sub name 0 6 = "raise_")
  ||
  (* Typed raise helpers live in Slc_error (referenced as
     Slc_error.…, Slc_obs.Slc_error.…, or Slc_obs__Slc_error.…). *)
  let rec has_component s =
    match String.index_opt s '.' with
    | None -> s = "Slc_error"
    | Some i ->
      String.sub s 0 i = "Slc_error"
      || has_component (String.sub s (i + 1) (String.length s - i - 1))
  in
  has_component name

(* ------------------------------------------------------------------ *)
(* Per-file lint state *)

type ctx = {
  src : string;  (* reported file path *)
  lib_scope : bool;  (* R1 applies (under lib/, outside lib/num) *)
  mutable findings : finding list;
}

let report ctx rule (loc : Location.t) message =
  ctx.findings <-
    {
      rule;
      file = ctx.src;
      line = loc.loc_start.pos_lnum;
      col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
      message;
    }
    :: ctx.findings

(* ================================================================== *)
(* R1: error taxonomy *)

let r1_banned_head name =
  name_is [ "failwith"; "invalid_arg" ] name

let r1_banned_exn cstr_name =
  cstr_name = "Failure" || cstr_name = "Invalid_argument"

(* Walk every expression; a [@slc.raw_exn "…"] annotation on an
   enclosing value binding or on the expression itself suppresses. *)
let check_r1 ctx (str : Typedtree.structure) =
  if ctx.lib_scope then begin
    let depth = ref 0 in
    let enter attrs = if has_attr "slc.raw_exn" attrs then incr depth in
    let leave attrs = if has_attr "slc.raw_exn" attrs then decr depth in
    let suppressed () = !depth > 0 in
    let warn_unreasoned attrs loc =
      if find_annot "slc.raw_exn" attrs = Unreasoned then
        report ctx R1 loc "[@slc.raw_exn] annotation needs a reason string"
    in
    let default = Tast_iterator.default_iterator in
    let expr sub (e : Typedtree.expression) =
      enter e.exp_attributes;
      warn_unreasoned e.exp_attributes e.exp_loc;
      (if not (suppressed ()) then
         match e.exp_desc with
         | Texp_apply (head, (_, Some arg) :: _) -> (
           match expr_head_name head with
           | Some name when r1_banned_head name ->
             report ctx R1 e.exp_loc
               (Printf.sprintf
                  "raw [%s] — raise a typed Slc_error (e.g. \
                   Slc_error.invalid_input) or annotate [@slc.raw_exn \
                   \"reason\"]"
                  name)
           | Some name when name_is [ "raise"; "raise_notrace" ] name -> (
             match arg.exp_desc with
             | Texp_construct (_, cstr, _) when r1_banned_exn cstr.cstr_name ->
               report ctx R1 e.exp_loc
                 (Printf.sprintf
                    "raw [raise (%s _)] — raise a typed Slc_error or \
                     annotate [@slc.raw_exn \"reason\"]"
                    cstr.cstr_name)
             | _ -> ())
           | _ -> ())
         | _ -> ());
      default.expr sub e;
      leave e.exp_attributes
    in
    let value_binding sub (vb : Typedtree.value_binding) =
      enter vb.vb_attributes;
      warn_unreasoned vb.vb_attributes vb.vb_loc;
      default.value_binding sub vb;
      leave vb.vb_attributes
    in
    let it = { default with expr; value_binding } in
    it.structure it str
  end

(* ================================================================== *)
(* R2: domain safety of toplevel mutable state *)

(* Creation heads that are already safe to share across domains. *)
let r2_safe_head name =
  name_is
    [
      "Atomic.make";
      "Mutex.create";
      "Condition.create";
      "Semaphore.Counting.make";
      "Semaphore.Binary.make";
      "Domain.DLS.new_key";
    ]
    name

(* Creation heads that build unsynchronized mutable state. *)
let r2_mutable_head name =
  name_is
    [
      "ref";
      "Hashtbl.create";
      "Queue.create";
      "Stack.create";
      "Buffer.create";
      "Bytes.create";
      "Bytes.make";
    ]
    name

let record_has_mutable_label (fields : (Types.label_description * _) array) =
  Array.exists (fun ((lbl : Types.label_description), _) -> lbl.lbl_mut = Mutable) fields

(* Scan the right-hand side of a structure-level binding for mutable
   state that will be shared by every domain.  Function bodies are NOT
   entered: state created per call (or stashed in DLS) is per-domain by
   construction.  Arrays are also skipped — the codebase's toplevel
   arrays are lookup tables written once at init (a documented blind
   spot). *)
let rec r2_scan ctx (e : Typedtree.expression) =
  if has_attr "slc.domain_safe" e.exp_attributes then ()
  else
    match e.exp_desc with
    | Texp_function _ -> ()
    | Texp_apply (head, args) -> (
      match expr_head_name head with
      | Some name when r2_safe_head name -> ()
      | Some name when r2_mutable_head name ->
        report ctx R2 e.exp_loc
          (Printf.sprintf
             "toplevel mutable state via [%s] — use Atomic, a \
              mutex-guarded structure annotated [@slc.domain_safe \
              \"reason\"], or Domain.DLS"
             name)
      | _ ->
        List.iter (fun (_, a) -> Option.iter (r2_scan ctx) a) args)
    | Texp_record { fields; extended_expression; _ } ->
      if record_has_mutable_label fields then
        report ctx R2 e.exp_loc
          "toplevel record with mutable fields — guard it and annotate \
           [@slc.domain_safe \"reason\"] or make the fields Atomic"
      else begin
        Array.iter
          (fun (_, def) ->
            match def with
            | Typedtree.Overridden (_, e) -> r2_scan ctx e
            | Typedtree.Kept _ -> ())
          fields;
        Option.iter (r2_scan ctx) extended_expression
      end
    | Texp_let (_, vbs, body) ->
      List.iter (fun (vb : Typedtree.value_binding) -> r2_scan ctx vb.vb_expr) vbs;
      r2_scan ctx body
    | Texp_tuple es -> List.iter (r2_scan ctx) es
    | Texp_construct (_, _, es) -> List.iter (r2_scan ctx) es
    | Texp_sequence (a, b) ->
      r2_scan ctx a;
      r2_scan ctx b
    | Texp_open (_, body) -> r2_scan ctx body
    | _ -> ()

(* R2, escaping-closure extension.  [r2_scan] deliberately skips
   function bodies: state created per call dies with the call.  That
   leaves one way per-call state becomes shared state — a factory whose
   body creates a mutable structure and returns a closure capturing it:

     let memo build =
       let table = Hashtbl.create 16 in
       fun x -> … table …

   Every caller of the returned closure then shares [table], across
   domains, exactly like a toplevel table.  This pass walks {e inside}
   functions and flags let-chains that create unsynchronized mutable
   state and end in a [fun].

   Tolerated, by the guarded-memo convention (e.g. [Oracle.memo_by_arc]):
   a binding anywhere in the same chain — or in an enclosing chain of
   the same function — whose head is a safe creation ([Mutex.create],
   [Atomic.make], …), plus the usual [@slc.domain_safe "reason"]
   annotation.  Chains whose tail returns closures indirectly (a record
   of closures, a partial application) are a documented blind spot. *)

let creation_head (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (head, _) -> expr_head_name head
  | _ -> None

let binds_safe_creation (vbs : Typedtree.value_binding list) =
  List.exists
    (fun (vb : Typedtree.value_binding) ->
      match creation_head vb.vb_expr with
      | Some name -> r2_safe_head name
      | None -> false)
    vbs

let rec r2_chain_final (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_let (_, _, body) | Texp_open (_, body) | Texp_sequence (_, body) ->
    r2_chain_final body
  | _ -> e

let rec r2_chain_has_safe (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_let (_, vbs, body) -> binds_safe_creation vbs || r2_chain_has_safe body
  | Texp_open (_, body) | Texp_sequence (_, body) -> r2_chain_has_safe body
  | _ -> false

let check_r2_escapes ctx (str : Typedtree.structure) =
  let fun_depth = ref 0 in
  let safe_scope = ref 0 in
  let annot_depth = ref 0 in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    let annotated = has_attr "slc.domain_safe" e.exp_attributes in
    if annotated then incr annot_depth;
    (match e.exp_desc with
    | Texp_let (_, vbs, body)
      when !fun_depth > 0 && !annot_depth = 0 && !safe_scope = 0
           && not (r2_chain_has_safe e) -> (
      match (r2_chain_final body).exp_desc with
      | Texp_function _ ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            if find_annot "slc.domain_safe" vb.vb_attributes = No_annot then
              match creation_head vb.vb_expr with
              | Some name when r2_mutable_head name ->
                report ctx R2 vb.vb_loc
                  (Printf.sprintf
                     "mutable state via [%s] is captured by a returned \
                      closure — it outlives the call and is shared by every \
                      caller across domains; guard it with a sibling \
                      Mutex/Atomic in the same chain or annotate \
                      [@slc.domain_safe \"reason\"]"
                     name)
              | _ -> ())
          vbs
      | _ -> ())
    | _ -> ());
    let enters_fun =
      match e.exp_desc with Texp_function _ -> true | _ -> false
    in
    let adds_safe =
      match e.exp_desc with
      | Texp_let (_, vbs, _) -> binds_safe_creation vbs
      | _ -> false
    in
    if enters_fun then incr fun_depth;
    if adds_safe then incr safe_scope;
    default.expr sub e;
    if adds_safe then decr safe_scope;
    if enters_fun then decr fun_depth;
    if annotated then decr annot_depth
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let annotated = find_annot "slc.domain_safe" vb.vb_attributes <> No_annot in
    if annotated then incr annot_depth;
    default.value_binding sub vb;
    if annotated then decr annot_depth
  in
  let it = { default with expr; value_binding } in
  it.structure it str

let rec check_r2_structure ctx (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match find_annot "slc.domain_safe" vb.vb_attributes with
            | Reasoned -> ()
            | Unreasoned ->
              report ctx R2 vb.vb_loc
                "[@slc.domain_safe] annotation needs a reason string"
            | No_annot -> r2_scan ctx vb.vb_expr)
          vbs
      | Tstr_module mb -> check_r2_module ctx mb.mb_expr
      | Tstr_recmodule mbs ->
        List.iter (fun (mb : Typedtree.module_binding) -> check_r2_module ctx mb.mb_expr) mbs
      | Tstr_include incl -> check_r2_module ctx incl.incl_mod
      | _ -> ())
    str.str_items

and check_r2_module ctx (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> check_r2_structure ctx str
  | Tmod_constraint (me, _, _, _) -> check_r2_module ctx me
  | _ -> ()

(* ================================================================== *)
(* Allocation scanner, shared by R3 (direct [@slc.hot] bodies) and R5
   (functions reached from a hot body through the call graph). *)

(* Scan a function body for boxing constructs.  [flag loc what] is
   called per construct; subtrees under raise-like heads are
   failure-path-only and skipped.  Local [ref]s are tolerated: the
   compiler turns non-escaping refs into mutable stack variables, and
   the transient bench pins the actual allocation count. *)
let rec alloc_scan ~flag (e : Typedtree.expression) =
  let here what = flag e.exp_loc what in
  let deeper = alloc_scan ~flag in
  match e.exp_desc with
  | Texp_function { cases; _ } ->
    here "closure (local function or fun literal)";
    List.iter (fun (c : _ Typedtree.case) -> deeper c.c_rhs) cases
  | Texp_tuple es ->
    here "tuple literal";
    List.iter deeper es
  | Texp_record { fields; extended_expression; _ } ->
    here "record literal";
    Array.iter
      (fun (_, def) ->
        match def with
        | Typedtree.Overridden (_, e) -> deeper e
        | Typedtree.Kept _ -> ())
      fields;
    Option.iter deeper extended_expression
  | Texp_array es ->
    if es <> [] then here "array literal";
    List.iter deeper es
  | Texp_lazy _ -> here "lazy block"
  | Texp_apply (head, args) -> (
    match expr_head_name head with
    | Some name when raise_like name ->
      (* Failure path: everything below only allocates when raising. *)
      ()
    | Some name
      when name_is [ "Printf.sprintf"; "Printf.printf"; "Printf.eprintf" ] name
           || strip_prefix "Printf." name <> name
           || strip_prefix "Format." name <> name ->
      here (Printf.sprintf "call to [%s]" name)
    | _ ->
      if List.exists (fun (_, a) -> a = None) args then
        here "partial application (closure)";
      deeper head;
      List.iter (fun (_, a) -> Option.iter deeper a) args)
  | Texp_let (_, vbs, body) ->
    List.iter (fun (vb : Typedtree.value_binding) -> deeper vb.vb_expr) vbs;
    deeper body
  | Texp_sequence (a, b) ->
    deeper a;
    deeper b
  | Texp_ifthenelse (c, t, e_) ->
    deeper c;
    deeper t;
    Option.iter deeper e_
  | Texp_match (scrut, cases, _) ->
    deeper scrut;
    List.iter (fun (c : _ Typedtree.case) -> deeper c.c_rhs) cases
  | Texp_try (body, cases) ->
    deeper body;
    List.iter (fun (c : _ Typedtree.case) -> deeper c.c_rhs) cases
  | Texp_while (c, body) ->
    deeper c;
    deeper body
  | Texp_for (_, _, lo, hi, _, body) ->
    deeper lo;
    deeper hi;
    deeper body
  | Texp_setfield (a, _, _, b) ->
    deeper a;
    deeper b
  | Texp_field (a, _, _) -> deeper a
  | Texp_construct (_, _, es) ->
    (* [Some k] at a return site is tolerated: it allocates once per
       call, not per iteration, and option results are the module
       convention.  Arguments are still scanned. *)
    List.iter deeper es
  | Texp_open (_, body) -> deeper body
  | _ -> ()

(* ================================================================== *)
(* R3: no boxing in [@slc.hot] functions *)

(* The annotated binding's outer [fun] parameters are the function's
   own arguments, not allocations — unwrap them before scanning.  An
   optional argument with a default ([?(tol = 1e-9)]) desugars to a
   compiler-generated [let tol = match *opt* with …] between two
   parameter functions; those wrappers are unwrapped too (the default
   expressions themselves are not scanned — a documented blind spot,
   they are constants throughout the codebase). *)
let is_opt_default_binding (vb : Typedtree.value_binding) =
  match vb.vb_expr.exp_desc with
  | Texp_match (scrut, _, _) -> (
    match scrut.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> Ident.name id = "*opt*"
    | _ -> false)
  | _ -> false

let rec r3_unwrap_params (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> r3_unwrap_params c.c_rhs
  | Texp_let (Nonrecursive, [ vb ], body) when is_opt_default_binding vb ->
    r3_unwrap_params body
  | _ -> e

let check_r3 ctx (str : Typedtree.structure) =
  let default = Tast_iterator.default_iterator in
  let value_binding sub (vb : Typedtree.value_binding) =
    if has_attr "slc.hot" vb.vb_attributes then begin
      let fname =
        match vb.vb_pat.pat_desc with
        | Tpat_var (id, _) -> Ident.name id
        | _ -> "<pattern>"
      in
      let flag loc what =
        report ctx R3 loc
          (Printf.sprintf "[@slc.hot] %s: %s allocates on the hot path" fname
             what)
      in
      alloc_scan ~flag (r3_unwrap_params vb.vb_expr)
    end;
    default.value_binding sub vb
  in
  let it = { default with value_binding } in
  it.structure it str

(* ================================================================== *)
(* R4: mutate-then-restore must use Fun.protect *)

(* Pattern matched:

     let saved = x.f          (or  let saved = !r)
     …
     x.f <- saved             (or  r := saved)

   where the restore write is NOT syntactically inside an argument of a
   [Fun.protect] application.  The restore-by-name link makes this
   precise enough to run repo-wide: saves that are never written back
   (plain reads) and restores already routed through Fun.protect do not
   fire. *)

(* What location the save read from: a mutable record field (matched by
   label name on restore) or a ref cell (matched by the ref's own ident
   when it is a plain variable).  Linking the restore back to the same
   location is what keeps "read a mutable field, later store that value
   somewhere else" from firing. *)
type r4_source = Src_field of string | Src_ref of Ident.t | Src_ref_opaque

let r4_source_of (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_field (_, _, lbl) when lbl.lbl_mut = Mutable -> Some (Src_field lbl.lbl_name)
  | Texp_apply (head, [ (_, Some cell) ]) -> (
    match expr_head_name head with
    | Some "!" -> (
      match cell.exp_desc with
      | Texp_ident (Path.Pident rid, _, _) -> Some (Src_ref rid)
      | _ -> Some Src_ref_opaque)
    | _ -> None)
  | _ -> None

let is_ident id (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident rid, _, _) -> Ident.same rid id
  | _ -> false

let restore_of_ident ~src id (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_setfield (_, _, lbl, rhs) -> (
    match src with
    | Src_field name -> lbl.lbl_name = name && is_ident id rhs
    | Src_ref _ | Src_ref_opaque -> false)
  | Texp_apply (head, [ (_, Some cell); (_, Some rhs) ]) -> (
    match (expr_head_name head, src) with
    | Some ":=", Src_ref rid -> is_ident rid cell && is_ident id rhs
    | Some ":=", Src_ref_opaque -> is_ident id rhs
    | _ -> false)
  | _ -> false

(* Does [e] contain a restore of [id] outside any Fun.protect call? *)
let unprotected_restore ~src id (e : Typedtree.expression) =
  let found = ref false in
  let protect_depth = ref 0 in
  let default = Tast_iterator.default_iterator in
  let expr sub (x : Typedtree.expression) =
    let entering_protect =
      match x.exp_desc with
      | Texp_apply (head, _) -> (
        match expr_head_name head with
        | Some name -> name_is [ "Fun.protect"; "protect" ] name
        | None -> false)
      | _ -> false
    in
    if entering_protect then incr protect_depth;
    if !protect_depth = 0 && restore_of_ident ~src id x then found := true;
    default.expr sub x;
    if entering_protect then decr protect_depth
  in
  let it = { default with expr } in
  it.expr it e;
  !found

let check_r4 ctx (str : Typedtree.structure) =
  let annot_depth = ref 0 in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_let (_, [ vb ], body) when !annot_depth = 0 -> (
      match (vb.vb_pat.pat_desc, r4_source_of vb.vb_expr) with
      | Tpat_var (id, _), Some src ->
        if unprotected_restore ~src id body then
          report ctx R4 vb.vb_loc
            (Printf.sprintf
               "save/restore of mutable state through [%s] without \
                Fun.protect — an exception between save and restore \
                leaks the mutation (annotate [@slc.exn_safe \"reason\"] \
                if that is intended)"
               (Ident.name id))
      | _ -> ())
    | _ -> ());
    let annotated = has_attr "slc.exn_safe" e.exp_attributes in
    if annotated then incr annot_depth;
    default.expr sub e;
    if annotated then decr annot_depth
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let annotated = has_attr "slc.exn_safe" vb.vb_attributes in
    if annotated then incr annot_depth;
    default.value_binding sub vb;
    if annotated then decr annot_depth
  in
  let it = { default with expr; value_binding } in
  it.structure it str

(* ================================================================== *)
(* Call graph.

   R5–R7 need to know, for every toplevel (or nested-module-level)
   binding in the scanned units, which other bindings its body can
   call.  The graph is resolved from saved [Texp_apply] heads and
   by-name references:

     - [Pident] heads resolve through a per-unit table of the unit's
       own bindings (keyed by the ident's unique stamp, so shadowing
       is exact);
     - [Pdot] heads are canonicalized — dune's wrapped-library name
       mangling ([Slc_cell__Harness] / [Slc_cell.Harness]) is undone
       by taking the part after the last "__" of each path component
       and dropping leading wrapper components — and looked up in a
       global name table, first as written ("Harness.simulate"), then
       qualified by the calling unit ("Parallel.Pool.run" for a local
       submodule call written [Pool.run]).

   Documented conservative approximations:

     - higher-order calls: a function VALUE passed as an argument is
       recorded as a by-name reference (followed by R5/R7, which care
       about reachability) but calls through an opaque parameter
       ([f x] where [f] is a parameter) are invisible — the graph has
       no edge for them;
     - functor bodies are opaque: bindings under [Tmod_functor] (and
       instances of [Module.Make]) are neither collected nor resolved;
     - method-style calls through record fields ([oracle.query x]) are
       invisible for the same reason as opaque parameters;
     - acquisitions performed inside a closure a function builds are
       attributed to the function that builds the closure (an
       over-approximation that keeps factory modules like
       [Oracle.memo_by_arc] visible to R6). *)

type lockid =
  | Lglobal of string  (* canonical def name of a Mutex.create binding *)
  | Lfield of string  (* "Type.label" for a mutex stored in a record *)
  | Lopaque of string  (* unresolvable lock expr, one class per def *)

let lock_label = function Lglobal s | Lfield s | Lopaque s -> s

type def = {
  d_name : string;  (* module-qualified, e.g. "Parallel.Pool.run" *)
  d_unit_mod : string;  (* canonical unit module, e.g. "Parallel" *)
  d_src : string;
  d_loc : Location.t;
  d_attrs : Parsetree.attributes;
  d_body : Typedtree.expression;
  d_is_fun : bool;
  d_is_mutex : bool;
  mutable d_calls : call list;
  (* acquired lock, acquire site, locks held at the acquire *)
  mutable d_acquires : (lockid * Location.t * (lockid * Location.t) list) list;
}

and call = {
  c_raw : string;  (* canonical head name as written *)
  c_def : def option;  (* resolved target, when it is ours *)
  c_loc : Location.t;
  c_head : bool;  (* head position (false: by-name reference) *)
  c_raise : bool;  (* under a raise-like head: failure path only *)
  c_held : (lockid * Location.t) list;  (* locks held at the site *)
}

type unit_t = {
  u_src : string;
  u_mod : string;  (* canonical module name *)
  u_lib_scope : bool;
  u_str : Typedtree.structure;
  u_idents : (string, def) Hashtbl.t;  (* Ident.unique_name -> def *)
  mutable u_defs : def list;  (* reverse collection order *)
}

type universe = {
  units : unit_t list;
  defs : (string, def) Hashtbl.t;  (* canonical name -> def *)
  wrappers : (string, unit) Hashtbl.t;  (* dune wrapper module names *)
  mutable ufindings : finding list;
}

let ureport univ rule src (loc : Location.t) message =
  univ.ufindings <-
    {
      rule;
      file = src;
      line = loc.loc_start.pos_lnum;
      col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
      message;
    }
    :: univ.ufindings

(* "Slc_cell__Harness" -> "Harness"; names without "__" are unchanged. *)
let after_dunder s =
  let n = String.length s in
  let rec find i best =
    if i + 1 >= n then best
    else if s.[i] = '_' && s.[i + 1] = '_' then find (i + 1) (Some (i + 2))
    else find (i + 1) best
  in
  match find 0 None with
  | Some j when j < n -> String.sub s j (n - j)
  | _ -> s

(* Canonical dotted name: per-component wrapped-name demangling, then
   leading wrapper components dropped ("Slc_cell.Harness.simulate" and
   "Slc_cell__Harness.simulate" both become "Harness.simulate"). *)
let canonical_name univ name =
  let comps = String.split_on_char '.' name in
  let comps =
    List.map
      (fun c ->
        let c =
          if c <> "" && c.[String.length c - 1] = '!' then
            String.sub c 0 (String.length c - 1)
          else c
        in
        after_dunder c)
      comps
  in
  let rec drop = function
    | c :: (_ :: _ as rest) when Hashtbl.mem univ.wrappers c -> drop rest
    | l -> l
  in
  String.concat "." (drop comps)

let is_identifier_head name =
  name <> ""
  && (match name.[0] with 'A' .. 'Z' | 'a' .. 'z' | '_' -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Pass A: def collection.  Walks structure items, recursing through
   named modules, recursive modules, includes and module constraints;
   functor bodies are skipped (documented above). *)

let rec collect_defs univ u prefix (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) ->
              let name = String.concat "." (prefix @ [ Ident.name id ]) in
              let is_fun =
                match vb.vb_expr.exp_desc with
                | Texp_function _ -> true
                | _ -> false
              in
              let is_mutex =
                match creation_head vb.vb_expr with
                | Some h -> normalize_path_name h = "Mutex.create"
                | None -> false
              in
              let d =
                {
                  d_name = name;
                  d_unit_mod = u.u_mod;
                  d_src = u.u_src;
                  d_loc = vb.vb_loc;
                  d_attrs = vb.vb_attributes;
                  d_body = vb.vb_expr;
                  d_is_fun = is_fun;
                  d_is_mutex = is_mutex;
                  d_calls = [];
                  d_acquires = [];
                }
              in
              Hashtbl.replace univ.defs name d;
              Hashtbl.replace u.u_idents (Ident.unique_name id) d;
              u.u_defs <- d :: u.u_defs
            | _ -> ())
          vbs
      | Tstr_module mb -> (
        match mb.mb_id with
        | Some id ->
          collect_defs_module univ u (prefix @ [ Ident.name id ]) mb.mb_expr
        | None -> ())
      | Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) ->
            match mb.mb_id with
            | Some id ->
              collect_defs_module univ u (prefix @ [ Ident.name id ]) mb.mb_expr
            | None -> ())
          mbs
      | Tstr_include incl -> collect_defs_module univ u prefix incl.incl_mod
      | _ -> ())
    str.str_items

and collect_defs_module univ u prefix (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> collect_defs univ u prefix str
  | Tmod_constraint (me, _, _, _) -> collect_defs_module univ u prefix me
  | _ -> () (* functors, applications, aliases: opaque *)

(* ------------------------------------------------------------------ *)
(* Pass B: body walk.  Threads the set of locks held through the
   evaluation order, recording every call with a held-set snapshot and
   every Mutex acquisition with its held-at-acquire set. *)

let resolve_path univ u p =
  match p with
  | Path.Pident id -> Hashtbl.find_opt u.u_idents (Ident.unique_name id)
  | _ -> (
    let c = canonical_name univ (Path.name p) in
    match Hashtbl.find_opt univ.defs c with
    | Some d -> Some d
    | None -> Hashtbl.find_opt univ.defs (u.u_mod ^ "." ^ c))

let walk_def univ u (def : def) =
  let held : (lockid * Location.t) list ref = ref [] in
  let raise_depth = ref 0 in
  (* let-bound local mutexes, Ident.unique_name -> lock class *)
  let locals : (string, lockid) Hashtbl.t = Hashtbl.create 4 in
  let lockid_of (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
      match Hashtbl.find_opt locals (Ident.unique_name id) with
      | Some l -> l
      | None -> (
        match Hashtbl.find_opt u.u_idents (Ident.unique_name id) with
        | Some d when d.d_is_mutex -> Lglobal d.d_name
        | _ -> Lopaque (def.d_name ^ "#" ^ Ident.name id)))
    | Texp_ident (p, _, _) -> (
      match resolve_path univ u p with
      | Some d when d.d_is_mutex -> Lglobal d.d_name
      | _ -> Lopaque (def.d_name ^ "#" ^ canonical_name univ (Path.name p)))
    | Texp_field (_, _, lbl) -> (
      match Types.get_desc lbl.lbl_res with
      | Tconstr (p, _, _) ->
        let tn = canonical_name univ (Path.name p) in
        let tn = if String.contains tn '.' then tn else u.u_mod ^ "." ^ tn in
        Lfield (tn ^ "." ^ lbl.lbl_name)
      | _ -> Lopaque (def.d_name ^ "#<field " ^ lbl.lbl_name ^ ">"))
    | _ -> Lopaque (def.d_name ^ "#<expr>")
  in
  let acquire lock loc =
    def.d_acquires <- (lock, loc, !held) :: def.d_acquires;
    if not (List.exists (fun (l, _) -> l = lock) !held) then
      held := (lock, loc) :: !held
  in
  let release lock = held := List.filter (fun (l, _) -> l <> lock) !held in
  let record ~head ~loc raw resolved =
    def.d_calls <-
      {
        c_raw = raw;
        c_def = resolved;
        c_loc = loc;
        c_head = head;
        c_raise = !raise_depth > 0;
        c_held = !held;
      }
      :: def.d_calls
  in
  let rec w (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> (
      (* By-name reference to one of our functions: an R5/R7 edge. *)
      match resolve_path univ u p with
      | Some d when d.d_is_fun ->
        record ~head:false ~loc:e.exp_loc
          (canonical_name univ (Path.name p))
          (Some d)
      | _ -> ())
    | Texp_apply (head, args) -> apply e head args
    | Texp_function { cases; _ } ->
      (* The closure runs later, not under the locks held here; its
         calls and acquisitions still belong to this def (see the
         factory approximation above). *)
      let saved = !held in
      held := [];
      List.iter
        (fun (c : _ Typedtree.case) ->
          Option.iter w c.c_guard;
          w c.c_rhs)
        cases;
      held := saved
    | Texp_let (_, vbs, body) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          (match (vb.vb_pat.pat_desc, creation_head vb.vb_expr) with
          | Tpat_var (id, _), Some h
            when normalize_path_name h = "Mutex.create" ->
            Hashtbl.replace locals (Ident.unique_name id)
              (Lglobal (def.d_name ^ "." ^ Ident.name id))
          | _ -> ());
          w vb.vb_expr)
        vbs;
      w body
    | Texp_ifthenelse (c, t, e_) ->
      w c;
      branch ((fun () -> w t) :: (match e_ with Some x -> [ (fun () -> w x) ] | None -> [ (fun () -> ()) ]))
    | Texp_match (scrut, cases, _) ->
      w scrut;
      branch
        (List.map
           (fun (c : _ Typedtree.case) () ->
             Option.iter w c.c_guard;
             w c.c_rhs)
           cases)
    | Texp_try (body, cases) ->
      branch
        ((fun () -> w body)
        :: List.map
             (fun (c : _ Typedtree.case) () ->
               Option.iter w c.c_guard;
               w c.c_rhs)
             cases)
    | Texp_sequence (a, b) ->
      w a;
      w b
    | Texp_open (_, body) -> w body
    | _ -> children e
  and children e =
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _ ce -> w ce);
      }
    in
    Tast_iterator.default_iterator.expr it e
  and branch arms =
    (* Each arm starts from the pre-branch held set; the post-branch
       set is the union of the arm exits (conservative for R6). *)
    let h0 = !held in
    let exits =
      List.map
        (fun arm ->
          held := h0;
          arm ();
          !held)
        arms
    in
    held :=
      List.fold_left
        (fun acc ex ->
          List.fold_left
            (fun acc (l, loc) ->
              if List.exists (fun (l', _) -> l' = l) acc then acc
              else (l, loc) :: acc)
            acc ex)
        [] exits
  and apply e head args =
    let raw =
      match head.exp_desc with
      | Texp_ident (p, _, _) -> Some (p, canonical_name univ (Path.name p))
      | _ -> None
    in
    match raw with
    | Some (_, "Mutex.lock") ->
      List.iter (fun (_, a) -> Option.iter w a) args;
      (match args with
      | [ (_, Some lk) ] -> acquire (lockid_of lk) e.exp_loc
      | _ -> ())
    | Some (_, "Mutex.unlock") -> (
      match args with
      | [ (_, Some lk) ] -> release (lockid_of lk)
      | _ -> ())
    | Some (_, "Mutex.protect") -> (
      (* Mutex.protect m (fun () -> body): body runs under m. *)
      match args with
      | [ (_, Some lk); (_, Some thunk) ] -> (
        let lock = lockid_of lk in
        acquire lock e.exp_loc;
        (match thunk.exp_desc with
        | Texp_function { cases = [ c ]; _ } -> w c.c_rhs
        | _ -> w thunk);
        release lock)
      | _ -> List.iter (fun (_, a) -> Option.iter w a) args)
    | Some (_, name) when name_is [ "Fun.protect"; "protect" ] name ->
      (* The thunk runs immediately, under the current held set — walk
         literal fun arguments inline instead of as fresh closures. *)
      List.iter
        (fun (_, a) ->
          Option.iter
            (fun (a : Typedtree.expression) ->
              match a.exp_desc with
              | Texp_function { cases = [ c ]; _ } -> w c.c_rhs
              | _ -> w a)
            a)
        args
    | Some (_, name) when raise_like name ->
      incr raise_depth;
      List.iter (fun (_, a) -> Option.iter w a) args;
      decr raise_depth
    | Some (p, name) ->
      if is_identifier_head name then
        record ~head:true ~loc:e.exp_loc name (resolve_path univ u p);
      List.iter (fun (_, a) -> Option.iter w a) args
    | None ->
      w head;
      List.iter (fun (_, a) -> Option.iter w a) args
  in
  w def.d_body;
  def.d_calls <- List.rev def.d_calls;
  def.d_acquires <- List.rev def.d_acquires

(* ------------------------------------------------------------------ *)
(* Universe construction *)

let build_universe (loaded : (string * string * bool * Typedtree.structure) list)
    =
  (* loaded: (src, cmt_modname, lib_scope, structure) *)
  let wrappers = Hashtbl.create 16 in
  Hashtbl.replace wrappers "Stdlib" ();
  List.iter
    (fun (_, modname, _, _) ->
      (* "Slc_cell__Harness" declares wrapper "Slc_cell";
         "Dune__exe__Slc_cli" declares "Dune__exe". *)
      let n = String.length modname in
      let rec last i best =
        if i + 1 >= n then best
        else if modname.[i] = '_' && modname.[i + 1] = '_' then last (i + 1) i
        else last (i + 1) best
      in
      match last 0 (-1) with
      | -1 -> ()
      | i -> Hashtbl.replace wrappers (String.sub modname 0 i) ())
    loaded;
  let univ = { units = []; defs = Hashtbl.create 256; wrappers; ufindings = [] } in
  let units =
    List.map
      (fun (src, modname, lib_scope, str) ->
        {
          u_src = src;
          u_mod = after_dunder modname;
          u_lib_scope = lib_scope;
          u_str = str;
          u_idents = Hashtbl.create 64;
          u_defs = [];
        })
      loaded
  in
  let univ = { univ with units } in
  List.iter (fun u -> collect_defs univ u [ u.u_mod ] u.u_str) units;
  List.iter
    (fun u ->
      u.u_defs <- List.rev u.u_defs;
      List.iter (walk_def univ u) u.u_defs)
    units;
  univ

let all_defs univ = List.concat_map (fun u -> u.u_defs) univ.units

(* Sorted, deduplicated dump of the resolved graph, for --dump-callgraph. *)
let callgraph_lines univ =
  let lines =
    List.concat_map
      (fun d ->
        List.map
          (fun c ->
            let target =
              match c.c_def with
              | Some t -> t.d_name
              | None -> c.c_raw ^ " (external)"
            in
            Printf.sprintf "%s -> %s%s" d.d_name target
              (if c.c_head then "" else " [by-name]"))
          d.d_calls)
      (all_defs univ)
  in
  List.sort_uniq String.compare lines

(* ================================================================== *)
(* R5: transitive hot-path allocation.

   BFS from every [@slc.hot] binding over resolved, non-failure-path
   calls to FUNCTION defs (value defs run at module init, not on the
   hot path).  A callee that is itself [@slc.hot] is traversed but not
   scanned (R3 already lints it directly); [@slc.alloc_ok "reason"]
   cuts the walk; everything else is scanned with the R3 allocation
   scanner and reported with the offending call chain. *)

let check_r5 univ =
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let roots =
    List.filter (fun d -> has_attr "slc.hot" d.d_attrs) (all_defs univ)
    |> List.sort (fun a b -> String.compare a.d_name b.d_name)
  in
  List.iter (fun d -> Hashtbl.replace visited d.d_name ()) roots;
  let queue = Queue.create () in
  List.iter (fun d -> Queue.add (d, d.d_name) queue) roots;
  while not (Queue.is_empty queue) do
    let def, chain = Queue.pop queue in
    List.iter
      (fun c ->
        if not c.c_raise then
          match c.c_def with
          | Some callee
            when callee.d_is_fun && not (Hashtbl.mem visited callee.d_name) ->
            Hashtbl.replace visited callee.d_name ();
            let chain' = chain ^ " -> " ^ callee.d_name in
            if has_attr "slc.hot" callee.d_attrs then
              Queue.add (callee, chain') queue
            else if has_attr "slc.alloc_ok" callee.d_attrs then
              () (* reasoned escape (hygiene pass flags missing reasons) *)
            else begin
              let flag loc what =
                ureport univ R5 callee.d_src loc
                  (Printf.sprintf
                     "%s reached from [@slc.hot] via %s: %s allocates on \
                      the hot path — annotate the callee [@slc.hot] to \
                      lint it directly or [@slc.alloc_ok \"reason\"] to \
                      escape"
                     callee.d_name chain' what)
              in
              alloc_scan ~flag (r3_unwrap_params callee.d_body);
              Queue.add (callee, chain') queue
            end
          | _ -> ())
      def.d_calls
  done

(* ================================================================== *)
(* R6: lock order.

   Two analyses over the held-while-acquiring data collected by the
   body walk:

     1. a lock held across a blocking call — pool submission
        ([Parallel.map*], [Pool.run]) or simulation
        ([Harness.simulate*]) — directly or through a resolved call
        chain that reaches one;

     2. cycles in the lock-order graph, whose edges are "lock A held
        while acquiring lock B", both directly and interprocedurally
        (calling a function whose transitive acquisitions include B
        while holding A).

   Only head-position calls contribute (a function merely passed by
   name, e.g. [at_exit shutdown], is not called here — a documented
   blind spot shared with the higher-order approximation above). *)

let r6_blocking_names =
  [
    "Parallel.map";
    "Parallel.mapi";
    "Parallel.try_map";
    "Parallel.map_list";
    "Pool.run";
    "Parallel.Pool.run";
  ]

let r6_is_blocking_name n =
  name_is r6_blocking_names n || has_prefix "Harness.simulate" n

let r6_call_blocks c =
  r6_is_blocking_name c.c_raw
  || match c.c_def with Some d -> r6_is_blocking_name d.d_name | None -> false

let check_r6 univ =
  let defs = all_defs univ in
  (* Transitive acquisitions, memoized per def (cycle-safe: back edges
     see the partial empty entry). *)
  let tacq_memo : (string, lockid list) Hashtbl.t = Hashtbl.create 64 in
  let rec tacq d =
    match Hashtbl.find_opt tacq_memo d.d_name with
    | Some l -> l
    | None ->
      Hashtbl.add tacq_memo d.d_name [];
      let own = List.map (fun (l, _, _) -> l) d.d_acquires in
      let called =
        List.concat_map
          (fun c ->
            if c.c_head && not c.c_raise then
              match c.c_def with Some t -> tacq t | None -> []
            else [])
          d.d_calls
      in
      let all = List.sort_uniq compare (own @ called) in
      Hashtbl.replace tacq_memo d.d_name all;
      all
  in
  (* Shortest witness chain from a def to a blocking call, memoized. *)
  let wit_memo : (string, string list option) Hashtbl.t = Hashtbl.create 64 in
  let rec wit d =
    match Hashtbl.find_opt wit_memo d.d_name with
    | Some w -> w
    | None ->
      Hashtbl.add wit_memo d.d_name None;
      let direct =
        List.find_map
          (fun c ->
            if c.c_head && not c.c_raise && r6_call_blocks c then
              Some [ c.c_raw ]
            else None)
          d.d_calls
      in
      let w =
        match direct with
        | Some _ -> direct
        | None ->
          List.find_map
            (fun c ->
              if c.c_head && not c.c_raise then
                match c.c_def with
                | Some t -> (
                  match wit t with
                  | Some rest -> Some (t.d_name :: rest)
                  | None -> None)
                | None -> None
              else None)
            d.d_calls
      in
      Hashtbl.replace wit_memo d.d_name w;
      w
  in
  let suppressed d = has_attr "slc.lock_ok" d.d_attrs in
  (* --- locks held across blocking calls ------------------------- *)
  List.iter
    (fun d ->
      if not (suppressed d) then
        List.iter
          (fun c ->
            if (not c.c_raise) && c.c_held <> [] then begin
              let held_names =
                String.concat ", "
                  (List.rev_map (fun (l, _) -> lock_label l) c.c_held)
              in
              if r6_call_blocks c then
                ureport univ R6 d.d_src c.c_loc
                  (Printf.sprintf
                     "lock [%s] held across blocking call [%s] — pool \
                      submission and simulation must never run under a \
                      lock (annotate the function [@slc.lock_ok \
                      \"reason\"] if intended)"
                     held_names c.c_raw)
              else if c.c_head then
                match c.c_def with
                | Some t -> (
                  match wit t with
                  | Some chain ->
                    ureport univ R6 d.d_src c.c_loc
                      (Printf.sprintf
                         "lock [%s] held across call to [%s], which \
                          reaches a blocking call via %s"
                         held_names t.d_name
                         (String.concat " -> " (t.d_name :: chain)))
                  | None -> ())
                | None -> ()
            end)
          d.d_calls)
    defs;
  (* --- lock-order cycle detection -------------------------------- *)
  let edges : (lockid * lockid * Location.t * def) list ref = ref [] in
  let add_edge a b loc d = edges := (a, b, loc, d) :: !edges in
  List.iter
    (fun d ->
      if not (suppressed d) then begin
        List.iter
          (fun (lock, loc, held) ->
            List.iter (fun (h, _) -> add_edge h lock loc d) held)
          d.d_acquires;
        List.iter
          (fun c ->
            if c.c_head && (not c.c_raise) && c.c_held <> [] then
              match c.c_def with
              | Some t ->
                List.iter
                  (fun l ->
                    List.iter (fun (h, _) -> add_edge h l c.c_loc d) c.c_held)
                  (tacq t)
              | None -> ())
          d.d_calls
      end)
    defs;
  let edges =
    List.sort_uniq
      (fun (a, b, l1, _) (a2, b2, l2, _) ->
        compare
          (a, b, l1.Location.loc_start.pos_fname, l1.loc_start.pos_lnum)
          (a2, b2, l2.Location.loc_start.pos_fname, l2.loc_start.pos_lnum))
      !edges
  in
  (* Tarjan SCC over the lock nodes. *)
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun (a, b, _, _) ->
      Hashtbl.replace nodes a ();
      Hashtbl.replace nodes b ())
    edges;
  let succs l =
    List.filter_map (fun (a, b, _, _) -> if a = l then Some b else None) edges
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let comp_of = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let ncomp = ref 0 in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let c = !ncomp in
      incr ncomp;
      let rec popc () =
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          Hashtbl.replace comp_of w c;
          if w <> v then popc ()
        | [] -> ()
      in
      popc ()
    end
  in
  Hashtbl.iter (fun v () -> if not (Hashtbl.mem index v) then strong v) nodes;
  let comp_size = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ c ->
      Hashtbl.replace comp_size c
        (1 + Option.value ~default:0 (Hashtbl.find_opt comp_size c)))
    comp_of;
  List.iter
    (fun (a, b, loc, d) ->
      let ca = Hashtbl.find_opt comp_of a and cb = Hashtbl.find_opt comp_of b in
      let cyclic =
        a = b
        || (ca = cb
           && Option.fold ~none:false
                ~some:(fun c ->
                  Option.value ~default:0 (Hashtbl.find_opt comp_size c) > 1)
                ca)
      in
      if cyclic then begin
        let members =
          match ca with
          | Some c ->
            Hashtbl.fold
              (fun l c' acc -> if c' = c then lock_label l :: acc else acc)
              comp_of []
            |> List.sort String.compare
          | None -> [ lock_label a ]
        in
        ureport univ R6 d.d_src loc
          (Printf.sprintf
             "lock-order cycle: acquiring [%s] while holding [%s] — \
              cycle through locks {%s} can deadlock (pick one global \
              order or annotate [@slc.lock_ok \"reason\"])"
             (lock_label b) (lock_label a)
             (String.concat ", " members))
      end)
    edges

(* ================================================================== *)
(* R7: determinism of the bitwise-contract result paths.

   BFS from the contract entry points over resolved calls AND by-name
   references (a function handed to [List.map] still runs on the
   result path); [@slc.det_ok "reason"] on a def cuts its subtree, and
   the same annotation on an expression (or inner let) suppresses just
   that subtree.  Each reachable def's body is scanned for Hashtbl
   iteration, wall clocks / self-seeded RNG, and float physical
   equality. *)

let r7_builtin_roots =
  [ "Statistical.extract_population"; "Sdag.forward_compiled"; "Belief.propagate" ]

let r7_is_root d =
  name_is r7_builtin_roots d.d_name
  || has_prefix "Store." d.d_name
  || has_attr "slc.det_root" d.d_attrs

let r7_clock_names = [ "Random.self_init"; "Unix.gettimeofday"; "Sys.time" ]

let exp_is_float (e : Typedtree.expression) =
  match Types.get_desc e.exp_type with
  | Tconstr (p, [], _) -> Path.name p = "float"
  | _ -> false

let det_scan univ (def : def) ~chain =
  let suppress = ref 0 in
  let raise_d = ref 0 in
  let flag loc what =
    ureport univ R7 def.d_src loc
      (Printf.sprintf
         "%s in %s — reachable from bitwise-contract root via %s \
          (annotate [@slc.det_ok \"reason\"] if this cannot affect \
          results)"
         what def.d_name chain)
  in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    let annot = find_annot "slc.det_ok" e.exp_attributes in
    let sup = annot <> No_annot in
    if sup then incr suppress;
    let raising =
      match e.exp_desc with
      | Texp_apply (head, _) -> (
        match head.exp_desc with
        | Texp_ident (p, _, _) ->
          raise_like (canonical_name univ (Path.name p))
        | _ -> false)
      | _ -> false
    in
    if raising then incr raise_d;
    (if !suppress = 0 && !raise_d = 0 then
       match e.exp_desc with
       | Texp_apply (head, args) -> (
         match head.exp_desc with
         | Texp_ident (p, _, _) -> (
           match canonical_name univ (Path.name p) with
           | ("Hashtbl.fold" | "Hashtbl.iter") as n ->
             flag e.exp_loc
               (Printf.sprintf "iteration-order-dependent [%s]" n)
           | n when name_is r7_clock_names n ->
             flag e.exp_loc (Printf.sprintf "nondeterministic [%s]" n)
           | ("==" | "!=") as op
             when List.exists
                    (fun (_, a) ->
                      match a with Some a -> exp_is_float a | None -> false)
                    args ->
             flag e.exp_loc
               (Printf.sprintf "physical equality [%s] on floats" op)
           | _ -> ())
         | _ -> ())
       | _ -> ());
    default.expr sub e;
    if raising then decr raise_d;
    if sup then decr suppress
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let sup = find_annot "slc.det_ok" vb.vb_attributes <> No_annot in
    if sup then incr suppress;
    default.value_binding sub vb;
    if sup then decr suppress
  in
  let it = { default with expr; value_binding } in
  it.expr it def.d_body

let check_r7 univ =
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let roots =
    List.filter r7_is_root (all_defs univ)
    |> List.sort (fun a b -> String.compare a.d_name b.d_name)
  in
  let queue = Queue.create () in
  List.iter
    (fun d ->
      if not (Hashtbl.mem visited d.d_name) then begin
        Hashtbl.replace visited d.d_name ();
        if has_attr "slc.det_ok" d.d_attrs then ()
        else begin
          det_scan univ d ~chain:d.d_name;
          Queue.add (d, d.d_name) queue
        end
      end)
    roots;
  while not (Queue.is_empty queue) do
    let def, chain = Queue.pop queue in
    List.iter
      (fun c ->
        if not c.c_raise then
          match c.c_def with
          | Some callee when not (Hashtbl.mem visited callee.d_name) ->
            Hashtbl.replace visited callee.d_name ();
            if has_attr "slc.det_ok" callee.d_attrs then ()
            else begin
              let chain' = chain ^ " -> " ^ callee.d_name in
              det_scan univ callee ~chain:chain';
              Queue.add (callee, chain') queue
            end
          | _ -> ())
      def.d_calls
  done

(* Annotation hygiene for the interprocedural escapes: a reason string
   is required wherever one is required for R1–R4. *)
let check_interproc_annotations univ =
  List.iter
    (fun d ->
      let need rule name =
        if find_annot name d.d_attrs = Unreasoned then
          ureport univ rule d.d_src d.d_loc
            (Printf.sprintf "[@%s] annotation needs a reason string" name)
      in
      need R5 "slc.alloc_ok";
      need R6 "slc.lock_ok";
      need R7 "slc.det_ok")
    (all_defs univ)

(* ================================================================== *)
(* Driver *)

let in_lib_scope src =
  has_prefix "lib/" src && not (has_prefix "lib/num/" src)

(* [treat_as_lib] forces R1 scope onto sources OUTSIDE lib/ (bin/,
   tools/, fixture modules); it never drags lib/num into R1 — that
   exclusion is deliberate and permanent. *)
let effective_lib_scope ~treat_as_lib src =
  in_lib_scope src || (treat_as_lib && not (has_prefix "lib/" src))

let lint_structure ?(rules = all_rules) ~src ~lib_scope
    (str : Typedtree.structure) =
  let ctx = { src; lib_scope; findings = [] } in
  let on r = List.mem r rules in
  if on R1 then check_r1 ctx str;
  if on R2 then begin
    check_r2_structure ctx str;
    check_r2_escapes ctx str
  end;
  if on R3 then check_r3 ctx str;
  if on R4 then check_r4 ctx str;
  List.sort compare_finding ctx.findings

let interproc_findings ?(rules = all_rules) univ =
  let on r = List.mem r rules in
  if on R5 then check_r5 univ;
  if on R6 then check_r6 univ;
  if on R7 then check_r7 univ;
  if on R5 || on R6 || on R7 then check_interproc_annotations univ;
  let keep f = List.mem f.rule rules in
  List.filter keep univ.ufindings

let read_unit path =
  let cmt = Cmt_format.read_cmt path in
  let src =
    match cmt.cmt_sourcefile with Some s -> s | None -> Filename.basename path
  in
  match cmt.cmt_annots with
  | Cmt_format.Implementation str -> Some (src, cmt.cmt_modname, str)
  | _ -> None

(* Lint one cmt file: R1–R4 per structure plus R5–R7 over a
   single-unit universe (calls into other units stay unresolved, which
   is the conservative treatment).  Returns [] for interfaces and
   partial implementations.  Used by the fixture tests and by direct
   .cmt arguments to the CLI. *)
let lint_cmt ?(treat_as_lib = false) ?(rules = all_rules) path =
  match read_unit path with
  | None -> []
  | Some (src, modname, str) ->
    let lib_scope = effective_lib_scope ~treat_as_lib src in
    let per_unit = lint_structure ~rules ~src ~lib_scope str in
    let univ = build_universe [ (src, modname, lib_scope, str) ] in
    let inter = interproc_findings ~rules univ in
    List.sort compare_finding (List.rev_append inter per_unit)

(* ------------------------------------------------------------------ *)
(* cmt discovery: walk _build/default for *.cmt whose recorded source
   file falls under one of the requested prefixes. *)

let rec walk dir acc =
  match Sys.readdir dir with
  | entries ->
    Array.fold_left
      (fun acc name ->
        let p = Filename.concat dir name in
        if Sys.is_directory p then walk p acc
        else if Filename.check_suffix name ".cmt" then p :: acc
        else acc)
      acc entries
  | exception Sys_error _ -> acc

let source_matches prefixes src =
  List.exists
    (fun p ->
      let p = if Filename.check_suffix p "/" then p else p ^ "/" in
      src = String.sub p 0 (String.length p - 1)
      || (String.length src >= String.length p && String.sub src 0 (String.length p) = p))
    prefixes

let load_tree ~build_root prefixes =
  (* Accept either a source checkout (scan its _build/default) or a
     position already inside the compiled tree (dune actions run in
     _build/default). *)
  let candidate = Filename.concat build_root (Filename.concat "_build" "default") in
  let root =
    if Sys.file_exists candidate && Sys.is_directory candidate then candidate
    else build_root
  in
  if not (Sys.file_exists root && Sys.is_directory root) then
    Error (Printf.sprintf "no build tree at %s (run `dune build @check` first)" root)
  else begin
    let cmts = walk root [] in
    let seen_src = Hashtbl.create 64 in
    let units =
      List.fold_left
        (fun acc cmt_path ->
          match read_unit cmt_path with
          | exception _ -> acc (* stale or foreign cmt: not ours to judge *)
          | None -> acc
          | Some (src, modname, str) ->
            if source_matches prefixes src && not (Hashtbl.mem seen_src src)
            then begin
              Hashtbl.add seen_src src ();
              (src, modname, str) :: acc
            end
            else acc)
        [] cmts
    in
    (* Deterministic unit order regardless of readdir order. *)
    Ok
      (List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) units)
  end

let lint_tree ~build_root ~treat_as_lib ?(rules = all_rules) prefixes =
  match load_tree ~build_root prefixes with
  | Error _ as e -> e
  | Ok units ->
    let per_unit =
      List.concat_map
        (fun (src, _, str) ->
          let lib_scope = effective_lib_scope ~treat_as_lib src in
          lint_structure ~rules ~src ~lib_scope str)
        units
    in
    let univ =
      build_universe
        (List.map
           (fun (src, modname, str) ->
             (src, modname, effective_lib_scope ~treat_as_lib src, str))
           units)
    in
    let inter = interproc_findings ~rules univ in
    Ok
      ( List.sort compare_finding (List.rev_append inter per_unit),
        List.length units )

(* Resolved call graph of a build tree (or of single cmts), one
   "caller -> callee" line per edge, for --dump-callgraph. *)
let callgraph_tree ~build_root prefixes =
  match load_tree ~build_root prefixes with
  | Error _ as e -> e
  | Ok units ->
    let univ =
      build_universe
        (List.map (fun (src, modname, str) -> (src, modname, true, str)) units)
    in
    Ok (callgraph_lines univ)

let callgraph_cmt path =
  match read_unit path with
  | None -> []
  | Some (src, modname, str) ->
    callgraph_lines (build_universe [ (src, modname, true, str) ])

(* ------------------------------------------------------------------ *)
(* Baseline: one finding per line, [rule|file|line|message].  Line
   numbers are part of the key on purpose — a baseline is a temporary
   debt ledger, and code motion around a suppressed finding should
   resurface it for a fresh look. *)

let finding_key f =
  Printf.sprintf "%s|%s|%d|%s" (rule_id f.rule) f.file f.line f.message

let load_baseline path =
  if not (Sys.file_exists path) then Ok []
  else begin
    match open_in path with
    | exception Sys_error e -> Error e
    | ic ->
      let keys = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then keys := line :: !keys
         done
       with End_of_file -> ());
      close_in ic;
      Ok (List.rev !keys)
  end

let save_baseline path findings =
  let oc = open_out path in
  output_string oc
    "# slc_lint baseline: known findings suppressed from CI.\n\
     # Regenerate with: slc_lint --update-baseline …  (keep this empty)\n";
  List.iter (fun f -> output_string oc (finding_key f ^ "\n")) findings;
  close_out oc

(* Baseline entries that no longer fire: either the debt was paid (the
   entry should be deleted) or the code moved (the finding should get a
   fresh look).  --forbid-stale turns these into a failure. *)
let stale_keys ~known findings =
  let live = List.map finding_key findings in
  List.filter (fun k -> not (List.mem k live)) known

let pp_finding oc f =
  Printf.fprintf oc "%s:%d:%d: [%s %s] %s\n" f.file f.line f.col (rule_id f.rule)
    (rule_name f.rule) f.message

(* ------------------------------------------------------------------ *)
(* JSON findings report (--json).  Hand-rolled: the linter links only
   compiler-libs, and the schema is four flat lists. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_finding f =
  Printf.sprintf
    "{\"rule\":\"%s\",\"name\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\
     \"message\":\"%s\"}"
    (rule_id f.rule) (rule_name f.rule) (json_escape f.file) f.line f.col
    (json_escape f.message)

let write_json ~files_scanned ~fresh ~baselined ~stale oc =
  let arr xs = "[" ^ String.concat "," xs ^ "]" in
  output_string oc
    (Printf.sprintf
       "{\"files_scanned\":%d,\"counts\":{\"fresh\":%d,\"baselined\":%d,\
        \"stale_baseline\":%d},\"fresh\":%s,\"baselined\":%s,\
        \"stale_baseline\":%s}\n"
       files_scanned (List.length fresh) (List.length baselined)
       (List.length stale)
       (arr (List.map json_of_finding fresh))
       (arr (List.map json_of_finding baselined))
       (arr (List.map (fun k -> "\"" ^ json_escape k ^ "\"") stale)))
