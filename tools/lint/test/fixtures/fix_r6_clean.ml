(* R6 clean fixture: one global lock order, blocking outside locks, and
   a reasoned escape. *)
module Parallel = struct
  let map f xs = Array.map f xs
end

let lock_a = Mutex.create ()

let lock_b = Mutex.create ()

let ab () =
  Mutex.lock lock_a;
  Mutex.lock lock_b;
  Mutex.unlock lock_b;
  Mutex.unlock lock_a

let ab_again () =
  Mutex.lock lock_a;
  Mutex.lock lock_b;
  Mutex.unlock lock_b;
  Mutex.unlock lock_a

let map_outside xs =
  Mutex.lock lock_a;
  Mutex.unlock lock_a;
  Parallel.map (fun x -> x + 1) xs

let[@slc.lock_ok "test-only helper: the pool is quiesced before this runs"] held_escaped xs =
  Mutex.lock lock_a;
  let r = Parallel.map (fun x -> x * 2) xs in
  Mutex.unlock lock_a;
  r
