(* R7 fixture: nondeterminism reachable from a determinism root. *)
let stamp () = Unix.gettimeofday ()

let close_enough (a : float) b = a == b

let sum_table tbl = Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.0

let unreachable tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let[@slc.det_root] entry tbl =
  let t = stamp () in
  let s = sum_table tbl in
  ignore (Sys.time ());
  close_enough t s
