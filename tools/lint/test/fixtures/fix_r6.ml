(* R6 fixture: lock-order cycle and locks held across blocking calls. *)
module Parallel = struct
  let map f xs = Array.map f xs
end

let lock_a = Mutex.create ()

let lock_b = Mutex.create ()

let ab () =
  Mutex.lock lock_a;
  Mutex.lock lock_b;
  Mutex.unlock lock_b;
  Mutex.unlock lock_a

let grab_a () =
  Mutex.lock lock_a;
  Mutex.unlock lock_a

let ba_indirect () =
  Mutex.lock lock_b;
  grab_a ();
  Mutex.unlock lock_b

let held_across_map xs =
  Mutex.lock lock_a;
  let r = Parallel.map (fun x -> x + 1) xs in
  Mutex.unlock lock_a;
  r

let submit xs = Parallel.map (fun x -> x * 2) xs

let held_across_indirect xs =
  Mutex.lock lock_b;
  let r = submit xs in
  Mutex.unlock lock_b;
  r
