(* R5 clean fixture: every reachable callee is allocation-free, hot, or escaped. *)
let leaf_ok x = x * 2

let[@slc.alloc_ok "builds the result pair once per call, not per iteration"] escaped x = (x, x)

let[@slc.hot] helper x = leaf_ok x

let[@slc.hot] hot_entry x = helper x + fst (escaped x)
