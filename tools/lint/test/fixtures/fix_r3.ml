(* R3 fixture: boxing constructs inside [@slc.hot] functions. *)

let[@slc.hot] pair x y = (x, y)

let[@slc.hot] closure xs = Array.iter (fun x -> ignore x) xs

let[@slc.hot] printer x = Printf.printf "%d\n" x

let[@slc.hot] clean acc n =
  let t = ref acc in
  for i = 1 to n do
    t := !t + i
  done;
  !t

let cold x = (x, x)
