(* R7 clean fixture: escapes at the definition and the expression level. *)
let[@slc.det_ok "wall clock feeds a log line only, never the result"] stamp () =
  Unix.gettimeofday ()

let sum_sorted tbl =
  (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  [@slc.det_ok "folded list is sorted before use, erasing table order"])
  |> List.sort compare
  |> List.fold_left (fun acc (_, v) -> acc +. v) 0.0

let[@slc.det_root] entry tbl =
  ignore (stamp ());
  sum_sorted tbl
