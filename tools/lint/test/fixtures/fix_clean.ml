(* Clean fixture: no rule should fire anywhere in this file. *)

exception Local_error of string

let checked x = if x < 0 then raise (Local_error "negative") else x

let shared_counter = Atomic.make 0

let with_saved (r : int ref) f =
  let saved = !r in
  r := saved + 1;
  Fun.protect ~finally:(fun () -> r := saved) f

let[@slc.hot] sum2 a b = a +. b
