(* R5 fixture: a hot entry calls through a helper into an allocating leaf. *)
let leaf_alloc x = (x, x)

let mid x = fst (leaf_alloc x)

let[@slc.alloc_ok "builds its pair once per call, amortized by the caller"] escaped x = (x, x)

let[@slc.hot] hot_callee x = x + 1

let[@slc.hot] hot_entry x = mid (hot_callee x) + snd (escaped x)
