(* R1 fixture: raw raises the error-taxonomy rule must flag. *)

let boom () = failwith "boom"

let check x = if x < 0 then invalid_arg "negative"

let legacy () = raise (Failure "legacy")

let excused () = (failwith "excused" [@slc.raw_exn "fixture: intentionally raw"])
