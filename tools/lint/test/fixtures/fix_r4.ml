(* R4 fixture: mutate-then-restore without Fun.protect. *)

type cell = { mutable value : int }

let unsafe_bump c f =
  let saved = c.value in
  c.value <- saved + 1;
  let r = f () in
  c.value <- saved;
  r

let unsafe_toggle flag f =
  let saved = !flag in
  flag := true;
  let r = f () in
  flag := saved;
  r

let safe_bump c f =
  let saved = c.value in
  c.value <- saved + 1;
  Fun.protect ~finally:(fun () -> c.value <- saved) f
