(* R2 fixture: unsynchronized toplevel mutable state. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 8

let counter = ref 0

type box = { mutable slot : int }

let shared = { slot = 0 }

let safe = Atomic.make 0

let[@slc.domain_safe "fixture: guarded elsewhere"] excused :
    (int, int) Hashtbl.t =
  Hashtbl.create 4

let per_call () = Hashtbl.create 16
