(* R2 fixture: unsynchronized toplevel mutable state. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 8

let counter = ref 0

type box = { mutable slot : int }

let shared = { slot = 0 }

let safe = Atomic.make 0

let[@slc.domain_safe "fixture: guarded elsewhere"] excused :
    (int, int) Hashtbl.t =
  Hashtbl.create 4

let per_call () = Hashtbl.create 16

(* Escaping-closure cases: per-call state is fine until a returned
   closure captures it — then every caller shares it. *)

let leaky_memo () =
  let cache = Hashtbl.create 8 in
  fun x -> Hashtbl.replace cache x x

let leaky_counter () =
  let n = ref 0 in
  fun () ->
    incr n;
    !n

let guarded_memo () =
  let cache = Hashtbl.create 8 in
  let lock = Mutex.create () in
  fun x ->
    Mutex.lock lock;
    Hashtbl.replace cache x x;
    Mutex.unlock lock

let excused_memo () =
  let[@slc.domain_safe "fixture: used from one domain"] cache =
    Hashtbl.create 8
  in
  fun x -> Hashtbl.mem cache x

let local_only x =
  let scratch = Hashtbl.create 8 in
  Hashtbl.replace scratch x x;
  Hashtbl.length scratch
