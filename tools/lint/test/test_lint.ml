(* Linter engine tests: each rule must fire on its fixture at exactly
   the expected (rule, line) set, and must stay silent on the clean
   fixture and on the fixtures' annotated escape hatches.

   The fixtures are compiled as a normal dune library next to this
   test, so their cmt files are guaranteed fresh: the test reads them
   from the library's .objs directory rather than shelling out to the
   slc_lint executable. *)

module Engine = Slc_lint_engine.Engine

let cmt name =
  Filename.concat "fixtures/.slc_lint_fixtures.objs/byte"
    ("slc_lint_fixtures__" ^ name ^ ".cmt")

let findings ?treat_as_lib name =
  Engine.lint_cmt ?treat_as_lib (cmt name)

let summarize fs =
  List.map (fun f -> (Engine.rule_id f.Engine.rule, f.Engine.line)) fs

let hits = Alcotest.(list (pair string int))

let check_fixture ?(treat_as_lib = true) name expected () =
  Alcotest.check hits name expected
    (summarize (findings ~treat_as_lib name))

let test_r1 =
  check_fixture "Fix_r1" [ ("R1", 3); ("R1", 5); ("R1", 7) ]

let test_r2 =
  check_fixture "Fix_r2"
    [ ("R2", 3); ("R2", 5); ("R2", 9); ("R2", 23); ("R2", 27) ]

let test_r3 =
  check_fixture "Fix_r3" [ ("R3", 3); ("R3", 5); ("R3", 7) ]

let test_r4 =
  check_fixture "Fix_r4" [ ("R4", 6); ("R4", 13) ]

let test_clean = check_fixture "Fix_clean" []

(* Without --treat-as-lib the fixtures are out of R1's lib/ scope, so
   only the scope-independent rules remain. *)
let test_r1_scope =
  check_fixture ~treat_as_lib:false "Fix_r1" []

let test_messages () =
  let fs = findings ~treat_as_lib:true "Fix_r1" in
  match fs with
  | f :: _ ->
    Alcotest.(check bool)
      "message names the construct and the escape hatch" true
      (let has needle =
         let rec search i =
           i + String.length needle <= String.length f.Engine.message
           && (String.sub f.Engine.message i (String.length needle) = needle
              || search (i + 1))
         in
         search 0
       in
       has "failwith" && has "slc.raw_exn")
  | [] -> Alcotest.fail "expected findings in Fix_r1"

let test_baseline_roundtrip () =
  let fs = findings ~treat_as_lib:true "Fix_r2" in
  let path = Filename.temp_file "slc_lint_test" ".baseline" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Engine.save_baseline path fs;
      match Engine.load_baseline path with
      | Error e -> Alcotest.fail e
      | Ok keys ->
        Alcotest.(check (list string))
          "baseline suppresses exactly the saved findings"
          (List.map Engine.finding_key fs)
          keys)

let () =
  Alcotest.run "slc_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 error-taxonomy" `Quick test_r1;
          Alcotest.test_case "R2 domain-safety" `Quick test_r2;
          Alcotest.test_case "R3 hot-path-alloc" `Quick test_r3;
          Alcotest.test_case "R4 exception-safety" `Quick test_r4;
          Alcotest.test_case "clean fixture is silent" `Quick test_clean;
          Alcotest.test_case "R1 scoped to lib/" `Quick test_r1_scope;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "diagnostic text" `Quick test_messages;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
        ] );
    ]
