(* Linter engine tests: each rule must fire on its fixture at exactly
   the expected (rule, line) set, and must stay silent on the clean
   fixture and on the fixtures' annotated escape hatches.

   The fixtures are compiled as a normal dune library next to this
   test, so their cmt files are guaranteed fresh: the test reads them
   from the library's .objs directory rather than shelling out to the
   slc_lint executable. *)

module Engine = Slc_lint_engine.Engine

let cmt name =
  Filename.concat "fixtures/.slc_lint_fixtures.objs/byte"
    ("slc_lint_fixtures__" ^ name ^ ".cmt")

let findings ?treat_as_lib name =
  Engine.lint_cmt ?treat_as_lib (cmt name)

let summarize fs =
  List.map (fun f -> (Engine.rule_id f.Engine.rule, f.Engine.line)) fs

let hits = Alcotest.(list (pair string int))

let check_fixture ?(treat_as_lib = true) name expected () =
  Alcotest.check hits name expected
    (summarize (findings ~treat_as_lib name))

let has_sub haystack needle =
  let rec search i =
    i + String.length needle <= String.length haystack
    && (String.sub haystack i (String.length needle) = needle
       || search (i + 1))
  in
  search 0

let message_at fs line =
  match List.find_opt (fun f -> f.Engine.line = line) fs with
  | Some f -> f.Engine.message
  | None -> Alcotest.fail (Printf.sprintf "no finding at line %d" line)

let test_r1 =
  check_fixture "Fix_r1" [ ("R1", 3); ("R1", 5); ("R1", 7) ]

let test_r2 =
  check_fixture "Fix_r2"
    [ ("R2", 3); ("R2", 5); ("R2", 9); ("R2", 23); ("R2", 27) ]

let test_r3 =
  check_fixture "Fix_r3" [ ("R3", 3); ("R3", 5); ("R3", 7) ]

let test_r4 =
  check_fixture "Fix_r4" [ ("R4", 6); ("R4", 13) ]

let test_r5 = check_fixture "Fix_r5" [ ("R5", 2) ]

let test_r5_clean = check_fixture "Fix_r5_clean" []

let test_r6 =
  check_fixture "Fix_r6" [ ("R6", 12); ("R6", 22); ("R6", 27); ("R6", 35) ]

let test_r6_clean = check_fixture "Fix_r6_clean" []

let test_r7 =
  check_fixture "Fix_r7" [ ("R7", 2); ("R7", 4); ("R7", 6); ("R7", 13) ]

let test_r7_clean = check_fixture "Fix_r7_clean" []

let test_clean = check_fixture "Fix_clean" []

(* Without --treat-as-lib the fixtures are out of R1's lib/ scope, so
   only the scope-independent rules remain. *)
let test_r1_scope =
  check_fixture ~treat_as_lib:false "Fix_r1" []

let test_messages () =
  let fs = findings ~treat_as_lib:true "Fix_r1" in
  match fs with
  | f :: _ ->
    Alcotest.(check bool)
      "message names the construct and the escape hatch" true
      (has_sub f.Engine.message "failwith"
      && has_sub f.Engine.message "slc.raw_exn")
  | [] -> Alcotest.fail "expected findings in Fix_r1"

(* R5 findings must carry the full offending call chain. *)
let test_r5_chain () =
  let m = message_at (findings ~treat_as_lib:true "Fix_r5") 2 in
  Alcotest.(check bool)
    "chain hot_entry -> mid -> leaf_alloc reported" true
    (has_sub m "Fix_r5.hot_entry -> Fix_r5.mid -> Fix_r5.leaf_alloc"
    && has_sub m "tuple literal");
  Alcotest.(check bool)
    "escape hatches named" true
    (has_sub m "slc.hot" && has_sub m "slc.alloc_ok")

(* R6 cycle findings must name both locks of the cycle; the
   blocking-call findings must name the blocking primitive (directly
   or through the witness chain). *)
let test_r6_reports () =
  let fs = findings ~treat_as_lib:true "Fix_r6" in
  let cycle = message_at fs 12 in
  Alcotest.(check bool)
    "cycle names both locks" true
    (has_sub cycle "lock-order cycle"
    && has_sub cycle "Fix_r6.lock_a"
    && has_sub cycle "Fix_r6.lock_b");
  let interproc_cycle = message_at fs 22 in
  Alcotest.(check bool)
    "interprocedural edge produces the same cycle" true
    (has_sub interproc_cycle "lock-order cycle");
  let blocking = message_at fs 27 in
  Alcotest.(check bool)
    "direct blocking call named" true
    (has_sub blocking "held across blocking call"
    && has_sub blocking "Parallel.map");
  let witness = message_at fs 35 in
  Alcotest.(check bool)
    "witness chain to the blocking call reported" true
    (has_sub witness "Fix_r6.submit -> Parallel.map")

(* R7 findings must name the construct and the root chain. *)
let test_r7_reports () =
  let fs = findings ~treat_as_lib:true "Fix_r7" in
  let clock = message_at fs 2 in
  Alcotest.(check bool)
    "clock reachable through the root chain" true
    (has_sub clock "Unix.gettimeofday"
    && has_sub clock "Fix_r7.entry -> Fix_r7.stamp");
  let phys = message_at fs 4 in
  Alcotest.(check bool)
    "float physical equality named" true
    (has_sub phys "physical equality");
  let fold = message_at fs 6 in
  Alcotest.(check bool)
    "Hashtbl.fold named" true
    (has_sub fold "Hashtbl.fold")

(* The per-rule enable flag must drop everything else. *)
let test_rule_filter () =
  let only_r7 = Engine.lint_cmt ~treat_as_lib:true ~rules:[ Engine.R7 ] (cmt "Fix_r5") in
  Alcotest.check hits "R5 fixture is silent under --rules R7" []
    (summarize only_r7);
  let only_r5 = Engine.lint_cmt ~treat_as_lib:true ~rules:[ Engine.R5 ] (cmt "Fix_r5") in
  Alcotest.check hits "R5 fixture still fires under --rules R5" [ ("R5", 2) ]
    (summarize only_r5)

(* The resolved def/use graph behind R5–R7 (--dump-callgraph). *)
let test_callgraph () =
  let lines = Engine.callgraph_cmt (cmt "Fix_r5") in
  Alcotest.(check bool)
    "hot_entry -> mid edge present" true
    (List.mem "Fix_r5.hot_entry -> Fix_r5.mid" lines);
  Alcotest.(check bool)
    "mid -> leaf_alloc edge present" true
    (List.mem "Fix_r5.mid -> Fix_r5.leaf_alloc" lines);
  Alcotest.(check bool)
    "stdlib calls are marked external" true
    (List.exists (fun l -> has_sub l "(external)") lines)

let test_baseline_roundtrip () =
  let fs = findings ~treat_as_lib:true "Fix_r2" in
  let path = Filename.temp_file "slc_lint_test" ".baseline" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Engine.save_baseline path fs;
      match Engine.load_baseline path with
      | Error e -> Alcotest.fail e
      | Ok keys ->
        Alcotest.(check (list string))
          "baseline suppresses exactly the saved findings"
          (List.map Engine.finding_key fs)
          keys)

(* Baseline entries that no longer fire must surface as stale
   (--forbid-stale turns them into a failure in the driver). *)
let test_stale_keys () =
  let fs = findings ~treat_as_lib:true "Fix_r6" in
  let live = List.map Engine.finding_key fs in
  let ghost = "R6|tools/lint/test/fixtures/fix_r6.ml|999|gone" in
  Alcotest.(check (list string))
    "only the dead entry is stale" [ ghost ]
    (Engine.stale_keys ~known:(ghost :: live) fs);
  Alcotest.(check (list string))
    "an exactly-live baseline has no stale entries" []
    (Engine.stale_keys ~known:live fs)

(* --json round-trip: the report must carry every finding with its
   rule id, and the counts must match. *)
let test_json_report () =
  let fresh = findings ~treat_as_lib:true "Fix_r7" in
  let stale = [ "R1|lib/gone.ml|3|old" ] in
  let path = Filename.temp_file "slc_lint_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Engine.write_json ~files_scanned:1 ~fresh ~baselined:[] ~stale oc;
      close_out oc;
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool)
        "counts and rule ids serialized" true
        (has_sub s "\"files_scanned\":1"
        && has_sub s
             (Printf.sprintf "\"fresh\":%d" (List.length fresh))
        && has_sub s "\"rule\":\"R7\""
        && has_sub s "\"stale_baseline\":[\"R1|lib/gone.ml|3|old\"]");
      List.iter
        (fun f ->
          Alcotest.(check bool)
            ("finding at line " ^ string_of_int f.Engine.line ^ " present")
            true
            (has_sub s (Printf.sprintf "\"line\":%d" f.Engine.line)))
        fresh)

let () =
  Alcotest.run "slc_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 error-taxonomy" `Quick test_r1;
          Alcotest.test_case "R2 domain-safety" `Quick test_r2;
          Alcotest.test_case "R3 hot-path-alloc" `Quick test_r3;
          Alcotest.test_case "R4 exception-safety" `Quick test_r4;
          Alcotest.test_case "R5 transitive-hot-alloc" `Quick test_r5;
          Alcotest.test_case "R5 clean fixture is silent" `Quick test_r5_clean;
          Alcotest.test_case "R6 lock-order" `Quick test_r6;
          Alcotest.test_case "R6 clean fixture is silent" `Quick test_r6_clean;
          Alcotest.test_case "R7 determinism" `Quick test_r7;
          Alcotest.test_case "R7 clean fixture is silent" `Quick test_r7_clean;
          Alcotest.test_case "clean fixture is silent" `Quick test_clean;
          Alcotest.test_case "R1 scoped to lib/" `Quick test_r1_scope;
          Alcotest.test_case "per-rule enable flags" `Quick test_rule_filter;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "diagnostic text" `Quick test_messages;
          Alcotest.test_case "R5 call-chain text" `Quick test_r5_chain;
          Alcotest.test_case "R6 cycle and blocking text" `Quick test_r6_reports;
          Alcotest.test_case "R7 root-chain text" `Quick test_r7_reports;
          Alcotest.test_case "call-graph dump" `Quick test_callgraph;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "stale baseline keys" `Quick test_stale_keys;
          Alcotest.test_case "json report" `Quick test_json_report;
        ] );
    ]
