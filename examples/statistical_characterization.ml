(* Statistical characterization under process variation (the paper's
   28-nm example, scaled down).

   For each Monte-Carlo process seed the compact model is extracted
   from a handful of simulations; pushing the per-seed models through
   any input condition yields the full delay distribution there —
   without simulating that condition at all.

   Run with: dune exec examples/statistical_characterization.exe *)

open Slc_core
module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Process = Slc_device.Process
module Describe = Slc_prob.Describe

let () =
  let tech = Tech.n28 in
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let n_seeds = 60 in
  Printf.printf "Statistical characterization of %s in %s, %d seeds\n"
    (Arc.name arc) tech.Tech.name n_seeds;

  (* Prior from the other five nodes (smaller grid to keep the example
     fast). *)
  Printf.printf "Learning prior...\n%!";
  let prior =
    Prior.learn_pair ~cells:[ Cells.inv; Cells.nand2 ]
      ~grid_levels:[| 3; 3; 2 |]
      ~historical:(Tech.historical_for tech) ()
  in

  (* Draw process seeds and extract a model per seed (k = 5 sims each). *)
  let rng = Slc_prob.Rng.create 7 in
  let seeds = Process.sample_batch rng tech n_seeds in
  Harness.reset_sim_count ();
  let pop =
    Statistical.extract_population ~method_:(Statistical.Bayes prior) ~tech
      ~arc ~seeds ~budget:5 ()
  in
  Printf.printf "Per-seed extraction: %d simulator runs total\n"
    pop.Statistical.train_cost;

  (* Predict the delay distribution at a low-Vdd corner... *)
  let point = { Harness.sin = 6e-12; cload = 2.5e-15; vdd = 0.72 } in
  let predicted = Statistical.predict_samples pop point ~td:true in

  (* ...and compare against brute-force Monte Carlo at that point. *)
  let mc =
    Array.map (fun s -> (Harness.simulate ~seed:s tech arc point).Harness.td) seeds
  in
  let pp name xs =
    Printf.printf "  %-10s mean %6.2f ps   sigma %5.2f ps   skew %+.2f\n" name
      (Describe.mean xs *. 1e12)
      (Describe.std xs *. 1e12)
      (Describe.skewness xs)
  in
  Printf.printf "\nDelay distribution at %s:\n"
    (Format.asprintf "%a" Harness.pp_point point);
  pp "predicted" predicted;
  pp "MC truth" mc;
  Printf.printf "  KS distance: %.3f\n"
    (Slc_prob.Stattest.ks_two_sample predicted mc);
  Printf.printf
    "\nThe prediction needed 0 extra simulations at this condition; the\n\
     MC reference needed %d.  Over a full library the same per-seed\n\
     models answer every condition, which is the paper's O(k*Nsample)\n\
     vs O(N_LUT*Nsample) saving.\n"
    n_seeds
