(* SSTA consumer: what the characterized library is actually for.

   A 5-stage logic path is analyzed three ways:
     1. transistor-level transient simulation of the whole chain
        (ground truth);
     2. stage-by-stage propagation with a Bayesian-characterized
        compact model (k = 3 simulations per arc);
     3. statistical: per-seed compact models give the full path-delay
        distribution with zero additional simulations per seed/corner.

   Run with: dune exec examples/ssta_path.exe *)

module Tech = Slc_device.Tech
module Process = Slc_device.Process
open Slc_cell
open Slc_core
open Slc_ssta

let () =
  let tech = Tech.n14 in
  let vdd = 0.8 and sin = 5e-12 in
  let chain =
    Chain.make tech
      [
        Chain.stage Cells.inv "A";
        Chain.stage ~wire_cap:1e-15 Cells.nand2 "A";
        Chain.stage Cells.nor2 "B";
        Chain.stage ~wire_cap:0.5e-15 Cells.inv "A";
        Chain.stage Cells.aoi21 "A";
      ]
  in
  Printf.printf "Path: %s\n"
    (String.concat " -> "
       (List.map (fun a -> Arc.name a) (Chain.arcs_of chain ~in_rises:true)));

  (* 1. Ground truth: simulate the full chain. *)
  let truth = Chain.simulate chain ~sin ~vdd ~in_rises:true in
  Printf.printf "\nTransistor-level chain:  %.2f ps\n"
    (truth.Chain.total_delay *. 1e12);

  (* 2. Model-based propagation (the library consumer's view). *)
  Printf.printf "Learning prior / characterizing arcs (k = 3 each)...\n%!";
  let prior =
    Prior.learn_pair
      ~cells:[ Cells.inv; Cells.nand2; Cells.nor2 ]
      ~grid_levels:[| 3; 3; 2 |]
      ~historical:[ Tech.n20; Tech.n28 ] ()
  in
  Harness.reset_sim_count ();
  let oracle = Oracle.bayes_bank ~prior tech ~k:3 in
  let t = Path.propagate oracle chain ~sin ~vdd ~in_rises:true in
  Printf.printf "Model-based propagation: %.2f ps  (error %+.1f%%, %d sims)\n"
    (t.Path.total_delay *. 1e12)
    (100.0
    *. (t.Path.total_delay -. truth.Chain.total_delay)
    /. truth.Chain.total_delay)
    (Harness.sim_count ());
  List.iter
    (fun (st : Path.stage_timing) ->
      Printf.printf "    %-14s %6.2f ps  (load %.2f fF, out slew %.2f ps)\n"
        st.Path.arc_name (st.Path.delay *. 1e12) (st.Path.load *. 1e15)
        (st.Path.out_slew *. 1e12))
    t.Path.stages;

  (* 3. Statistical SSTA: path-delay distribution under process
     variation, from per-seed compact models. *)
  let n_seeds = 60 in
  let rng = Slc_prob.Rng.create 12 in
  let seeds = Process.sample_batch rng tech n_seeds in
  Harness.reset_sim_count ();
  let population arc =
    Statistical.extract_population ~method_:(Statistical.Bayes prior) ~tech
      ~arc ~seeds ~budget:3 ()
  in
  let samples =
    Path.statistical ~population ~seeds chain ~sin ~vdd ~in_rises:true
  in
  let model_sims = Harness.sim_count () in
  (* MC ground truth: simulate the whole chain per seed. *)
  Harness.reset_sim_count ();
  let mc =
    Array.map
      (fun seed -> (Chain.simulate ~seed chain ~sin ~vdd ~in_rises:true).Chain.total_delay)
      seeds
  in
  let mc_sims = Harness.sim_count () in
  let module D = Slc_prob.Describe in
  Printf.printf "\nStatistical path delay over %d seeds:\n" n_seeds;
  Printf.printf "    %-18s mean %6.2f ps  sigma %5.2f ps   (%d sims)\n"
    "per-seed models" (D.mean samples *. 1e12) (D.std samples *. 1e12)
    model_sims;
  Printf.printf "    %-18s mean %6.2f ps  sigma %5.2f ps   (%d sims)\n"
    "chain Monte Carlo" (D.mean mc *. 1e12) (D.std mc *. 1e12) mc_sims;
  Printf.printf "    KS distance: %.3f\n"
    (Slc_prob.Stattest.ks_two_sample samples mc);
  (* 4. Timing yield: what fraction of dies meets a clock constraint? *)
  let tclk = D.mean mc *. 1.10 in
  let y =
    Yield.of_path ~population ~seeds ~clock_period:tclk chain ~sin ~vdd
      ~in_rises:true
  in
  Printf.printf "\nYield at Tclk = mean + 10%% (%.2f ps): %s\n" (tclk *. 1e12)
    (Format.asprintf "%a" Yield.pp y);
  Printf.printf "Clock needed for 99%% yield: %.2f ps\n"
    (Yield.required_period y ~target_yield:0.99 *. 1e12);
  Printf.printf
    "\nOnce extracted, the per-seed models answer any path, input slew or\n\
     load without further simulation; the MC reference pays one full\n\
     transient per (path, seed).\n"
