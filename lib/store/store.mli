(** Persistent, content-addressed characterization artifact store with
    checkpoint/resume.

    The paper's headline economics (≥15× fewer simulator runs than a
    LUT flow) assume the expensive work — prior learning, per-seed MAP
    extraction, table building — is paid {e once} and reused.  All the
    in-process caches ([Harness] compiled netlists, [Oracle]'s trained
    bank) die with the process; this module is the across-process tier:
    a directory of versioned text artifacts keyed by a content hash of
    everything that determines the result.

    {b Correctness contract: bitwise identity.}  An artifact loaded
    from the store — or a population resumed from a checkpoint after a
    crash — produces results bit-for-bit equal to a single fresh
    process computing the same thing, including [train_cost]
    accounting.  Floats are stored in the exact hexadecimal encoding
    ({!Slc_num.Hexfloat}); predictors are rebuilt from their
    serialized {!Slc_core.Char_flow.model} through the same closure
    constructors training uses.

    {b Content addressing.}  A key is the MD5 of a canonical rendering
    of every input that can change the artifact: the on-disk format
    version, a technology fingerprint (device templates, variability,
    input box — not just the name, so temperature/Vt variants do not
    collide), the arc, the method (for Bayes, a digest of the full
    serialized prior), the fitting design (for random designs, the
    exact generator state via {!Slc_prob.Rng.save}), the seed set, and
    the budgets.  Changing any of these changes the key, so a stale
    artifact is never served — invalidation is automatic and the store
    needs no coherence protocol.

    {b Crash safety.}  Every file is written to a temporary name in
    the same directory and atomically renamed into place, so a reader
    can never observe a partially-written artifact or checkpoint.
    See [docs/store.md] for the on-disk format specification. *)

type t
(** An opened store rooted at a directory. *)

val format_version : int
(** On-disk format major version (currently 1).  Bumped on any
    incompatible change; every key embeds it, and the root marker file
    declares it. *)

val open_ : string -> t
(** [open_ dir] opens (creating if necessary) a store rooted at [dir].
    A fresh or empty directory is initialized with a version marker;
    an existing store's marker is checked.  Raises
    {!Slc_obs.Slc_error.Store_failed} with [Store_version_mismatch]
    when the marker declares a different format version or the
    directory exists with unrelated content, and with [Store_corrupt]
    when the marker is unreadable. *)

val root : t -> string

type key = string
(** 32-character hex content hash. *)

exception Stored_failure of string
(** Replays a persisted seed failure: exceptions do not round-trip
    through disk, so a [Seed_failed e] loaded from the store carries
    [Stored_failure m] where [m] is [e]'s rendered message. *)

(** {2 Priors} *)

val prior_fingerprint : Slc_core.Prior.pair -> string
(** Content digest of the fully serialized prior (mean, covariance,
    β(ξ) grid, provenance).  Two priors with equal fingerprints give
    bitwise-equal MAP fits — this is the prior component of every
    Bayes-method key. *)

val prior_key : historical:Slc_device.Tech.t list -> key
(** Key of the prior learned by
    [Prior.learn_pair ~historical ()] at the default cell set and grid
    levels.  Order-sensitive: learning folds the historical nodes in
    list order. *)

val put_prior : t -> key:key -> Slc_core.Prior.pair -> unit

val find_prior : t -> key:key -> Slc_core.Prior.pair option
(** [None] when absent.  Raises [Store_failed] ([Store_corrupt]) when
    present but unparseable. *)

val get_prior : t -> historical:Slc_device.Tech.t list -> Slc_core.Prior.pair
(** Load-or-learn: {!find_prior} under {!prior_key}, falling back to
    [Prior.learn_pair ~historical ()] and persisting the result. *)

(** {2 Trained per-arc predictors (the [Oracle.bayes_bank] tier)} *)

val predictor_key :
  ?gpr:float ->
  prior_fp:string ->
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  k:int ->
  seed:Slc_device.Process.seed option ->
  unit ->
  key
(** [?gpr] is the GPR-fallback residual threshold when the caller
    trains with one ({!Slc_core.Char_flow.with_gpr_fallback}); it
    changes which model gets trained, so it participates in the key.
    [None] (no fallback) keeps keys byte-identical to the pre-GPR
    format — existing stores stay warm. *)

val put_predictor : t -> key:key -> Slc_core.Char_flow.predictor -> unit
(** Persists the predictor's {!Slc_core.Char_flow.model} (analytical
    parameter pairs, NLDM tables and GPR training sets all round-trip
    exactly via {!Slc_num.Hexfloat}).  Raises [Invalid_argument] for
    an [Opaque] model. *)

val find_predictor :
  ?seed:Slc_device.Process.seed ->
  t ->
  key:key ->
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  Slc_core.Char_flow.predictor option
(** Rebuilds the predictor with
    {!Slc_core.Char_flow.predictor_of_model}; predictions are bitwise
    identical to the stored predictor's.  [?seed] must be the seed the
    predictor was trained under (it participates in the key, so a
    mismatch simply misses). *)

(** {2 Characterized libraries (NLDM/Liberty tier)} *)

val library_key :
  seed:Slc_device.Process.seed option ->
  tech:Slc_device.Tech.t ->
  cells:string list ->
  levels:int array ->
  key

val put_library : t -> key:key -> Slc_cell.Library.t -> unit

val find_library :
  ?tech:Slc_device.Tech.t -> t -> key:key -> Slc_cell.Library.t option
(** [?tech] is passed through to {!Slc_cell.Library.of_string} (needed
    for technology cards not registered by name). *)

(** {2 Statistical populations with checkpoint/resume} *)

val population_key :
  method_:Slc_core.Statistical.method_ ->
  design:Slc_core.Statistical.design ->
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  seeds:Slc_device.Process.seed array ->
  budget:int ->
  min_points:int ->
  key
(** For [Random_per_seed] designs the key captures the generator's
    exact state ({!Slc_prob.Rng.save}) — a resumed run must be handed
    a generator in the same state to reach the same artifact. *)

type outcome =
  | Hit  (** served entirely from the final artifact: zero simulations *)
  | Computed of {
      resumed_seeds : int;
          (** seeds recovered from a checkpoint (zero simulations) *)
      computed_seeds : int;  (** seeds simulated and fitted by this call *)
      batches : int;         (** checkpoint batches this call ran *)
    }

val extract_population :
  ?min_points:int ->
  ?batch_size:int ->
  ?after_batch:(int -> unit) ->
  store:t ->
  method_:Slc_core.Statistical.method_ ->
  design:Slc_core.Statistical.design ->
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  seeds:Slc_device.Process.seed array ->
  budget:int ->
  unit ->
  Slc_core.Statistical.population * outcome
(** Store-backed [Statistical.extract_population_design].

    - If the final artifact exists, it is loaded and no simulation
      runs ({!Hit}).
    - Otherwise seeds missing from the checkpoint (all of them, on a
      cold store) are processed in batches of [batch_size] (default 4)
      through {!Slc_core.Statistical.extract_seed_models}; after every
      batch the checkpoint is atomically rewritten, so a crash costs
      at most one batch of re-simulation.
    - On completion the final artifact is written and the checkpoint
      removed.

    The returned population is bitwise identical to
    [Statistical.extract_population_design] run fresh in one process:
    per-seed designs key off [Process.index] (not batch position), so
    batching, resuming, and loading cannot perturb any seed's fit, and
    [train_cost] sums the deterministic per-batch simulator-run
    deltas.  [after_batch] is called with the number of batches
    completed so far — tests use it to inject crashes at exact
    checkpoint boundaries.

    [seeds] must be indexed by [Process.index] (as
    [Process.sample_batch] produces).  Raises [Store_failed] on a
    corrupt final artifact; an unreadable checkpoint is discarded and
    recomputed. *)

val find_population :
  store:t ->
  method_:Slc_core.Statistical.method_ ->
  design:Slc_core.Statistical.design ->
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  seeds:Slc_device.Process.seed array ->
  budget:int ->
  min_points:int ->
  Slc_core.Statistical.population option
(** Peek: the finished population if its artifact exists, without
    computing anything. *)

(** {2 Introspection} *)

val tech_fingerprint : Slc_device.Tech.t -> string
(** Digest over the technology card's physical content (device
    templates, variability coefficients, input box) — distinguishes
    temperature and Vt variants that share a base name. *)

val artifact_path : t -> [ `Prior | `Predictor | `Library | `Population ] -> key -> string
(** Absolute path an artifact of the given kind lives at (whether or
    not it currently exists) — for tooling and tests. *)
