(* Persistent content-addressed characterization store.  See store.mli
   and docs/store.md for the contract; the short version: line-oriented
   text artifacts under <root>/{priors,predictors,libraries,populations},
   exact hex floats, atomic temp+rename writes, MD5 content keys. *)

module Err = Slc_obs.Slc_error
module Tel = Slc_obs.Telemetry
module Hex = Slc_num.Hexfloat
module Rng = Slc_prob.Rng
module Tech = Slc_device.Tech
module Mosfet = Slc_device.Mosfet
module Process = Slc_device.Process
module Arc = Slc_cell.Arc
module Nldm = Slc_cell.Nldm
module Library = Slc_cell.Library
module Harness = Slc_cell.Harness
module Char_flow = Slc_core.Char_flow
module Statistical = Slc_core.Statistical
module Prior = Slc_core.Prior
module Prior_io = Slc_core.Prior_io
module Timing_model = Slc_core.Timing_model
module Gpr = Slc_core.Gpr

type t = { root : string }

let root t = t.root
let format_version = 1

type key = string

exception Stored_failure of string

let () =
  Printexc.register_printer (function
    | Stored_failure m -> Some (Printf.sprintf "Stored_failure(%s)" m)
    | _ -> None)

(* Internal parse failures; converted to [Slc_error.Store_failed] (final
   artifacts) or swallowed (checkpoints) before leaving this module. *)
exception Parse_error of string

let fail msg = raise (Parse_error msg)
let corrupt path m = Err.raise_store_failed ~path ~kind:Err.Store_corrupt m

(* ---------------------------------------------------------------- *)
(* Filesystem primitives                                            *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_atomic path content =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "tmp-" ".part" in
  (try
     Out_channel.with_open_bin tmp (fun oc ->
         Out_channel.output_string oc content)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

let version_line = Printf.sprintf "slc-store %d" format_version
let marker_name = "VERSION"
let subdirs = [ "priors"; "predictors"; "libraries"; "populations" ]

let init_root rootd =
  ensure_dir rootd;
  List.iter (fun s -> ensure_dir (Filename.concat rootd s)) subdirs;
  write_atomic (Filename.concat rootd marker_name) (version_line ^ "\n")

let check_marker marker =
  let content =
    try read_file marker
    with Sys_error m -> Err.raise_store_failed ~path:marker ~kind:Err.Store_corrupt m
  in
  match String.split_on_char ' ' (String.trim content) with
  | [ "slc-store"; v ] -> (
    match int_of_string_opt v with
    | Some v when v = format_version -> ()
    | Some v ->
      Err.raise_store_failed ~path:marker ~kind:Err.Store_version_mismatch
        (Printf.sprintf "store is on-disk format %d; this build speaks %d" v
           format_version)
    | None ->
      Err.raise_store_failed ~path:marker ~kind:Err.Store_corrupt
        ("malformed version marker: " ^ String.trim content))
  | _ ->
    Err.raise_store_failed ~path:marker ~kind:Err.Store_corrupt
      ("malformed version marker: " ^ String.trim content)

let open_ rootd =
  let marker = Filename.concat rootd marker_name in
  (if not (Sys.file_exists rootd) then init_root rootd
   else if not (Sys.is_directory rootd) then
     Err.raise_store_failed ~path:rootd ~kind:Err.Store_version_mismatch
       "path exists and is not a directory"
   else if Sys.file_exists marker then check_marker marker
   else if Array.length (Sys.readdir rootd) = 0 then init_root rootd
   else
     Err.raise_store_failed ~path:rootd ~kind:Err.Store_version_mismatch
       "directory is not an artifact store (missing VERSION marker)");
  List.iter (fun s -> ensure_dir (Filename.concat rootd s)) subdirs;
  { root = rootd }

let kind_dir = function
  | `Prior -> "priors"
  | `Predictor -> "predictors"
  | `Library -> "libraries"
  | `Population -> "populations"

let artifact_path t kind key =
  Filename.concat (Filename.concat t.root (kind_dir kind)) key

let ckpt_path t key = artifact_path t `Population key ^ ".ckpt"

(* ---------------------------------------------------------------- *)
(* Content fingerprints and keys                                    *)

let digest s = Digest.to_hex (Digest.string s)
let hx = Hex.to_string

let tech_canonical (tc : Tech.t) =
  let b = Buffer.create 512 in
  Printf.bprintf b "tech %s %d %s %s\n" tc.name tc.node_nm
    (match tc.flavor with
    | Tech.Bulk -> "bulk"
    | Tech.Soi -> "soi"
    | Tech.Finfet -> "finfet")
    (hx tc.vdd_nom);
  let mosfet name (m : Mosfet.params) =
    Printf.bprintf b "%s %s" name
      (match m.polarity with Mosfet.Nmos -> "n" | Mosfet.Pmos -> "p");
    List.iter
      (fun v -> Printf.bprintf b " %s" (hx v))
      [ m.w; m.l; m.vt; m.kp; m.alpha; m.theta; m.vsat_frac; m.lambda;
        m.cg; m.cj ];
    Buffer.add_char b '\n'
  in
  mosfet "nmos" tc.nmos;
  mosfet "pmos" tc.pmos;
  Printf.bprintf b "var %s %s %s %s %s\n" (hx tc.avt) (hx tc.sigma_vt_global)
    (hx tc.sigma_kp_rel) (hx tc.sigma_l_rel) (hx tc.sigma_cpar_rel);
  let range name (lo, hi) = Printf.bprintf b "%s %s %s\n" name (hx lo) (hx hi) in
  range "sin" tc.sin_range;
  range "cload" tc.cload_range;
  range "vdd" tc.vdd_range;
  Buffer.contents b

let tech_fingerprint tc = digest (tech_canonical tc)

let seed_str (s : Process.seed) =
  Printf.sprintf "%d %s %s %s %s %s %d" s.index (hx s.dvt_n) (hx s.dvt_p)
    (hx s.dkp_rel) (hx s.dl_rel) (hx s.dcpar_rel) s.local_seed

let seed_opt_str = function None -> "nominal" | Some s -> seed_str s

let prior_fingerprint pair = digest (Prior_io.to_string pair)

let method_fp = function
  | Statistical.Bayes prior -> "bayes " ^ prior_fingerprint prior
  | Statistical.Lse -> "lse"
  | Statistical.Lut -> "lut"

let design_fp = function
  | Statistical.Curated -> "curated"
  | Statistical.Random_per_seed rng -> "random " ^ Rng.save rng
  | Statistical.Adaptive a ->
    (* Every acquisition hyperparameter enters the fingerprint: a
       stored adaptive population is only ever served to a run that
       would have selected the same points. *)
    Printf.sprintf "adaptive %s %d %s" (Rng.save a.Statistical.a_rng)
      a.Statistical.a_candidates
      (hx a.Statistical.a_gpr_threshold)

let key_of lines = digest (String.concat "\n" lines)

let prior_key ~historical =
  key_of
    ("prior" :: string_of_int format_version
    :: List.map tech_fingerprint historical)

let predictor_key ?gpr ~prior_fp ~tech ~arc ~k ~seed () =
  key_of
    ([ "predictor"; string_of_int format_version; prior_fp;
       tech_fingerprint tech; Arc.name arc; string_of_int k;
       seed_opt_str seed ]
    (* [None] keeps the key byte-identical to the pre-GPR format, so
       existing stores stay warm; a fallback threshold changes what
       gets trained and therefore must change the key. *)
    @ match gpr with None -> [] | Some t -> [ "gpr"; hx t ])

let library_key ~seed ~tech ~cells ~levels =
  key_of
    ([ "library"; string_of_int format_version; tech_fingerprint tech;
       seed_opt_str seed;
       String.concat " " (List.map string_of_int (Array.to_list levels)) ]
    @ cells)

let population_key ~method_ ~design ~tech ~arc ~seeds ~budget ~min_points =
  let seeds_fp =
    digest (String.concat "\n" (Array.to_list (Array.map seed_str seeds)))
  in
  key_of
    [ "population"; string_of_int format_version; method_fp method_;
      design_fp design; tech_fingerprint tech; Arc.name arc; seeds_fp;
      string_of_int budget; string_of_int min_points ]

(* ---------------------------------------------------------------- *)
(* Line cursor (same discipline as [Prior_io])                      *)

type cursor = { mutable lines : string list }

let cursor_of_string s =
  {
    lines =
      String.split_on_char '\n' s
      |> List.map String.trim
      |> List.filter (fun l -> l <> "");
  }

let next c =
  match c.lines with
  | [] -> fail "unexpected end of artifact"
  | l :: rest ->
    c.lines <- rest;
    l

let peek c = match c.lines with [] -> None | l :: _ -> Some l

let fields l = String.split_on_char ' ' l |> List.filter (fun s -> s <> "")

let int_of s =
  match int_of_string_opt s with Some i -> i | None -> fail ("bad int " ^ s)

let float_of s =
  match Hex.of_string_opt s with
  | Some f -> f
  | None -> fail ("bad float " ^ s)

(* ---------------------------------------------------------------- *)
(* Priors                                                           *)

let put_prior t ~key pair =
  write_atomic (artifact_path t `Prior key) (Prior_io.to_string pair)

let find_prior t ~key =
  let path = artifact_path t `Prior key in
  if not (Sys.file_exists path) then None
  else
    match Prior_io.parse (read_file path) with
    | p -> Some p
    | exception Prior_io.Format_error m -> corrupt path m

let get_prior t ~historical =
  let key = prior_key ~historical in
  match find_prior t ~key with
  | Some p ->
    Tel.incr Tel.store_hits;
    p
  | None ->
    Tel.incr Tel.store_misses;
    let p = Prior.learn_pair ~historical () in
    put_prior t ~key p;
    p

(* ---------------------------------------------------------------- *)
(* Predictor blocks                                                 *)

let params_str (q : Timing_model.params) =
  Printf.sprintf "%s %s %s %s" (hx q.kd) (hx q.cpar) (hx q.v_off) (hx q.alpha)

let pred_to_buffer b (p : Char_flow.predictor) =
  Printf.bprintf b "slc-pred %d\n" format_version;
  Printf.bprintf b "label %S\n" p.label;
  Printf.bprintf b "train_cost %d\n" p.train_cost;
  (match p.model with
  | Char_flow.Timing_pair { td; sout } ->
    Buffer.add_string b "timing\n";
    Printf.bprintf b "td %s\n" (params_str td);
    Printf.bprintf b "sout %s\n" (params_str sout)
  | Char_flow.Nldm_table tbl ->
    Buffer.add_string b "nldm\n";
    Nldm.to_buffer b tbl
  | Char_flow.Gpr_pair { td; sout } ->
    (* Only the serializable model (hyperparameters + training set)
       is written; [Gpr.refit] rebuilds the posterior bitwise. *)
    Buffer.add_string b "gpr\n";
    let gp name (m : Gpr.model) =
      let h = m.Gpr.m_hyper in
      Printf.bprintf b "%s %s %s %s %s %s %s %d\n" name (hx h.Gpr.signal2)
        (hx h.Gpr.noise2) (hx h.Gpr.lengths.(0)) (hx h.Gpr.lengths.(1))
        (hx h.Gpr.lengths.(2)) (hx m.Gpr.m_mean)
        (Array.length m.Gpr.m_targets);
      Array.iteri
        (fun i (pt : Slc_cell.Harness.point) ->
          Printf.bprintf b "p %s %s %s %s\n" (hx pt.sin) (hx pt.cload)
            (hx pt.vdd)
            (hx m.Gpr.m_targets.(i)))
        m.Gpr.m_points
    in
    gp "td" td;
    gp "sout" sout
  | Char_flow.Opaque ->
    Slc_obs.Slc_error.invalid_input ~site:"Slc_store" "a predictor with an Opaque model cannot be persisted");
  Buffer.add_string b "end\n"

let params_of name = function
  | [ kd; cpar; v_off; alpha ] ->
    {
      Timing_model.kd = float_of kd;
      cpar = float_of cpar;
      v_off = float_of v_off;
      alpha = float_of alpha;
    }
  | _ -> fail (name ^ " needs 4 values")

let scan_string line fmt =
  try Scanf.sscanf line fmt Fun.id with
  | Scanf.Scan_failure m -> fail m
  | End_of_file -> fail ("truncated line: " ^ line)
  | Failure m -> fail m

let parse_pred_block c =
  (match fields (next c) with
  | [ "slc-pred"; v ] when int_of v = format_version -> ()
  | _ -> fail "bad predictor header (want: slc-pred 1)");
  let label = scan_string (next c) "label %S" in
  let train_cost =
    match fields (next c) with
    | [ "train_cost"; n ] -> int_of n
    | _ -> fail "bad train_cost"
  in
  let model =
    match fields (next c) with
    | [ "timing" ] ->
      let td =
        match fields (next c) with
        | "td" :: rest -> params_of "td" rest
        | _ -> fail "expected td"
      in
      let sout =
        match fields (next c) with
        | "sout" :: rest -> params_of "sout" rest
        | _ -> fail "expected sout"
      in
      Char_flow.Timing_pair { td; sout }
    | [ "nldm" ] -> (
      try Char_flow.Nldm_table (Nldm.parse_lines (fun () -> next c))
      with Nldm.Format_error m -> fail m)
    | [ "gpr" ] ->
      let gp name =
        match fields (next c) with
        | [ n; signal2; noise2; l0; l1; l2; mean; count ] when n = name ->
          let count = int_of count in
          if count < 1 then fail (name ^ " needs >= 1 training point");
          let points = Array.make count Slc_cell.Harness.{ sin = 0.0; cload = 0.0; vdd = 0.0 } in
          let targets = Array.make count 0.0 in
          for i = 0 to count - 1 do
            match fields (next c) with
            | [ "p"; sin; cload; vdd; y ] ->
              points.(i) <-
                {
                  Slc_cell.Harness.sin = float_of sin;
                  cload = float_of cload;
                  vdd = float_of vdd;
                };
              targets.(i) <- float_of y
            | _ -> fail ("bad " ^ name ^ " training point")
          done;
          {
            Gpr.m_hyper =
              {
                Gpr.signal2 = float_of signal2;
                noise2 = float_of noise2;
                lengths = [| float_of l0; float_of l1; float_of l2 |];
              };
            m_mean = float_of mean;
            m_points = points;
            m_targets = targets;
          }
        | _ -> fail ("expected " ^ name ^ " gpr header")
      in
      let td = gp "td" in
      let sout = gp "sout" in
      Char_flow.Gpr_pair { td; sout }
    | _ -> fail "bad predictor model kind"
  in
  (match fields (next c) with
  | [ "end" ] -> ()
  | _ -> fail "missing predictor end");
  (label, train_cost, model)

let rebuild_pred ~tech ~arc ~seed = function
  | None -> None
  | Some (label, train_cost, model) ->
    Some (Char_flow.predictor_of_model ~seed ~label ~train_cost tech arc model)

let put_predictor t ~key (p : Char_flow.predictor) =
  let b = Buffer.create 1024 in
  pred_to_buffer b p;
  write_atomic (artifact_path t `Predictor key) (Buffer.contents b)

let find_predictor ?seed t ~key ~tech ~arc =
  let path = artifact_path t `Predictor key in
  if not (Sys.file_exists path) then None
  else
    try
      let c = cursor_of_string (read_file path) in
      let label, train_cost, model = parse_pred_block c in
      (match peek c with
      | None -> ()
      | Some l -> fail ("trailing garbage: " ^ l));
      Some (Char_flow.predictor_of_model ?seed ~label ~train_cost tech arc model)
    with Parse_error m -> corrupt path m

(* ---------------------------------------------------------------- *)
(* Libraries                                                        *)

let put_library t ~key lib =
  write_atomic (artifact_path t `Library key) (Library.to_string lib)

let find_library ?tech t ~key =
  let path = artifact_path t `Library key in
  if not (Sys.file_exists path) then None
  else
    try Some (Library.of_string ?tech (read_file path)) with
    | Library.Format_error m | Nldm.Format_error m -> corrupt path m
    | Not_found -> corrupt path "library references an unknown cell, arc or technology"

(* ---------------------------------------------------------------- *)
(* Populations: entries, final artifacts, checkpoints               *)

type pop_entry = {
  e_pred : Char_flow.predictor option;
  e_status : Statistical.seed_status;
}

let entry_to_buffer b i e =
  Printf.bprintf b "entry %d\n" i;
  (match e.e_status with
  | Statistical.Seed_ok -> Buffer.add_string b "status ok\n"
  | Statistical.Seed_degraded n -> Printf.bprintf b "status degraded %d\n" n
  | Statistical.Seed_failed exn ->
    Printf.bprintf b "status failed %S\n" (Printexc.to_string exn));
  match e.e_pred with
  | None -> Buffer.add_string b "predictor none\n"
  | Some p -> pred_to_buffer b p

let parse_status l =
  match fields l with
  | [ "status"; "ok" ] -> Statistical.Seed_ok
  | [ "status"; "degraded"; n ] -> Statistical.Seed_degraded (int_of n)
  | "status" :: "failed" :: _ ->
    Statistical.Seed_failed (Stored_failure (scan_string l "status failed %S"))
  | _ -> fail ("bad status line: " ^ l)

(* Returns the raw (label, cost, model) so the caller can rebuild the
   predictor under the right process seed. *)
let parse_entry c =
  let i =
    match fields (next c) with
    | [ "entry"; n ] -> int_of n
    | _ -> fail "expected entry"
  in
  let status = parse_status (next c) in
  let pred =
    match peek c with
    | Some l when fields l = [ "predictor"; "none" ] ->
      ignore (next c);
      None
    | _ -> Some (parse_pred_block c)
  in
  (i, status, pred)

let pop_to_string ~key ~method_ ~(tech : Tech.t) ~arc ~budget ~min_points
    ~train_cost (entries : pop_entry array) =
  let b = Buffer.create 8192 in
  Printf.bprintf b "slc-pop %d\n" format_version;
  Printf.bprintf b "key %s\n" key;
  Printf.bprintf b "method %s\n" (Statistical.method_label method_);
  Printf.bprintf b "tech %s\n" tech.name;
  Printf.bprintf b "arc %s\n" (Arc.name arc);
  Printf.bprintf b "budget %d\n" budget;
  Printf.bprintf b "min_points %d\n" min_points;
  Printf.bprintf b "nseeds %d\n" (Array.length entries);
  Printf.bprintf b "train_cost %d\n" train_cost;
  Array.iteri (fun i e -> entry_to_buffer b i e) entries;
  Buffer.add_string b "end\n";
  Buffer.contents b

let load_population_exn ~key ~method_ ~tech ~arc ~seeds path =
  let c = cursor_of_string (read_file path) in
  (match fields (next c) with
  | [ "slc-pop"; v ] ->
    let v = int_of v in
    if v <> format_version then
      Err.raise_store_failed ~path ~kind:Err.Store_version_mismatch
        (Printf.sprintf "population artifact is format %d; this build speaks %d"
           v format_version)
  | _ -> fail "bad population header (want: slc-pop 1)");
  (match fields (next c) with
  | [ "key"; k ] ->
    if not (String.equal k key) then
      Err.raise_store_failed ~path ~kind:Err.Store_key_mismatch
        (Printf.sprintf "artifact embeds key %s but was found under key %s" k key)
  | _ -> fail "missing key line");
  (* The method/tech/arc/budget/min_points lines are informational for
     humans poking at the store; the key already pins their content. *)
  let expect name =
    match fields (next c) with
    | k :: rest when String.equal k name -> rest
    | _ -> fail ("expected " ^ name)
  in
  ignore (expect "method");
  ignore (expect "tech");
  ignore (expect "arc");
  ignore (expect "budget");
  ignore (expect "min_points");
  let n =
    match expect "nseeds" with [ n ] -> int_of n | _ -> fail "bad nseeds"
  in
  if n <> Array.length seeds then
    fail
      (Printf.sprintf "artifact holds %d seeds; caller supplied %d" n
         (Array.length seeds));
  let train_cost =
    match expect "train_cost" with
    | [ n ] -> int_of n
    | _ -> fail "bad train_cost"
  in
  let predictors = Array.make n None in
  let status = Array.make n Statistical.Seed_ok in
  for i = 0 to n - 1 do
    let j, st, pred = parse_entry c in
    if j <> i then fail (Printf.sprintf "entry %d out of order (expected %d)" j i);
    status.(i) <- st;
    predictors.(i) <- rebuild_pred ~tech ~arc ~seed:seeds.(i) pred
  done;
  (match fields (next c) with [ "end" ] -> () | _ -> fail "missing end");
  (match peek c with None -> () | Some l -> fail ("trailing garbage: " ^ l));
  Statistical.assemble ~method_ ~seeds ~predictors ~status ~train_cost

let load_population ~key ~method_ ~tech ~arc ~seeds path =
  try load_population_exn ~key ~method_ ~tech ~arc ~seeds path
  with Parse_error m -> corrupt path m

let ckpt_to_string ~key ~nseeds ~cost (entries : (int * pop_entry) list) =
  let b = Buffer.create 8192 in
  Printf.bprintf b "slc-pop-ckpt %d\n" format_version;
  Printf.bprintf b "key %s\n" key;
  Printf.bprintf b "nseeds %d\n" nseeds;
  Printf.bprintf b "cost %d\n" cost;
  Printf.bprintf b "ndone %d\n" (List.length entries);
  List.iter (fun (i, e) -> entry_to_buffer b i e) entries;
  Buffer.add_string b "end\n";
  Buffer.contents b

(* A checkpoint that cannot be read, or that belongs to a different key
   or seed set, only costs recompute — discard it silently. *)
let load_checkpoint ~key ~tech ~arc ~seeds path =
  if not (Sys.file_exists path) then None
  else
    try
      let c = cursor_of_string (read_file path) in
      (match fields (next c) with
      | [ "slc-pop-ckpt"; v ] when int_of v = format_version -> ()
      | _ -> fail "bad checkpoint header");
      (match fields (next c) with
      | [ "key"; k ] when String.equal k key -> ()
      | _ -> fail "checkpoint key mismatch");
      let n =
        match fields (next c) with
        | [ "nseeds"; n ] -> int_of n
        | _ -> fail "bad nseeds"
      in
      if n <> Array.length seeds then fail "seed count mismatch";
      let cost =
        match fields (next c) with
        | [ "cost"; n ] -> int_of n
        | _ -> fail "bad cost"
      in
      let ndone =
        match fields (next c) with
        | [ "ndone"; n ] -> int_of n
        | _ -> fail "bad ndone"
      in
      let entries = ref [] in
      for _ = 1 to ndone do
        let i, st, pred = parse_entry c in
        if i < 0 || i >= n then fail "entry index out of range";
        entries :=
          (i, { e_pred = rebuild_pred ~tech ~arc ~seed:seeds.(i) pred; e_status = st })
          :: !entries
      done;
      (match fields (next c) with [ "end" ] -> () | _ -> fail "missing end");
      Some (List.rev !entries, cost)
    with Parse_error _ | Sys_error _ -> None

(* ---------------------------------------------------------------- *)
(* Store-backed statistical extraction                              *)

type outcome =
  | Hit
  | Computed of { resumed_seeds : int; computed_seeds : int; batches : int }

let default_min_points = 2

let chunk size lst =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 lst

(* Checkpoint entries in seed order.  Iterating the index domain
   directly — rather than folding over the table and sorting — keeps
   the serialization trivially independent of Hashtbl's iteration
   order: the checkpoint bytes are part of the resume-equals-fresh
   contract, and the linter's determinism rule (R7) flags any
   [Hashtbl.fold] on such a path. *)
let sorted_entries ~n tbl =
  List.filter_map
    (fun i -> Option.map (fun e -> (i, e)) (Hashtbl.find_opt tbl i))
    (List.init n Fun.id)

let extract_population ?min_points ?(batch_size = 4)
    ?(after_batch = fun (_ : int) -> ()) ~store ~method_ ~design ~tech ~arc
    ~seeds ~budget () =
  if batch_size < 1 then
    Slc_obs.Slc_error.invalid_input ~site:"Store.extract_population" "batch_size must be >= 1";
  let min_points_v = Option.value min_points ~default:default_min_points in
  let key =
    population_key ~method_ ~design ~tech ~arc ~seeds ~budget
      ~min_points:min_points_v
  in
  let final = artifact_path store `Population key in
  if Sys.file_exists final then begin
    let pop = load_population ~key ~method_ ~tech ~arc ~seeds final in
    Tel.incr Tel.store_hits;
    (pop, Hit)
  end
  else begin
    Tel.incr Tel.store_misses;
    let ckpt = ckpt_path store key in
    let tbl = Hashtbl.create 64 in
    let cost = ref 0 in
    (match load_checkpoint ~key ~tech ~arc ~seeds ckpt with
    | Some (entries, c0) ->
      List.iter (fun (i, e) -> Hashtbl.replace tbl i e) entries;
      cost := c0;
      Tel.add Tel.store_resumed_seeds (List.length entries)
    | None -> ());
    let resumed = Hashtbl.length tbl in
    let n = Array.length seeds in
    let missing = List.filter (fun i -> not (Hashtbl.mem tbl i)) (List.init n Fun.id) in
    let nbatches = ref 0 in
    List.iter
      (fun batch ->
        let sub = Array.of_list (List.map (fun i -> seeds.(i)) batch) in
        let before = Harness.sim_count () in
        let sm =
          Statistical.extract_seed_models ~min_points:min_points_v ~design
            ~method_ ~tech ~arc ~seeds:sub ~budget ()
        in
        cost := !cost + (Harness.sim_count () - before);
        List.iteri
          (fun pos i ->
            Hashtbl.replace tbl i
              {
                e_pred = sm.Statistical.sm_predictors.(pos);
                e_status = sm.Statistical.sm_status.(pos);
              })
          batch;
        write_atomic ckpt (ckpt_to_string ~key ~nseeds:n ~cost:!cost (sorted_entries ~n tbl));
        Tel.incr Tel.store_checkpoints;
        incr nbatches;
        after_batch !nbatches)
      (chunk batch_size missing);
    let predictors = Array.init n (fun i -> (Hashtbl.find tbl i).e_pred) in
    let status = Array.init n (fun i -> (Hashtbl.find tbl i).e_status) in
    write_atomic final
      (pop_to_string ~key ~method_ ~tech ~arc ~budget ~min_points:min_points_v
         ~train_cost:!cost
         (Array.init n (fun i -> Hashtbl.find tbl i)));
    (try Sys.remove ckpt with Sys_error _ -> ());
    let pop =
      Statistical.assemble ~method_ ~seeds ~predictors ~status ~train_cost:!cost
    in
    ( pop,
      Computed
        {
          resumed_seeds = resumed;
          computed_seeds = List.length missing;
          batches = !nbatches;
        } )
  end

let find_population ~store ~method_ ~design ~tech ~arc ~seeds ~budget
    ~min_points =
  let key =
    population_key ~method_ ~design ~tech ~arc ~seeds ~budget ~min_points
  in
  let final = artifact_path store `Population key in
  if Sys.file_exists final then
    Some (load_population ~key ~method_ ~tech ~arc ~seeds final)
  else None
