module Vec = Slc_num.Vec
module Mat = Slc_num.Mat
module Linalg = Slc_num.Linalg

type t = { mu : Vec.t; cov : Mat.t; chol : Mat.t }

let make ~mu ~cov =
  let d = Vec.dim mu in
  if Mat.rows cov <> d || Mat.cols cov <> d then
    Slc_obs.Slc_error.invalid_input ~site:"Mvn.make" "dimension mismatch";
  let chol =
    try Linalg.cholesky cov
    with Linalg.Singular _ -> (
      (* Repair a borderline covariance with a tiny relative ridge. *)
      let tr = Float.max 1e-300 (Mat.trace cov /. float_of_int d) in
      let cov' = Mat.add_ridge (Mat.sym_part cov) (1e-9 *. tr) in
      try Linalg.cholesky cov'
      with Linalg.Singular _ ->
        Slc_obs.Slc_error.invalid_input ~site:"Mvn.make" "covariance not positive definite")
  in
  { mu; cov; chol }

let dim t = Vec.dim t.mu

let sample t rng =
  let d = dim t in
  let z = Vec.init d (fun _ -> Dist.standard_gaussian rng) in
  Vec.add t.mu (Mat.mul_vec t.chol z)

let sample_n t rng n = Array.init n (fun _ -> sample t rng)

let mahalanobis2 t x =
  let c = Vec.sub x t.mu in
  let y = Linalg.lower_solve t.chol c in
  Vec.dot y y

let logpdf t x =
  let d = float_of_int (dim t) in
  let log_det = 2.0 *. Array.fold_left ( +. ) 0.0
                  (Array.init (dim t) (fun i -> log (Mat.get t.chol i i)))
  in
  -0.5 *. ((d *. log (2.0 *. Float.pi)) +. log_det +. mahalanobis2 t x)

let of_samples ?(ridge_rel = 1e-6) rows =
  let mu = Describe.mean_vector rows in
  let cov = Describe.covariance_matrix rows in
  let d = Vec.dim mu in
  let tr = Float.max 1e-300 (Mat.trace cov /. float_of_int d) in
  make ~mu ~cov:(Mat.add_ridge cov (ridge_rel *. tr))

let marginal t idx =
  let mu = Array.map (fun i -> t.mu.(i)) idx in
  let cov =
    Mat.init (Array.length idx) (Array.length idx) (fun a b ->
        Mat.get t.cov idx.(a) idx.(b))
  in
  make ~mu ~cov
