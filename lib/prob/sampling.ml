module Vec = Slc_num.Vec

type box = (float * float) array

let check_box box =
  Array.iter
    (fun (lo, hi) ->
      if lo >= hi then Slc_obs.Slc_error.invalid_input ~site:"Sampling" "degenerate box dimension")
    box

let scale_unit box u =
  if Array.length box <> Array.length u then
    Slc_obs.Slc_error.invalid_input ~site:"Sampling.scale_unit" "dimension mismatch";
  Array.mapi
    (fun d x ->
      let lo, hi = box.(d) in
      lo +. (x *. (hi -. lo)))
    u

let to_unit box p =
  if Array.length box <> Array.length p then
    Slc_obs.Slc_error.invalid_input ~site:"Sampling.to_unit" "dimension mismatch";
  Array.mapi
    (fun d x ->
      let lo, hi = box.(d) in
      (x -. lo) /. (hi -. lo))
    p

let random_box rng box n =
  check_box box;
  Array.init n (fun _ ->
      Array.map (fun (lo, hi) -> Rng.uniform rng ~lo ~hi) box)

let latin_hypercube rng box n =
  check_box box;
  if n < 1 then Slc_obs.Slc_error.invalid_input ~site:"Sampling.latin_hypercube" "n must be >= 1";
  let d = Array.length box in
  (* For each dimension, a shuffled assignment of strata to points. *)
  let strata =
    Array.init d (fun _ ->
        let idx = Array.init n (fun i -> i) in
        Rng.shuffle rng idx;
        idx)
  in
  Array.init n (fun p ->
      Vec.init d (fun dim ->
          let stratum = strata.(dim).(p) in
          let u = (float_of_int stratum +. Rng.float rng) /. float_of_int n in
          let lo, hi = box.(dim) in
          lo +. (u *. (hi -. lo))))

let primes = [| 2; 3; 5; 7; 11; 13; 17; 19 |]

let radical_inverse base i =
  let fb = 1.0 /. float_of_int base in
  let rec go i f acc =
    if i = 0 then acc
    else go (i / base) (f *. fb) (acc +. (float_of_int (i mod base) *. f))
  in
  go i fb 0.0

let halton box n =
  check_box box;
  let d = Array.length box in
  if d > Array.length primes then
    Slc_obs.Slc_error.invalid_input ~site:"Sampling.halton" "supports at most 8 dimensions";
  Array.init n (fun p ->
      let u = Vec.init d (fun dim -> radical_inverse primes.(dim) (p + 1)) in
      scale_unit box u)

let full_factorial box ~levels =
  check_box box;
  let d = Array.length box in
  if Array.length levels <> d then
    Slc_obs.Slc_error.invalid_input ~site:"Sampling.full_factorial" "levels/box mismatch";
  Array.iter
    (fun l -> if l < 1 then Slc_obs.Slc_error.invalid_input ~site:"Sampling.full_factorial" "level < 1")
    levels;
  let total = Array.fold_left ( * ) 1 levels in
  let coord dim i =
    let lo, hi = box.(dim) in
    let l = levels.(dim) in
    if l = 1 then 0.5 *. (lo +. hi)
    else lo +. (float_of_int i *. (hi -. lo) /. float_of_int (l - 1))
  in
  Array.init total (fun idx ->
      let rec digits dim idx acc =
        if dim < 0 then acc
        else digits (dim - 1) (idx / levels.(dim)) ((idx mod levels.(dim)) :: acc)
      in
      let ds = Array.of_list (digits (d - 1) idx []) in
      Vec.init d (fun dim -> coord dim ds.(dim)))

let center_and_corners box =
  check_box box;
  let d = Array.length box in
  let center = Array.map (fun (lo, hi) -> 0.5 *. (lo +. hi)) box in
  let corners =
    Array.init (1 lsl d) (fun mask ->
        Vec.init d (fun dim ->
            let lo, hi = box.(dim) in
            if mask land (1 lsl dim) <> 0 then hi else lo))
  in
  Array.append [| center |] corners
