let ks_two_sample xs ys =
  let nx = Array.length xs and ny = Array.length ys in
  if nx = 0 || ny = 0 then Slc_obs.Slc_error.invalid_input ~site:"Stattest.ks_two_sample" "empty sample";
  let sx = Array.copy xs and sy = Array.copy ys in
  Array.sort compare sx;
  Array.sort compare sy;
  let rec go i j best =
    if i >= nx || j >= ny then best
    else begin
      let xi = sx.(i) and yj = sy.(j) in
      let i', j' =
        if xi < yj then (i + 1, j)
        else if yj < xi then (i, j + 1)
        else (i + 1, j + 1)
      in
      let d =
        Float.abs
          ((float_of_int i' /. float_of_int nx)
          -. (float_of_int j' /. float_of_int ny))
      in
      go i' j' (Float.max best d)
    end
  in
  go 0 0 0.0

let ks_against_cdf xs cdf =
  let n = Array.length xs in
  if n = 0 then Slc_obs.Slc_error.invalid_input ~site:"Stattest.ks_against_cdf" "empty sample";
  let s = Array.copy xs in
  Array.sort compare s;
  let best = ref 0.0 in
  for i = 0 to n - 1 do
    let c = cdf s.(i) in
    let lo = float_of_int i /. float_of_int n in
    let hi = float_of_int (i + 1) /. float_of_int n in
    best := Float.max !best (Float.max (Float.abs (c -. lo)) (Float.abs (hi -. c)))
  done;
  !best

let total_variation_binned ~bins xs ys =
  if Array.length xs = 0 || Array.length ys = 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Stattest.total_variation_binned" "empty sample";
  let lo1, hi1 = Describe.min_max xs and lo2, hi2 = Describe.min_max ys in
  let lo = Float.min lo1 lo2 and hi = Float.max hi1 hi2 in
  let hi = if hi > lo then hi else lo +. 1.0 in
  let hx = Histogram.build_range ~bins ~lo ~hi xs in
  let hy = Histogram.build_range ~bins ~lo ~hi ys in
  let nx = float_of_int hx.Histogram.total
  and ny = float_of_int hy.Histogram.total in
  let acc = ref 0.0 in
  for b = 0 to bins - 1 do
    acc :=
      !acc
      +. Float.abs
           ((float_of_int hx.Histogram.counts.(b) /. nx)
           -. (float_of_int hy.Histogram.counts.(b) /. ny))
  done;
  0.5 *. !acc
