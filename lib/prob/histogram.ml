type t = { lo : float; hi : float; counts : int array; total : int }

let build_range ~bins ~lo ~hi xs =
  if bins < 1 then Slc_obs.Slc_error.invalid_input ~site:"Histogram.build_range" "bins must be >= 1";
  if lo >= hi then Slc_obs.Slc_error.invalid_input ~site:"Histogram.build_range" "empty range";
  let counts = Array.make bins 0 in
  let w = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      if x >= lo && x <= hi then begin
        let b = int_of_float ((x -. lo) /. w) in
        let b = if b >= bins then bins - 1 else b in
        counts.(b) <- counts.(b) + 1
      end)
    xs;
  { lo; hi; counts; total = Array.length xs }

let build ?(bins = 30) xs =
  if Array.length xs = 0 then Slc_obs.Slc_error.invalid_input ~site:"Histogram.build" "empty sample";
  let lo, hi = Describe.min_max xs in
  let hi = if hi > lo then hi else lo +. 1.0 in
  build_range ~bins ~lo ~hi xs

let bin_width h = (h.hi -. h.lo) /. float_of_int (Array.length h.counts)

let centers h =
  let w = bin_width h in
  Array.init (Array.length h.counts) (fun i ->
      h.lo +. ((float_of_int i +. 0.5) *. w))

let density h =
  let w = bin_width h in
  let n = float_of_int h.total in
  Array.map (fun c -> float_of_int c /. (n *. w)) h.counts

let count_in h x =
  if x < h.lo || x > h.hi then 0
  else begin
    let w = bin_width h in
    let b = int_of_float ((x -. h.lo) /. w) in
    let b = if b >= Array.length h.counts then Array.length h.counts - 1 else b in
    h.counts.(b)
  end
