let mean xs =
  if Array.length xs = 0 then Slc_obs.Slc_error.invalid_input ~site:"Describe.mean" "empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then Slc_obs.Slc_error.invalid_input ~site:"Describe.variance" "need >= 2 samples";
  let m = mean xs in
  let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs in
  acc /. float_of_int (n - 1)

let std xs = sqrt (variance xs)

let central_moment xs k =
  let m = mean xs in
  Array.fold_left (fun a x -> a +. ((x -. m) ** float_of_int k)) 0.0 xs
  /. float_of_int (Array.length xs)

let skewness xs =
  let n = Array.length xs in
  if n < 3 then Slc_obs.Slc_error.invalid_input ~site:"Describe.skewness" "need >= 3 samples";
  let m2 = central_moment xs 2 and m3 = central_moment xs 3 in
  let g1 = m3 /. (m2 ** 1.5) in
  let nf = float_of_int n in
  g1 *. sqrt (nf *. (nf -. 1.0)) /. (nf -. 2.0)

let kurtosis_excess xs =
  let n = Array.length xs in
  if n < 4 then Slc_obs.Slc_error.invalid_input ~site:"Describe.kurtosis_excess" "need >= 4 samples";
  let m2 = central_moment xs 2 and m4 = central_moment xs 4 in
  (m4 /. (m2 *. m2)) -. 3.0

let quantile xs p =
  if Array.length xs = 0 then Slc_obs.Slc_error.invalid_input ~site:"Describe.quantile" "empty sample";
  if p < 0.0 || p > 1.0 then Slc_obs.Slc_error.invalid_input ~site:"Describe.quantile" "p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let h = p *. float_of_int (n - 1) in
  let i = int_of_float (Float.floor h) in
  if i >= n - 1 then sorted.(n - 1)
  else begin
    let frac = h -. float_of_int i in
    ((1.0 -. frac) *. sorted.(i)) +. (frac *. sorted.(i + 1))
  end

let median xs = quantile xs 0.5

let min_max xs =
  if Array.length xs = 0 then Slc_obs.Slc_error.invalid_input ~site:"Describe.min_max" "empty sample";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let covariance xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then Slc_obs.Slc_error.invalid_input ~site:"Describe.covariance" "length mismatch";
  if n < 2 then Slc_obs.Slc_error.invalid_input ~site:"Describe.covariance" "need >= 2 samples";
  let mx = mean xs and my = mean ys in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. ((xs.(i) -. mx) *. (ys.(i) -. my))
  done;
  !acc /. float_of_int (n - 1)

let correlation xs ys = covariance xs ys /. (std xs *. std ys)

let mean_vector rows =
  if Array.length rows = 0 then Slc_obs.Slc_error.invalid_input ~site:"Describe.mean_vector" "empty";
  let d = Array.length rows.(0) in
  let m = Slc_num.Vec.create d in
  Array.iter
    (fun r ->
      if Array.length r <> d then
        Slc_obs.Slc_error.invalid_input ~site:"Describe.mean_vector" "ragged rows";
      Slc_num.Vec.axpy 1.0 r m)
    rows;
  Slc_num.Vec.scale (1.0 /. float_of_int (Array.length rows)) m

let covariance_matrix rows =
  let n = Array.length rows in
  if n < 2 then Slc_obs.Slc_error.invalid_input ~site:"Describe.covariance_matrix" "need >= 2 samples";
  let d = Array.length rows.(0) in
  let mu = mean_vector rows in
  let cov = Slc_num.Mat.create d d in
  Array.iter
    (fun r ->
      let c = Slc_num.Vec.sub r mu in
      for i = 0 to d - 1 do
        for j = 0 to d - 1 do
          Slc_num.Mat.set cov i j (Slc_num.Mat.get cov i j +. (c.(i) *. c.(j)))
        done
      done)
    rows;
  Slc_num.Mat.scale (1.0 /. float_of_int (n - 1)) cov
