type t = {
  samples : float array; (* sorted ascending *)
  h : float;
  inv_h : float;
  pdf_norm : float; (* 1 / (n h sqrt(2 pi)) *)
}

(* Gaussian kernel terms beyond 8 bandwidths are below exp(-32) ~ 1.3e-14
   of the peak; dropping them perturbs the density far less than 1e-12
   relatively on any grid that overlaps the data (the fig9 grids span
   the sample range +- 3 bandwidths).  The CDF is less forgiving on the
   high side — a sample far above x still contributes Phi(-z), and at a
   grid point where the CDF itself is ~1e-5 those tails matter — so the
   upper CDF cutoff is wider; below x - 8h a sample just counts as 1
   (error Phi(-8) ~ 6e-16, relative to a kept mass of at least 1). *)
let pdf_cutoff = 8.0

let cdf_cutoff_hi = 13.0

let silverman_bandwidth xs =
  let n = Array.length xs in
  if n < 2 then Slc_obs.Slc_error.invalid_input ~site:"Kde.silverman_bandwidth" "need >= 2 samples";
  let s = Describe.std xs in
  let iqr = Describe.quantile xs 0.75 -. Describe.quantile xs 0.25 in
  let spread =
    if iqr > 0.0 then Float.min s (iqr /. 1.34)
    else if s > 0.0 then s
    else 1e-12
  in
  0.9 *. spread *. (float_of_int n ** (-0.2))

let fit ?bandwidth xs =
  if Array.length xs < 2 then Slc_obs.Slc_error.invalid_input ~site:"Kde.fit" "need >= 2 samples";
  let h =
    match bandwidth with
    | Some h when h > 0.0 -> h
    | Some _ -> Slc_obs.Slc_error.invalid_input ~site:"Kde.fit" "bandwidth must be > 0"
    | None -> silverman_bandwidth xs
  in
  let samples = Array.copy xs in
  Array.sort Float.compare samples;
  let n = float_of_int (Array.length samples) in
  {
    samples;
    h;
    inv_h = 1.0 /. h;
    pdf_norm = 1.0 /. (n *. h *. sqrt (2.0 *. Float.pi));
  }

let bandwidth t = t.h

(* First index whose sample is >= x (the window's left edge). *)
let lower_bound a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let pdf_window t x ~lo ~hi =
  let acc = ref 0.0 in
  for i = lo to hi - 1 do
    let z = (x -. t.samples.(i)) *. t.inv_h in
    acc := !acc +. exp (-0.5 *. z *. z)
  done;
  !acc *. t.pdf_norm

let pdf t x =
  let cut = pdf_cutoff *. t.h in
  let lo = lower_bound t.samples (x -. cut) in
  let n = Array.length t.samples in
  let hi_x = x +. cut in
  let hi = ref lo in
  while !hi < n && t.samples.(!hi) <= hi_x do
    incr hi
  done;
  pdf_window t x ~lo ~hi:!hi

let cdf t x =
  let n = Array.length t.samples in
  let lo = lower_bound t.samples (x -. (pdf_cutoff *. t.h)) in
  let hi_x = x +. (cdf_cutoff_hi *. t.h) in
  (* Samples below the window are saturated kernels: each contributes
     exactly 1/n. *)
  let acc = ref (float_of_int lo) in
  let i = ref lo in
  while !i < n && t.samples.(!i) <= hi_x do
    acc := !acc +. Slc_num.Special.normal_cdf ((x -. t.samples.(!i)) *. t.inv_h);
    incr i
  done;
  !acc /. float_of_int n

let is_ascending xs =
  let ok = ref true in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) < xs.(i - 1) then ok := false
  done;
  !ok

let evaluate t xs =
  if not (is_ascending xs) then Array.map (pdf t) xs
  else begin
    (* Single pass: for an ascending grid the +-8h window only moves
       right, so the two window edges advance monotonically instead of
       being re-searched per point.  The inner summation is the same as
       [pdf]'s, so both paths agree bitwise. *)
    let n = Array.length t.samples in
    let cut = pdf_cutoff *. t.h in
    let lo = ref 0 and hi = ref 0 in
    Array.map
      (fun x ->
        let lo_x = x -. cut and hi_x = x +. cut in
        while !lo < n && t.samples.(!lo) < lo_x do
          incr lo
        done;
        if !hi < !lo then hi := !lo;
        while !hi < n && t.samples.(!hi) <= hi_x do
          incr hi
        done;
        pdf_window t x ~lo:!lo ~hi:!hi)
      xs
  end

let grid t ?(pad = 3.0) n =
  let lo, hi = Describe.min_max t.samples in
  Slc_num.Vec.linspace (lo -. (pad *. t.h)) (hi +. (pad *. t.h)) n
