type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used only to expand the user seed into the xoshiro state. *)
let splitmix_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let copy r = { s0 = r.s0; s1 = r.s1; s2 = r.s2; s3 = r.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let uint64 r =
  let result = Int64.add (rotl (Int64.add r.s0 r.s3) 23) r.s0 in
  let t = Int64.shift_left r.s1 17 in
  r.s2 <- Int64.logxor r.s2 r.s0;
  r.s3 <- Int64.logxor r.s3 r.s1;
  r.s1 <- Int64.logxor r.s1 r.s2;
  r.s0 <- Int64.logxor r.s0 r.s3;
  r.s2 <- Int64.logxor r.s2 t;
  r.s3 <- rotl r.s3 45;
  result

let split r =
  let state = ref (uint64 r) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let split_ix r ix =
  (* Pure derivation: fold the parent state and the index through
     splitmix64 without touching the parent, so the child for a given
     (parent state, ix) pair is the same no matter how many other
     children were derived or in what order — the property that makes
     per-seed sub-streams independent of work scheduling. *)
  let mix = splitmix_next (ref (Int64.of_int ix)) in
  let state =
    ref
      (Int64.logxor mix
         (Int64.logxor
            (Int64.logxor r.s0 (rotl r.s1 13))
            (Int64.logxor (rotl r.s2 29) (rotl r.s3 43))))
  in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let save r = Printf.sprintf "%Lx %Lx %Lx %Lx" r.s0 r.s1 r.s2 r.s3

let restore s =
  match
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun f -> f <> "")
    |> List.map (fun f -> Int64.of_string_opt ("0x" ^ f))
  with
  | [ Some s0; Some s1; Some s2; Some s3 ] -> { s0; s1; s2; s3 }
  | _ ->
    Slc_obs.Slc_error.invalid_input ~site:"Rng.restore"
      (Printf.sprintf "malformed state %S" s)

let float r =
  (* Top 53 bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (uint64 r) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform r ~lo ~hi = lo +. ((hi -. lo) *. float r)

let int r n =
  if n <= 0 then Slc_obs.Slc_error.invalid_input ~site:"Rng.int" "n must be > 0";
  (* Modulo of a 63-bit draw: the bias is below n/2^63, irrelevant for
     the shuffle/stratification uses in this project. *)
  let x = Int64.shift_right_logical (uint64 r) 1 in
  Int64.to_int (Int64.rem x (Int64.of_int n))

let shuffle r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done
