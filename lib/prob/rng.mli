(** Deterministic pseudo-random number generation.

    xoshiro256++ seeded through splitmix64.  Every stochastic routine in
    this project takes an explicit [Rng.t] so that all experiments are
    reproducible from a single integer seed. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed (any value,
    including 0, is fine — the state is expanded through splitmix64). *)

val copy : t -> t

val split : t -> t
(** [split rng] derives an independent generator and advances [rng];
    useful to hand sub-streams to sub-experiments. *)

val split_ix : t -> int -> t
(** [split_ix rng ix] derives the independent sub-generator number
    [ix] from [rng]'s current state {e without} advancing [rng]: the
    result depends only on (state, [ix]).  This is the scheduling-proof
    way to give each work item of a parallel map its own stream —
    results stay bitwise identical for any domain count or claim
    order. *)

val save : t -> string
(** The full generator state as text (four hex limbs) — the exact
    point in the stream, not the original integer seed.  Persisting it
    lets a resumed process rebuild the generator {e as it was}, which
    is what makes checkpoint/resume of randomized designs
    deterministic: the artifact store keys random fitting designs by
    this state, so a resume with the same generator reproduces the
    same designs bit for bit. *)

val restore : string -> t
(** Inverse of {!save}; raises [Invalid_argument] on malformed
    input. *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1) with 53-bit resolution. *)

val uniform : t -> lo:float -> hi:float -> float

val int : t -> int -> int
(** [int rng n] is uniform in [0, n-1]; requires [n > 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
