let rec standard_gaussian rng =
  (* Marsaglia polar method (no per-generator cache, so generators stay
     freely copyable). *)
  let u = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
  let v = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then standard_gaussian rng
  else u *. sqrt (-2.0 *. log s /. s)

let gaussian rng ~mu ~sigma = mu +. (sigma *. standard_gaussian rng)

let gaussian_pdf ~mu ~sigma x = Slc_num.Special.normal_pdf ~mu ~sigma x

let gaussian_cdf ~mu ~sigma x = Slc_num.Special.normal_cdf ~mu ~sigma x

let gaussian_quantile ~mu ~sigma p = Slc_num.Special.normal_quantile ~mu ~sigma p

let lognormal rng ~mu ~sigma = exp (gaussian rng ~mu ~sigma)

let truncated_gaussian rng ~mu ~sigma ~lo ~hi =
  if lo >= hi then Slc_obs.Slc_error.invalid_input ~site:"Dist.truncated_gaussian" "empty interval";
  let rec draw attempts =
    if attempts > 10_000 then
      (* The interval carries almost no mass; fall back to clamping. *)
      Float.min hi (Float.max lo mu)
    else
      let x = gaussian rng ~mu ~sigma in
      if x >= lo && x <= hi then x else draw (attempts + 1)
  in
  draw 0

let uniform = Rng.uniform

let exponential rng ~rate =
  if rate <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Dist.exponential" "rate must be > 0";
  -.log (1.0 -. Rng.float rng) /. rate
