let[@slc.domain_safe "boolean toggle; racy reads only skip or count an event"]
    enabled =
  ref
    (match Sys.getenv_opt "SLC_TELEMETRY" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let on () = !enabled

let enable () = enabled := true

let disable () = enabled := false

type counter = { c_name : string; c_cell : int Atomic.t }

(* All counters and spans are created at module-initialization time, so
   the registries need no locking. *)
let[@slc.domain_safe "written only at module-initialization time"] counters :
    counter list ref =
  ref []

let make_counter name =
  let c = { c_name = name; c_cell = Atomic.make 0 } in
  counters := c :: !counters;
  c

let incr c = if !enabled then Atomic.incr c.c_cell

let add c n = if !enabled then ignore (Atomic.fetch_and_add c.c_cell n : int)

let read c = Atomic.get c.c_cell

let counter_name c = c.c_name

let simulations = make_counter "simulations"

let sim_retries = make_counter "sim_retries"

let sim_failures = make_counter "sim_failures"

let newton_iters = make_counter "newton_iters"

let newton_rejects = make_counter "newton_rejects"

let transient_steps = make_counter "transient_steps"

let recovery_attempts = make_counter "recovery_attempts"

let recovery_rescues = make_counter "recovery_rescues"

let degraded_runs = make_counter "degraded_runs"

let dc_gmin_fallbacks = make_counter "dc_gmin_fallbacks"

let dc_source_fallbacks = make_counter "dc_source_fallbacks"

let lm_iters = make_counter "lm_iters"

let lm_non_finite = make_counter "lm_non_finite"

let template_hits = make_counter "template_hits"

let template_misses = make_counter "template_misses"

let oracle_hits = make_counter "oracle_hits"

let oracle_misses = make_counter "oracle_misses"

let trained_hits = make_counter "trained_hits"

let trained_misses = make_counter "trained_misses"

let pool_chunks = make_counter "pool_chunks"

let store_hits = make_counter "store_hits"

let store_misses = make_counter "store_misses"

let store_checkpoints = make_counter "store_checkpoints"

let store_resumed_seeds = make_counter "store_resumed_seeds"

let degraded_seeds = make_counter "degraded_seeds"

let failed_seeds = make_counter "failed_seeds"

let gpr_fallbacks = make_counter "gpr_fallbacks"

let server_connections = make_counter "server_connections"

let server_requests = make_counter "server_requests"

let server_errors = make_counter "server_errors"

(* Spans accumulate wall time in nanoseconds so the accumulator can be
   a lock-free integer. *)
type span = { s_name : string; s_count : int Atomic.t; s_ns : int Atomic.t }

let[@slc.domain_safe "written only at module-initialization time"] spans :
    span list ref =
  ref []

let make_span name =
  let s = { s_name = name; s_count = Atomic.make 0; s_ns = Atomic.make 0 } in
  spans := s :: !spans;
  s

let span_simulate = make_span "harness.simulate"

let span_fit = make_span "statistical.fit"

let span_extract = make_span "statistical.extract_population"

let span_baseline = make_span "statistical.monte_carlo_baseline"

let[@slc.det_ok
     "wall-clock readings feed the span accumulators only, never a \
      characterization result; the instrumented computation's value is \
      returned unchanged (the CI telemetry run re-asserts bitwise \
      equality with spans live)"] with_span s f =
  if not !enabled then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
        Atomic.incr s.s_count;
        ignore (Atomic.fetch_and_add s.s_ns ns : int))
      f
  end

let reset () =
  List.iter (fun c -> Atomic.set c.c_cell 0) !counters;
  List.iter
    (fun s ->
      Atomic.set s.s_count 0;
      Atomic.set s.s_ns 0)
    !spans

let in_creation_order l = List.rev !l

(* Per-name counter readings at one instant — the unit the server diffs
   per connection.  Stored in creation order, like every dump. *)
type snapshot = (string * int) list

let snapshot () =
  List.map (fun c -> (c.c_name, read c)) (in_creation_order counters)

let diff ~before ~after =
  List.map
    (fun (name, v1) ->
      let v0 = Option.value ~default:0 (List.assoc_opt name before) in
      (name, v1 - v0))
    after

let snapshot_value snap name = Option.value ~default:0 (List.assoc_opt name snap)

(* Emit ["key": payload] members separated by ",\n": tracking "is a
   previous member pending?" instead of "is this the last index?" needs
   no length precomputation and no per-element [List.length] (the old
   [iteri] recomputed the length for every element — quadratic in the
   counter count). *)
let add_members b items add_one =
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string b ",\n";
      add_one x)
    items;
  if items <> [] then Buffer.add_char b '\n'

let dump_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"enabled\": %b,\n  \"counters\": {\n" !enabled);
  add_members b (in_creation_order counters) (fun c ->
      Buffer.add_string b (Printf.sprintf "    \"%s\": %d" c.c_name (read c)));
  Buffer.add_string b "  },\n  \"spans\": {\n";
  add_members b (in_creation_order spans) (fun s ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": { \"count\": %d, \"seconds\": %.6f }"
           s.s_name (Atomic.get s.s_count)
           (float_of_int (Atomic.get s.s_ns) /. 1e9)));
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let report ppf =
  Format.fprintf ppf "telemetry (%s):@."
    (if !enabled then "enabled" else "disabled");
  List.iter
    (fun c ->
      let v = read c in
      if v <> 0 then Format.fprintf ppf "  %-24s %d@." c.c_name v)
    (in_creation_order counters);
  List.iter
    (fun s ->
      let n = Atomic.get s.s_count in
      if n <> 0 then
        Format.fprintf ppf "  %-24s %d calls, %.3f s@." s.s_name n
          (float_of_int (Atomic.get s.s_ns) /. 1e9))
    (in_creation_order spans)
