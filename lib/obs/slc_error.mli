(** Structured error taxonomy for the characterization pipeline.

    The simulator and harness used to abort with bare-string exceptions
    ([No_convergence "run: step size underflow"]) that carried nothing a
    caller could act on.  The exceptions here are typed values: every
    convergence failure records where the solver was (phase, simulated
    time, step size, Newton iteration, residual norm), which recovery
    rungs were attempted, and — once the harness has annotated it — the
    full characterization context (arc, technology, process seed,
    ξ-point).

    This module sits below [Slc_num] and therefore cannot mention arcs
    or technologies by type; context fields are plain names and
    numbers, filled in by the layer that knows them. *)

type context = {
  arc : string option;   (** timing-arc name, e.g. "NOR2/A/fall" *)
  tech : string option;  (** technology node name, e.g. "n28" *)
  seed : int option;     (** process-seed index; [None] = nominal *)
  point : (float * float * float) option;
      (** input condition ξ = (Sin s, Cload F, Vdd V) *)
}

val no_context : context
(** All fields [None]; the raw solver raises with this and the harness
    re-raises with the fields filled in. *)

val pp_context : Format.formatter -> context -> unit

(** {2 Precondition violations}

    The typed replacement for the bare [Invalid_argument]/[Failure]
    raises that used to pepper the domain layers.  [iv_site] is the
    "Module.function" the caller misused, [iv_detail] the specific
    precondition.  Raised with an empty context; the harness layer fills
    it in through {!with_context} when the violation surfaces from
    inside a characterization run.  The [slc_lint] R1 rule forbids new
    raw raises outside [lib/num]; see [docs/lint.md]. *)

type invalid = { iv_site : string; iv_detail : string; iv_context : context }

exception Invalid_input of invalid

val invalid : site:string -> string -> invalid
(** Build an {!invalid} payload with {!no_context} — handy for tests
    asserting on the exact exception value. *)

val invalid_input : site:string -> string -> 'a
(** [invalid_input ~site detail] raises {!Invalid_input} with
    {!no_context}. *)

val invalid_message : invalid -> string

type phase =
  | Dc_operating_point  (** initial DC solve *)
  | Dc_sweep            (** transfer-curve sweep point *)
  | Transient_step      (** time-stepping loop *)

val phase_label : phase -> string

type convergence = {
  phase : phase;
  time_reached : float;  (** last accepted simulation time, s *)
  dt : float;            (** step size at the failure, s (0 for DC) *)
  newton_iters : int;    (** Newton iterations of the failing attempt *)
  residual : float;      (** residual inf-norm at the last iterate, A *)
  recovery : string list;
      (** escalation-ladder rungs attempted before giving up, in
          order; [[]] means the failure was raised before recovery *)
  detail : string;       (** human-readable failure site *)
  context : context;
}

exception No_convergence of convergence
(** A Newton/transient solve failed after every applicable recovery
    rung.  Replaces the old [Transient.No_convergence of string]. *)

val convergence_message : convergence -> string
(** One-line rendering with every diagnostic field, for logs. *)

type sim_failure = {
  sf_detail : string;    (** what the harness was trying to measure *)
  sf_retries : int;      (** window-extension retries performed *)
  sf_window : float;     (** last measurement window tried, s *)
  sf_cause : convergence option;
      (** present when the failure was a solver non-convergence rather
          than an uncapturable edge *)
  sf_context : context;
}

exception Simulation_failed of sim_failure
(** The harness could not produce a measurement: either the output edge
    was never captured within the retry budget, or the solver failed.
    Replaces the old [Harness.Simulation_failed of string]. *)

val sim_failure_message : sim_failure -> string

val raise_no_convergence :
  ?recovery:string list ->
  phase:phase ->
  time_reached:float ->
  dt:float ->
  newton_iters:int ->
  residual:float ->
  string ->
  'a
(** Raise {!No_convergence} with {!no_context} (context is attached by
    the harness layer). *)

val with_context : context -> (unit -> 'a) -> 'a
(** Runs the thunk; if it raises {!No_convergence} or
    {!Simulation_failed} with an empty context, re-raises the same
    failure with the given context attached.  A non-empty context is
    left untouched (the innermost annotation wins). *)

(** {2 Artifact-store faults}

    The persistent characterization store ([Slc_store]) raises typed
    faults instead of leaking raw parse exceptions: callers can tell a
    store written by an incompatible code version apart from on-disk
    corruption or from being handed a directory that is not a store at
    all. *)

type store_fault_kind =
  | Store_version_mismatch
      (** the directory (or an artifact in it) declares an on-disk
          format version this build does not speak *)
  | Store_corrupt
      (** an artifact exists but cannot be parsed — truncated, hand-
          edited, or damaged.  Checkpoints are exempt: an unreadable
          checkpoint is silently discarded (it only costs recompute),
          a final artifact is not (it silently loses paid-for work) *)
  | Store_key_mismatch
      (** an artifact's embedded key disagrees with the path it was
          found under — the store was manually rearranged *)

val store_fault_kind_label : store_fault_kind -> string

type store_fault = {
  st_path : string;   (** offending file or directory *)
  st_kind : store_fault_kind;
  st_detail : string; (** human-readable specifics *)
}

exception Store_failed of store_fault

val store_fault_message : store_fault -> string

val raise_store_failed :
  path:string -> kind:store_fault_kind -> string -> 'a
