(** Process-wide pipeline telemetry: atomic counters and phase spans.

    Disabled by default; enabled when the [SLC_TELEMETRY] environment
    variable is set to anything other than ["0"] or [""], or by calling
    {!enable}.  While disabled every instrumentation call is a single
    boolean load — the hot paths (Newton loop, LM damping schedule) are
    additionally instrumented only at attempt granularity, so the
    [BENCH_*.json] kernels are unaffected either way.

    Counters may be bumped concurrently from worker domains (they are
    [Atomic.t]); spans accumulate wall-clock time and are intended for
    the single-threaded orchestration layer. *)

type counter

val on : unit -> bool
(** Is collection currently enabled? *)

val enable : unit -> unit

val disable : unit -> unit

val incr : counter -> unit
(** No-op while disabled. *)

val add : counter -> int -> unit
(** No-op while disabled. *)

val read : counter -> int

val counter_name : counter -> string

(** {2 Pipeline counters}

    One per observable event class; keep names stable — they are the
    keys of the telemetry JSON. *)

val simulations : counter
(** Transient simulator runs. *)

val sim_retries : counter
(** Measurement-window retries. *)

val sim_failures : counter
(** Simulations that raised after recovery. *)

val newton_iters : counter
(** Newton iterations, all solves. *)

val newton_rejects : counter
(** Failed Newton attempts (step rejected). *)

val transient_steps : counter
(** Accepted time steps. *)

val recovery_attempts : counter
(** Escalation-ladder rungs tried. *)

val recovery_rescues : counter
(** Runs saved by a ladder rung. *)

val degraded_runs : counter
(** Runs completed with a degraded flag. *)

val dc_gmin_fallbacks : counter
(** DC solves that needed gmin stepping. *)

val dc_source_fallbacks : counter
(** DC solves that needed source stepping. *)

val lm_iters : counter
(** Levenberg–Marquardt iterations. *)

val lm_non_finite : counter
(** LM steps rejected on non-finite cost. *)

val template_hits : counter
(** Harness compiled-template cache hits. *)

val template_misses : counter

val oracle_hits : counter
(** Oracle query-cache hits. *)

val oracle_misses : counter

val trained_hits : counter
(** Oracle trained-predictor cache hits. *)

val trained_misses : counter

val pool_chunks : counter
(** Worker-pool chunk claims. *)

val store_hits : counter
(** Persistent-store artifact loads that avoided recomputation. *)

val store_misses : counter
(** Persistent-store lookups that found nothing (artifact computed
    and written). *)

val store_checkpoints : counter
(** Checkpoint files written during statistical extraction. *)

val store_resumed_seeds : counter
(** Seeds whose fits were recovered from a checkpoint instead of
    being re-simulated. *)

val degraded_seeds : counter
(** Statistical seeds fitted on a partial design. *)

val failed_seeds : counter
(** Statistical seeds dropped entirely. *)

val gpr_fallbacks : counter
(** Predictors where the analytical 4-parameter fit exceeded its
    residual threshold and a GPR fallback model was trained instead
    (see {!Slc_core.Char_flow}). *)

val server_connections : counter
(** Connections accepted by the characterization server. *)

val server_requests : counter
(** Requests answered by the characterization server (all
    connections). *)

val server_errors : counter
(** Server requests answered with an [err] response. *)

type span

val span_simulate : span
(** {!Harness.simulate} wall time. *)

val span_fit : span
(** Per-seed model fitting. *)

val span_extract : span
(** [Statistical.extract_population]. *)

val span_baseline : span
(** [Statistical.monte_carlo_baseline]. *)

val with_span : span -> (unit -> 'a) -> 'a
(** Runs the thunk, accumulating its wall time and invocation count
    into the span when enabled; just runs it when disabled. *)

(** {2 Snapshots}

    An immutable reading of every counter at one instant, diffable —
    what the characterization server reports per connection ("what did
    the process spend while this connection was open").  Counters can
    be read whether or not collection is enabled; a snapshot taken
    while disabled simply reads the frozen values. *)

type snapshot = (string * int) list
(** [(counter name, value)] in counter-creation order. *)

val snapshot : unit -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-counter [after - before], in [after]'s order.  A counter
    missing from [before] (an older snapshot from before the counter
    existed) diffs against 0. *)

val snapshot_value : snapshot -> string -> int
(** The named counter's reading; 0 when absent. *)

val reset : unit -> unit
(** Zero every counter and span (keeps the enabled/disabled state). *)

val dump_json : unit -> string
(** The whole telemetry state as a JSON object:
    [{ "enabled": bool, "counters": {name: int},
       "spans": {name: {"count": int, "seconds": float}} }]. *)

val report : Format.formatter -> unit
(** Human-oriented dump of every non-zero counter and span. *)
