type context = {
  arc : string option;
  tech : string option;
  seed : int option;
  point : (float * float * float) option;
}

let no_context = { arc = None; tech = None; seed = None; point = None }

let is_empty_context c =
  c.arc = None && c.tech = None && c.seed = None && c.point = None

let pp_context ppf c =
  let sep = ref false in
  let item fmt =
    Format.kasprintf
      (fun s ->
        if !sep then Format.pp_print_string ppf ", ";
        sep := true;
        Format.pp_print_string ppf s)
      fmt
  in
  (match c.arc with Some a -> item "arc=%s" a | None -> ());
  (match c.tech with Some t -> item "tech=%s" t | None -> ());
  (match c.seed with Some s -> item "seed=%d" s | None -> ());
  (match c.point with
  | Some (sin, cload, vdd) ->
    item "Sin=%.3gps Cload=%.3gfF Vdd=%.3gV" (sin *. 1e12) (cload *. 1e15) vdd
  | None -> ());
  if not !sep then Format.pp_print_string ppf "no context"

type invalid = { iv_site : string; iv_detail : string; iv_context : context }

exception Invalid_input of invalid

let invalid ~site detail =
  { iv_site = site; iv_detail = detail; iv_context = no_context }

let invalid_input ~site detail = raise (Invalid_input (invalid ~site detail))

let invalid_message iv =
  Format.asprintf "Invalid_input: %s: %s [%a]" iv.iv_site iv.iv_detail
    pp_context iv.iv_context

type phase = Dc_operating_point | Dc_sweep | Transient_step

let phase_label = function
  | Dc_operating_point -> "dc-operating-point"
  | Dc_sweep -> "dc-sweep"
  | Transient_step -> "transient"

type convergence = {
  phase : phase;
  time_reached : float;
  dt : float;
  newton_iters : int;
  residual : float;
  recovery : string list;
  detail : string;
  context : context;
}

exception No_convergence of convergence

let convergence_message d =
  Format.asprintf
    "No_convergence: %s (%s) at t=%.4g s, dt=%.4g s, newton=%d, \
     residual=%.4g A, recovery=[%s] [%a]"
    d.detail (phase_label d.phase) d.time_reached d.dt d.newton_iters
    d.residual
    (String.concat "; " d.recovery)
    pp_context d.context

type sim_failure = {
  sf_detail : string;
  sf_retries : int;
  sf_window : float;
  sf_cause : convergence option;
  sf_context : context;
}

exception Simulation_failed of sim_failure

let sim_failure_message f =
  Format.asprintf "Simulation_failed: %s after %d retries (window %.4g s) [%a]%s"
    f.sf_detail f.sf_retries f.sf_window pp_context f.sf_context
    (match f.sf_cause with
    | Some c -> "; caused by " ^ convergence_message c
    | None -> "")

let raise_no_convergence ?(recovery = []) ~phase ~time_reached ~dt ~newton_iters
    ~residual detail =
  raise
    (No_convergence
       {
         phase;
         time_reached;
         dt;
         newton_iters;
         residual;
         recovery;
         detail;
         context = no_context;
       })

let with_context ctx f =
  try f () with
  | No_convergence d when is_empty_context d.context ->
    raise (No_convergence { d with context = ctx })
  | Simulation_failed s when is_empty_context s.sf_context ->
    raise (Simulation_failed { s with sf_context = ctx })
  | Invalid_input iv when is_empty_context iv.iv_context ->
    raise (Invalid_input { iv with iv_context = ctx })

type store_fault_kind = Store_version_mismatch | Store_corrupt | Store_key_mismatch

let store_fault_kind_label = function
  | Store_version_mismatch -> "version-mismatch"
  | Store_corrupt -> "corrupt"
  | Store_key_mismatch -> "key-mismatch"

type store_fault = {
  st_path : string;
  st_kind : store_fault_kind;
  st_detail : string;
}

exception Store_failed of store_fault

let store_fault_message f =
  Printf.sprintf "Store_failed: %s (%s): %s" f.st_path
    (store_fault_kind_label f.st_kind)
    f.st_detail

let raise_store_failed ~path ~kind detail =
  raise (Store_failed { st_path = path; st_kind = kind; st_detail = detail })

(* Render the structured payloads when these exceptions escape to the
   toplevel or a [Printexc] backtrace. *)
let () =
  Printexc.register_printer (function
    | No_convergence d -> Some (convergence_message d)
    | Simulation_failed f -> Some (sim_failure_message f)
    | Store_failed f -> Some (store_fault_message f)
    | Invalid_input iv -> Some (invalid_message iv)
    | _ -> None)
