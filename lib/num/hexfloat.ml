let to_string x = Printf.sprintf "%h" x

let of_string_opt s = float_of_string_opt s

let of_string s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> failwith (Printf.sprintf "Hexfloat.of_string: %S" s)
