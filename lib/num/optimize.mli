(** Local optimization: Levenberg–Marquardt nonlinear least squares,
    Nelder–Mead simplex, golden-section line search, and scalar root
    finding.  These cover parameter extraction (LM on model residuals),
    MAP estimation (LM on prior-augmented residuals) and the odd scalar
    solve. *)

type lm_result = {
  x : Vec.t;            (** optimal parameter vector *)
  cost : float;         (** 0.5 * ||r(x)||^2 at the optimum *)
  iterations : int;
  converged : bool;
  residual_norm : float;
  non_finite_steps : int;
      (** trial steps rejected because the model evaluation produced a
          non-finite cost (overflow/NaN); a non-zero value means the
          fit walked along the edge of the model's numeric range *)
}

val numeric_jacobian :
  ?rel_step:float -> (Vec.t -> Vec.t) -> Vec.t -> Mat.t
(** Forward-difference Jacobian of a residual function; [rel_step]
    defaults to [1e-6] of each component's magnitude (floored). *)

type lm_workspace
(** Reusable scratch buffers (normal-equation matrices, solve vectors)
    for {!levenberg_marquardt}.  A workspace belongs to one domain at a
    time; callers fitting many same-sized models keep one per worker
    and thread it through the loop.  Buffers are (re)sized on use, so a
    single workspace also serves fits of varying parameter count. *)

val lm_workspace : unit -> lm_workspace

val levenberg_marquardt :
  ?workspace:lm_workspace ->
  ?max_iter:int ->
  ?xtol:float ->
  ?ftol:float ->
  ?lambda0:float ->
  ?jacobian:(Vec.t -> Mat.t) ->
  residuals:(Vec.t -> Vec.t) ->
  x0:Vec.t ->
  unit ->
  lm_result
(** Minimizes [0.5 * ||residuals x||^2] starting from [x0].

    Uses a damped Gauss–Newton step with multiplicative damping update
    (Marquardt's strategy).  When [jacobian] is omitted a forward-difference
    Jacobian is used.  Defaults: [max_iter = 200], [xtol = 1e-12]
    (step-size tolerance relative to parameter norm), [ftol = 1e-14]
    (relative cost decrease), [lambda0 = 1e-3].

    Passing [?workspace] reuses caller-owned scratch buffers across
    calls; results are bitwise identical with and without it (the
    workspace variants of the underlying kernels replicate the
    allocating operation order exactly). *)

type nm_result = { nm_x : Vec.t; nm_f : float; nm_iterations : int; nm_converged : bool }

val nelder_mead :
  ?max_iter:int ->
  ?tol:float ->
  ?init_step:float ->
  f:(Vec.t -> float) ->
  x0:Vec.t ->
  unit ->
  nm_result
(** Derivative-free simplex minimization of [f] starting at [x0]. *)

val golden_section :
  ?tol:float -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Minimizer of a unimodal scalar function on [lo, hi]. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float
(** Root of [f] on a bracketing interval ([f lo] and [f hi] must have
    opposite signs; raises [Invalid_argument] otherwise). *)
