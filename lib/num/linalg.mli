(** Direct dense linear algebra: Cholesky and LU factorizations, solves,
    inverses.  Sized for the small systems this project needs (circuit
    Jacobians and 4x4 parameter covariances), not for large-scale work. *)

exception Singular of string
(** Raised when a factorization meets a (numerically) singular or, for
    Cholesky, non-positive-definite matrix. *)

val cholesky : Mat.t -> Mat.t
(** [cholesky a] returns the lower-triangular [l] with [l * l^T = a] for a
    symmetric positive-definite [a].  Raises {!Singular} otherwise. *)

val cholesky_solve : Mat.t -> Vec.t -> Vec.t
(** [cholesky_solve l b] solves [l l^T x = b] given the Cholesky factor
    [l]. *)

val solve_spd : Mat.t -> Vec.t -> Vec.t
(** [solve_spd a b] solves [a x = b] for symmetric positive-definite [a]. *)

val cholesky_into : Mat.t -> Mat.t -> unit
(** [cholesky_into a l] is {!cholesky} into the caller-owned square
    matrix [l] (only the lower triangle is written; stale upper-triangle
    entries of a reused buffer are ignored by the solves below).
    Bitwise identical to [cholesky].  Allocation-free. *)

val cholesky_solve_into : Mat.t -> Vec.t -> y:Vec.t -> x:Vec.t -> unit
(** [cholesky_solve_into l b ~y ~x] is {!cholesky_solve} into the
    caller-owned intermediate [y] and solution [x] (neither may alias
    [b]).  Bitwise identical to the allocating form.  Allocation-free. *)

val spd_inverse : Mat.t -> Mat.t
(** Inverse of a symmetric positive-definite matrix via Cholesky. *)

val spd_inverse_into : Mat.t -> l:Mat.t -> e:Vec.t -> y:Vec.t -> out:Mat.t -> unit
(** [spd_inverse_into a ~l ~e ~y ~out] is {!spd_inverse} into the
    caller-owned factor buffer [l], scratch vectors [e]/[y] (length
    [rows a]) and result [out] (none may alias [a]).  Bitwise identical
    to the allocating form.  Allocation-free — the workspace primitive
    behind the residual-BP inner loop (see {!Slc_core.Belief}). *)

val spd_log_det : Mat.t -> float
(** Log-determinant of a symmetric positive-definite matrix. *)

type lu
(** LU factorization with partial pivoting. *)

val lu_decompose : Mat.t -> lu
(** Raises {!Singular} on singular input. *)

val lu_solve : lu -> Vec.t -> Vec.t

val lu_factor_in_place : Mat.t -> int array -> float
(** [lu_factor_in_place a perm] overwrites the square matrix [a] with
    its packed LU factors (unit lower + upper) using partial pivoting,
    writes the row permutation into the caller-owned [perm] (length
    [rows a]) and returns the permutation sign.  Allocation-free: meant
    for hot loops that refactor the same workspace matrix repeatedly.
    Raises {!Singular} on singular input (the matrix is left partially
    factored). *)

val lu_solve_in_place : Mat.t -> int array -> b:Vec.t -> x:Vec.t -> unit
(** [lu_solve_in_place a perm ~b ~x] solves the system factored by
    {!lu_factor_in_place} into the caller-owned [x] (which must not
    alias [b]); [b] is left untouched.  Allocation-free. *)

val lu_det : lu -> float

val solve : Mat.t -> Vec.t -> Vec.t
(** General square solve via LU with partial pivoting. *)

val inverse : Mat.t -> Mat.t

val det : Mat.t -> float

val lower_solve : Mat.t -> Vec.t -> Vec.t
(** Forward substitution with a lower-triangular matrix. *)

val upper_solve : Mat.t -> Vec.t -> Vec.t
(** Back substitution with an upper-triangular matrix. *)

val expm : Mat.t -> Mat.t
(** Matrix exponential by scaling-and-squaring with a (6,6) Padé
    approximant — used to compute exact linear-circuit responses when
    validating the transient integrators. *)

val solve_least_squares : Mat.t -> Vec.t -> Vec.t
(** [solve_least_squares a b] minimizes [||a x - b||_2] via the normal
    equations with a tiny ridge for robustness.  Requires
    [rows a >= cols a]. *)

(** {2 Flat-slab LU for the batch transient engine}

    The same partial-pivot factorization and substitutions as
    {!lu_factor_in_place} / {!lu_solve_in_place}, operating on an
    [n * n] row-major block at an offset inside a flat [Bigarray]
    (one block per batch lane).  Pivot choices, the [1e-300]
    singularity threshold and every accumulation order are identical,
    so per-system results are bitwise equal to the [Mat.t] path. *)

type fslab = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val lu_factor_flat : fslab -> off:int -> n:int -> perm:int array -> bool
(** Factor the block in place.  [false] means the block is singular
    (the block is left partially factored, as the scalar path leaves
    its matrix). *)

val lu_solve_flat :
  fslab ->
  off:int ->
  n:int ->
  perm:int array ->
  b:fslab ->
  boff:int ->
  x:fslab ->
  xoff:int ->
  unit
(** Solve a factored block into the [n] floats of [x] at [xoff],
    reading the right-hand side from [b] at [boff] ([b] is not
    modified; [x] and [b] may not alias). *)
