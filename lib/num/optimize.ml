type lm_result = {
  x : Vec.t;
  cost : float;
  iterations : int;
  converged : bool;
  residual_norm : float;
  non_finite_steps : int;
}

let numeric_jacobian ?(rel_step = 1e-6) f x =
  let r0 = f x in
  let m = Array.length r0 and n = Array.length x in
  let jac = Mat.create m n in
  for j = 0 to n - 1 do
    let h = rel_step *. Float.max 1.0 (Float.abs x.(j)) in
    let xj = x.(j) in
    x.(j) <- xj +. h;
    let r1 = f x in
    x.(j) <- xj;
    for i = 0 to m - 1 do
      Mat.set jac i j ((r1.(i) -. r0.(i)) /. h)
    done
  done;
  jac

let half_sq_norm r = 0.5 *. Vec.dot r r

(* Scratch buffers for one Levenberg–Marquardt solve, sized by the
   parameter count.  A caller fitting many models of the same size (the
   per-seed extraction loop) allocates one workspace per worker domain
   and reuses it: the normal-equation matrices and solve vectors are
   then allocation-free.  The residual/Jacobian closures remain the
   caller's. *)
type lm_workspace = {
  mutable lw_n : int;
  mutable lw_jtj : Mat.t;
  mutable lw_a : Mat.t;
  mutable lw_l : Mat.t;
  mutable lw_jtr : Vec.t;
  mutable lw_njtr : Vec.t;
  mutable lw_y : Vec.t;
  mutable lw_dx : Vec.t;
  mutable lw_x_try : Vec.t;
}

let lm_workspace () =
  {
    lw_n = 0;
    lw_jtj = Mat.create 0 0;
    lw_a = Mat.create 0 0;
    lw_l = Mat.create 0 0;
    lw_jtr = [||];
    lw_njtr = [||];
    lw_y = [||];
    lw_dx = [||];
    lw_x_try = [||];
  }

let lm_ensure ws n =
  if ws.lw_n <> n then begin
    ws.lw_n <- n;
    ws.lw_jtj <- Mat.create n n;
    ws.lw_a <- Mat.create n n;
    ws.lw_l <- Mat.create n n;
    ws.lw_jtr <- Array.make n 0.0;
    ws.lw_njtr <- Array.make n 0.0;
    ws.lw_y <- Array.make n 0.0;
    ws.lw_dx <- Array.make n 0.0;
    ws.lw_x_try <- Array.make n 0.0
  end

let levenberg_marquardt ?workspace ?(max_iter = 200) ?(xtol = 1e-12)
    ?(ftol = 1e-14) ?(lambda0 = 1e-3) ?jacobian ~residuals ~x0 () =
  let jac_of =
    match jacobian with
    | Some j -> j
    | None -> fun x -> numeric_jacobian residuals x
  in
  let ws = match workspace with Some ws -> ws | None -> lm_workspace () in
  let n = Array.length x0 in
  lm_ensure ws n;
  let x = Vec.copy x0 in
  let lambda = ref lambda0 in
  let cost = ref (half_sq_norm (residuals x)) in
  let iter = ref 0 in
  let converged = ref false in
  let non_finite = ref 0 in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let r = residuals x in
    let j = jac_of x in
    Mat.gram_into j ws.lw_jtj;
    Mat.tmul_vec_into j r ws.lw_jtr;
    for i = 0 to n - 1 do
      ws.lw_njtr.(i) <- -.ws.lw_jtr.(i)
    done;
    (* Try a damped step; increase damping until the cost decreases. *)
    let stepped = ref false in
    let attempts = ref 0 in
    while (not !stepped) && !attempts < 25 do
      incr attempts;
      Mat.add_ridge_into ws.lw_jtj !lambda ws.lw_a;
      let solved =
        try
          Linalg.cholesky_into ws.lw_a ws.lw_l;
          Linalg.cholesky_solve_into ws.lw_l ws.lw_njtr ~y:ws.lw_y
            ~x:ws.lw_dx;
          true
        with Linalg.Singular _ -> false
      in
      if not solved then lambda := !lambda *. 10.0
      else begin
        let dx = ws.lw_dx in
        let x_try = ws.lw_x_try in
        for i = 0 to n - 1 do
          x_try.(i) <- x.(i) +. dx.(i)
        done;
        let cost_try = half_sq_norm (residuals x_try) in
        if not (Float.is_finite cost_try) then begin
          (* An overflowing model evaluation yields a NaN/inf cost that
             compares false on every branch; without this rejection the
             damping schedule can spin to its attempt cap at every
             iteration.  Reject immediately and raise the damping. *)
          incr non_finite;
          Slc_obs.Telemetry.incr Slc_obs.Telemetry.lm_non_finite;
          lambda := !lambda *. 10.0
        end
        else if cost_try < !cost || not (Float.is_finite !cost) then begin
          (* Accept; relax the damping. *)
          let step_rel = Vec.norm2 dx /. Float.max 1e-30 (Vec.norm2 x) in
          let cost_rel = (!cost -. cost_try) /. Float.max 1e-300 !cost in
          Array.blit x_try 0 x 0 (Array.length x);
          cost := cost_try;
          lambda := Float.max 1e-12 (!lambda /. 3.0);
          stepped := true;
          if step_rel < xtol || cost_rel < ftol then converged := true
        end
        else lambda := !lambda *. 10.0
      end
    done;
    if not !stepped then converged := true
  done;
  Slc_obs.Telemetry.add Slc_obs.Telemetry.lm_iters !iter;
  let r = residuals x in
  {
    x;
    cost = half_sq_norm r;
    iterations = !iter;
    converged = !converged;
    residual_norm = Vec.norm2 r;
    non_finite_steps = !non_finite;
  }

type nm_result = {
  nm_x : Vec.t;
  nm_f : float;
  nm_iterations : int;
  nm_converged : bool;
}

let nelder_mead ?(max_iter = 2000) ?(tol = 1e-10) ?(init_step = 0.1) ~f ~x0 () =
  let n = Array.length x0 in
  let simplex =
    Array.init (n + 1) (fun i ->
        let p = Vec.copy x0 in
        if i > 0 then begin
          let j = i - 1 in
          let h = init_step *. Float.max 1.0 (Float.abs p.(j)) in
          p.(j) <- p.(j) +. h
        end;
        p)
  in
  let fv = Array.map f simplex in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun a b -> compare fv.(a) fv.(b)) idx;
    let s = Array.map (fun i -> simplex.(i)) idx in
    let v = Array.map (fun i -> fv.(i)) idx in
    Array.blit s 0 simplex 0 (n + 1);
    Array.blit v 0 fv 0 (n + 1)
  in
  let centroid () =
    let c = Vec.create n in
    for i = 0 to n - 1 do
      Vec.axpy 1.0 simplex.(i) c
    done;
    Vec.scale (1.0 /. float_of_int n) c
  in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < max_iter do
    incr iter;
    order ();
    if Float.abs (fv.(n) -. fv.(0)) <= tol *. (1.0 +. Float.abs fv.(0)) then
      converged := true
    else begin
      let c = centroid () in
      let reflect alpha =
        Vec.init n (fun i -> c.(i) +. (alpha *. (c.(i) -. simplex.(n).(i))))
      in
      let xr = reflect 1.0 in
      let fr = f xr in
      if fr < fv.(0) then begin
        let xe = reflect 2.0 in
        let fe = f xe in
        if fe < fr then begin
          simplex.(n) <- xe;
          fv.(n) <- fe
        end
        else begin
          simplex.(n) <- xr;
          fv.(n) <- fr
        end
      end
      else if fr < fv.(n - 1) then begin
        simplex.(n) <- xr;
        fv.(n) <- fr
      end
      else begin
        let xc = reflect (-0.5) in
        let fc = f xc in
        if fc < fv.(n) then begin
          simplex.(n) <- xc;
          fv.(n) <- fc
        end
        else
          (* Shrink towards the best vertex. *)
          for i = 1 to n do
            simplex.(i) <-
              Vec.init n (fun j ->
                  simplex.(0).(j)
                  +. (0.5 *. (simplex.(i).(j) -. simplex.(0).(j))));
            fv.(i) <- f simplex.(i)
          done
      end
    end
  done;
  order ();
  { nm_x = simplex.(0); nm_f = fv.(0); nm_iterations = !iter; nm_converged = !converged }

let golden_ratio = (sqrt 5.0 -. 1.0) /. 2.0

let golden_section ?(tol = 1e-10) ~f ~lo ~hi () =
  if lo >= hi then invalid_arg "Optimize.golden_section: lo >= hi";
  let a = ref lo and b = ref hi in
  let c = ref (!b -. (golden_ratio *. (!b -. !a))) in
  let d = ref (!a +. (golden_ratio *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  while !b -. !a > tol *. (1.0 +. Float.abs !a +. Float.abs !b) do
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (golden_ratio *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (golden_ratio *. (!b -. !a));
      fd := f !d
    end
  done;
  0.5 *. (!a +. !b)

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let fa = f lo and fb = f hi in
  if fa = 0.0 then lo
  else if fb = 0.0 then hi
  else if fa *. fb > 0.0 then
    invalid_arg "Optimize.bisect: interval does not bracket a root"
  else begin
    let a = ref lo and b = ref hi and fa = ref fa in
    let i = ref 0 in
    while !b -. !a > tol *. (1.0 +. Float.abs !a) && !i < max_iter do
      incr i;
      let m = 0.5 *. (!a +. !b) in
      let fm = f m in
      if fm = 0.0 then begin
        a := m;
        b := m
      end
      else if !fa *. fm < 0.0 then b := m
      else begin
        a := m;
        fa := fm
      end
    done;
    0.5 *. (!a +. !b)
  end
