(** Dense row-major matrices of floats. *)

type t

val create : int -> int -> t
(** [create r c] is the [r x c] zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_rows : float array array -> t
(** Takes ownership of a copy of the given rows; all rows must have equal
    length. *)

val to_rows : t -> float array array

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val data : t -> float array
(** The underlying row-major storage: element [(i, j)] lives at index
    [i * cols m + j].  Shared, not a copy — intended for hot loops
    (solver stamping, in-place factorizations) that must avoid
    per-element bounds checks and allocation.  Mutating it mutates the
    matrix. *)

val unsafe_get : t -> int -> int -> float
(** No bounds checks; [(i, j)] must be in range. *)

val unsafe_set : t -> int -> int -> float -> unit
(** No bounds checks; [(i, j)] must be in range. *)

val copy : t -> t

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product; raises [Invalid_argument] on inner-dimension mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m v] is [m * v]. *)

val tmul_vec : t -> Vec.t -> Vec.t
(** [tmul_vec m v] is [m^T * v] without forming the transpose. *)

val gram_into : t -> t -> unit
(** [gram_into j out] stores [jᵀ j] into the pre-allocated
    [cols j x cols j] matrix [out].  Floating-point operations run in
    the exact order of [mul (transpose j) j], so results are bitwise
    identical to the allocating form. *)

val add_into : t -> t -> t -> unit
(** [add_into a b out] stores [a + b] into the pre-allocated [out]
    (same shape; [out == a] or [out == b] is fine).  Bitwise identical
    to {!add}.  Allocation-free. *)

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into m v out] is {!mul_vec} into the pre-allocated [out]
    (length [rows m]; must not alias [v]).  Bitwise identical to the
    allocating form.  Allocation-free. *)

val tmul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [tmul_vec_into m v out] is [tmul_vec] into a pre-allocated [out]
    (length [cols m]), bitwise identical to the allocating form. *)

val add_ridge_into : t -> float -> t -> unit
(** [add_ridge_into m lambda out] is [add_ridge] into a pre-allocated
    [out] of the same shape ([out == m] is not supported). *)

val outer : Vec.t -> Vec.t -> t
(** [outer u v] is the rank-one matrix [u v^T]. *)

val diag : Vec.t -> t
(** Diagonal matrix from a vector. *)

val diagonal : t -> Vec.t
(** Diagonal of a square matrix. *)

val trace : t -> float

val is_symmetric : ?tol:float -> t -> bool

val sym_part : t -> t
(** [(m + m^T) / 2]. *)

val add_ridge : t -> float -> t
(** [add_ridge m lambda] adds [lambda] to each diagonal entry (Tikhonov
    regularization); the input is not modified. *)

val frobenius : t -> float

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
