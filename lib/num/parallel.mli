(** Deterministic data-parallel maps over OCaml 5 domains.

    Tasks must be pure (or touch only atomic/thread-safe state — the
    simulator's run counter is atomic).  Results are positionally
    identical to a sequential map regardless of scheduling.

    The domain count comes from [SLC_DOMAINS] when set ([1] disables
    parallelism entirely), else [Domain.recommended_domain_count],
    capped at 8. *)

val domain_count : unit -> int

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Dynamically-scheduled parallel map: workers claim indices from a
    shared atomic counter, so unevenly-sized tasks keep all domains
    busy.  Falls back to [Array.map] for small inputs or a single
    domain.  Exceptions raised by tasks are re-raised in the caller
    (the first one observed). *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
