(** Data-parallel maps over a persistent pool of worker domains.

    The first parallel map lazily spawns a process-wide pool of
    long-lived domains (an [at_exit] hook joins them).  Work items are
    claimed in chunks from an atomic counter, so scheduling is dynamic
    but the mapping from item index to result slot is fixed: results
    are bitwise independent of how many domains participate.

    Tasks must be pure (or touch only atomic/thread-safe state — the
    simulator's run counter is atomic).

    The default width comes from [SLC_DOMAINS] when set ([1] disables
    parallelism entirely), else [Domain.recommended_domain_count],
    capped at 8 — and is then clamped to the hardware's parallelism:
    idle domains beyond the core count slow the WHOLE process down
    (every minor collection is a stop-the-world handshake across all
    live domains), so default-width maps never oversubscribe.  Passing
    [?domains] explicitly bypasses the clamp — a deliberate
    oversubscription, used by tests to exercise the pool machinery on
    any host. *)

(** Raised when more than one work item fails in a single map.  The
    first component is the failure with the smallest item index; the
    rest follow in index order.  A map in which exactly one item fails
    re-raises that item's exception unwrapped. *)
exception Failures of exn * exn list

val domain_count : unit -> int

val map : ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f xs] is [Array.map f xs] computed by up to [?domains]
    participants (the calling domain plus pool workers).  [?chunk]
    bounds how many consecutive indices a participant claims at a time
    (default [n / (8 d)], at least 1).  Runs sequentially when the
    effective width is 1, when [xs] has fewer than two elements, or
    when called from inside a pool task (nested maps never re-enter
    the pool).  Exceptions from work items cancel the remaining items
    and are re-raised in the caller — unwrapped for a single failing
    item, as [Failures] otherwise. *)

val try_map :
  ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Like {!map}, but a failing item yields [Error] in its own slot
    instead of cancelling the batch: every item is always attempted.
    The graceful-degradation primitive — callers inspect which items
    survived and proceed on those. *)

val mapi : ?domains:int -> ?chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like [map], passing each element's index. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over lists. *)

val sequential : (unit -> 'a) -> 'a
(** [sequential f] runs [f] with pool entry disabled: every [map]
    below it executes inline on the calling domain.  Used to obtain a
    reference sequential execution for determinism checks. *)

val shutdown : unit -> unit
(** Join and discard the pool (a later map recreates it).  Registered
    via [at_exit]; only needed explicitly by tests. *)

(** Per-domain state slots, for worker-owned caches and scratch
    workspaces.  A slot holds one value per domain, created on first
    access from that domain; pool workers are long-lived, so slot
    state persists across successive maps. *)
module Slot : sig
  type 'a t

  val make : (unit -> 'a) -> 'a t
  (** [make init] declares a slot; [init] runs once per domain, on
      that domain, at first [get]. *)

  val get : 'a t -> 'a
  (** This domain's instance. *)
end
