let domain_count () =
  match Sys.getenv_opt "SLC_DOMAINS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> min 8 (Domain.recommended_domain_count ())

exception Task_failed of exn

let map ?domains f xs =
  let n = Array.length xs in
  let d = match domains with Some d -> max 1 d | None -> domain_count () in
  if d <= 1 || n < 2 then Array.map f xs
  else begin
    let d = min d n in
    let results = Array.make n None in
    (* Dynamic scheduling: every worker claims the next unclaimed index
       from a shared atomic counter, so uneven task costs (retried
       simulations, seeds with harder Newton solves) cannot leave
       domains idle the way a static block-cyclic split could.  Each
       index is claimed exactly once, so result slots are written by
       exactly one domain; Domain.join publishes them to the caller. *)
    let next = Atomic.make 0 in
    let worker () =
      try
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (f xs.(i));
            loop ()
          end
        in
        loop ()
      with e -> raise (Task_failed e)
    in
    let handles = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
    let first_error = ref None in
    (try worker () with Task_failed e -> first_error := Some e);
    Array.iter
      (fun h ->
        match Domain.join h with
        | () -> ()
        | exception Task_failed e ->
          if !first_error = None then first_error := Some e)
      handles;
    (match !first_error with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Parallel.map: missing result")
      results
  end

let map_list ?domains f xs = Array.to_list (map ?domains f (Array.of_list xs))
