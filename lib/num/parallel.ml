let domain_count () =
  match Sys.getenv_opt "SLC_DOMAINS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> min 8 (Domain.recommended_domain_count ())

(* Domains beyond the hardware's parallelism never help and actively
   hurt: every minor collection is a stop-the-world handshake across
   all live domains, so even IDLE pool workers tax every allocation in
   the process (measured 4-25x on single-core hosts).  Default-width
   maps therefore clamp to this; an explicit [~domains] argument is
   taken verbatim as a deliberate oversubscription (tests use it to
   exercise the real pool machinery regardless of the host). *)
let hardware_parallelism () = Domain.recommended_domain_count ()

let default_width () = min (domain_count ()) (hardware_parallelism ())

exception Failures of exn * exn list

(* True while the current domain is executing pool tasks (or inside
   [sequential]).  Any map issued in that state runs inline: work items
   must never re-enter the pool, both to avoid deadlocking the fixed
   worker set and to keep nested maps deterministic. *)
let in_task_key = Domain.DLS.new_key (fun () -> ref false)

let in_task () = !(Domain.DLS.get in_task_key)

let sequential f =
  let flag = Domain.DLS.get in_task_key in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f

module Slot = struct
  type 'a t = 'a Domain.DLS.key

  let make init = Domain.DLS.new_key init

  let get = Domain.DLS.get
end

module Pool = struct
  (* One batch of work submitted to the pool.  Participants (the
     submitting domain plus up to [limit - 1] workers) claim chunks of
     indices from [next]; every claimed item is executed by exactly one
     participant.  A failing item flags the job so no FURTHER chunks are
     claimed; already-claimed chunks run to completion, so every failure
     inside them is recorded with its item index and the submitter can
     aggregate multiple failures deterministically. *)
  type job = {
    run : int -> unit;
    n : int;
    chunk : int;
    limit : int;
    entered : int Atomic.t;   (* worker participation tickets *)
    next : int Atomic.t;      (* next unclaimed item index *)
    running : int Atomic.t;   (* participants inside the claim loop *)
    failed : bool Atomic.t;
    mutable failures : (int * exn) list; (* guarded by the pool mutex *)
  }

  type t = {
    m : Mutex.t;
    work : Condition.t;   (* workers sleep here between jobs *)
    donec : Condition.t;  (* the submitter sleeps here until running = 0 *)
    mutable epoch : int;
    mutable job : job option;
    mutable quit : bool;
    mutable workers : unit Domain.t array;
  }

  let size pool = Array.length pool.workers

  let participate pool j =
    Atomic.incr j.running;
    let flag = Domain.DLS.get in_task_key in
    let saved = !flag in
    flag := true;
    let rec claim () =
      if not (Atomic.get j.failed) then begin
        let lo = Atomic.fetch_and_add j.next j.chunk in
        if lo < j.n then begin
          Slc_obs.Telemetry.incr Slc_obs.Telemetry.pool_chunks;
          let hi = min j.n (lo + j.chunk) in
          for i = lo to hi - 1 do
            try j.run i
            with e ->
              Atomic.set j.failed true;
              Mutex.lock pool.m;
              j.failures <- (i, e) :: j.failures;
              Mutex.unlock pool.m
          done;
          claim ()
        end
      end
    in
    (* The claim loop records item exceptions rather than raising, but an
       asynchronous exception (Stack_overflow, Out_of_memory, a signal)
       escaping it would otherwise leave this domain's in-task flag stuck
       and its running ticket unreturned, wedging the submitter in
       [Condition.wait] forever. *)
    Fun.protect
      ~finally:(fun () ->
        flag := saved;
        Mutex.lock pool.m;
        let now = Atomic.fetch_and_add j.running (-1) - 1 in
        if now = 0 then Condition.broadcast pool.donec;
        Mutex.unlock pool.m)
      claim

  let worker pool () =
    let seen = ref 0 in
    let rec loop () =
      Mutex.lock pool.m;
      while (not pool.quit) && pool.epoch = !seen do
        Condition.wait pool.work pool.m
      done;
      if pool.quit then Mutex.unlock pool.m
      else begin
        seen := pool.epoch;
        let j = pool.job in
        Mutex.unlock pool.m;
        (match j with
        | Some j ->
          (* The submitter always participates, so workers take at most
             [limit - 1] tickets. *)
          if Atomic.fetch_and_add j.entered 1 < j.limit - 1 then
            participate pool j
        | None -> ());
        loop ()
      end
    in
    loop ()

  (* Process-wide pool, created on first parallel map.  Sized for
     max(domain_count, first requested width) - 1 workers: the
     submitting domain is always the extra participant. *)
  let[@slc.domain_safe "read/written only under the creation mutex"] the_pool =
    ref None

  let creation = Mutex.create ()

  let shutdown () =
    Mutex.lock creation;
    (match !the_pool with
    | None -> ()
    | Some pool ->
      Mutex.lock pool.m;
      pool.quit <- true;
      Condition.broadcast pool.work;
      Mutex.unlock pool.m;
      Array.iter Domain.join pool.workers;
      the_pool := None);
    Mutex.unlock creation

  let get ~want =
    Mutex.lock creation;
    let pool =
      match !the_pool with
      | Some pool -> pool
      | None ->
        let workers = max 0 (max (default_width ()) want - 1) in
        let pool =
          {
            m = Mutex.create ();
            work = Condition.create ();
            donec = Condition.create ();
            epoch = 0;
            job = None;
            quit = false;
            workers = [||];
          }
        in
        pool.workers <- Array.init workers (fun _ -> Domain.spawn (worker pool));
        the_pool := Some pool;
        at_exit shutdown;
        pool
    in
    Mutex.unlock creation;
    pool

  (* Submit [n] items and run them to completion (the caller works too).
     Returns the failures, each tagged with its item index.  Jobs are
     serialized: concurrent submitters queue on [creation]-independent
     [m]; in practice nested submissions run inline via [in_task]. *)
  let submit_mutex = Mutex.create ()

  let run pool ~limit ~chunk f n =
    Mutex.lock submit_mutex;
    let j =
      {
        run = f;
        n;
        chunk = max 1 chunk;
        limit = max 1 limit;
        entered = Atomic.make 0;
        next = Atomic.make 0;
        running = Atomic.make 0;
        failed = Atomic.make false;
        failures = [];
      }
    in
    Mutex.lock pool.m;
    pool.job <- Some j;
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.work;
    Mutex.unlock pool.m;
    participate pool j;
    Mutex.lock pool.m;
    while Atomic.get j.running > 0 do
      Condition.wait pool.donec pool.m
    done;
    pool.job <- None;
    Mutex.unlock pool.m;
    Mutex.unlock submit_mutex;
    j.failures
end

let raise_failures failures =
  match List.sort (fun (a, _) (b, _) -> compare a b) failures with
  | [] -> ()
  | [ (_, e) ] -> raise e
  | (_, primary) :: rest -> raise (Failures (primary, List.map snd rest))

let default_chunk ~n ~d = max 1 (n / (d * 8))

let map ?domains ?chunk f xs =
  let n = Array.length xs in
  let d = match domains with Some d -> max 1 d | None -> default_width () in
  if d <= 1 || n < 2 || in_task () then Array.map f xs
  else begin
    let pool = Pool.get ~want:d in
    if Pool.size pool = 0 then Array.map f xs
    else begin
      let results = Array.make n None in
      let chunk =
        match chunk with Some c -> c | None -> default_chunk ~n ~d
      in
      let failures =
        Pool.run pool ~limit:d ~chunk
          (fun i -> results.(i) <- Some (f xs.(i)))
          n
      in
      raise_failures failures;
      Array.map
        (function
          | Some v -> v
          | None -> invalid_arg "Parallel.map: missing result")
        results
    end
  end

let try_map ?domains ?chunk f xs =
  (* Per-item failure capture: unlike {!map}, one failing item does not
     flag the job (the wrapped closure never raises), so every item is
     attempted and the caller decides what survives.  This is the
     primitive the statistical layer's graceful degradation builds on. *)
  map ?domains ?chunk (fun x -> match f x with v -> Ok v | exception e -> Error e) xs

let mapi ?domains ?chunk f xs =
  let idx = Array.init (Array.length xs) Fun.id in
  map ?domains ?chunk (fun i -> f i xs.(i)) idx

let map_list ?domains f xs = Array.to_list (map ?domains f (Array.of_list xs))

let shutdown = Pool.shutdown
