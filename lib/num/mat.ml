(* Row-major dense matrix: data.((i * cols) + j). *)

type t = { r : int; c : int; data : float array }

let create r c =
  if r < 0 || c < 0 then invalid_arg "Mat.create: negative dimension";
  { r; c; data = Array.make (r * c) 0.0 }

let init r c f =
  let m = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      m.data.((i * c) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then { r = 0; c = 0; data = [||] }
  else begin
    let c = Array.length rows.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> c then
          invalid_arg "Mat.of_rows: ragged rows")
      rows;
    init r c (fun i j -> rows.(i).(j))
  end

let rows m = m.r

let cols m = m.c

let data m = m.data

let unsafe_get m i j = Array.unsafe_get m.data ((i * m.c) + j)

let unsafe_set m i j x = Array.unsafe_set m.data ((i * m.c) + j) x

let get m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then
    invalid_arg "Mat.get: index out of bounds";
  m.data.((i * m.c) + j)

let set m i j x =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then
    invalid_arg "Mat.set: index out of bounds";
  m.data.((i * m.c) + j) <- x

let to_rows m = Array.init m.r (fun i -> Array.init m.c (fun j -> get m i j))

let copy m = { m with data = Array.copy m.data }

let row m i = Array.init m.c (fun j -> get m i j)

let col m j = Array.init m.r (fun i -> get m i j)

let transpose m = init m.c m.r (fun i j -> get m j i)

let check_same name a b =
  if a.r <> b.r || a.c <> b.c then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name a.r
         a.c b.r b.c)

let add a b =
  check_same "add" a b;
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) +. b.data.(i)) }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) -. b.data.(i)) }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let mul a b =
  if a.c <> b.r then
    invalid_arg
      (Printf.sprintf "Mat.mul: inner dimension mismatch (%dx%d * %dx%d)" a.r
         a.c b.r b.c);
  let m = create a.r b.c in
  for i = 0 to a.r - 1 do
    for k = 0 to a.c - 1 do
      let aik = a.data.((i * a.c) + k) in
      if aik <> 0.0 then
        for j = 0 to b.c - 1 do
          m.data.((i * b.c) + j) <-
            m.data.((i * b.c) + j) +. (aik *. b.data.((k * b.c) + j))
        done
    done
  done;
  m

let mul_vec m v =
  if m.c <> Array.length v then
    invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.r (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.c - 1 do
        acc := !acc +. (m.data.((i * m.c) + j) *. v.(j))
      done;
      !acc)

let[@slc.hot] add_into a b out =
  check_same "add_into" a b;
  check_same "add_into" a out;
  let d = out.data and da = a.data and db = b.data in
  for i = 0 to Array.length d - 1 do
    d.(i) <- da.(i) +. db.(i)
  done

let[@slc.hot] mul_vec_into m v out =
  if m.c <> Array.length v then
    invalid_arg "Mat.mul_vec_into: dimension mismatch";
  if m.r <> Array.length out then
    invalid_arg "Mat.mul_vec_into: output dimension mismatch";
  for i = 0 to m.r - 1 do
    let acc = ref 0.0 in
    for j = 0 to m.c - 1 do
      acc := !acc +. (m.data.((i * m.c) + j) *. v.(j))
    done;
    out.(i) <- !acc
  done

let tmul_vec m v =
  if m.r <> Array.length v then
    invalid_arg "Mat.tmul_vec: dimension mismatch";
  let out = Array.make m.c 0.0 in
  for i = 0 to m.r - 1 do
    let vi = v.(i) in
    if vi <> 0.0 then
      for j = 0 to m.c - 1 do
        out.(j) <- out.(j) +. (m.data.((i * m.c) + j) *. vi)
      done
  done;
  out

(* [gram_into j out] computes out <- JᵀJ with floating-point operations
   in the exact order of [mul (transpose j) j] (ikj loops, zero-skip),
   so workspace-reusing callers get bitwise-identical results. *)
let[@slc.hot] gram_into j out =
  if out.r <> j.c || out.c <> j.c then
    invalid_arg "Mat.gram_into: output must be cols x cols";
  Array.fill out.data 0 (Array.length out.data) 0.0;
  let n = j.c in
  for i = 0 to n - 1 do
    for k = 0 to j.r - 1 do
      let aik = j.data.((k * n) + i) in
      if aik <> 0.0 then
        for jj = 0 to n - 1 do
          out.data.((i * n) + jj) <-
            out.data.((i * n) + jj) +. (aik *. j.data.((k * n) + jj))
        done
    done
  done

let[@slc.hot] tmul_vec_into m v out =
  if m.r <> Array.length v || m.c <> Array.length out then
    invalid_arg "Mat.tmul_vec_into: dimension mismatch";
  Array.fill out 0 m.c 0.0;
  for i = 0 to m.r - 1 do
    let vi = v.(i) in
    if vi <> 0.0 then
      for j = 0 to m.c - 1 do
        out.(j) <- out.(j) +. (m.data.((i * m.c) + j) *. vi)
      done
  done

let outer u v = init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let diagonal m =
  if m.r <> m.c then invalid_arg "Mat.diagonal: not square";
  Array.init m.r (fun i -> get m i i)

let trace m = Array.fold_left ( +. ) 0.0 (diagonal m)

let is_symmetric ?(tol = 1e-9) m =
  m.r = m.c
  &&
  let ok = ref true in
  for i = 0 to m.r - 1 do
    for j = i + 1 to m.c - 1 do
      if Float.abs (get m i j -. get m j i) > tol then ok := false
    done
  done;
  !ok

let sym_part m =
  if m.r <> m.c then invalid_arg "Mat.sym_part: not square";
  init m.r m.c (fun i j -> 0.5 *. (get m i j +. get m j i))

let add_ridge m lambda =
  if m.r <> m.c then invalid_arg "Mat.add_ridge: not square";
  let m' = copy m in
  for i = 0 to m.r - 1 do
    set m' i i (get m i i +. lambda)
  done;
  m'

let[@slc.hot] add_ridge_into m lambda out =
  if m.r <> m.c then invalid_arg "Mat.add_ridge_into: not square";
  if out.r <> m.r || out.c <> m.c then
    invalid_arg "Mat.add_ridge_into: dimension mismatch";
  Array.blit m.data 0 out.data 0 (Array.length m.data);
  for i = 0 to m.r - 1 do
    out.data.((i * m.c) + i) <- m.data.((i * m.c) + i) +. lambda
  done

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let approx_equal ?(tol = 1e-9) a b =
  a.r = b.r && a.c = b.c
  &&
  let ok = ref true in
  Array.iteri
    (fun i x -> if Float.abs (x -. b.data.(i)) > tol then ok := false)
    a.data;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.r - 1 do
    Format.fprintf ppf "|";
    for j = 0 to m.c - 1 do
      Format.fprintf ppf " %10.4g" (get m i j)
    done;
    Format.fprintf ppf " |";
    if i < m.r - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
