(** Exact textual encoding of IEEE-754 doubles.

    The persistent artifact store's correctness contract is {e bitwise}
    identity: a float written to disk must come back as the same 64
    bits.  Decimal formats make that promise only when every writer
    remembers to use 17 significant digits; the C99 hexadecimal float
    form ([0x1.8p+0]) is exact by construction — the mantissa digits
    are the mantissa bits — while staying human-readable and
    greppable.

    All finite values (including negative zero and subnormals) and the
    infinities round-trip to identical bits.  NaNs round-trip as NaN
    but collapse to the canonical quiet NaN: payload bits are not
    preserved (no stored artifact contains NaN — baseline failure
    markers are never persisted). *)

val to_string : float -> string
(** Shortest exact representation: [%h] for finite values,
    ["infinity"]/["-infinity"]/["nan"] for the specials. *)

val of_string : string -> float
(** Inverse of {!to_string}; also accepts any float syntax
    [float_of_string] does.  Raises [Failure] on malformed input. *)

val of_string_opt : string -> float option
