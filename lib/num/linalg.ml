exception Singular of string

let cholesky a =
  if not (Mat.is_symmetric ~tol:1e-8 a) then
    raise (Singular "cholesky: matrix not symmetric");
  let n = Mat.rows a in
  let l = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (Mat.get l i k *. Mat.get l j k)
      done;
      if i = j then begin
        if !s <= 0.0 then raise (Singular "cholesky: not positive definite");
        Mat.set l i i (sqrt !s)
      end
      else Mat.set l i j (!s /. Mat.get l j j)
    done
  done;
  l

let lower_solve l b =
  let n = Mat.rows l in
  if Array.length b <> n then invalid_arg "Linalg.lower_solve: size mismatch";
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get l i j *. x.(j))
    done;
    let d = Mat.get l i i in
    if d = 0.0 then raise (Singular "lower_solve: zero diagonal");
    x.(i) <- !s /. d
  done;
  x

let upper_solve u b =
  let n = Mat.rows u in
  if Array.length b <> n then invalid_arg "Linalg.upper_solve: size mismatch";
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get u i j *. x.(j))
    done;
    let d = Mat.get u i i in
    if d = 0.0 then raise (Singular "upper_solve: zero diagonal");
    x.(i) <- !s /. d
  done;
  x

let cholesky_solve l b =
  let y = lower_solve l b in
  upper_solve (Mat.transpose l) y

let solve_spd a b = cholesky_solve (cholesky a) b

(* Allocation-free variants for workspace-reusing callers (the LM
   optimizer).  They replicate the floating-point operation order of
   [cholesky] / [cholesky_solve] exactly, so results are bitwise
   identical to the allocating forms. *)

let[@slc.hot] cholesky_into a l =
  if not (Mat.is_symmetric ~tol:1e-8 a) then
    raise (Singular "cholesky: matrix not symmetric");
  let n = Mat.rows a in
  if Mat.rows l <> n || Mat.cols l <> n then
    invalid_arg "Linalg.cholesky_into: dimension mismatch";
  (* Only the lower triangle of [l] is written (and later read); any
     stale upper-triangle entries in a reused buffer are harmless. *)
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (Mat.get l i k *. Mat.get l j k)
      done;
      if i = j then begin
        if !s <= 0.0 then raise (Singular "cholesky: not positive definite");
        Mat.set l i i (sqrt !s)
      end
      else Mat.set l i j (!s /. Mat.get l j j)
    done
  done

let[@slc.hot] cholesky_solve_into l b ~y ~x =
  let n = Mat.rows l in
  if Array.length b <> n || Array.length y <> n || Array.length x <> n then
    invalid_arg "Linalg.cholesky_solve_into: size mismatch";
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get l i j *. y.(j))
    done;
    let d = Mat.get l i i in
    if d = 0.0 then raise (Singular "lower_solve: zero diagonal");
    y.(i) <- !s /. d
  done;
  (* Back substitution against lᵀ, reading the lower triangle directly
     — same element order as [upper_solve (transpose l)]. *)
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get l j i *. x.(j))
    done;
    let d = Mat.get l i i in
    if d = 0.0 then raise (Singular "upper_solve: zero diagonal");
    x.(i) <- !s /. d
  done

let spd_inverse a =
  let n = Mat.rows a in
  let l = cholesky a in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let x = cholesky_solve l e in
    for i = 0 to n - 1 do
      Mat.set inv i j x.(i)
    done
  done;
  (* Symmetrize to remove round-off asymmetry. *)
  Mat.sym_part inv

(* Workspace variant of [spd_inverse]: factorization into [l], one
   unit-vector solve per column through [e]/[y], columns written
   straight into [out], then an in-place symmetrization.  Every
   floating-point operation matches [spd_inverse] (IEEE addition is
   commutative, so folding the (i,j)/(j,i) pair once is bitwise the
   [sym_part] result), so results are bitwise identical. *)
let[@slc.hot] spd_inverse_into a ~l ~e ~y ~out =
  let n = Mat.rows a in
  if
    Mat.rows l <> n || Mat.cols l <> n || Mat.rows out <> n
    || Mat.cols out <> n
    || Array.length e <> n
    || Array.length y <> n
  then invalid_arg "Linalg.spd_inverse_into: dimension mismatch";
  cholesky_into a l;
  for j = 0 to n - 1 do
    Array.fill e 0 n 0.0;
    e.(j) <- 1.0;
    (* Forward substitution (same element order as [lower_solve]). *)
    for i = 0 to n - 1 do
      let s = ref e.(i) in
      for k = 0 to i - 1 do
        s := !s -. (Mat.get l i k *. y.(k))
      done;
      let d = Mat.get l i i in
      if d = 0.0 then raise (Singular "lower_solve: zero diagonal");
      y.(i) <- !s /. d
    done;
    (* Back substitution against lᵀ, straight into column j of [out]
       (same element order as [upper_solve (transpose l)]). *)
    for i = n - 1 downto 0 do
      let s = ref y.(i) in
      for k = i + 1 to n - 1 do
        s := !s -. (Mat.get l k i *. Mat.get out k j)
      done;
      let d = Mat.get l i i in
      if d = 0.0 then raise (Singular "upper_solve: zero diagonal");
      Mat.set out i j (!s /. d)
    done
  done;
  (* In-place [sym_part]. *)
  for i = 0 to n - 1 do
    for j = 0 to i do
      let v = 0.5 *. (Mat.get out i j +. Mat.get out j i) in
      Mat.set out i j v;
      Mat.set out j i v
    done
  done

let spd_log_det a =
  let l = cholesky a in
  let n = Mat.rows a in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.get l i i)
  done;
  2.0 *. !acc

type lu = { lu_mat : Mat.t; perm : int array; sign : float }

let[@slc.hot] lu_factor_in_place a perm =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Linalg.lu_factor_in_place: not square";
  if Array.length perm <> n then
    invalid_arg "Linalg.lu_factor_in_place: permutation size mismatch";
  let m = Mat.data a in
  for i = 0 to n - 1 do
    perm.(i) <- i
  done;
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Partial pivoting: pick the largest magnitude in column k. *)
    let piv = ref k in
    let best = ref (Float.abs m.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs m.((i * n) + k) in
      if v > !best then begin
        best := v;
        piv := i
      end
    done;
    if !best < 1e-300 then raise (Singular "lu_factor_in_place: singular matrix");
    if !piv <> k then begin
      let rk = k * n and rp = !piv * n in
      for j = 0 to n - 1 do
        let t = m.(rk + j) in
        m.(rk + j) <- m.(rp + j);
        m.(rp + j) <- t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- t;
      sign := -. !sign
    end;
    let rk = k * n in
    let pivot = m.(rk + k) in
    for i = k + 1 to n - 1 do
      let ri = i * n in
      let f = m.(ri + k) /. pivot in
      m.(ri + k) <- f;
      for j = k + 1 to n - 1 do
        m.(ri + j) <- m.(ri + j) -. (f *. m.(rk + j))
      done
    done
  done;
  !sign

let[@slc.hot] lu_solve_in_place a perm ~b ~x =
  let n = Mat.rows a in
  if Array.length b <> n || Array.length x <> n || Array.length perm <> n then
    invalid_arg "Linalg.lu_solve_in_place: size mismatch";
  let m = Mat.data a in
  for i = 0 to n - 1 do
    x.(i) <- b.(perm.(i))
  done;
  (* Forward substitution with unit lower part. *)
  for i = 0 to n - 1 do
    let ri = i * n in
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (m.(ri + j) *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* Back substitution with the upper part. *)
  for i = n - 1 downto 0 do
    let ri = i * n in
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (m.(ri + j) *. x.(j))
    done;
    x.(i) <- !s /. m.(ri + i)
  done

(* Flat-slab LU for the batch transient engine: the same partial-pivot
   factorization and substitution as [lu_factor_in_place] /
   [lu_solve_in_place], operating on an [n * n] row-major block at
   [off] inside a flat Bigarray instead of a [Mat.t].  Pivot selection,
   the singularity threshold and every accumulation order are
   identical, so per-system results are bitwise equal to the Mat path.
   Returns [false] for a singular block instead of raising — the batch
   Newton loop treats that as a failed iteration, exactly as the
   scalar loop treats [Singular]. *)

type fslab = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* The accessors are written out longhand (no local get/set helpers):
   closures are heap blocks and this runs inside the batch Newton
   loop's allocation-free region. *)
let[@slc.hot] lu_factor_flat (m : fslab) ~off ~n ~(perm : int array) =
  for i = 0 to n - 1 do
    Array.unsafe_set perm i i
  done;
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < n do
    let k0 = !k in
    let piv = ref k0 in
    let best = ref (Float.abs (Bigarray.Array1.unsafe_get m (off + (k0 * n) + k0))) in
    for i = k0 + 1 to n - 1 do
      let v = Float.abs (Bigarray.Array1.unsafe_get m (off + (i * n) + k0)) in
      if v > !best then begin
        best := v;
        piv := i
      end
    done;
    if !best < 1e-300 then ok := false
    else begin
      if !piv <> k0 then begin
        let rk = off + (k0 * n) and rp = off + (!piv * n) in
        for j = 0 to n - 1 do
          let t = Bigarray.Array1.unsafe_get m (rk + j) in
          Bigarray.Array1.unsafe_set m (rk + j)
            (Bigarray.Array1.unsafe_get m (rp + j));
          Bigarray.Array1.unsafe_set m (rp + j) t
        done;
        let t = Array.unsafe_get perm k0 in
        Array.unsafe_set perm k0 (Array.unsafe_get perm !piv);
        Array.unsafe_set perm !piv t
      end;
      let rk = off + (k0 * n) in
      let pivot = Bigarray.Array1.unsafe_get m (rk + k0) in
      for i = k0 + 1 to n - 1 do
        let ri = off + (i * n) in
        let f = Bigarray.Array1.unsafe_get m (ri + k0) /. pivot in
        Bigarray.Array1.unsafe_set m (ri + k0) f;
        for j = k0 + 1 to n - 1 do
          Bigarray.Array1.unsafe_set m (ri + j)
            (Bigarray.Array1.unsafe_get m (ri + j)
            -. (f *. Bigarray.Array1.unsafe_get m (rk + j)))
        done
      done;
      incr k
    end
  done;
  !ok

let[@slc.hot] lu_solve_flat (m : fslab) ~off ~n ~(perm : int array)
    ~(b : fslab) ~boff ~(x : fslab) ~xoff =
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set x (xoff + i)
      (Bigarray.Array1.unsafe_get b (boff + Array.unsafe_get perm i))
  done;
  (* Forward substitution with unit lower part. *)
  for i = 0 to n - 1 do
    let ri = off + (i * n) in
    let s = ref (Bigarray.Array1.unsafe_get x (xoff + i)) in
    for j = 0 to i - 1 do
      s :=
        !s
        -. (Bigarray.Array1.unsafe_get m (ri + j)
           *. Bigarray.Array1.unsafe_get x (xoff + j))
    done;
    Bigarray.Array1.unsafe_set x (xoff + i) !s
  done;
  (* Back substitution with the upper part. *)
  for i = n - 1 downto 0 do
    let ri = off + (i * n) in
    let s = ref (Bigarray.Array1.unsafe_get x (xoff + i)) in
    for j = i + 1 to n - 1 do
      s :=
        !s
        -. (Bigarray.Array1.unsafe_get m (ri + j)
           *. Bigarray.Array1.unsafe_get x (xoff + j))
    done;
    Bigarray.Array1.unsafe_set x (xoff + i)
      (!s /. Bigarray.Array1.unsafe_get m (ri + i))
  done

let lu_decompose a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Linalg.lu_decompose: not square";
  let m = Mat.copy a in
  let perm = Array.make n 0 in
  let sign =
    try lu_factor_in_place m perm
    with Singular _ -> raise (Singular "lu_decompose: singular matrix")
  in
  { lu_mat = m; perm; sign }

let lu_solve { lu_mat; perm; _ } b =
  let n = Mat.rows lu_mat in
  if Array.length b <> n then invalid_arg "Linalg.lu_solve: size mismatch";
  let x = Array.make n 0.0 in
  lu_solve_in_place lu_mat perm ~b ~x;
  x

let lu_det { lu_mat; sign; _ } =
  let n = Mat.rows lu_mat in
  let acc = ref sign in
  for i = 0 to n - 1 do
    acc := !acc *. Mat.get lu_mat i i
  done;
  !acc

let solve a b = lu_solve (lu_decompose a) b

let inverse a =
  let n = Mat.rows a in
  let f = lu_decompose a in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let x = lu_solve f e in
    for i = 0 to n - 1 do
      Mat.set inv i j x.(i)
    done
  done;
  inv

let det a = lu_det (lu_decompose a)

let solve_least_squares a b =
  if Mat.rows a < Mat.cols a then
    invalid_arg "Linalg.solve_least_squares: underdetermined system";
  let at = Mat.transpose a in
  let ata = Mat.mul at a in
  let scale = Float.max 1e-30 (Mat.trace ata /. float_of_int (Mat.cols a)) in
  let ata = Mat.add_ridge ata (1e-12 *. scale) in
  let atb = Mat.mul_vec at b in
  solve_spd ata atb

(* Scaling-and-squaring expm with a (6,6) Pade approximant: accurate to
   double precision for the modest matrices used in tests. *)
let expm a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Linalg.expm: not square";
  (* Scale so that the 1-norm is below ~0.5. *)
  let norm1 =
    let best = ref 0.0 in
    for j = 0 to n - 1 do
      let col = ref 0.0 in
      for i = 0 to n - 1 do
        col := !col +. Float.abs (Mat.get a i j)
      done;
      best := Float.max !best !col
    done;
    !best
  in
  let s = max 0 (int_of_float (Float.ceil (Float.log2 (Float.max 1e-300 norm1 /. 0.5)))) in
  let a_scaled = Mat.scale (1.0 /. (2.0 ** float_of_int s)) a in
  (* (6,6) Pade: p(x) = sum c_k x^k with c_k = (12-k)! 6! / (12! k! (6-k)!). *)
  let c =
    [| 1.0; 0.5; 5.0 /. 44.0; 1.0 /. 66.0; 1.0 /. 792.0; 1.0 /. 15840.0;
       1.0 /. 665280.0 |]
  in
  let id = Mat.identity n in
  let powers = Array.make 7 id in
  for k = 1 to 6 do
    powers.(k) <- Mat.mul powers.(k - 1) a_scaled
  done;
  let p = ref (Mat.scale c.(0) id) and q = ref (Mat.scale c.(0) id) in
  for k = 1 to 6 do
    let term = Mat.scale c.(k) powers.(k) in
    p := Mat.add !p term;
    q := Mat.add !q (Mat.scale (if k mod 2 = 0 then 1.0 else -1.0) term)
  done;
  (* exp(A_scaled) ~ q^-1 p, then square s times. *)
  let e = ref (Mat.mul (inverse !q) !p) in
  for _ = 1 to s do
    e := Mat.mul !e !e
  done;
  !e
