(** The [slc serve] daemon: an accept loop on a Unix-domain or TCP
    socket, one thread per connection, every request answered through a
    shared resident {!Engine.t}.

    The same dispatch loop also runs directly over a channel pair
    ({!serve_channels}) — the CLI's local [slc query] mode — so a
    served response line is byte-for-byte the line the one-shot CLI
    prints for the same request.

    Shutdown is {e draining}: {!stop} stops accepting, lets every
    in-flight request finish and flush its response, then closes the
    connections and returns. *)

type endpoint =
  | Unix_socket of string  (** filesystem path *)
  | Tcp of string * int    (** host, port (port 0 = ephemeral) *)

val endpoint_of_string : string -> (endpoint, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], a bare path containing ['/'], or
    a bare ["HOST:PORT"]. *)

val endpoint_to_string : endpoint -> string

type t

val start : ?backlog:int -> Engine.t -> endpoint -> t
(** Binds, listens and spawns the accept thread; returns immediately.
    A Unix-socket path is unlinked first (and again on {!stop}); a TCP
    endpoint with port 0 is bound ephemerally — read the real port
    back with {!endpoint}.  Raises {!Slc_obs.Slc_error.Invalid_input}
    for an unresolvable host, [Unix.Unix_error] for bind failures. *)

val endpoint : t -> endpoint
(** The endpoint actually bound (TCP port resolved). *)

val request_stop : t -> unit
(** Asks the server to stop: no new connections are accepted and every
    connection closes once its current request (if any) is answered.
    Non-blocking and idempotent — safe to call from a connection
    handler (the [shutdown] request) or a signal handler. *)

val wait : t -> unit
(** Blocks until the server has fully stopped: accept thread joined,
    in-flight requests drained, connections and listen socket closed,
    Unix-socket path unlinked. *)

val stop : t -> unit
(** {!request_stop} + {!wait}. *)

val serve_channels : Engine.t -> in_channel -> out_channel -> unit
(** Runs the connection loop over an arbitrary channel pair: reads one
    request per line until end-of-file or [quit]/[shutdown], writes
    exactly one response line per request and flushes after each.
    This is the socket handler's own loop — the CLI's local mode goes
    through it to make local and served responses identical. *)
