(* Newline-delimited request/response protocol.  All response floats go
   through Hexfloat so the text round-trips bit-exactly; request floats
   accept decimal too (humans type decimal, tools replay hex). *)

module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Hexfloat = Slc_num.Hexfloat

type query = {
  q_tech : string;
  q_cell : string;
  q_pin : string;
  q_dir : Arc.direction;
  q_k : int;
  q_point : Harness.point;
}

type pdf_query = {
  p_tech : string;
  p_cell : string;
  p_pin : string;
  p_dir : Arc.direction;
  p_method : string;
  p_k : int;
  p_seeds : int;
  p_rng : int;
  p_grid : int;
  p_point : Harness.point;
}

type sta_query = {
  s_tech : string;
  s_k : int;
  s_clock : float;
  s_netlist : string;
}

type request =
  | Delay of query
  | Slew of query
  | Pdf of pdf_query
  | Sta of sta_query
  | Stats
  | Ping
  | Quit
  | Shutdown

type error_kind = Parse | Domain | Internal

type response =
  | Ok_delay of float * float
  | Ok_slew of float
  | Ok_pdf of (float * float) array
  | Ok_sta of (string * float * float * float) list
  | Ok_stats of (string * string) list
  | Ok_pong
  | Ok_bye
  | Err of error_kind * string

(* ----------------------------------------------------------------- *)
(* Parsing *)

let tokens line =
  String.split_on_char ' ' (String.trim line)
  |> List.filter (fun s -> s <> "")

(* Local to the parser; every raise is caught in [parse_request] /
   [parse_response] and surfaced as [Error _]. *)
exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let int_tok what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> bad "%s: expected an integer, got %S" what s

let float_tok what s =
  match Hexfloat.of_string_opt s with
  | Some v -> v
  | None -> bad "%s: expected a float, got %S" what s

let dir_tok s =
  match s with
  | "rise" -> Arc.Rise
  | "fall" -> Arc.Fall
  | _ -> bad "direction: expected rise or fall, got %S" s

let point_of sin cload vdd =
  {
    Harness.sin = float_tok "sin" sin;
    cload = float_tok "cload" cload;
    vdd = float_tok "vdd" vdd;
  }

let query_of = function
  | [ tech; cell; pin; dir; k; sin; cload; vdd ] ->
    {
      q_tech = tech;
      q_cell = cell;
      q_pin = pin;
      q_dir = dir_tok dir;
      q_k = int_tok "k" k;
      q_point = point_of sin cload vdd;
    }
  | args ->
    bad "expected <tech> <cell> <pin> rise|fall <k> <sin> <cload> <vdd>, got %d argument(s)"
      (List.length args)

let pdf_query_of = function
  | [ tech; cell; pin; dir; meth; k; seeds; rng; grid; sin; cload; vdd ] ->
    {
      p_tech = tech;
      p_cell = cell;
      p_pin = pin;
      p_dir = dir_tok dir;
      p_method = meth;
      p_k = int_tok "k" k;
      p_seeds = int_tok "seeds" seeds;
      p_rng = int_tok "rng" rng;
      p_grid = int_tok "grid" grid;
      p_point = point_of sin cload vdd;
    }
  | args ->
    bad "expected <tech> <cell> <pin> rise|fall <method> <k> <seeds> <rng> <grid> <sin> <cload> <vdd>, got %d argument(s)"
      (List.length args)

let sta_query_of = function
  | [ tech; k; clock; netlist ] ->
    {
      s_tech = tech;
      s_k = int_tok "k" k;
      s_clock = float_tok "clock" clock;
      s_netlist = netlist;
    }
  | args ->
    bad "expected <tech> <k> <clock> <netlist-path>, got %d argument(s)"
      (List.length args)

let parse_request line =
  match tokens line with
  | [] -> Error "empty request"
  | verb :: args -> (
    try
      match (verb, args) with
      | "delay", args -> Ok (Delay (query_of args))
      | "slew", args -> Ok (Slew (query_of args))
      | "pdf", args -> Ok (Pdf (pdf_query_of args))
      | "sta", args -> Ok (Sta (sta_query_of args))
      | "stats", [] -> Ok Stats
      | "ping", [] -> Ok Ping
      | "quit", [] -> Ok Quit
      | "shutdown", [] -> Ok Shutdown
      | ("stats" | "ping" | "quit" | "shutdown"), _ :: _ ->
        Error (Printf.sprintf "%s takes no arguments" verb)
      | _ -> Error (Printf.sprintf "unknown request %S" verb)
    with Bad m -> Error (Printf.sprintf "%s: %s" verb m))

(* ----------------------------------------------------------------- *)
(* Formatting *)

let hex = Hexfloat.to_string

let dir_str = Arc.direction_to_string

let format_query verb q =
  Printf.sprintf "%s %s %s %s %s %d %s %s %s" verb q.q_tech q.q_cell q.q_pin
    (dir_str q.q_dir) q.q_k (hex q.q_point.Harness.sin)
    (hex q.q_point.Harness.cload) (hex q.q_point.Harness.vdd)

let format_request = function
  | Delay q -> format_query "delay" q
  | Slew q -> format_query "slew" q
  | Pdf p ->
    Printf.sprintf "pdf %s %s %s %s %s %d %d %d %d %s %s %s" p.p_tech p.p_cell
      p.p_pin (dir_str p.p_dir) p.p_method p.p_k p.p_seeds p.p_rng p.p_grid
      (hex p.p_point.Harness.sin) (hex p.p_point.Harness.cload)
      (hex p.p_point.Harness.vdd)
  | Sta s ->
    Printf.sprintf "sta %s %d %s %s" s.s_tech s.s_k (hex s.s_clock) s.s_netlist
  | Stats -> "stats"
  | Ping -> "ping"
  | Quit -> "quit"
  | Shutdown -> "shutdown"

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let error_kind_label = function
  | Parse -> "parse"
  | Domain -> "domain"
  | Internal -> "internal"

let format_response = function
  | Ok_delay (td, sout) -> Printf.sprintf "ok delay %s %s" (hex td) (hex sout)
  | Ok_slew sout -> Printf.sprintf "ok slew %s" (hex sout)
  | Ok_pdf pairs ->
    let b = Buffer.create (16 * Array.length pairs) in
    Buffer.add_string b (Printf.sprintf "ok pdf %d" (Array.length pairs));
    Array.iter
      (fun (x, p) ->
        Buffer.add_char b ' ';
        Buffer.add_string b (hex x);
        Buffer.add_char b ' ';
        Buffer.add_string b (hex p))
      pairs;
    Buffer.contents b
  | Ok_sta rows ->
    let b = Buffer.create 64 in
    Buffer.add_string b (Printf.sprintf "ok sta %d" (List.length rows));
    List.iter
      (fun (net, arr, req, slack) ->
        Buffer.add_string b
          (Printf.sprintf " %s %s %s %s" net (hex arr) (hex req) (hex slack)))
      rows;
    Buffer.contents b
  | Ok_stats kvs ->
    let b = Buffer.create 64 in
    Buffer.add_string b "ok stats";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%s" k v))
      kvs;
    Buffer.contents b
  | Ok_pong -> "ok pong"
  | Ok_bye -> "ok bye"
  | Err (kind, msg) ->
    Printf.sprintf "err %s %s" (error_kind_label kind) (one_line msg)

(* ----------------------------------------------------------------- *)
(* Response parsing (the client half) *)

let error_kind_of = function
  | "parse" -> Parse
  | "domain" -> Domain
  | "internal" -> Internal
  | s -> bad "unknown error kind %S" s

let rec take_pairs what acc = function
  | [] -> List.rev acc
  | [ _ ] -> bad "%s: odd number of values" what
  | x :: p :: rest ->
    take_pairs what ((float_tok what x, float_tok what p) :: acc) rest

let rec take_rows acc = function
  | [] -> List.rev acc
  | net :: arr :: req :: slack :: rest ->
    take_rows
      ((net, float_tok "arrival" arr, float_tok "required" req,
        float_tok "slack" slack)
      :: acc)
      rest
  | _ -> bad "sta: truncated row"

let kv_of tok =
  match String.index_opt tok '=' with
  | Some i ->
    (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> bad "stats: expected key=value, got %S" tok

let parse_response line =
  match tokens line with
  | [] -> Error "empty response"
  | toks -> (
    try
      match toks with
      | [ "ok"; "delay"; td; sout ] ->
        Ok (Ok_delay (float_tok "td" td, float_tok "sout" sout))
      | [ "ok"; "slew"; sout ] -> Ok (Ok_slew (float_tok "sout" sout))
      | "ok" :: "pdf" :: n :: rest ->
        let n = int_tok "n" n in
        let pairs = Array.of_list (take_pairs "pdf" [] rest) in
        if Array.length pairs <> n then
          bad "pdf: header says %d pairs, line carries %d" n
            (Array.length pairs)
        else Ok (Ok_pdf pairs)
      | "ok" :: "sta" :: n :: rest ->
        let n = int_tok "n" n in
        let rows = take_rows [] rest in
        if List.length rows <> n then
          bad "sta: header says %d rows, line carries %d" n (List.length rows)
        else Ok (Ok_sta rows)
      | "ok" :: "stats" :: kvs -> Ok (Ok_stats (List.map kv_of kvs))
      | [ "ok"; "pong" ] -> Ok Ok_pong
      | [ "ok"; "bye" ] -> Ok Ok_bye
      | "err" :: kind :: rest ->
        Ok (Err (error_kind_of kind, String.concat " " rest))
      | verb :: _ -> Error (Printf.sprintf "unrecognized response %S" verb)
      | [] -> Error "empty response"
    with Bad m -> Error m)
