(* Accept loop + per-connection threads over a shared Engine.

   Drain discipline: [request_stop] flips the stopping flag and wakes
   the accept loop with a throwaway connection; [wait] then joins the
   accept thread, half-closes every live connection's receive side
   (unblocking readers without cutting off a response in flight) and
   joins the handlers.  A handler finishes its current request and
   flushes the reply before it notices the flag, so stopping never
   truncates an answer. *)

module Harness = Slc_cell.Harness
module Telemetry = Slc_obs.Telemetry
module Slc_error = Slc_obs.Slc_error

type endpoint = Unix_socket of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_socket path -> Printf.sprintf "unix:%s" path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let endpoint_of_string s =
  let host_port hp =
    match String.rindex_opt hp ':' with
    | None -> Error (Printf.sprintf "endpoint %S: expected HOST:PORT" s)
    | Some i -> (
      let host = String.sub hp 0 i in
      let port = String.sub hp (i + 1) (String.length hp - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "endpoint %S: bad port %S" s port))
  in
  match String.index_opt s ':' with
  | Some 4 when String.sub s 0 4 = "unix" ->
    Ok (Unix_socket (String.sub s 5 (String.length s - 5)))
  | Some 3 when String.sub s 0 3 = "tcp" ->
    host_port (String.sub s 4 (String.length s - 4))
  | Some _ -> host_port s
  | None ->
    if String.contains s '/' then Ok (Unix_socket s)
    else Error (Printf.sprintf "endpoint %S: want unix:PATH or tcp:HOST:PORT" s)

(* ----------------------------------------------------------------- *)
(* Per-connection state: request count and latency reservoir for the
   p50/p99 the [stats] request reports. *)

type conn_stats = {
  mutable requests : int;
  mutable errors : int;
  mutable lat_s : float array;  (* seconds, first [nlat] live *)
  mutable nlat : int;
  opened_counters : Telemetry.snapshot;
  opened_sims : int;
}

let new_conn_stats () =
  {
    requests = 0;
    errors = 0;
    lat_s = Array.make 64 0.0;
    nlat = 0;
    opened_counters = Telemetry.snapshot ();
    opened_sims = Harness.sim_count ();
  }

let record_latency cs dt =
  if cs.nlat = Array.length cs.lat_s then begin
    let bigger = Array.make (2 * cs.nlat) 0.0 in
    Array.blit cs.lat_s 0 bigger 0 cs.nlat;
    cs.lat_s <- bigger
  end;
  cs.lat_s.(cs.nlat) <- dt;
  cs.nlat <- cs.nlat + 1

let percentile_us cs q =
  if cs.nlat = 0 then 0.0
  else begin
    let a = Array.sub cs.lat_s 0 cs.nlat in
    Array.sort compare a;
    let i =
      int_of_float (Float.round (q *. float_of_int (cs.nlat - 1)))
    in
    a.(i) *. 1e6
  end

let conn_stat_fields cs =
  let delta =
    Telemetry.diff ~before:cs.opened_counters ~after:(Telemetry.snapshot ())
  in
  let d name = string_of_int (Telemetry.snapshot_value delta name) in
  [
    ("requests", string_of_int cs.requests);
    ("errors", string_of_int cs.errors);
    ("p50_us", Printf.sprintf "%.1f" (percentile_us cs 0.5));
    ("p99_us", Printf.sprintf "%.1f" (percentile_us cs 0.99));
    ("conn_sims", string_of_int (Harness.sim_count () - cs.opened_sims));
    ("conn_oracle_hits", d "oracle_hits");
    ("conn_oracle_misses", d "oracle_misses");
    ("conn_trained_hits", d "trained_hits");
    ("conn_trained_misses", d "trained_misses");
  ]

(* ----------------------------------------------------------------- *)
(* The connection loop, shared by socket handlers and the CLI's local
   mode.  [`Close] ends the connection, [`Shutdown] additionally stops
   the whole server. *)

let answer engine cs line =
  let t0 = Unix.gettimeofday () in
  let resp, ctl =
    match Protocol.parse_request line with
    | Error msg -> (Protocol.Err (Protocol.Parse, msg), `Continue)
    | Ok req ->
      let ctl =
        match req with
        | Protocol.Quit -> `Close
        | Protocol.Shutdown -> `Shutdown
        | _ -> `Continue
      in
      let resp =
        match req with
        | Protocol.Stats ->
          Protocol.Ok_stats (conn_stat_fields cs @ Engine.stats engine)
        | req -> Engine.exec engine req
      in
      (resp, ctl)
  in
  cs.requests <- cs.requests + 1;
  Telemetry.incr Telemetry.server_requests;
  (match resp with
  | Protocol.Err _ ->
    cs.errors <- cs.errors + 1;
    Telemetry.incr Telemetry.server_errors
  | _ -> ());
  record_latency cs (Unix.gettimeofday () -. t0);
  (Protocol.format_response resp, ctl)

let serve_loop ~stopping ~on_shutdown engine ic oc =
  let cs = new_conn_stats () in
  let rec loop () =
    if Atomic.get stopping then ()
    else
      match input_line ic with
      | exception (End_of_file | Sys_error _) -> ()
      | line ->
        if String.trim line = "" then loop ()
        else begin
          let reply, ctl = answer engine cs line in
          (match
             output_string oc reply;
             output_char oc '\n';
             flush oc
           with
          | () -> ()
          | exception Sys_error _ -> ());
          match ctl with
          | `Close -> ()
          | `Shutdown -> on_shutdown ()
          | `Continue -> loop ()
        end
  in
  loop ()

let serve_channels engine ic oc =
  serve_loop
    ~stopping:(Atomic.make false)
    ~on_shutdown:(fun () -> ())
    engine ic oc

(* ----------------------------------------------------------------- *)
(* The daemon *)

type t = {
  engine : Engine.t;
  listen_fd : Unix.file_descr;
  ep : endpoint;  (* as bound: TCP port resolved *)
  stopping : bool Atomic.t;
  lock : Mutex.t;  (* guards [conns] *)
  mutable conns : (Unix.file_descr * Thread.t) list;
  mutable accepter : Thread.t option;
}

let endpoint t = t.ep

let unlink_quiet path =
  try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) ->
      Slc_error.invalid_input ~site:"Server.start"
        (Printf.sprintf "cannot resolve host %S" host))

let request_stop t =
  if Atomic.compare_and_set t.stopping false true then begin
    (* Wake the accept loop with a throwaway connection; if the listen
       socket is already gone the loop has already noticed. *)
    try
      let domain, addr =
        match t.ep with
        | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
        | Tcp (_, port) ->
          (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      in
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Unix.connect fd addr)
    with Unix.Unix_error _ -> ()
  end

let handle t fd =
  Telemetry.incr Telemetry.server_connections;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () ->
      (try flush oc with Sys_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* A handler must never take the process down: I/O races during
         shutdown (reads from a half-closed socket) surface as spurious
         exceptions that only this connection cares about. *)
      try
        serve_loop ~stopping:t.stopping
          ~on_shutdown:(fun () -> request_stop t)
          t.engine ic oc
      with _ -> ())

let rec accept_loop t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) ->
    if Atomic.get t.stopping then () else accept_loop t
  | exception Unix.Unix_error _ -> ()
  | fd, _addr ->
    if Atomic.get t.stopping then (
      (try Unix.close fd with Unix.Unix_error _ -> ()))
    else begin
      let th = Thread.create (fun () -> handle t fd) () in
      Mutex.lock t.lock;
      t.conns <- (fd, th) :: t.conns;
      Mutex.unlock t.lock;
      accept_loop t
    end

let start ?(backlog = 16) engine ep =
  (* A client that disconnects mid-response must cost EPIPE, not the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listen_fd, ep =
    match ep with
    | Unix_socket path ->
      unlink_quiet path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd backlog;
      (fd, Unix_socket path)
    | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
      Unix.listen fd backlog;
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp (host, port))
  in
  let t =
    {
      engine;
      listen_fd;
      ep;
      stopping = Atomic.make false;
      lock = Mutex.create ();
      conns = [];
      accepter = None;
    }
  in
  t.accepter <- Some (Thread.create accept_loop t);
  t

let wait t =
  (match t.accepter with Some th -> Thread.join th | None -> ());
  Mutex.lock t.lock;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.lock;
  (* Half-close: blocked readers see end-of-file, but a response still
     being written goes out whole. *)
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  let self = Thread.id (Thread.self ()) in
  List.iter
    (fun (_, th) -> if Thread.id th <> self then Thread.join th)
    conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  match t.ep with Unix_socket path -> unlink_quiet path | Tcp _ -> ()

let stop t =
  request_stop t;
  wait t
