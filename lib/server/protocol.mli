(** Wire protocol of the characterization server: newline-delimited
    text, one request per line, one response line per request.

    Requests (tokens separated by spaces):

    {v
    delay <tech> <cell> <pin> rise|fall <k> <sin> <cload> <vdd>
    slew  <tech> <cell> <pin> rise|fall <k> <sin> <cload> <vdd>
    pdf   <tech> <cell> <pin> rise|fall <method> <k> <seeds> <rng> <grid>
          <sin> <cload> <vdd>
    sta   <tech> <k> <clock> <netlist-path>
    stats
    ping
    quit
    shutdown
    v}

    Responses:

    {v
    ok delay <td> <sout>
    ok slew <sout>
    ok pdf <n> <x1> <p1> ... <xn> <pn>
    ok sta <n> <net> <arrival> <required> <slack> ...
    ok stats <key>=<value> ...
    ok pong
    ok bye
    err parse|domain|internal <message>
    v}

    Every float in a response is rendered with {!Slc_num.Hexfloat}, so
    responses are {e bitwise} identical to the library values they
    carry — the contract behind "a served query equals the one-shot
    CLI".  Request floats accept both hexadecimal and decimal forms.
    [sta] netlist paths and net names must not contain spaces (the
    Verilog subset only produces such identifiers). *)

(** A delay/slew query: one timing arc at one input condition, answered
    by the [k]-simulation Bayesian bank. *)
type query = {
  q_tech : string;
  q_cell : string;
  q_pin : string;
  q_dir : Slc_cell.Arc.direction;  (** output transition direction *)
  q_k : int;
  q_point : Slc_cell.Harness.point;
}

(** A statistical delay-pdf query (the paper's Fig 9 curve as a
    service): [p_seeds] Monte-Carlo process seeds drawn with generator
    seed [p_rng], per-seed extraction method [p_method]
    (["bayes"]/["lse"]/["lut"]) with budget [p_k], density evaluated on
    a [p_grid]-point KDE grid at [p_point]. *)
type pdf_query = {
  p_tech : string;
  p_cell : string;
  p_pin : string;
  p_dir : Slc_cell.Arc.direction;
  p_method : string;
  p_k : int;
  p_seeds : int;
  p_rng : int;
  p_grid : int;
  p_point : Slc_cell.Harness.point;
}

(** A slack-report query over a structural-Verilog netlist file, timed
    with the [k]-simulation Bayesian bank against a required time of
    [s_clock] seconds at every primary output. *)
type sta_query = {
  s_tech : string;
  s_k : int;
  s_clock : float;
  s_netlist : string;  (** path to the netlist, resolved server-side *)
}

type request =
  | Delay of query
  | Slew of query
  | Pdf of pdf_query
  | Sta of sta_query
  | Stats
  | Ping
  | Quit      (** close this connection after the reply *)
  | Shutdown  (** stop the whole server after the reply *)

type error_kind =
  | Parse     (** the request line did not parse *)
  | Domain    (** well-formed but unanswerable: unknown tech/cell/arc,
                  netlist errors, simulation failures *)
  | Internal  (** unexpected server-side failure *)

type response =
  | Ok_delay of float * float  (** (delay, output slew) *)
  | Ok_slew of float
  | Ok_pdf of (float * float) array  (** (value, density) pairs *)
  | Ok_sta of (string * float * float * float) list
      (** (net, arrival, required, slack), most critical first *)
  | Ok_stats of (string * string) list
  | Ok_pong
  | Ok_bye
  | Err of error_kind * string

val parse_request : string -> (request, string) result
(** Parses one request line (leading/trailing whitespace ignored). *)

val format_request : request -> string
(** Inverse of {!parse_request}; floats are rendered in hexadecimal so
    the round-trip is exact. *)

val format_response : response -> string
(** One line, no trailing newline.  Error messages have embedded
    newlines flattened to spaces so the framing survives. *)

val parse_response : string -> (response, string) result
(** Parses one response line — the client half of the protocol. *)
