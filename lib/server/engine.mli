(** The resident query engine behind [slc serve] (and the [slc query]
    local mode): every expensive artifact a request needs — the learned
    prior, trained Bayesian banks, Oracle query caches, extracted
    statistical populations — is built on first use and kept for the
    life of the engine, so a warm repeat of any request costs zero
    simulator runs.

    Thread-safety: every memo table publishes first-build-wins under a
    mutex with the build running {e outside} the lock (the same
    discipline as [Oracle.of_predictors] and the trained-bank cache).
    Concurrent misses on the same key may compute more than once;
    builds are deterministic, so every caller then sees the single
    published value and results are independent of interleaving. *)

type t

val create :
  ?store:Slc_store.Store.t ->
  ?prior_for:(Slc_device.Tech.t -> Slc_core.Prior.pair) ->
  ?bank:(Slc_device.Tech.t -> k:int -> Slc_ssta.Oracle.t) ->
  unit ->
  t
(** [?store] backs every tier with the persistent artifact store:
    priors, trained predictors and populations are loaded when present
    and written back when computed, so a freshly started server warm
    from a store answers with zero simulations.

    [?prior_for] overrides where priors come from (default: learn from
    [Tech.historical_for], through the store when given, memoized per
    technology).  [?bank] overrides the delay/slew oracle constructor
    (default: [Oracle.bayes_bank] over [prior_for]) — tests inject
    cheap synthetic banks here. *)

val exec : t -> Protocol.request -> Protocol.response
(** Answers one request.  Re-entrant: any number of threads may call
    it concurrently.  Never raises — well-formed-but-unanswerable
    requests (unknown technology, netlist parse errors, simulation
    failures) come back as [Err (Domain, _)], anything unexpected as
    [Err (Internal, _)].  [Stats] reports process-wide counters only;
    the server layer prepends per-connection fields. *)

val stats : t -> (string * string) list
(** Process-wide counters: [sims] (the always-on simulator-run count)
    plus the [Slc_obs.Telemetry] cache counters (all 0 unless telemetry
    is enabled). *)
