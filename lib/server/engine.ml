(* The resident query engine: long-lived caches + request dispatch.

   Locking discipline (same as Oracle's memo and trained bank): look up
   under the mutex, compute outside it, re-check and publish
   first-build-wins.  Builds are deterministic, so duplicate concurrent
   builds cannot change what callers observe. *)

open Slc_core
module Tech = Slc_device.Tech
module Process = Slc_device.Process
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Store = Slc_store.Store
module Oracle = Slc_ssta.Oracle
module Telemetry = Slc_obs.Telemetry
module Slc_error = Slc_obs.Slc_error

(* Raised for well-formed requests the library cannot answer; caught in
   [exec] and rendered as [Err (Domain, _)].  Never escapes. *)
exception Domain_error of string

let domain_fail fmt = Printf.ksprintf (fun m -> raise (Domain_error m)) fmt

(* (key, value) memo published first-build-wins; [build] runs outside
   the lock.  The generic core of every engine cache. *)
let memo_find_or_build ~lock table key build =
  Mutex.lock lock;
  let hit = Hashtbl.find_opt table key in
  Mutex.unlock lock;
  match hit with
  | Some v -> v
  | None ->
    let v = build () in
    Mutex.lock lock;
    let v =
      match Hashtbl.find_opt table key with
      | Some first -> first
      | None ->
        Hashtbl.add table key v;
        v
    in
    Mutex.unlock lock;
    v

type pop_key = {
  pk_tech : string;
  pk_cell : string;
  pk_pin : string;
  pk_dir : string;
  pk_method : string;
  pk_k : int;
  pk_seeds : int;
  pk_rng : int;
}

type t = {
  store : Store.t option;
  prior_for : Tech.t -> Prior.pair;
  bank : Tech.t -> k:int -> Oracle.t;
  lock : Mutex.t;  (* guards [oracles] and [pops] *)
  oracles : (string * int, Oracle.t) Hashtbl.t;
      (* (tech name, k) -> query-cached bank *)
  pops : (pop_key, Statistical.population) Hashtbl.t;
}

let create ?store ?prior_for ?bank () =
  let prior_for =
    match prior_for with
    | Some f -> f
    | None ->
      (* One learned (or store-loaded) prior per technology, shared by
         every k and by the pdf path — prior physical identity is what
         keys the process-wide trained-predictor cache. *)
      let priors : (string, Prior.pair) Hashtbl.t = Hashtbl.create 4 in
      let lock = Mutex.create () in
      fun tech ->
        memo_find_or_build ~lock priors tech.Tech.name (fun () ->
            match store with
            | Some st ->
              Store.get_prior st ~historical:(Tech.historical_for tech)
            | None -> Prior.learn_pair ~historical:(Tech.historical_for tech) ())
  in
  let bank =
    match bank with
    | Some b -> b
    | None ->
      fun tech ~k -> Oracle.bayes_bank ?store ~prior:(prior_for tech) tech ~k
  in
  {
    store;
    prior_for;
    bank;
    lock = Mutex.create ();
    oracles = Hashtbl.create 8;
    pops = Hashtbl.create 8;
  }

(* ----------------------------------------------------------------- *)
(* Name resolution (Not_found -> typed domain error) *)

let tech_of name =
  match Tech.by_name name with
  | t -> t
  | exception Not_found -> domain_fail "unknown technology %S" name

let cell_of name =
  match Cells.by_name name with
  | c -> c
  | exception Not_found -> domain_fail "unknown cell %S" name

let arc_of cell ~pin ~dir =
  match Arc.find cell ~pin ~out_dir:dir with
  | a -> a
  | exception Not_found ->
    domain_fail "cell %s has no %s arc on pin %S" cell.Cells.name
      (Arc.direction_to_string dir) pin

(* ----------------------------------------------------------------- *)
(* Query paths *)

(* The per-(tech, k) bank, wrapped in an exact query cache so repeated
   conditions are answered without re-entering the predictor.  Bank
   construction is cheap; training happens lazily per arc inside the
   bank's own memo. *)
let oracle_for t tech ~k =
  memo_find_or_build ~lock:t.lock t.oracles (tech.Tech.name, k) (fun () ->
      Oracle.cached (Oracle.make_cache ()) (t.bank tech ~k))

let run_query t (q : Protocol.query) =
  if q.q_k < 1 then domain_fail "k must be >= 1, got %d" q.q_k;
  let tech = tech_of q.q_tech in
  let arc = arc_of (cell_of q.q_cell) ~pin:q.q_pin ~dir:q.q_dir in
  let oracle = oracle_for t tech ~k:q.q_k in
  oracle.Oracle.query arc q.q_point

let method_of t tech = function
  | "bayes" -> Statistical.Bayes (t.prior_for tech)
  | "lse" -> Statistical.Lse
  | "lut" -> Statistical.Lut
  | m -> domain_fail "unknown method %S (want bayes, lse or lut)" m

let population_for t (p : Protocol.pdf_query) tech arc =
  let key =
    {
      pk_tech = tech.Tech.name;
      pk_cell = p.p_cell;
      pk_pin = p.p_pin;
      pk_dir = Arc.direction_to_string p.p_dir;
      pk_method = p.p_method;
      pk_k = p.p_k;
      pk_seeds = p.p_seeds;
      pk_rng = p.p_rng;
    }
  in
  memo_find_or_build ~lock:t.lock t.pops key (fun () ->
      let seeds =
        Process.sample_batch (Slc_prob.Rng.create p.p_rng) tech p.p_seeds
      in
      let method_ = method_of t tech p.p_method in
      match t.store with
      | None ->
        Statistical.extract_population_design ~design:Statistical.Curated
          ~method_ ~tech ~arc ~seeds ~budget:p.p_k ()
      | Some st ->
        fst
          (Store.extract_population ~store:st ~method_
             ~design:Statistical.Curated ~tech ~arc ~seeds ~budget:p.p_k ()))

let run_pdf t (p : Protocol.pdf_query) =
  if p.p_k < 1 then domain_fail "k must be >= 1, got %d" p.p_k;
  if p.p_seeds < 2 then domain_fail "seeds must be >= 2, got %d" p.p_seeds;
  if p.p_grid < 2 then domain_fail "grid must be >= 2, got %d" p.p_grid;
  let tech = tech_of p.p_tech in
  let arc = arc_of (cell_of p.p_cell) ~pin:p.p_pin ~dir:p.p_dir in
  let pop = population_for t p tech arc in
  Statistical.predict_density pop p.p_point ~td:true ~grid:p.p_grid

let run_sta t (s : Protocol.sta_query) =
  if s.s_k < 1 then domain_fail "k must be >= 1, got %d" s.s_k;
  let tech = tech_of s.s_tech in
  let src =
    match
      In_channel.with_open_text s.s_netlist In_channel.input_all
    with
    | src -> src
    | exception Sys_error m -> domain_fail "netlist: %s" m
  in
  let v =
    match Slc_ssta.Verilog.parse src with
    | v -> v
    | exception Slc_ssta.Verilog.Parse_error m ->
      domain_fail "netlist parse error: %s" m
  in
  let dag, _inputs, outputs =
    match Slc_ssta.Verilog.to_sdag v tech ~vdd:tech.Tech.vdd_nom with
    | r -> r
    | exception Slc_ssta.Verilog.Parse_error m ->
      domain_fail "netlist error: %s" m
  in
  let oracle = oracle_for t tech ~k:s.s_k in
  let input_arrivals _ =
    Slc_ssta.Sdag.input_edge ~at:0.0 ~slew:5e-12 ~rises:true
  in
  let rows =
    Slc_ssta.Sdag.slack_report dag oracle ~input_arrivals
      ~outputs:(List.map (fun (_, n) -> (n, s.s_clock)) outputs)
  in
  (* Same rows the CLI's slack table prints: constrained nets only. *)
  List.filter_map
    (fun r ->
      if r.Slc_ssta.Sdag.required_time < Float.infinity then
        Some
          ( r.Slc_ssta.Sdag.net_label,
            r.Slc_ssta.Sdag.arrival_time,
            r.Slc_ssta.Sdag.required_time,
            r.Slc_ssta.Sdag.slack )
      else None)
    rows

(* ----------------------------------------------------------------- *)
(* Stats + dispatch *)

let stats _t =
  let c name counter = (name, string_of_int (Telemetry.read counter)) in
  [
    ("sims", string_of_int (Harness.sim_count ()));
    c "simulations" Telemetry.simulations;
    c "oracle_hits" Telemetry.oracle_hits;
    c "oracle_misses" Telemetry.oracle_misses;
    c "trained_hits" Telemetry.trained_hits;
    c "trained_misses" Telemetry.trained_misses;
    c "store_hits" Telemetry.store_hits;
    c "store_misses" Telemetry.store_misses;
    c "template_hits" Telemetry.template_hits;
    c "template_misses" Telemetry.template_misses;
  ]

let exec t (req : Protocol.request) : Protocol.response =
  try
    match req with
    | Ping -> Ok_pong
    | Quit | Shutdown -> Ok_bye
    | Stats -> Ok_stats (stats t)
    | Delay q ->
      let td, sout = run_query t q in
      Ok_delay (td, sout)
    | Slew q ->
      let _td, sout = run_query t q in
      Ok_slew sout
    | Pdf p -> Ok_pdf (run_pdf t p)
    | Sta s -> Ok_sta (run_sta t s)
  with
  | Domain_error m -> Err (Domain, m)
  | Slc_error.Invalid_input iv -> Err (Domain, Slc_error.invalid_message iv)
  | Slc_error.No_convergence c ->
    Err (Domain, Slc_error.convergence_message c)
  | Slc_error.Simulation_failed sf ->
    Err (Domain, Slc_error.sim_failure_message sf)
  | Slc_error.Store_failed sf ->
    Err (Domain, Slc_error.store_fault_message sf)
  | Not_found -> Err (Domain, "not found")
  | Sys_error m -> Err (Domain, m)
  | e -> Err (Internal, Printexc.to_string e)
