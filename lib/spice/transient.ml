module Mosfet = Slc_device.Mosfet
module Mat = Slc_num.Mat
module Linalg = Slc_num.Linalg
module Slc_error = Slc_obs.Slc_error
module Telemetry = Slc_obs.Telemetry

type integrator = Backward_euler | Trapezoidal

type options = {
  integrator : integrator;
  tstop : float;
  dt_init : float;
  dt_min : float;
  dt_max : float;
  abstol : float;
  dxtol : float;
  max_newton : int;
  gmin : float;
  breakpoints : float list;
}

let default_options ~tstop =
  if tstop <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Transient.default_options" "tstop <= 0";
  {
    integrator = Trapezoidal;
    tstop;
    dt_init = tstop /. 400.0;
    dt_min = tstop *. 1e-7;
    dt_max = tstop /. 100.0;
    abstol = 1e-12;
    dxtol = 1e-7;
    max_newton = 40;
    gmin = 1e-12;
    breakpoints = [];
  }

(* Compiled view of the netlist for fast stamping.  The topology arrays
   (node indices) are immutable and may be shared between many compiled
   instances; the parameter arrays (device params, capacitances, source
   stimuli) are the per-instance values.  {!respecialize} swaps the
   parameter arrays while reusing the topology, which is what lets
   callers cache the compiled structure per circuit shape and restamp
   only the values that change between runs. *)
type compiled = {
  n_nodes : int;
  free_index : int array; (* node id -> solver index, or -1 if pinned *)
  free_nodes : int array; (* solver index -> node id *)
  mos_params : Mosfet.params array;
  mos_g : int array;
  mos_d : int array;
  mos_s : int array;
  cap_c : float array;
  cap_a : int array;
  cap_b : int array;
  res_r : float array;
  res_a : int array;
  res_b : int array;
  src_node : int array;
  src_stim : Stimulus.t array;
}

let compile net =
  Netlist.validate net;
  let n_nodes = Netlist.node_count net in
  let free_index = Array.make n_nodes (-1) in
  let free = ref [] in
  for n = n_nodes - 1 downto 1 do
    if not (Netlist.pinned net n) then free := n :: !free
  done;
  let free_nodes = Array.of_list !free in
  Array.iteri (fun i n -> free_index.(n) <- i) free_nodes;
  let mosfets = ref [] and caps = ref [] and resistors = ref [] in
  List.iter
    (fun e ->
      match e with
      | Netlist.Mosfet { params; g; d; s } ->
        mosfets := (params, g, d, s) :: !mosfets
      | Netlist.Capacitor { c; a; b } -> caps := (c, a, b) :: !caps
      | Netlist.Resistor { r; a; b } -> resistors := (r, a, b) :: !resistors)
    (Netlist.elements net);
  let mosfets = Array.of_list (List.rev !mosfets) in
  let caps = Array.of_list (List.rev !caps) in
  let resistors = Array.of_list (List.rev !resistors) in
  let srcs = Array.of_list (Netlist.sources net) in
  {
    n_nodes;
    free_index;
    free_nodes;
    mos_params = Array.map (fun (p, _, _, _) -> p) mosfets;
    mos_g = Array.map (fun (_, g, _, _) -> g) mosfets;
    mos_d = Array.map (fun (_, _, d, _) -> d) mosfets;
    mos_s = Array.map (fun (_, _, _, s) -> s) mosfets;
    cap_c = Array.map (fun (c, _, _) -> c) caps;
    cap_a = Array.map (fun (_, a, _) -> a) caps;
    cap_b = Array.map (fun (_, _, b) -> b) caps;
    res_r = Array.map (fun (r, _, _) -> r) resistors;
    res_a = Array.map (fun (_, a, _) -> a) resistors;
    res_b = Array.map (fun (_, _, b) -> b) resistors;
    src_node = Array.map fst srcs;
    src_stim = Array.map snd srcs;
  }

let node_count c = c.n_nodes

let respecialize c ~mosfets ~caps ~sources =
  if Array.length mosfets <> Array.length c.mos_params then
    Slc_obs.Slc_error.invalid_input ~site:"Transient.respecialize" "mosfet count mismatch";
  if Array.length caps <> Array.length c.cap_c then
    Slc_obs.Slc_error.invalid_input ~site:"Transient.respecialize" "capacitor count mismatch";
  if Array.length sources <> Array.length c.src_stim then
    Slc_obs.Slc_error.invalid_input ~site:"Transient.respecialize" "source count mismatch";
  { c with mos_params = mosfets; cap_c = caps; src_stim = sources }

let apply_sources c v t =
  for i = 0 to Array.length c.src_node - 1 do
    v.(c.src_node.(i)) <- c.src_stim.(i) t
  done

(* Scaled sources for DC source stepping: pinned nodes are driven at
   [alpha] times their stimulus value, walking alpha from ~0 (where the
   zero solution is exact) to 1 by continuation. *)
let apply_sources_scaled c v t ~alpha =
  for i = 0 to Array.length c.src_node - 1 do
    v.(c.src_node.(i)) <- alpha *. c.src_stim.(i) t
  done

let source_vmax c ~at =
  let m = ref 0.0 in
  for i = 0 to Array.length c.src_stim - 1 do
    m := Float.max !m (c.src_stim.(i) at)
  done;
  !m

(* Per-run scratch buffers, allocated once and reused by every Newton
   iteration: dense Jacobian, residual, negated-RHS/update vector,
   pivot indices, previous node voltages and per-capacitor branch
   currents.  Nothing in the Newton loop allocates. *)
type workspace = {
  w_free : int;    (* number of free (solved) nodes *)
  w_nodes : int;   (* total node count *)
  jac : Mat.t;     (* w_free x w_free *)
  resid : float array;
  rhs : float array;
  perm : int array;
  v_prev : float array;
  mutable icap : float array;
  mutable icap_next : float array;
  ebuf : Mosfet.eval_buf; (* device-evaluation scratch *)
  (* Diagnostics of the most recent Newton attempt, for the structured
     No_convergence payload: residual inf-norm and iteration count at
     the last iterate (success or failure). *)
  mutable last_fnorm : float;
  mutable last_iters : int;
}

let make_workspace c =
  let n = Array.length c.free_nodes in
  let ncaps = Array.length c.cap_c in
  {
    w_free = n;
    w_nodes = c.n_nodes;
    jac = Mat.create n n;
    resid = Array.make n 0.0;
    rhs = Array.make n 0.0;
    perm = Array.make n 0;
    v_prev = Array.make c.n_nodes 0.0;
    icap = Array.make ncaps 0.0;
    icap_next = Array.make ncaps 0.0;
    ebuf = Mosfet.make_eval_buf ();
    last_fnorm = 0.0;
    last_iters = 0;
  }

let check_workspace ws c =
  if
    ws.w_free <> Array.length c.free_nodes
    || ws.w_nodes <> c.n_nodes
    || Array.length ws.icap <> Array.length c.cap_c
  then Slc_obs.Slc_error.invalid_input ~site:"Transient" "workspace does not match the compiled circuit"

(* Stamp static (resistive + device + gmin) contributions into residual f
   and the raw row-major Jacobian storage jd (stride n).  v is the full
   node-voltage array.

   The residual/Jacobian accumulations are written out longhand (rather
   than through add_f/add_j helpers) so every float stays in a register:
   a float passed to a non-inlined local function is boxed, and at
   ~75 accumulations per Newton iteration that boxing dominated the
   loop's allocation profile. *)
let[@inline] [@slc.hot] add_f f fi nd x =
  let i = Array.unsafe_get fi nd in
  if i >= 0 then Array.unsafe_set f i (Array.unsafe_get f i +. x)

let[@inline] [@slc.hot] add_j jd n fi nd md x =
  let i = Array.unsafe_get fi nd and j = Array.unsafe_get fi md in
  if i >= 0 && j >= 0 then begin
    let k = (i * n) + j in
    Array.unsafe_set jd k (Array.unsafe_get jd k +. x)
  end

let[@slc.hot] stamp_static c ~gmin ~ebuf v f jd n =
  let fi = c.free_index in
  for k = 0 to Array.length c.res_r - 1 do
    let a = c.res_a.(k) and b = c.res_b.(k) in
    let g = 1.0 /. c.res_r.(k) in
    let i = g *. (v.(a) -. v.(b)) in
    add_f f fi a i;
    add_f f fi b (-.i);
    add_j jd n fi a a g;
    add_j jd n fi a b (-.g);
    add_j jd n fi b b g;
    add_j jd n fi b a (-.g)
  done;
  for k = 0 to Array.length c.mos_params - 1 do
    let g = c.mos_g.(k) and d = c.mos_d.(k) and s = c.mos_s.(k) in
    Mosfet.eval_into c.mos_params.(k) ~vg:v.(g) ~vd:v.(d) ~vs:v.(s) ebuf;
    let id = ebuf.Mosfet.b_id
    and d_vg = ebuf.Mosfet.b_vg
    and d_vd = ebuf.Mosfet.b_vd
    and d_vs = ebuf.Mosfet.b_vs in
    (* id enters the drain terminal: it leaves node d and enters
       node s. *)
    add_f f fi d id;
    add_f f fi s (-.id);
    add_j jd n fi d g d_vg;
    add_j jd n fi d d d_vd;
    add_j jd n fi d s d_vs;
    add_j jd n fi s g (-.d_vg);
    add_j jd n fi s d (-.d_vd);
    add_j jd n fi s s (-.d_vs)
  done;
  (* gmin keeps isolated or floating nodes well-conditioned. *)
  for i = 0 to Array.length c.free_nodes - 1 do
    let nd = c.free_nodes.(i) in
    f.(i) <- f.(i) +. (gmin *. v.(nd));
    let k = (i * n) + i in
    jd.(k) <- jd.(k) +. gmin
  done

(* Capacitor current for the chosen integration method.  For
   trapezoidal integration the companion model needs the capacitor
   current at the previous accepted step (icap_prev). *)
let[@inline] [@slc.hot] cap_current ~method_ ~dt cap dv dv_prev i_prev =
  match method_ with
  | Backward_euler -> cap /. dt *. (dv -. dv_prev)
  | Trapezoidal -> (2.0 *. cap /. dt *. (dv -. dv_prev)) -. i_prev

let[@inline] [@slc.hot] cap_conductance ~method_ ~dt cap =
  match method_ with
  | Backward_euler -> cap /. dt
  | Trapezoidal -> 2.0 *. cap /. dt

let[@slc.hot] stamp_caps c ~method_ ~dt ~icap_prev v v_prev f jd n =
  let fi = c.free_index in
  for idx = 0 to Array.length c.cap_c - 1 do
    let cap = c.cap_c.(idx) and a = c.cap_a.(idx) and b = c.cap_b.(idx) in
    let geq = cap_conductance ~method_ ~dt cap in
    let i =
      cap_current ~method_ ~dt cap
        (v.(a) -. v.(b))
        (v_prev.(a) -. v_prev.(b))
        icap_prev.(idx)
    in
    add_f f fi a i;
    add_f f fi b (-.i);
    add_j jd n fi a a geq;
    add_j jd n fi a b (-.geq);
    add_j jd n fi b b geq;
    add_j jd n fi b a (-.geq)
  done

(* Damped Newton on the free nodes.  [with_caps] selects transient vs DC
   residuals.  Returns the number of iterations or None on failure;
   v is updated in place on success (and left modified on failure).
   All scratch storage comes from the workspace: the loop body performs
   no heap allocation. *)
let[@slc.hot] newton ws c opts ~gmin ~caps ~v_prev v =
  let n = ws.w_free in
  let f = ws.resid in
  let jd = Mat.data ws.jac in
  (* Iteration state: 0 = still iterating, -1 = failed (iteration cap or
     singular Jacobian), k > 0 = converged at iteration k.  A flat loop
     rather than a local [rec iterate] closure keeps the body free of
     heap allocation. *)
  let outcome = ref 0 in
  let k = ref 1 in
  while !outcome = 0 do
    if !k > opts.max_newton then outcome := -1
    else begin
      Array.fill f 0 n 0.0;
      Array.fill jd 0 (n * n) 0.0;
      stamp_static c ~gmin ~ebuf:ws.ebuf v f jd n;
      (match caps with
      | Some (method_, dt, icap_prev) ->
        stamp_caps c ~method_ ~dt ~icap_prev v v_prev f jd n
      | None -> ());
      let fnorm = ref 0.0 in
      for i = 0 to n - 1 do
        fnorm := Float.max !fnorm (Float.abs f.(i))
      done;
      let fnorm = !fnorm in
      ws.last_fnorm <- fnorm;
      ws.last_iters <- !k;
      let factored =
        match Linalg.lu_factor_in_place ws.jac ws.perm with
        | (_ : float) -> true
        | exception Linalg.Singular _ -> false
      in
      if not factored then outcome := -1
      else begin
        (* Negate the residual in place; the solve reads it through the
           pivot permutation and writes the update into rhs. *)
        for i = 0 to n - 1 do
          f.(i) <- -.f.(i)
        done;
        Linalg.lu_solve_in_place ws.jac ws.perm ~b:f ~x:ws.rhs;
        let dx = ws.rhs in
        (* Voltage-step damping: cap updates at 0.3 V per iteration. *)
        let dmax = ref 0.0 in
        for i = 0 to n - 1 do
          dmax := Float.max !dmax (Float.abs dx.(i))
        done;
        let dmax = !dmax in
        let scale = if dmax > 0.3 then 0.3 /. dmax else 1.0 in
        for i = 0 to n - 1 do
          let node = Array.unsafe_get c.free_nodes i in
          v.(node) <- v.(node) +. (scale *. dx.(i))
        done;
        if fnorm < opts.abstol && dmax *. scale < opts.dxtol then
          outcome := !k
        else incr k
      end
    end
  done;
  if !outcome < 0 then None else Some !outcome

let dc_solve ws c opts ~at v =
  apply_sources c v at;
  Array.blit v 0 ws.v_prev 0 c.n_nodes;
  let v_prev = ws.v_prev in
  (* Direct attempt, then gmin stepping from strongly damped to the
     target gmin, then source stepping (ramping every source from zero
     to its full value by continuation). *)
  match newton ws c opts ~gmin:opts.gmin ~caps:None ~v_prev v with
  | Some _ -> ()
  | None ->
    let ok = ref false in
    let attempt gmin_start =
      if not !ok then begin
        (* Reset the guess to mid-rail before each continuation run. *)
        let vmax = source_vmax c ~at in
        Array.iter (fun nfree -> v.(nfree) <- 0.5 *. vmax) c.free_nodes;
        apply_sources c v at;
        let g = ref gmin_start in
        let all_ok = ref true in
        while !all_ok && !g >= opts.gmin do
          (match newton ws c opts ~gmin:!g ~caps:None ~v_prev v with
          | Some _ -> ()
          | None -> all_ok := false);
          g := !g /. 100.0
        done;
        if !all_ok then ok := true
      end
    in
    let attempt_source_stepping () =
      if not !ok then begin
        Telemetry.incr Telemetry.dc_source_fallbacks;
        (* At alpha = 0 every source is grounded and (with gmin) the
           zero vector solves the system exactly; walk alpha up to 1,
           starting each solve from the previous alpha's solution. *)
        Array.iter (fun nfree -> v.(nfree) <- 0.0) c.free_nodes;
        let steps = 10 in
        let all_ok = ref true in
        for s = 1 to steps do
          if !all_ok then begin
            let alpha = float_of_int s /. float_of_int steps in
            apply_sources_scaled c v at ~alpha;
            match newton ws c opts ~gmin:opts.gmin ~caps:None ~v_prev v with
            | Some _ -> ()
            | None -> all_ok := false
          end
        done;
        if !all_ok then ok := true
      end
    in
    Telemetry.incr Telemetry.dc_gmin_fallbacks;
    attempt 1e-3;
    attempt 1e-1;
    attempt_source_stepping ();
    if not !ok then
      Slc_error.raise_no_convergence ~phase:Slc_error.Dc_operating_point
        ~time_reached:at ~dt:0.0 ~newton_iters:ws.last_iters
        ~residual:ws.last_fnorm "dc_solve: gmin and source stepping failed"

let dc_operating_point net ~at =
  let c = compile net in
  let ws = make_workspace c in
  let v = Array.make c.n_nodes 0.0 in
  let opts = default_options ~tstop:1.0 in
  let vmax = source_vmax c ~at in
  Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
  dc_solve ws c opts ~at v;
  v

let dc_sweep_compiled ?workspace c ~node ~values =
  if node <= 0 || node >= c.n_nodes || c.free_index.(node) >= 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Transient.dc_sweep" "node must be driven by a source";
  let src_i =
    let found = ref (-1) in
    Array.iteri
      (fun i n -> if n = node && !found < 0 then found := i)
      c.src_node;
    if !found < 0 then
      Slc_obs.Slc_error.invalid_input ~site:"Transient.dc_sweep" "node must be driven by a source";
    !found
  in
  let ws =
    match workspace with
    | Some ws ->
      check_workspace ws c;
      ws
    | None -> make_workspace c
  in
  let opts = default_options ~tstop:1.0 in
  let v = Array.make c.n_nodes 0.0 in
  let vmax = source_vmax c ~at:0.0 in
  Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
  apply_sources c v 0.0;
  (* The sweep swaps the swept source's stimulus for each DC value so
     that EVERY solve — including the gmin/source-stepping fallbacks,
     which re-apply sources from scratch — sees the sweep value (the
     old code let the fallback solve against the un-swept stimulus and
     then polished at the right value, which could both fail spuriously
     and, on failure, leave the mutated stimulus behind).  The original
     stimulus is restored on all exits, so a compiled circuit cached by
     a higher layer is never left corrupted for its next user. *)
  let saved_stim = c.src_stim.(src_i) in
  Fun.protect
    ~finally:(fun () -> c.src_stim.(src_i) <- saved_stim)
    (fun () ->
      Array.map
        (fun value ->
          c.src_stim.(src_i) <- Stimulus.dc value;
          apply_sources c v 0.0;
          (* Continuation from the previous point's solution; full
             solve from scratch (mid-rail reset, gmin and source
             stepping) when that fails. *)
          (match newton ws c opts ~gmin:opts.gmin ~caps:None ~v_prev:ws.v_prev v with
          | Some _ -> ()
          | None -> (
            Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
            try dc_solve ws c opts ~at:0.0 v
            with Slc_error.No_convergence d ->
              raise
                (Slc_error.No_convergence
                   {
                     d with
                     Slc_error.phase = Slc_error.Dc_sweep;
                     detail =
                       Printf.sprintf "dc_sweep at %.6g V: %s" value
                         d.Slc_error.detail;
                   })));
          Array.copy v)
        values)

let dc_sweep net ~node ~values =
  dc_sweep_compiled (compile net) ~node ~values

type result = {
  r_times : float array;
  r_volts : float array array;
      (* per step: the full node vector, or just the recorded columns *)
  r_record : int array option; (* node ids per column; None = all nodes *)
  r_newton : int;
  r_steps : int;
  r_degraded : bool;        (* a recovery rung with relaxed numerics ran *)
  r_recovery : string list; (* escalation rungs attempted, in order *)
}

let run_compiled ?workspace ?record opts c =
  if opts.tstop <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Transient.run" "tstop <= 0";
  let ws =
    match workspace with
    | Some ws ->
      check_workspace ws c;
      ws
    | None -> make_workspace c
  in
  (match record with
  | Some nodes ->
    Array.iter
      (fun n ->
        if n < 0 || n >= c.n_nodes then
          Slc_obs.Slc_error.invalid_input ~site:"Transient.run" "recorded node out of range")
      nodes
  | None -> ());
  let snapshot v =
    match record with
    | None -> Array.copy v
    | Some nodes -> Array.map (fun n -> v.(n)) nodes
  in
  let v = Array.make c.n_nodes 0.0 in
  let vmax = source_vmax c ~at:0.0 in
  Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
  dc_solve ws c opts ~at:0.0 v;
  let break_times =
    List.sort_uniq compare
      (List.filter (fun t -> t > 0.0 && t < opts.tstop) opts.breakpoints)
  in
  let times = ref [ 0.0 ] in
  let volts = ref [ snapshot v ] in
  let newton_total = ref 0 in
  let steps = ref 0 in
  (* Per-capacitor branch current at the last accepted time point
     (zero at the DC operating point). *)
  Array.fill ws.icap 0 (Array.length ws.icap) 0.0;
  let t = ref 0.0 in
  let dt = ref opts.dt_init in
  let pending_breaks = ref break_times in
  let v_prev = ws.v_prev in
  while !t < opts.tstop -. (1e-9 *. opts.tstop) do
    (* Clip the step to the next breakpoint or tstop. *)
    let next_limit =
      match !pending_breaks with
      | b :: _ when b > !t +. (1e-12 *. opts.tstop) -> Float.min b opts.tstop
      | _ -> opts.tstop
    in
    let dt_eff = Float.min !dt (next_limit -. !t) in
    let t_new = !t +. dt_eff in
    Array.blit v 0 v_prev 0 c.n_nodes;
    apply_sources c v t_new;
    (* Trapezoidal needs a valid previous cap current; take the very
       first step with backward Euler. *)
    let method_ =
      match opts.integrator with
      | Backward_euler -> Backward_euler
      | Trapezoidal -> if !steps = 0 then Backward_euler else Trapezoidal
    in
    (match
       newton ws c opts ~gmin:opts.gmin
         ~caps:(Some (method_, dt_eff, ws.icap))
         ~v_prev v
     with
    | Some iters ->
      (* Commit the capacitor-current state for the accepted step,
         writing into the spare buffer and swapping. *)
      let icap_prev = ws.icap and icap_new = ws.icap_next in
      for idx = 0 to Array.length c.cap_c - 1 do
        let a = c.cap_a.(idx) and b = c.cap_b.(idx) in
        icap_new.(idx) <-
          cap_current ~method_ ~dt:dt_eff c.cap_c.(idx)
            (v.(a) -. v.(b))
            (v_prev.(a) -. v_prev.(b))
            icap_prev.(idx)
      done;
      ws.icap <- icap_new;
      ws.icap_next <- icap_prev;
      newton_total := !newton_total + iters;
      incr steps;
      t := t_new;
      times := t_new :: !times;
      volts := snapshot v :: !volts;
      (match !pending_breaks with
      | b :: rest when t_new >= b -. (1e-12 *. opts.tstop) ->
        pending_breaks := rest
      | _ -> ());
      (* Grow the step after quick convergence. *)
      if iters <= 5 then dt := Float.min opts.dt_max (!dt *. 1.4)
      else if iters > 15 then dt := Float.max opts.dt_min (!dt *. 0.7)
    | None ->
      (* Reject: restore state and halve the step. *)
      Telemetry.incr Telemetry.newton_rejects;
      Array.blit v_prev 0 v 0 c.n_nodes;
      dt := dt_eff /. 2.0;
      if !dt < opts.dt_min then
        Slc_error.raise_no_convergence ~phase:Slc_error.Transient_step
          ~time_reached:!t ~dt:!dt ~newton_iters:ws.last_iters
          ~residual:ws.last_fnorm "run: step size underflow")
  done;
  Telemetry.add Telemetry.newton_iters !newton_total;
  Telemetry.add Telemetry.transient_steps !steps;
  {
    r_times = Array.of_list (List.rev !times);
    r_volts = Array.of_list (List.rev !volts);
    r_record = record;
    r_newton = !newton_total;
    r_steps = !steps;
    r_degraded = false;
    r_recovery = [];
  }

let run ?record opts net = run_compiled ?record opts (compile net)

(* ------------------------------------------------------------------ *)
(* Convergence-recovery escalation ladder.

   Each rung re-runs the whole transient with progressively more
   forgiving options.  The first two rungs change only HOW the solver
   walks to the solution (smaller initial step; the DC-level gmin and
   source stepping always run inside dc_solve), so a success there is a
   full-quality result.  The last two rungs change the numerics
   themselves (boosted gmin, relaxed tolerances) and therefore mark the
   result degraded: usable, but to be surfaced to the caller. *)

let recovery_rungs :
    (string * bool * (options -> options)) list =
  [
    ( "tight-step",
      false,
      fun o -> { o with dt_init = Float.max o.dt_min (o.dt_init /. 16.0) } );
    ( "gmin-boost",
      true,
      fun o ->
        {
          o with
          gmin = o.gmin *. 1e3;
          dt_init = Float.max o.dt_min (o.dt_init /. 4.0);
        } );
    ( "relaxed-tol",
      true,
      fun o ->
        {
          o with
          abstol = Float.max (o.abstol *. 1e4) 1e-9;
          dxtol = Float.max (o.dxtol *. 1e4) 1e-5;
        } );
  ]

let run_recovered ?workspace ?record ?(max_recovery = 3) opts c =
  match run_compiled ?workspace ?record opts c with
  | r -> r
  | exception Slc_error.No_convergence d0 ->
    let rungs =
      List.filteri (fun i _ -> i < max_recovery) recovery_rungs
    in
    let rec escalate attempted = function
      | [] ->
        (* Every rung failed: re-raise the ORIGINAL failure's
           diagnostics, annotated with the rungs that were tried. *)
        raise
          (Slc_error.No_convergence
             { d0 with Slc_error.recovery = List.rev attempted })
      | (name, degrades, tweak) :: rest -> (
        Telemetry.incr Telemetry.recovery_attempts;
        match run_compiled ?workspace ?record (tweak opts) c with
        | r ->
          Telemetry.incr Telemetry.recovery_rescues;
          if degrades then Telemetry.incr Telemetry.degraded_runs;
          {
            r with
            r_degraded = degrades;
            r_recovery = List.rev (name :: attempted);
          }
        | exception Slc_error.No_convergence _ ->
          escalate (name :: attempted) rest)
    in
    escalate [] rungs

let times r = r.r_times

let waveform r node =
  if Array.length r.r_volts = 0 then Slc_obs.Slc_error.invalid_input ~site:"Transient.waveform" "empty";
  let column =
    match r.r_record with
    | None ->
      if node < 0 || node >= Array.length r.r_volts.(0) then
        Slc_obs.Slc_error.invalid_input ~site:"Transient.waveform" "unknown node";
      node
    | Some nodes -> (
      let found = ref (-1) in
      Array.iteri (fun i n -> if n = node && !found < 0 then found := i) nodes;
      match !found with
      | -1 -> Slc_obs.Slc_error.invalid_input ~site:"Transient.waveform" "node was not recorded"
      | i -> i)
  in
  let values = Array.map (fun v -> v.(column)) r.r_volts in
  Waveform.make ~times:r.r_times ~values

let newton_iterations_total r = r.r_newton

let steps_taken r = r.r_steps

let degraded r = r.r_degraded

let recovery_log r = r.r_recovery
