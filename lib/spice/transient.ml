module Mosfet = Slc_device.Mosfet
module Mat = Slc_num.Mat
module Linalg = Slc_num.Linalg
module Slc_error = Slc_obs.Slc_error
module Telemetry = Slc_obs.Telemetry

type integrator = Backward_euler | Trapezoidal

type options = {
  integrator : integrator;
  tstop : float;
  dt_init : float;
  dt_min : float;
  dt_max : float;
  abstol : float;
  dxtol : float;
  max_newton : int;
  gmin : float;
  breakpoints : float list;
}

let default_options ~tstop =
  if tstop <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Transient.default_options" "tstop <= 0";
  {
    integrator = Trapezoidal;
    tstop;
    dt_init = tstop /. 400.0;
    dt_min = tstop *. 1e-7;
    dt_max = tstop /. 100.0;
    abstol = 1e-12;
    dxtol = 1e-7;
    max_newton = 40;
    gmin = 1e-12;
    breakpoints = [];
  }

(* Compiled view of the netlist for fast stamping.  The topology arrays
   (node indices) are immutable and may be shared between many compiled
   instances; the parameter arrays (device params, capacitances, source
   stimuli) are the per-instance values.  {!respecialize} swaps the
   parameter arrays while reusing the topology, which is what lets
   callers cache the compiled structure per circuit shape and restamp
   only the values that change between runs. *)
type compiled = {
  n_nodes : int;
  free_index : int array; (* node id -> solver index, or -1 if pinned *)
  free_nodes : int array; (* solver index -> node id *)
  mos_params : Mosfet.params array;
  mos_g : int array;
  mos_d : int array;
  mos_s : int array;
  cap_c : float array;
  cap_a : int array;
  cap_b : int array;
  res_r : float array;
  res_a : int array;
  res_b : int array;
  src_node : int array;
  src_stim : Stimulus.t array;
}

let compile net =
  Netlist.validate net;
  let n_nodes = Netlist.node_count net in
  let free_index = Array.make n_nodes (-1) in
  let free = ref [] in
  for n = n_nodes - 1 downto 1 do
    if not (Netlist.pinned net n) then free := n :: !free
  done;
  let free_nodes = Array.of_list !free in
  Array.iteri (fun i n -> free_index.(n) <- i) free_nodes;
  let mosfets = ref [] and caps = ref [] and resistors = ref [] in
  List.iter
    (fun e ->
      match e with
      | Netlist.Mosfet { params; g; d; s } ->
        mosfets := (params, g, d, s) :: !mosfets
      | Netlist.Capacitor { c; a; b } -> caps := (c, a, b) :: !caps
      | Netlist.Resistor { r; a; b } -> resistors := (r, a, b) :: !resistors)
    (Netlist.elements net);
  let mosfets = Array.of_list (List.rev !mosfets) in
  let caps = Array.of_list (List.rev !caps) in
  let resistors = Array.of_list (List.rev !resistors) in
  let srcs = Array.of_list (Netlist.sources net) in
  {
    n_nodes;
    free_index;
    free_nodes;
    mos_params = Array.map (fun (p, _, _, _) -> p) mosfets;
    mos_g = Array.map (fun (_, g, _, _) -> g) mosfets;
    mos_d = Array.map (fun (_, _, d, _) -> d) mosfets;
    mos_s = Array.map (fun (_, _, _, s) -> s) mosfets;
    cap_c = Array.map (fun (c, _, _) -> c) caps;
    cap_a = Array.map (fun (_, a, _) -> a) caps;
    cap_b = Array.map (fun (_, _, b) -> b) caps;
    res_r = Array.map (fun (r, _, _) -> r) resistors;
    res_a = Array.map (fun (_, a, _) -> a) resistors;
    res_b = Array.map (fun (_, _, b) -> b) resistors;
    src_node = Array.map fst srcs;
    src_stim = Array.map snd srcs;
  }

let node_count c = c.n_nodes

let respecialize c ~mosfets ~caps ~sources =
  if Array.length mosfets <> Array.length c.mos_params then
    Slc_obs.Slc_error.invalid_input ~site:"Transient.respecialize" "mosfet count mismatch";
  if Array.length caps <> Array.length c.cap_c then
    Slc_obs.Slc_error.invalid_input ~site:"Transient.respecialize" "capacitor count mismatch";
  if Array.length sources <> Array.length c.src_stim then
    Slc_obs.Slc_error.invalid_input ~site:"Transient.respecialize" "source count mismatch";
  { c with mos_params = mosfets; cap_c = caps; src_stim = sources }

let apply_sources c v t =
  for i = 0 to Array.length c.src_node - 1 do
    v.(c.src_node.(i)) <- c.src_stim.(i) t
  done

(* Scaled sources for DC source stepping: pinned nodes are driven at
   [alpha] times their stimulus value, walking alpha from ~0 (where the
   zero solution is exact) to 1 by continuation. *)
let apply_sources_scaled c v t ~alpha =
  for i = 0 to Array.length c.src_node - 1 do
    v.(c.src_node.(i)) <- alpha *. c.src_stim.(i) t
  done

let source_vmax c ~at =
  let m = ref 0.0 in
  for i = 0 to Array.length c.src_stim - 1 do
    m := Float.max !m (c.src_stim.(i) at)
  done;
  !m

(* Per-run scratch buffers, allocated once and reused by every Newton
   iteration: dense Jacobian, residual, negated-RHS/update vector,
   pivot indices, previous node voltages and per-capacitor branch
   currents.  Nothing in the Newton loop allocates. *)
type workspace = {
  w_free : int;    (* number of free (solved) nodes *)
  w_nodes : int;   (* total node count *)
  jac : Mat.t;     (* w_free x w_free *)
  resid : float array;
  rhs : float array;
  perm : int array;
  v_prev : float array;
  mutable icap : float array;
  mutable icap_next : float array;
  ebuf : Mosfet.eval_buf; (* device-evaluation scratch *)
  (* Diagnostics of the most recent Newton attempt, for the structured
     No_convergence payload: residual inf-norm and iteration count at
     the last iterate (success or failure). *)
  mutable last_fnorm : float;
  mutable last_iters : int;
}

let make_workspace c =
  let n = Array.length c.free_nodes in
  let ncaps = Array.length c.cap_c in
  {
    w_free = n;
    w_nodes = c.n_nodes;
    jac = Mat.create n n;
    resid = Array.make n 0.0;
    rhs = Array.make n 0.0;
    perm = Array.make n 0;
    v_prev = Array.make c.n_nodes 0.0;
    icap = Array.make ncaps 0.0;
    icap_next = Array.make ncaps 0.0;
    ebuf = Mosfet.make_eval_buf ();
    last_fnorm = 0.0;
    last_iters = 0;
  }

let check_workspace ws c =
  if
    ws.w_free <> Array.length c.free_nodes
    || ws.w_nodes <> c.n_nodes
    || Array.length ws.icap <> Array.length c.cap_c
  then Slc_obs.Slc_error.invalid_input ~site:"Transient" "workspace does not match the compiled circuit"

(* Stamp static (resistive + device + gmin) contributions into residual f
   and the raw row-major Jacobian storage jd (stride n).  v is the full
   node-voltage array.

   The residual/Jacobian accumulations are written out longhand (rather
   than through add_f/add_j helpers) so every float stays in a register:
   a float passed to a non-inlined local function is boxed, and at
   ~75 accumulations per Newton iteration that boxing dominated the
   loop's allocation profile. *)
let[@inline] [@slc.hot] add_f f fi nd x =
  let i = Array.unsafe_get fi nd in
  if i >= 0 then Array.unsafe_set f i (Array.unsafe_get f i +. x)

let[@inline] [@slc.hot] add_j jd n fi nd md x =
  let i = Array.unsafe_get fi nd and j = Array.unsafe_get fi md in
  if i >= 0 && j >= 0 then begin
    let k = (i * n) + j in
    Array.unsafe_set jd k (Array.unsafe_get jd k +. x)
  end

let[@slc.hot] stamp_static c ~gmin ~ebuf v f jd n =
  let fi = c.free_index in
  for k = 0 to Array.length c.res_r - 1 do
    let a = c.res_a.(k) and b = c.res_b.(k) in
    let g = 1.0 /. c.res_r.(k) in
    let i = g *. (v.(a) -. v.(b)) in
    add_f f fi a i;
    add_f f fi b (-.i);
    add_j jd n fi a a g;
    add_j jd n fi a b (-.g);
    add_j jd n fi b b g;
    add_j jd n fi b a (-.g)
  done;
  for k = 0 to Array.length c.mos_params - 1 do
    let g = c.mos_g.(k) and d = c.mos_d.(k) and s = c.mos_s.(k) in
    Mosfet.eval_into c.mos_params.(k) ~vg:v.(g) ~vd:v.(d) ~vs:v.(s) ebuf;
    let id = ebuf.Mosfet.b_id
    and d_vg = ebuf.Mosfet.b_vg
    and d_vd = ebuf.Mosfet.b_vd
    and d_vs = ebuf.Mosfet.b_vs in
    (* id enters the drain terminal: it leaves node d and enters
       node s. *)
    add_f f fi d id;
    add_f f fi s (-.id);
    add_j jd n fi d g d_vg;
    add_j jd n fi d d d_vd;
    add_j jd n fi d s d_vs;
    add_j jd n fi s g (-.d_vg);
    add_j jd n fi s d (-.d_vd);
    add_j jd n fi s s (-.d_vs)
  done;
  (* gmin keeps isolated or floating nodes well-conditioned. *)
  for i = 0 to Array.length c.free_nodes - 1 do
    let nd = c.free_nodes.(i) in
    f.(i) <- f.(i) +. (gmin *. v.(nd));
    let k = (i * n) + i in
    jd.(k) <- jd.(k) +. gmin
  done

(* Capacitor current for the chosen integration method.  For
   trapezoidal integration the companion model needs the capacitor
   current at the previous accepted step (icap_prev). *)
let[@inline] [@slc.hot] cap_current ~method_ ~dt cap dv dv_prev i_prev =
  match method_ with
  | Backward_euler -> cap /. dt *. (dv -. dv_prev)
  | Trapezoidal -> (2.0 *. cap /. dt *. (dv -. dv_prev)) -. i_prev

let[@inline] [@slc.hot] cap_conductance ~method_ ~dt cap =
  match method_ with
  | Backward_euler -> cap /. dt
  | Trapezoidal -> 2.0 *. cap /. dt

let[@slc.hot] stamp_caps c ~method_ ~dt ~icap_prev v v_prev f jd n =
  let fi = c.free_index in
  for idx = 0 to Array.length c.cap_c - 1 do
    let cap = c.cap_c.(idx) and a = c.cap_a.(idx) and b = c.cap_b.(idx) in
    let geq = cap_conductance ~method_ ~dt cap in
    let i =
      cap_current ~method_ ~dt cap
        (v.(a) -. v.(b))
        (v_prev.(a) -. v_prev.(b))
        icap_prev.(idx)
    in
    add_f f fi a i;
    add_f f fi b (-.i);
    add_j jd n fi a a geq;
    add_j jd n fi a b (-.geq);
    add_j jd n fi b b geq;
    add_j jd n fi b a (-.geq)
  done

(* Damped Newton on the free nodes.  [with_caps] selects transient vs DC
   residuals.  Returns the number of iterations or None on failure;
   v is updated in place on success (and left modified on failure).
   All scratch storage comes from the workspace: the loop body performs
   no heap allocation. *)
let[@slc.hot] newton ws c opts ~gmin ~caps ~v_prev v =
  let n = ws.w_free in
  let f = ws.resid in
  let jd = Mat.data ws.jac in
  (* Iteration state: 0 = still iterating, -1 = failed (iteration cap or
     singular Jacobian), k > 0 = converged at iteration k.  A flat loop
     rather than a local [rec iterate] closure keeps the body free of
     heap allocation. *)
  let outcome = ref 0 in
  let k = ref 1 in
  while !outcome = 0 do
    if !k > opts.max_newton then outcome := -1
    else begin
      Array.fill f 0 n 0.0;
      Array.fill jd 0 (n * n) 0.0;
      stamp_static c ~gmin ~ebuf:ws.ebuf v f jd n;
      (match caps with
      | Some (method_, dt, icap_prev) ->
        stamp_caps c ~method_ ~dt ~icap_prev v v_prev f jd n
      | None -> ());
      let fnorm = ref 0.0 in
      for i = 0 to n - 1 do
        fnorm := Float.max !fnorm (Float.abs f.(i))
      done;
      let fnorm = !fnorm in
      ws.last_fnorm <- fnorm;
      ws.last_iters <- !k;
      let factored =
        match Linalg.lu_factor_in_place ws.jac ws.perm with
        | (_ : float) -> true
        | exception Linalg.Singular _ -> false
      in
      if not factored then outcome := -1
      else begin
        (* Negate the residual in place; the solve reads it through the
           pivot permutation and writes the update into rhs. *)
        for i = 0 to n - 1 do
          f.(i) <- -.f.(i)
        done;
        Linalg.lu_solve_in_place ws.jac ws.perm ~b:f ~x:ws.rhs;
        let dx = ws.rhs in
        (* Voltage-step damping: cap updates at 0.3 V per iteration. *)
        let dmax = ref 0.0 in
        for i = 0 to n - 1 do
          dmax := Float.max !dmax (Float.abs dx.(i))
        done;
        let dmax = !dmax in
        let scale = if dmax > 0.3 then 0.3 /. dmax else 1.0 in
        for i = 0 to n - 1 do
          let node = Array.unsafe_get c.free_nodes i in
          v.(node) <- v.(node) +. (scale *. dx.(i))
        done;
        if fnorm < opts.abstol && dmax *. scale < opts.dxtol then
          outcome := !k
        else incr k
      end
    end
  done;
  if !outcome < 0 then None else Some !outcome

let dc_solve ws c opts ~at v =
  apply_sources c v at;
  Array.blit v 0 ws.v_prev 0 c.n_nodes;
  let v_prev = ws.v_prev in
  (* Direct attempt, then gmin stepping from strongly damped to the
     target gmin, then source stepping (ramping every source from zero
     to its full value by continuation). *)
  match newton ws c opts ~gmin:opts.gmin ~caps:None ~v_prev v with
  | Some _ -> ()
  | None ->
    let ok = ref false in
    let attempt gmin_start =
      if not !ok then begin
        (* Reset the guess to mid-rail before each continuation run. *)
        let vmax = source_vmax c ~at in
        Array.iter (fun nfree -> v.(nfree) <- 0.5 *. vmax) c.free_nodes;
        apply_sources c v at;
        let g = ref gmin_start in
        let all_ok = ref true in
        while !all_ok && !g >= opts.gmin do
          (match newton ws c opts ~gmin:!g ~caps:None ~v_prev v with
          | Some _ -> ()
          | None -> all_ok := false);
          g := !g /. 100.0
        done;
        if !all_ok then ok := true
      end
    in
    let attempt_source_stepping () =
      if not !ok then begin
        Telemetry.incr Telemetry.dc_source_fallbacks;
        (* At alpha = 0 every source is grounded and (with gmin) the
           zero vector solves the system exactly; walk alpha up to 1,
           starting each solve from the previous alpha's solution. *)
        Array.iter (fun nfree -> v.(nfree) <- 0.0) c.free_nodes;
        let steps = 10 in
        let all_ok = ref true in
        for s = 1 to steps do
          if !all_ok then begin
            let alpha = float_of_int s /. float_of_int steps in
            apply_sources_scaled c v at ~alpha;
            match newton ws c opts ~gmin:opts.gmin ~caps:None ~v_prev v with
            | Some _ -> ()
            | None -> all_ok := false
          end
        done;
        if !all_ok then ok := true
      end
    in
    Telemetry.incr Telemetry.dc_gmin_fallbacks;
    attempt 1e-3;
    attempt 1e-1;
    attempt_source_stepping ();
    if not !ok then
      Slc_error.raise_no_convergence ~phase:Slc_error.Dc_operating_point
        ~time_reached:at ~dt:0.0 ~newton_iters:ws.last_iters
        ~residual:ws.last_fnorm "dc_solve: gmin and source stepping failed"

let dc_operating_point net ~at =
  let c = compile net in
  let ws = make_workspace c in
  let v = Array.make c.n_nodes 0.0 in
  let opts = default_options ~tstop:1.0 in
  let vmax = source_vmax c ~at in
  Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
  dc_solve ws c opts ~at v;
  v

let dc_sweep_compiled ?workspace c ~node ~values =
  if node <= 0 || node >= c.n_nodes || c.free_index.(node) >= 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Transient.dc_sweep" "node must be driven by a source";
  let src_i =
    let found = ref (-1) in
    Array.iteri
      (fun i n -> if n = node && !found < 0 then found := i)
      c.src_node;
    if !found < 0 then
      Slc_obs.Slc_error.invalid_input ~site:"Transient.dc_sweep" "node must be driven by a source";
    !found
  in
  let ws =
    match workspace with
    | Some ws ->
      check_workspace ws c;
      ws
    | None -> make_workspace c
  in
  let opts = default_options ~tstop:1.0 in
  let v = Array.make c.n_nodes 0.0 in
  let vmax = source_vmax c ~at:0.0 in
  Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
  apply_sources c v 0.0;
  (* The sweep swaps the swept source's stimulus for each DC value so
     that EVERY solve — including the gmin/source-stepping fallbacks,
     which re-apply sources from scratch — sees the sweep value (the
     old code let the fallback solve against the un-swept stimulus and
     then polished at the right value, which could both fail spuriously
     and, on failure, leave the mutated stimulus behind).  The original
     stimulus is restored on all exits, so a compiled circuit cached by
     a higher layer is never left corrupted for its next user. *)
  let saved_stim = c.src_stim.(src_i) in
  Fun.protect
    ~finally:(fun () -> c.src_stim.(src_i) <- saved_stim)
    (fun () ->
      Array.map
        (fun value ->
          c.src_stim.(src_i) <- Stimulus.dc value;
          apply_sources c v 0.0;
          (* Continuation from the previous point's solution; full
             solve from scratch (mid-rail reset, gmin and source
             stepping) when that fails. *)
          (match newton ws c opts ~gmin:opts.gmin ~caps:None ~v_prev:ws.v_prev v with
          | Some _ -> ()
          | None -> (
            Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
            try dc_solve ws c opts ~at:0.0 v
            with Slc_error.No_convergence d ->
              raise
                (Slc_error.No_convergence
                   {
                     d with
                     Slc_error.phase = Slc_error.Dc_sweep;
                     detail =
                       Printf.sprintf "dc_sweep at %.6g V: %s" value
                         d.Slc_error.detail;
                   })));
          Array.copy v)
        values)

let dc_sweep net ~node ~values =
  dc_sweep_compiled (compile net) ~node ~values

type result = {
  r_times : float array;
  r_volts : float array array;
      (* per step: the full node vector, or just the recorded columns *)
  r_record : int array option; (* node ids per column; None = all nodes *)
  r_newton : int;
  r_steps : int;
  r_degraded : bool;        (* a recovery rung with relaxed numerics ran *)
  r_recovery : string list; (* escalation rungs attempted, in order *)
}

let run_compiled ?workspace ?record opts c =
  if opts.tstop <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Transient.run" "tstop <= 0";
  let ws =
    match workspace with
    | Some ws ->
      check_workspace ws c;
      ws
    | None -> make_workspace c
  in
  (match record with
  | Some nodes ->
    Array.iter
      (fun n ->
        if n < 0 || n >= c.n_nodes then
          Slc_obs.Slc_error.invalid_input ~site:"Transient.run" "recorded node out of range")
      nodes
  | None -> ());
  let snapshot v =
    match record with
    | None -> Array.copy v
    | Some nodes -> Array.map (fun n -> v.(n)) nodes
  in
  let v = Array.make c.n_nodes 0.0 in
  let vmax = source_vmax c ~at:0.0 in
  Array.iter (fun n -> v.(n) <- 0.5 *. vmax) c.free_nodes;
  dc_solve ws c opts ~at:0.0 v;
  let break_times =
    List.sort_uniq compare
      (List.filter (fun t -> t > 0.0 && t < opts.tstop) opts.breakpoints)
  in
  let times = ref [ 0.0 ] in
  let volts = ref [ snapshot v ] in
  let newton_total = ref 0 in
  let steps = ref 0 in
  (* Per-capacitor branch current at the last accepted time point
     (zero at the DC operating point). *)
  Array.fill ws.icap 0 (Array.length ws.icap) 0.0;
  let t = ref 0.0 in
  let dt = ref opts.dt_init in
  (* Tail coarsening.  [dt_max] is sized to resolve switching edges, but
     digital transients spend most of their grid points in the smooth
     settling tail where nothing moves.  While consecutive accepted
     steps change every free node by well under 0.1% of the rail, the
     cap is relaxed geometrically (bounded); the moment activity
     returns the cap snaps back, and a relaxed-cap step that lands on
     renewed activity is rejected and redone at normal resolution so no
     un-breakpointed event is ever smeared. *)
  let smooth_tol = 1e-3 *. Float.max vmax 1e-3 in
  let dt_cap = ref opts.dt_max in
  let cap_limit = 16.0 *. opts.dt_max in
  let pending_breaks = ref break_times in
  let v_prev = ws.v_prev in
  while !t < opts.tstop -. (1e-9 *. opts.tstop) do
    (* Clip the step to the next breakpoint or tstop. *)
    let next_limit =
      match !pending_breaks with
      | b :: _ when b > !t +. (1e-12 *. opts.tstop) -> Float.min b opts.tstop
      | _ -> opts.tstop
    in
    let dt_eff = Float.min !dt (next_limit -. !t) in
    let t_new = !t +. dt_eff in
    Array.blit v 0 v_prev 0 c.n_nodes;
    apply_sources c v t_new;
    (* Trapezoidal needs a valid previous cap current; take the very
       first step with backward Euler. *)
    let method_ =
      match opts.integrator with
      | Backward_euler -> Backward_euler
      | Trapezoidal -> if !steps = 0 then Backward_euler else Trapezoidal
    in
    (match
       newton ws c opts ~gmin:opts.gmin
         ~caps:(Some (method_, dt_eff, ws.icap))
         ~v_prev v
     with
    | Some iters ->
      let dvmax = ref 0.0 in
      for i = 0 to Array.length c.free_nodes - 1 do
        let nd = Array.unsafe_get c.free_nodes i in
        dvmax := Float.max !dvmax (Float.abs (v.(nd) -. v_prev.(nd)))
      done;
      let dvmax = !dvmax in
      if dt_eff > opts.dt_max && dvmax > 8.0 *. smooth_tol then begin
        (* A relaxed-cap step jumped into renewed activity: discard it
           and redo from the last accepted point at edge resolution. *)
        Telemetry.incr Telemetry.newton_rejects;
        Array.blit v_prev 0 v 0 c.n_nodes;
        dt := opts.dt_max;
        dt_cap := opts.dt_max
      end
      else begin
        (* Commit the capacitor-current state for the accepted step,
           writing into the spare buffer and swapping. *)
        let icap_prev = ws.icap and icap_new = ws.icap_next in
        for idx = 0 to Array.length c.cap_c - 1 do
          let a = c.cap_a.(idx) and b = c.cap_b.(idx) in
          icap_new.(idx) <-
            cap_current ~method_ ~dt:dt_eff c.cap_c.(idx)
              (v.(a) -. v.(b))
              (v_prev.(a) -. v_prev.(b))
              icap_prev.(idx)
        done;
        ws.icap <- icap_new;
        ws.icap_next <- icap_prev;
        newton_total := !newton_total + iters;
        incr steps;
        t := t_new;
        times := t_new :: !times;
        volts := snapshot v :: !volts;
        (match !pending_breaks with
        | b :: rest when t_new >= b -. (1e-12 *. opts.tstop) ->
          pending_breaks := rest
        | _ -> ());
        if dvmax < smooth_tol then
          dt_cap := Float.min cap_limit (!dt_cap *. 1.5)
        else begin
          dt_cap := opts.dt_max;
          if !dt > opts.dt_max then dt := opts.dt_max
        end;
        (* Grow the step after quick convergence. *)
        if iters <= 5 then dt := Float.min !dt_cap (!dt *. 1.4)
        else if iters > 15 then dt := Float.max opts.dt_min (!dt *. 0.7)
      end
    | None ->
      (* Reject: restore state and halve the step. *)
      Telemetry.incr Telemetry.newton_rejects;
      Array.blit v_prev 0 v 0 c.n_nodes;
      dt := dt_eff /. 2.0;
      if !dt < opts.dt_min then
        Slc_error.raise_no_convergence ~phase:Slc_error.Transient_step
          ~time_reached:!t ~dt:!dt ~newton_iters:ws.last_iters
          ~residual:ws.last_fnorm "run: step size underflow")
  done;
  Telemetry.add Telemetry.newton_iters !newton_total;
  Telemetry.add Telemetry.transient_steps !steps;
  {
    r_times = Array.of_list (List.rev !times);
    r_volts = Array.of_list (List.rev !volts);
    r_record = record;
    r_newton = !newton_total;
    r_steps = !steps;
    r_degraded = false;
    r_recovery = [];
  }

let run ?record opts net = run_compiled ?record opts (compile net)

(* ------------------------------------------------------------------ *)
(* Convergence-recovery escalation ladder.

   Each rung re-runs the whole transient with progressively more
   forgiving options.  The first two rungs change only HOW the solver
   walks to the solution (smaller initial step; the DC-level gmin and
   source stepping always run inside dc_solve), so a success there is a
   full-quality result.  The last two rungs change the numerics
   themselves (boosted gmin, relaxed tolerances) and therefore mark the
   result degraded: usable, but to be surfaced to the caller. *)

let recovery_rungs :
    (string * bool * (options -> options)) list =
  [
    ( "tight-step",
      false,
      fun o -> { o with dt_init = Float.max o.dt_min (o.dt_init /. 16.0) } );
    ( "gmin-boost",
      true,
      fun o ->
        {
          o with
          gmin = o.gmin *. 1e3;
          dt_init = Float.max o.dt_min (o.dt_init /. 4.0);
        } );
    ( "relaxed-tol",
      true,
      fun o ->
        {
          o with
          abstol = Float.max (o.abstol *. 1e4) 1e-9;
          dxtol = Float.max (o.dxtol *. 1e4) 1e-5;
        } );
  ]

(* The ladder alone, entered with the plain attempt's failure [d0]
   already in hand.  [run_recovered] goes through here after its plain
   attempt; the batch engine calls it directly for a lane whose plain
   attempt already ran (and failed) INSIDE the lockstep loop, so the
   attempt is not repeated and the per-lane accounting matches the
   scalar flow exactly. *)
let escalate_rungs ?workspace ?record ~max_recovery opts c d0 =
  let rungs = List.filteri (fun i _ -> i < max_recovery) recovery_rungs in
  let rec escalate attempted = function
    | [] ->
      (* Every rung failed: re-raise the ORIGINAL failure's
         diagnostics, annotated with the rungs that were tried. *)
      raise
        (Slc_error.No_convergence
           { d0 with Slc_error.recovery = List.rev attempted })
    | (name, degrades, tweak) :: rest -> (
      Telemetry.incr Telemetry.recovery_attempts;
      match run_compiled ?workspace ?record (tweak opts) c with
      | r ->
        Telemetry.incr Telemetry.recovery_rescues;
        if degrades then Telemetry.incr Telemetry.degraded_runs;
        {
          r with
          r_degraded = degrades;
          r_recovery = List.rev (name :: attempted);
        }
      | exception Slc_error.No_convergence _ ->
        escalate (name :: attempted) rest)
  in
  escalate [] rungs

let run_recovered ?workspace ?record ?(max_recovery = 3) opts c =
  match run_compiled ?workspace ?record opts c with
  | r -> r
  | exception Slc_error.No_convergence d0 ->
    escalate_rungs ?workspace ?record ~max_recovery opts c d0

(* ------------------------------------------------------------------ *)
(* Lockstep multi-seed batch engine.

   One Newton loop advances a whole batch of per-seed circuit variants
   ("lanes") that share a topology but differ in device parameters,
   capacitances and stimuli.  State is structure-of-arrays: flat
   [Bigarray] float slabs hold every lane's node voltages, residuals,
   Jacobians and capacitor-branch currents in lane-major blocks, and
   device parameters are streamed from a contiguous parameter slab
   ({!Mosfet.fill_slab}).  Each lane keeps its own time/step/Newton
   control state and is advanced one Newton iteration at a time by a
   round-robin over the active set; a lane that converges its step
   opens the next one, a lane that reaches [tstop] drops out of the
   active set (convergence masking), and a lane that fails outright is
   "peeled": its captured failure goes through the scalar recovery
   ladder ({!escalate_rungs}) after the lockstep loop, so stragglers
   never stall the batch.

   Correctness contract: every lane follows EXACTLY the scalar
   [run_compiled] control flow (same step-size decisions, same damped
   Newton, same accumulation order per element), so a batch lane's
   result is bitwise-identical to the scalar run of the same circuit
   and its Newton/step/retry accounting matches per seed. *)

module BA1 = Bigarray.Array1

type fslab = Linalg.fslab

let make_fslab n : fslab =
  BA1.create Bigarray.Float64 Bigarray.C_layout (max 1 n)

(* Lane phases for the lockstep state machine. *)
let lp_open = 0 (* ready to open the next time step *)

let lp_newton = 1 (* mid-step, iterating Newton *)

let lp_done = 2 (* reached tstop *)

let lp_peel = 3 (* failed; handed to the scalar recovery ladder *)

(* Lane-major scratch slabs plus the per-lane control state the hot
   iteration function needs.  Grown (never shrunk) when a larger batch
   arrives; NOT thread-safe — one batch workspace per domain. *)
type batch_workspace = {
  bw_nfree : int;
  bw_nnodes : int;
  bw_nmos : int;
  bw_ncaps : int;
  mutable bw_lanes : int; (* lane capacity *)
  mutable bw_mos : Mosfet.slab; (* lanes * nmos * slab_fields *)
  mutable bw_capv : fslab; (* lanes * ncaps capacitance values *)
  mutable bw_v : fslab; (* lanes * nnodes node voltages *)
  mutable bw_vprev : fslab; (* lanes * nnodes, last accepted step *)
  mutable bw_resid : fslab; (* lanes * nfree *)
  mutable bw_rhs : fslab; (* lanes * nfree Newton updates *)
  mutable bw_jac : fslab; (* lanes * nfree^2, row-major per lane *)
  mutable bw_icap_a : fslab; (* lanes * ncaps cap branch currents *)
  mutable bw_icap_b : fslab; (* double buffer, see bw_flip *)
  mutable bw_flip : bool array; (* per lane: current icap is _b *)
  mutable bw_meth : int array; (* per lane: 0 = BE, 1 = trapezoidal *)
  mutable bw_dteff : float array; (* per lane: dt of the open step *)
  mutable bw_fnorm : float array; (* per lane: last residual norm *)
  mutable bw_k : int array; (* per lane: Newton iteration counter *)
  mutable bw_liters : int array; (* per lane: diagnostics mirror of k *)
  bw_perm : int array; (* shared pivot scratch (one lane at a time) *)
  bw_ebuf : Mosfet.eval_buf;
}

let make_batch_workspace c ~lanes =
  let n = Array.length c.free_nodes in
  let nmos = Array.length c.mos_params in
  let ncaps = Array.length c.cap_c in
  let l = max 1 lanes in
  {
    bw_nfree = n;
    bw_nnodes = c.n_nodes;
    bw_nmos = nmos;
    bw_ncaps = ncaps;
    bw_lanes = l;
    bw_mos = Mosfet.make_slab (l * nmos * Mosfet.slab_fields);
    bw_capv = make_fslab (l * ncaps);
    bw_v = make_fslab (l * c.n_nodes);
    bw_vprev = make_fslab (l * c.n_nodes);
    bw_resid = make_fslab (l * n);
    bw_rhs = make_fslab (l * n);
    bw_jac = make_fslab (l * n * n);
    bw_icap_a = make_fslab (l * ncaps);
    bw_icap_b = make_fslab (l * ncaps);
    bw_flip = Array.make l false;
    bw_meth = Array.make l 0;
    bw_dteff = Array.make l 0.0;
    bw_fnorm = Array.make l 0.0;
    bw_k = Array.make l 0;
    bw_liters = Array.make l 0;
    bw_perm = Array.make n 0;
    bw_ebuf = Mosfet.make_eval_buf ();
  }

let check_batch_workspace bws c =
  if
    bws.bw_nfree <> Array.length c.free_nodes
    || bws.bw_nnodes <> c.n_nodes
    || bws.bw_nmos <> Array.length c.mos_params
    || bws.bw_ncaps <> Array.length c.cap_c
  then
    Slc_obs.Slc_error.invalid_input ~site:"Transient.run_batch"
      "batch workspace does not match the compiled circuit"

let grow_batch_workspace bws lanes =
  if lanes > bws.bw_lanes then begin
    let l = lanes in
    let n = bws.bw_nfree in
    bws.bw_lanes <- l;
    bws.bw_mos <- Mosfet.make_slab (l * bws.bw_nmos * Mosfet.slab_fields);
    bws.bw_capv <- make_fslab (l * bws.bw_ncaps);
    bws.bw_v <- make_fslab (l * bws.bw_nnodes);
    bws.bw_vprev <- make_fslab (l * bws.bw_nnodes);
    bws.bw_resid <- make_fslab (l * n);
    bws.bw_rhs <- make_fslab (l * n);
    bws.bw_jac <- make_fslab (l * n * n);
    bws.bw_icap_a <- make_fslab (l * bws.bw_ncaps);
    bws.bw_icap_b <- make_fslab (l * bws.bw_ncaps);
    bws.bw_flip <- Array.make l false;
    bws.bw_meth <- Array.make l 0;
    bws.bw_dteff <- Array.make l 0.0;
    bws.bw_fnorm <- Array.make l 0.0;
    bws.bw_k <- Array.make l 0;
    bws.bw_liters <- Array.make l 0
  end

(* Slab analogues of add_f/add_j: residual/Jacobian accumulation into a
   lane's block of the flat storage. *)
let[@inline] [@slc.hot] badd_f (f : fslab) ro fi nd x =
  let i = Array.unsafe_get fi nd in
  if i >= 0 then
    BA1.unsafe_set f (ro + i) (BA1.unsafe_get f (ro + i) +. x)

let[@inline] [@slc.hot] badd_j (jd : fslab) jo n fi nd md x =
  let i = Array.unsafe_get fi nd and j = Array.unsafe_get fi md in
  if i >= 0 && j >= 0 then begin
    let k = jo + (i * n) + j in
    BA1.unsafe_set jd k (BA1.unsafe_get jd k +. x)
  end

(* One damped-Newton iteration for lane [l]: stamp (resistors, then
   mosfets from the parameter slab, then gmin, then capacitors — the
   scalar order), factor, solve, damp, update.  Returns -1 on a
   singular Jacobian, 1 on convergence, 0 to keep iterating.  The body
   allocates nothing; all state lives in the batch workspace slabs.
   Arithmetic is the scalar path's, association and all, so the lane
   iterates bitwise-identically to [newton]. *)
let[@slc.hot] blane_iter bws c o ~l =
  let n = bws.bw_nfree in
  let nn = bws.bw_nnodes in
  let vo = l * nn in
  let ro = l * n in
  let jo = l * (n * n) in
  let v = bws.bw_v in
  let vp = bws.bw_vprev in
  let f = bws.bw_resid in
  let jac = bws.bw_jac in
  for i = 0 to n - 1 do
    BA1.unsafe_set f (ro + i) 0.0
  done;
  for i = 0 to (n * n) - 1 do
    BA1.unsafe_set jac (jo + i) 0.0
  done;
  let fi = c.free_index in
  for k = 0 to Array.length c.res_r - 1 do
    let a = Array.unsafe_get c.res_a k and b = Array.unsafe_get c.res_b k in
    let g = 1.0 /. Array.unsafe_get c.res_r k in
    let i = g *. (BA1.unsafe_get v (vo + a) -. BA1.unsafe_get v (vo + b)) in
    badd_f f ro fi a i;
    badd_f f ro fi b (-.i);
    badd_j jac jo n fi a a g;
    badd_j jac jo n fi a b (-.g);
    badd_j jac jo n fi b b g;
    badd_j jac jo n fi b a (-.g)
  done;
  let ebuf = bws.bw_ebuf in
  let mbase = l * bws.bw_nmos * Mosfet.slab_fields in
  for k = 0 to bws.bw_nmos - 1 do
    let g = Array.unsafe_get c.mos_g k
    and d = Array.unsafe_get c.mos_d k
    and s = Array.unsafe_get c.mos_s k in
    Mosfet.eval_slab_into bws.bw_mos
      ~off:(mbase + (k * Mosfet.slab_fields))
      ~vg:(BA1.unsafe_get v (vo + g))
      ~vd:(BA1.unsafe_get v (vo + d))
      ~vs:(BA1.unsafe_get v (vo + s))
      ebuf;
    let id = ebuf.Mosfet.b_id
    and d_vg = ebuf.Mosfet.b_vg
    and d_vd = ebuf.Mosfet.b_vd
    and d_vs = ebuf.Mosfet.b_vs in
    badd_f f ro fi d id;
    badd_f f ro fi s (-.id);
    badd_j jac jo n fi d g d_vg;
    badd_j jac jo n fi d d d_vd;
    badd_j jac jo n fi d s d_vs;
    badd_j jac jo n fi s g (-.d_vg);
    badd_j jac jo n fi s d (-.d_vd);
    badd_j jac jo n fi s s (-.d_vs)
  done;
  for i = 0 to n - 1 do
    let nd = Array.unsafe_get c.free_nodes i in
    BA1.unsafe_set f (ro + i)
      (BA1.unsafe_get f (ro + i) +. (o.gmin *. BA1.unsafe_get v (vo + nd)));
    let kd = jo + (i * n) + i in
    BA1.unsafe_set jac kd (BA1.unsafe_get jac kd +. o.gmin)
  done;
  let method_ =
    if Array.unsafe_get bws.bw_meth l = 0 then Backward_euler else Trapezoidal
  in
  let dt = Array.unsafe_get bws.bw_dteff l in
  let icap =
    if Array.unsafe_get bws.bw_flip l then bws.bw_icap_b else bws.bw_icap_a
  in
  let co = l * bws.bw_ncaps in
  for idx = 0 to bws.bw_ncaps - 1 do
    let cap = BA1.unsafe_get bws.bw_capv (co + idx) in
    let a = Array.unsafe_get c.cap_a idx and b = Array.unsafe_get c.cap_b idx in
    let geq = cap_conductance ~method_ ~dt cap in
    let i =
      cap_current ~method_ ~dt cap
        (BA1.unsafe_get v (vo + a) -. BA1.unsafe_get v (vo + b))
        (BA1.unsafe_get vp (vo + a) -. BA1.unsafe_get vp (vo + b))
        (BA1.unsafe_get icap (co + idx))
    in
    badd_f f ro fi a i;
    badd_f f ro fi b (-.i);
    badd_j jac jo n fi a a geq;
    badd_j jac jo n fi a b (-.geq);
    badd_j jac jo n fi b b geq;
    badd_j jac jo n fi b a (-.geq)
  done;
  let fnorm = ref 0.0 in
  for i = 0 to n - 1 do
    fnorm := Float.max !fnorm (Float.abs (BA1.unsafe_get f (ro + i)))
  done;
  let fnorm = !fnorm in
  Array.unsafe_set bws.bw_fnorm l fnorm;
  Array.unsafe_set bws.bw_liters l (Array.unsafe_get bws.bw_k l);
  if not (Linalg.lu_factor_flat jac ~off:jo ~n ~perm:bws.bw_perm) then -1
  else begin
    for i = 0 to n - 1 do
      BA1.unsafe_set f (ro + i) (-.BA1.unsafe_get f (ro + i))
    done;
    Linalg.lu_solve_flat jac ~off:jo ~n ~perm:bws.bw_perm ~b:f ~boff:ro
      ~x:bws.bw_rhs ~xoff:ro;
    let dmax = ref 0.0 in
    for i = 0 to n - 1 do
      dmax := Float.max !dmax (Float.abs (BA1.unsafe_get bws.bw_rhs (ro + i)))
    done;
    let dmax = !dmax in
    let scale = if dmax > 0.3 then 0.3 /. dmax else 1.0 in
    for i = 0 to n - 1 do
      let node = Array.unsafe_get c.free_nodes i in
      BA1.unsafe_set v (vo + node)
        (BA1.unsafe_get v (vo + node)
        +. (scale *. BA1.unsafe_get bws.bw_rhs (ro + i)))
    done;
    if fnorm < o.abstol && dmax *. scale < o.dxtol then 1 else 0
  end

let run_batch ?workspace ?scalar_workspace ?record ?(max_recovery = 3) lanes =
  let nl = Array.length lanes in
  if nl = 0 then [||]
  else begin
    let c0 = snd lanes.(0) in
    Array.iter
      (fun (o, c) ->
        if o.tstop <= 0.0 then
          Slc_obs.Slc_error.invalid_input ~site:"Transient.run_batch"
            "tstop <= 0";
        if
          c.n_nodes <> c0.n_nodes
          || c.free_nodes <> c0.free_nodes
          || c.mos_g <> c0.mos_g || c.mos_d <> c0.mos_d || c.mos_s <> c0.mos_s
          || c.cap_a <> c0.cap_a || c.cap_b <> c0.cap_b
          || c.res_r <> c0.res_r || c.res_a <> c0.res_a || c.res_b <> c0.res_b
          || c.src_node <> c0.src_node
        then
          Slc_obs.Slc_error.invalid_input ~site:"Transient.run_batch"
            "lanes do not share a circuit topology")
      lanes;
    (match record with
    | Some nodes ->
      Array.iter
        (fun n ->
          if n < 0 || n >= c0.n_nodes then
            Slc_obs.Slc_error.invalid_input ~site:"Transient.run_batch"
              "recorded node out of range")
        nodes
    | None -> ());
    let bws =
      match workspace with
      | Some b ->
        check_batch_workspace b c0;
        grow_batch_workspace b nl;
        b
      | None -> make_batch_workspace c0 ~lanes:nl
    in
    let sws =
      match scalar_workspace with
      | Some w ->
        check_workspace w c0;
        w
      | None -> make_workspace c0
    in
    let nn = bws.bw_nnodes in
    let nrec =
      match record with Some nodes -> Array.length nodes | None -> nn
    in
    let row_w = nrec + 1 in
    (* Per-lane control state that the hot path never touches. *)
    let t = Array.make nl 0.0 in
    let dt = Array.make nl 0.0 in
    let dtcap = Array.make nl 0.0 in
    let stol = Array.make nl 0.0 in
    let tnew = Array.make nl 0.0 in
    let phase = Array.make nl lp_peel in
    let steps = Array.make nl 0 in
    let niter = Array.make nl 0 in
    let breaks = Array.make nl [||] in
    let bidx = Array.make nl 0 in
    let rec_buf = Array.make nl [||] in
    let rec_len = Array.make nl 0 in
    let fail = Array.make nl None in
    let vdc = Array.make nn 0.0 in
    (* Waveform rows are accumulated per lane in a flat growable buffer:
       [t; v_rec_0; ...; v_rec_{nrec-1}] per accepted step. *)
    let push_row l tv =
      let need = rec_len.(l) + row_w in
      if Array.length rec_buf.(l) < need then begin
        let cap = max need (max (8 * row_w) (2 * Array.length rec_buf.(l))) in
        let nb = Array.make cap 0.0 in
        Array.blit rec_buf.(l) 0 nb 0 rec_len.(l);
        rec_buf.(l) <- nb
      end;
      let buf = rec_buf.(l) in
      let base = rec_len.(l) in
      let vo = l * nn in
      buf.(base) <- tv;
      (match record with
      | None ->
        for j = 0 to nn - 1 do
          buf.(base + 1 + j) <- BA1.get bws.bw_v (vo + j)
        done
      | Some nodes ->
        for j = 0 to nrec - 1 do
          buf.(base + 1 + j) <- BA1.get bws.bw_v (vo + nodes.(j))
        done);
      rec_len.(l) <- need
    in
    (* Initialize every lane: fill its parameter slabs, solve its DC
       operating point through the scalar machinery (bitwise-identical
       fallback ladder and telemetry), and record the t = 0 row.  A
       lane whose DC solve fails is peeled immediately — exactly the
       state the scalar flow would hand to the recovery ladder. *)
    for l = 0 to nl - 1 do
      let o, c = lanes.(l) in
      for k = 0 to bws.bw_nmos - 1 do
        Mosfet.fill_slab c.mos_params.(k) bws.bw_mos
          ~off:(((l * bws.bw_nmos) + k) * Mosfet.slab_fields)
      done;
      let co = l * bws.bw_ncaps in
      for idx = 0 to bws.bw_ncaps - 1 do
        BA1.set bws.bw_capv (co + idx) c.cap_c.(idx);
        BA1.set bws.bw_icap_a (co + idx) 0.0
      done;
      bws.bw_flip.(l) <- false;
      let vmax = source_vmax c ~at:0.0 in
      Array.fill vdc 0 nn 0.0;
      Array.iter (fun nd -> vdc.(nd) <- 0.5 *. vmax) c.free_nodes;
      match dc_solve sws c o ~at:0.0 vdc with
      | () ->
        let vo = l * nn in
        for j = 0 to nn - 1 do
          BA1.set bws.bw_v (vo + j) vdc.(j)
        done;
        push_row l 0.0;
        breaks.(l) <-
          Array.of_list
            (List.sort_uniq compare
               (List.filter (fun bt -> bt > 0.0 && bt < o.tstop) o.breakpoints));
        t.(l) <- 0.0;
        dt.(l) <- o.dt_init;
        dtcap.(l) <- o.dt_max;
        stol.(l) <- 1e-3 *. Float.max vmax 1e-3;
        phase.(l) <- lp_open
      | exception Slc_error.No_convergence d ->
        fail.(l) <- Some d;
        phase.(l) <- lp_peel
    done;
    (* Step rejection (Newton failed or hit the iteration cap): restore
       the last accepted state and halve the step, peeling the lane on
       dt underflow with the same diagnostic payload the scalar path
       raises.  Returns whether the lane stays in the active set. *)
    let reject l o =
      Telemetry.incr Telemetry.newton_rejects;
      let vo = l * nn in
      for j = 0 to nn - 1 do
        BA1.set bws.bw_v (vo + j) (BA1.get bws.bw_vprev (vo + j))
      done;
      dt.(l) <- bws.bw_dteff.(l) /. 2.0;
      if dt.(l) < o.dt_min then begin
        fail.(l) <-
          Some
            {
              Slc_error.phase = Slc_error.Transient_step;
              time_reached = t.(l);
              dt = dt.(l);
              newton_iters = bws.bw_liters.(l);
              residual = bws.bw_fnorm.(l);
              recovery = [];
              detail = "run: step size underflow";
              context = Slc_error.no_context;
            };
        phase.(l) <- lp_peel;
        false
      end
      else begin
        phase.(l) <- lp_open;
        true
      end
    in
    (* Step acceptance: the scalar accept path verbatim — tail-coarsening
       guard, capacitor-current commit into the spare buffer, waveform
       row, breakpoint pop, dt_cap/dt update — then either open the next
       step or retire the lane at tstop. *)
    let accept l o c =
      let iters = bws.bw_k.(l) in
      let vo = l * nn in
      let dvmax = ref 0.0 in
      for j = 0 to Array.length c.free_nodes - 1 do
        let nd = Array.unsafe_get c.free_nodes j in
        dvmax :=
          Float.max !dvmax
            (Float.abs
               (BA1.get bws.bw_v (vo + nd) -. BA1.get bws.bw_vprev (vo + nd)))
      done;
      let dvmax = !dvmax in
      let dt_eff = bws.bw_dteff.(l) in
      if dt_eff > o.dt_max && dvmax > 8.0 *. stol.(l) then begin
        Telemetry.incr Telemetry.newton_rejects;
        for j = 0 to nn - 1 do
          BA1.set bws.bw_v (vo + j) (BA1.get bws.bw_vprev (vo + j))
        done;
        dt.(l) <- o.dt_max;
        dtcap.(l) <- o.dt_max;
        phase.(l) <- lp_open;
        true
      end
      else begin
        let method_ =
          if bws.bw_meth.(l) = 0 then Backward_euler else Trapezoidal
        in
        let src = if bws.bw_flip.(l) then bws.bw_icap_b else bws.bw_icap_a in
        let dst = if bws.bw_flip.(l) then bws.bw_icap_a else bws.bw_icap_b in
        let co = l * bws.bw_ncaps in
        for idx = 0 to bws.bw_ncaps - 1 do
          let a = c.cap_a.(idx) and b = c.cap_b.(idx) in
          BA1.set dst (co + idx)
            (cap_current ~method_ ~dt:dt_eff
               (BA1.get bws.bw_capv (co + idx))
               (BA1.get bws.bw_v (vo + a) -. BA1.get bws.bw_v (vo + b))
               (BA1.get bws.bw_vprev (vo + a) -. BA1.get bws.bw_vprev (vo + b))
               (BA1.get src (co + idx)))
        done;
        bws.bw_flip.(l) <- not bws.bw_flip.(l);
        niter.(l) <- niter.(l) + iters;
        steps.(l) <- steps.(l) + 1;
        let t_new = tnew.(l) in
        t.(l) <- t_new;
        push_row l t_new;
        if
          bidx.(l) < Array.length breaks.(l)
          && t_new >= breaks.(l).(bidx.(l)) -. (1e-12 *. o.tstop)
        then bidx.(l) <- bidx.(l) + 1;
        if dvmax < stol.(l) then
          dtcap.(l) <- Float.min (16.0 *. o.dt_max) (dtcap.(l) *. 1.5)
        else begin
          dtcap.(l) <- o.dt_max;
          if dt.(l) > o.dt_max then dt.(l) <- o.dt_max
        end;
        if iters <= 5 then dt.(l) <- Float.min dtcap.(l) (dt.(l) *. 1.4)
        else if iters > 15 then dt.(l) <- Float.max o.dt_min (dt.(l) *. 0.7);
        if t.(l) < o.tstop -. (1e-9 *. o.tstop) then begin
          phase.(l) <- lp_open;
          true
        end
        else begin
          Telemetry.add Telemetry.newton_iters niter.(l);
          Telemetry.add Telemetry.transient_steps steps.(l);
          phase.(l) <- lp_done;
          false
        end
      end
    in
    (* The lockstep loop: round-robin one Newton iteration per active
       lane, with swap-remove masking of finished/peeled lanes. *)
    let active = Array.make nl 0 in
    let n_active = ref 0 in
    for l = 0 to nl - 1 do
      if phase.(l) = lp_open then begin
        active.(!n_active) <- l;
        incr n_active
      end
    done;
    while !n_active > 0 do
      let i = ref 0 in
      while !i < !n_active do
        let l = active.(!i) in
        let o, c = lanes.(l) in
        if phase.(l) = lp_open then begin
          let next_limit =
            if
              bidx.(l) < Array.length breaks.(l)
              && breaks.(l).(bidx.(l)) > t.(l) +. (1e-12 *. o.tstop)
            then Float.min breaks.(l).(bidx.(l)) o.tstop
            else o.tstop
          in
          let dt_eff = Float.min dt.(l) (next_limit -. t.(l)) in
          bws.bw_dteff.(l) <- dt_eff;
          tnew.(l) <- t.(l) +. dt_eff;
          let vo = l * nn in
          for j = 0 to nn - 1 do
            BA1.set bws.bw_vprev (vo + j) (BA1.get bws.bw_v (vo + j))
          done;
          for si = 0 to Array.length c.src_node - 1 do
            BA1.set bws.bw_v (vo + c.src_node.(si)) (c.src_stim.(si) tnew.(l))
          done;
          bws.bw_meth.(l) <-
            (match o.integrator with
            | Backward_euler -> 0
            | Trapezoidal -> if steps.(l) = 0 then 0 else 1);
          bws.bw_k.(l) <- 1;
          phase.(l) <- lp_newton
        end;
        let still =
          if bws.bw_k.(l) > o.max_newton then reject l o
          else
            match blane_iter bws c o ~l with
            | -1 -> reject l o
            | 0 ->
              bws.bw_k.(l) <- bws.bw_k.(l) + 1;
              true
            | _ -> accept l o c
        in
        if still then incr i
        else begin
          decr n_active;
          active.(!i) <- active.(!n_active)
        end
      done
    done;
    (* Assemble results; peeled lanes go through the scalar recovery
       ladder with the failure their in-batch attempt captured, so the
       accounting (recovery_attempts, rescues, degraded_runs) matches
       the scalar [run_recovered] flow exactly. *)
    Array.init nl (fun l ->
        if phase.(l) = lp_done then begin
          let nsamp = rec_len.(l) / row_w in
          let buf = rec_buf.(l) in
          let r_times = Array.init nsamp (fun s -> buf.(s * row_w)) in
          let r_volts =
            Array.init nsamp (fun s ->
                Array.init nrec (fun j -> buf.((s * row_w) + 1 + j)))
          in
          Ok
            {
              r_times;
              r_volts;
              r_record = record;
              r_newton = niter.(l);
              r_steps = steps.(l);
              r_degraded = false;
              r_recovery = [];
            }
        end
        else begin
          let o, c = lanes.(l) in
          let d0 = Option.get fail.(l) in
          match escalate_rungs ~workspace:sws ?record ~max_recovery o c d0 with
          | r -> Ok r
          | exception e -> Error e
        end)
  end

let times r = r.r_times

let waveform r node =
  if Array.length r.r_volts = 0 then Slc_obs.Slc_error.invalid_input ~site:"Transient.waveform" "empty";
  let column =
    match r.r_record with
    | None ->
      if node < 0 || node >= Array.length r.r_volts.(0) then
        Slc_obs.Slc_error.invalid_input ~site:"Transient.waveform" "unknown node";
      node
    | Some nodes -> (
      let found = ref (-1) in
      Array.iteri (fun i n -> if n = node && !found < 0 then found := i) nodes;
      match !found with
      | -1 -> Slc_obs.Slc_error.invalid_input ~site:"Transient.waveform" "node was not recorded"
      | i -> i)
  in
  let values = Array.map (fun v -> v.(column)) r.r_volts in
  Waveform.make ~times:r.r_times ~values

let newton_iterations_total r = r.r_newton

let steps_taken r = r.r_steps

let degraded r = r.r_degraded

let recovery_log r = r.r_recovery
