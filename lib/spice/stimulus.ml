type t = float -> float

let dc v _ = v

let ramp ~t0 ~duration ~v_from ~v_to =
  if duration <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Stimulus.ramp" "duration must be > 0";
  fun t ->
    if t <= t0 then v_from
    else if t >= t0 +. duration then v_to
    else v_from +. ((v_to -. v_from) *. (t -. t0) /. duration)

let pwl points =
  match points with
  | [] -> Slc_obs.Slc_error.invalid_input ~site:"Stimulus.pwl" "need at least one point"
  | (t0, _) :: rest ->
    let rec check prev = function
      | [] -> ()
      | (t, _) :: tl ->
        if t <= prev then Slc_obs.Slc_error.invalid_input ~site:"Stimulus.pwl" "times must increase";
        check t tl
    in
    check t0 rest;
    let pts = Array.of_list points in
    let n = Array.length pts in
    fun t ->
      if t <= fst pts.(0) then snd pts.(0)
      else if t >= fst pts.(n - 1) then snd pts.(n - 1)
      else begin
        (* Linear scan is fine: stimuli have a handful of points. *)
        let rec go i =
          let t1, v1 = pts.(i) and t2, v2 = pts.(i + 1) in
          if t <= t2 then v1 +. ((v2 -. v1) *. (t -. t1) /. (t2 -. t1))
          else go (i + 1)
        in
        go 0
      end

let breakpoints ~t0 ~duration = [ t0; t0 +. duration ]
