type source = Dc of float | Pwl of (float * float) list

type card =
  | Mosfet_card of {
      name : string;
      d : string;
      g : string;
      s : string;
      model : string;
      w : float;
      l : float;
    }
  | Cap_card of { name : string; a : string; b : string; value : float }
  | Res_card of { name : string; a : string; b : string; value : float }
  | Vsource_card of { name : string; plus : string; source : source }

type t = { title : string; cards : card list; tran : (float * float) option }

exception Parse_error of string

let fail line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

let suffixes =
  [
    ("meg", 1e6); ("f", 1e-15); ("p", 1e-12); ("n", 1e-9); ("u", 1e-6);
    ("m", 1e-3); ("k", 1e3); ("g", 1e9); ("t", 1e12);
  ]

let parse_number text =
  let lower = String.lowercase_ascii (String.trim text) in
  let try_suffix (suf, mult) =
    let ls = String.length suf and ll = String.length lower in
    if ll > ls && String.sub lower (ll - ls) ls = suf then
      Option.map
        (fun f -> f *. mult)
        (float_of_string_opt (String.sub lower 0 (ll - ls)))
    else None
  in
  match float_of_string_opt lower with
  | Some f -> f
  | None -> (
    match List.find_map try_suffix suffixes with
    | Some f -> f
    | None -> raise (Parse_error (Printf.sprintf "bad number %S" text)))

let split_fields line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* key=value field, e.g. w=200n *)
let keyed field =
  match String.index_opt field '=' with
  | Some i ->
    Some
      ( String.lowercase_ascii (String.sub field 0 i),
        String.sub field (i + 1) (String.length field - i - 1) )
  | None -> None

let parse src =
  let lines = String.split_on_char '\n' src in
  let title = match lines with t :: _ -> String.trim t | [] -> "" in
  let cards = ref [] in
  let tran = ref None in
  let ended = ref false in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line = String.trim line in
      if idx = 0 || line = "" || line.[0] = '*' || !ended then ()
      else begin
        let fields = split_fields line in
        match fields with
        | [] -> ()
        | head :: rest -> (
          let first = Char.lowercase_ascii head.[0] in
          match first with
          | '.' -> (
            match String.lowercase_ascii head with
            | ".end" -> ended := true
            | ".tran" -> (
              match rest with
              | [ dt; tstop ] ->
                tran := Some (parse_number dt, parse_number tstop)
              | _ -> fail lineno ".tran needs two fields")
            | other -> fail lineno ("unsupported directive " ^ other))
          | 'm' -> (
            (* Mname d g s [b] model w=... l=... — bulk is optional and
               ignored (the simulator ties bulk internally). *)
            let pos, kv =
              List.partition (fun f -> keyed f = None) rest
            in
            let kvs = List.filter_map keyed kv in
            let w = List.assoc_opt "w" kvs and l = List.assoc_opt "l" kvs in
            match (pos, w, l) with
            | ([ d; g; s; model ] | [ d; g; s; _; model ]), Some w, Some l ->
              cards :=
                Mosfet_card
                  {
                    name = head;
                    d;
                    g;
                    s;
                    model;
                    w = parse_number w;
                    l = parse_number l;
                  }
                :: !cards
            | _ -> fail lineno "malformed M card")
          | 'c' -> (
            match rest with
            | [ a; b; v ] ->
              cards :=
                Cap_card { name = head; a; b; value = parse_number v }
                :: !cards
            | _ -> fail lineno "malformed C card")
          | 'r' -> (
            match rest with
            | [ a; b; v ] ->
              cards :=
                Res_card { name = head; a; b; value = parse_number v }
                :: !cards
            | _ -> fail lineno "malformed R card")
          | 'v' -> (
            match rest with
            | [ plus; minus; v ] when String.lowercase_ascii minus = "0" ->
              cards :=
                Vsource_card
                  { name = head; plus; source = Dc (parse_number v) }
                :: !cards
            | plus :: minus :: spec :: args
              when String.lowercase_ascii minus = "0"
                   && String.length spec >= 4
                   && String.lowercase_ascii (String.sub spec 0 4) = "pwl(" ->
              (* PWL(t1 v1 t2 v2 ...) possibly split across fields;
                 reassemble and strip the wrapper. *)
              let joined = String.concat " " (spec :: args) in
              let inner =
                let no_prefix =
                  String.sub joined 4 (String.length joined - 4)
                in
                match String.index_opt no_prefix ')' with
                | Some i -> String.sub no_prefix 0 i
                | None -> fail lineno "unterminated PWL("
              in
              let nums = List.map parse_number (split_fields inner) in
              let rec pair = function
                | [] -> []
                | t :: v :: rest -> (t, v) :: pair rest
                | [ _ ] -> fail lineno "odd PWL value count"
              in
              cards :=
                Vsource_card { name = head; plus; source = Pwl (pair nums) }
                :: !cards
            | _ -> fail lineno "malformed V card (ground-referenced only)")
          | c -> fail lineno (Printf.sprintf "unsupported card %C" c))
      end)
    lines;
  { title; cards = List.rev !cards; tran = !tran }

let to_netlist t ~models =
  let net = Netlist.create () in
  let nodes : (string, Netlist.node) Hashtbl.t = Hashtbl.create 16 in
  let node_of name =
    let key = String.lowercase_ascii name in
    if key = "0" || key = "gnd" then Netlist.ground
    else
      match Hashtbl.find_opt nodes key with
      | Some n -> n
      | None ->
        let n = Netlist.fresh_node net name in
        Hashtbl.add nodes key n;
        n
  in
  List.iter
    (fun card ->
      match card with
      | Mosfet_card { d; g; s; model; w; l; _ } ->
        let template = models model in
        let params = { template with Slc_device.Mosfet.w; l } in
        Netlist.add_mosfet net params ~g:(node_of g) ~d:(node_of d)
          ~s:(node_of s)
      | Cap_card { a; b; value; _ } ->
        Netlist.add_capacitor net value ~a:(node_of a) ~b:(node_of b)
      | Res_card { a; b; value; _ } ->
        Netlist.add_resistor net value ~a:(node_of a) ~b:(node_of b)
      | Vsource_card { plus; source; _ } ->
        let stim =
          match source with
          | Dc v -> Stimulus.dc v
          | Pwl pts -> Stimulus.pwl pts
        in
        Netlist.add_vsource net stim (node_of plus))
    t.cards;
  let resolver name =
    let key = String.lowercase_ascii name in
    if key = "0" || key = "gnd" then Netlist.ground
    else
      match Hashtbl.find_opt nodes key with
      | Some n -> n
      | None ->
        Slc_obs.Slc_error.invalid_input ~site:"Deck.to_netlist"
          ("unknown node " ^ name)
  in
  (net, resolver)

let write ppf t =
  Format.fprintf ppf "%s@." t.title;
  List.iter
    (fun card ->
      match card with
      | Mosfet_card { name; d; g; s; model; w; l } ->
        Format.fprintf ppf "%s %s %s %s %s w=%g l=%g@." name d g s model w l
      | Cap_card { name; a; b; value } ->
        Format.fprintf ppf "%s %s %s %g@." name a b value
      | Res_card { name; a; b; value } ->
        Format.fprintf ppf "%s %s %s %g@." name a b value
      | Vsource_card { name; plus; source = Dc v } ->
        Format.fprintf ppf "%s %s 0 %g@." name plus v
      | Vsource_card { name; plus; source = Pwl pts } ->
        Format.fprintf ppf "%s %s 0 PWL(%s)@." name plus
          (String.concat " "
             (List.concat_map
                (fun (tm, v) ->
                  [ Printf.sprintf "%g" tm; Printf.sprintf "%g" v ])
                pts)))
    t.cards;
  (match t.tran with
  | Some (dt, tstop) -> Format.fprintf ppf ".tran %g %g@." dt tstop
  | None -> ());
  Format.fprintf ppf ".end@."

let to_string t = Format.asprintf "%a" write t
