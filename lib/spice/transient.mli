(** Nonlinear transient circuit simulation.

    Nodal analysis with ground-referenced voltage sources eliminated
    (their nodes are pinned), backward-Euler time integration and a
    damped Newton solve at every step.  Adaptive step control: the step
    is halved when Newton fails and grown after easy steps; stimulus
    breakpoints are always hit exactly.

    This is the "SPICE" of the reproduction — the gold-standard engine
    every characterization method is measured against. *)

type integrator = Backward_euler | Trapezoidal
(** Backward Euler is robustly damped (first order); trapezoidal is
    second-order accurate and preferred when waveform fidelity matters
    (it is started with one BE step and falls back to BE on rejected
    steps). *)

type options = {
  integrator : integrator;
  tstop : float;        (** simulation end time, s *)
  dt_init : float;      (** first step size, s *)
  dt_min : float;       (** giving-up threshold for step halving *)
  dt_max : float;       (** cap on step growth *)
  abstol : float;       (** Newton residual tolerance, A *)
  dxtol : float;        (** Newton update tolerance, V *)
  max_newton : int;     (** Newton iterations per attempt *)
  gmin : float;         (** conductance to ground on every node, S *)
  breakpoints : float list;  (** times the grid must include *)
}

val default_options : tstop:float -> options
(** Sensible defaults for picosecond-scale digital transients:
    trapezoidal integration, [dt_init = tstop/400],
    [dt_max = tstop/100], [dt_min = tstop*1e-7], [abstol = 1e-12],
    [dxtol = 1e-7], [max_newton = 40], [gmin = 1e-12]. *)

(** Convergence failures raise {!Slc_obs.Slc_error.No_convergence}: a
    typed diagnostic record (phase, simulated time reached, step size,
    Newton iteration count, residual norm, recovery rungs attempted)
    instead of the bare string the solver used to throw.  The harness
    layer annotates it with the arc/tech/seed/ξ-point context. *)

val dc_operating_point : Netlist.t -> at:float -> float array
(** DC solution with sources evaluated at time [at]; returns the full
    node-voltage vector (index = node id).  Falls back to gmin stepping
    and then source stepping.  Raises
    {!Slc_obs.Slc_error.No_convergence} if everything fails. *)

val dc_sweep :
  Netlist.t -> node:Netlist.node -> values:float array -> float array array
(** Replaces the stimulus of the pinned [node] by each value in turn
    and returns the DC solution per value (continuation: each solve
    starts from the previous solution).  Used for transfer curves. *)

type compiled
(** A netlist compiled for fast stamping: immutable topology (node
    indices of every element) plus the per-instance parameter values.
    Compiling once and {!respecialize}-ing per run avoids rebuilding
    the structure when only parameter values change between runs. *)

val compile : Netlist.t -> compiled
(** Validates and flattens the netlist.  Element order is the netlist
    insertion order. *)

val node_count : compiled -> int

val respecialize :
  compiled ->
  mosfets:Slc_device.Mosfet.params array ->
  caps:float array ->
  sources:Stimulus.t array ->
  compiled
(** A new compiled circuit sharing the topology of the argument but
    carrying the given device parameters, capacitance values and source
    stimuli (in compiled element order).  The arrays must match the
    original element counts; zero capacitances are stamped as exact
    zeros, so a slot can be "turned off" without changing topology.
    The result is independent of the original: safe to use from
    another domain. *)

type workspace
(** Per-run scratch (Jacobian, residual, RHS, pivots, previous-step
    state) sized for one compiled circuit.  A workspace is reused by
    every Newton iteration of a run so the inner loop allocates
    nothing; it is NOT thread-safe — use one workspace per domain. *)

val make_workspace : compiled -> workspace

type result

val run : ?record:int array -> options -> Netlist.t -> result
(** Simulates from a DC operating point at [t = 0] to [tstop].  When
    [record] is given, only those node voltages are kept per accepted
    step (waveforms of other nodes are unavailable); by default every
    node is recorded. *)

val run_compiled :
  ?workspace:workspace -> ?record:int array -> options -> compiled -> result
(** As {!run} on an already-compiled circuit.  [workspace] (sized by
    {!make_workspace} for a circuit of the same shape) is reused when
    given, so back-to-back runs allocate no solver buffers at all. *)

val run_recovered :
  ?workspace:workspace ->
  ?record:int array ->
  ?max_recovery:int ->
  options ->
  compiled ->
  result
(** {!run_compiled} behind a convergence-recovery escalation ladder.
    When the plain run raises [No_convergence], up to [max_recovery]
    (default 3, the full ladder) rungs re-run the transient with
    progressively more forgiving options:

    + [tight-step] — initial step divided by 16 (full-quality result);
    + [gmin-boost] — gmin × 1000 and a smaller initial step (result is
      flagged {!degraded});
    + [relaxed-tol] — [abstol]/[dxtol] relaxed by 10⁴ with absolute
      floors of 1e-9 A / 1e-5 V (flagged {!degraded}).

    DC-level gmin stepping and source stepping always run inside every
    attempt's operating-point solve.  If every rung fails, the ORIGINAL
    failure is re-raised with [recovery] listing the rungs tried. *)

(** {2 Lockstep multi-seed batch engine}

    The batch engine advances many per-seed variants of ONE circuit
    topology ("lanes") through the transient together: state is
    structure-of-arrays ([Bigarray] slabs holding every lane's node
    voltages, residuals, Jacobians, capacitor currents and device
    parameters in lane-major blocks), the stamping pattern is shared,
    and a round-robin performs one Newton iteration per active lane so
    converged lanes drop out (convergence masking) while stragglers are
    peeled off to the scalar recovery ladder without stalling the rest.

    Correctness contract: a lane follows exactly the scalar
    {!run_compiled} control flow, so a batch of N lanes returns results
    bitwise-identical to N scalar {!run_recovered} calls, with
    identical per-lane Newton/step/telemetry accounting. *)

type batch_workspace
(** Lane-major scratch slabs for {!run_batch}, sized for one compiled
    circuit shape and a lane capacity (grown automatically when a
    larger batch arrives, so one long-lived workspace per domain
    serves every batch of the same circuit).  NOT thread-safe. *)

val make_batch_workspace : compiled -> lanes:int -> batch_workspace

val run_batch :
  ?workspace:batch_workspace ->
  ?scalar_workspace:workspace ->
  ?record:int array ->
  ?max_recovery:int ->
  (options * compiled) array ->
  (result, exn) Stdlib.result array
(** [run_batch lanes] simulates every [(options, compiled)] lane — all
    sharing the topology of lane 0 (typically {!respecialize}d from one
    compile) — and returns per-lane results in lane order.  A lane that
    fails its DC solve or underflows its step size is peeled: its
    captured failure enters the same escalation ladder as
    {!run_recovered} (at most [max_recovery] rungs, run through
    [scalar_workspace]), so a rescued lane comes back [Ok] with
    {!degraded}/{!recovery_log} set and an unrecoverable lane comes
    back [Error] with the usual [No_convergence] payload.  Lanes never
    poison each other: every lane's result — values, iteration counts,
    telemetry — is identical to what the scalar path would produce. *)

val dc_sweep_compiled :
  ?workspace:workspace ->
  compiled ->
  node:Netlist.node ->
  values:float array ->
  float array array
(** As {!dc_sweep} on an already-compiled circuit.  The swept source's
    stimulus is temporarily replaced per point and restored on ALL
    exits (including failures), so a compiled circuit shared through a
    cache is never left corrupted; fallback solves for a hard sweep
    point run against the sweep value itself. *)

val times : result -> float array

val waveform : result -> Netlist.node -> Waveform.t
(** Raises [Invalid_argument] for a node that was not recorded. *)

val newton_iterations_total : result -> int
(** Total Newton iterations spent — a proxy for simulation cost. *)

val steps_taken : result -> int

val degraded : result -> bool
(** True when the run only completed under a recovery rung that relaxed
    the numerics (gmin boost or tolerance relaxation); the waveforms
    are usable but should be surfaced as lower-confidence. *)

val recovery_log : result -> string list
(** The escalation rungs attempted for this run, in order ([[]] for a
    run that converged at its given options). *)
