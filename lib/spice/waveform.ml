type t = { times : Slc_num.Vec.t; values : Slc_num.Vec.t }

let make ~times ~values =
  if Array.length times <> Array.length values then
    Slc_obs.Slc_error.invalid_input ~site:"Waveform.make" "length mismatch";
  if Array.length times < 2 then
    Slc_obs.Slc_error.invalid_input ~site:"Waveform.make" "need at least 2 samples";
  if not (Slc_num.Interp.is_strictly_increasing times) then
    Slc_obs.Slc_error.invalid_input ~site:"Waveform.make" "times must be strictly increasing";
  { times; values }

let length w = Array.length w.times

let value_at w t =
  let n = Array.length w.times in
  if t <= w.times.(0) then w.values.(0)
  else if t >= w.times.(n - 1) then w.values.(n - 1)
  else Slc_num.Interp.linear1d w.times w.values t

let final_value w = w.values.(Array.length w.values - 1)

type direction = Rising | Falling

let cross_time w ?after dir level =
  let start = match after with Some t -> t | None -> w.times.(0) in
  let n = Array.length w.times in
  let rec go i =
    if i >= n - 1 then None
    else begin
      let t1 = w.times.(i) and t2 = w.times.(i + 1) in
      if t2 < start then go (i + 1)
      else begin
        let v1 = w.values.(i) and v2 = w.values.(i + 1) in
        let crosses =
          match dir with
          | Rising -> v1 < level && v2 >= level
          | Falling -> v1 > level && v2 <= level
        in
        if crosses then begin
          let tc = t1 +. ((level -. v1) *. (t2 -. t1) /. (v2 -. v1)) in
          if tc >= start then Some tc else go (i + 1)
        end
        else go (i + 1)
      end
    end
  in
  go 0

let measure_delay ~input ~output ~vdd ~out_dir =
  let half = 0.5 *. vdd in
  let in_cross =
    match cross_time input Rising half with
    | Some t -> Some t
    | None -> cross_time input Falling half
  in
  match in_cross with
  | None -> None
  | Some t_in -> (
    match cross_time output ~after:t_in out_dir half with
    | Some t_out -> Some (t_out -. t_in)
    | None -> (
      (* The output may start moving slightly before the input midpoint
         (strong Miller kick); accept an earlier crossing too. *)
      match cross_time output out_dir half with
      | Some t_out -> Some (t_out -. t_in)
      | None -> None))

let measure_slew w ~vdd dir =
  let lo = 0.2 *. vdd and hi = 0.8 *. vdd in
  match dir with
  | Rising -> (
    match cross_time w Rising lo with
    | None -> None
    | Some t1 -> (
      match cross_time w ~after:t1 Rising hi with
      | None -> None
      | Some t2 -> Some ((t2 -. t1) /. 0.6)))
  | Falling -> (
    match cross_time w Falling hi with
    | None -> None
    | Some t1 -> (
      match cross_time w ~after:t1 Falling lo with
      | None -> None
      | Some t2 -> Some ((t2 -. t1) /. 0.6)))

let settled w ~vdd ~target ~tol_frac =
  Float.abs (final_value w -. target) <= tol_frac *. vdd

let to_csv ppf named =
  match named with
  | [] -> Slc_obs.Slc_error.invalid_input ~site:"Waveform.to_csv" "no waveforms"
  | (_, first) :: _ ->
    Format.fprintf ppf "time,%s@."
      (String.concat "," (List.map fst named));
    Array.iter
      (fun t ->
        Format.fprintf ppf "%.6e" t;
        List.iter
          (fun (_, w) -> Format.fprintf ppf ",%.6e" (value_at w t))
          named;
        Format.fprintf ppf "@.")
      first.times
