type node = int

let ground = 0

type element =
  | Mosfet of { params : Slc_device.Mosfet.params; g : node; d : node; s : node }
  | Capacitor of { c : float; a : node; b : node }
  | Resistor of { r : float; a : node; b : node }

type t = {
  mutable names : string list; (* reversed: names of nodes 1.. *)
  mutable n_nodes : int;       (* including ground *)
  mutable elems : element list; (* reversed *)
  mutable srcs : (node * Stimulus.t) list;
  mutable n_devices : int;
}

let create () =
  { names = []; n_nodes = 1; elems = []; srcs = []; n_devices = 0 }

let fresh_node t name =
  let id = t.n_nodes in
  t.n_nodes <- t.n_nodes + 1;
  t.names <- name :: t.names;
  id

let node_name t n =
  if n = ground then "gnd"
  else if n > 0 && n < t.n_nodes then List.nth t.names (t.n_nodes - 1 - n)
  else Slc_obs.Slc_error.invalid_input ~site:"Netlist.node_name" "unknown node"

let node_count t = t.n_nodes

let check_node t n =
  if n < 0 || n >= t.n_nodes then
    Slc_obs.Slc_error.invalid_input ~site:"Netlist" "element references an unallocated node"

let add_mosfet t params ~g ~d ~s =
  check_node t g;
  check_node t d;
  check_node t s;
  t.elems <- Mosfet { params; g; d; s } :: t.elems;
  t.n_devices <- t.n_devices + 1

let add_capacitor t c ~a ~b =
  check_node t a;
  check_node t b;
  if c < 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Netlist.add_capacitor" "negative capacitance";
  if c > 0.0 && a <> b then t.elems <- Capacitor { c; a; b } :: t.elems

let add_resistor t r ~a ~b =
  check_node t a;
  check_node t b;
  if r <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Netlist.add_resistor" "resistance must be > 0";
  if a <> b then t.elems <- Resistor { r; a; b } :: t.elems

let add_vsource t stim n =
  check_node t n;
  if n = ground then Slc_obs.Slc_error.invalid_input ~site:"Netlist.add_vsource" "cannot drive ground";
  if List.mem_assoc n t.srcs then
    Slc_obs.Slc_error.invalid_input ~site:"Netlist.add_vsource" "node already pinned";
  t.srcs <- (n, stim) :: t.srcs

let elements t = List.rev t.elems

let sources t = List.rev t.srcs

let pinned t n = n = ground || List.mem_assoc n t.srcs

let device_count t = t.n_devices

let validate t =
  let free = ref 0 in
  for n = 1 to t.n_nodes - 1 do
    if not (List.mem_assoc n t.srcs) then incr free
  done;
  if !free = 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Netlist.validate" "no free nodes (nothing to solve)";
  List.iter
    (fun e ->
      match e with
      | Mosfet { g; d; s; _ } ->
        check_node t g;
        check_node t d;
        check_node t s
      | Capacitor { a; b; _ } | Resistor { a; b; _ } ->
        check_node t a;
        check_node t b)
    t.elems
