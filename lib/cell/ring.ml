module Tech = Slc_device.Tech
module Process = Slc_device.Process
open Slc_spice

type result = {
  period : float;
  frequency : float;
  stage_delay : float;
  cycles_measured : int;
}

exception No_oscillation

let simulate ?(seed = Process.nominal) ?(stages = 5) ?(extra_load = 0.0)
    (tech : Tech.t) ~vdd =
  if stages < 3 || stages mod 2 = 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Ring.simulate" "stages must be odd and >= 3";
  if vdd <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Ring.simulate" "vdd must be > 0";
  let net = Netlist.create () in
  let nvdd = Netlist.fresh_node net "vdd" in
  Netlist.add_vsource net (Stimulus.dc vdd) nvdd;
  let nodes =
    Array.init stages (fun i -> Netlist.fresh_node net (Printf.sprintf "r%d" i))
  in
  for i = 0 to stages - 1 do
    let g = nodes.(i) in
    let out = nodes.((i + 1) mod stages) in
    Harness.instantiate ~seed tech net Cells.inv
      ~gate_node:(fun _ -> g)
      ~out ~vdd_node:nvdd;
    Netlist.add_capacitor net extra_load ~a:out ~b:Netlist.ground
  done;
  (* Startup kick: a small cap from a fast pulse source injects charge
     into node 0, pushing the ring off its metastable DC point. *)
  let nkick = Netlist.fresh_node net "kick" in
  Netlist.add_vsource net
    (Stimulus.pwl [ (0.0, 0.0); (1e-12, 0.0); (2e-12, vdd); (4e-12, vdd); (5e-12, 0.0) ])
    nkick;
  Netlist.add_capacitor net 0.3e-15 ~a:nkick ~b:nodes.(0);
  (* Rough period estimate from the equivalent inverter to size the
     window for ~12 cycles. *)
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let eq = Equivalent.of_arc_cached tech arc in
  let ieff = Equivalent.ieff eq ~vdd in
  let cap_per_node =
    Equivalent.input_cap tech Cells.inv ~pin:"A"
    +. Equivalent.parasitic_cap tech arc +. extra_load
  in
  let t_stage = 0.7 *. cap_per_node *. vdd /. Float.max 1e-12 ieff in
  let est_period = 2.0 *. float_of_int stages *. t_stage in
  let rec attempt retries window_periods =
    if retries > 2 then raise No_oscillation;
    let tstop = est_period *. window_periods in
    let opts =
      {
        (Transient.default_options ~tstop) with
        dt_max = tstop /. (400.0 *. window_periods);
        breakpoints = [ 1e-12; 2e-12; 4e-12; 5e-12 ];
      }
    in
    Harness.count_simulation ();
    let res = Transient.run opts net in
    let w = Transient.waveform res nodes.(0) in
    (* Rising mid-rail crossings, skipping the first half of the window
       (startup transient). *)
    let half = 0.5 *. vdd in
    let crossings = ref [] in
    let rec collect after =
      match Waveform.cross_time w ~after Waveform.Rising half with
      | Some t ->
        crossings := t :: !crossings;
        collect (t +. (0.05 *. est_period))
      | None -> ()
    in
    collect (0.5 *. tstop);
    let ts = List.rev !crossings in
    match ts with
    | t0 :: (_ :: _ :: _ as rest) ->
      let tn = List.nth rest (List.length rest - 1) in
      let cycles = List.length rest in
      let period = (tn -. t0) /. float_of_int cycles in
      (* Periods must be consistent cycle to cycle. *)
      let rec jitter prev worst = function
        | [] -> worst
        | t :: tl ->
          jitter t (Float.max worst (Float.abs (t -. prev -. period))) tl
      in
      let worst = jitter t0 0.0 rest in
      if worst > 0.1 *. period then attempt (retries + 1) (window_periods *. 2.0)
      else
        {
          period;
          frequency = 1.0 /. period;
          stage_delay = period /. (2.0 *. float_of_int stages);
          cycles_measured = cycles;
        }
    | _ -> attempt (retries + 1) (window_periods *. 2.0)
  in
  attempt 0 12.0
