type t =
  | Dev of { pin : string; width_mult : float }
  | Series of t list
  | Parallel of t list

let pins net =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Dev { pin; _ } ->
      if not (Hashtbl.mem seen pin) then begin
        Hashtbl.add seen pin ();
        acc := pin :: !acc
      end
    | Series l | Parallel l -> List.iter go l
  in
  go net;
  List.rev !acc

let rec device_count = function
  | Dev _ -> 1
  | Series l | Parallel l ->
    List.fold_left (fun n sub -> n + device_count sub) 0 l

let rec conducts net ~on =
  match net with
  | Dev { pin; _ } -> on pin
  | Series l -> List.for_all (fun sub -> conducts sub ~on) l
  | Parallel l -> List.exists (fun sub -> conducts sub ~on) l

let rec equivalent_width_mult net ~on =
  match net with
  | Dev { pin; width_mult } -> if on pin then width_mult else 0.0
  | Series l ->
    let ws = List.map (fun sub -> equivalent_width_mult sub ~on) l in
    if List.exists (fun w -> w = 0.0) ws then 0.0
    else 1.0 /. List.fold_left (fun acc w -> acc +. (1.0 /. w)) 0.0 ws
  | Parallel l ->
    List.fold_left (fun acc sub -> acc +. equivalent_width_mult sub ~on) 0.0 l

let rec validate = function
  | Dev { width_mult; _ } ->
    if width_mult <= 0.0 then
      Slc_obs.Slc_error.invalid_input ~site:"Topology.validate" "width multiplier must be > 0"
  | Series [] | Parallel [] ->
    Slc_obs.Slc_error.invalid_input ~site:"Topology.validate" "empty series/parallel group"
  | Series l | Parallel l -> List.iter validate l
