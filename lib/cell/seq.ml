module Tech = Slc_device.Tech
module Process = Slc_device.Process
module Slc_error = Slc_obs.Slc_error
open Slc_spice

type capture_result = {
  captured : bool;
  q_final : float;
  clk_to_q : float option;
}

let edge = 5e-12

(* The 6-NAND positive-edge DFF (7474 style):
     g1 = NAND(g2, g4)        g2 = NAND(g1, clk)
     g3 = NAND(g2, clk, g4)   g4 = NAND(g3, d)
     q  = NAND(g2, qb)        qb = NAND(q, g3)
   Feedback everywhere; the output latch is seeded through weak
   resistors so the pre-edge state is deterministic. *)
(* d_revert: when [Some t], the data returns to its old value [t]
   seconds after the clock edge (hold-time measurement). *)
let build ?(seed = Process.nominal) (tech : Tech.t) ~vdd ~data_rises
    ~d_to_clk ?d_revert ~t_clk () =
  let net = Netlist.create () in
  let nvdd = Netlist.fresh_node net "vdd" in
  let nd = Netlist.fresh_node net "d" in
  let nclk = Netlist.fresh_node net "clk" in
  let g1 = Netlist.fresh_node net "g1" in
  let g2 = Netlist.fresh_node net "g2" in
  let g3 = Netlist.fresh_node net "g3" in
  let g4 = Netlist.fresh_node net "g4" in
  let q = Netlist.fresh_node net "q" in
  let qb = Netlist.fresh_node net "qb" in
  Netlist.add_vsource net (Stimulus.dc vdd) nvdd;
  let v_old = if data_rises then 0.0 else vdd in
  let v_new = vdd -. v_old in
  let t_d = t_clk -. d_to_clk in
  (match d_revert with
  | None ->
    Netlist.add_vsource net
      (Stimulus.ramp ~t0:t_d ~duration:edge ~v_from:v_old ~v_to:v_new)
      nd
  | Some after ->
    let t_back = t_clk +. after in
    if t_back <= t_d +. edge then
      Slc_obs.Slc_error.invalid_input ~site:"Seq.build" "revert before the data edge completes";
    Netlist.add_vsource net
      (Stimulus.pwl
         [
           (0.0, v_old); (t_d, v_old); (t_d +. edge, v_new); (t_back, v_new);
           (t_back +. edge, v_old);
         ])
      nd);
  (* A priming clock pulse loads the OLD data value into the output
     latch before the measured edge, so Q starts from a driven state
     rather than relying on the weak keepers to resolve the latch. *)
  Netlist.add_vsource net
    (Stimulus.pwl
       [
         (0.0, 0.0); (8e-12, 0.0); (8e-12 +. edge, vdd); (25e-12, vdd);
         (25e-12 +. edge, 0.0); (t_clk, 0.0); (t_clk +. edge, vdd);
       ])
    nclk;
  let nand2 ~a ~b ~out =
    Harness.instantiate ~seed tech net Cells.nand2
      ~gate_node:(fun pin -> if String.equal pin "A" then a else b)
      ~out ~vdd_node:nvdd
  in
  let nand3 ~a ~b ~c ~out =
    Harness.instantiate ~seed tech net Cells.nand3
      ~gate_node:(fun pin ->
        match pin with "A" -> a | "B" -> b | _ -> c)
      ~out ~vdd_node:nvdd
  in
  nand2 ~a:g2 ~b:g4 ~out:g1;
  nand2 ~a:g1 ~b:nclk ~out:g2;
  nand3 ~a:g2 ~b:nclk ~c:g4 ~out:g3;
  nand2 ~a:g3 ~b:nd ~out:g4;
  nand2 ~a:g2 ~b:qb ~out:q;
  nand2 ~a:q ~b:g3 ~out:qb;
  (* Weak keepers break the output latch's DC symmetry towards the old
     value: ~1 GOhm injects under a nanoamp, irrelevant during
     switching. *)
  let weak = 1e9 in
  if data_rises then begin
    (* old Q = 0 *)
    Netlist.add_resistor net weak ~a:q ~b:Netlist.ground;
    Netlist.add_resistor net weak ~a:qb ~b:nvdd
  end
  else begin
    Netlist.add_resistor net weak ~a:q ~b:nvdd;
    Netlist.add_resistor net weak ~a:qb ~b:Netlist.ground
  end;
  (* Output load. *)
  Netlist.add_capacitor net 2e-15 ~a:q ~b:Netlist.ground;
  (net, nclk, q, t_d)

let simulate_capture_gen ?seed ?d_revert (tech : Tech.t) ~vdd ~data_rises
    ~d_to_clk =
  if vdd <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Seq.simulate_capture" "vdd must be > 0";
  if d_to_clk > 55e-12 then
    Slc_obs.Slc_error.invalid_input ~site:"Seq.simulate_capture" "data edge would precede the priming pulse";
  (* Fixed timeline: priming pulse first, then both edges comfortably
     inside the window even for negative offsets. *)
  let t_clk = 90e-12 in
  let settle = 120e-12 in
  let net, nclk, q, t_d =
    build ?seed tech ~vdd ~data_rises ~d_to_clk ?d_revert ~t_clk ()
  in
  let tstop = t_clk +. settle in
  let opts =
    {
      (Transient.default_options ~tstop) with
      dt_max = tstop /. 600.0;
      breakpoints =
        [ 8e-12; 8e-12 +. edge; 25e-12; 25e-12 +. edge; t_d; t_d +. edge;
          t_clk; t_clk +. edge ]
        |> List.filter (fun t -> t > 0.0);
    }
  in
  Harness.count_simulation ();
  let res = Transient.run opts net in
  let wq = Transient.waveform res q in
  let wclk = Transient.waveform res nclk in
  let q_final = Waveform.final_value wq in
  let captured =
    if data_rises then q_final > 0.85 *. vdd else q_final < 0.15 *. vdd
  in
  let clk_to_q =
    let half = 0.5 *. vdd in
    let dir = if data_rises then Waveform.Rising else Waveform.Falling in
    match
      ( Waveform.cross_time wclk ~after:(t_clk -. 1e-12) Waveform.Rising half,
        Waveform.cross_time wq ~after:t_clk dir half )
    with
    | Some tc, Some tq when captured -> Some (tq -. tc)
    | _ -> None
  in
  { captured; q_final; clk_to_q }

let simulate_capture ?seed tech ~vdd ~data_rises ~d_to_clk =
  simulate_capture_gen ?seed tech ~vdd ~data_rises ~d_to_clk

(* The bisection brackets below are simulated-behavior checks, not
   caller preconditions: the DFF testbench produced a capture pattern
   the search cannot bracket.  They raise the typed
   [Slc_error.Simulation_failed] (like an uncapturable output edge in
   [Harness]) so callers can tell them apart from argument misuse. *)
let bracket_failure ~site detail =
  raise
    (Slc_error.Simulation_failed
       {
         Slc_error.sf_detail = site ^ ": " ^ detail;
         sf_retries = 0;
         sf_window = 0.0;
         sf_cause = None;
         sf_context = Slc_error.no_context;
       })

let search_context ?seed (tech : Tech.t) =
  {
    Slc_error.arc = Some "DFF/capture";
    tech = Some tech.Tech.name;
    seed =
      (match seed with
      | Some s when not (s == Process.nominal) -> Some s.Process.index
      | Some _ | None -> None);
    point = None;
  }

let hold_time ?seed ?(resolution = 5e-14) tech ~vdd ~data_rises =
  Slc_error.with_context (search_context ?seed tech) @@ fun () ->
  (* Safe setup margin; only the revert time varies. *)
  let d_to_clk = 30e-12 in
  let try_at after =
    (simulate_capture_gen ?seed ~d_revert:after tech ~vdd ~data_rises
       ~d_to_clk)
      .captured
  in
  (* Edge-triggered latches often have near-zero or negative hold, so
     the bracket extends to reverts before the clock edge. *)
  let long = 50e-12 and short = -15e-12 in
  if not (try_at long) then
    bracket_failure ~site:"Seq.hold_time" "capture fails even when data held long";
  if try_at short then
    bracket_failure ~site:"Seq.hold_time"
      "capture survives reverting before the edge";
  let lo = ref short and hi = ref long in
  while !hi -. !lo > resolution do
    let mid = 0.5 *. (!lo +. !hi) in
    if try_at mid then hi := mid else lo := mid
  done;
  0.5 *. (!lo +. !hi)

let setup_time ?seed ?(resolution = 5e-14) tech ~vdd ~data_rises =
  Slc_error.with_context (search_context ?seed tech) @@ fun () ->
  let try_at d_to_clk =
    (simulate_capture ?seed tech ~vdd ~data_rises ~d_to_clk).captured
  in
  let early = 40e-12 and late = -10e-12 in
  if not (try_at early) then
    bracket_failure ~site:"Seq.setup_time"
      "capture fails even with very early data";
  if try_at late then
    bracket_failure ~site:"Seq.setup_time"
      "capture succeeds with data after the edge";
  (* Bisect on the offset: large offset = safe, small/negative = fail. *)
  let lo = ref late and hi = ref early in
  while !hi -. !lo > resolution do
    let mid = 0.5 *. (!lo +. !hi) in
    if try_at mid then hi := mid else lo := mid
  done;
  0.5 *. (!lo +. !hi)
