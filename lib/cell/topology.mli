(** Series–parallel transistor networks.

    A combinational CMOS cell is a pull-up network of PMOS devices
    between the output and Vdd and a complementary pull-down network of
    NMOS devices between the output and ground.  Both are series–
    parallel compositions of devices, each gated by a named input pin. *)

type t =
  | Dev of { pin : string; width_mult : float }
      (** one transistor; width = template width x [width_mult] *)
  | Series of t list
  | Parallel of t list

val pins : t -> string list
(** Distinct pin names in first-appearance order. *)

val device_count : t -> int
(** Total number of transistors in the network. *)

val conducts : t -> on:(string -> bool) -> bool
(** Whether the network conducts when [on pin] says a device whose gate
    is at [pin] is turned on (series = AND, parallel = OR). *)

val equivalent_width_mult : t -> on:(string -> bool) -> float
(** Conductance-style reduction of the conducting sub-network:
    series combine as [1 / sum (1/w)], parallel branches add, devices
    that are off contribute nothing.  Returns 0 when the network is
    off.  This is the paper's "equivalent inverter" reduction
    (Fig. 1b). *)

val validate : t -> unit
(** Rejects empty [Series]/[Parallel] groups and non-positive width
    multipliers. *)
