type entry = { arc : Arc.t; table : Nldm.t }

type t = { tech : Slc_device.Tech.t; entries : entry list; sim_runs : int }

let characterize ?seed ?(cells = Cells.all) tech ~levels =
  let before = Harness.sim_count () in
  let entries =
    List.concat_map
      (fun cell ->
        List.map
          (fun arc -> { arc; table = Nldm.build ?seed tech arc ~levels })
          (Arc.all_of_cell cell))
      cells
  in
  { tech; entries; sim_runs = Harness.sim_count () - before }

let find t ~cell ~pin ~out_dir =
  List.find_opt
    (fun e ->
      String.equal e.arc.Arc.cell.Cells.name cell
      && String.equal e.arc.Arc.pin pin
      && e.arc.Arc.out_dir = out_dir)
    t.entries

let arcs t = List.map (fun e -> e.arc) t.entries

let entry_for t arc =
  match
    find t ~cell:arc.Arc.cell.Cells.name ~pin:arc.Arc.pin
      ~out_dir:arc.Arc.out_dir
  with
  | Some e -> e
  | None -> raise Not_found

let delay t arc point = Nldm.lookup_td (entry_for t arc).table point

let slew t arc point = Nldm.lookup_sout (entry_for t arc).table point

(* ------------------------------------------------------------------ *)
(* Serialization: the library header plus one embedded NLDM block per
   entry.  Arcs are stored as (cell, pin, direction) and rebuilt
   through [Arc.find], which is exactly how [characterize] derived
   them — the round trip reproduces the same side-input assignment. *)

exception Format_error of string

let fail msg = raise (Format_error ("Library: " ^ msg))

let direction_of_string = function
  | "rise" -> Arc.Rise
  | "fall" -> Arc.Fall
  | s -> fail ("bad direction " ^ s)

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "slc-library 1\n";
  Buffer.add_string b (Printf.sprintf "tech %s\n" t.tech.Slc_device.Tech.name);
  Buffer.add_string b (Printf.sprintf "sim_runs %d\n" t.sim_runs);
  Buffer.add_string b (Printf.sprintf "entries %d\n" (List.length t.entries));
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "entry %s %s %s\n" e.arc.Arc.cell.Cells.name
           e.arc.Arc.pin
           (Arc.direction_to_string e.arc.Arc.out_dir));
      Nldm.to_buffer b e.table)
    t.entries;
  Buffer.add_string b "end\n";
  Buffer.contents b

let of_string ?tech src =
  let lines =
    ref
      (String.split_on_char '\n' src
      |> List.map String.trim
      |> List.filter (fun l -> l <> ""))
  in
  let next_line () =
    match !lines with
    | [] -> fail "unexpected end of input"
    | l :: rest ->
      lines := rest;
      l
  in
  let fields l = String.split_on_char ' ' l |> List.filter (fun s -> s <> "") in
  let expect key =
    let l = next_line () in
    match fields l with
    | k :: rest when String.equal k key -> rest
    | _ -> fail (Printf.sprintf "expected %S, got %S" key l)
  in
  (match expect "slc-library" with
  | [ "1" ] -> ()
  | _ -> fail "unsupported format version (want 1)");
  let tech_name =
    match expect "tech" with [ n ] -> n | _ -> fail "bad tech line"
  in
  let tech =
    match tech with
    | Some t ->
      if t.Slc_device.Tech.name <> tech_name then
        fail
          (Printf.sprintf "stored for tech %s, caller supplied %s" tech_name
             t.Slc_device.Tech.name);
      t
    | None -> (
      match Slc_device.Tech.by_name tech_name with
      | t -> t
      | exception Not_found -> fail ("unknown tech " ^ tech_name))
  in
  let sim_runs =
    match expect "sim_runs" with
    | [ n ] -> (
      match int_of_string_opt n with Some i -> i | None -> fail "bad sim_runs")
    | _ -> fail "bad sim_runs line"
  in
  let n_entries =
    match expect "entries" with
    | [ n ] -> (
      match int_of_string_opt n with
      | Some i when i >= 0 -> i
      | _ -> fail "bad entries count")
    | _ -> fail "bad entries line"
  in
  let entries =
    List.init n_entries (fun _ ->
        match expect "entry" with
        | [ cell_name; pin; dir ] ->
          let cell =
            match Cells.by_name cell_name with
            | c -> c
            | exception Not_found -> fail ("unknown cell " ^ cell_name)
          in
          let out_dir = direction_of_string dir in
          let arc =
            match Arc.find cell ~pin ~out_dir with
            | a -> a
            | exception Not_found ->
              fail
                (Printf.sprintf "no %s arc on %s/%s" dir cell_name pin)
          in
          let table =
            try Nldm.parse_lines next_line
            with Nldm.Format_error msg -> fail msg
          in
          { arc; table }
        | _ -> fail "bad entry line")
  in
  (match fields (next_line ()) with
  | [ "end" ] -> ()
  | _ -> fail "missing end marker");
  { tech; entries; sim_runs }

let summary ppf t =
  Format.fprintf ppf "library(%s) { /* %d arcs, %d simulator runs */@."
    t.tech.Slc_device.Tech.name (List.length t.entries) t.sim_runs;
  List.iter
    (fun e ->
      let tb = e.table in
      let n_s = Array.length tb.Nldm.sin_axis
      and n_c = Array.length tb.Nldm.cload_axis
      and n_v = Array.length tb.Nldm.vdd_axis in
      let td_min = tb.Nldm.td.(0).(0).(n_v - 1) in
      let td_max = tb.Nldm.td.(n_s - 1).(n_c - 1).(0) in
      Format.fprintf ppf "  arc %-16s table %dx%dx%d  td [%6.2f .. %6.2f] ps@."
        (Arc.name e.arc) n_s n_c n_v (td_min *. 1e12) (td_max *. 1e12))
    t.entries;
  Format.fprintf ppf "}@."
