(** Equivalent-inverter reduction (paper Fig. 1b).

    For a timing arc, the conducting network (pull-down for a falling
    output, pull-up for a rising output) is reduced to a single
    equivalent device whose width combines the stack conductances.
    [Ieff] of that device (paper Eq. 4) is the current normalizer of
    the compact timing model. *)

type t = {
  device : Slc_device.Mosfet.params;  (** the equivalent transistor *)
  width_mult : float;  (** total width multiplier vs the tech template *)
}

val of_arc :
  ?stack_factor:float -> Slc_device.Tech.t -> Arc.t -> t
(** [stack_factor] (default 0.95) derates series stacks slightly to
    account for the body effect of inner devices; applied once per
    series level below the top. *)

val of_arc_cached : Slc_device.Tech.t -> Arc.t -> t
(** [of_arc] with the default stack factor, memoized per (tech, arc).
    Domain-safe; use in hot paths that re-derive the same equivalent
    inverter on every call. *)

val ieff : t -> vdd:float -> float
(** Effective switching current of the equivalent device (paper
    Eq. 4): [(Id(Vdd, Vdd/2) + Id(Vdd/2, Vdd)) / 2]. *)

val ieff_with_seed :
  Slc_device.Tech.t -> Slc_device.Process.seed -> Arc.t -> vdd:float -> float
(** [Ieff] with the seed's global process shifts applied to the
    equivalent device — how the statistical flow ties process variation
    into the timing model. *)

val input_cap : Slc_device.Tech.t -> Cells.t -> pin:string -> float
(** Gate capacitance presented by one input pin: the summed gate caps
    of every device (NMOS and PMOS) controlled by that pin.  This is
    the load a driving stage sees, used by chain simulation windows
    and by SSTA load computation. *)

val input_cap_cached :
  Slc_device.Tech.t -> Cells.t -> pin:string -> float
(** {!input_cap} memoized process-wide per (technology name, cell name,
    pin).  Domain-safe; bitwise identical to the uncached form.  Used
    by SSTA net-capacitance accumulation, where the same pin cap is
    summed once per fanout connection of a large netlist. *)

val parasitic_cap : Slc_device.Tech.t -> Arc.t -> float
(** Rough physical estimate of the output-node parasitic capacitance of
    the cell (junction caps of devices touching the output) — used only
    to scale simulation windows, never as a model parameter. *)
