(** Standard-cell definitions.

    Each cell is a static CMOS gate: a PMOS pull-up and a complementary
    NMOS pull-down network, plus base width multipliers applied on top
    of the technology's minimum widths.  The usual logical-effort
    sizings are used (series stacks upsized to match the drive of the
    reference inverter). *)

type t = {
  name : string;
  inputs : string list;
  wn_mult : float;  (** multiplier on the technology NMOS template width *)
  wp_mult : float;  (** multiplier on the technology PMOS template width *)
  pull_down : Topology.t;  (** NMOS network, output-to-ground *)
  pull_up : Topology.t;    (** PMOS network, output-to-Vdd *)
}

val inv : t
(** The reference inverter — every other cell's drive is sized
    relative to it, and it anchors the equivalent-inverter reduction. *)

val nand2 : t
(** 2-input NAND: series NMOS stack (upsized 2x), parallel PMOS. *)

val nand3 : t

val nor2 : t
(** 2-input NOR: parallel NMOS, series PMOS stack (upsized 2x). *)

val nor3 : t

val nand4 : t

val nor4 : t

val aoi21 : t
(** out = not (A and B or C). *)

val oai21 : t
(** out = not ((A or B) and C). *)

val aoi22 : t
(** out = not (A and B or C and D). *)

val oai22 : t
(** out = not ((A or B) and (C or D)). *)

val all : t list
(** Every built-in cell, in a stable order — the default cell set of
    {!Library.characterize} and of the whole-library experiments. *)

val by_name : string -> t
(** Raises [Not_found] for unknown names. *)

val paper_set : t list
(** INV, NAND2, NOR2 — the set the paper reports in Table I. *)

val logic_value : t -> on:(string -> bool) -> bool option
(** Static output for a full input assignment: [Some true] when only the
    pull-up conducts, [Some false] when only the pull-down conducts,
    [None] for a non-complementary state (never happens for the
    built-in cells). *)

val is_complementary : t -> bool
(** Whether pull-up and pull-down conduction are complements over all
    input assignments. *)
