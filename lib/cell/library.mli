(** A characterized standard-cell library: NLDM tables for every arc of
    every cell of a technology. *)

type entry = { arc : Arc.t; table : Nldm.t }

type t = {
  tech : Slc_device.Tech.t;
  entries : entry list;
  sim_runs : int;  (** total simulator runs spent building the library *)
}

val characterize :
  ?seed:Slc_device.Process.seed ->
  ?cells:Cells.t list ->
  Slc_device.Tech.t ->
  levels:int array ->
  t
(** Builds tables for every arc of the given cells (default
    {!Cells.all}). *)

val find : t -> cell:string -> pin:string -> out_dir:Arc.direction -> entry option
(** The entry for one arc, by cell name, switching pin and output
    direction; [None] if the library does not contain it. *)

val arcs : t -> Arc.t list
(** Every arc the library has a table for, in entry order. *)

val delay : t -> Arc.t -> Harness.point -> float
(** Interpolated delay; raises [Not_found] for an arc that is not in the
    library. *)

val slew : t -> Arc.t -> Harness.point -> float
(** Interpolated output slew; raises [Not_found] like {!delay}. *)

val summary : Format.formatter -> t -> unit
(** Liberty-flavored human-readable dump (cells, arcs, table sizes and
    corner values). *)

(** {2 Serialization}

    A characterized library is the most expensive artifact the flow
    produces (one simulation per grid point per arc); the persistent
    store keeps it on disk so a second process pays zero simulations.
    Values round-trip bitwise via the embedded {!Nldm} hex-float
    blocks. *)

exception Format_error of string

val to_string : t -> string
(** Versioned line-oriented text: a header naming the technology
    followed by one embedded {!Nldm} block per entry. *)

val of_string : ?tech:Slc_device.Tech.t -> string -> t
(** Rebuilds the library.  Arcs are reconstructed by name through
    {!Arc.find} (the same derivation {!characterize} used).  With
    [?tech] the stored technology name must match the supplied card
    (use this for temperature or Vt variants whose cards are not
    registered under {!Slc_device.Tech.by_name}); without it the name
    is resolved via [Tech.by_name].  Raises {!Format_error} on
    malformed input, an unsupported version, or a tech mismatch. *)
