(** Liberty (.lib) export and (subset) import.

    The industry exchange format for characterized libraries.  The
    writer emits an NLDM library at one supply corner (Liberty tables
    are 2-D in input slew x load; our tables carry a Vdd axis, so a
    slice is selected).  The reader parses the subset the writer emits
    — enough for round-tripping and for consuming our own libraries
    from other tools' test fixtures.

    Units follow common practice: time in ps, capacitance in fF. *)

val write : Format.formatter -> vdd:float -> Library.t -> unit
(** Emits the library at the table Vdd slice nearest to [vdd].  Each
    cell gets its input pins (with capacitances), an output pin [Y],
    and one [timing()] group per related input pin carrying
    [cell_rise]/[cell_fall] and [rise_transition]/[fall_transition]
    tables. *)

val to_string : vdd:float -> Library.t -> string
(** {!write} into a string. *)

(** {1 Reading} *)

type table = {
  index_1 : float array;  (** input slew axis, ps *)
  index_2 : float array;  (** load axis, fF *)
  values : float array array;  (** [slew][load], ps *)
}

type timing_group = {
  related_pin : string;
  cell_rise : table option;
  cell_fall : table option;
  rise_transition : table option;
  fall_transition : table option;
}

type power_group = {
  power_related_pin : string;
  rise_power : table option;  (** switching energy tables, fJ *)
  fall_power : table option;
}

type cell = {
  cell_name : string;
  pin_caps : (string * float) list;  (** input pin capacitances, fF *)
  timings : timing_group list;
  powers : power_group list;
}

type t = {
  library_name : string;
  nom_voltage : float;
  cells : cell list;
}

exception Parse_error of string

val parse : string -> t
(** Parses the writer's subset of Liberty; raises {!Parse_error} with a
    location hint otherwise. *)

val lookup :
  t -> cell:string -> related_pin:string -> rising:bool ->
  sin:float -> cload:float -> (float * float) option
(** Bilinear table lookup in a parsed library: [(delay, transition)] in
    seconds for SI inputs; [None] if the arc is absent. *)

val lookup_energy :
  t -> cell:string -> related_pin:string -> rising:bool ->
  sin:float -> cload:float -> float option
(** Switching energy in joules from the [internal_power] tables. *)
