(** Characterization testbench.

    Builds the transistor netlist of a cell under one timing arc — ramp
    driver on the switching pin, other inputs tied to their
    non-controlling rails, load capacitor on the output, per-device
    parasitics, process variation applied per seed — runs the transient
    solver, and measures propagation delay and output slew.

    This is the "electrical simulation" block of the paper's flow
    (Fig. 4); every characterization method pays its cost in calls to
    {!simulate}. *)

type point = { sin : float; cload : float; vdd : float }
(** One library input condition [ξ = (Sin, Cload, Vdd)]. *)

val pp_point : Format.formatter -> point -> unit
(** Human-readable rendering in engineering units (ps, fF, V). *)

val point_of_vec : Slc_num.Vec.t -> point
(** From a 3-vector [(sin, cload, vdd)]. *)

val vec_of_point : point -> Slc_num.Vec.t
(** Inverse of {!point_of_vec}. *)

type measurement = {
  td : float;    (** 50%-to-50% propagation delay, s *)
  sout : float;  (** output transition time (20–80 extrapolated), s *)
  energy : float;
      (** switching energy drawn from the supply during the transition
          (leakage-corrected), J.  Rising outputs draw roughly
          [(Cload + Cpar) * Vdd^2]; falling outputs only pay crowbar
          and internal charge. *)
  newton_iters : int;
  time_steps : int;
  retries : int; (** extra transient runs needed to capture the edge *)
  degraded : bool;
      (** the transient only converged under a recovery rung that
          relaxed the numerics (see {!Slc_spice.Transient.run_recovered});
          the measurement is usable but lower-confidence *)
  recovery : string list;
      (** recovery rungs attempted for the successful run ([[]] when the
          solver converged at its given options) *)
}

val instantiate :
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  Slc_spice.Netlist.t ->
  Cells.t ->
  gate_node:(string -> Slc_spice.Netlist.node) ->
  out:Slc_spice.Netlist.node ->
  vdd_node:Slc_spice.Netlist.node ->
  unit
(** Expands one cell instance into an existing netlist: pull-up and
    pull-down networks with per-device process variation and parasitic
    capacitances.  [gate_node] maps each input pin to its driving
    node.  Used by the single-arc testbench and by multi-stage chains
    ({!Chain}). *)

val build_netlist :
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  Arc.t ->
  point ->
  Slc_spice.Netlist.t * Slc_spice.Netlist.node * Slc_spice.Netlist.node
(** [(netlist, in_node, out_node)] for the given arc and condition
    (ramp starts at an internal offset time). *)

val simulate :
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  Arc.t ->
  point ->
  measurement
(** Runs the testbench behind the solver's recovery ladder
    ({!Slc_spice.Transient.run_recovered}), retrying with longer
    windows when the output edge is not captured.  Failures are typed:
    {!Slc_obs.Slc_error.Simulation_failed} after the retry budget is
    exhausted, or {!Slc_obs.Slc_error.No_convergence} when even the
    recovery ladder cannot converge — both carry the
    arc/tech/seed/ξ-point context. *)

val simulate_batch :
  ?chunk:int ->
  Slc_device.Tech.t ->
  Arc.t ->
  (Slc_device.Process.seed * point) array ->
  (measurement, exn) result array
(** Batched {!simulate}: measures every (seed, point) lane of the same
    (tech, arc) through the lockstep structure-of-arrays transient
    engine ({!Slc_spice.Transient.run_batch}), [chunk] lanes (default
    16) per in-domain batch with chunks spread over the domain pool.
    Per-lane control flow is the scalar [simulate]'s — same validity
    check, fault injection, retry policy, one counted simulation per
    lane per attempt, same typed failures with the same context — so
    lane [i]'s outcome (value, accounting and telemetry) is identical
    to [simulate ~seed:(fst lanes.(i)) tech arc (snd lanes.(i))], with
    failures returned as [Error] instead of raised. *)

val set_fault_injector :
  (Slc_device.Process.seed -> point -> bool) option -> unit
(** Test hook: when set, {!simulate} raises a synthetic
    [No_convergence] for any (seed, point) the predicate accepts,
    before running (and before counting) a simulation.  Pass [None] to
    clear.  Used to exercise graceful degradation deterministically. *)

val sim_count : unit -> int
(** Global count of transient simulations performed since program start
    (or the last {!reset_sim_count}) — the cost metric every
    speedup claim in the paper is stated in. *)

val reset_sim_count : unit -> unit
(** Zeroes {!sim_count} — only tests and cost-accounting experiments
    should call this. *)

val count_simulation : unit -> unit
(** Adds one to the global simulation counter — for engines (e.g.
    {!Chain}) that invoke the transient solver directly. *)
