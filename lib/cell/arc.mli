(** Timing arcs: one switching input pin, one output transition
    direction, with the remaining inputs held at non-controlling
    values. *)

type direction = Rise | Fall
(** Direction of the {e output} transition. *)

type t = {
  cell : Cells.t;
  pin : string;          (** the switching input *)
  out_dir : direction;
  side_values : (string * bool) list;
      (** static values of the other inputs *)
}

val direction_to_string : direction -> string
(** ["rise"] / ["fall"]. *)

val input_rises : t -> bool
(** All built-in cells are inverting, so the input rises exactly when
    the output falls. *)

val find : Cells.t -> pin:string -> out_dir:direction -> t
(** Finds a non-controlling assignment of the other inputs such that
    toggling [pin] toggles the output in the requested direction.
    When several assignments work, the one that turns on the most
    side devices is chosen (worst-case stack conduction, the common
    characterization convention).  Raises [Not_found] if the pin cannot
    control the output. *)

val all_of_cell : Cells.t -> t list
(** Every (pin, direction) arc of the cell. *)

val name : t -> string
(** e.g. "NAND2/A/fall". *)

val input_on : t -> switching_high:bool -> string -> bool
(** Full input assignment given the current logical value of the
    switching pin. *)
